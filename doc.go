// Package lineup is a Go reproduction of "Line-Up: A Complete and Automatic
// Linearizability Checker" (Burckhardt, Dern, Musuvathi, Tan; PLDI 2010).
//
// Line-Up checks deterministic linearizability of a concurrent component
// automatically: given a finite test (a matrix of invocations, one column
// per thread), phase 1 enumerates all serial executions of the test with a
// stateless model checker and synthesizes a candidate deterministic
// sequential specification; phase 2 enumerates the concurrent executions
// (preemption-bounded) and checks every complete history for a serial
// witness and every stuck history for stuck serial witnesses. Any reported
// violation proves that the component is not linearizable with respect to
// any deterministic sequential specification (the paper's Theorem 5) — the
// checker needs no manual specification, no linearization-point
// annotations, and no access to the implementation's internals beyond its
// use of the instrumented synchronization primitives.
//
// # Architecture
//
// Because the Go runtime scheduler cannot be controlled, the repository
// contains its own deterministic cooperative scheduler (internal/sched, the
// substitute for the CHESS model checker the paper builds on): each logical
// thread is a goroutine gated so that exactly one runs at a time, yielding
// to the scheduler at every instrumented operation. Implementations under
// test use the primitives of internal/vsync (cells, atomics with
// compare-and-swap, monitors with TryLock, condition variables, wait sets)
// instead of Go's sync package.
//
// The checker itself lives in internal/core; the history theory (events,
// serial witnesses, specification synthesis, the determinism check) in
// internal/history; the Fig. 7 observation-file format in internal/obsfile.
// The subjects of the paper's evaluation — 13 concurrent classes mirroring
// the .NET Framework 4.0 (Table 1), plus "(Pre)" variants seeded with the
// root-cause defects of Table 2 — live in internal/collections and
// internal/buggy; the comparison checkers of Section 5.6 (happens-before
// race detection and conflict serializability) in internal/race and
// internal/atomicity.
//
// # Quick start
//
// Define a Subject (a constructor plus a universe of invocations), build a
// Test, and call Check:
//
//	sub := &lineup.Subject{
//		Name: "Counter",
//		New:  func(t *lineup.Thread) any { return collections.NewCounter(t) },
//		Ops:  []lineup.Op{incOp, getOp},
//	}
//	res, err := lineup.Check(sub, &lineup.Test{Rows: [][]lineup.Op{{incOp, getOp}, {incOp}}}, lineup.Options{})
//	if res.Verdict == lineup.Fail {
//		fmt.Println(res.Violation)
//	}
//
// RandomCheck samples random test matrices (the paper's evaluation mode),
// AutoCheck enumerates them systematically (Fig. 6), Shrink minimizes a
// failing test, and CheckAgainstModel checks an implementation against a
// reference model instead of against its own serial behaviors.
//
// Options.Workers > 1 shards one check's phase-2 schedule exploration
// across a worker pool; the verdict, the statistics of passing checks, and
// the reported first violation are identical to the sequential explorer
// for every worker count (DESIGN.md describes the prefix-sharding and
// minimum-position construction behind that guarantee).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package lineup
