module lineup

go 1.22
