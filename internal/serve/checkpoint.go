package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/obsfile"
)

// Checkpoint is the durable snapshot of a running service: the stream
// tracker (thread discipline and the count of events covered), every
// partition's frontier and residual window, and the backpressure bookkeeping.
// It is written atomically (obsfile.AtomicWriteFile), so a crash mid-write
// leaves the previous checkpoint intact. Resume replays the producer's
// stream from the start and skips the Tracker.Events leading events — the
// at-least-once protocol of the resume satellite.
type Checkpoint struct {
	Version    int                  `json:"version"`
	Model      string               `json:"model"`
	WindowOps  int                  `json:"window_ops"` // flush threshold; must match on resume for identical verdicts
	Tracker    obsfile.TrackerState `json:"tracker"`
	Routed     int64                `json:"routed"`
	Shed       int64                `json:"shed,omitempty"`
	Poisoned   []string             `json:"poisoned,omitempty"`
	Partitions []PartCheckpoint     `json:"partitions,omitempty"`
}

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// PartCheckpoint is one partition's durable state.
type PartCheckpoint struct {
	Key      string            `json:"key"`
	Frontier []json.RawMessage `json:"frontier"` // encoded model states (Model.EncodeState)
	Window   []eventJSON       `json:"window,omitempty"`
	Ops      int64             `json:"ops"`
	Windows  int64             `json:"windows"`
	Failed   bool              `json:"failed,omitempty"`
	Err      string            `json:"error,omitempty"`
}

// eventJSON serializes one window event.
type eventJSON struct {
	T   int    `json:"t"`
	K   int    `json:"k"` // history.Kind
	Op  string `json:"op,omitempty"`
	Res string `json:"res,omitempty"`
	I   int    `json:"i"`
}

func toEventJSON(e history.Event) eventJSON {
	return eventJSON{T: e.Thread, K: int(e.Kind), Op: e.Op, Res: e.Result, I: e.Index}
}

func (e eventJSON) event() history.Event {
	return history.Event{Thread: e.T, Kind: history.Kind(e.K), Op: e.Op, Result: e.Res, Index: e.I}
}

// snapshot captures the worker's partitions (ctlSnapshot handler; runs on
// the worker goroutine, with ingest stalled by the caller's barrier).
func (w *worker) snapshot() ([]PartCheckpoint, error) {
	enc := w.srv.cfg.Model.EncodeState
	var out []PartCheckpoint
	for _, key := range w.sortedKeys() {
		p := w.parts[key]
		pc := PartCheckpoint{Key: p.key, Ops: p.ops, Windows: p.windows, Failed: p.failed, Err: p.errMsg}
		for _, st := range p.inc.FrontierStates() {
			b, err := enc(st)
			if err != nil {
				return nil, fmt.Errorf("serve: partition %q: encoding state: %w", p.key, err)
			}
			pc.Frontier = append(pc.Frontier, json.RawMessage(b))
		}
		for _, e := range p.window {
			pc.Window = append(pc.Window, toEventJSON(e))
		}
		out = append(out, pc)
	}
	return out, nil
}

// Checkpoint writes a durable snapshot now (independent of CheckpointEvery).
func (s *Server) Checkpoint() error {
	unlock := s.lockWorld()
	defer unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	return s.checkpointStopped()
}

// autoCheckpoint is the cadence-triggered checkpoint, called by a connection
// after it has released its own lock (cpTick's contract): lockWorld may then
// acquire every conn lock without deadlock.
func (s *Server) autoCheckpoint() error {
	unlock := s.lockWorld()
	defer unlock()
	if s.closed.Load() {
		return nil // a concurrent Close already snapshotted
	}
	return s.checkpointStopped()
}

// checkpointStopped performs the barrier snapshot: with the world stopped no
// new event enters, and the ctlSnapshot control drains each worker's queue
// before it replies, so the snapshot is a consistent cut — exactly the events
// the tracker has accepted, all folded into partition state. The caller must
// hold the world lock.
func (s *Server) checkpointStopped() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	replies, err := s.broadcast(ctlMsg{kind: ctlSnapshot})
	if err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	cp := Checkpoint{
		Version:   checkpointVersion,
		Model:     s.cfg.Model.Name,
		WindowOps: s.cfg.windowOps(),
		Tracker:   s.tracker.State(),
		Routed:    s.routed.Load(),
		Shed:      s.shed.Load(),
	}
	s.poisoned.Range(func(k, _ any) bool {
		cp.Poisoned = append(cp.Poisoned, k.(string))
		return true
	})
	sort.Strings(cp.Poisoned)
	for _, r := range replies {
		cp.Partitions = append(cp.Partitions, r.parts...)
	}
	sort.Slice(cp.Partitions, func(i, j int) bool { return cp.Partitions[i].Key < cp.Partitions[j].Key })
	if err := obsfile.AtomicWriteFile(s.cfg.CheckpointPath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(&cp)
	}); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	s.checkpoints.Add(1)
	if c := s.cfg.Telemetry; c != nil {
		c.ServeCheckpoints.Add(1)
	}
	return nil
}

// Load reads a checkpoint file.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("serve: reading checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("serve: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	return &cp, nil
}

// Resume returns a copy of cfg configured to restore from the checkpoint at
// cfg.CheckpointPath: New rebuilds the partition state and the first
// Tracker.Events events of the replayed stream are skipped at ingest.
func Resume(cfg Config) (Config, error) {
	cp, err := Load(cfg.CheckpointPath)
	if err != nil {
		return cfg, err
	}
	cfg.resume = cp
	cfg.SkipEvents = cp.Tracker.Events
	return cfg, nil
}

// restore rebuilds service state from a checkpoint; the workers are not yet
// running, so partition state is written into their maps directly.
func (s *Server) restore(cp *Checkpoint) error {
	if cp.Model != s.cfg.Model.Name {
		return fmt.Errorf("serve: checkpoint is for model %q, serving %q", cp.Model, s.cfg.Model.Name)
	}
	if cp.WindowOps != s.cfg.windowOps() {
		return fmt.Errorf("serve: checkpoint used window %d, serving %d (window size must match for identical verdicts)",
			cp.WindowOps, s.cfg.windowOps())
	}
	dec := s.cfg.Model.DecodeState
	if dec == nil {
		return fmt.Errorf("serve: resuming model %q requires DecodeState", s.cfg.Model.Name)
	}
	s.tracker = obsfile.RestoreShardedTracker(cp.Tracker)
	s.routed.Store(cp.Routed)
	s.shed.Store(cp.Shed)
	s.applied.Store(cp.Routed)
	for _, k := range cp.Poisoned {
		s.poison(k)
	}
	for _, pc := range cp.Partitions {
		inc, err := monitor.NewIncremental(s.cfg.Model, s.stats)
		if err != nil {
			return err
		}
		states := make([]any, 0, len(pc.Frontier))
		for _, raw := range pc.Frontier {
			st, err := dec([]byte(raw))
			if err != nil {
				return fmt.Errorf("serve: partition %q: decoding state: %w", pc.Key, err)
			}
			states = append(states, st)
		}
		inc.SetFrontier(states)
		p := &part{key: pc.Key, inc: inc, ops: pc.Ops, windows: pc.Windows, failed: pc.Failed, errMsg: pc.Err}
		for _, ej := range pc.Window {
			e := ej.event()
			p.window = append(p.window, e)
			if e.Kind == history.Call {
				p.open++
			} else {
				p.open--
				p.completed++
			}
		}
		w := s.workers[s.workerFor(pc.Key)]
		w.parts[pc.Key] = p
		s.partsCreated.Add(1)
	}
	if s.partitionHint(cp) {
		s.sawNamedKey.Store(true)
	}
	return nil
}

// partitionHint reports whether the checkpoint shows named partitions, so
// the whole-object-op guard survives a restart.
func (s *Server) partitionHint(cp *Checkpoint) bool {
	for _, pc := range cp.Partitions {
		if pc.Key != "" {
			return true
		}
	}
	return false
}
