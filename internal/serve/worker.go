package serve

import (
	"fmt"
	"sort"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/obsfile"
)

// worker owns a shard of the partition space: every event of a given
// partition key lands on the same worker, so the per-partition state below
// is accessed by exactly one goroutine and needs no locks. Control messages
// ride the same FIFO queue as events, which is what makes them barriers:
// by the time a control is applied, every event routed before it has been
// folded into partition state.
type worker struct {
	srv   *Server
	ch    chan workItem
	parts map[string]*part
	done  chan struct{}
}

// part is the full retained state of one partition: the incremental checker
// (whose frontier summarizes everything already retired) plus the current
// window of not-yet-retired events. Once failed or errored the partition
// stops checking — the verdict is already final — but keeps counting ops so
// the accounting invariant stays exact.
type part struct {
	key        string
	inc        *monitor.Incremental
	window     []history.Event
	open       int   // open calls inside the window
	completed  int   // completed ops inside the window
	ops        int64 // completed ops observed in total
	windows    int64 // windows retired
	failed     bool  // verdict: not linearizable (final)
	errMsg     string
	overflowed bool // current window already counted as an overflow
	alerted    bool // OnVerdict already fired for this partition's failure

	// Fast streaming path (Config.FastMonitor, queue model only). While qs
	// is non-nil, verdicts come from the specialized streaming monitor and
	// inc stays at its initial frontier; retired windows are logged in
	// fastLog (with fastCuts marking the original window boundaries) so the
	// partition can convert to the incremental checker — replaying the
	// logged windows exactly as the slow path would have retired them — the
	// moment the stream leaves the decidable fragment or the log outgrows
	// its cap. After conversion qs is nil and the partition is
	// indistinguishable from one that ran the slow path from the start.
	qs       *fast.QueueStream
	fastLog  []history.Event
	fastCuts []int
}

func (w *worker) loop() {
	defer close(w.done)
	for item := range w.ch {
		switch {
		case item.ctl != nil:
			w.control(item.ctl)
		case item.batch != nil:
			w.srv.applied.Add(int64(len(item.batch)))
			for _, r := range item.batch {
				w.apply(r.key, r.ev)
			}
		default:
			w.srv.applied.Add(1)
			w.apply(item.key, item.ev)
		}
	}
}

func (w *worker) part(key string) *part {
	p, ok := w.parts[key]
	if !ok {
		inc, err := monitor.NewIncremental(w.srv.cfg.Model, w.srv.stats)
		p = &part{key: key, inc: inc}
		if err != nil {
			p.errMsg = err.Error()
		}
		if w.srv.cfg.FastMonitor && err == nil {
			p.qs = fast.NewQueueStream()
		}
		w.parts[key] = p
		w.srv.partsCreated.Add(1)
	}
	return p
}

// apply folds one event into its partition's window and retires the window
// when the partition quiesces with enough completed operations. Model code
// runs under the checker's panic containment; a worker-level recover guards
// the bookkeeping itself so one poisoned partition cannot take the pool down.
func (w *worker) apply(key string, ev obsfile.StreamEvent) {
	defer func() {
		if r := recover(); r != nil {
			p := w.part(key)
			if p.errMsg == "" {
				p.errMsg = fmt.Sprintf("serve: partition %q: internal panic: %v", key, r)
			}
		}
	}()
	p := w.part(key)
	if ev.Kind == history.Return {
		p.ops++
	}
	if p.failed || p.errMsg != "" {
		return // verdict is final; count and drop
	}
	p.window = append(p.window, ev.HistoryEvent())
	if ev.Kind == history.Call {
		p.open++
	} else {
		p.open--
		p.completed++
	}
	if p.qs != nil {
		p.qs.Apply(ev.HistoryEvent())
		if p.qs.Ambiguous() {
			// Out of the fragment mid-window: convert now. The current
			// window stays; the next flush retires it through the
			// incremental checker like any slow-path window.
			w.convert(p)
		}
	}
	if n := int64(len(p.window)); n > w.srv.maxWindow.Load() {
		w.srv.maxWindow.Store(n) // worker-racy high watermark; close enough for a gauge
	}
	if p.open == 0 && p.completed >= w.srv.cfg.windowOps() {
		w.flush(p)
	} else if p.open > 0 && !p.overflowed && len(p.window) > w.srv.cfg.maxWindowEvents() {
		// The partition refuses to quiesce: its window now exceeds the soft
		// cap. Memory for it is no longer bounded (correctness requires
		// keeping the events); surface that as a counted overflow.
		p.overflowed = true
		w.srv.overflows.Add(1)
		if c := w.srv.cfg.Telemetry; c != nil {
			c.ServeWindowOverflows.Add(1)
		}
	}
}

// flush retires the partition's current window through the incremental
// checker, consulting the shared dedup cache first: many partitions running
// the same workload produce identical (frontier, window) transitions, and
// equal fingerprints mean behaviorally identical states, so replaying the
// cached resulting frontier is sound.
func (w *worker) flush(p *part) {
	s := w.srv
	if p.qs != nil {
		w.flushFast(p)
		return
	}
	h := &history.History{Events: p.window}
	retiredOps := p.completed
	if s.cache != nil {
		key, entry := s.cache.lookup(p.inc.FrontierFingerprints(), p.window)
		if entry != nil {
			p.inc.SetFrontier(entry.states)
			p.failed = !entry.ok
			if c := s.cfg.Telemetry; c != nil {
				c.ServeCacheHits.Add(1)
			}
		} else {
			ok, err := p.inc.ExtendComplete(h)
			if err != nil {
				p.errMsg = err.Error()
				return
			}
			p.failed = !ok
			s.cache.put(key, ok, p.inc.FrontierStates())
		}
	} else {
		ok, err := p.inc.ExtendComplete(h)
		if err != nil {
			p.errMsg = err.Error()
			return
		}
		p.failed = !ok
	}
	p.window = p.window[:0]
	p.completed = 0
	p.overflowed = false
	p.windows++
	s.flushes.Add(1)
	s.opsChecked.Add(int64(retiredOps))
	if n := int64(p.inc.FrontierSize()); n > s.maxFrontier.Load() {
		s.maxFrontier.Store(n)
	}
	if c := s.cfg.Telemetry; c != nil {
		c.ServeWindowFlushes.Add(1)
		c.ServeOpsChecked.Add(int64(retiredOps))
	}
	if p.failed && !p.alerted && s.cfg.OnVerdict != nil {
		p.alerted = true
		s.cfg.OnVerdict(w.verdict(p, true))
	}
}

// flushFast retires the window through the streaming monitor: Quiesce judges
// every event applied so far, and the retired window is appended to the
// replay log so a later conversion can hand the incremental checker the exact
// window sequence the slow path would have seen. When the log outgrows its
// cap the partition converts immediately, restoring bounded memory.
func (w *worker) flushFast(p *part) {
	s := w.srv
	retiredOps := p.completed
	ok, err := p.qs.Quiesce()
	if err != nil {
		// Ambiguity normally converts at apply time; if Quiesce still
		// reports it, convert and retire this window the slow way.
		w.convert(p)
		if p.failed || p.errMsg != "" {
			return
		}
		w.flush(p)
		return
	}
	p.failed = !ok
	p.fastLog = append(p.fastLog, p.window...)
	p.fastCuts = append(p.fastCuts, len(p.fastLog))
	p.window = p.window[:0]
	p.completed = 0
	p.overflowed = false
	p.windows++
	s.flushes.Add(1)
	s.opsChecked.Add(int64(retiredOps))
	if c := s.cfg.Telemetry; c != nil {
		c.ServeWindowFlushes.Add(1)
		c.ServeOpsChecked.Add(int64(retiredOps))
	}
	s.cfg.Telemetry.AddFastHit()
	if p.failed {
		// The verdict is final; the replay log will never be needed.
		p.fastLog, p.fastCuts, p.qs = nil, nil, nil
		if !p.alerted && s.cfg.OnVerdict != nil {
			p.alerted = true
			s.cfg.OnVerdict(w.verdict(p, true))
		}
		return
	}
	if len(p.fastLog) > s.cfg.maxFastLogEvents() {
		w.convert(p)
	}
}

// convert switches a partition from the streaming monitor to the incremental
// checker by replaying the retired windows with their original boundaries —
// the exact ExtendComplete sequence the slow path would have run — so the
// resulting frontier is bit-identical to a slow-path run from the start. The
// current (unretired) window stays in place and is judged by whichever flush
// or finish comes next.
func (w *worker) convert(p *part) {
	w.srv.cfg.Telemetry.AddFastFallback()
	prev := 0
	for _, cut := range p.fastCuts {
		h := &history.History{Events: p.fastLog[prev:cut]}
		ok, err := p.inc.ExtendComplete(h)
		if err != nil {
			p.errMsg = err.Error()
			break
		}
		if !ok {
			p.failed = true
			break
		}
		prev = cut
	}
	p.fastLog, p.fastCuts, p.qs = nil, nil, nil
}

// verdict renders the partition's current judgment. final marks verdicts
// that can no longer change (a failure, or the Close pass).
func (w *worker) verdict(p *part, final bool) PartitionVerdict {
	return PartitionVerdict{
		Key:          p.key,
		Linearizable: !p.failed && p.errMsg == "",
		Final:        final,
		Err:          p.errMsg,
		Ops:          p.ops,
		Windows:      p.windows,
		Frontier:     p.inc.FrontierSize(),
	}
}

func (w *worker) control(msg *ctlMsg) {
	var reply ctlReply
	switch msg.kind {
	case ctlDrain:
		// nothing: reaching this point is the barrier
	case ctlStatus:
		for _, key := range w.sortedKeys() {
			p := w.parts[key]
			reply.verds = append(reply.verds, w.verdict(p, p.failed || p.errMsg != ""))
		}
	case ctlSnapshot:
		reply.parts, reply.err = w.snapshot()
	case ctlFinish:
		reply.verds, reply.err = w.finish(msg.stuck)
	case ctlHold:
		// Acknowledge first so the holder learns every worker is parked, then
		// wait for the release: queued work accumulates undrained meanwhile.
		msg.ack <- reply
		<-msg.hold
		return
	}
	msg.ack <- reply
}

func (w *worker) sortedKeys() []string {
	keys := make([]string, 0, len(w.parts))
	for k := range w.parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// finish judges every partition's residual window — including pending
// operations and the stream's stuck marker — producing the final verdicts.
func (w *worker) finish(stuck bool) ([]PartitionVerdict, error) {
	var out []PartitionVerdict
	for _, key := range w.sortedKeys() {
		p := w.parts[key]
		if !p.failed && p.errMsg == "" {
			decided := false
			if p.qs != nil && !stuck && p.open == 0 {
				// The whole stream — retired windows and residual window
				// alike — has already flowed through the streaming monitor,
				// so with no pending operations its quiescent verdict is the
				// final one and the incremental checker (still at its initial
				// frontier) must not run.
				if ok, err := p.qs.Quiesce(); err == nil {
					p.failed = !ok
					decided = true
					w.srv.cfg.Telemetry.AddFastHit()
					p.fastLog, p.fastCuts, p.qs = nil, nil, nil
				}
			}
			if !decided {
				if p.qs != nil {
					w.convert(p)
				}
				if !p.failed && p.errMsg == "" {
					h := &history.History{Events: p.window, Stuck: stuck}
					res, err := p.inc.Finish(h)
					if err != nil {
						p.errMsg = err.Error()
					} else {
						p.failed = !res.Linearizable
					}
				}
			}
			// The residual window's completed ops were just judged too.
			w.srv.opsChecked.Add(int64(p.completed))
			if c := w.srv.cfg.Telemetry; c != nil {
				c.ServeOpsChecked.Add(int64(p.completed))
			}
		}
		v := w.verdict(p, true)
		if p.failed && !p.alerted && w.srv.cfg.OnVerdict != nil {
			p.alerted = true
			w.srv.cfg.OnVerdict(v)
		}
		out = append(out, v)
	}
	return out, nil
}
