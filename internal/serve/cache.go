package serve

import (
	"encoding/binary"
	"hash/fnv"
	"sync"

	"lineup/internal/history"
)

// windowCache deduplicates window transitions across partitions, the same
// technique as the phase-2 history cache of internal/core: canonical byte
// encoding, interned symbols, FNV-1a bucketing with byte-exact comparison.
// The key is (frontier fingerprints, canonical window); the value is the
// transition result — whether the window linearized and the resulting
// frontier states. Two states with equal fingerprints are behaviorally
// identical (the Model.Fingerprint contract), so replaying a cached frontier
// is sound. Operation indices and thread ids are relabeled densely in
// first-appearance order during encoding: they carry no meaning beyond
// pairing calls with returns, and relabeling lets identical workloads on
// different partitions — whose global op indices necessarily differ — share
// entries.
type windowCache struct {
	mu      sync.Mutex
	syms    map[string]uint32
	buckets map[uint64][]*windowEntry
	buf     []byte
	ids     map[int]uint32 // scratch: op index relabeling, reset per encode
	hits    int64
	entries int64
}

// windowEntry is one cached transition.
type windowEntry struct {
	key    []byte
	ok     bool
	states []any
}

func newWindowCache() *windowCache {
	return &windowCache{
		syms:    make(map[string]uint32),
		buckets: make(map[uint64][]*windowEntry),
		ids:     make(map[int]uint32),
	}
}

func (c *windowCache) sym(s string) uint32 {
	id, ok := c.syms[s]
	if !ok {
		id = uint32(len(c.syms))
		c.syms[s] = id
	}
	return id
}

// encode builds the canonical key into c.buf. Caller holds c.mu.
func (c *windowCache) encode(fps []string, events []history.Event) {
	c.buf = c.buf[:0]
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint32) {
		n := binary.PutUvarint(tmp[:], uint64(v))
		c.buf = append(c.buf, tmp[:n]...)
	}
	put(uint32(len(fps)))
	for _, fp := range fps {
		put(c.sym(fp))
	}
	for k := range c.ids {
		delete(c.ids, k)
	}
	for _, e := range events {
		id, ok := c.ids[e.Index]
		if !ok {
			id = uint32(len(c.ids))
			c.ids[e.Index] = id
		}
		if e.Kind == history.Call {
			c.buf = append(c.buf, 0)
			put(id)
			put(c.sym(e.Op))
		} else {
			c.buf = append(c.buf, 1)
			put(id)
			put(c.sym(e.Result))
		}
	}
}

// lookup returns the cached entry for (fps, events), or (key, nil) on a
// miss; the returned key is a copy the caller passes back to put once the
// transition is computed.
func (c *windowCache) lookup(fps []string, events []history.Event) ([]byte, *windowEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.encode(fps, events)
	h := fnv.New64a()
	_, _ = h.Write(c.buf)
	sum := h.Sum64()
	for _, e := range c.buckets[sum] {
		if string(e.key) == string(c.buf) {
			c.hits++
			return nil, e
		}
	}
	return append([]byte(nil), c.buf...), nil
}

// put records a computed transition under a key returned by lookup. A
// concurrent duplicate (two workers computing the same transition) keeps the
// first entry; the values are identical by determinism of the search.
func (c *windowCache) put(key []byte, ok bool, states []any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := fnv.New64a()
	_, _ = h.Write(key)
	sum := h.Sum64()
	for _, e := range c.buckets[sum] {
		if string(e.key) == string(key) {
			return
		}
	}
	c.buckets[sum] = append(c.buckets[sum], &windowEntry{key: key, ok: ok, states: states})
	c.entries++
}

func (c *windowCache) counts() (hits, entries int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.entries
}
