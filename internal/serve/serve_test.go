package serve_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
	"lineup/internal/telemetry"
)

// genPartition generates a random complete single-partition register history
// as raw trace events: results are assigned at return time by stepping a
// live model, so the history is linearizable by construction; corrupt flips
// one result. Threads are drawn from [base, base+threads) so several
// partitions can interleave in one globally well-formed trace.
func genPartition(rng *rand.Rand, key string, base, nOps int, corrupt bool) []obsfile.TraceEvent {
	m := monitor.RegisterModel()
	state := m.Init()
	open := map[int]string{}
	const threads = 3
	var evs []obsfile.TraceEvent
	issued := 0
	for issued < nOps || len(open) > 0 {
		th := base + rng.Intn(threads)
		if op, busy := open[th]; busy && (rng.Intn(2) == 0 || issued >= nOps) {
			res, next, err := m.Step(state, op)
			if err != nil {
				panic(err)
			}
			state = next
			evs = append(evs, obsfile.TraceEvent{T: th, K: "ret", Op: op, Res: res})
			delete(open, th)
		} else if !busy && issued < nOps {
			var op string
			if rng.Intn(2) == 0 {
				op = fmt.Sprintf("Write(%d)", 1+rng.Intn(3))
			} else {
				op = "Read()"
			}
			evs = append(evs, obsfile.TraceEvent{T: th, K: "call", Op: op, P: key})
			open[th] = op
			issued++
		}
	}
	if corrupt {
		rets := []int{}
		for i, e := range evs {
			if e.K == "ret" {
				rets = append(rets, i)
			}
		}
		i := rets[rng.Intn(len(rets))]
		for _, wrong := range []string{"7", "ok"} {
			if wrong != evs[i].Res {
				evs[i].Res = wrong
				break
			}
		}
	}
	return evs
}

// interleave merges per-partition event sequences into one trace, preserving
// each partition's order.
func interleave(rng *rand.Rand, parts [][]obsfile.TraceEvent) []obsfile.TraceEvent {
	var out []obsfile.TraceEvent
	pos := make([]int, len(parts))
	for {
		live := []int{}
		for i := range parts {
			if pos[i] < len(parts[i]) {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			return out
		}
		i := live[rng.Intn(len(live))]
		out = append(out, parts[i][pos[i]])
		pos[i]++
	}
}

// batchVerdict checks one partition's sub-history with the batch monitor.
func batchVerdict(t *testing.T, m *monitor.Model, evs []obsfile.TraceEvent, key string) bool {
	t.Helper()
	tr := obsfile.NewStreamTracker()
	h := &history.History{}
	line := 0
	for _, ev := range evs {
		line++
		sev, err := tr.Apply(ev, line)
		if err != nil {
			t.Fatalf("tracker: %v", err)
		}
		if sev.Part == key && !sev.Stuck {
			h.Events = append(h.Events, sev.HistoryEvent())
		}
	}
	out, err := monitor.Check(m, h, monitor.Options{NoPartition: true})
	if err != nil {
		t.Fatalf("batch Check: %v", err)
	}
	return out.Linearizable
}

func ingestAll(t *testing.T, s *serve.Server, evs []obsfile.TraceEvent) {
	t.Helper()
	for _, ev := range evs {
		if err := s.Ingest(ev); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
}

// TestServeMatchesBatch: the tentpole equivalence — for random multi-
// partition traces (some corrupted), every partition's streaming verdict
// equals the batch monitor's verdict on that partition's sub-history.
func TestServeMatchesBatch(t *testing.T) {
	m := monitor.RegisterModel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		keys := []string{"a", "b", "c"}
		parts := make([][]obsfile.TraceEvent, len(keys))
		for i, k := range keys {
			parts[i] = genPartition(rng, k, i*10, 3+rng.Intn(8), rng.Intn(2) == 1)
		}
		trace := interleave(rng, parts)
		s, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ingestAll(t, s, trace)
		sum, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		if len(sum.Verdicts) != len(keys) {
			t.Fatalf("trial %d: %d verdicts, want %d", trial, len(sum.Verdicts), len(keys))
		}
		for i, k := range keys {
			want := batchVerdict(t, m, trace, k)
			var got *serve.PartitionVerdict
			for j := range sum.Verdicts {
				if sum.Verdicts[j].Key == k {
					got = &sum.Verdicts[j]
				}
			}
			if got == nil {
				t.Fatalf("trial %d: no verdict for partition %q", trial, k)
			}
			if got.Err != "" {
				t.Fatalf("trial %d partition %q: error %q", trial, k, got.Err)
			}
			if got.Linearizable != want {
				t.Fatalf("trial %d partition %q: serve says %v, batch says %v\nsub-history ops=%d",
					trial, k, got.Linearizable, want, len(parts[i])/2)
			}
		}
	}
}

// genQueuePartition generates a random complete single-partition queue
// history with unique values, results assigned by stepping the live model at
// return time (linearizable by construction). With allowEmpty false a
// dequeue is issued only when an already-returned enqueue guarantees it
// succeeds, so the trace stays inside the fast monitor's decidable fragment;
// with allowEmpty true TryDequeue may hit an empty queue and return Fail,
// forcing the streaming monitor to fall back mid-stream. corrupt rewrites
// one successful dequeue to a never-enqueued value.
func genQueuePartition(rng *rand.Rand, key string, base, nOps int, allowEmpty, corrupt bool) []obsfile.TraceEvent {
	m := monitor.QueueModel()
	state := m.Init()
	open := map[int]string{}
	const threads = 3
	var evs []obsfile.TraceEvent
	issued, next := 0, 0
	confirmed, reserved := 0, 0 // enqueue returns seen vs dequeues issued
	for issued < nOps || len(open) > 0 {
		th := base + rng.Intn(threads)
		if op, busy := open[th]; busy && (rng.Intn(2) == 0 || issued >= nOps) {
			res, nextState, err := m.Step(state, op)
			if err != nil {
				panic(err)
			}
			state = nextState
			if strings.HasPrefix(op, "Enqueue") {
				confirmed++
			}
			evs = append(evs, obsfile.TraceEvent{T: th, K: "ret", Op: op, Res: res})
			delete(open, th)
		} else if !busy && issued < nOps {
			var op string
			if rng.Intn(2) == 0 && (allowEmpty || reserved < confirmed) {
				op = "TryDequeue()"
				reserved++
			} else {
				op = fmt.Sprintf("Enqueue(%d)", next)
				next++
			}
			evs = append(evs, obsfile.TraceEvent{T: th, K: "call", Op: op, P: key})
			open[th] = op
			issued++
		}
	}
	if corrupt {
		var deqRets []int
		for i, e := range evs {
			if e.K == "ret" && strings.HasPrefix(e.Op, "TryDequeue") && e.Res != "Fail" {
				deqRets = append(deqRets, i)
			}
		}
		if len(deqRets) > 0 {
			evs[deqRets[rng.Intn(len(deqRets))]].Res = "9999"
		} else {
			for i := len(evs) - 1; i >= 0; i-- {
				if evs[i].K == "ret" {
					evs[i].Res = "9999"
					break
				}
			}
		}
	}
	return evs
}

// TestServeFastMatchesBatch: with the streaming fast monitor enabled the
// per-partition verdicts still equal the batch monitor's — whether a
// partition is decided entirely on the fast path, falls out of the fragment
// and converts to the incremental checker mid-stream, or outgrows the replay
// log cap — and the telemetry records both paths.
func TestServeFastMatchesBatch(t *testing.T) {
	m := monitor.QueueModel()
	rng := rand.New(rand.NewSource(13))
	col := telemetry.New()
	for trial := 0; trial < 25; trial++ {
		keys := []string{"a", "b", "c"}
		parts := make([][]obsfile.TraceEvent, len(keys))
		for i, k := range keys {
			nOps := 4 + rng.Intn(8)
			if trial == 0 && i == 0 {
				nOps = 90 // outgrow the 64×WindowOps replay log: cap conversion
			}
			parts[i] = genQueuePartition(rng, k, i*10, nOps, i == 2, rng.Intn(3) == 0)
		}
		trace := interleave(rng, parts)
		s, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2, FastMonitor: true, Telemetry: col})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ingestAll(t, s, trace)
		sum, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		for _, k := range keys {
			want := batchVerdict(t, m, trace, k)
			var got *serve.PartitionVerdict
			for j := range sum.Verdicts {
				if sum.Verdicts[j].Key == k {
					got = &sum.Verdicts[j]
				}
			}
			if got == nil {
				t.Fatalf("trial %d: no verdict for partition %q", trial, k)
			}
			if got.Err != "" {
				t.Fatalf("trial %d partition %q: error %q", trial, k, got.Err)
			}
			if got.Linearizable != want {
				t.Fatalf("trial %d partition %q: fast serve says %v, batch says %v",
					trial, k, got.Linearizable, want)
			}
		}
	}
	if col.FastHits.Load() == 0 || col.FastFallbacks.Load() == 0 {
		t.Fatalf("telemetry: fast hits=%d fallbacks=%d, want both paths exercised",
			col.FastHits.Load(), col.FastFallbacks.Load())
	}
}

// TestServeFastConfigErrors: the fast monitor is rejected up front for
// models it does not specialize and for the checkpoint combination.
func TestServeFastConfigErrors(t *testing.T) {
	if _, err := serve.New(serve.Config{Model: monitor.RegisterModel(), FastMonitor: true}); err == nil ||
		!strings.Contains(err.Error(), "queue model only") {
		t.Fatalf("register + fast: err=%v, want queue-only rejection", err)
	}
	cp := filepath.Join(t.TempDir(), "ck.json")
	if _, err := serve.New(serve.Config{Model: monitor.QueueModel(), FastMonitor: true, CheckpointPath: cp}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("fast + checkpoint: err=%v, want checkpoint rejection", err)
	}
}

// TestServeModelDerivedPartition: without explicit keys, routing falls back
// to the model's Partition function (set model: per-value keys).
func TestServeModelDerivedPartition(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.SetModel(), WindowOps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ingestAll(t, s, []obsfile.TraceEvent{
		{T: 0, K: "call", Op: "Add(1)"}, {T: 0, K: "ret", Op: "Add(1)", Res: "true"},
		{T: 1, K: "call", Op: "Add(2)"}, {T: 1, K: "ret", Op: "Add(2)", Res: "true"},
		{T: 0, K: "call", Op: "Contains(1)"}, {T: 0, K: "ret", Op: "Contains(1)", Res: "true"},
	})
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sum.Linearizable || len(sum.Verdicts) != 2 {
		t.Fatalf("got linearizable=%v verdicts=%v, want true with partitions 1 and 2", sum.Linearizable, sum.Verdicts)
	}
}

// TestServeWholeObjectOpRejected: a whole-object observer (set Count) on a
// stream already split into named partitions breaks P-compositionality and
// must fail ingest, not silently misjudge.
func TestServeWholeObjectOpRejected(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.SetModel()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Ingest(obsfile.TraceEvent{T: 0, K: "call", Op: "Add(1)"}); err != nil {
		t.Fatalf("keyed op: %v", err)
	}
	err = s.Ingest(obsfile.TraceEvent{T: 1, K: "call", Op: "Count()"})
	if err == nil || !strings.Contains(err.Error(), "whole object") {
		t.Fatalf("Count() on a partitioned stream: err=%v, want whole-object rejection", err)
	}
	_, _ = s.Close()
}

// slowModel wraps the register model with a per-Step delay so the test can
// outrun the checker and force backpressure.
func slowModel(d time.Duration) *monitor.Model {
	m := monitor.RegisterModel()
	step := m.Step
	m.Step = func(state any, op string) (string, any, error) {
		time.Sleep(d)
		return step(state, op)
	}
	return m
}

// TestServeShedAccounting: under the shed policy every ingested event is
// accounted for — routed + shed equals the tracker's accepted count, sheds
// are counted, and a shed partition is reported Shed rather than judged.
func TestServeShedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := []string{"a", "b", "c", "d"}
	parts := make([][]obsfile.TraceEvent, len(keys))
	for i, k := range keys {
		parts[i] = genPartition(rng, k, i*10, 40, false)
	}
	trace := interleave(rng, parts)
	col := telemetry.New()
	s, err := serve.New(serve.Config{
		Model:        slowModel(2 * time.Millisecond),
		Workers:      2,
		WindowOps:    1,
		QueueDepth:   4,
		Backpressure: serve.ShedOnFull,
		NoDedup:      true, // cache hits would defeat the slow model
		Telemetry:    col,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ingestAll(t, s, trace)
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := sum.Stats
	if st.EventsIngested != int64(len(trace)) {
		t.Fatalf("ingested %d, want %d", st.EventsIngested, len(trace))
	}
	if st.EventsRouted+st.EventsShed != st.EventsIngested {
		t.Fatalf("accounting: routed %d + shed %d != ingested %d", st.EventsRouted, st.EventsShed, st.EventsIngested)
	}
	if st.EventsApplied != st.EventsRouted {
		t.Fatalf("after close: applied %d != routed %d", st.EventsApplied, st.EventsRouted)
	}
	if st.EventsShed == 0 {
		t.Fatal("expected sheds with a slow model and queue depth 4")
	}
	snap := col.Snapshot()
	if snap.ServeEventsShed != st.EventsShed || snap.ServeEventsIngested != st.EventsIngested {
		t.Fatalf("telemetry mirror: %+v vs stats %+v", snap, st)
	}
	shedParts := 0
	for _, v := range sum.Verdicts {
		if v.Shed {
			shedParts++
		}
	}
	if shedParts == 0 {
		t.Fatal("no partition reported Shed")
	}
}

// TestServeBlockNeverSheds: the block policy stalls the producer instead of
// dropping; every event is applied.
func TestServeBlockNeverSheds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trace := interleave(rng, [][]obsfile.TraceEvent{
		genPartition(rng, "a", 0, 30, false),
		genPartition(rng, "b", 10, 30, false),
	})
	s, err := serve.New(serve.Config{
		Model:      slowModel(time.Millisecond),
		Workers:    2,
		WindowOps:  1,
		QueueDepth: 2,
		NoDedup:    true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ingestAll(t, s, trace)
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := sum.Stats
	if st.EventsShed != 0 || st.EventsApplied != int64(len(trace)) {
		t.Fatalf("block policy: shed=%d applied=%d want 0/%d", st.EventsShed, st.EventsApplied, len(trace))
	}
	if !sum.Linearizable {
		t.Fatalf("linearizable trace judged %v", sum.Verdicts)
	}
}

// TestServeBoundedWindow: a long linearizable stream is retired window by
// window — the widest window observed stays within the configured bound
// instead of growing with the stream.
func TestServeBoundedWindow(t *testing.T) {
	m := monitor.QueueModel()
	s, err := serve.New(serve.Config{Model: m, Workers: 1, WindowOps: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 2000; i++ {
		op := fmt.Sprintf("Enqueue(%d)", i%5)
		if err := s.Ingest(obsfile.TraceEvent{T: 0, K: "call", Op: op}); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		if err := s.Ingest(obsfile.TraceEvent{T: 0, K: "ret", Op: op, Res: "ok"}); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sum.Linearizable {
		t.Fatalf("sequential enqueue stream judged %+v", sum.Verdicts)
	}
	if sum.Stats.WindowFlushes < 100 {
		t.Fatalf("window flushes = %d, want many", sum.Stats.WindowFlushes)
	}
	// Serial stream: quiescent after every return, so windows retire right
	// at the threshold (2*8 events) and never approach the overflow cap.
	if sum.Stats.MaxWindowEvents > 2*8 {
		t.Fatalf("max window = %d events, want <= 16", sum.Stats.MaxWindowEvents)
	}
	if sum.Stats.WindowOverflows != 0 {
		t.Fatalf("overflows = %d, want 0", sum.Stats.WindowOverflows)
	}
}

// TestServeCheckpointResume: checkpoint mid-stream, abandon the server, and
// resume a fresh one over the replayed stream — the final verdicts must be
// identical to an uninterrupted run (one partition is corrupted on purpose).
func TestServeCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	keys := []string{"a", "b", "c"}
	parts := make([][]obsfile.TraceEvent, len(keys))
	for i, k := range keys {
		parts[i] = genPartition(rng, k, i*10, 20, i == 1)
	}
	trace := interleave(rng, parts)
	m := monitor.RegisterModel()

	uninterrupted, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ingestAll(t, uninterrupted, trace)
	wantSum, err := uninterrupted.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}

	cpPath := filepath.Join(t.TempDir(), "serve.ckpt")
	first, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2, CheckpointPath: cpPath})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cut := len(trace) / 2
	ingestAll(t, first, trace[:cut])
	if err := first.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Abandon `first` without Close: the crash. (Its goroutines drain idle.)

	cfg, err := serve.Resume(serve.Config{Model: m, Workers: 2, WindowOps: 2, CheckpointPath: cpPath})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if cfg.SkipEvents != int64(cut) {
		t.Fatalf("SkipEvents = %d, want %d", cfg.SkipEvents, cut)
	}
	resumed, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("New(resumed): %v", err)
	}
	ingestAll(t, resumed, trace) // full replay; the first half is skipped
	gotSum, err := resumed.Close()
	if err != nil {
		t.Fatalf("Close(resumed): %v", err)
	}

	if len(gotSum.Verdicts) != len(wantSum.Verdicts) {
		t.Fatalf("verdict count: got %d want %d", len(gotSum.Verdicts), len(wantSum.Verdicts))
	}
	for i := range wantSum.Verdicts {
		w, g := wantSum.Verdicts[i], gotSum.Verdicts[i]
		if w.Key != g.Key || w.Linearizable != g.Linearizable || w.Err != g.Err || w.Ops != g.Ops {
			t.Fatalf("verdict %d differs after resume:\nuninterrupted: %+v\nresumed:       %+v", i, w, g)
		}
	}
	if gotSum.Linearizable != wantSum.Linearizable {
		t.Fatalf("summary verdict: got %v want %v", gotSum.Linearizable, wantSum.Linearizable)
	}
}

// TestServeDedupCacheShares: many partitions running an identical workload
// share window transitions through the dedup cache.
func TestServeDedupCacheShares(t *testing.T) {
	m := monitor.RegisterModel()
	col := telemetry.New()
	s, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 1, Telemetry: col})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for p := 0; p < 16; p++ {
		key := fmt.Sprintf("k%02d", p)
		th := p
		for i := 0; i < 4; i++ {
			ingestAll(t, s, []obsfile.TraceEvent{
				{T: th, K: "call", Op: "Write(1)", P: key},
				{T: th, K: "ret", Op: "Write(1)", Res: "ok"},
			})
		}
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sum.Linearizable {
		t.Fatalf("verdicts: %+v", sum.Verdicts)
	}
	if sum.Stats.CacheHits == 0 {
		t.Fatalf("cache hits = 0 across 16 identical partitions (entries %d)", sum.Stats.CacheEntries)
	}
	if sum.Stats.CacheEntries >= sum.Stats.WindowFlushes {
		t.Fatalf("entries %d not smaller than flushes %d", sum.Stats.CacheEntries, sum.Stats.WindowFlushes)
	}
}

// TestServeHTTPIngest: the HTTP transport shares the global tracker — a
// batch posted over HTTP lands in the same partitions, and /stats and
// /verdicts serve live JSON.
func TestServeHTTPIngest(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.RegisterModel(), WindowOps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	body := strings.Join([]string{
		`{"t":0,"k":"call","op":"Write(5)","p":"x"}`,
		`{"t":0,"k":"ret","op":"Write(5)","res":"ok"}`,
		`{"t":0,"k":"call","op":"Read()","p":"x"}`,
		`{"t":0,"k":"ret","op":"Read()","res":"5"}`,
	}, "\n")
	resp, err := http.Post("http://"+addr+"/ingest", "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(out, []byte(`"ingested":4`)) {
		t.Fatalf("POST /ingest: status %d body %q", resp.StatusCode, out)
	}
	resp, err = http.Get("http://" + addr + "/verdicts")
	if err != nil {
		t.Fatalf("GET /verdicts: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(out, []byte(`"partition": "x"`)) {
		t.Fatalf("GET /verdicts: %s", out)
	}
	resp, err = http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(out, []byte(`"events_ingested": 4`)) {
		t.Fatalf("GET /stats: %s", out)
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sum.Linearizable {
		t.Fatalf("verdicts: %+v", sum.Verdicts)
	}
	// The endpoint is down after Close.
	if _, err := http.Get("http://" + addr + "/stats"); err == nil {
		t.Fatal("HTTP endpoint still serving after Close")
	}
}

// TestServeHTTPIngestBodyCap: a body over MaxIngestBytes is rejected with a
// clean 413 naming the cap; events before the cap are ingested (at-least-once
// batch semantics) and the server keeps serving afterwards.
func TestServeHTTPIngestBodyCap(t *testing.T) {
	s, err := serve.New(serve.Config{
		Model: monitor.RegisterModel(), WindowOps: 1,
		MaxIngestBytes: 256,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	var big strings.Builder
	for i := 0; big.Len() < 4096; i++ {
		fmt.Fprintf(&big, "{\"t\":0,\"k\":\"call\",\"op\":\"Write(1)\",\"p\":\"x\"}\n{\"t\":0,\"k\":\"ret\",\"op\":\"Write(1)\",\"res\":\"ok\"}\n")
	}
	resp, err := http.Post("http://"+addr+"/ingest", "application/jsonl", strings.NewReader(big.String()))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d body %q", resp.StatusCode, out)
	}
	if !bytes.Contains(out, []byte("256-byte cap")) {
		t.Fatalf("413 body does not name the cap: %q", out)
	}
	// The server survived: a small, well-formed batch still ingests.
	resp, err = http.Post("http://"+addr+"/ingest", "application/jsonl",
		strings.NewReader(`{"t":1,"k":"call","op":"Read()","p":"y"}`+"\n"+`{"t":1,"k":"ret","op":"Read()","res":"0"}`))
	if err != nil {
		t.Fatalf("POST after 413: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST after 413: status %d body %q", resp.StatusCode, out)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServeHTTPStalledHeaders: a client that connects and then goes silent is
// cut off at ReadHeaderTimeout instead of holding its connection open forever.
func TestServeHTTPStalledHeaders(t *testing.T) {
	s, err := serve.New(serve.Config{
		Model: monitor.RegisterModel(), WindowOps: 1,
		ReadHeaderTimeout: 150 * time.Millisecond,
		IdleTimeout:       150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Half a request line, then silence: the server must close the
	// connection, observed here as EOF/reset well before the read deadline.
	if _, err := conn.Write([]byte("POST /ingest HT")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			break // connection torn down by the server
		}
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("stalled connection still open after %v", elapsed)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServeMalformedStreamFailsStop: a bad event fails ingest without
// wedging the pool, and Close still works.
func TestServeMalformedStreamFailsStop(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.RegisterModel()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Ingest(obsfile.TraceEvent{T: 0, K: "ret", Res: "ok"}); err == nil {
		t.Fatal("return without open call ingested")
	}
	if _, err := s.IngestReader(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed JSON ingested")
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close after errors: %v", err)
	}
}
