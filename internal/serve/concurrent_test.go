package serve_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
)

// TestServeConcurrentShedAccounting is the accounting regression test: four
// connections ingest concurrently under ShedOnFull (half per-event, half
// batched) while checkpoints race the stream, and the invariant must hold
// exactly — every tracker-accepted event counted once as routed or shed, with
// a shed racing a checkpoint barrier neither double-counted nor lost. Run
// under -race (make check's serve smoke does).
func TestServeConcurrentShedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const conns = 4
	traces := make([][]obsfile.TraceEvent, conns)
	var total int64
	for i := range traces {
		// Each connection carries two partitions of its own; threads are
		// disjoint across connections, per the determinism contract.
		traces[i] = interleave(rng, [][]obsfile.TraceEvent{
			genPartition(rng, fmt.Sprintf("c%d-a", i), i*100, 30, false),
			genPartition(rng, fmt.Sprintf("c%d-b", i), i*100+10, 30, false),
		})
		total += int64(len(traces[i]))
	}
	s, err := serve.New(serve.Config{
		Model:          slowModel(time.Millisecond),
		Workers:        2,
		WindowOps:      1,
		QueueDepth:     4,
		Backpressure:   serve.ShedOnFull,
		NoDedup:        true, // cache hits would defeat the slow model
		CheckpointPath: filepath.Join(t.TempDir(), "serve.ckpt"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, conns+1)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.NewConn()
			defer c.Release()
			if i%2 == 0 {
				for _, ev := range traces[i] {
					if err := c.Ingest(ev); err != nil {
						errs <- fmt.Errorf("conn %d: %w", i, err)
						return
					}
				}
				return
			}
			for lo := 0; lo < len(traces[i]); lo += 7 {
				hi := min(lo+7, len(traces[i]))
				if _, err := c.IngestBatch(traces[i][lo:hi]); err != nil {
					errs <- fmt.Errorf("conn %d batch: %w", i, err)
					return
				}
			}
		}(i)
	}
	// Checkpoints stop the world mid-shed: the barrier must observe a cut
	// where the counters already balance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint %d: %w", i, err)
				return
			}
			st := s.Stats()
			if st.EventsRouted+st.EventsShed > st.EventsIngested {
				errs <- fmt.Errorf("checkpoint %d: routed %d + shed %d > ingested %d",
					i, st.EventsRouted, st.EventsShed, st.EventsIngested)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := sum.Stats
	if st.EventsIngested != total {
		t.Fatalf("ingested %d, want %d", st.EventsIngested, total)
	}
	if st.EventsRouted+st.EventsShed != st.EventsIngested {
		t.Fatalf("accounting: routed %d + shed %d != ingested %d",
			st.EventsRouted, st.EventsShed, st.EventsIngested)
	}
	if st.EventsApplied != st.EventsRouted {
		t.Fatalf("after close: applied %d != routed %d", st.EventsApplied, st.EventsRouted)
	}
	if st.EventsShed == 0 {
		t.Fatal("expected sheds with a slow model and queue depth 4")
	}
}

// TestServeConcurrentConnsMatchVerdicts: four concurrent connections, each
// owning disjoint partitions under BlockOnFull, produce exactly the verdicts
// the batch monitor gives each partition's sub-history — per-partition order
// is deterministic as long as a partition stays on one connection.
func TestServeConcurrentConnsMatchVerdicts(t *testing.T) {
	m := monitor.RegisterModel()
	rng := rand.New(rand.NewSource(29))
	const conns = 4
	traces := make([][]obsfile.TraceEvent, conns)
	keys := make([]string, conns)
	for i := range traces {
		keys[i] = fmt.Sprintf("p%d", i)
		traces[i] = genPartition(rng, keys[i], i*10, 25, i%2 == 1)
	}
	s, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := s.NewConn()
			defer c.Release()
			for lo := 0; lo < len(traces[i]); lo += 5 {
				hi := min(lo+5, len(traces[i]))
				if _, err := c.IngestBatch(traces[i][lo:hi]); err != nil {
					t.Errorf("conn %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, k := range keys {
		want := batchVerdict(t, m, traces[i], k)
		found := false
		for _, v := range sum.Verdicts {
			if v.Key == k {
				found = true
				if v.Err != "" || v.Linearizable != want {
					t.Fatalf("partition %q: got linearizable=%v err=%q, batch says %v", k, v.Linearizable, v.Err, want)
				}
			}
		}
		if !found {
			t.Fatalf("no verdict for partition %q", k)
		}
	}
}

// encodeFrames renders a trace as binary batch frames.
func encodeFrames(t *testing.T, evs []obsfile.TraceEvent, batch int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := obsfile.NewFrameWriter(&buf)
	fw.BatchSize = batch
	for _, ev := range evs {
		if err := fw.WriteEvent(ev); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestServeBatchFramesMatchJSONL: the same trace ingested as binary batch
// frames — directly and over HTTP with the negotiated Content-Type — yields
// verdicts bit-identical to the JSONL ingest path.
func TestServeBatchFramesMatchJSONL(t *testing.T) {
	m := monitor.RegisterModel()
	rng := rand.New(rand.NewSource(31))
	trace := interleave(rng, [][]obsfile.TraceEvent{
		genPartition(rng, "a", 0, 20, false),
		genPartition(rng, "b", 10, 20, true),
		genPartition(rng, "c", 20, 20, false),
	})

	run := func(feed func(s *serve.Server)) *serve.Summary {
		s, err := serve.New(serve.Config{Model: m, Workers: 2, WindowOps: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		feed(s)
		sum, err := s.Close()
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
		return sum
	}

	want := run(func(s *serve.Server) { ingestAll(t, s, trace) })

	gotDirect := run(func(s *serve.Server) {
		n, err := s.IngestFrames(bytes.NewReader(encodeFrames(t, trace, 7)))
		if err != nil {
			t.Fatalf("IngestFrames: %v", err)
		}
		if n != int64(len(trace)) {
			t.Fatalf("IngestFrames consumed %d events, want %d", n, len(trace))
		}
	})

	gotHTTP := run(func(s *serve.Server) {
		addr, err := s.StartHTTP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("StartHTTP: %v", err)
		}
		resp, err := http.Post("http://"+addr+"/ingest", obsfile.BatchContentType,
			bytes.NewReader(encodeFrames(t, trace, 16)))
		if err != nil {
			t.Fatalf("POST /ingest: %v", err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Contains(out, []byte(fmt.Sprintf(`"ingested":%d`, len(trace)))) {
			t.Fatalf("POST /ingest: status %d body %q", resp.StatusCode, out)
		}
	})

	for name, got := range map[string]*serve.Summary{"direct frames": gotDirect, "HTTP frames": gotHTTP} {
		if !reflect.DeepEqual(got.Verdicts, want.Verdicts) {
			t.Fatalf("%s: verdicts differ from JSONL ingest:\njsonl: %+v\ngot:   %+v", name, want.Verdicts, got.Verdicts)
		}
		if got.Linearizable != want.Linearizable {
			t.Fatalf("%s: summary %v, jsonl %v", name, got.Linearizable, want.Linearizable)
		}
	}
}

// TestServeHoldWorkers: while the pool is held nothing is applied — events
// queue up — and release lets the drain catch all the way up.
func TestServeHoldWorkers(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.RegisterModel(), WindowOps: 1, QueueDepth: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	release, err := s.HoldWorkers()
	if err != nil {
		t.Fatalf("HoldWorkers: %v", err)
	}
	trace := genPartition(rand.New(rand.NewSource(37)), "h", 0, 10, false)
	ingestAll(t, s, trace)
	if st := s.Stats(); st.EventsApplied != 0 || st.EventsRouted != int64(len(trace)) {
		t.Fatalf("held pool: applied=%d routed=%d, want 0/%d", st.EventsApplied, st.EventsRouted, len(trace))
	}
	release()
	release() // idempotent
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	if st := s.Stats(); st.EventsApplied != int64(len(trace)) {
		t.Fatalf("after release: applied=%d, want %d", st.EventsApplied, len(trace))
	}
	sum, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sum.Linearizable {
		t.Fatalf("verdicts: %+v", sum.Verdicts)
	}
}

// TestServeTruncatedFrameStreamFailsStop: a frame stream cut mid-frame
// surfaces the structured truncation error through ingest instead of a clean
// EOF, and the server survives.
func TestServeTruncatedFrameStreamFailsStop(t *testing.T) {
	s, err := serve.New(serve.Config{Model: monitor.RegisterModel(), WindowOps: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := encodeFrames(t, []obsfile.TraceEvent{
		{T: 0, K: "call", Op: "Write(1)", P: "x"},
		{T: 0, K: "ret", Op: "Write(1)", Res: "ok"},
	}, 2)
	_, err = s.IngestFrames(bytes.NewReader(data[:len(data)-1]))
	var trunc *obsfile.TruncatedFrameError
	if !errors.As(err, &trunc) {
		t.Fatalf("cut frame stream: err=%v, want *TruncatedFrameError", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close after truncation: %v", err)
	}
}
