package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// StartHTTP starts the service's ingest endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the bound address. The endpoint serves:
//
//	POST /ingest     — body is JSONL trace events, ingested in order
//	GET  /verdicts   — live per-partition status (JSON array)
//	GET  /stats      — live counters (JSON)
//	POST /checkpoint — write a durable snapshot now
//
// The listener is closed by Close. Ingest over HTTP shares the global
// stream tracker with every other transport, so thread discipline spans
// transports: a call may arrive on stdin and its return over HTTP.
func (s *Server) StartHTTP(addr string) (string, error) {
	if s.httpCloser != nil {
		return "", errors.New("serve: HTTP endpoint already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/verdicts", s.handleVerdicts)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	s.httpCloser = srv // srv.Close stops the listener and active connections
	return ln.Addr().String(), nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSONL trace body", http.StatusMethodNotAllowed)
		return
	}
	n, err := s.IngestReader(r.Body)
	if err != nil {
		// Events before the error are already ingested (at-least-once); the
		// producer learns how far the batch got.
		http.Error(w, fmt.Sprintf("ingested %d events, then: %v", n, err), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\":%d}\n", n)
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	verds, err := s.Verdicts()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if verds == nil {
		verds = []PartitionVerdict{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(verds)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to checkpoint", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.CheckpointPath == "" {
		http.Error(w, "no checkpoint path configured", http.StatusConflict)
		return
	}
	if err := s.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}
