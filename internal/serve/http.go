package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"lineup/internal/obsfile"
)

// StartHTTP starts the service's ingest endpoint on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the bound address. The endpoint serves:
//
//	POST /ingest     — body is trace events, ingested in order: JSONL by
//	                   default, length-prefixed binary batch frames when the
//	                   request Content-Type is obsfile.BatchContentType
//	GET  /verdicts   — live per-partition status (JSON array)
//	GET  /stats      — live counters (JSON)
//	POST /checkpoint — write a durable snapshot now
//
// The listener is closed by Close. Ingest over HTTP shares the global
// stream tracker with every other transport, so thread discipline spans
// transports: a call may arrive on stdin and its return over HTTP. Each
// request ingests through its own connection, so concurrent POSTs proceed in
// parallel; per-partition order is deterministic as long as each partition's
// producers stay on one connection.
func (s *Server) StartHTTP(addr string) (string, error) {
	if s.httpCloser != nil {
		return "", errors.New("serve: HTTP endpoint already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/verdicts", s.handleVerdicts)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	// Stalled and idle connections are the cheap way to wedge a long-running
	// ingest endpoint, so both are bounded: a client that never finishes its
	// headers is cut off at ReadHeaderTimeout, and a kept-alive connection
	// that goes quiet is reaped at IdleTimeout.
	rht := s.cfg.ReadHeaderTimeout
	if rht <= 0 {
		rht = 10 * time.Second
	}
	idle := s.cfg.IdleTimeout
	if idle <= 0 {
		idle = 2 * time.Minute
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: rht, IdleTimeout: idle}
	go func() { _ = srv.Serve(ln) }()
	s.httpCloser = srv // srv.Close stops the listener and active connections
	return ln.Addr().String(), nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSONL trace body", http.StatusMethodNotAllowed)
		return
	}
	limit := s.cfg.MaxIngestBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	// The cap cuts the body mid-line, so the parse error the reader surfaces
	// is usually "bad JSON", not the MaxBytesError itself — capture the
	// transport-level error as it streams by so the producer gets a 413, not
	// a misleading 400.
	body := &errCapturingReader{r: http.MaxBytesReader(w, r.Body, limit)}
	var (
		n   int64
		err error
	)
	if r.Header.Get("Content-Type") == obsfile.BatchContentType {
		n, err = s.IngestFrames(body)
	} else {
		n, err = s.IngestReader(body)
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.As(body.err, &tooBig) {
			http.Error(w, fmt.Sprintf("ingested %d events, then: body over %d-byte cap", n, tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		// Events before the error are already ingested (at-least-once); the
		// producer learns how far the batch got.
		http.Error(w, fmt.Sprintf("ingested %d events, then: %v", n, err), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\":%d}\n", n)
}

// errCapturingReader remembers the first non-EOF error its inner reader
// returns, even when the consumer (a line scanner) reports a different,
// downstream error for the same bytes.
type errCapturingReader struct {
	r   io.Reader
	err error
}

func (c *errCapturingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err != nil && err != io.EOF && c.err == nil {
		c.err = err
	}
	return n, err
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	verds, err := s.Verdicts()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if verds == nil {
		verds = []PartitionVerdict{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(verds)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to checkpoint", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.CheckpointPath == "" {
		http.Error(w, "no checkpoint path configured", http.StatusConflict)
		return
	}
	if err := s.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintln(w, "ok")
}
