// Package serve is the streaming linearizability-monitoring service: a
// long-running server that ingests live JSONL history events (stdin pipes,
// HTTP), routes them by P-compositional partition key to a bounded worker
// pool, and checks each partition incrementally in bounded memory.
//
// Architecture, front to back:
//
//   - One ShardedTracker (package obsfile) validates thread discipline
//     across every transport and resolves each event's operation index and
//     partition key. Thread discipline is thread-local, so validation locks
//     nothing global: each thread id has its own shard and op indices are
//     drawn from a shared atomic counter in per-thread blocks. Producers
//     ingest through IngestConn handles — one per connection, each with its
//     own mutex — so several connections validate and route concurrently.
//     Per-partition event order is deterministic as long as each partition
//     (and so each of its threads) stays on one connection; splitting a
//     partition across connections makes its interleaving racy.
//   - A router hashes the partition key onto a fixed pool of workers, each
//     with a bounded FIFO queue. Events of one partition always land on the
//     same worker, so partition state is worker-owned and lock-free. The
//     batch-frame ingest path routes whole per-worker sub-batches, one queue
//     item per frame per worker, amortizing the channel handoff. When
//     producers outrun the checkers the queue fills and the configured
//     backpressure policy applies: BlockOnFull stalls the producer,
//     ShedOnFull poisons the partition (its verdict would be meaningless on
//     a gapped history, so all its subsequent events are counted shed too).
//     The accounting invariant is exact under concurrency: every
//     tracker-accepted event is counted exactly once as routed or shed
//     (stuck markers excepted — they are control state, not partition data).
//   - Each partition is checked by a monitor.Incremental: a window of events
//     accumulates until the partition quiesces (no open calls) with at least
//     WindowOps completed operations, then the window is retired through the
//     frontier-of-states transition and forgotten. Identical windows from
//     identical frontiers — common when many partitions run the same
//     workload — are answered by a shared verdict dedup cache patterned on
//     the phase-2 history cache of internal/core.
//   - The whole service state (tracker, per-partition frontiers and windows,
//     counters) checkpoints atomically through obsfile.AtomicWriteFile, so a
//     killed server resumes without re-reading the stream from the start:
//     the producer replays and the server skips everything the checkpoint
//     already covers.
package serve

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/obsfile"
	"lineup/internal/telemetry"
)

// Backpressure selects what Ingest does when a worker queue is full.
type Backpressure int

const (
	// BlockOnFull stalls the producer until the worker catches up: no event
	// is ever lost and every verdict is exact. This is the default.
	BlockOnFull Backpressure = iota
	// ShedOnFull drops the event, counts it, and poisons its partition:
	// a partition with a gap cannot be judged, so its later events are shed
	// too and its verdict is reported with Shed set instead of a boolean
	// that would be a guess.
	ShedOnFull
)

func (b Backpressure) String() string {
	if b == ShedOnFull {
		return "shed"
	}
	return "block"
}

// ParseBackpressure parses the CLI spelling of a backpressure policy.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return BlockOnFull, nil
	case "shed":
		return ShedOnFull, nil
	}
	return 0, fmt.Errorf("serve: unknown backpressure policy %q (block or shed)", s)
}

// Config configures a Server.
type Config struct {
	// Model is the executable sequential specification every partition is
	// checked against. Required.
	Model *monitor.Model
	// Monitor carries the per-window search options (mode for the final
	// residual windows, NoMemo, MaxStates). Partitioning inside the monitor
	// is disabled by the server — the stream is split before windowing.
	Monitor monitor.Options
	// Workers is the checker pool size; 0 selects GOMAXPROCS.
	Workers int
	// WindowOps is the retirement threshold: a partition's window is retired
	// once it quiesces holding at least this many completed operations.
	// 0 selects 128.
	WindowOps int
	// QueueDepth bounds each worker's event queue; 0 selects 1024.
	QueueDepth int
	// Backpressure selects the full-queue policy (default BlockOnFull).
	Backpressure Backpressure
	// CheckpointPath, when set, enables checkpointing to this file (written
	// atomically). The model must define EncodeState/DecodeState.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint after this many ingested events
	// (0 disables automatic checkpoints; Checkpoint may still be called).
	CheckpointEvery int64
	// SkipEvents drops this many leading events at ingest without applying
	// them: the resume protocol, where the producer replays the stream from
	// the start and the server fast-forwards past what the checkpoint
	// already covers. Load fills it from the checkpoint's event count.
	SkipEvents int64
	// NoDedup disables the shared window verdict cache.
	NoDedup bool
	// FastMonitor routes every partition through the specialized streaming
	// queue monitor (internal/monitor/fast.QueueStream, amortized O(log n)
	// per event) instead of the frontier-of-states incremental checker.
	// Only the queue model has a streaming fast form; New rejects other
	// models. A partition that leaves the fast monitor's decidable fragment
	// (duplicate values, failed TryDequeue, observers) — or whose retained
	// event log outgrows the memory cap — is converted on the fly: its
	// logged windows replay through a fresh monitor.Incremental with the
	// original window boundaries, which is exactly the state the slow path
	// would have, so verdicts stay bit-identical. Incompatible with
	// CheckpointPath (the fast monitor's state does not checkpoint) and
	// bypasses the dedup cache while a partition is on the fast path.
	FastMonitor bool
	// Telemetry, when non-nil, accumulates the service counters (ingested,
	// shed, ops checked, flushes, overflows, cache hits, checkpoints).
	Telemetry *telemetry.Collector
	// OnVerdict, when non-nil, is called from a worker goroutine the moment
	// a partition's verdict becomes NOT linearizable (streaming alerting).
	OnVerdict func(PartitionVerdict)

	// MaxIngestBytes caps a single POST /ingest body; an oversized request is
	// rejected with 413 after at most this many bytes are read. 0 selects
	// 64 MiB; producers with bigger batches should chunk or stream.
	MaxIngestBytes int64
	// ReadHeaderTimeout and IdleTimeout harden the HTTP listener against
	// stalled or idle connections (zero values select 10s and 2m).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration

	// resume is the loaded checkpoint New restores from (set by Resume).
	resume *Checkpoint
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) windowOps() int {
	if c.WindowOps > 0 {
		return c.WindowOps
	}
	return 128
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 1024
}

// maxWindowEvents is the soft cap above which a non-quiescing partition's
// growing window is counted as an overflow (memory for that partition is no
// longer bounded; correctness is preserved by keeping the events).
func (c Config) maxWindowEvents() int { return 8 * c.windowOps() }

// maxFastLogEvents caps the per-partition event log the fast streaming
// monitor retains for a potential conversion to the incremental checker.
// Exceeding it triggers a proactive conversion at the next retired window,
// restoring the slow path's bounded-memory guarantee.
func (c Config) maxFastLogEvents() int { return 64 * c.windowOps() }

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("serve: server is closed")

// Server is one running monitoring service. Create it with New, feed it
// through Ingest/IngestReader (and the HTTP endpoint, see StartHTTP), and
// finish with Close, which drains the pool, judges the residual windows, and
// returns the final per-partition verdicts.
type Server struct {
	cfg     Config
	stats   monitor.Options // per-window search options with partitioning off
	cache   *windowCache
	workers []*worker

	tracker *obsfile.ShardedTracker

	// Ingest-side state, all safe under concurrent connections: counters are
	// atomics, the poisoned set is a sync.Map, and the stop-the-world
	// operations (checkpoint, drain, verdicts, close) serialize against every
	// connection through lockWorld. Lock order: worldMu < connMu < conn.mu.
	worldMu   sync.Mutex // serializes stop-the-world operations
	connMu    sync.Mutex // guards the connection registry
	conns     []*IngestConn
	defOnce   sync.Once
	defConn   *IngestConn
	poisoned  sync.Map     // partition key -> struct{}
	nPoisoned atomic.Int64 // count of keys in poisoned; 0 lets ingest skip the map probe
	skip      atomic.Int64
	routed    atomic.Int64
	shed      atomic.Int64
	sinceCp   atomic.Int64
	closed    atomic.Bool

	sawNamedKey     atomic.Bool // some op routed to a named partition
	sawDerivedWhole atomic.Bool // the model declared some op whole-object

	// Counters written by workers, read by Stats (atomics).
	applied      atomic.Int64
	partsCreated atomic.Int64
	opsChecked   atomic.Int64
	flushes      atomic.Int64
	overflows    atomic.Int64
	checkpoints  atomic.Int64
	maxWindow    atomic.Int64
	maxFrontier  atomic.Int64

	httpCloser io.Closer
}

// New creates and starts a server: the worker pool runs immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil || cfg.Model.Init == nil || cfg.Model.Step == nil {
		return nil, errors.New("serve: Config.Model must define Init and Step")
	}
	if cfg.CheckpointPath != "" && (cfg.Model.EncodeState == nil || cfg.Model.DecodeState == nil) {
		return nil, fmt.Errorf("serve: checkpointing model %q requires EncodeState/DecodeState", cfg.Model.Name)
	}
	if cfg.FastMonitor {
		if k, ok := fast.KindFor(cfg.Model.Name); !ok || k != fast.KindQueue {
			return nil, fmt.Errorf("serve: the streaming fast monitor supports the queue model only, not %q", cfg.Model.Name)
		}
		if cfg.CheckpointPath != "" {
			return nil, errors.New("serve: the fast monitor does not checkpoint; drop -checkpoint or the fast witness")
		}
	}
	mopts := cfg.Monitor
	mopts.NoPartition = true // the stream is split before windowing
	s := &Server{
		cfg:     cfg,
		stats:   mopts,
		tracker: obsfile.NewShardedTracker(),
	}
	s.skip.Store(cfg.SkipEvents)
	if !cfg.NoDedup {
		s.cache = newWindowCache()
	}
	for i := 0; i < cfg.workers(); i++ {
		s.workers = append(s.workers, &worker{
			srv:   s,
			ch:    make(chan workItem, cfg.queueDepth()),
			parts: make(map[string]*part),
			done:  make(chan struct{}),
		})
	}
	// Restore before the workers run: partition state is rebuilt directly
	// into the (not yet concurrent) worker maps.
	if cp := cfg.resume; cp != nil {
		if err := s.restore(cp); err != nil {
			return nil, err
		}
	}
	for _, w := range s.workers {
		go w.loop()
	}
	return s, nil
}

// workItem is one unit on a worker queue: a routed event, a routed sub-batch
// (the frame ingest path groups a frame's events per worker and sends each
// group as one item, amortizing the channel handoff), or a control message
// (barrier, snapshot, finish). QueueDepth counts items, so a queue slot may
// hold up to a frame's worth of events on the batch path.
type workItem struct {
	key   string
	ev    obsfile.StreamEvent
	batch []routedEvent
	ctl   *ctlMsg
}

// routedEvent is one resolved event inside a batched workItem.
type routedEvent struct {
	key string
	ev  obsfile.StreamEvent
}

type ctlKind int

const (
	ctlDrain ctlKind = iota
	ctlSnapshot
	ctlStatus
	ctlFinish
	ctlHold
)

type ctlMsg struct {
	kind  ctlKind
	stuck bool          // ctlFinish: global stuck flag for residual windows
	hold  chan struct{} // ctlHold: closed to release the parked worker
	ack   chan ctlReply
}

type ctlReply struct {
	parts []PartCheckpoint   // ctlSnapshot
	verds []PartitionVerdict // ctlStatus / ctlFinish
	err   error
}

// resolveKey maps an event to its partition key: an explicit "p" field wins;
// otherwise the model's Partition function is consulted; monolithic models
// (or whole-object operations) fall back to the single "" partition.
func (s *Server) resolveKey(ev obsfile.StreamEvent) (string, error) {
	key := ev.Part
	derivedWhole := false
	if key == "" && s.cfg.Model.Partition != nil && ev.Op != "" {
		k, ok := s.cfg.Model.Partition(ev.Op)
		if ok {
			key = k
		} else {
			derivedWhole = true
		}
	}
	// A whole-object operation observed alongside named partitions breaks
	// P-compositionality: the batch monitor would refuse to split, so a
	// split live stream could disagree with it. Fail stop either way round.
	// The flags only ever flip false→true, so check-then-store is sound and
	// keeps the hot path read-only once both regimes are known.
	if derivedWhole {
		if !s.sawDerivedWhole.Load() {
			s.sawDerivedWhole.Store(true)
		}
	} else if key != "" {
		if !s.sawNamedKey.Load() {
			s.sawNamedKey.Store(true)
		}
	}
	if s.sawDerivedWhole.Load() && s.sawNamedKey.Load() {
		return "", fmt.Errorf("serve: operation %q observes the whole object but the stream is partitioned; supply explicit partition keys or a partitionable model", ev.Op)
	}
	return key, nil
}

// IngestConn is one producer's handle onto the server: each transport
// connection (an HTTP request body, a stdin pipe, a bench producer goroutine)
// ingests through its own conn, and conns ingest concurrently. A conn
// serializes its own events (per-connection order is the order the producer
// wrote) and tracks its own event ordinal for error messages. The
// determinism contract is per-partition: events of one partition see a fixed
// order iff that partition — and every thread contributing to it — stays on
// one connection.
type IngestConn struct {
	srv  *Server
	mu   sync.Mutex
	line int64 // per-connection event ordinal, for error messages

	// scratch holds IngestBatch's per-worker routing table (indexed by worker),
	// reused across calls so the steady-state frame path allocates only the
	// event buffers it hands off — no per-frame map.
	scratch [][]routedEvent
}

// NewConn registers a new ingest connection. Release it when the producer is
// done; a conn used after server close just returns ErrClosed.
func (s *Server) NewConn() *IngestConn {
	c := &IngestConn{srv: s}
	s.connMu.Lock()
	s.conns = append(s.conns, c)
	s.connMu.Unlock()
	return c
}

// Release unregisters the connection.
func (c *IngestConn) Release() {
	s := c.srv
	s.connMu.Lock()
	for i, x := range s.conns {
		if x == c {
			s.conns = append(s.conns[:i], s.conns[i+1:]...)
			break
		}
	}
	s.connMu.Unlock()
}

// skipOne consumes one unit of the resume skip budget. The counter may
// transiently dip negative under concurrent connections; the loser restores
// it, so exactly SkipEvents events are skipped in total.
func (s *Server) skipOne() bool {
	if s.skip.Load() <= 0 {
		return false
	}
	if s.skip.Add(-1) < 0 {
		s.skip.Add(1)
		return false
	}
	return true
}

// poison marks a partition's stream as gapped. LoadOrStore keeps nPoisoned an
// exact count of distinct poisoned keys, so the zero fast path in isPoisoned
// stays truthful under concurrent and repeated poisonings.
func (s *Server) poison(key string) {
	if _, loaded := s.poisoned.LoadOrStore(key, struct{}{}); !loaded {
		s.nPoisoned.Add(1)
	}
}

// isPoisoned reports whether the partition was poisoned by an earlier shed.
// The common case — nothing poisoned anywhere — is one atomic load, keeping
// the sync.Map probe off the per-event hot path.
func (s *Server) isPoisoned(key string) bool {
	if s.nPoisoned.Load() == 0 {
		return false
	}
	_, bad := s.poisoned.Load(key)
	return bad
}

// shedOne counts one shed event.
func (s *Server) shedOne() {
	s.shed.Add(1)
	if c := s.cfg.Telemetry; c != nil {
		c.ServeEventsShed.Add(1)
	}
}

// cpTick advances the checkpoint cadence counter and reports whether a
// checkpoint is due. The caller must act on it only after releasing its conn
// lock (checkpointing stops the world, which needs every conn lock).
func (s *Server) cpTick() bool {
	if s.cfg.CheckpointPath == "" || s.cfg.CheckpointEvery <= 0 {
		return false
	}
	return s.sinceCp.Add(1)%s.cfg.CheckpointEvery == 0
}

// cpTickN advances the checkpoint cadence by n events in one atomic add (the
// batch path's form of cpTick) and reports whether the window crossed a
// checkpoint boundary.
func (s *Server) cpTickN(n int64) bool {
	if s.cfg.CheckpointPath == "" || s.cfg.CheckpointEvery <= 0 {
		return false
	}
	now := s.sinceCp.Add(n)
	return now/s.cfg.CheckpointEvery != (now-n)/s.cfg.CheckpointEvery
}

// ingestOne validates and routes one event. c.mu must be held. The returned
// cpDue asks the caller to run an automatic checkpoint once it has released
// the conn lock.
func (c *IngestConn) ingestOne(ev obsfile.TraceEvent) (cpDue bool, err error) {
	s := c.srv
	if s.closed.Load() {
		return false, ErrClosed
	}
	if s.skipOne() {
		return false, nil
	}
	c.line++
	sev, err := s.tracker.Apply(ev, int(c.line))
	if err != nil {
		return false, err
	}
	if tc := s.cfg.Telemetry; tc != nil {
		tc.ServeEventsIngested.Add(1)
	}
	cpDue = s.cpTick()
	if sev.Stuck {
		return cpDue, nil
	}
	key, err := s.resolveKey(sev)
	if err != nil {
		return cpDue, err
	}
	if s.isPoisoned(key) {
		s.shedOne()
		return cpDue, nil
	}
	w := s.workers[s.workerFor(key)]
	item := workItem{key: key, ev: sev}
	if s.cfg.Backpressure == ShedOnFull {
		select {
		case w.ch <- item:
			s.routed.Add(1)
		default:
			s.poison(key)
			s.shedOne()
		}
	} else {
		w.ch <- item
		s.routed.Add(1)
	}
	return cpDue, nil
}

// Ingest validates, routes, and (policy permitting) enqueues one raw trace
// event on this connection. It returns a validation error for malformed
// events (the stream is then unusable, matching the fail-stop StreamReader)
// and nil for shed events, which are only counted.
func (c *IngestConn) Ingest(ev obsfile.TraceEvent) error {
	c.mu.Lock()
	cpDue, err := c.ingestOne(ev)
	c.mu.Unlock()
	if cpDue {
		if cperr := c.srv.autoCheckpoint(); cperr != nil && err == nil {
			err = cperr
		}
	}
	return err
}

// IngestBatch validates and routes a batch of raw events under one lock
// acquisition, grouping the routed events per worker and handing each group
// to its worker as a single queue item. Under ShedOnFull a full queue poisons
// and sheds at sub-batch granularity — every partition in the rejected group —
// which is coarser than the per-event path but preserves the exact
// routed+shed accounting and the poisoned-partition semantics. Returns the
// number of events consumed (validated or skipped) before any error.
func (c *IngestConn) IngestBatch(evs []obsfile.TraceEvent) (int, error) {
	s := c.srv
	c.mu.Lock()
	if c.scratch == nil {
		c.scratch = make([][]routedEvent, len(s.workers))
	}
	var (
		cpDue   bool
		n       int
		acc     int64 // events the tracker accepted (telemetry + cadence, batched)
		err     error
		batches = c.scratch
	)
	for _, ev := range evs {
		if s.closed.Load() {
			err = ErrClosed
			break
		}
		if s.skipOne() {
			n++
			continue
		}
		c.line++
		sev, aerr := s.tracker.Apply(ev, int(c.line))
		if aerr != nil {
			err = aerr
			break
		}
		n++
		acc++
		if sev.Stuck {
			continue
		}
		key, kerr := s.resolveKey(sev)
		if kerr != nil {
			err = kerr
			break
		}
		if s.isPoisoned(key) {
			s.shedOne()
			continue
		}
		wi := s.workerFor(key)
		if batches[wi] == nil {
			// Exact capacity up front: the buffer is handed to the worker and
			// cannot be recycled, so append-doubling would only churn copies.
			batches[wi] = make([]routedEvent, 0, len(evs))
		}
		batches[wi] = append(batches[wi], routedEvent{key: key, ev: sev})
	}
	if acc > 0 {
		if tc := s.cfg.Telemetry; tc != nil {
			tc.ServeEventsIngested.Add(acc)
		}
		if s.cpTickN(acc) {
			cpDue = true
		}
	}
	for wi, buf := range batches {
		if buf == nil {
			continue
		}
		batches[wi] = nil // handed off below; the worker owns the buffer now
		w := s.workers[wi]
		item := workItem{batch: buf}
		if s.cfg.Backpressure == ShedOnFull {
			select {
			case w.ch <- item:
				s.routed.Add(int64(len(buf)))
			default:
				for _, r := range buf {
					s.poison(r.key)
					s.shedOne()
				}
			}
		} else {
			w.ch <- item
			s.routed.Add(int64(len(buf)))
		}
	}
	c.mu.Unlock()
	if cpDue {
		if cperr := s.autoCheckpoint(); cperr != nil && err == nil {
			err = cperr
		}
	}
	return n, err
}

func (s *Server) defaultConn() *IngestConn {
	s.defOnce.Do(func() { s.defConn = s.NewConn() })
	return s.defConn
}

// Ingest validates, routes, and (policy permitting) enqueues one raw trace
// event on the server's default connection. Concurrent producers should hold
// their own connection (NewConn) instead of contending here.
func (s *Server) Ingest(ev obsfile.TraceEvent) error {
	return s.defaultConn().Ingest(ev)
}

// workerFor hashes a partition key onto a worker (FNV-1a, inlined to keep the
// ingest hot path allocation-free).
func (s *Server) workerFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(len(s.workers)))
}

// IngestReader pumps a JSONL trace stream (e.g. a stdin pipe or one HTTP
// request body) through its own connection until EOF or the first error,
// returning the number of raw events read. Blank lines and '#' comments are
// skipped.
func (s *Server) IngestReader(r io.Reader) (int64, error) {
	c := s.NewConn()
	defer c.Release()
	sr := obsfile.NewRawReader(r)
	var n int64
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if err := c.Ingest(ev); err != nil {
			return n, err
		}
	}
}

// IngestFrames pumps a binary batch-frame stream through its own connection
// until EOF or the first error, returning the number of raw events consumed.
func (s *Server) IngestFrames(r io.Reader) (int64, error) {
	c := s.NewConn()
	defer c.Release()
	fr := obsfile.NewFrameReader(r)
	var n int64
	for {
		evs, err := fr.NextBatch()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		used, err := c.IngestBatch(evs)
		n += int64(used)
		if err != nil {
			return n, err
		}
	}
}

// lockWorld stalls every ingest connection and returns the unlock function:
// while held, no event moves and every counter is quiescent, so stop-the-world
// operations (checkpoint, drain, verdicts, close) see a consistent snapshot.
// Lock order is worldMu < connMu < conn.mu everywhere.
func (s *Server) lockWorld() func() {
	s.worldMu.Lock()
	s.connMu.Lock()
	conns := make([]*IngestConn, len(s.conns))
	copy(conns, s.conns)
	for _, c := range conns {
		c.mu.Lock()
	}
	return func() {
		for i := len(conns) - 1; i >= 0; i-- {
			conns[i].mu.Unlock()
		}
		s.connMu.Unlock()
		s.worldMu.Unlock()
	}
}

// broadcast sends one control message to every worker and collects the
// replies. The caller must hold the world lock (or otherwise guarantee no
// concurrent ingest) for barrier semantics: with ingest stalled, the FIFO
// queues mean every event routed before the control is applied before the
// reply.
func (s *Server) broadcast(msg ctlMsg) ([]ctlReply, error) {
	replies := make([]ctlReply, 0, len(s.workers))
	for _, w := range s.workers {
		ack := make(chan ctlReply, 1)
		m := msg
		m.ack = ack
		w.ch <- workItem{ctl: &m}
		replies = append(replies, <-ack)
	}
	for _, r := range replies {
		if r.err != nil {
			return replies, r.err
		}
	}
	return replies, nil
}

// HoldWorkers parks the checker pool: every worker acknowledges and then
// waits until the returned release function is called. While held, ingest
// keeps validating and routing — queued work just accumulates — so a load
// harness can measure the ingest path's capacity separately from checking
// throughput on machines where both share cores. The queues must be deep
// enough to absorb everything ingested while held (BlockOnFull producers
// stall against a full queue; ShedOnFull ones shed). Checkpoint, Drain,
// Verdicts, and Close all barrier on the workers, so call release before
// any of them.
func (s *Server) HoldWorkers() (release func(), err error) {
	unlock := s.lockWorld()
	defer unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	hold := make(chan struct{})
	if _, err := s.broadcast(ctlMsg{kind: ctlHold, hold: hold}); err != nil {
		close(hold)
		return nil, err
	}
	var once sync.Once
	return func() { once.Do(func() { close(hold) }) }, nil
}

// Drain blocks until every event ingested so far has been applied to its
// partition.
func (s *Server) Drain() error {
	unlock := s.lockWorld()
	defer unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	_, err := s.broadcast(ctlMsg{kind: ctlDrain})
	return err
}

// Verdicts returns a live snapshot of the per-partition status without
// finishing the stream: partitions that already failed report Linearizable
// false; the rest are still in flight and report Linearizable true with
// Final false.
func (s *Server) Verdicts() ([]PartitionVerdict, error) {
	unlock := s.lockWorld()
	defer unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	replies, err := s.broadcast(ctlMsg{kind: ctlStatus})
	if err != nil {
		return nil, err
	}
	return mergeVerdicts(replies), nil
}

func mergeVerdicts(replies []ctlReply) []PartitionVerdict {
	var out []PartitionVerdict
	for _, r := range replies {
		out = append(out, r.verds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats is a live counter snapshot of the service.
type Stats struct {
	EventsIngested  int64 `json:"events_ingested"` // accepted by the tracker
	EventsRouted    int64 `json:"events_routed"`
	EventsShed      int64 `json:"events_shed"`
	EventsApplied   int64 `json:"events_applied"` // folded into partition state
	Partitions      int64 `json:"partitions"`
	OpsChecked      int64 `json:"ops_checked"` // completed ops retired through windows
	WindowFlushes   int64 `json:"window_flushes"`
	WindowOverflows int64 `json:"window_overflows"`
	CacheHits       int64 `json:"cache_hits"`
	CacheEntries    int64 `json:"cache_entries"`
	Checkpoints     int64 `json:"checkpoints"`
	MaxWindowEvents int64 `json:"max_window_events"` // widest window observed
	MaxFrontier     int64 `json:"max_frontier"`      // widest state frontier observed
	OpenCalls       int   `json:"open_calls"`        // operations currently pending
	Stuck           bool  `json:"stuck,omitempty"`   // the stream's stuck marker arrived
	QueueDepths     []int `json:"queue_depths"`      // live per-worker backlog
}

// Stats snapshots the counters; safe to call concurrently with ingest. All
// counters are atomics, so the snapshot is lock-free but not a single instant:
// routed+shed may momentarily trail ingested while events are in flight. At
// any quiescent point (after Drain, inside a checkpoint, after Close) the
// invariant routed+shed == ingested holds exactly, stuck markers excepted.
func (s *Server) Stats() Stats {
	st := Stats{
		EventsIngested:  s.tracker.Events(),
		EventsRouted:    s.routed.Load(),
		EventsShed:      s.shed.Load(),
		OpenCalls:       s.tracker.OpenCalls(),
		Stuck:           s.tracker.Stuck(),
		EventsApplied:   s.applied.Load(),
		Partitions:      s.partsCreated.Load(),
		OpsChecked:      s.opsChecked.Load(),
		WindowFlushes:   s.flushes.Load(),
		WindowOverflows: s.overflows.Load(),
		Checkpoints:     s.checkpoints.Load(),
		MaxWindowEvents: s.maxWindow.Load(),
		MaxFrontier:     s.maxFrontier.Load(),
	}
	if s.cache != nil {
		st.CacheHits, st.CacheEntries = s.cache.counts()
	}
	for _, w := range s.workers {
		st.QueueDepths = append(st.QueueDepths, len(w.ch))
	}
	return st
}

// PartitionVerdict is the judgment of one partition.
type PartitionVerdict struct {
	Key          string `json:"partition"`
	Linearizable bool   `json:"linearizable"`
	Final        bool   `json:"final"`           // residual window judged (Close) or failed early
	Shed         bool   `json:"shed,omitempty"`  // poisoned: verdict covers a gapped stream
	Err          string `json:"error,omitempty"` // search error (state limit, unknown op, model panic)
	Ops          int64  `json:"ops"`             // completed operations observed
	Windows      int64  `json:"windows"`         // windows retired
	Frontier     int    `json:"frontier"`        // frontier states at last transition
}

// Summary is the final outcome of a served stream.
type Summary struct {
	Verdicts     []PartitionVerdict `json:"verdicts"`
	Stats        Stats              `json:"stats"`
	Linearizable bool               `json:"linearizable"` // every judged partition linearizable, no errors
}

// Close finishes the service: it drains the queues, judges every residual
// window (applying the stream's stuck marker, if any), stops the workers and
// the HTTP endpoint, and returns the final summary. A configured checkpoint
// file gets one last snapshot before the verdict pass so a crash during
// shutdown still resumes.
func (s *Server) Close() (*Summary, error) {
	unlock := s.lockWorld()
	if s.closed.Load() {
		unlock()
		return nil, ErrClosed
	}
	if s.cfg.CheckpointPath != "" {
		if err := s.checkpointStopped(); err != nil {
			unlock()
			return nil, err
		}
	}
	s.closed.Store(true)
	stuck := s.tracker.Stuck()
	replies, err := s.broadcast(ctlMsg{kind: ctlFinish, stuck: stuck})
	unlock()
	s.shutdownWorkers()
	if s.httpCloser != nil {
		_ = s.httpCloser.Close()
	}
	if err != nil {
		return nil, err
	}
	poisonedKeys := make(map[string]bool)
	s.poisoned.Range(func(k, _ any) bool {
		poisonedKeys[k.(string)] = true
		return true
	})
	sum := &Summary{Verdicts: mergeVerdicts(replies), Linearizable: true}
	for i := range sum.Verdicts {
		v := &sum.Verdicts[i]
		v.Shed = poisonedKeys[v.Key]
		if v.Err != "" || (!v.Linearizable && !v.Shed) {
			sum.Linearizable = false
		}
	}
	sum.Stats = s.Stats()
	return sum, nil
}

func (s *Server) shutdownWorkers() {
	for _, w := range s.workers {
		close(w.ch)
	}
	for _, w := range s.workers {
		<-w.done
	}
}
