// Package serve is the streaming linearizability-monitoring service: a
// long-running server that ingests live JSONL history events (stdin pipes,
// HTTP), routes them by P-compositional partition key to a bounded worker
// pool, and checks each partition incrementally in bounded memory.
//
// Architecture, front to back:
//
//   - One global StreamTracker (package obsfile) validates thread discipline
//     across every transport and resolves each event's operation index and
//     partition key. Ingest is serialized by a mutex, so several producers
//     may feed one server.
//   - A router hashes the partition key onto a fixed pool of workers, each
//     with a bounded FIFO queue. Events of one partition always land on the
//     same worker, so partition state is worker-owned and lock-free. When
//     producers outrun the checkers the queue fills and the configured
//     backpressure policy applies: BlockOnFull stalls the producer,
//     ShedOnFull poisons the partition (its verdict would be meaningless on
//     a gapped history, so all its subsequent events are counted shed too).
//   - Each partition is checked by a monitor.Incremental: a window of events
//     accumulates until the partition quiesces (no open calls) with at least
//     WindowOps completed operations, then the window is retired through the
//     frontier-of-states transition and forgotten. Identical windows from
//     identical frontiers — common when many partitions run the same
//     workload — are answered by a shared verdict dedup cache patterned on
//     the phase-2 history cache of internal/core.
//   - The whole service state (tracker, per-partition frontiers and windows,
//     counters) checkpoints atomically through obsfile.AtomicWriteFile, so a
//     killed server resumes without re-reading the stream from the start:
//     the producer replays and the server skips everything the checkpoint
//     already covers.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/obsfile"
	"lineup/internal/telemetry"
)

// Backpressure selects what Ingest does when a worker queue is full.
type Backpressure int

const (
	// BlockOnFull stalls the producer until the worker catches up: no event
	// is ever lost and every verdict is exact. This is the default.
	BlockOnFull Backpressure = iota
	// ShedOnFull drops the event, counts it, and poisons its partition:
	// a partition with a gap cannot be judged, so its later events are shed
	// too and its verdict is reported with Shed set instead of a boolean
	// that would be a guess.
	ShedOnFull
)

func (b Backpressure) String() string {
	if b == ShedOnFull {
		return "shed"
	}
	return "block"
}

// ParseBackpressure parses the CLI spelling of a backpressure policy.
func ParseBackpressure(s string) (Backpressure, error) {
	switch s {
	case "block":
		return BlockOnFull, nil
	case "shed":
		return ShedOnFull, nil
	}
	return 0, fmt.Errorf("serve: unknown backpressure policy %q (block or shed)", s)
}

// Config configures a Server.
type Config struct {
	// Model is the executable sequential specification every partition is
	// checked against. Required.
	Model *monitor.Model
	// Monitor carries the per-window search options (mode for the final
	// residual windows, NoMemo, MaxStates). Partitioning inside the monitor
	// is disabled by the server — the stream is split before windowing.
	Monitor monitor.Options
	// Workers is the checker pool size; 0 selects GOMAXPROCS.
	Workers int
	// WindowOps is the retirement threshold: a partition's window is retired
	// once it quiesces holding at least this many completed operations.
	// 0 selects 128.
	WindowOps int
	// QueueDepth bounds each worker's event queue; 0 selects 1024.
	QueueDepth int
	// Backpressure selects the full-queue policy (default BlockOnFull).
	Backpressure Backpressure
	// CheckpointPath, when set, enables checkpointing to this file (written
	// atomically). The model must define EncodeState/DecodeState.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint after this many ingested events
	// (0 disables automatic checkpoints; Checkpoint may still be called).
	CheckpointEvery int64
	// SkipEvents drops this many leading events at ingest without applying
	// them: the resume protocol, where the producer replays the stream from
	// the start and the server fast-forwards past what the checkpoint
	// already covers. Load fills it from the checkpoint's event count.
	SkipEvents int64
	// NoDedup disables the shared window verdict cache.
	NoDedup bool
	// FastMonitor routes every partition through the specialized streaming
	// queue monitor (internal/monitor/fast.QueueStream, amortized O(log n)
	// per event) instead of the frontier-of-states incremental checker.
	// Only the queue model has a streaming fast form; New rejects other
	// models. A partition that leaves the fast monitor's decidable fragment
	// (duplicate values, failed TryDequeue, observers) — or whose retained
	// event log outgrows the memory cap — is converted on the fly: its
	// logged windows replay through a fresh monitor.Incremental with the
	// original window boundaries, which is exactly the state the slow path
	// would have, so verdicts stay bit-identical. Incompatible with
	// CheckpointPath (the fast monitor's state does not checkpoint) and
	// bypasses the dedup cache while a partition is on the fast path.
	FastMonitor bool
	// Telemetry, when non-nil, accumulates the service counters (ingested,
	// shed, ops checked, flushes, overflows, cache hits, checkpoints).
	Telemetry *telemetry.Collector
	// OnVerdict, when non-nil, is called from a worker goroutine the moment
	// a partition's verdict becomes NOT linearizable (streaming alerting).
	OnVerdict func(PartitionVerdict)

	// MaxIngestBytes caps a single POST /ingest body; an oversized request is
	// rejected with 413 after at most this many bytes are read. 0 selects
	// 64 MiB; producers with bigger batches should chunk or stream.
	MaxIngestBytes int64
	// ReadHeaderTimeout and IdleTimeout harden the HTTP listener against
	// stalled or idle connections (zero values select 10s and 2m).
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration

	// resume is the loaded checkpoint New restores from (set by Resume).
	resume *Checkpoint
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) windowOps() int {
	if c.WindowOps > 0 {
		return c.WindowOps
	}
	return 128
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 1024
}

// maxWindowEvents is the soft cap above which a non-quiescing partition's
// growing window is counted as an overflow (memory for that partition is no
// longer bounded; correctness is preserved by keeping the events).
func (c Config) maxWindowEvents() int { return 8 * c.windowOps() }

// maxFastLogEvents caps the per-partition event log the fast streaming
// monitor retains for a potential conversion to the incremental checker.
// Exceeding it triggers a proactive conversion at the next retired window,
// restoring the slow path's bounded-memory guarantee.
func (c Config) maxFastLogEvents() int { return 64 * c.windowOps() }

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("serve: server is closed")

// Server is one running monitoring service. Create it with New, feed it
// through Ingest/IngestReader (and the HTTP endpoint, see StartHTTP), and
// finish with Close, which drains the pool, judges the residual windows, and
// returns the final per-partition verdicts.
type Server struct {
	cfg     Config
	stats   monitor.Options // per-window search options with partitioning off
	cache   *windowCache
	workers []*worker

	mu       sync.Mutex // ingest lock: tracker, routing tables, checkpoint barrier
	tracker  *obsfile.StreamTracker
	poisoned map[string]bool
	skip     int64
	routed   int64
	shed     int64
	sinceCp  int64
	closed   bool

	sawNamedKey     bool // some op routed to a named partition
	sawDerivedWhole bool // the model declared some op whole-object

	// Counters written by workers, read by Stats (atomics).
	applied      atomic.Int64
	partsCreated atomic.Int64
	opsChecked   atomic.Int64
	flushes      atomic.Int64
	overflows    atomic.Int64
	checkpoints  atomic.Int64
	maxWindow    atomic.Int64
	maxFrontier  atomic.Int64

	httpCloser io.Closer
}

// New creates and starts a server: the worker pool runs immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil || cfg.Model.Init == nil || cfg.Model.Step == nil {
		return nil, errors.New("serve: Config.Model must define Init and Step")
	}
	if cfg.CheckpointPath != "" && (cfg.Model.EncodeState == nil || cfg.Model.DecodeState == nil) {
		return nil, fmt.Errorf("serve: checkpointing model %q requires EncodeState/DecodeState", cfg.Model.Name)
	}
	if cfg.FastMonitor {
		if k, ok := fast.KindFor(cfg.Model.Name); !ok || k != fast.KindQueue {
			return nil, fmt.Errorf("serve: the streaming fast monitor supports the queue model only, not %q", cfg.Model.Name)
		}
		if cfg.CheckpointPath != "" {
			return nil, errors.New("serve: the fast monitor does not checkpoint; drop -checkpoint or the fast witness")
		}
	}
	mopts := cfg.Monitor
	mopts.NoPartition = true // the stream is split before windowing
	s := &Server{
		cfg:      cfg,
		stats:    mopts,
		tracker:  obsfile.NewStreamTracker(),
		poisoned: make(map[string]bool),
		skip:     cfg.SkipEvents,
	}
	if !cfg.NoDedup {
		s.cache = newWindowCache()
	}
	for i := 0; i < cfg.workers(); i++ {
		s.workers = append(s.workers, &worker{
			srv:   s,
			ch:    make(chan workItem, cfg.queueDepth()),
			parts: make(map[string]*part),
			done:  make(chan struct{}),
		})
	}
	// Restore before the workers run: partition state is rebuilt directly
	// into the (not yet concurrent) worker maps.
	if cp := cfg.resume; cp != nil {
		if err := s.restore(cp); err != nil {
			return nil, err
		}
	}
	for _, w := range s.workers {
		go w.loop()
	}
	return s, nil
}

// workItem is one unit on a worker queue: a routed event or a control
// message (barrier, snapshot, finish).
type workItem struct {
	key string
	ev  obsfile.StreamEvent
	ctl *ctlMsg
}

type ctlKind int

const (
	ctlDrain ctlKind = iota
	ctlSnapshot
	ctlStatus
	ctlFinish
)

type ctlMsg struct {
	kind  ctlKind
	stuck bool // ctlFinish: global stuck flag for residual windows
	ack   chan ctlReply
}

type ctlReply struct {
	parts []PartCheckpoint   // ctlSnapshot
	verds []PartitionVerdict // ctlStatus / ctlFinish
	err   error
}

// resolveKey maps an event to its partition key: an explicit "p" field wins;
// otherwise the model's Partition function is consulted; monolithic models
// (or whole-object operations) fall back to the single "" partition.
func (s *Server) resolveKey(ev obsfile.StreamEvent) (string, error) {
	key := ev.Part
	derivedWhole := false
	if key == "" && s.cfg.Model.Partition != nil && ev.Op != "" {
		k, ok := s.cfg.Model.Partition(ev.Op)
		if ok {
			key = k
		} else {
			derivedWhole = true
		}
	}
	// A whole-object operation observed alongside named partitions breaks
	// P-compositionality: the batch monitor would refuse to split, so a
	// split live stream could disagree with it. Fail stop either way round.
	if derivedWhole {
		s.sawDerivedWhole = true
	} else if key != "" {
		s.sawNamedKey = true
	}
	if s.sawDerivedWhole && s.sawNamedKey {
		return "", fmt.Errorf("serve: operation %q observes the whole object but the stream is partitioned; supply explicit partition keys or a partitionable model", ev.Op)
	}
	return key, nil
}

// Ingest validates, routes, and (policy permitting) enqueues one raw trace
// event. It returns a validation error for malformed events (the stream is
// then unusable, matching the fail-stop StreamReader) and nil for shed
// events, which are only counted.
func (s *Server) Ingest(ev obsfile.TraceEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestLocked(ev)
}

func (s *Server) ingestLocked(ev obsfile.TraceEvent) error {
	if s.closed {
		return ErrClosed
	}
	if s.skip > 0 {
		s.skip--
		return nil
	}
	line := int(s.tracker.Events() + 1) // event ordinal, for error messages
	sev, err := s.tracker.Apply(ev, line)
	if err != nil {
		return err
	}
	if c := s.cfg.Telemetry; c != nil {
		c.ServeEventsIngested.Add(1)
	}
	if sev.Stuck {
		return s.maybeCheckpointLocked()
	}
	key, err := s.resolveKey(sev)
	if err != nil {
		return err
	}
	if s.poisoned[key] {
		s.shedLocked()
		return s.maybeCheckpointLocked()
	}
	w := s.workers[s.workerFor(key)]
	item := workItem{key: key, ev: sev}
	if s.cfg.Backpressure == ShedOnFull {
		select {
		case w.ch <- item:
			s.routed++
		default:
			s.poisoned[key] = true
			s.shedLocked()
		}
	} else {
		w.ch <- item
		s.routed++
	}
	return s.maybeCheckpointLocked()
}

func (s *Server) shedLocked() {
	s.shed++
	if c := s.cfg.Telemetry; c != nil {
		c.ServeEventsShed.Add(1)
	}
}

func (s *Server) maybeCheckpointLocked() error {
	if s.cfg.CheckpointPath == "" || s.cfg.CheckpointEvery <= 0 {
		return nil
	}
	s.sinceCp++
	if s.sinceCp < s.cfg.CheckpointEvery {
		return nil
	}
	s.sinceCp = 0
	return s.checkpointLocked()
}

func (s *Server) workerFor(key string) int {
	h := fnv.New32a()
	_, _ = io.WriteString(h, key)
	return int(h.Sum32() % uint32(len(s.workers)))
}

// IngestReader pumps a JSONL trace stream (e.g. a stdin pipe) through
// Ingest until EOF or the first error, returning the number of raw events
// read. Blank lines and '#' comments are skipped.
func (s *Server) IngestReader(r io.Reader) (int64, error) {
	sr := obsfile.NewRawReader(r)
	var n int64
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if err := s.Ingest(ev); err != nil {
			return n, err
		}
	}
}

// broadcast sends one control message to every worker and collects the
// replies. The caller must hold s.mu (or otherwise guarantee no concurrent
// ingest) for barrier semantics: with ingest stalled, the FIFO queues mean
// every event routed before the control is applied before the reply.
func (s *Server) broadcast(msg ctlMsg) ([]ctlReply, error) {
	replies := make([]ctlReply, 0, len(s.workers))
	for _, w := range s.workers {
		ack := make(chan ctlReply, 1)
		m := msg
		m.ack = ack
		w.ch <- workItem{ctl: &m}
		replies = append(replies, <-ack)
	}
	for _, r := range replies {
		if r.err != nil {
			return replies, r.err
		}
	}
	return replies, nil
}

// Drain blocks until every event ingested so far has been applied to its
// partition.
func (s *Server) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	_, err := s.broadcast(ctlMsg{kind: ctlDrain})
	return err
}

// Verdicts returns a live snapshot of the per-partition status without
// finishing the stream: partitions that already failed report Linearizable
// false; the rest are still in flight and report Linearizable true with
// Final false.
func (s *Server) Verdicts() ([]PartitionVerdict, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	replies, err := s.broadcast(ctlMsg{kind: ctlStatus})
	if err != nil {
		return nil, err
	}
	return mergeVerdicts(replies), nil
}

func mergeVerdicts(replies []ctlReply) []PartitionVerdict {
	var out []PartitionVerdict
	for _, r := range replies {
		out = append(out, r.verds...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats is a live counter snapshot of the service.
type Stats struct {
	EventsIngested  int64 `json:"events_ingested"` // accepted by the tracker
	EventsRouted    int64 `json:"events_routed"`
	EventsShed      int64 `json:"events_shed"`
	EventsApplied   int64 `json:"events_applied"` // folded into partition state
	Partitions      int64 `json:"partitions"`
	OpsChecked      int64 `json:"ops_checked"` // completed ops retired through windows
	WindowFlushes   int64 `json:"window_flushes"`
	WindowOverflows int64 `json:"window_overflows"`
	CacheHits       int64 `json:"cache_hits"`
	CacheEntries    int64 `json:"cache_entries"`
	Checkpoints     int64 `json:"checkpoints"`
	MaxWindowEvents int64 `json:"max_window_events"` // widest window observed
	MaxFrontier     int64 `json:"max_frontier"`      // widest state frontier observed
	OpenCalls       int   `json:"open_calls"`        // operations currently pending
	Stuck           bool  `json:"stuck,omitempty"`   // the stream's stuck marker arrived
	QueueDepths     []int `json:"queue_depths"`      // live per-worker backlog
}

// Stats snapshots the counters; safe to call concurrently with ingest.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	ingested := s.tracker.Events()
	open := s.tracker.OpenCalls()
	stuck := s.tracker.Stuck()
	routed, shed := s.routed, s.shed
	s.mu.Unlock()
	st := Stats{
		EventsIngested:  ingested,
		EventsRouted:    routed,
		EventsShed:      shed,
		OpenCalls:       open,
		Stuck:           stuck,
		EventsApplied:   s.applied.Load(),
		Partitions:      s.partsCreated.Load(),
		OpsChecked:      s.opsChecked.Load(),
		WindowFlushes:   s.flushes.Load(),
		WindowOverflows: s.overflows.Load(),
		Checkpoints:     s.checkpoints.Load(),
		MaxWindowEvents: s.maxWindow.Load(),
		MaxFrontier:     s.maxFrontier.Load(),
	}
	if s.cache != nil {
		st.CacheHits, st.CacheEntries = s.cache.counts()
	}
	for _, w := range s.workers {
		st.QueueDepths = append(st.QueueDepths, len(w.ch))
	}
	return st
}

// PartitionVerdict is the judgment of one partition.
type PartitionVerdict struct {
	Key          string `json:"partition"`
	Linearizable bool   `json:"linearizable"`
	Final        bool   `json:"final"`           // residual window judged (Close) or failed early
	Shed         bool   `json:"shed,omitempty"`  // poisoned: verdict covers a gapped stream
	Err          string `json:"error,omitempty"` // search error (state limit, unknown op, model panic)
	Ops          int64  `json:"ops"`             // completed operations observed
	Windows      int64  `json:"windows"`         // windows retired
	Frontier     int    `json:"frontier"`        // frontier states at last transition
}

// Summary is the final outcome of a served stream.
type Summary struct {
	Verdicts     []PartitionVerdict `json:"verdicts"`
	Stats        Stats              `json:"stats"`
	Linearizable bool               `json:"linearizable"` // every judged partition linearizable, no errors
}

// Close finishes the service: it drains the queues, judges every residual
// window (applying the stream's stuck marker, if any), stops the workers and
// the HTTP endpoint, and returns the final summary. A configured checkpoint
// file gets one last snapshot before the verdict pass so a crash during
// shutdown still resumes.
func (s *Server) Close() (*Summary, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.cfg.CheckpointPath != "" {
		if err := s.checkpointLocked(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.closed = true
	stuck := s.tracker.Stuck()
	replies, err := s.broadcast(ctlMsg{kind: ctlFinish, stuck: stuck})
	s.mu.Unlock()
	s.shutdownWorkers()
	if s.httpCloser != nil {
		_ = s.httpCloser.Close()
	}
	if err != nil {
		return nil, err
	}
	poisonedKeys := make(map[string]bool, len(s.poisoned))
	for k := range s.poisoned {
		poisonedKeys[k] = true
	}
	sum := &Summary{Verdicts: mergeVerdicts(replies), Linearizable: true}
	for i := range sum.Verdicts {
		v := &sum.Verdicts[i]
		v.Shed = poisonedKeys[v.Key]
		if v.Err != "" || (!v.Linearizable && !v.Shed) {
			sum.Linearizable = false
		}
	}
	sum.Stats = s.Stats()
	return sum, nil
}

func (s *Server) shutdownWorkers() {
	for _, w := range s.workers {
		close(w.ch)
	}
	for _, w := range s.workers {
		<-w.done
	}
}
