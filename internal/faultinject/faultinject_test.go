package faultinject_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/faultinject"
	"lineup/internal/sched"
)

func counterSubject() *core.Subject {
	inc := core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Inc(t)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter).Get(t))
	}}
	return &core.Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{inc, get},
	}
}

func smallTest(sub *core.Subject) *core.Test {
	inc, _ := sub.FindOp("Inc()")
	get, _ := sub.FindOp("Get()")
	return &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
}

// harness builds a released-on-cleanup harness and its wrapped subject.
// RequireNoLeaks is registered first so that its check runs after Release
// has freed every parked goroutine (cleanups run last-in first-out).
func harness(t *testing.T, kind faultinject.Kind) (*faultinject.Harness, *core.Subject) {
	t.Helper()
	sched.RequireNoLeaks(t)
	h := faultinject.New(kind)
	t.Cleanup(h.Release)
	return h, h.Wrap(counterSubject())
}

// checkContained runs a full check expecting contained failures of the
// kind's classification and an otherwise passing verdict (the counter is
// correct; failed executions contribute no history).
func checkContained(t *testing.T, kind faultinject.Kind, opts core.Options) (*faultinject.Harness, *core.Result) {
	t.Helper()
	h, sub := harness(t, kind)
	m := smallTest(sub)
	opts.MaxFailures = 10000
	res, err := core.Check(sub, m, opts)
	if err != nil {
		t.Fatalf("Check with contained %v faults: %v", kind, err)
	}
	if res.Verdict != core.Pass {
		t.Fatalf("verdict = %v, want Pass (failed executions must not poison the verdict): %v", res.Verdict, res.Violation)
	}
	if h.Injections() == 0 {
		t.Fatalf("harness injected no %v faults; the test exercises nothing", kind)
	}
	if len(res.Failures) == 0 {
		t.Fatalf("no failures recorded despite %d injections", h.Injections())
	}
	for i, f := range res.Failures {
		if f.Kind != kind.Expected() {
			t.Errorf("failure %d classified %v, want %v: %s", i, f.Kind, kind.Expected(), f.Message)
		}
		if len(f.Schedule) == 0 {
			t.Errorf("failure %d has no schedule prefix", i)
		}
	}
	return h, res
}

func TestPanicContainedAndClassified(t *testing.T) {
	_, res := checkContained(t, faultinject.KindPanic, core.Options{})
	for i, f := range res.Failures {
		if !strings.Contains(f.Message, "injected panic") {
			t.Errorf("failure %d message %q does not name the injected panic", i, f.Message)
		}
		if !strings.Contains(f.Stack, "faultinject") {
			t.Errorf("failure %d stack does not reach the injection site", i)
		}
	}
}

func TestHangContainedByWatchdog(t *testing.T) {
	checkContained(t, faultinject.KindHang, core.Options{Watchdog: 20 * time.Millisecond})
}

func TestSpinContainedByWatchdog(t *testing.T) {
	checkContained(t, faultinject.KindSpin, core.Options{Watchdog: 20 * time.Millisecond})
}

func TestLeakContainedAndDetected(t *testing.T) {
	checkContained(t, faultinject.KindLeak, core.Options{DetectLeaks: true})
}

func TestStrictModeAbortsOnFirstFault(t *testing.T) {
	_, sub := harness(t, faultinject.KindPanic)
	m := smallTest(sub)
	_, err := core.Check(sub, m, core.Options{})
	if err == nil {
		t.Fatalf("strict check (MaxFailures = 0) returned no error despite injected panics")
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("strict check error %q does not carry the panic", err)
	}
}

func TestFailureBudgetAborts(t *testing.T) {
	_, sub := harness(t, faultinject.KindPanic)
	m := smallTest(sub)
	_, err := core.Check(sub, m, core.Options{MaxFailures: 1})
	var tm *core.TooManyFailuresError
	if !errors.As(err, &tm) {
		t.Fatalf("err = %v, want *TooManyFailuresError", err)
	}
	if tm.Limit != 1 || len(tm.Failures) != 1 {
		t.Fatalf("TooManyFailuresError carries limit %d with %d failures, want 1 and 1", tm.Limit, len(tm.Failures))
	}
}

func failureFingerprints(fs []core.RuntimeFailure) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%v|%v|%s", f.Kind, f.Schedule, f.Message)
	}
	return out
}

// TestParallelFailureSetMatchesSequential is the determinism acceptance
// check: the recorded failure set — and in particular the sequentially
// first failure — must be identical whether phase 2 runs on one worker or
// on four.
func TestParallelFailureSetMatchesSequential(t *testing.T) {
	_, sub := harness(t, faultinject.KindPanic)
	m := smallTest(sub)
	seqRes, err := core.Check(sub, m, core.Options{MaxFailures: 10000})
	if err != nil {
		t.Fatalf("sequential check: %v", err)
	}
	parRes, err := core.Check(sub, m, core.Options{MaxFailures: 10000, Workers: 4})
	if err != nil {
		t.Fatalf("parallel check: %v", err)
	}
	seqFP := failureFingerprints(seqRes.Failures)
	parFP := failureFingerprints(parRes.Failures)
	if len(seqFP) == 0 {
		t.Fatalf("sequential run recorded no failures")
	}
	if len(seqFP) != len(parFP) {
		t.Fatalf("failure counts differ: sequential %d, parallel %d", len(seqFP), len(parFP))
	}
	for i := range seqFP {
		if seqFP[i] != parFP[i] {
			t.Fatalf("failure %d differs:\n  sequential: %s\n  parallel:   %s", i, seqFP[i], parFP[i])
		}
	}
}

// TestParallelBudgetAbortMatchesSequential pins the other half of the
// determinism contract: when the failure budget is exceeded, the parallel
// explorer reports exactly the failures the sequential abort would.
func TestParallelBudgetAbortMatchesSequential(t *testing.T) {
	_, sub := harness(t, faultinject.KindPanic)
	m := smallTest(sub)
	var seqTM, parTM *core.TooManyFailuresError
	if _, err := core.Check(sub, m, core.Options{MaxFailures: 2}); !errors.As(err, &seqTM) {
		t.Fatalf("sequential err = %v, want *TooManyFailuresError", err)
	}
	if _, err := core.Check(sub, m, core.Options{MaxFailures: 2, Workers: 4}); !errors.As(err, &parTM) {
		t.Fatalf("parallel err = %v, want *TooManyFailuresError", err)
	}
	seqFP := failureFingerprints(seqTM.Failures)
	parFP := failureFingerprints(parTM.Failures)
	if len(seqFP) != len(parFP) {
		t.Fatalf("abort failure counts differ: sequential %d, parallel %d", len(seqFP), len(parFP))
	}
	for i := range seqFP {
		if seqFP[i] != parFP[i] {
			t.Fatalf("abort failure %d differs:\n  sequential: %s\n  parallel:   %s", i, seqFP[i], parFP[i])
		}
	}
}

// TestRecordedScheduleMatchesExploration ties the failure records back to
// real executions: walking the same schedule space with ForEachExecution,
// the first failing outcome's schedule is the recorded first failure's.
func TestRecordedScheduleMatchesExploration(t *testing.T) {
	_, sub := harness(t, faultinject.KindPanic)
	m := smallTest(sub)
	res, err := core.Check(sub, m, core.Options{MaxFailures: 10000})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatalf("no failures recorded")
	}
	var firstFailing []sched.ThreadID
	_, err = core.ForEachExecution(sub, m, core.Options{MaxFailures: 10000}, false, func(out *sched.Outcome) bool {
		if out.FailureKind() != sched.FailNone {
			firstFailing = append([]sched.ThreadID(nil), out.Schedule...)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("ForEachExecution: %v", err)
	}
	want := fmt.Sprint(res.Failures[0].Schedule)
	if got := fmt.Sprint(firstFailing); got != want {
		t.Fatalf("first failing schedule %s, recorded %s", got, want)
	}
}
