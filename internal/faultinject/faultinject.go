// Package faultinject wraps a checker subject with controlled runtime
// faults — panics, uninstrumented blocking, non-yielding spins, and rogue
// goroutines — to exercise the exploration runtime's containment paths
// (watchdog abandonment, failure classification, leak detection). It is a
// test harness: production subjects never depend on it, and its self-tests
// are the proof that every fault kind is contained, classified, and
// race-clean.
package faultinject

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lineup/internal/core"
	"lineup/internal/sched"
)

// Kind selects which fault the harness injects.
type Kind int

const (
	// KindPanic panics inside an operation.
	KindPanic Kind = iota
	// KindHang blocks on an uninstrumented channel: the scheduler never
	// hears from the thread again and the watchdog must abandon it.
	KindHang
	// KindSpin busy-spins (yielding only to the Go runtime, never to the
	// scheduler): indistinguishable from a hang to the watchdog.
	KindSpin
	// KindLeak spawns a goroutine outside the scheduler that outlives the
	// execution; the leak detector must report it.
	KindLeak
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindSpin:
		return "spin"
	case KindLeak:
		return "leak"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Expected returns the failure classification the scheduler must assign to
// executions suffering this fault kind.
func (k Kind) Expected() sched.FailureKind {
	switch k {
	case KindPanic:
		return sched.FailPanic
	case KindHang, KindSpin:
		return sched.FailHung
	case KindLeak:
		return sched.FailLeak
	}
	return sched.FailNone
}

// Harness injects one kind of fault into a wrapped subject. Faults fire
// only when two operations overlap (so serial phase-1 executions stay
// clean) and at most once per execution; whether an overlap occurs is a
// deterministic function of the schedule, which keeps the set of failing
// executions — and therefore the checker's failure reports — identical
// across sequential and parallel exploration.
type Harness struct {
	kind      Kind
	release   chan struct{}
	released  atomic.Bool
	closeOnce sync.Once
	injected  atomic.Int64
}

// New creates a harness injecting the given fault kind.
func New(kind Kind) *Harness {
	return &Harness{kind: kind, release: make(chan struct{})}
}

// Injections reports how many faults the harness has fired so far.
func (h *Harness) Injections() int64 { return h.injected.Load() }

// Release frees every goroutine the harness has parked (hung threads,
// spinners, rogue leaked goroutines) so tests can assert a leak-free
// process afterwards. Idempotent.
func (h *Harness) Release() {
	h.closeOnce.Do(func() {
		h.released.Store(true)
		close(h.release)
	})
}

// wrapped is the per-execution object: the real object plus the overlap
// counter and the once-per-execution injection latch. Subject.New runs once
// per execution, so the latch resets naturally.
type wrapped struct {
	h        *Harness
	obj      any
	running  atomic.Int32
	injected atomic.Bool
}

// Wrap returns a subject equivalent to sub except that every operation may
// suffer the harness's fault when it overlaps another operation.
func (h *Harness) Wrap(sub *core.Subject) *core.Subject {
	out := &core.Subject{
		Name: sub.Name + "+" + h.kind.String(),
		New: func(t *sched.Thread) any {
			return &wrapped{h: h, obj: sub.New(t)}
		},
	}
	for _, op := range sub.Ops {
		out.Ops = append(out.Ops, h.wrapOp(op))
	}
	return out
}

func (h *Harness) wrapOp(op core.Op) core.Op {
	inner := op.Run
	name := op.Name()
	op.Run = func(t *sched.Thread, obj any) string {
		w := obj.(*wrapped)
		w.running.Add(1)
		defer w.running.Add(-1)
		if w.running.Load() > 1 && w.injected.CompareAndSwap(false, true) {
			h.inject(name)
		}
		return inner(t, w.obj)
	}
	return op
}

// inject fires the configured fault in the calling (scheduler-run) thread.
func (h *Harness) inject(op string) {
	h.injected.Add(1)
	switch h.kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic in %s", op))
	case KindHang:
		// Uninstrumented block: the scheduler is never told, so only the
		// watchdog can reclaim the execution.
		<-h.release
	case KindSpin:
		for !h.released.Load() {
			runtime.Gosched()
		}
	case KindLeak:
		ch := h.release
		go func() { <-ch }()
	}
}
