package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"lineup/internal/core"
	"lineup/internal/dist"
)

// Process-level fault injection for the distributed coordinator: where
// Harness injects faults *inside* subject operations (exercising the
// explorer's containment), ProcPlan and FlakyLauncher disrupt whole worker
// runs (exercising the coordinator's lease recovery). The plan is a pure
// function of (seed, seq, attempt), so a disrupted distributed run is
// reproducible and its merged result can be pinned bit-identical to the
// undisrupted one.

// ProcFault is one way a worker process can misbehave.
type ProcFault int

const (
	// ProcNone runs the unit normally.
	ProcNone ProcFault = iota
	// ProcCrash makes the run die immediately — the moral equivalent of a
	// worker panic or kill -9 before any progress.
	ProcCrash
	// ProcHang makes the worker go silent without exiting: no heartbeats, no
	// result, until the coordinator revokes the lease.
	ProcHang
	// ProcStall heartbeats once and then goes silent mid-unit — a worker
	// that lived long enough to look healthy before wedging.
	ProcStall
)

func (f ProcFault) String() string {
	switch f {
	case ProcNone:
		return "none"
	case ProcCrash:
		return "crash"
	case ProcHang:
		return "hang"
	case ProcStall:
		return "stall"
	}
	return fmt.Sprintf("ProcFault(%d)", int(f))
}

// ErrInjectedCrash is the error a ProcCrash run returns.
var ErrInjectedCrash = errors.New("faultinject: injected worker crash")

// ProcPlan decides deterministically which (unit, attempt) runs are
// disrupted. Faults fire on first attempts only by default (Repeat extends
// them to retries up to Repeat extra times), so a finite retry budget always
// suffices to finish — except in tests that *want* poisoning, which set
// Repeat high enough to exhaust the budget.
type ProcPlan struct {
	// Seed scrambles which units are hit.
	Seed int64
	// Every selects roughly one in Every units for disruption (<= 0: none).
	Every int
	// Fault is the disruption applied to selected units.
	Fault ProcFault
	// Repeat additionally disrupts the first Repeat retries of a selected
	// unit. Repeat >= the coordinator's retry budget forces poisoning.
	Repeat int

	injected atomic.Int64
}

// fault returns the disruption for one leased run. The mix is a cheap
// integer hash — stable across runs and processes.
func (p *ProcPlan) fault(seq, attempt int) ProcFault {
	if p == nil || p.Every <= 0 || p.Fault == ProcNone {
		return ProcNone
	}
	if attempt > 1+p.Repeat {
		return ProcNone
	}
	// splitmix64 finalizer: a weaker mix leaves h's low bits a function of
	// seed alone, making Every=2 hit all units or none.
	h := uint64(seq)*0x9E3779B97F4A7C15 + uint64(p.Seed)*0xD1B54A32D192ED03 + 0x2545F4914F6CDD1D
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	if h%uint64(p.Every) == 0 {
		return p.Fault
	}
	return ProcNone
}

// Injections reports how many runs the plan disrupted.
func (p *ProcPlan) Injections() int { return int(p.injected.Load()) }

// FlakyLauncher wraps a dist.Launcher with a ProcPlan: selected runs crash,
// hang, or stall instead of (or before) doing their work. Undisrupted runs
// pass straight through, and a disrupted unit's retries succeed once the
// plan stops firing — which is exactly the at-least-once recovery path the
// coordinator must survive without changing the merged result.
type FlakyLauncher struct {
	Inner dist.Launcher
	Plan  *ProcPlan
}

func (l *FlakyLauncher) Run(ctx context.Context, spec dist.UnitSpec, heartbeat func()) (*core.UnitReport, error) {
	switch l.Plan.fault(spec.Seq, spec.Attempt) {
	case ProcCrash:
		l.Plan.injected.Add(1)
		return nil, ErrInjectedCrash
	case ProcHang:
		l.Plan.injected.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	case ProcStall:
		l.Plan.injected.Add(1)
		heartbeat()
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return l.Inner.Run(ctx, spec, heartbeat)
}
