package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"lineup/internal/core"
)

// WorkerJob is the file an ExecLauncher coordinator hands a worker process:
// everything the worker needs to reproduce the coordinator's configuration
// (the deterministic phase 1 is re-synthesized worker-side) plus the unit.
type WorkerJob struct {
	Subject    string        `json:"subject"`
	Test       [][]string    `json:"test"`
	Options    WorkerOptions `json:"options"`
	Spec       UnitSpec      `json:"spec"`
	ReportPath string        `json:"report_path"`
}

// RunWorker is the worker half of the exec protocol: it loads the job file,
// resolves the subject through the caller's registry, runs the unit, writes
// the report atomically, and prints "done". Heartbeats are "hb" lines on out,
// emitted from the per-execution tick at the job's heartbeat period. Exit
// discipline is the caller's: any error return should exit nonzero, and the
// coordinator treats both that and silence (kill -9, panic, hang) as a
// failed lease.
func RunWorker(jobPath string, resolve func(class string) (*core.Subject, bool), out io.Writer) error {
	data, err := os.ReadFile(jobPath)
	if err != nil {
		return fmt.Errorf("dist: reading job: %w", err)
	}
	var job WorkerJob
	if err := json.Unmarshal(data, &job); err != nil {
		return fmt.Errorf("dist: parsing job %s: %w", jobPath, err)
	}
	sub, ok := resolve(job.Subject)
	if !ok {
		return fmt.Errorf("dist: unknown class %q", job.Subject)
	}
	m, err := core.TestFromNames(sub, job.Test)
	if err != nil {
		return err
	}
	opts, err := job.Options.ToOptions()
	if err != nil {
		return err
	}

	// Heartbeats ride the per-execution tick, rate-limited to the job's
	// period. The first beat goes out before exploration starts so the
	// coordinator sees a live worker even when the first execution is slow.
	beat := func() {
		fmt.Fprintln(out, "hb")
	}
	beat()
	last := time.Now()
	tick := func() bool {
		if time.Since(last) >= job.Spec.HeartbeatEvery {
			beat()
			last = time.Now()
		}
		return true
	}
	rep, err := core.CheckUnit(sub, m, opts, job.Spec.Unit, tick)
	if err != nil {
		return err
	}
	if err := saveReport(job.ReportPath, rep); err != nil {
		return err
	}
	fmt.Fprintln(out, "done")
	return nil
}
