package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"lineup/internal/core"
	"lineup/internal/history"
)

// WorkerJob is the file an ExecLauncher coordinator hands a worker process:
// everything the worker needs to reproduce the coordinator's configuration
// (the deterministic phase 1 is re-synthesized worker-side) plus the unit.
type WorkerJob struct {
	Subject    string        `json:"subject"`
	Test       [][]string    `json:"test"`
	Options    WorkerOptions `json:"options"`
	Spec       UnitSpec      `json:"spec"`
	ReportPath string        `json:"report_path"`
	// SpecHistories, when present, is the coordinator's phase-1
	// specification in history.Spec Export order; the worker rebuilds the
	// spec from it instead of re-synthesizing. Absent (older coordinators,
	// hand-written jobs), the worker synthesizes locally as before.
	SpecHistories []*history.SerialHistory `json:"spec_histories,omitempty"`
}

// RunWorker is the worker half of the exec protocol: it loads the job file,
// resolves the subject through the caller's registry, runs the unit, writes
// the report atomically, and prints "done". Heartbeats are "hb" lines on out,
// emitted from the per-execution tick at the job's heartbeat period. Exit
// discipline is the caller's: any error return should exit nonzero, and the
// coordinator treats both that and silence (kill -9, panic, hang) as a
// failed lease.
func RunWorker(jobPath string, resolve func(class string) (*core.Subject, bool), out io.Writer) error {
	data, err := os.ReadFile(jobPath)
	if err != nil {
		return fmt.Errorf("dist: reading job: %w", err)
	}
	var job WorkerJob
	if err := json.Unmarshal(data, &job); err != nil {
		return fmt.Errorf("dist: parsing job %s: %w", jobPath, err)
	}
	sub, ok := resolve(job.Subject)
	if !ok {
		return fmt.Errorf("dist: unknown class %q", job.Subject)
	}
	m, err := core.TestFromNames(sub, job.Test)
	if err != nil {
		return err
	}
	opts, err := job.Options.ToOptions()
	if err != nil {
		return err
	}

	// Heartbeats ride the per-execution tick, rate-limited to the job's
	// period. The first beat goes out before exploration starts so the
	// coordinator sees a live worker even when the first execution is slow.
	beat := func() {
		fmt.Fprintln(out, "hb")
	}
	beat()
	last := time.Now()
	tick := func() bool {
		if time.Since(last) >= job.Spec.HeartbeatEvery {
			beat()
			last = time.Now()
		}
		return true
	}
	var spec *history.Spec
	if len(job.SpecHistories) > 0 {
		spec = history.ImportSpec(job.SpecHistories)
	}
	rep, err := core.CheckUnitWithSpec(sub, m, opts, job.Spec.Unit, spec, tick)
	if err != nil {
		return err
	}
	if err := saveReport(job.ReportPath, rep); err != nil {
		return err
	}
	fmt.Fprintln(out, "done")
	return nil
}
