// Package dist distributes phase-2 exploration across worker processes with
// lease-based fault tolerance. The coordinator splits the schedule tree into
// checkpoint-format work units (core.PlanUnits), leases each unit to a worker
// with a heartbeat-renewed deadline, and merges per-unit reports with the
// same min-position rule the in-process explorer uses — so the merged
// verdict, statistics, and first violation are bit-identical to the
// sequential explorer regardless of worker count, kill schedule, or lease
// reassignment order.
//
// Robustness model: a worker that panics, hangs past its lease, or is
// kill -9'd simply stops heartbeating; the coordinator revokes the lease and
// re-queues the unit with exponential backoff. Re-running a unit is safe
// because units are pure checkpoint replays — a replayed unit produces a
// byte-identical report, so at-least-once assignment merges exactly-once
// results. Unit state is journaled through obsfile.AtomicWriteFile after
// every transition, so a coordinator killed at any instant resumes from the
// durable manifest without re-running completed units or double-counting
// their statistics. A unit that exhausts its retry budget poisons the run:
// the coordinator finishes everything else and returns a structured
// *PoisonedUnitsError naming the poisoned units with the merged statistics
// of the completed ones.
package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"lineup/internal/core"
	"lineup/internal/telemetry"
)

// Config drives one distributed check.
type Config struct {
	// Subject and Test identify the check; Options configure it exactly as
	// they would a sequential core.Check. The merged result matches the
	// sequential explorer with Options.ExhaustPhase2.
	Subject *core.Subject
	Test    *core.Test
	Options core.Options

	// Dir, when non-empty, holds the durable state: manifest.json (unit
	// states, journaled atomically on every transition) and one report file
	// per completed unit. A coordinator restarted with the same Dir resumes
	// from the manifest. Empty Dir keeps everything in memory (no crash
	// recovery).
	Dir string

	// Workers is the number of concurrently leased units (default: NumCPU).
	Workers int
	// Depth is the split depth handed to core.PlanUnits (0 = default).
	Depth int

	// Lease is how long a worker may go without a heartbeat before its lease
	// is revoked and the unit re-queued (default 10s). Workers heartbeat at
	// Lease/4, so a healthy worker renews several times per lease; see
	// DESIGN.md §6 for lease length vs. the execution watchdog.
	Lease time.Duration
	// MaxAttempts is the per-unit retry budget: a unit whose lease fails or
	// expires this many times is poisoned (default 3).
	MaxAttempts int
	// Backoff is the base re-queue delay after a failed or expired lease,
	// doubled for each prior attempt (default 25ms).
	Backoff time.Duration

	// Launcher runs leased units (default: an InProcLauncher over Subject/
	// Test/Options). ExecLauncher runs them as separate OS processes.
	Launcher Launcher
	// Telemetry, when non-nil, receives lease/retry/unit counters.
	Telemetry *telemetry.Collector
}

// Stats summarizes the coordinator's fault-tolerance activity.
type Stats struct {
	Units          int // work units in the plan
	Done           int // units completed (this run; resumed units not re-counted)
	Resumed        int // units restored already-done from a prior manifest
	Poisoned       int // units that exhausted their retry budget
	LeasesGranted  int // leases handed to workers
	LeasesExpired  int // leases revoked after heartbeat loss
	Retries        int // re-queues after a failed or expired lease
	StaleReports   int // deliveries from superseded leases, discarded
	WorkerFailures int // worker runs that returned an error
}

// PoisonedUnit names one unit that exhausted its retry budget.
type PoisonedUnit struct {
	Seq      int    `json:"seq"`
	Attempts int    `json:"attempts"`
	LastErr  string `json:"last_err,omitempty"`
}

// PoisonedUnitsError is the graceful-degradation result of a run in which
// some units exhausted their retry budget: every healthy unit was still
// completed, and the error carries the merged phase-2 statistics of the
// completed subtrees alongside the poisoned units — a partial result in the
// spirit of core.TooManyFailuresError rather than a hang or a panic.
type PoisonedUnitsError struct {
	// Poisoned lists the exhausted units in sequence order.
	Poisoned []PoisonedUnit
	// Done and Units are the completed and total unit counts.
	Done, Units int
	// Partial is the merged phase-2 statistics over the completed units
	// (executions, decisions, distinct histories, dedup hits). No verdict is
	// claimed: the unexplored subtrees could hold the first violation.
	Partial core.PhaseStats
}

func (e *PoisonedUnitsError) Error() string {
	seqs := make([]int, len(e.Poisoned))
	for i, p := range e.Poisoned {
		seqs[i] = p.Seq
	}
	return fmt.Sprintf("dist: %d of %d units exhausted their retry budget (units %v); %d completed, partial stats %+v",
		len(e.Poisoned), e.Units, seqs, e.Done, e.Partial)
}

func (c Config) withDefaults() (Config, error) {
	if c.Subject == nil || c.Test == nil {
		return c, errors.New("dist: Config needs a Subject and a Test")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Launcher == nil {
		c.Launcher = &InProcLauncher{Subject: c.Subject, Test: c.Test, Options: c.Options}
	}
	return c, nil
}

// unit lifecycle: pending -> leased -> done, or pending -> leased -> pending
// (retry with backoff) -> ... -> poisoned once attempts hit the budget.
type unitState int

const (
	uPending unitState = iota
	uLeased
	uDone
	uPoisoned
)

func (s unitState) String() string {
	switch s {
	case uPending:
		return "pending"
	case uLeased:
		return "leased" // volatile: never journaled
	case uDone:
		return "done"
	case uPoisoned:
		return "poisoned"
	}
	return fmt.Sprintf("unitState(%d)", int(s))
}

type unitRec struct {
	state      unitState
	attempts   int // leases granted so far
	lastErr    string
	eligibleAt time.Time          // pending: earliest re-lease time
	deadline   time.Time          // leased: heartbeat deadline
	cancel     context.CancelFunc // leased: revokes the worker's context
}

// Run executes one distributed check and returns the merged result, which is
// bit-identical (durations aside) to the sequential explorer with
// Options.ExhaustPhase2. Terminal outcomes besides success: a
// *PoisonedUnitsError when units exhausted their retry budget, the same
// errors sequential checking produces (failure aborts, budget overflow), and
// ctx cancellation.
func Run(ctx context.Context, cfg Config) (*core.Result, Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	plan, err := core.PlanUnits(cfg.Subject, cfg.Test, cfg.Options, cfg.Depth)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{Units: len(plan.Units)}
	if plan.Nondet != nil {
		res, err := core.MergeUnitReports(cfg.Subject, cfg.Test, cfg.Options, plan, nil)
		if res != nil {
			res.Phase1.Duration = time.Since(start)
		}
		return res, stats, err
	}

	// Ship the freshly synthesized (and determinism-checked) phase-1 spec to
	// exec workers so they skip the per-unit re-synthesis that dominates
	// small units. Phase 1 is deterministic, so the reports are byte-for-byte
	// what local synthesis would have produced.
	if ex, ok := cfg.Launcher.(*ExecLauncher); ok && ex.Spec == nil {
		ex.Spec = plan.Spec
	}

	recs := make([]*unitRec, len(plan.Units))
	for i := range recs {
		recs[i] = &unitRec{state: uPending}
	}
	reports := make([]*core.UnitReport, len(plan.Units))
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, stats, fmt.Errorf("dist: state dir: %w", err)
		}
		if err := resumeManifest(cfg, plan, recs, reports, &stats); err != nil {
			return nil, stats, err
		}
	}
	journal := func() error { return saveManifest(cfg, plan, recs) }
	if err := journal(); err != nil {
		return nil, stats, err
	}

	// Every runner sends exactly one completion; total leases over the run
	// are bounded by units*MaxAttempts, so a buffer that size means no
	// runner ever blocks on a coordinator that has moved on.
	doneCh := make(chan unitDelivery, len(plan.Units)*cfg.MaxAttempts+1)
	hbCh := make(chan UnitSpec, 4*cfg.Workers+16)
	running := 0
	terminal := 0
	for _, r := range recs {
		if r.state == uDone || r.state == uPoisoned {
			terminal++
		}
	}

	retire := func(rec *unitRec, now time.Time) {
		// The lease just ended unsuccessfully; re-queue or poison.
		if rec.attempts >= cfg.MaxAttempts {
			rec.state = uPoisoned
			terminal++
			stats.Poisoned++
			if cfg.Telemetry != nil {
				cfg.Telemetry.DistUnitsPoisoned.Add(1)
			}
			return
		}
		rec.state = uPending
		rec.eligibleAt = now.Add(cfg.Backoff << (rec.attempts - 1))
		stats.Retries++
		if cfg.Telemetry != nil {
			cfg.Telemetry.DistRetries.Add(1)
		}
	}

	for terminal < len(plan.Units) {
		now := time.Now()
		// Grant leases to the lowest-sequence eligible pending units.
		for running < cfg.Workers {
			seq := -1
			for i, r := range recs {
				if r.state == uPending && !r.eligibleAt.After(now) {
					seq = i
					break
				}
			}
			if seq < 0 {
				break
			}
			rec := recs[seq]
			rec.attempts++
			rec.state = uLeased
			rec.deadline = now.Add(cfg.Lease)
			wctx, cancel := context.WithCancel(ctx)
			rec.cancel = cancel
			running++
			stats.LeasesGranted++
			if cfg.Telemetry != nil {
				cfg.Telemetry.DistLeasesGranted.Add(1)
			}
			spec := UnitSpec{Seq: seq, Attempt: rec.attempts, Unit: plan.Units[seq], HeartbeatEvery: cfg.Lease / 4}
			go func(wctx context.Context, spec UnitSpec) {
				hb := func() {
					select {
					case hbCh <- spec:
					default: // a dropped heartbeat is harmless; the next renews
					}
				}
				rep, err := cfg.Launcher.Run(wctx, spec, hb)
				doneCh <- unitDelivery{spec: spec, report: rep, err: err}
			}(wctx, spec)
		}

		// Sleep until the next actionable instant: a lease deadline, a
		// backoff expiry, or an event.
		wake := now.Add(cfg.Lease)
		for _, r := range recs {
			switch r.state {
			case uLeased:
				if r.deadline.Before(wake) {
					wake = r.deadline
				}
			case uPending:
				if r.eligibleAt.After(now) && r.eligibleAt.Before(wake) {
					wake = r.eligibleAt
				}
			}
		}
		timer := time.NewTimer(time.Until(wake))
		select {
		case <-ctx.Done():
			timer.Stop()
			for _, r := range recs {
				if r.cancel != nil {
					r.cancel()
				}
			}
			return nil, stats, ctx.Err()

		case spec := <-hbCh:
			timer.Stop()
			rec := recs[spec.Seq]
			if rec.state == uLeased && rec.attempts == spec.Attempt {
				rec.deadline = time.Now().Add(cfg.Lease)
			}

		case d := <-doneCh:
			timer.Stop()
			rec := recs[d.spec.Seq]
			if rec.state != uLeased || rec.attempts != d.spec.Attempt {
				// A superseded lease finished after revocation (or the unit
				// is already done from a faster replica): discard — replays
				// are byte-identical, so keeping the first is correct.
				stats.StaleReports++
				if cfg.Telemetry != nil {
					cfg.Telemetry.DistStaleReports.Add(1)
				}
				continue
			}
			running--
			rec.cancel()
			rec.cancel = nil
			if d.err != nil || d.report == nil {
				stats.WorkerFailures++
				if cfg.Telemetry != nil {
					cfg.Telemetry.DistWorkerFailures.Add(1)
				}
				rec.lastErr = "worker returned no report"
				if d.err != nil {
					rec.lastErr = d.err.Error()
				}
				retire(rec, time.Now())
				if err := journal(); err != nil {
					return nil, stats, err
				}
				continue
			}
			if cfg.Dir != "" {
				if err := saveReport(reportPath(cfg.Dir, d.spec.Seq), d.report); err != nil {
					return nil, stats, err
				}
			}
			reports[d.spec.Seq] = d.report
			rec.state = uDone
			terminal++
			stats.Done++
			if cfg.Telemetry != nil {
				cfg.Telemetry.DistUnitsDone.Add(1)
			}
			if err := journal(); err != nil {
				return nil, stats, err
			}

		case <-timer.C:
			now := time.Now()
			for _, rec := range recs {
				if rec.state == uLeased && !rec.deadline.After(now) {
					// Heartbeat lost: the worker panicked, hung, or was
					// kill -9'd. Revoke and re-queue; the idempotent replay
					// makes the reassignment safe.
					rec.cancel()
					rec.cancel = nil
					running--
					rec.lastErr = "lease expired (heartbeat lost)"
					stats.LeasesExpired++
					if cfg.Telemetry != nil {
						cfg.Telemetry.DistLeasesExpired.Add(1)
					}
					retire(rec, now)
					if err := journal(); err != nil {
						return nil, stats, err
					}
				}
			}
		}
	}

	if stats.Poisoned > 0 {
		e := &PoisonedUnitsError{Units: len(plan.Units), Done: stats.Done + stats.Resumed}
		for seq, rec := range recs {
			if rec.state == uPoisoned {
				e.Poisoned = append(e.Poisoned, PoisonedUnit{Seq: seq, Attempts: rec.attempts, LastErr: rec.lastErr})
			}
		}
		sort.Slice(e.Poisoned, func(i, j int) bool { return e.Poisoned[i].Seq < e.Poisoned[j].Seq })
		e.Partial = partialStats(reports)
		return nil, stats, e
	}
	all := make([]*core.UnitReport, 0, len(reports))
	for _, r := range reports {
		all = append(all, r)
	}
	res, err := core.MergeUnitReports(cfg.Subject, cfg.Test, cfg.Options, plan, all)
	if res != nil {
		res.Phase2.Duration = time.Since(start) - res.Phase1.Duration
		if res.Phase1.Duration == 0 {
			res.Phase1.Duration = plan.Phase1.Duration
		}
	}
	return res, stats, err
}

// unitDelivery is a runner's single completion message.
type unitDelivery struct {
	spec   UnitSpec
	report *core.UnitReport
	err    error
}

// partialStats merges the phase-2 statistics of the completed units —
// executions, decisions, prunes, and cross-unit distinct-history accounting —
// for the degraded PoisonedUnitsError result.
func partialStats(reports []*core.UnitReport) core.PhaseStats {
	var s core.PhaseStats
	distinct := make(map[string]bool)
	stuck := make(map[string]bool)
	total := 0
	for _, r := range reports {
		if r == nil {
			continue
		}
		s.Executions += r.Executions
		s.Decisions += r.Decisions
		s.Pruned += r.Pruned
		for _, k := range r.Keys {
			total += k.Count
			distinct[string(k.Key)] = true
			if k.Stuck {
				stuck[string(k.Key)] = true
			}
		}
	}
	s.Stuck = len(stuck)
	s.Histories = len(distinct) - len(stuck)
	s.DedupHits = total - len(distinct)
	return s
}

func reportPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("unit-%06d.json", seq))
}
