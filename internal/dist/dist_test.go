package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/dist"
	"lineup/internal/faultinject"
	"lineup/internal/history"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

func counterSubject() *core.Subject {
	inc := core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Inc(t)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter).Get(t))
	}}
	return &core.Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{inc, get},
	}
}

func counter1Subject() *core.Subject {
	inc := core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter1).Inc(t)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter1).Get(t))
	}}
	return &core.Subject{
		Name: "Counter1",
		New:  func(t *sched.Thread) any { return collections.NewCounter1(t) },
		Ops:  []core.Op{inc, get},
	}
}

func testFor(sub *core.Subject) *core.Test {
	inc, _ := sub.FindOp("Inc()")
	get, _ := sub.FindOp("Get()")
	return &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
}

// wantResult is the sequential ground truth every distributed run must
// reproduce bit-identically: the exhaustive sequential check with durations
// zeroed.
func wantResult(t *testing.T, sub *core.Subject, m *core.Test, opts core.Options) *core.Result {
	t.Helper()
	seqOpts := opts
	seqOpts.ExhaustPhase2 = true
	res, err := core.Check(sub, m, seqOpts)
	if err != nil {
		t.Fatalf("sequential check: %v", err)
	}
	res.Phase1.Duration, res.Phase2.Duration = 0, 0
	return res
}

func requireSameResult(t *testing.T, tag string, got, want *core.Result) {
	t.Helper()
	got.Phase1.Duration, got.Phase2.Duration = 0, 0
	if got.Verdict != want.Verdict {
		t.Fatalf("%s: verdict %v, sequential %v", tag, got.Verdict, want.Verdict)
	}
	if got.Phase1 != want.Phase1 || got.Phase2 != want.Phase2 {
		t.Fatalf("%s: stats differ:\n got %+v / %+v\nwant %+v / %+v",
			tag, got.Phase1, got.Phase2, want.Phase1, want.Phase2)
	}
	gj, _ := json.Marshal(got.Violation)
	wj, _ := json.Marshal(want.Violation)
	if string(gj) != string(wj) {
		t.Fatalf("%s: violation differs:\n got %s\nwant %s", tag, gj, wj)
	}
	if len(got.Failures) != len(want.Failures) {
		t.Fatalf("%s: %d failures, sequential %d", tag, len(got.Failures), len(want.Failures))
	}
}

// TestDistMatchesSequentialHealthy: with no faults at all, the coordinator's
// merged result is bit-identical to sequential DFS for passing and failing
// subjects, across worker counts and reductions.
func TestDistMatchesSequentialHealthy(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, sub := range []*core.Subject{counterSubject(), counter1Subject()} {
		m := testFor(sub)
		for _, red := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
			opts := core.Options{Reduction: red}
			want := wantResult(t, sub, m, opts)
			for _, workers := range []int{1, 3} {
				res, stats, err := dist.Run(context.Background(), dist.Config{
					Subject: sub, Test: m, Options: opts,
					Workers: workers, Depth: 2,
				})
				tag := fmt.Sprintf("%s red=%v workers=%d", sub.Name, red, workers)
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				requireSameResult(t, tag, res, want)
				if stats.Done != stats.Units || stats.LeasesGranted < stats.Units {
					t.Fatalf("%s: inconsistent stats %+v", tag, stats)
				}
			}
		}
	}
}

// TestDistRandomizedKillDeterminism is the acceptance gate: across seeds and
// fault kinds (worker crash, silent hang, stall after one heartbeat), the
// merged verdict, statistics, and first violation stay bit-identical to
// sequential DFS — lease expiry, exponential backoff, and idempotent replay
// absorb every disruption.
func TestDistRandomizedKillDeterminism(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, sub := range []*core.Subject{counterSubject(), counter1Subject()} {
		m := testFor(sub)
		opts := core.Options{Reduction: sched.ReductionSleep}
		want := wantResult(t, sub, m, opts)
		injected := 0
		for _, fault := range []faultinject.ProcFault{faultinject.ProcCrash, faultinject.ProcHang, faultinject.ProcStall} {
			for seed := int64(1); seed <= 3; seed++ {
				plan := &faultinject.ProcPlan{Seed: seed, Every: 2, Fault: fault}
				cfg := dist.Config{
					Subject: sub, Test: m, Options: opts,
					Workers: 3, Depth: 2,
					Lease:   120 * time.Millisecond,
					Backoff: time.Millisecond,
				}
				cfg.Launcher = &faultinject.FlakyLauncher{
					Inner: &dist.InProcLauncher{Subject: sub, Test: m, Options: opts},
					Plan:  plan,
				}
				res, stats, err := dist.Run(context.Background(), cfg)
				tag := fmt.Sprintf("%s fault=%v seed=%d", sub.Name, fault, seed)
				if err != nil {
					t.Fatalf("%s: %v (stats %+v)", tag, err, stats)
				}
				requireSameResult(t, tag, res, want)
				if plan.Injections() > 0 && stats.Retries == 0 {
					t.Fatalf("%s: %d faults injected but no retries recorded: %+v", tag, plan.Injections(), stats)
				}
				injected += plan.Injections()
			}
		}
		if injected == 0 {
			t.Fatalf("%s: no faults injected across all seeds; gate is vacuous", sub.Name)
		}
	}
}

// TestDistCoordinatorCrashResume: a coordinator cancelled mid-run (the
// in-process stand-in for kill -9; the CLI test covers the real signal)
// resumes from the durable manifest — completed units are merged from their
// journaled reports, not re-run, and the final result is bit-identical to an
// uninterrupted run.
func TestDistCoordinatorCrashResume(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	m := testFor(sub)
	opts := core.Options{Reduction: sched.ReductionSleep}
	want := wantResult(t, sub, m, opts)
	dir := t.TempDir()
	cfg := dist.Config{
		Subject: sub, Test: m, Options: opts,
		Workers: 1, Depth: 2, Dir: dir,
	}

	// Phase 1 of the test: run with a launcher that stalls after the first
	// completed unit, and cancel the coordinator once the manifest journals
	// that unit as done.
	ctx, cancel := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer cancel()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
			if err == nil && strings.Contains(string(data), `"state": "done"`) {
				close(firstDone)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	_, stats, err := dist.Run(ctx, cfg)
	select {
	case <-firstDone:
	default:
		t.Fatalf("coordinator finished before any unit was journaled (err=%v stats=%+v); fixture too fast", err, stats)
	}
	if err == nil {
		// The whole run beat the cancel; resume still must work (trivially).
		t.Logf("run completed before cancellation; resume path exercises only restored units")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}

	res, stats2, err := dist.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if stats2.Resumed == 0 {
		t.Fatalf("resume restored no units (stats %+v); double-count guard untested", stats2)
	}
	if stats2.Resumed+stats2.Done != stats2.Units {
		t.Fatalf("resume accounting broken: %+v", stats2)
	}
	requireSameResult(t, "resumed", res, want)
}

// TestDistPoisonedUnits: when a unit fails every attempt, the run degrades
// into a structured *PoisonedUnitsError naming the poisoned units and the
// merged statistics of the completed ones — no hang, no panic, and the
// healthy subtrees still ran.
func TestDistPoisonedUnits(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	m := testFor(sub)
	// The plan's hash decides which units are hit; scan seeds (deterministic
	// order) for one that poisons some units but not all, so the degradation
	// path AND the healthy-units-still-finish property are both exercised.
	for seed := int64(1); seed <= 20; seed++ {
		plan := &faultinject.ProcPlan{Seed: seed, Every: 2, Fault: faultinject.ProcCrash, Repeat: 10}
		cfg := dist.Config{
			Subject: sub, Test: m,
			Workers: 2, Depth: 2,
			MaxAttempts: 2, Backoff: time.Millisecond,
		}
		cfg.Launcher = &faultinject.FlakyLauncher{
			Inner: &dist.InProcLauncher{Subject: sub, Test: m},
			Plan:  plan,
		}
		res, stats, err := dist.Run(context.Background(), cfg)
		var pe *dist.PoisonedUnitsError
		if err == nil {
			continue // this seed hit no units
		}
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d: want *PoisonedUnitsError, got %v", seed, err)
		}
		if res != nil {
			t.Fatalf("seed %d: poisoned run returned a full result (stats %+v)", seed, stats)
		}
		if len(pe.Poisoned) == 0 || len(pe.Poisoned)+pe.Done != pe.Units {
			t.Fatalf("seed %d: poisoned accounting broken: %+v", seed, pe)
		}
		if stats.Poisoned != len(pe.Poisoned) || stats.Retries == 0 {
			t.Fatalf("seed %d: stats %+v inconsistent with %d poisoned units", seed, stats, len(pe.Poisoned))
		}
		for _, p := range pe.Poisoned {
			if p.Attempts != cfg.MaxAttempts || p.LastErr == "" {
				t.Fatalf("seed %d: poisoned unit %+v: want %d attempts and a last error", seed, p, cfg.MaxAttempts)
			}
		}
		if !strings.Contains(err.Error(), "retry budget") {
			t.Fatalf("seed %d: error message unhelpful: %v", seed, err)
		}
		if pe.Done == 0 {
			continue // every unit was hit; look for a mixed seed
		}
		if pe.Partial.Executions == 0 {
			t.Fatalf("seed %d: %d done units left no partial stats: %+v", seed, pe.Done, pe)
		}
		return // found and verified a mixed poisoned/done outcome
	}
	t.Fatal("no seed in 1..20 produced a mixed poisoned/done outcome")
}

// TestDistManifestMismatch: resuming a manifest written under a different
// configuration is rejected with every mismatched field named in one error.
func TestDistManifestMismatch(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	m := testFor(sub)
	dir := t.TempDir()
	if _, _, err := dist.Run(context.Background(), dist.Config{
		Subject: sub, Test: m, Workers: 2, Depth: 2, Dir: dir,
	}); err != nil {
		t.Fatalf("base run: %v", err)
	}
	_, _, err := dist.Run(context.Background(), dist.Config{
		Subject: sub, Test: m, Workers: 2, Depth: 1, Dir: dir,
		Options: core.Options{PreemptionBound: 1, Reduction: sched.ReductionSleep},
	})
	if err == nil {
		t.Fatal("mismatched resume was accepted")
	}
	for _, field := range []string{"preemption bound", "reduction", "depth"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("mismatch error omits %q: %v", field, err)
		}
	}
}

// TestDistTelemetry: the lease lifecycle shows up in the shared collector.
func TestDistTelemetry(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	m := testFor(sub)
	tel := telemetry.New()
	plan := &faultinject.ProcPlan{Seed: 2, Every: 2, Fault: faultinject.ProcCrash}
	opts := core.Options{Telemetry: tel}
	cfg := dist.Config{
		Subject: sub, Test: m, Options: opts,
		Workers: 2, Depth: 2, Backoff: time.Millisecond, Telemetry: tel,
	}
	cfg.Launcher = &faultinject.FlakyLauncher{
		Inner: &dist.InProcLauncher{Subject: sub, Test: m, Options: opts},
		Plan:  plan,
	}
	_, stats, err := dist.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := tel.Snapshot()
	if snap.DistLeasesGranted != int64(stats.LeasesGranted) ||
		snap.DistUnitsDone != int64(stats.Done) ||
		snap.DistRetries != int64(stats.Retries) {
		t.Fatalf("telemetry %+v disagrees with stats %+v", snap, stats)
	}
	if plan.Injections() > 0 && snap.DistWorkerFailures == 0 {
		t.Fatalf("injected crashes left no DistWorkerFailures: %+v", snap)
	}
}

// TestDistShippedSpecReportsByteIdentical pins the phase-1 spec-shipping
// optimization: a worker that rebuilds the specification from the job
// file's exported serial histories (a JSON round trip, exactly what
// ExecLauncher ships) must produce a unit report byte-identical to one that
// re-synthesizes the spec locally — for every unit of the plan, passing and
// failing subjects alike.
func TestDistShippedSpecReportsByteIdentical(t *testing.T) {
	t.Parallel()
	for _, sub := range []*core.Subject{counterSubject(), counter1Subject()} {
		m := testFor(sub)
		opts := core.Options{PreemptionBound: 2}
		plan, err := core.PlanUnits(sub, m, opts, 2)
		if err != nil {
			t.Fatalf("%s: plan: %v", sub.Name, err)
		}
		if len(plan.Units) < 2 {
			t.Fatalf("%s: plan has %d units; want a real split", sub.Name, len(plan.Units))
		}
		// Round-trip the spec the way the job file does.
		wire, err := json.Marshal(plan.Spec.Export())
		if err != nil {
			t.Fatalf("%s: marshal spec: %v", sub.Name, err)
		}
		var hs []*history.SerialHistory
		if err := json.Unmarshal(wire, &hs); err != nil {
			t.Fatalf("%s: unmarshal spec: %v", sub.Name, err)
		}
		shipped := history.ImportSpec(hs)
		for _, u := range plan.Units {
			local, err := core.CheckUnit(sub, m, opts, u, nil)
			if err != nil {
				t.Fatalf("%s unit %d: local synth: %v", sub.Name, u.Seq, err)
			}
			remote, err := core.CheckUnitWithSpec(sub, m, opts, u, shipped, nil)
			if err != nil {
				t.Fatalf("%s unit %d: shipped spec: %v", sub.Name, u.Seq, err)
			}
			lj, _ := json.Marshal(local)
			rj, _ := json.Marshal(remote)
			if string(lj) != string(rj) {
				t.Fatalf("%s unit %d: shipped-spec report differs:\n local %s\nremote %s",
					sub.Name, u.Seq, lj, rj)
			}
		}
		t.Logf("%s: %d unit reports byte-identical with the shipped spec", sub.Name, len(plan.Units))
	}
}
