package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lineup/internal/core"
)

// manifestVersion is the durable-state format version.
const manifestVersion = 1

// manifestUnit is one unit's journaled state. Leases are volatile by design:
// a coordinator killed while units were leased resumes them as pending —
// re-running a unit is free (idempotent replay), losing a completed one is
// not, so only done/poisoned transitions are worth the fsync.
type manifestUnit struct {
	Seq      int    `json:"seq"`
	State    string `json:"state"` // pending | done | poisoned
	Attempts int    `json:"attempts"`
	LastErr  string `json:"last_err,omitempty"`
}

// manifest is the coordinator's durable state: a fingerprint of the run
// configuration (a resume under a different configuration is rejected with
// every mismatch named) plus per-unit states. Reports of done units live in
// sibling unit-NNNNNN.json files.
type manifest struct {
	Version     int            `json:"version"`
	Subject     string         `json:"subject"`
	Init        []string       `json:"init,omitempty"`
	Test        [][]string     `json:"test"`
	Final       []string       `json:"final,omitempty"`
	Bound       int            `json:"preemption_bound"`
	Reduction   string         `json:"reduction"`
	Consistency string         `json:"consistency,omitempty"`
	MaxFailures int            `json:"max_failures,omitempty"`
	Depth       int            `json:"depth"`
	Units       int            `json:"units"`
	SplitPruned int            `json:"split_pruned"`
	Entries     []manifestUnit `json:"entries"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

func opNames(ops []core.Op) []string {
	if len(ops) == 0 {
		return nil
	}
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name()
	}
	return names
}

func testNames(m *core.Test) (init []string, rows [][]string, final []string) {
	for _, row := range m.Rows {
		rows = append(rows, opNames(row))
	}
	return opNames(m.Init), rows, opNames(m.Final)
}

// buildManifest fingerprints the run and snapshots unit states.
func buildManifest(cfg Config, plan *core.UnitPlan, recs []*unitRec) *manifest {
	init, rows, final := testNames(cfg.Test)
	man := &manifest{
		Version:     manifestVersion,
		Subject:     cfg.Subject.Name,
		Init:        init,
		Test:        rows,
		Final:       final,
		Bound:       cfg.Options.PreemptionBound,
		Reduction:   cfg.Options.Reduction.String(),
		MaxFailures: cfg.Options.MaxFailures,
		Depth:       cfg.Depth,
		Units:       len(plan.Units),
		SplitPruned: plan.Split.Pruned,
	}
	if cfg.Options.Consistency != core.Linearizability {
		man.Consistency = cfg.Options.Consistency.String()
	}
	for seq, rec := range recs {
		state := rec.state
		if state == uLeased {
			state = uPending // volatile
		}
		man.Entries = append(man.Entries, manifestUnit{
			Seq: seq, State: state.String(), Attempts: rec.attempts, LastErr: rec.lastErr,
		})
	}
	return man
}

func saveManifest(cfg Config, plan *core.UnitPlan, recs []*unitRec) error {
	if cfg.Dir == "" {
		return nil
	}
	return atomicWriteJSON(manifestPath(cfg.Dir), buildManifest(cfg, plan, recs))
}

// validate rejects a manifest recorded under a different configuration,
// naming every mismatched field in one error so the operator fixes a stale
// resume in a single pass (same contract as core's checkpoint validation).
func (m *manifest) validate(want *manifest) error {
	var bad []string
	mismatch := func(field string, got, exp any) {
		bad = append(bad, fmt.Sprintf("%s is %v in the manifest but %v here", field, got, exp))
	}
	if m.Version != want.Version {
		mismatch("version", m.Version, want.Version)
	}
	if m.Subject != want.Subject {
		mismatch("subject", m.Subject, want.Subject)
	}
	if fmt.Sprint(m.Init) != fmt.Sprint(want.Init) ||
		fmt.Sprint(m.Test) != fmt.Sprint(want.Test) ||
		fmt.Sprint(m.Final) != fmt.Sprint(want.Final) {
		mismatch("test", fmt.Sprint(m.Test), fmt.Sprint(want.Test))
	}
	if m.Bound != want.Bound {
		mismatch("preemption bound", m.Bound, want.Bound)
	}
	if m.Reduction != want.Reduction {
		mismatch("reduction", m.Reduction, want.Reduction)
	}
	if m.Consistency != want.Consistency {
		mismatch("consistency", m.Consistency, want.Consistency)
	}
	if m.MaxFailures != want.MaxFailures {
		mismatch("max failures", m.MaxFailures, want.MaxFailures)
	}
	if m.Depth != want.Depth {
		mismatch("depth", m.Depth, want.Depth)
	}
	if m.Units != want.Units {
		mismatch("unit count", m.Units, want.Units)
	}
	if m.SplitPruned != want.SplitPruned {
		mismatch("split pruned", m.SplitPruned, want.SplitPruned)
	}
	if len(bad) > 0 {
		return fmt.Errorf("dist: manifest does not match this run: %s", strings.Join(bad, "; "))
	}
	return nil
}

// resumeManifest loads Dir's manifest, if any, and restores unit states:
// done units get their reports re-read from disk (an unreadable report
// demotes the unit to pending — it just re-runs), poisoned units stay
// poisoned (their budget is spent; a crash loop must not reset it), and
// everything else — including units leased at the instant of the crash — is
// pending. The net effect is exactly-once merging: a completed unit is never
// re-run, never re-counted.
func resumeManifest(cfg Config, plan *core.UnitPlan, recs []*unitRec, reports []*core.UnitReport, stats *Stats) error {
	data, err := os.ReadFile(manifestPath(cfg.Dir))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dist: reading manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("dist: parsing manifest %s: %w", manifestPath(cfg.Dir), err)
	}
	if err := man.validate(buildManifest(cfg, plan, recs)); err != nil {
		return err
	}
	for _, e := range man.Entries {
		if e.Seq < 0 || e.Seq >= len(recs) {
			return fmt.Errorf("dist: manifest entry for unit %d out of range [0, %d)", e.Seq, len(recs))
		}
		rec := recs[e.Seq]
		rec.attempts = e.Attempts
		rec.lastErr = e.LastErr
		switch e.State {
		case "done":
			rep, err := loadReport(reportPath(cfg.Dir, e.Seq))
			if err != nil {
				// The report didn't survive (partial disk, manual cleanup):
				// demote and re-run rather than fail the resume.
				rec.state = uPending
				continue
			}
			rec.state = uDone
			reports[e.Seq] = rep
			stats.Resumed++
		case "poisoned":
			rec.state = uPoisoned
			stats.Poisoned++
			if cfg.Telemetry != nil {
				cfg.Telemetry.DistUnitsPoisoned.Add(1)
			}
		default:
			rec.state = uPending
		}
	}
	return nil
}
