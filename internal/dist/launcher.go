package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/obsfile"
	"lineup/internal/sched"
)

// UnitSpec identifies one leased run of a work unit.
type UnitSpec struct {
	// Seq is the unit's sequence number; Attempt the 1-based lease count for
	// it. Together they let the coordinator discard deliveries from
	// superseded leases.
	Seq     int            `json:"seq"`
	Attempt int            `json:"attempt"`
	Unit    sched.WorkUnit `json:"unit"`
	// HeartbeatEvery is how often the worker should call the heartbeat
	// callback (the coordinator sets it to a quarter of the lease length, so
	// a healthy worker renews several times per lease).
	HeartbeatEvery time.Duration `json:"heartbeat_every"`
}

// Launcher runs one leased work unit to completion. Run must return promptly
// after ctx is cancelled (the lease was revoked); whatever it returns then is
// discarded by the coordinator. heartbeat may be called from any goroutine
// and never blocks.
type Launcher interface {
	Run(ctx context.Context, spec UnitSpec, heartbeat func()) (*core.UnitReport, error)
}

// InProcLauncher runs units on goroutines in the coordinator's process —
// the zero-setup launcher for tests and single-machine runs that don't need
// process isolation. Heartbeats piggyback on the per-execution tick,
// rate-limited to spec.HeartbeatEvery, and a revoked lease is noticed at the
// next execution boundary. An operation that hangs *inside* an execution can
// only be reclaimed by Options.Watchdog (process-level SIGKILL needs
// ExecLauncher); see DESIGN.md §6.
type InProcLauncher struct {
	Subject *core.Subject
	Test    *core.Test
	Options core.Options
}

func (l *InProcLauncher) Run(ctx context.Context, spec UnitSpec, heartbeat func()) (*core.UnitReport, error) {
	heartbeat()
	last := time.Now()
	tick := func() bool {
		if ctx.Err() != nil {
			return false
		}
		if time.Since(last) >= spec.HeartbeatEvery {
			heartbeat()
			last = time.Now()
		}
		return true
	}
	return core.CheckUnit(l.Subject, l.Test, l.Options, spec.Unit, tick)
}

// ExecLauncher runs each unit in a separate worker process ("<bin> dist
// -worker <jobfile>") over local exec: the real robustness configuration,
// where a worker can be kill -9'd, can panic, or can hang without taking the
// coordinator down. The wire protocol is deliberately dumb: the job travels
// as a JSON file, heartbeats are "hb" lines on the worker's stdout, and the
// report comes back through an atomically-written file.
type ExecLauncher struct {
	// Bin is the lineup binary to exec.
	Bin string
	// Dir holds job and report files (required).
	Dir string
	// Subject names the class the worker should resolve; code never travels,
	// only the name (plus, optionally, the Spec below).
	Subject string
	// Test is the test matrix as rows of invocation display names.
	Test [][]string
	// Options is the serializable option subset workers need.
	Options WorkerOptions
	// KillUnit, when >= 0, SIGKILLs the worker for that unit's first attempt
	// right after its first heartbeat — the built-in worker-kill fault
	// injection the dist smoke test and EXPERIMENTS rows use. The retry
	// machinery must recover and the merged result must not change.
	KillUnit int
	// Env appends extra environment variables to workers.
	Env []string
	// Spec, when non-nil, is the coordinator's synthesized phase-1
	// specification, shipped inside every job file so workers skip the
	// per-unit re-synthesis (the dominant cost of small units). Phase 1 is
	// deterministic, so shipping it cannot change any report.
	Spec *history.Spec
}

func (l *ExecLauncher) Run(ctx context.Context, spec UnitSpec, heartbeat func()) (*core.UnitReport, error) {
	jobPath := fmt.Sprintf("%s/job-%06d-%d.json", l.Dir, spec.Seq, spec.Attempt)
	repPath := jobPath + ".report"
	job := WorkerJob{
		Subject:    l.Subject,
		Test:       l.Test,
		Options:    l.Options,
		Spec:       spec,
		ReportPath: repPath,
	}
	if l.Spec != nil {
		job.SpecHistories = l.Spec.Export()
	}
	data, err := json.MarshalIndent(job, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(jobPath, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("dist: writing job file: %w", err)
	}
	cmd := exec.CommandContext(ctx, l.Bin, "dist", "-worker", jobPath)
	cmd.Env = append(os.Environ(), l.Env...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Cancel = func() error { return cmd.Process.Kill() } // lease revoked: kill -9
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker: %w", err)
	}
	kill := l.KillUnit == spec.Seq && spec.Attempt == 1
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		switch sc.Text() {
		case "hb":
			heartbeat()
			if kill {
				kill = false
				cmd.Process.Kill()
			}
		case "done":
		}
	}
	werr := cmd.Wait()
	if werr != nil {
		return nil, fmt.Errorf("dist: worker for unit %d (attempt %d): %w; stderr: %s",
			spec.Seq, spec.Attempt, werr, strings.TrimSpace(stderr.String()))
	}
	rep, err := loadReport(repPath)
	if err != nil {
		return nil, fmt.Errorf("dist: worker for unit %d exited cleanly but its report is unreadable: %w", spec.Seq, err)
	}
	return rep, nil
}

// WorkerOptions is the serializable subset of core.Options a worker needs to
// reproduce the coordinator's configuration exactly. (Unserializable knobs —
// telemetry, coverage, progress — stay coordinator-side.)
type WorkerOptions struct {
	PreemptionBound       int           `json:"preemption_bound,omitempty"`
	MaxExecutionsPerPhase int           `json:"max_executions_per_phase,omitempty"`
	MaxFailures           int           `json:"max_failures,omitempty"`
	Reduction             string        `json:"reduction,omitempty"`
	Consistency           string        `json:"consistency,omitempty"`
	RelaxedOps            []string      `json:"relaxed_ops,omitempty"`
	Watchdog              time.Duration `json:"watchdog,omitempty"`
}

// ToOptions expands the wire form back into core.Options.
func (w WorkerOptions) ToOptions() (core.Options, error) {
	opts := core.Options{
		PreemptionBound:       w.PreemptionBound,
		MaxExecutionsPerPhase: w.MaxExecutionsPerPhase,
		MaxFailures:           w.MaxFailures,
		RelaxedOps:            w.RelaxedOps,
		Watchdog:              w.Watchdog,
	}
	if w.Reduction != "" {
		red, err := sched.ParseReduction(w.Reduction)
		if err != nil {
			return opts, err
		}
		opts.Reduction = red
	}
	if w.Consistency != "" {
		cons, err := core.ParseConsistency(w.Consistency)
		if err != nil {
			return opts, err
		}
		opts.Consistency = cons
	}
	return opts, nil
}

// OptionsToWorker extracts the serializable subset of opts for the wire.
func OptionsToWorker(opts core.Options) WorkerOptions {
	w := WorkerOptions{
		PreemptionBound:       opts.PreemptionBound,
		MaxExecutionsPerPhase: opts.MaxExecutionsPerPhase,
		MaxFailures:           opts.MaxFailures,
		RelaxedOps:            opts.RelaxedOps,
		Watchdog:              opts.Watchdog,
	}
	if opts.Reduction != sched.ReductionNone {
		w.Reduction = opts.Reduction.String()
	}
	if opts.Consistency != core.Linearizability {
		w.Consistency = opts.Consistency.String()
	}
	return w
}

func loadReport(path string) (*core.UnitReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep core.UnitReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("dist: parsing report %s: %w", path, err)
	}
	return &rep, nil
}

func saveReport(path string, rep *core.UnitReport) error {
	return atomicWriteJSON(path, rep)
}

// atomicWriteJSON journals v through obsfile's temp+fsync+rename path, so a
// crash at any instant leaves either the previous file or the new one.
func atomicWriteJSON(path string, v any) error {
	return obsfile.AtomicWriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}
