package subjects

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// pipelineDelta is the transformation the pipeline stage applies; any
// injective function works, an offset keeps results readable.
const pipelineDelta = 100

// Pipeline is a channel-based pipeline stage: producers Send values into a
// bounded input channel, a worker Process moves one value through the stage
// (receive, transform, emit into the bounded output channel), and consumers
// TryRecv transformed values from the output. Send blocks when the input
// buffer is full and Process blocks when it is empty — the subject exists to
// exercise stuck histories and the blocking (WitnessStuck) side of the
// checker, which the pointer-based subjects never reach.
type Pipeline struct {
	in  *vsync.Chan[int]
	out *vsync.Chan[int]
}

// NewPipeline constructs a stage with a single-slot input buffer (capacity 1
// maximizes blocking behavior at minimal state-space cost) and an output
// buffer deep enough (8) that Process never blocks on the output side in
// test-sized workloads, matching the sequential model's unbounded output.
func NewPipeline(t *sched.Thread) *Pipeline {
	return &Pipeline{
		in:  vsync.NewChan[int](t, "Pipeline.in", 1),
		out: vsync.NewChan[int](t, "Pipeline.out", 8),
	}
}

// Send feeds v into the stage, blocking while the input buffer is full.
func (p *Pipeline) Send(t *sched.Thread, v int) {
	p.in.Send(t, v)
}

// TrySend feeds v into the stage if the input buffer has room.
func (p *Pipeline) TrySend(t *sched.Thread, v int) bool {
	return p.in.TrySend(t, v)
}

// Process moves one value through the stage and returns the transformed
// value; it blocks while the input is empty and while the output is full.
func (p *Pipeline) Process(t *sched.Thread) int {
	v := p.in.Recv(t)
	w := v + pipelineDelta
	p.out.Send(t, w)
	return w
}

// TryRecv takes one transformed value from the output, if any.
func (p *Pipeline) TryRecv(t *sched.Thread) (v int, ok bool) {
	return p.out.TryRecv(t)
}

// PipelinePre seeds a check-then-act defect: TrySend tests for room with an
// unlocked length read and then calls the blocking Send. Two concurrent
// TrySends can both observe a free slot; the loser blocks inside Send even
// though TrySend must never block. Serially TrySend never blocks, so the
// phase-1 spec has no stuck witness for a pending TrySend and phase 2
// reports the stuck history (StuckNoWitness) — a liveness conviction rather
// than a wrong return value.
type PipelinePre struct {
	Pipeline
}

// NewPipelinePre constructs the defect-seeded variant.
func NewPipelinePre(t *sched.Thread) *PipelinePre {
	return &PipelinePre{Pipeline{
		in:  vsync.NewChan[int](t, "Pipeline.in", 1),
		out: vsync.NewChan[int](t, "Pipeline.out", 8),
	}}
}

// TrySend feeds v if the input looks non-full — with the seeded bug: the
// check and the send are not atomic, so the send can block.
func (p *PipelinePre) TrySend(t *sched.Thread, v int) bool {
	if p.in.Len(t) >= p.in.Cap() {
		return false
	}
	p.in.Send(t, v) // BUG: buffer may have filled since the check; Send blocks
	return true
}

// PipelineRelaxed extends Pipeline with a Len that sums the two buffer
// lengths under separate locks. A value in flight inside Process (received
// from the input but not yet emitted to the output) is invisible to both
// counts, so no ordering relaxation explains the totals — the operation is
// genuinely nondeterministic with respect to the sequential spec and is
// checked with a result wildcard (Options.RelaxedOps) instead of a
// consistency relaxation.
type PipelineRelaxed struct {
	Pipeline
}

// NewPipelineRelaxed constructs the relaxed variant.
func NewPipelineRelaxed(t *sched.Thread) *PipelineRelaxed {
	return &PipelineRelaxed{Pipeline{
		in:  vsync.NewChan[int](t, "Pipeline.in", 1),
		out: vsync.NewChan[int](t, "Pipeline.out", 8),
	}}
}

// Len reports the number of buffered values (in-flight values are missed).
func (p *PipelineRelaxed) Len(t *sched.Thread) int {
	return p.in.Len(t) + p.out.Len(t)
}
