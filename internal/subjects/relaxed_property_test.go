package subjects_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/sched"
	"lineup/internal/subjects"
)

// TestRelaxationHierarchy is the property suite of the relaxed criteria: on
// every complete history the explorer emits for the corpus (correct and
// relaxed variants, directed relaxed tests), the witness searches must obey
//
//	linearizable ⇒ quiescently consistent ⇒ sequentially consistent
//
// and never the converse direction by construction: a linearizability
// witness satisfies the quiescent block order (blocks are separated by real
// time), and any quiescent witness satisfies the empty ordering constraints
// of sequential consistency. The relaxed variants additionally must exhibit
// at least one strictly-non-linearizable history — the separation that makes
// them relaxed at all.
func TestRelaxationHierarchy(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		cases := []struct {
			sub *core.Subject
			m   *core.Test
		}{{e.Subject, e.StrictTest}, {e.Relaxed, e.RelaxedTest}}
		for _, tc := range cases {
			sub, m := tc.sub, tc.m
			t.Run(sub.Name, func(t *testing.T) {
				opts := core.Options{PreemptionBound: e.Bound}
				spec, _, err := core.SynthesizeSpec(sub, m, opts)
				if err != nil {
					t.Fatal(err)
				}
				full, strictFails, violations := 0, 0, 0
				err = core.ExploreHistories(sub, m, opts, func(h *history.History) bool {
					if h.Stuck || violations > 3 {
						return violations <= 3
					}
					full++
					_, strictOK := spec.WitnessFull(h)
					_, scOK := spec.WitnessSeqCon(h)
					_, qcOK := spec.WitnessQuiescent(h)
					if !strictOK {
						strictFails++
					}
					if strictOK && !qcOK {
						violations++
						t.Errorf("linearizable history rejected by quiescent consistency:\n%s", h)
					}
					if qcOK && !scOK {
						violations++
						t.Errorf("quiescently consistent history rejected by sequential consistency:\n%s", h)
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if full == 0 {
					t.Fatal("explorer emitted no complete histories")
				}
				if sub == e.Relaxed && strictFails == 0 {
					t.Errorf("%s exhibited no strictly-non-linearizable history on its directed test", sub.Name)
				}
				t.Logf("%s: hierarchy held on %d histories (%d strictly non-linearizable)", sub.Name, full, strictFails)
			})
		}
	}
}

// TestRelaxedNeverConvicts what the strict check admits: for every corpus
// entry, running the full Check under the entry's declared relaxation on the
// *correct* subject and its strict directed test still passes — relaxing the
// criterion can only admit more behavior, never reject a linearizable
// implementation.
func TestRelaxedNeverConvicts(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			for _, cons := range []core.Consistency{core.SequentialConsistency, core.QuiescentConsistency} {
				opts := core.Options{PreemptionBound: e.Bound, Consistency: cons}
				res, err := core.Check(e.Subject, e.StrictTest, opts)
				if err != nil {
					t.Fatalf("%s: %v", cons, err)
				}
				if res.Verdict != core.Pass {
					t.Fatalf("correct %s convicted under relaxed criterion %s:\n%s", e.Name, cons, res.Violation)
				}
			}
		})
	}
}
