package subjects

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// ElimStack is a Treiber stack with a single-slot elimination backoff. A
// pusher whose CAS on the top pointer fails publishes its item in the
// exchange slot, yields once, and then tries to withdraw it; if the
// withdrawal CAS fails, a concurrent popper claimed the item and both
// operations complete without ever touching the stack. The exchange
// linearizes the push immediately before the pop at the popper's claiming
// CAS, which is exactly the pairing a sequential witness needs.
type ElimStack struct {
	top  *vsync.Atomic[*stackNode]
	slot *vsync.Atomic[*elimItem]
}

type stackNode struct {
	value int
	next  *stackNode
}

type elimItem struct {
	value int
}

// NewElimStack constructs an empty stack.
func NewElimStack(t *sched.Thread) *ElimStack {
	return &ElimStack{
		top:  vsync.NewAtomic[*stackNode](t, "ElimStack.top", nil),
		slot: vsync.NewAtomic[*elimItem](t, "ElimStack.slot", nil),
	}
}

// Push adds v to the top of the stack, eliminating against a concurrent
// pop when the top CAS is contended.
func (s *ElimStack) Push(t *sched.Thread, v int) {
	for {
		top := s.top.Load(t)
		if s.top.CompareAndSwap(t, top, &stackNode{value: v, next: top}) {
			return
		}
		// Contention: offer the item for elimination.
		it := &elimItem{value: v}
		if s.slot.CompareAndSwap(t, nil, it) {
			t.Yield()
			if !s.slot.CompareAndSwap(t, it, nil) {
				// A popper claimed the item; the exchange happened.
				return
			}
		}
	}
}

// TryPop removes and returns the top element, eliminating against a
// concurrent push when the top CAS is contended.
func (s *ElimStack) TryPop(t *sched.Thread) (v int, ok bool) {
	for {
		top := s.top.Load(t)
		if top == nil {
			return 0, false
		}
		if s.top.CompareAndSwap(t, top, top.next) {
			return top.value, true
		}
		// Contention: try to claim an eliminated push.
		if it := s.slot.Load(t); it != nil {
			if s.slot.CompareAndSwap(t, it, nil) {
				return it.value, true
			}
		}
	}
}

// TryPeek returns the top element without removing it.
func (s *ElimStack) TryPeek(t *sched.Thread) (v int, ok bool) {
	top := s.top.Load(t)
	if top == nil {
		return 0, false
	}
	return top.value, true
}

// Count returns the number of elements (single load of an immutable chain,
// so it is linearizable at the top load).
func (s *ElimStack) Count(t *sched.Thread) int {
	n := 0
	for node := s.top.Load(t); node != nil; node = node.next {
		n++
	}
	return n
}

// IsEmpty reports whether the stack is empty.
func (s *ElimStack) IsEmpty(t *sched.Thread) bool {
	return s.top.Load(t) == nil
}

// ElimStackPre seeds an elimination-protocol defect: the pusher withdraws
// its offer with a plain store instead of a CAS. If a popper claims the item
// between the pusher's yield and its withdrawal, the store still clears the
// slot — but the pusher then retries the push, so the eliminated value is
// delivered twice: once to the popper and once onto the stack. A later pop
// observes a value that was already popped. Serial executions never contend,
// so the elimination path is cold in phase 1 and the synthesized LIFO spec
// is correct; phase 2 convicts the duplicated value.
type ElimStackPre struct {
	ElimStack
}

// NewElimStackPre constructs the defect-seeded variant.
func NewElimStackPre(t *sched.Thread) *ElimStackPre {
	return &ElimStackPre{ElimStack{
		top:  vsync.NewAtomic[*stackNode](t, "ElimStack.top", nil),
		slot: vsync.NewAtomic[*elimItem](t, "ElimStack.slot", nil),
	}}
}

// Push adds v — with the seeded bug: the elimination offer is withdrawn
// unconditionally, so a concurrent claim goes unnoticed and v is pushed
// again.
func (s *ElimStackPre) Push(t *sched.Thread, v int) {
	for {
		top := s.top.Load(t)
		if s.top.CompareAndSwap(t, top, &stackNode{value: v, next: top}) {
			return
		}
		it := &elimItem{value: v}
		if s.slot.CompareAndSwap(t, nil, it) {
			t.Yield()
			s.slot.Store(t, nil) // BUG: must CAS(it, nil); a claimed item is pushed again
		}
	}
}

// ElimStackRelaxed extends ElimStack with a top-value cache maintained
// outside the CAS that commits each operation. A pop pre-computes the new
// top value before its CAS and writes the cache after; between those two
// instants other operations can complete, so the cached value a
// TryPeekCached returns may be stale with respect to real time. The cache
// is sequentially consistent: the stale read is explained by reordering the
// reader's operation before the writes it missed, preserving each thread's
// program order. It is not quiescently consistent — a quiescent instant
// between the interfering operations pins the block order that the stale
// value contradicts — which separates the two relaxations on this subject.
type ElimStackRelaxed struct {
	ElimStack
	cachedTop *vsync.Cell[int] // last known top value, -1 = empty
}

// NewElimStackRelaxed constructs the relaxed variant.
func NewElimStackRelaxed(t *sched.Thread) *ElimStackRelaxed {
	return &ElimStackRelaxed{
		ElimStack: ElimStack{
			top:  vsync.NewAtomic[*stackNode](t, "ElimStack.top", nil),
			slot: vsync.NewAtomic[*elimItem](t, "ElimStack.slot", nil),
		},
		cachedTop: vsync.NewCell(t, "ElimStack.cachedTop", -1),
	}
}

// Push adds v and refreshes the cache after the commit.
func (s *ElimStackRelaxed) Push(t *sched.Thread, v int) {
	for {
		top := s.top.Load(t)
		if s.top.CompareAndSwap(t, top, &stackNode{value: v, next: top}) {
			s.cachedTop.Store(t, v)
			return
		}
		it := &elimItem{value: v}
		if s.slot.CompareAndSwap(t, nil, it) {
			t.Yield()
			if !s.slot.CompareAndSwap(t, it, nil) {
				return
			}
		}
	}
}

// TryPop removes the top element; the replacement cache value is computed
// before the committing CAS and stored after it, which is the stale window.
func (s *ElimStackRelaxed) TryPop(t *sched.Thread) (v int, ok bool) {
	for {
		top := s.top.Load(t)
		if top == nil {
			return 0, false
		}
		newTop := -1
		if top.next != nil {
			newTop = top.next.value
		}
		if s.top.CompareAndSwap(t, top, top.next) {
			s.cachedTop.Store(t, newTop) // may be stale by now
			return top.value, true
		}
		if it := s.slot.Load(t); it != nil {
			if s.slot.CompareAndSwap(t, it, nil) {
				return it.value, true
			}
		}
	}
}

// TryPeekCached returns the cached top value (-1 means empty was cached).
func (s *ElimStackRelaxed) TryPeekCached(t *sched.Thread) (v int, ok bool) {
	v = s.cachedTop.Load(t)
	if v < 0 {
		return 0, false
	}
	return v, true
}
