package subjects

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lineup/internal/monitor"
)

// MapModel is the executable sequential specification of the ShardedMap
// vocabulary: Put(k,v) returns "ok", Get(k) the stored value or "Fail",
// Delete(k) whether the key was present, Len() the entry count. Single-key
// operations declare a per-key partition (P-compositionality); Len observes
// the whole map and disables splitting. The state is a sorted "k=v" slice so
// fingerprints are canonical.
func MapModel() *monitor.Model {
	m := &monitor.Model{Name: "map", Init: func() any { return []string(nil) }}
	m.Fingerprint = func(state any) string { return strings.Join(state.([]string), ",") }
	m.Partition = func(op string) (string, bool) {
		method, args := monitor.SplitOp(op)
		switch method {
		case "Put":
			if i := strings.IndexByte(args, ','); i >= 0 {
				return args[:i], true
			}
			return args, true
		case "Get", "Delete":
			return args, true
		}
		return "", false
	}
	m.Step = func(state any, op string) (string, any, error) {
		entries := state.([]string)
		method, args := monitor.SplitOp(op)
		find := func(k string) int {
			for i, e := range entries {
				if strings.HasPrefix(e, k+"=") {
					return i
				}
			}
			return -1
		}
		switch method {
		case "Put":
			k, v, ok := strings.Cut(args, ",")
			if !ok {
				return "", nil, fmt.Errorf("monitor: map model needs Put(k,v), got %q", op)
			}
			e := k + "=" + v
			next := append([]string(nil), entries...)
			if i := find(k); i >= 0 {
				next[i] = e
			} else {
				next = append(next, e)
				sort.Strings(next)
			}
			return "ok", next, nil
		case "Get":
			if i := find(args); i >= 0 {
				return entries[i][strings.IndexByte(entries[i], '=')+1:], entries, nil
			}
			return "Fail", entries, nil
		case "Delete":
			if i := find(args); i >= 0 {
				next := append(append([]string(nil), entries[:i]...), entries[i+1:]...)
				return "true", next, nil
			}
			return "false", entries, nil
		case "Len":
			return strconv.Itoa(len(entries)), entries, nil
		}
		return "", nil, fmt.Errorf("%w: map model cannot apply %q", monitor.ErrUnknownOp, op)
	}
	return m
}

// pipeState is the sequential state of the pipeline model: the bounded input
// buffer and the (effectively unbounded for test-sized workloads) output
// buffer.
type pipeState struct {
	in  []int
	out []int
}

// PipelineModel is the executable sequential specification of the Pipeline
// vocabulary: Send(v) blocks while the single-slot input is full, TrySend(v)
// reports whether it enqueued, Process() blocks on an empty input and moves
// one transformed value to the output, TryRecv() takes a transformed value
// or fails. The model is monolithic (every operation touches the shared
// stage), so it declares no partition.
func PipelineModel() *monitor.Model {
	const inCap = 1
	m := &monitor.Model{Name: "pipeline", Init: func() any { return pipeState{} }}
	m.Fingerprint = func(state any) string {
		s := state.(pipeState)
		return fmt.Sprintf("%v|%v", s.in, s.out)
	}
	m.Step = func(state any, op string) (string, any, error) {
		s := state.(pipeState)
		method, args := monitor.SplitOp(op)
		switch method {
		case "Send":
			if len(s.in) >= inCap {
				return "", nil, monitor.ErrBlock
			}
			v, err := strconv.Atoi(args)
			if err != nil {
				return "", nil, fmt.Errorf("monitor: pipeline model needs Send(int), got %q", op)
			}
			return "ok", pipeState{in: append(s.in[:len(s.in):len(s.in)], v), out: s.out}, nil
		case "TrySend":
			if len(s.in) >= inCap {
				return "false", s, nil
			}
			v, err := strconv.Atoi(args)
			if err != nil {
				return "", nil, fmt.Errorf("monitor: pipeline model needs TrySend(int), got %q", op)
			}
			return "true", pipeState{in: append(s.in[:len(s.in):len(s.in)], v), out: s.out}, nil
		case "Process":
			if len(s.in) == 0 {
				return "", nil, monitor.ErrBlock
			}
			w := s.in[0] + pipelineDelta
			return strconv.Itoa(w), pipeState{
				in:  append([]int(nil), s.in[1:]...),
				out: append(s.out[:len(s.out):len(s.out)], w),
			}, nil
		case "TryRecv":
			if len(s.out) == 0 {
				return "Fail", s, nil
			}
			return strconv.Itoa(s.out[0]), pipeState{in: s.in, out: append([]int(nil), s.out[1:]...)}, nil
		}
		return "", nil, fmt.Errorf("%w: pipeline model cannot apply %q", monitor.ErrUnknownOp, op)
	}
	return m
}
