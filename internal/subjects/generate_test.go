package subjects_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/subjects"
)

// TestGenerateFindsSeededBugs: coverage-guided generation rediscovers every
// seeded bug in the corpus from the op universes alone — no directed tests,
// just the subject, a seed, and a budget.
func TestGenerateFindsSeededBugs(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := core.Generate(e.Pre, core.GenOptions{
				Options: core.Options{PreemptionBound: e.Bound},
				Seed:    1,
				Budget:  600,
			})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if res.Failed == nil {
				t.Fatalf("generation missed the %s(Pre) bug in %d tests (%d pairs, %d hists)",
					e.Name, res.Tests, res.CoveragePairs, res.CoverageHists)
			}
			t.Logf("%s(Pre): violation after %d tests (corpus %d, %d pairs, %d hists)",
				e.Name, res.TestsToFailure, res.CorpusSize, res.CoveragePairs, res.CoverageHists)
		})
	}
}
