package subjects_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/sched"
	"lineup/internal/subjects"
)

// modelWithInit folds a test's unobserved Init invocations into the model's
// initial state, so the monitor judges histories from the same starting
// point the subject was prepared in.
func modelWithInit(t *testing.T, m *monitor.Model, init []core.Op) *monitor.Model {
	if len(init) == 0 {
		return m
	}
	c := *m
	c.Init = func() any {
		st := m.Init()
		for _, op := range init {
			_, next, err := m.Step(st, op.Name())
			if err != nil {
				t.Fatalf("model %s cannot replay init op %s: %v", m.Name, op.Name(), err)
			}
			st = next
		}
		return st
	}
	return &c
}

// TestCrossCheckVerdicts re-judges every history the explorer emits for the
// corpus subjects through three independent deciders — the phase-1
// spec-lookup path, the WGL monitor search, and the naive permutation
// enumerator — and requires unanimity. Both the correct and the
// defect-seeded variant of every family are swept, so the agreement covers
// linearizable and non-linearizable histories alike.
func TestCrossCheckVerdicts(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		for _, sub := range []*core.Subject{e.Subject, e.Pre} {
			sub := sub
			t.Run(sub.Name, func(t *testing.T) {
				opts := core.Options{PreemptionBound: e.Bound}
				model := modelWithInit(t, e.Model, e.StrictTest.Init)
				spec, _, err := core.SynthesizeSpec(sub, e.StrictTest, opts)
				if err != nil {
					t.Fatal(err)
				}
				full, stuck, disagreements := 0, 0, 0
				err = core.ExploreHistories(sub, e.StrictTest, opts, func(h *history.History) bool {
					if disagreements > 3 {
						return false
					}
					if !h.Stuck {
						full++
						_, specOK := spec.WitnessFull(h)
						out, merr := monitor.Check(model, h, monitor.Options{})
						if merr != nil {
							t.Fatalf("monitor: %v\nhistory:\n%s", merr, h)
						}
						naiveOK, nerr := monitor.NaiveCheck(model, h, monitor.Options{})
						if nerr != nil {
							t.Fatalf("naive: %v\nhistory:\n%s", nerr, h)
						}
						if specOK != out.Linearizable || specOK != naiveOK {
							disagreements++
							t.Errorf("deciders disagree on complete history (spec=%v monitor=%v naive=%v):\n%s",
								specOK, out.Linearizable, naiveOK, h)
						}
						return true
					}
					stuck++
					specOK := true
					for _, p := range h.Pending() {
						if _, ok := spec.WitnessStuck(h, p); !ok {
							specOK = false
							break
						}
					}
					out, merr := monitor.Check(model, h, monitor.Options{Mode: monitor.ModeGeneralized})
					if merr != nil {
						t.Fatalf("monitor: %v\nhistory:\n%s", merr, h)
					}
					naiveOK, nerr := monitor.NaiveCheck(model, h, monitor.Options{Mode: monitor.ModeGeneralized})
					if nerr != nil {
						t.Fatalf("naive: %v\nhistory:\n%s", nerr, h)
					}
					if specOK != out.Linearizable || specOK != naiveOK {
						disagreements++
						t.Errorf("deciders disagree on stuck history (spec=%v monitor=%v naive=%v):\n%s",
							specOK, out.Linearizable, naiveOK, h)
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if full == 0 {
					t.Fatal("explorer emitted no complete histories")
				}
				t.Logf("%s: unanimous on %d complete + %d stuck histories", sub.Name, full, stuck)
			})
		}
	}
}
