// Package subjects is the Go-native subject corpus: idiomatic concurrent
// objects — a Michael–Scott queue, a Treiber stack with elimination backoff,
// a sharded map, and a channel-based pipeline stage — each in three flavors:
// a correct implementation, a defect-seeded sibling (the "Pre" variant, in
// the spirit of the paper's pre-release .NET bugs), and a deliberately
// relaxed variant that is correct only under a weaker criterion (quiescent
// or sequential consistency, or a declared-nondeterministic operation).
//
// The corpus serves three masters: it is the checker's dogfood (every
// variant comes with a directed test whose verdict is known), the coverage-
// guided generator's hunting ground (Generate must rediscover every seeded
// bug from the op universes alone), and the cross-check harness's subject
// pool (explorer histories are re-judged by the WGL monitor and the naive
// enumerator and must agree with the spec-lookup verdicts).
package subjects

import (
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/monitor"
	"lineup/internal/sched"
)

// Entry bundles one subject family: the correct implementation, its
// defect-seeded and relaxed siblings, the checking configuration they need,
// and directed tests with known verdicts.
type Entry struct {
	// Name is the family name, e.g. "MSQueue".
	Name string
	// Subject is the correct implementation.
	Subject *core.Subject
	// Pre is the defect-seeded sibling; the checker must convict it.
	Pre *core.Subject
	// Relaxed is the deliberately weakened sibling: it fails strict
	// linearizability but satisfies RelaxedConsistency (with RelaxedOps
	// wildcarded first, if any).
	Relaxed *core.Subject
	// RelaxedConsistency is the criterion under which Relaxed is correct.
	RelaxedConsistency core.Consistency
	// RelaxedOps lists operations of Relaxed whose results are declared
	// nondeterministic (wildcarded) rather than reordered.
	RelaxedOps []string
	// Bound is the preemption bound the directed tests need (0 selects the
	// checker default).
	Bound int
	// Model is the executable sequential model of the strict vocabulary,
	// for monitor-based cross-checking.
	Model *monitor.Model
	// StrictTest passes on Subject and fails on Pre.
	StrictTest *core.Test
	// RelaxedTest fails strictly on Relaxed but passes under
	// RelaxedConsistency/RelaxedOps.
	RelaxedTest *core.Test
}

// Registry returns the subject corpus in display order.
func Registry() []*Entry {
	return []*Entry{
		msQueueEntry(),
		elimStackEntry(),
		shardedMapEntry(),
		pipelineEntry(),
	}
}

// Find returns the corpus entry with the given family name.
func Find(name string) (*Entry, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// --- MSQueue ---

type queueAPI interface {
	Enqueue(t *sched.Thread, v int)
	TryDequeue(t *sched.Thread) (int, bool)
	TryPeek(t *sched.Thread) (int, bool)
	IsEmpty(t *sched.Thread) bool
}

type countAPI interface {
	Count(t *sched.Thread) int
}

func qEnqueue(v int) core.Op {
	return core.Op{Method: "Enqueue", Args: collections.Int(v), Run: func(t *sched.Thread, obj any) string {
		obj.(queueAPI).Enqueue(t, v)
		return collections.OK
	}}
}

func qTryDequeue() core.Op {
	return core.Op{Method: "TryDequeue", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(queueAPI).TryDequeue(t))
	}}
}

func qTryPeek() core.Op {
	return core.Op{Method: "TryPeek", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(queueAPI).TryPeek(t))
	}}
}

func qIsEmpty() core.Op {
	return core.Op{Method: "IsEmpty", Run: func(t *sched.Thread, obj any) string {
		return collections.Bool(obj.(queueAPI).IsEmpty(t))
	}}
}

func opCount() core.Op {
	return core.Op{Method: "Count", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(countAPI).Count(t))
	}}
}

func queueOps() []core.Op {
	return []core.Op{qEnqueue(1), qEnqueue(2), qEnqueue(3), qTryDequeue(), qTryPeek(), qIsEmpty()}
}

func msQueueEntry() *Entry {
	files := []string{"internal/subjects/msqueue.go"}
	return &Entry{
		Name: "MSQueue",
		Subject: &core.Subject{
			Name:        "MSQueue",
			New:         func(t *sched.Thread) any { return NewMSQueue(t) },
			Ops:         queueOps(),
			SourceFiles: files,
		},
		Pre: &core.Subject{
			Name:        "MSQueue(Pre)",
			New:         func(t *sched.Thread) any { return NewMSQueuePre(t) },
			Ops:         queueOps(),
			SourceFiles: files,
		},
		Relaxed: &core.Subject{
			Name:        "MSQueue(Relaxed)",
			New:         func(t *sched.Thread) any { return NewMSQueueRelaxed(t) },
			Ops:         append(queueOps(), opCount()),
			SourceFiles: files,
		},
		Bound:              2,
		RelaxedConsistency: core.QuiescentConsistency,
		Model:              monitor.QueueModel(),
		// Two concurrent dequeuers of a two-element queue: the Pre variant's
		// store-published head lets both return the front element.
		StrictTest: &core.Test{
			Init: []core.Op{qEnqueue(1), qEnqueue(2)},
			Rows: [][]core.Op{{qTryDequeue()}, {qTryDequeue()}},
		},
		// A traversal Count overlapping a dequeue that completes before an
		// enqueue starts can report both elements — a total the queue held at
		// no instant, explainable only by reordering within the quiescent
		// block the pending Count spans.
		RelaxedTest: &core.Test{
			Init: []core.Op{qEnqueue(1)},
			Rows: [][]core.Op{{opCount()}, {qTryDequeue()}, {qEnqueue(2)}},
		},
	}
}

// --- ElimStack ---

type stackAPI interface {
	Push(t *sched.Thread, v int)
	TryPop(t *sched.Thread) (int, bool)
	TryPeek(t *sched.Thread) (int, bool)
	Count(t *sched.Thread) int
	IsEmpty(t *sched.Thread) bool
}

type peekCachedAPI interface {
	TryPeekCached(t *sched.Thread) (int, bool)
}

func sPush(v int) core.Op {
	return core.Op{Method: "Push", Args: collections.Int(v), Run: func(t *sched.Thread, obj any) string {
		obj.(stackAPI).Push(t, v)
		return collections.OK
	}}
}

func sTryPop() core.Op {
	return core.Op{Method: "TryPop", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(stackAPI).TryPop(t))
	}}
}

func sTryPeek() core.Op {
	return core.Op{Method: "TryPeek", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(stackAPI).TryPeek(t))
	}}
}

func sIsEmpty() core.Op {
	return core.Op{Method: "IsEmpty", Run: func(t *sched.Thread, obj any) string {
		return collections.Bool(obj.(stackAPI).IsEmpty(t))
	}}
}

func sTryPeekCached() core.Op {
	return core.Op{Method: "TryPeekCached", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(peekCachedAPI).TryPeekCached(t))
	}}
}

func stackOps() []core.Op {
	return []core.Op{sPush(1), sPush(2), sPush(3), sTryPop(), sTryPeek(), opCount(), sIsEmpty()}
}

func elimStackEntry() *Entry {
	files := []string{"internal/subjects/elimstack.go"}
	return &Entry{
		Name: "ElimStack",
		Subject: &core.Subject{
			Name:        "ElimStack",
			New:         func(t *sched.Thread) any { return NewElimStack(t) },
			Ops:         stackOps(),
			SourceFiles: files,
		},
		Pre: &core.Subject{
			Name:        "ElimStack(Pre)",
			New:         func(t *sched.Thread) any { return NewElimStackPre(t) },
			Ops:         stackOps(),
			SourceFiles: files,
		},
		Relaxed: &core.Subject{
			Name:        "ElimStack(Relaxed)",
			New:         func(t *sched.Thread) any { return NewElimStackRelaxed(t) },
			Ops:         append(stackOps(), sTryPeekCached()),
			SourceFiles: files,
		},
		RelaxedConsistency: core.SequentialConsistency,
		// The conviction interleaving parks the pusher in the elimination
		// slot between two poppers' loads and commits, which costs one more
		// preemption than the default bound allows.
		Bound: 3,
		Model: monitor.StackModel(),
		// A pusher parked in the elimination slot between two poppers: the
		// first pop's commit fails the push's CAS, the second pop claims the
		// offer — and the Pre variant's unconditional withdrawal then pushes
		// the already-delivered value again, so the final pop re-pops it.
		StrictTest: &core.Test{
			Init:  []core.Op{sPush(0), sPush(5)},
			Rows:  [][]core.Op{{sPush(1)}, {sTryPop()}, {sTryPop()}},
			Final: []core.Op{sTryPop()},
		},
		// The pop pre-computes its replacement cache value before the
		// committing CAS and stores it after; a push completing in that window
		// leaves the cache stale, so a later TryPeekCached misses a value the
		// push already made visible. Only reordering the reader before the
		// push — dropping real-time order while keeping program order —
		// explains the history.
		RelaxedTest: &core.Test{
			Init: []core.Op{sPush(1)},
			Rows: [][]core.Op{{sTryPop()}, {sPush(2)}, {sTryPeekCached()}},
		},
	}
}

// --- ShardedMap ---

type mapAPI interface {
	Put(t *sched.Thread, k, v int)
	Get(t *sched.Thread, k int) (int, bool)
	Delete(t *sched.Thread, k int) bool
	Len(t *sched.Thread) int
}

func mPut(k, v int) core.Op {
	return core.Op{Method: "Put", Args: collections.Int(k) + "," + collections.Int(v), Run: func(t *sched.Thread, obj any) string {
		obj.(mapAPI).Put(t, k, v)
		return collections.OK
	}}
}

func mGet(k int) core.Op {
	return core.Op{Method: "Get", Args: collections.Int(k), Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(mapAPI).Get(t, k))
	}}
}

func mDelete(k int) core.Op {
	return core.Op{Method: "Delete", Args: collections.Int(k), Run: func(t *sched.Thread, obj any) string {
		return collections.Bool(obj.(mapAPI).Delete(t, k))
	}}
}

func mLen() core.Op {
	return core.Op{Method: "Len", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(mapAPI).Len(t))
	}}
}

func mapOps() []core.Op {
	return []core.Op{mPut(0, 10), mPut(1, 20), mGet(0), mGet(1), mDelete(0), mDelete(1), mLen()}
}

func shardedMapEntry() *Entry {
	files := []string{"internal/subjects/shardedmap.go"}
	return &Entry{
		Name: "ShardedMap",
		Subject: &core.Subject{
			Name:        "ShardedMap",
			New:         func(t *sched.Thread) any { return NewShardedMap(t) },
			Ops:         mapOps(),
			SourceFiles: files,
		},
		Pre: &core.Subject{
			Name:        "ShardedMap(Pre)",
			New:         func(t *sched.Thread) any { return NewShardedMapPre(t) },
			Ops:         mapOps(),
			SourceFiles: files,
		},
		Relaxed: &core.Subject{
			Name:        "ShardedMap(Relaxed)",
			New:         func(t *sched.Thread) any { return NewShardedMapRelaxed(t) },
			Ops:         mapOps(),
			SourceFiles: files,
		},
		Bound:              2,
		RelaxedConsistency: core.QuiescentConsistency,
		Model:              MapModel(),
		// Two fresh Puts on different shards race the Pre variant's unlocked
		// size bump; the final Len observes the lost increment.
		StrictTest: &core.Test{
			Rows:  [][]core.Op{{mPut(0, 10)}, {mPut(1, 20)}},
			Final: []core.Op{mLen()},
		},
		// The shard-at-a-time scan counts shard 0 before a Put lands there and
		// shard 1 after a Delete empties it: Len reports 0 even though the Put
		// finished before the Delete began.
		RelaxedTest: &core.Test{
			Init: []core.Op{mPut(1, 10)},
			Rows: [][]core.Op{{mPut(0, 10)}, {mDelete(1)}, {mLen()}},
		},
	}
}

// --- Pipeline ---

type pipeAPI interface {
	Send(t *sched.Thread, v int)
	TrySend(t *sched.Thread, v int) bool
	Process(t *sched.Thread) int
	TryRecv(t *sched.Thread) (int, bool)
}

type pipeLenAPI interface {
	Len(t *sched.Thread) int
}

func pSend(v int) core.Op {
	return core.Op{Method: "Send", Args: collections.Int(v), Run: func(t *sched.Thread, obj any) string {
		obj.(pipeAPI).Send(t, v)
		return collections.OK
	}}
}

func pTrySend(v int) core.Op {
	return core.Op{Method: "TrySend", Args: collections.Int(v), Run: func(t *sched.Thread, obj any) string {
		return collections.Bool(obj.(pipeAPI).TrySend(t, v))
	}}
}

func pProcess() core.Op {
	return core.Op{Method: "Process", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(pipeAPI).Process(t))
	}}
}

func pTryRecv() core.Op {
	return core.Op{Method: "TryRecv", Run: func(t *sched.Thread, obj any) string {
		return collections.TryInt(obj.(pipeAPI).TryRecv(t))
	}}
}

func pLen() core.Op {
	return core.Op{Method: "Len", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(pipeLenAPI).Len(t))
	}}
}

func pipelineOps() []core.Op {
	return []core.Op{pSend(1), pTrySend(1), pTrySend(2), pProcess(), pTryRecv()}
}

func pipelineEntry() *Entry {
	files := []string{"internal/subjects/pipeline.go", "internal/vsync/chan.go"}
	return &Entry{
		Name: "Pipeline",
		Subject: &core.Subject{
			Name:        "Pipeline",
			New:         func(t *sched.Thread) any { return NewPipeline(t) },
			Ops:         pipelineOps(),
			SourceFiles: files,
		},
		Pre: &core.Subject{
			Name:        "Pipeline(Pre)",
			New:         func(t *sched.Thread) any { return NewPipelinePre(t) },
			Ops:         pipelineOps(),
			SourceFiles: files,
		},
		Relaxed: &core.Subject{
			Name:        "Pipeline(Relaxed)",
			New:         func(t *sched.Thread) any { return NewPipelineRelaxed(t) },
			Ops:         append(pipelineOps(), pLen()),
			SourceFiles: files,
		},
		Bound:              2,
		RelaxedConsistency: core.Linearizability,
		RelaxedOps:         []string{"Len()"},
		Model:              PipelineModel(),
		// Two concurrent TrySends into a single-slot input: the Pre variant's
		// check-then-act lets both pass the room check, and the loser blocks
		// inside an operation that must never block — a stuck history whose
		// pending TrySend has no stuck serial witness.
		StrictTest: &core.Test{
			Rows: [][]core.Op{{pTrySend(1)}, {pTrySend(2)}},
		},
		// Len sums the two buffers under separate locks; a value in flight
		// inside Process is invisible to both, so the total is genuinely
		// nondeterministic and is declared relaxed (wildcarded) rather than
		// explained by reordering.
		RelaxedTest: &core.Test{
			Init: []core.Op{pSend(1)},
			Rows: [][]core.Op{{pProcess()}, {pLen()}},
		},
	}
}
