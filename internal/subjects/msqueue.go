package subjects

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// MSQueue is the Michael–Scott two-lock-free queue: a singly linked list
// with a dummy head node, head and tail pointers advanced by CAS, and the
// classic helping step that swings a lagging tail forward. Enqueue
// linearizes at the CAS that links the new node; TryDequeue at the CAS that
// advances head (or at the next-pointer load that observes emptiness).
// Nodes are never recycled, so there is no ABA problem.
type MSQueue struct {
	head *vsync.Atomic[*msNode]
	tail *vsync.Atomic[*msNode]
}

type msNode struct {
	value int
	next  *vsync.Atomic[*msNode]
}

func newMSNode(t *sched.Thread, v int) *msNode {
	return &msNode{value: v, next: vsync.NewAtomic[*msNode](t, "MSQueue.node.next", nil)}
}

// NewMSQueue constructs an empty queue (head and tail point at a dummy).
func NewMSQueue(t *sched.Thread) *MSQueue {
	dummy := newMSNode(t, 0)
	return &MSQueue{
		head: vsync.NewAtomic(t, "MSQueue.head", dummy),
		tail: vsync.NewAtomic(t, "MSQueue.tail", dummy),
	}
}

// Enqueue appends v at the tail.
func (q *MSQueue) Enqueue(t *sched.Thread, v int) {
	n := newMSNode(t, v)
	for {
		tail := q.tail.Load(t)
		next := tail.next.Load(t)
		if next == nil {
			if tail.next.CompareAndSwap(t, nil, n) {
				// Swing the tail; losing the race is fine (someone helped).
				q.tail.CompareAndSwap(t, tail, n)
				return
			}
		} else {
			// Tail lags behind; help swing it forward and retry.
			q.tail.CompareAndSwap(t, tail, next)
		}
	}
}

// TryDequeue removes and returns the oldest element; ok is false on an
// empty queue.
func (q *MSQueue) TryDequeue(t *sched.Thread) (v int, ok bool) {
	for {
		head := q.head.Load(t)
		next := head.next.Load(t)
		if next == nil {
			return 0, false
		}
		tail := q.tail.Load(t)
		if head == tail {
			// Help a lagging enqueuer before overtaking the tail.
			q.tail.CompareAndSwap(t, tail, next)
		}
		if q.head.CompareAndSwap(t, head, next) {
			return next.value, true
		}
	}
}

// TryPeek returns the oldest element without removing it.
func (q *MSQueue) TryPeek(t *sched.Thread) (v int, ok bool) {
	next := q.head.Load(t).next.Load(t)
	if next == nil {
		return 0, false
	}
	return next.value, true
}

// IsEmpty reports whether the queue is empty. It linearizes at the next
// load: a dequeued node always has a non-nil next pointer, so observing nil
// proves the node was still the dummy at that instant.
func (q *MSQueue) IsEmpty(t *sched.Thread) bool {
	return q.head.Load(t).next.Load(t) == nil
}

// MSQueuePre seeds the classic lost-update defect: TryDequeue publishes the
// new head with a plain store instead of a CAS. Two concurrent dequeuers can
// both load the same head, both observe the same next node, and both store —
// returning the same element twice while silently dropping none, one, or
// more of the following elements. Serial executions are unaffected (a single
// dequeuer never observes an intervening store), so phase 1 synthesizes the
// correct FIFO spec and phase 2 convicts the duplicate-dequeue history.
// Minimal failing scenario: init Enqueue(1);Enqueue(2), thread A TryDequeue,
// thread B TryDequeue — both return 1. The corrected MSQueue advances head
// with CompareAndSwap, so the second dequeuer's attempt fails and retries.
type MSQueuePre struct {
	MSQueue
}

// NewMSQueuePre constructs the defect-seeded variant.
func NewMSQueuePre(t *sched.Thread) *MSQueuePre {
	dummy := newMSNode(t, 0)
	return &MSQueuePre{MSQueue{
		head: vsync.NewAtomic(t, "MSQueue.head", dummy),
		tail: vsync.NewAtomic(t, "MSQueue.tail", dummy),
	}}
}

// TryDequeue removes the oldest element — with the seeded bug: the head
// pointer is advanced by an unconditional store.
func (q *MSQueuePre) TryDequeue(t *sched.Thread) (v int, ok bool) {
	head := q.head.Load(t)
	next := head.next.Load(t)
	if next == nil {
		return 0, false
	}
	q.head.Store(t, next) // BUG: lost update; must be CompareAndSwap
	return next.value, true
}

// MSQueueRelaxed extends MSQueue with a traversal-based Count: it walks the
// next pointers from the head dummy, one instrumented load per node, without
// excluding concurrently dequeued or enqueued nodes. The walk can observe an
// element that a completed dequeue already removed together with an element
// a later enqueue added — a total no instant of the queue ever held — so
// Count is not linearizable. It is quiescently consistent: with no operation
// in flight the walk is exact, and every anomalous total is explained by
// reordering the walk against the operations it overlaps.
type MSQueueRelaxed struct {
	MSQueue
}

// NewMSQueueRelaxed constructs the relaxed variant.
func NewMSQueueRelaxed(t *sched.Thread) *MSQueueRelaxed {
	dummy := newMSNode(t, 0)
	return &MSQueueRelaxed{MSQueue{
		head: vsync.NewAtomic(t, "MSQueue.head", dummy),
		tail: vsync.NewAtomic(t, "MSQueue.tail", dummy),
	}}
}

// Count walks the list from the (possibly stale) head dummy.
func (q *MSQueueRelaxed) Count(t *sched.Thread) int {
	n := 0
	for node := q.head.Load(t).next.Load(t); node != nil; node = node.next.Load(t) {
		n++
	}
	return n
}
