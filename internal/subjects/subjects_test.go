package subjects_test

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/subjects"
)

// checkOpts is the per-entry checking configuration of the directed tests.
func checkOpts(e *subjects.Entry) core.Options {
	return core.Options{PreemptionBound: e.Bound}
}

// TestRegistry sanity-checks the corpus wiring: every entry is complete and
// its op universes expose the directed tests' operations.
func TestRegistry(t *testing.T) {
	reg := subjects.Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d entries, want 4", len(reg))
	}
	for _, e := range reg {
		if e.Subject == nil || e.Pre == nil || e.Relaxed == nil {
			t.Fatalf("%s: incomplete variant set", e.Name)
		}
		if e.Model == nil || e.StrictTest == nil || e.RelaxedTest == nil {
			t.Fatalf("%s: missing model or directed test", e.Name)
		}
		if got, ok := subjects.Find(e.Name); !ok || got.Name != e.Name {
			t.Fatalf("Find(%q) failed", e.Name)
		}
		for _, row := range e.StrictTest.Rows {
			for _, op := range row {
				if _, ok := e.Subject.FindOp(op.Name()); !ok {
					t.Errorf("%s: strict test op %s not in universe", e.Name, op.Name())
				}
			}
		}
		for _, row := range e.RelaxedTest.Rows {
			for _, op := range row {
				if _, ok := e.Relaxed.FindOp(op.Name()); !ok {
					t.Errorf("%s: relaxed test op %s not in relaxed universe", e.Name, op.Name())
				}
			}
		}
	}
	if _, ok := subjects.Find("NoSuchSubject"); ok {
		t.Fatal("Find accepted an unknown name")
	}
}

// TestStrictSubjectsPass: the correct implementation of every family passes
// its directed test under strict linearizability.
func TestStrictSubjectsPass(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := core.Check(e.Subject, e.StrictTest, checkOpts(e))
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Verdict != core.Pass {
				t.Fatalf("correct %s failed its directed test:\n%s", e.Name, res.Violation)
			}
		})
	}
}

// TestPreSubjectsFail: every defect-seeded sibling is convicted by the same
// directed test its correct twin passes.
func TestPreSubjectsFail(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := core.Check(e.Pre, e.StrictTest, checkOpts(e))
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("seeded bug in %s(Pre) was not found", e.Name)
			}
		})
	}
}

// TestRelaxedSubjectsFailStrictly: every relaxed sibling violates strict
// linearizability on its directed test...
func TestRelaxedSubjectsFailStrictly(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := core.Check(e.Relaxed, e.RelaxedTest, checkOpts(e))
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("%s(Relaxed) unexpectedly passed its directed test strictly", e.Name)
			}
		})
	}
}

// TestRelaxedSubjectsPassRelaxed: ...and satisfies its declared relaxation.
func TestRelaxedSubjectsPassRelaxed(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, e := range subjects.Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opts := checkOpts(e)
			opts.Consistency = e.RelaxedConsistency
			opts.RelaxedOps = e.RelaxedOps
			res, err := core.Check(e.Relaxed, e.RelaxedTest, opts)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Verdict != core.Pass {
				t.Fatalf("%s(Relaxed) failed under %s (relaxed ops %v):\n%s",
					e.Name, e.RelaxedConsistency, e.RelaxedOps, res.Violation)
			}
		})
	}
}

// TestElimStackRelaxedSeparatesSCFromQC pins the criterion hierarchy on a
// concrete subject: the stale-cache stack satisfies sequential consistency
// but not quiescent consistency (a quiescent cut between the pop's return
// and the peek's call pins an order the stale cache contradicts), so the two
// relaxations are genuinely different.
func TestElimStackRelaxedSeparatesSCFromQC(t *testing.T) {
	sched.RequireNoLeaks(t)
	e, _ := subjects.Find("ElimStack")
	opts := checkOpts(e)
	opts.Consistency = core.QuiescentConsistency
	res, err := core.Check(e.Relaxed, e.RelaxedTest, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatal("ElimStack(Relaxed) passed under quiescent consistency; expected only sequential consistency to admit it")
	}
}
