package subjects

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// mapShards is the shard count of ShardedMap. Two shards keep the explored
// state space small while still exhibiting every cross-shard interleaving a
// larger map would.
const mapShards = 2

type kv struct {
	k, v int
}

type mapShard struct {
	mu   *vsync.Mutex
	data *vsync.Cell[[]kv]
}

func newMapShard(t *sched.Thread, name string) *mapShard {
	return &mapShard{
		mu:   vsync.NewMutex(t, name+".mu"),
		data: vsync.NewCell(t, name+".data", []kv(nil)),
	}
}

func (s *mapShard) get(t *sched.Thread) []kv { return s.data.Load(t) }

func (s *mapShard) put(t *sched.Thread, k, v int) {
	d := s.data.Load(t)
	for i, e := range d {
		if e.k == k {
			nd := append([]kv(nil), d...)
			nd[i].v = v
			s.data.Store(t, nd)
			return
		}
	}
	s.data.Store(t, append(append([]kv(nil), d...), kv{k, v}))
}

func (s *mapShard) del(t *sched.Thread, k int) bool {
	d := s.data.Load(t)
	for i, e := range d {
		if e.k == k {
			nd := append(append([]kv(nil), d[:i]...), d[i+1:]...)
			s.data.Store(t, nd)
			return true
		}
	}
	return false
}

// ShardedMap is a hash map striped across mapShards lock-protected shards
// (the shape of a sharded sync.Map replacement: per-shard mutex plus a
// copy-on-write bucket slice). Single-key operations lock one shard and are
// trivially linearizable; the whole-map Len locks all shards in ascending
// order and counts under the combined critical section, so it observes a
// consistent instant.
type ShardedMap struct {
	shards [mapShards]*mapShard
}

// NewShardedMap constructs an empty map.
func NewShardedMap(t *sched.Thread) *ShardedMap {
	m := &ShardedMap{}
	for i := range m.shards {
		m.shards[i] = newMapShard(t, "ShardedMap.shard"+string(rune('0'+i)))
	}
	return m
}

func (m *ShardedMap) shard(k int) *mapShard {
	if k < 0 {
		k = -k
	}
	return m.shards[k%mapShards]
}

// Put stores v under k.
func (m *ShardedMap) Put(t *sched.Thread, k, v int) {
	s := m.shard(k)
	s.mu.Lock(t)
	s.put(t, k, v)
	s.mu.Unlock(t)
}

// Get returns the value stored under k.
func (m *ShardedMap) Get(t *sched.Thread, k int) (v int, ok bool) {
	s := m.shard(k)
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	for _, e := range s.get(t) {
		if e.k == k {
			return e.v, true
		}
	}
	return 0, false
}

// Delete removes k, reporting whether it was present.
func (m *ShardedMap) Delete(t *sched.Thread, k int) bool {
	s := m.shard(k)
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	return s.del(t, k)
}

// Len counts all entries under every shard lock at once (linearizable).
func (m *ShardedMap) Len(t *sched.Thread) int {
	for _, s := range m.shards {
		s.mu.Lock(t)
	}
	n := 0
	for _, s := range m.shards {
		n += len(s.get(t))
	}
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock(t)
	}
	return n
}

// ShardedMapPre seeds a cross-shard counting defect: instead of counting
// under the shard locks, the map maintains a global size with a racy
// load-then-store update outside any lock. Two concurrent Puts on different
// shards can both read size=0 and both write size=1, losing an increment —
// afterwards Len answers 1 with two entries present, with no serial witness.
// Serially the counter is exact, so phase 1 synthesizes the correct spec.
type ShardedMapPre struct {
	ShardedMap
	size *vsync.AtomicInt
}

// NewShardedMapPre constructs the defect-seeded variant.
func NewShardedMapPre(t *sched.Thread) *ShardedMapPre {
	m := &ShardedMapPre{size: vsync.NewAtomicInt(t, "ShardedMap.size", 0)}
	for i := range m.shards {
		m.shards[i] = newMapShard(t, "ShardedMap.shard"+string(rune('0'+i)))
	}
	return m
}

// Put stores v under k and bumps the global size — with the seeded bug: the
// bump is an unsynchronized read-modify-write.
func (m *ShardedMapPre) Put(t *sched.Thread, k, v int) {
	s := m.shard(k)
	s.mu.Lock(t)
	fresh := true
	for _, e := range s.get(t) {
		if e.k == k {
			fresh = false
			break
		}
	}
	s.put(t, k, v)
	s.mu.Unlock(t)
	if fresh {
		sz := m.size.Load(t)
		m.size.Store(t, sz+1) // BUG: lost update; must be Add(t, 1)
	}
}

// Delete removes k and decrements the global size (same racy pattern; the
// Put race alone already suffices to convict the subject).
func (m *ShardedMapPre) Delete(t *sched.Thread, k int) bool {
	s := m.shard(k)
	s.mu.Lock(t)
	ok := s.del(t, k)
	s.mu.Unlock(t)
	if ok {
		sz := m.size.Load(t)
		m.size.Store(t, sz-1) // BUG: lost update; must be Add(t, -1)
	}
	return ok
}

// Len answers from the global counter.
func (m *ShardedMapPre) Len(t *sched.Thread) int {
	return m.size.Load(t)
}

// ShardedMapRelaxed weakens Len to a shard-at-a-time scan: it locks, counts,
// and unlocks each shard in turn, so entries moved by operations that run
// between the per-shard critical sections are double-counted or missed. The
// scan is not linearizable — it can report a total the map held at no
// instant — but it is quiescently consistent: a scan that overlaps no other
// operation is exact, and any anomalous total is explained by reordering the
// scan against exactly the operations it overlaps.
type ShardedMapRelaxed struct {
	ShardedMap
}

// NewShardedMapRelaxed constructs the relaxed variant.
func NewShardedMapRelaxed(t *sched.Thread) *ShardedMapRelaxed {
	m := &ShardedMapRelaxed{}
	for i := range m.shards {
		m.shards[i] = newMapShard(t, "ShardedMap.shard"+string(rune('0'+i)))
	}
	return m
}

// Len counts shard-at-a-time, releasing each shard lock before taking the
// next.
func (m *ShardedMapRelaxed) Len(t *sched.Thread) int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock(t)
		n += len(s.get(t))
		s.mu.Unlock(t)
	}
	return n
}
