package buggy

import (
	"fmt"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// Completion states (mirroring the corrected TaskCompletionSource).
const (
	tcsPending = iota
	tcsResult
	tcsCanceled
	tcsException
)

// TaskCompletionSourcePre reproduces root cause G: the TrySet* family
// checks the status and then stores the new state as two separate accesses
// instead of one interlocked CAS, so two racing completions can both
// observe "pending" and both report success — while only the later one's
// payload survives. No serial execution lets two TrySet* calls both win.
type TaskCompletionSourcePre struct {
	status *vsync.Cell[int] // BUG: plain check-then-act where CAS is needed
	value  *vsync.Cell[int]
	ws     sched.WaitSet
}

// NewTaskCompletionSourcePre constructs a pending completion source.
func NewTaskCompletionSourcePre(t *sched.Thread) *TaskCompletionSourcePre {
	s := &TaskCompletionSourcePre{
		status: vsync.NewCell(t, "TCSPre.status", tcsPending),
		value:  vsync.NewCell(t, "TCSPre.value", 0),
	}
	s.ws.SetFootprintLoc(t.NewLoc())
	return s
}

func (s *TaskCompletionSourcePre) trySet(t *sched.Thread, status, v int) bool {
	if s.status.Load(t) != tcsPending { // BUG: check...
		return false
	}
	s.value.Store(t, v)
	s.status.Store(t, status) // BUG: ...then act, without atomicity
	s.ws.Broadcast(t)
	return true
}

// TrySetResult completes the task with a value, reporting whether it won.
func (s *TaskCompletionSourcePre) TrySetResult(t *sched.Thread, v int) bool {
	return s.trySet(t, tcsResult, v)
}

// TrySetCanceled cancels the task, reporting whether it won.
func (s *TaskCompletionSourcePre) TrySetCanceled(t *sched.Thread) bool {
	return s.trySet(t, tcsCanceled, 0)
}

// TrySetException faults the task, reporting whether it won.
func (s *TaskCompletionSourcePre) TrySetException(t *sched.Thread) bool {
	return s.trySet(t, tcsException, 0)
}

// SetResult completes the task with a value; false if already completed.
func (s *TaskCompletionSourcePre) SetResult(t *sched.Thread, v int) bool {
	return s.TrySetResult(t, v)
}

// SetCanceled cancels the task; false if already completed.
func (s *TaskCompletionSourcePre) SetCanceled(t *sched.Thread) bool {
	return s.TrySetCanceled(t)
}

// SetException faults the task; false if already completed.
func (s *TaskCompletionSourcePre) SetException(t *sched.Thread) bool {
	return s.TrySetException(t)
}

func renderStatus(status, value int) string {
	switch status {
	case tcsResult:
		return fmt.Sprintf("result(%d)", value)
	case tcsCanceled:
		return "canceled"
	case tcsException:
		return "exception"
	default:
		return "pending"
	}
}

// Wait blocks until the task completes and returns its outcome.
func (s *TaskCompletionSourcePre) Wait(t *sched.Thread) string {
	for s.status.Load(t) == tcsPending {
		s.ws.Wait(t)
	}
	return renderStatus(s.status.Load(t), s.value.Load(t))
}

// TryResult returns the current outcome without blocking.
func (s *TaskCompletionSourcePre) TryResult(t *sched.Thread) string {
	return renderStatus(s.status.Load(t), s.value.Load(t))
}
