package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// BlockingCollectionPre reproduces root cause B, the bug of Fig. 1 that the
// paper found in the .NET 4.0 community technology preview [19]: "the buggy
// behavior ... was caused by accidentally allowing a lock acquire in
// TryTake to time out". Under the checker the timed-out acquire is modeled
// by TryLock — the timeout elapses exactly in those schedules where the
// lock is observed held (see DESIGN.md) — so a TryTake racing with any
// other operation's critical section fails even when the collection is
// provably non-empty, which is the non-linearizable outcome of Fig. 1:
//
//	Thread 1            Thread 2
//	Add(200)            Add(400)
//	TryTake() = 200     TryTake() = FAIL
//
// The class otherwise matches the corrected BlockingCollection, including
// its blocking Take.
type BlockingCollectionPre struct {
	mu        *vsync.Mutex
	cond      *vsync.Cond
	items     *vsync.Cell[[]int]
	completed *vsync.Atomic[bool]
}

// NewBlockingCollectionPre constructs an empty collection.
func NewBlockingCollectionPre(t *sched.Thread) *BlockingCollectionPre {
	mu := vsync.NewMutex(t, "BCPre.lock")
	return &BlockingCollectionPre{
		mu:        mu,
		cond:      vsync.NewCond(mu),
		items:     vsync.NewCell(t, "BCPre.items", []int(nil)),
		completed: vsync.NewAtomic(t, "BCPre.completed", false),
	}
}

// Add appends v; false if adding has been completed.
func (b *BlockingCollectionPre) Add(t *sched.Thread, v int) bool {
	if b.completed.Load(t) {
		return false
	}
	b.mu.Lock(t)
	b.items.Store(t, append(b.items.Load(t), v))
	b.cond.Broadcast(t)
	b.mu.Unlock(t)
	return true
}

// TryAdd is Add without blocking semantics.
func (b *BlockingCollectionPre) TryAdd(t *sched.Thread, v int) bool {
	return b.Add(t, v)
}

// Take removes and returns the head element, blocking while the collection
// is empty.
func (b *BlockingCollectionPre) Take(t *sched.Thread) (v int, ok bool) {
	b.mu.Lock(t)
	for {
		items := b.items.Load(t)
		if len(items) > 0 {
			v = items[0]
			b.items.Store(t, items[1:])
			b.mu.Unlock(t)
			return v, true
		}
		if b.completed.Load(t) {
			b.mu.Unlock(t)
			return 0, false
		}
		b.cond.Wait(t)
	}
}

// TryTake removes and returns the head element without blocking. BUG (root
// cause B, Fig. 1): the lock acquire may time out, making the operation
// fail regardless of the collection's contents.
func (b *BlockingCollectionPre) TryTake(t *sched.Thread) (v int, ok bool) {
	if !b.mu.TryLock(t) { // BUG: Monitor.TryEnter(timeout) instead of Enter
		return 0, false
	}
	defer b.mu.Unlock(t)
	items := b.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	v = items[0]
	b.items.Store(t, items[1:])
	return v, true
}

// Count returns the number of elements (monitor-protected here; the count
// quirk of the corrected class postdates the CTP).
func (b *BlockingCollectionPre) Count(t *sched.Thread) int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return len(b.items.Load(t))
}

// ToArray returns a snapshot in FIFO order.
func (b *BlockingCollectionPre) ToArray(t *sched.Thread) []int {
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return append([]int(nil), b.items.Load(t)...)
}

// CompleteAdding closes the collection for producers (without waking
// blocked takers, as in the corrected class).
func (b *BlockingCollectionPre) CompleteAdding(t *sched.Thread) {
	b.completed.Store(t, true)
}

// IsAddingCompleted reports whether CompleteAdding has been called.
func (b *BlockingCollectionPre) IsAddingCompleted(t *sched.Thread) bool {
	return b.completed.Load(t)
}

// IsCompleted reports whether adding is completed and the collection is
// empty.
func (b *BlockingCollectionPre) IsCompleted(t *sched.Thread) bool {
	if !b.completed.Load(t) {
		return false
	}
	b.mu.Lock(t)
	defer b.mu.Unlock(t)
	return len(b.items.Load(t)) == 0
}
