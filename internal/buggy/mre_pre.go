package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// ManualResetEventSlimPre reproduces root cause A (Fig. 9), the bug the
// paper describes in most detail: Wait's compare-and-swap update reads the
// shared state word a second time while computing the new value —
//
//	int localstate = state;
//	int newstate = f(state);              // BUG: should be f(localstate)
//	compare_and_swap(&state, localstate, newstate);
//
// If another thread performs Set between the two reads and Reset before the
// CAS, the CAS succeeds (the state changed and changed back — the paper's
// "pernicious typographical error") but the new value carries a ghost set
// bit. A later Set then observes "already set" and skips the wakeup, so the
// waiter blocks forever: the stuck history of Fig. 9 with no stuck serial
// witness.
type ManualResetEventSlimPre struct {
	state *vsync.AtomicInt // (waiters << 1) | isSet
	ws    sched.WaitSet
}

// NewManualResetEventSlimPre constructs an event in the unset state.
func NewManualResetEventSlimPre(t *sched.Thread) *ManualResetEventSlimPre {
	e := &ManualResetEventSlimPre{state: vsync.NewAtomicInt(t, "MREPre.state", 0)}
	e.ws.SetFootprintLoc(t.NewLoc())
	return e
}

// Set signals the event, waking all current waiters; like the corrected
// version it skips the wakeup when the state word claims the event is
// already set — which the corrupted state produced by Wait's typo turns
// into a lost wakeup.
func (e *ManualResetEventSlimPre) Set(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 1 {
			return
		}
		if e.state.CompareAndSwap(t, s, 1) {
			if s>>1 > 0 {
				e.ws.Broadcast(t)
			}
			return
		}
	}
}

// Reset returns the event to the unset state.
func (e *ManualResetEventSlimPre) Reset(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 0 {
			return
		}
		if e.state.CompareAndSwap(t, s, s&^1) {
			return
		}
	}
}

// Wait blocks until the event is set. It contains the seeded typo.
func (e *ManualResetEventSlimPre) Wait(t *sched.Thread) {
	for {
		s := e.state.Load(t)
		if s&1 == 1 {
			return
		}
		ns := e.state.Load(t) + 2 // BUG (root cause A): re-reads state; correct: ns := s + 2
		if e.state.CompareAndSwap(t, s, ns) {
			e.ws.Wait(t)
			continue
		}
	}
}

// IsSet reports whether the event is currently set.
func (e *ManualResetEventSlimPre) IsSet(t *sched.Thread) bool {
	return e.state.Load(t)&1 == 1
}

// WaitOne is Wait(0): it reports whether the event is set without blocking.
func (e *ManualResetEventSlimPre) WaitOne(t *sched.Thread) bool {
	return e.IsSet(t)
}
