package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// CountdownEventPre reproduces root cause E: Signal decrements the count
// with an unsynchronized read-modify-write instead of an interlocked CAS,
// so concurrent signals can lose a decrement. The event then never becomes
// set: waiters block forever (stuck history) and CurrentCount/IsSet report
// values no serial execution produces.
type CountdownEventPre struct {
	count *vsync.Cell[int] // BUG: plain field where the corrected version uses CAS
	ws    sched.WaitSet
}

// NewCountdownEventPre constructs an event with the given initial count.
func NewCountdownEventPre(t *sched.Thread, initial int) *CountdownEventPre {
	c := &CountdownEventPre{count: vsync.NewCell(t, "CountdownEventPre.count", initial)}
	c.ws.SetFootprintLoc(t.NewLoc())
	return c
}

// Signal decrements the count by n. BUG (root cause E): load and store are
// separate unsynchronized accesses, so a concurrent Signal's decrement can
// be overwritten.
func (c *CountdownEventPre) Signal(t *sched.Thread, n int) bool {
	cur := c.count.Load(t)
	if cur < n {
		return false
	}
	c.count.Store(t, cur-n) // BUG: lost update window between load and store
	if cur-n == 0 {
		c.ws.Broadcast(t)
	}
	return true
}

// TryAddCount increments the count by n unless the event is already set.
// It shares the unsynchronized read-modify-write defect.
func (c *CountdownEventPre) TryAddCount(t *sched.Thread, n int) bool {
	cur := c.count.Load(t)
	if cur == 0 {
		return false
	}
	c.count.Store(t, cur+n)
	return true
}

// AddCount increments the count by n; false if the event is already set.
func (c *CountdownEventPre) AddCount(t *sched.Thread, n int) bool {
	return c.TryAddCount(t, n)
}

// IsSet reports whether the count has reached zero.
func (c *CountdownEventPre) IsSet(t *sched.Thread) bool {
	return c.count.Load(t) == 0
}

// CurrentCount returns the remaining count.
func (c *CountdownEventPre) CurrentCount(t *sched.Thread) int {
	return c.count.Load(t)
}

// Wait blocks until the event is set.
func (c *CountdownEventPre) Wait(t *sched.Thread) {
	for c.count.Load(t) != 0 {
		c.ws.Wait(t)
	}
}

// WaitZero is Wait(0): it reports whether the event is set.
func (c *CountdownEventPre) WaitZero(t *sched.Thread) bool {
	return c.IsSet(t)
}
