package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// StackPre reproduces root cause C: TryPopRange is implemented as a loop of
// single pops instead of one atomic multi-pop CAS, so elements pushed by
// other threads can interleave into the middle of the popped range — the
// range observed is one that never existed on the stack, which no serial
// witness can justify.
type StackPre struct {
	head *vsync.Atomic[*preNode]
}

type preNode struct {
	value int
	next  *preNode
}

// NewStackPre constructs an empty stack.
func NewStackPre(t *sched.Thread) *StackPre {
	return &StackPre{head: vsync.NewAtomic[*preNode](t, "StackPre.head", nil)}
}

// Push adds v on top of the stack.
func (s *StackPre) Push(t *sched.Thread, v int) {
	for {
		h := s.head.Load(t)
		n := &preNode{value: v, next: h}
		if s.head.CompareAndSwap(t, h, n) {
			return
		}
	}
}

// PushRange pushes all values atomically (this part is correct).
func (s *StackPre) PushRange(t *sched.Thread, vs []int) {
	if len(vs) == 0 {
		return
	}
	for {
		h := s.head.Load(t)
		top := h
		for _, v := range vs {
			top = &preNode{value: v, next: top}
		}
		if s.head.CompareAndSwap(t, h, top) {
			return
		}
	}
}

// TryPop removes and returns the top element (correct).
func (s *StackPre) TryPop(t *sched.Thread) (v int, ok bool) {
	for {
		h := s.head.Load(t)
		if h == nil {
			return 0, false
		}
		if s.head.CompareAndSwap(t, h, h.next) {
			return h.value, true
		}
	}
}

// TryPopRange pops up to n elements. BUG (root cause C): the range is
// assembled from n independent single pops, so concurrent pushes can
// interleave into the observed range.
func (s *StackPre) TryPopRange(t *sched.Thread, n int) []int {
	var out []int
	for len(out) < n {
		v, ok := s.TryPop(t) // BUG: should be a single CAS over the range
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// TryPeek returns the top element without removing it.
func (s *StackPre) TryPeek(t *sched.Thread) (v int, ok bool) {
	h := s.head.Load(t)
	if h == nil {
		return 0, false
	}
	return h.value, true
}

// Count returns the number of elements.
func (s *StackPre) Count(t *sched.Thread) int {
	n := 0
	for node := s.head.Load(t); node != nil; node = node.next {
		n++
	}
	return n
}

// IsEmpty reports whether the stack is empty.
func (s *StackPre) IsEmpty(t *sched.Thread) bool {
	return s.head.Load(t) == nil
}

// ToArray returns a snapshot of the elements, top first.
func (s *StackPre) ToArray(t *sched.Thread) []int {
	var out []int
	for node := s.head.Load(t); node != nil; node = node.next {
		out = append(out, node.value)
	}
	return out
}

// Clear removes all elements atomically.
func (s *StackPre) Clear(t *sched.Thread) {
	s.head.Store(t, nil)
}
