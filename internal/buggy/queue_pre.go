package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// QueuePre reproduces root cause B': the CTP queue derived Count from two
// separate interlocked counters (elements enqueued and elements dequeued)
// read one after the other without a consistent snapshot. A dequeue that
// lands between the two reads makes Count report a value — possibly
// negative — that the queue never held, which no serial witness justifies.
// (The corrected Queue computes Count under the monitor.)
type QueuePre struct {
	mu    *vsync.Mutex
	items *vsync.Cell[[]int]
	enq   *vsync.AtomicInt
	deq   *vsync.AtomicInt
}

// NewQueuePre constructs an empty queue.
func NewQueuePre(t *sched.Thread) *QueuePre {
	return &QueuePre{
		mu:    vsync.NewMutex(t, "QueuePre.lock"),
		items: vsync.NewCell(t, "QueuePre.items", []int(nil)),
		enq:   vsync.NewAtomicInt(t, "QueuePre.enq", 0),
		deq:   vsync.NewAtomicInt(t, "QueuePre.deq", 0),
	}
}

// Enqueue appends v to the tail.
func (q *QueuePre) Enqueue(t *sched.Thread, v int) {
	q.mu.Lock(t)
	q.items.Store(t, append(q.items.Load(t), v))
	q.enq.Add(t, 1)
	q.mu.Unlock(t)
}

// TryDequeue removes and returns the head element.
func (q *QueuePre) TryDequeue(t *sched.Thread) (v int, ok bool) {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	items := q.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	v = items[0]
	q.items.Store(t, items[1:])
	q.deq.Add(t, 1)
	return v, true
}

// TryPeek returns the head element without removing it.
func (q *QueuePre) TryPeek(t *sched.Thread) (v int, ok bool) {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	items := q.items.Load(t)
	if len(items) == 0 {
		return 0, false
	}
	return items[0], true
}

// Count derives the size from the two counters. BUG (root cause B'): the
// counters are read one after the other without a snapshot, so concurrent
// operations between the reads produce sizes the queue never had.
func (q *QueuePre) Count(t *sched.Thread) int {
	e := q.enq.Load(t)
	d := q.deq.Load(t) // BUG: torn read pair
	return e - d
}

// IsEmpty reports whether the queue appears empty (inherits the torn read).
func (q *QueuePre) IsEmpty(t *sched.Thread) bool {
	return q.Count(t) == 0
}

// ToArray returns a snapshot of the elements in FIFO order.
func (q *QueuePre) ToArray(t *sched.Thread) []int {
	q.mu.Lock(t)
	defer q.mu.Unlock(t)
	return append([]int(nil), q.items.Load(t)...)
}
