// Package buggy contains the "(Pre)" variants of the collections: versions
// seeded with the defects that the paper found in the .NET Framework 4.0
// community technology preview (Table 2, root causes A through G). Each
// type documents its root cause, the minimal failing scenario, and how the
// corrected version in package collections differs. The defects are modeled
// directly on the paper's descriptions where the paper gives them (A is the
// CAS typo of Fig. 9, B the lock-timeout of Fig. 1) and on the class's
// natural failure mode otherwise.
package buggy
