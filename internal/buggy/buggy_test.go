package buggy_test

import (
	"fmt"
	"testing"

	"lineup/internal/buggy"
	"lineup/internal/sched"
)

// seq runs body as a single thread; every seeded defect is concurrency-only,
// so the (Pre) classes must behave perfectly in sequential use — that is
// what makes them hard to catch without a checker.
func seq(t *testing.T, body func(th *sched.Thread)) {
	t.Helper()
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(sched.Program{Threads: []func(*sched.Thread){body}})
	if out.Err != nil {
		t.Fatalf("execution error: %v", out.Err)
	}
	if out.Stuck {
		t.Fatalf("sequential execution got stuck")
	}
}

func TestQueuePreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		q := buggy.NewQueuePre(th)
		q.Enqueue(th, 1)
		q.Enqueue(th, 2)
		if q.Count(th) != 2 || q.IsEmpty(th) {
			t.Errorf("count = %d", q.Count(th))
		}
		if v, ok := q.TryPeek(th); !ok || v != 1 {
			t.Errorf("peek = %d,%v", v, ok)
		}
		if v, ok := q.TryDequeue(th); !ok || v != 1 {
			t.Errorf("dequeue = %d,%v", v, ok)
		}
		if got := fmt.Sprint(q.ToArray(th)); got != "[2]" {
			t.Errorf("toarray = %s", got)
		}
		q.TryDequeue(th)
		if q.Count(th) != 0 {
			t.Errorf("count = %d", q.Count(th))
		}
	})
}

func TestStackPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := buggy.NewStackPre(th)
		s.Push(th, 1)
		s.PushRange(th, []int{2, 3})
		if got := fmt.Sprint(s.TryPopRange(th, 2)); got != "[3 2]" {
			t.Errorf("poprange = %s", got)
		}
		if v, ok := s.TryPop(th); !ok || v != 1 {
			t.Errorf("pop = %d,%v", v, ok)
		}
		if !s.IsEmpty(th) || s.Count(th) != 0 {
			t.Errorf("not empty")
		}
		s.Push(th, 9)
		if v, ok := s.TryPeek(th); !ok || v != 9 {
			t.Errorf("peek = %d,%v", v, ok)
		}
		if got := fmt.Sprint(s.ToArray(th)); got != "[9]" {
			t.Errorf("toarray = %s", got)
		}
		s.Clear(th)
		if _, ok := s.TryPop(th); ok {
			t.Errorf("pop after clear succeeded")
		}
	})
}

func TestMREPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		e := buggy.NewManualResetEventSlimPre(th)
		if e.IsSet(th) || e.WaitOne(th) {
			t.Errorf("fresh event set")
		}
		e.Set(th)
		e.Wait(th) // immediate
		e.Reset(th)
		if e.IsSet(th) {
			t.Errorf("reset ineffective")
		}
		e.Set(th)
		if !e.WaitOne(th) {
			t.Errorf("waitone after set failed")
		}
	})
}

func TestSemaphorePreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := buggy.NewSemaphoreSlimPre(th, 1)
		if s.CurrentCount(th) != 1 {
			t.Errorf("count = %d", s.CurrentCount(th))
		}
		s.Wait(th)
		if s.WaitZero(th) {
			t.Errorf("Wait(0) without permits succeeded")
		}
		if prev := s.Release(th, 2); prev != 0 {
			t.Errorf("release returned %d", prev)
		}
		if !s.WaitZero(th) {
			t.Errorf("Wait(0) with permits failed")
		}
	})
}

func TestCountdownPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		c := buggy.NewCountdownEventPre(th, 2)
		if !c.Signal(th, 1) || c.CurrentCount(th) != 1 {
			t.Errorf("signal broken")
		}
		if !c.AddCount(th, 1) || !c.TryAddCount(th, 1) {
			t.Errorf("addcount broken")
		}
		if !c.Signal(th, 3) || !c.IsSet(th) || !c.WaitZero(th) {
			t.Errorf("final state broken")
		}
		c.Wait(th) // immediate
		if c.Signal(th, 1) {
			t.Errorf("signal below zero succeeded")
		}
	})
}

func TestLazyPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		l := buggy.NewLazyPre(th)
		if l.IsValueCreated(th) || l.ToString(th) != "unset" {
			t.Errorf("fresh state broken")
		}
		if l.Value(th) != 101 || l.Value(th) != 101 {
			t.Errorf("sequential lazy must memoize")
		}
		if l.ToString(th) != "101" {
			t.Errorf("tostring = %s", l.ToString(th))
		}
	})
}

func TestTCSPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		s := buggy.NewTaskCompletionSourcePre(th)
		if s.TryResult(th) != "pending" {
			t.Errorf("not pending")
		}
		if !s.TrySetResult(th, 7) || s.TrySetResult(th, 8) {
			t.Errorf("sequential double-set must fail")
		}
		if s.SetCanceled(th) || s.SetException(th) || s.SetResult(th, 9) {
			t.Errorf("set after completion succeeded")
		}
		if s.Wait(th) != "result(7)" {
			t.Errorf("wait = %s", s.Wait(th))
		}
	})
	seq(t, func(th *sched.Thread) {
		s := buggy.NewTaskCompletionSourcePre(th)
		if !s.TrySetException(th) || s.TryResult(th) != "exception" {
			t.Errorf("exception path broken")
		}
	})
	seq(t, func(th *sched.Thread) {
		s := buggy.NewTaskCompletionSourcePre(th)
		if !s.TrySetCanceled(th) || s.TryResult(th) != "canceled" {
			t.Errorf("cancel path broken")
		}
	})
}

func TestBCPreSequential(t *testing.T) {
	seq(t, func(th *sched.Thread) {
		b := buggy.NewBlockingCollectionPre(th)
		if !b.Add(th, 1) || !b.TryAdd(th, 2) {
			t.Errorf("adds failed")
		}
		if b.Count(th) != 2 {
			t.Errorf("count = %d", b.Count(th))
		}
		// Sequentially the TryLock always succeeds: no timeout fires.
		if v, ok := b.TryTake(th); !ok || v != 1 {
			t.Errorf("trytake = %d,%v", v, ok)
		}
		if v, ok := b.Take(th); !ok || v != 2 {
			t.Errorf("take = %d,%v", v, ok)
		}
		if got := fmt.Sprint(b.ToArray(th)); got != "[]" {
			t.Errorf("toarray = %s", got)
		}
		b.CompleteAdding(th)
		if !b.IsAddingCompleted(th) || !b.IsCompleted(th) {
			t.Errorf("completion flags broken")
		}
		if b.Add(th, 3) {
			t.Errorf("add after completion succeeded")
		}
		if _, ok := b.Take(th); ok {
			t.Errorf("take on completed empty collection succeeded")
		}
	})
}
