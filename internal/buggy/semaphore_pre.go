package buggy

import (
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// SemaphoreSlimPre reproduces root cause D, a lost wakeup. The fast-path
// design keeps the monitor out of Release: a waiter that finds no permit
// publishes itself in an interlocked waiter count and parks; Release checks
// the waiter count and only then wakes. The seeded defect is the ordering:
// the waiter publishes its count *after* releasing the monitor, so a
// Release that runs in the window observes zero waiters, skips the wakeup,
// and the waiter parks forever even though a permit is available — a stuck
// history with no stuck serial witness. (The corrected SemaphoreSlim keeps
// waiters registered through the monitor's condition variable, closing the
// window.)
type SemaphoreSlimPre struct {
	mu      *vsync.Mutex
	ws      sched.WaitSet
	count   *vsync.Cell[int]
	waiters *vsync.AtomicInt
}

// NewSemaphoreSlimPre constructs a semaphore with the given initial count.
func NewSemaphoreSlimPre(t *sched.Thread, initial int) *SemaphoreSlimPre {
	s := &SemaphoreSlimPre{
		mu:      vsync.NewMutex(t, "SemaphoreSlimPre.lock"),
		count:   vsync.NewCell(t, "SemaphoreSlimPre.count", initial),
		waiters: vsync.NewAtomicInt(t, "SemaphoreSlimPre.waiters", 0),
	}
	s.ws.SetFootprintLoc(t.NewLoc())
	return s
}

// Wait acquires one permit, blocking while none is available. BUG (root
// cause D): the waiter count is published only after the monitor is
// released, leaving a window in which Release sees no waiters.
func (s *SemaphoreSlimPre) Wait(t *sched.Thread) {
	for {
		s.mu.Lock(t)
		c := s.count.Load(t)
		if c > 0 {
			s.count.Store(t, c-1)
			s.mu.Unlock(t)
			return
		}
		s.mu.Unlock(t)
		s.waiters.Add(t, 1) // BUG: published outside the monitor, too late
		s.ws.Wait(t)
		s.waiters.Add(t, -1)
	}
}

// WaitZero is Wait(0): it acquires a permit only if immediately available.
func (s *SemaphoreSlimPre) WaitZero(t *sched.Thread) bool {
	s.mu.Lock(t)
	defer s.mu.Unlock(t)
	c := s.count.Load(t)
	if c == 0 {
		return false
	}
	s.count.Store(t, c-1)
	return true
}

// Release returns n permits and wakes waiters — but only if the (stale)
// waiter count says there are any.
func (s *SemaphoreSlimPre) Release(t *sched.Thread, n int) int {
	s.mu.Lock(t)
	prev := s.count.Load(t)
	s.count.Store(t, prev+n)
	s.mu.Unlock(t)
	if s.waiters.Load(t) > 0 {
		s.ws.Broadcast(t)
	}
	return prev
}

// CurrentCount returns the number of available permits.
func (s *SemaphoreSlimPre) CurrentCount(t *sched.Thread) int {
	return s.count.Load(t)
}
