package buggy

import (
	"fmt"

	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// LazyPre reproduces root cause F: the value factory is not protected by
// the initialization lock, so two racing Value calls both execute it. The
// factory has an observable side effect (each run yields a distinct value),
// so the two callers can return different values — and no serial execution
// ever runs the factory twice.
type LazyPre struct {
	created *vsync.Cell[bool]
	value   *vsync.Cell[int]
	calls   *vsync.Cell[int]
}

// NewLazyPre constructs an uninitialized lazy cell.
func NewLazyPre(t *sched.Thread) *LazyPre {
	return &LazyPre{
		created: vsync.NewCell(t, "LazyPre.created", false),
		value:   vsync.NewCell(t, "LazyPre.value", 0),
		calls:   vsync.NewCell(t, "LazyPre.calls", 0),
	}
}

func (l *LazyPre) factory(t *sched.Thread) int {
	n := l.calls.Load(t) + 1
	l.calls.Store(t, n)
	return 100 + n
}

// Value returns the lazily created value. BUG (root cause F): the
// check-compute-publish sequence is not atomic, so two threads can both
// find the cell uncreated and both run the factory.
func (l *LazyPre) Value(t *sched.Thread) int {
	if l.created.Load(t) {
		return l.value.Load(t)
	}
	v := l.factory(t) // BUG: factory may run more than once
	l.value.Store(t, v)
	l.created.Store(t, true)
	return v
}

// IsValueCreated reports whether the factory has run.
func (l *LazyPre) IsValueCreated(t *sched.Thread) bool {
	return l.created.Load(t)
}

// ToString renders the cell: the value if created, a placeholder otherwise.
func (l *LazyPre) ToString(t *sched.Thread) string {
	if !l.created.Load(t) {
		return "unset"
	}
	return fmt.Sprintf("%d", l.value.Load(t))
}
