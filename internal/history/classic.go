package history

// WitnessClassic implements the original linearizability check of
// Definition 1 for a (possibly stuck) history h: h may be extended by
// appending return events for any subset of its pending operations (with
// results of the witness's choosing), all remaining pending calls are
// dropped, and the result must have a serial witness in the specification.
// Witness candidates are drawn from the prefix closure of the recorded
// serial histories (the construction of Theorem 6: prefixes of full
// histories and of the completed parts of stuck histories).
//
// This is exposed to demonstrate Section 2.2.2: the classic definition
// accepts erroneous blocking (e.g. Counter2's leaked lock) that the
// generalized Definition 3 rejects.
func (sp *Spec) WitnessClassic(h *History) (*SerialHistory, bool) {
	ops := h.Ops()
	completedByThread := make(map[int][]Op)
	pendingByThread := make(map[int]Op)
	for _, op := range ops {
		if op.Complete {
			completedByThread[op.Thread] = append(completedByThread[op.Thread], op)
		} else {
			pendingByThread[op.Thread] = op
		}
	}
	for _, group := range [][]*SerialHistory{flatten(sp.full), flatten(sp.stuck)} {
		for _, cand := range group {
			if s, ok := classicMatch(cand, h, completedByThread, pendingByThread); ok {
				return s, ok
			}
		}
	}
	return nil, false
}

func flatten(m map[string][]*SerialHistory) []*SerialHistory {
	var out []*SerialHistory
	for _, hs := range m {
		out = append(out, hs...)
	}
	return out
}

// classicMatch checks whether some prefix of cand's completed operations
// witnesses h under the classic definition.
func classicMatch(cand *SerialHistory, h *History, completedByThread map[int][]Op, pendingByThread map[int]Op) (*SerialHistory, bool) {
	// The witness must contain every completed operation of h; try prefixes
	// long enough to hold them all.
	nCompleted := 0
	for _, v := range completedByThread {
		nCompleted += len(v)
	}
	for k := nCompleted; k <= len(cand.Ops); k++ {
		prefix := cand.Ops[:k]
		if matchPrefix(prefix, h, completedByThread, pendingByThread) {
			return &SerialHistory{Ops: append([]SerialOp(nil), prefix...)}, true
		}
	}
	return nil, false
}

// matchPrefix checks the two witness conditions against one candidate
// serial op sequence: per-thread subhistory equality (completed ops exactly,
// optionally followed by the thread's pending op, matched by name with a
// free result) and order preservation <H ⊆ <S.
func matchPrefix(prefix []SerialOp, h *History, completedByThread map[int][]Op, pendingByThread map[int]Op) bool {
	perThreadSeen := make(map[int]int)
	// For order checking we map each op of the prefix back to the matching
	// Op of h (carrying its call/return positions).
	mapped := make([]Op, len(prefix))
	usedPending := make(map[int]bool)
	for i, so := range prefix {
		seen := perThreadSeen[so.Thread]
		comp := completedByThread[so.Thread]
		switch {
		case seen < len(comp):
			c := comp[seen]
			if c.Name != so.Name || c.Result != so.Result {
				return false
			}
			mapped[i] = c
		case seen == len(comp):
			p, ok := pendingByThread[so.Thread]
			if !ok || usedPending[so.Thread] || p.Name != so.Name {
				return false
			}
			// The pending op completes with whatever result the witness
			// assigns (we append the matching return to H).
			usedPending[so.Thread] = true
			mapped[i] = p
		default:
			return false
		}
		perThreadSeen[so.Thread] = seen + 1
	}
	// Every completed op of h must be present.
	for t, comp := range completedByThread {
		if perThreadSeen[t] < len(comp) {
			return false
		}
	}
	// Order condition: <H ⊆ <S over the mapped ops.
	for i := range mapped {
		for j := range mapped {
			if i == j {
				continue
			}
			if Precedes(mapped[i], mapped[j]) && i >= j {
				return false
			}
		}
	}
	return true
}
