// Package history implements the formal vocabulary of the paper's Section 2:
// events, histories, operations, the precedence order <H, thread
// subhistories, serial and stuck histories, serial witnesses, and
// specification sets synthesized from serial executions (the observation
// sets of Section 4.2), including the determinism check of Section 2.1.2.
package history

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes call and return events.
type Kind int

const (
	// Call is an invocation event.
	Call Kind = iota
	// Return is a response event.
	Return
)

// Event is one element of a history: an invocation or response of an
// operation on the (single) object under test, associated with a thread.
type Event struct {
	Thread int    // logical thread index
	Kind   Kind   // Call or Return
	Op     string // operation display name, e.g. "Add(200)"
	Result string // canonical result string; Return events only
	Index  int    // dense per-execution operation identifier pairing call/return
}

// History is a finite sequence of events, optionally stuck (ending with the
// special symbol '#' of Section 2.3). All histories produced by the runner
// are well-formed: each thread subhistory is serial.
type History struct {
	Events []Event
	Stuck  bool
}

// Op is an operation of a history: an invocation with its matching response
// if present (Section 2.1.3).
type Op struct {
	Thread   int
	Name     string
	Result   string
	Complete bool
	CallPos  int // index of the call event in Events
	RetPos   int // index of the return event, -1 if pending
	Index    int // the operation identifier
}

// String renders the operation in the paper's bracketed-tuple form,
// [o i/r t] for complete and [o i/* t] for pending operations.
func (o Op) String() string {
	if o.Complete {
		return fmt.Sprintf("[%s/%s %d]", o.Name, o.Result, o.Thread)
	}
	return fmt.Sprintf("[%s/* %d]", o.Name, o.Thread)
}

// Ops extracts the operations of the history in call order.
func (h *History) Ops() []Op {
	byIndex := make(map[int]*Op)
	var order []int
	for pos, e := range h.Events {
		switch e.Kind {
		case Call:
			byIndex[e.Index] = &Op{
				Thread: e.Thread, Name: e.Op, CallPos: pos, RetPos: -1, Index: e.Index,
			}
			order = append(order, e.Index)
		case Return:
			op := byIndex[e.Index]
			if op == nil {
				panic("history: return without matching call")
			}
			op.Result = e.Result
			op.Complete = true
			op.RetPos = pos
		}
	}
	out := make([]Op, 0, len(order))
	for _, idx := range order {
		out = append(out, *byIndex[idx])
	}
	return out
}

// Pending returns the pending (incomplete) operations of the history.
func (h *History) Pending() []Op {
	var out []Op
	for _, op := range h.Ops() {
		if !op.Complete {
			out = append(out, op)
		}
	}
	return out
}

// Complete reports whether the history has no pending calls.
func (h *History) Complete() bool { return len(h.Pending()) == 0 }

// ThreadSub returns the thread subhistory H|t.
func (h *History) ThreadSub(t int) []Event {
	var out []Event
	for _, e := range h.Events {
		if e.Thread == t {
			out = append(out, e)
		}
	}
	return out
}

// WellFormed reports whether every thread subhistory is serial: it starts
// with a call, calls and returns alternate, and each return matches the
// immediately preceding call (Section 2.1.1).
func (h *History) WellFormed() bool {
	type st struct {
		pendingIdx int
		pending    bool
	}
	states := make(map[int]*st)
	for _, e := range h.Events {
		s := states[e.Thread]
		if s == nil {
			s = &st{}
			states[e.Thread] = s
		}
		switch e.Kind {
		case Call:
			if s.pending {
				return false
			}
			s.pending = true
			s.pendingIdx = e.Index
		case Return:
			if !s.pending || s.pendingIdx != e.Index {
				return false
			}
			s.pending = false
		}
	}
	return true
}

// Serial reports whether the whole history is serial: calls and returns
// alternate globally and each return matches the immediately preceding call.
// A stuck serial history may end with a single pending call.
func (h *History) Serial() bool {
	pending := false
	pendingIdx := -1
	for _, e := range h.Events {
		switch e.Kind {
		case Call:
			if pending {
				return false
			}
			pending = true
			pendingIdx = e.Index
		case Return:
			if !pending || e.Index != pendingIdx {
				return false
			}
			pending = false
		}
	}
	if pending && !h.Stuck {
		return false
	}
	return true
}

// Precedes reports e1 <H e2: the response of e1 precedes the invocation of
// e2 in the history (Section 2.1.3).
func Precedes(e1, e2 Op) bool {
	return e1.Complete && e1.RetPos < e2.CallPos
}

// Interleaving renders the history in the observation-file notation of
// Fig. 7: "1[ ]1 3[ ]3 ..." where i[ and ]i are the call and return of
// operation number i (1-based, numbered per observation grouping), with a
// trailing # for stuck histories. number maps operation Index to the 1-based
// display number.
func (h *History) Interleaving(number map[int]int) string {
	var b strings.Builder
	for i, e := range h.Events {
		if i > 0 {
			b.WriteByte(' ')
		}
		n := number[e.Index]
		if e.Kind == Call {
			fmt.Fprintf(&b, "%d[", n)
		} else {
			fmt.Fprintf(&b, "]%d", n)
		}
	}
	if h.Stuck {
		if len(h.Events) > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('#')
	}
	return b.String()
}

// String renders the history as a sequence of events, one per line, in the
// paper's (object op thread) notation.
func (h *History) String() string {
	var b strings.Builder
	for _, e := range h.Events {
		if e.Kind == Call {
			fmt.Fprintf(&b, "(call %s T%d)\n", e.Op, e.Thread)
		} else {
			fmt.Fprintf(&b, "(ret %s=%s T%d)\n", e.Op, e.Result, e.Thread)
		}
	}
	if h.Stuck {
		b.WriteString("#\n")
	}
	return b.String()
}

// Threads returns the sorted set of thread indices appearing in the history.
func (h *History) Threads() []int {
	seen := make(map[int]bool)
	for _, e := range h.Events {
		seen[e.Thread] = true
	}
	out := make([]int, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
