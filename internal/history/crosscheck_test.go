package history_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lineup/internal/history"
)

// bruteForceWitness is an independent implementation of the serial-witness
// check of Definition 1 (complete histories): it enumerates every
// linearization of the history's operations that respects both program
// order and the precedence order <H, and tests whether any of them appears
// in the specification's set of full serial histories. It is exponentially
// slower than Spec.WitnessFull but obviously correct, and serves as the
// oracle for the cross-check property test.
func bruteForceWitness(spec map[string]bool, h *history.History) bool {
	ops := h.Ops()
	n := len(ops)
	used := make([]bool, n)
	perm := make([]int, 0, n)
	perThreadNext := make(map[int]int)
	// Per-thread op order: ops are already in call order; for program order
	// we need each thread's ops taken in sequence.
	threadOps := make(map[int][]int)
	for i, op := range ops {
		threadOps[op.Thread] = append(threadOps[op.Thread], i)
	}
	var rec func() bool
	rec = func() bool {
		if len(perm) == n {
			key := ""
			for _, idx := range perm {
				key += ops[idx].Name + "|" + ops[idx].Result + "|" + string(rune('0'+ops[idx].Thread)) + ";"
			}
			return spec[key]
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			op := ops[i]
			// Program order: i must be the next unused op of its thread.
			if threadOps[op.Thread][perThreadNext[op.Thread]] != i {
				continue
			}
			// Precedence: every op that precedes i in <H must be placed.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && history.Precedes(ops[j], ops[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			perThreadNext[op.Thread]++
			if rec() {
				return true
			}
			perThreadNext[op.Thread]--
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

func serialKeyOf(s *history.SerialHistory) string {
	key := ""
	for _, op := range s.Ops {
		key += op.Name + "|" + op.Result + "|" + string(rune('0'+op.Thread)) + ";"
	}
	return key
}

// randomConcurrentHistory builds a random well-formed complete history over
// up to 3 threads and 5 operations.
func randomConcurrentHistory(rng *rand.Rand, methods, results []string) *history.History {
	nThreads := 1 + rng.Intn(3)
	type pending struct {
		idx  int
		name string
	}
	perThread := make([][]pending, nThreads)
	total := 1 + rng.Intn(5)
	idx := 0
	for i := 0; i < total; i++ {
		th := rng.Intn(nThreads)
		perThread[th] = append(perThread[th], pending{idx, methods[rng.Intn(len(methods))]})
		idx++
	}
	h := &history.History{}
	cursor := make([]int, nThreads)   // next op per thread
	inFlight := make([]int, nThreads) // -1 if none, else op idx
	for i := range inFlight {
		inFlight[i] = -1
	}
	remaining := total * 2
	for remaining > 0 {
		th := rng.Intn(nThreads)
		if inFlight[th] >= 0 {
			// Return the in-flight op.
			p := perThread[th][cursor[th]-1]
			h.Events = append(h.Events, history.Event{
				Thread: th, Kind: history.Return, Op: p.name,
				Result: results[rng.Intn(len(results))], Index: p.idx,
			})
			inFlight[th] = -1
			remaining--
			continue
		}
		if cursor[th] < len(perThread[th]) {
			p := perThread[th][cursor[th]]
			h.Events = append(h.Events, history.Event{
				Thread: th, Kind: history.Call, Op: p.name, Index: p.idx,
			})
			inFlight[th] = p.idx
			cursor[th]++
			remaining--
		}
	}
	// Fix up: returns got random results at return time; make call/return
	// results consistent (calls carry none).
	return h
}

// TestWitnessFullAgainstBruteForce cross-validates the production witness
// checker (signature grouping + pairwise order verification) against the
// brute-force linearization enumeration on random specs and histories.
func TestWitnessFullAgainstBruteForce(t *testing.T) {
	methods := []string{"a()", "b()", "c()"}
	results := []string{"0", "1", "ok"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := history.NewSpec()
		bfSpec := make(map[string]bool)
		for i := 0; i < 1+rng.Intn(6); i++ {
			var sh history.SerialHistory
			for j := 0; j < rng.Intn(5); j++ {
				sh.Ops = append(sh.Ops, history.SerialOp{
					Thread: rng.Intn(3),
					Name:   methods[rng.Intn(len(methods))],
					Result: results[rng.Intn(len(results))],
				})
			}
			spec.Add(&sh)
			bfSpec[serialKeyOf(&sh)] = true
		}
		h := randomConcurrentHistory(rng, methods, results)
		got, ok := spec.WitnessFull(h)
		want := bruteForceWitness(bfSpec, h)
		if ok != want {
			t.Logf("history:\n%s", h)
			t.Logf("witness=%v bruteforce=%v (found %v)", ok, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceStuckWitness is the oracle for Definition 2: for the reduced
// history H[e], enumerate every linearization of the completed operations
// (respecting program order and <H) followed by the pending invocation, and
// test membership in the stuck-spec set.
func bruteForceStuckWitness(stuckSpec map[string]bool, h *history.History, e history.Op) bool {
	var completed []history.Op
	for _, op := range h.Ops() {
		if op.Complete {
			completed = append(completed, op)
		}
	}
	n := len(completed)
	used := make([]bool, n)
	perm := make([]int, 0, n)
	perThreadNext := make(map[int]int)
	threadOps := make(map[int][]int)
	for i, op := range completed {
		threadOps[op.Thread] = append(threadOps[op.Thread], i)
	}
	var rec func() bool
	rec = func() bool {
		if len(perm) == n {
			key := ""
			for _, idx := range perm {
				op := completed[idx]
				key += op.Name + "|" + op.Result + "|" + string(rune('0'+op.Thread)) + ";"
			}
			key += "#" + e.Name + "|" + string(rune('0'+e.Thread))
			return stuckSpec[key]
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			op := completed[i]
			if threadOps[op.Thread][perThreadNext[op.Thread]] != i {
				continue
			}
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && history.Precedes(completed[j], completed[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			perThreadNext[op.Thread]++
			if rec() {
				return true
			}
			perThreadNext[op.Thread]--
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

func stuckKeyOf(s *history.SerialHistory) string {
	key := ""
	for _, op := range s.Ops {
		key += op.Name + "|" + op.Result + "|" + string(rune('0'+op.Thread)) + ";"
	}
	if s.Pending != nil {
		key += "#" + s.Pending.Name + "|" + string(rune('0'+s.Pending.Thread))
	}
	return key
}

// TestWitnessStuckAgainstBruteForce cross-validates the stuck-witness
// checker on random specs and random stuck histories.
func TestWitnessStuckAgainstBruteForce(t *testing.T) {
	methods := []string{"a()", "b()", "c()"}
	results := []string{"0", "1", "ok"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := history.NewSpec()
		bf := make(map[string]bool)
		for i := 0; i < 1+rng.Intn(6); i++ {
			var sh history.SerialHistory
			for j := 0; j < rng.Intn(4); j++ {
				sh.Ops = append(sh.Ops, history.SerialOp{
					Thread: rng.Intn(3),
					Name:   methods[rng.Intn(len(methods))],
					Result: results[rng.Intn(len(results))],
				})
			}
			sh.Pending = &history.SerialPending{
				Thread: rng.Intn(3),
				Name:   methods[rng.Intn(len(methods))],
			}
			spec.Add(&sh)
			bf[stuckKeyOf(&sh)] = true
		}
		// Random stuck history: a complete random history plus a pending
		// call by a thread not already pending.
		h := randomConcurrentHistory(rng, methods, results)
		h.Stuck = true
		pendThread := rng.Intn(3)
		h.Events = append(h.Events, history.Event{
			Thread: pendThread + 10, // fresh thread: keeps well-formedness trivially
			Kind:   history.Call,
			Op:     methods[rng.Intn(len(methods))],
			Index:  1000,
		})
		var pending history.Op
		for _, op := range h.Ops() {
			if !op.Complete {
				pending = op
			}
		}
		_, got := spec.WitnessStuck(h, pending)
		want := bruteForceStuckWitness(bf, h, pending)
		if got != want {
			t.Logf("history:\n%s", h)
			t.Logf("witness=%v bruteforce=%v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
