package history_test

import (
	"strings"
	"testing"

	"lineup/internal/history"
)

// fig2History builds the example history H of the paper's Fig. 2:
//
//	(c set(0) A) (c get B) (c ok A) (c inc A) (c ok(0) B) (c get B) (c ok(1) B)
//
// i.e. A: set(0) then inc (pending), B: get=0 then get=1 (second pending
// is completed by ok(1)). Thread A = 0, B = 1.
func fig2History() *history.History {
	return &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "set(0)", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 0, Kind: history.Return, Op: "set(0)", Result: "ok", Index: 0},
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 2},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "0", Index: 1},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 3},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "1", Index: 3},
	}}
}

func TestFig2ThreadSubhistories(t *testing.T) {
	h := fig2History()
	if !h.WellFormed() {
		t.Fatalf("Fig. 2 history should be well-formed")
	}
	subA := h.ThreadSub(0)
	if len(subA) != 3 {
		t.Fatalf("H|A should have 3 events, got %d", len(subA))
	}
	subB := h.ThreadSub(1)
	if len(subB) != 4 {
		t.Fatalf("H|B should have 4 events, got %d", len(subB))
	}
	// A's inc is pending.
	pend := h.Pending()
	if len(pend) != 1 || pend[0].Name != "inc()" || pend[0].Thread != 0 {
		t.Fatalf("expected pending inc by A, got %v", pend)
	}
	if h.Complete() {
		t.Fatalf("history with pending call reported complete")
	}
	if h.Serial() {
		t.Fatalf("overlapping history reported serial")
	}
	threads := h.Threads()
	if len(threads) != 2 || threads[0] != 0 || threads[1] != 1 {
		t.Fatalf("threads = %v", threads)
	}
}

func TestWellFormedRejectsBadHistories(t *testing.T) {
	// Return without call.
	bad := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Return, Op: "x", Index: 0},
	}}
	if bad.WellFormed() {
		t.Fatalf("return-before-call accepted")
	}
	// Two pending calls in one thread.
	bad = &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "x", Index: 0},
		{Thread: 0, Kind: history.Call, Op: "y", Index: 1},
	}}
	if bad.WellFormed() {
		t.Fatalf("double pending call accepted")
	}
	// Mismatched return.
	bad = &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "x", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "y", Index: 1},
	}}
	if bad.WellFormed() {
		t.Fatalf("mismatched return accepted")
	}
}

func TestPrecedes(t *testing.T) {
	h := fig2History()
	ops := h.Ops()
	// ops in call order: set(0) A, get B, inc A, get B.
	set, get1, inc, get2 := ops[0], ops[1], ops[2], ops[3]
	if !history.Precedes(set, inc) {
		t.Fatalf("set should precede inc")
	}
	if !history.Precedes(set, get2) {
		t.Fatalf("set should precede the second get")
	}
	if history.Precedes(set, get1) {
		t.Fatalf("set overlaps the first get")
	}
	if history.Precedes(get1, set) {
		t.Fatalf("first get overlaps set")
	}
	if history.Precedes(inc, get2) || history.Precedes(get2, inc) {
		t.Fatalf("pending inc overlaps the second get")
	}
}

func serial(ops ...history.SerialOp) *history.SerialHistory {
	return &history.SerialHistory{Ops: ops}
}

func so(thread int, name, result string) history.SerialOp {
	return history.SerialOp{Thread: thread, Name: name, Result: result}
}

func TestSpecNondeterminismDetection(t *testing.T) {
	// Fig. 3 / Section 2.1.2: after inc by A, get by B must deterministically
	// return 1; observing both 1 and 0 is nondeterminism.
	sp := history.NewSpec()
	sp.Add(serial(so(0, "inc()", "ok"), so(1, "get()", "1")))
	if _, bad := sp.Nondeterministic(); bad {
		t.Fatalf("single history flagged nondeterministic")
	}
	sp.Add(serial(so(0, "inc()", "ok"), so(1, "get()", "0")))
	w, bad := sp.Nondeterministic()
	if !bad {
		t.Fatalf("conflicting returns not flagged")
	}
	if w.Call != "get()" || w.Result1 == w.Result2 {
		t.Fatalf("bad witness: %v", w)
	}
	if !strings.Contains(w.String(), "get()") {
		t.Fatalf("witness rendering: %s", w)
	}
	h1, h2 := sp.ConflictingHistories()
	if h1 == nil || h2 == nil {
		t.Fatalf("conflicting histories not recorded")
	}
}

func TestSpecNondeterminismBlockVsReturn(t *testing.T) {
	// A call that sometimes returns and sometimes blocks after the same
	// serialized prefix is nondeterministic (Section 2.3).
	sp := history.NewSpec()
	sp.Add(serial(so(0, "dec()", "ok")))
	sp.Add(&history.SerialHistory{Pending: &history.SerialPending{Thread: 0, Name: "dec()"}})
	if _, bad := sp.Nondeterministic(); !bad {
		t.Fatalf("return-vs-block divergence not flagged")
	}
}

func TestSpecDifferentSchedulesAreNotNondeterminism(t *testing.T) {
	// Different interleavings with different results are fine as long as
	// each serialized prefix determines the next response.
	sp := history.NewSpec()
	sp.Add(serial(so(0, "inc()", "ok"), so(1, "get()", "1")))
	sp.Add(serial(so(1, "get()", "0"), so(0, "inc()", "ok")))
	if w, bad := sp.Nondeterministic(); bad {
		t.Fatalf("scheduler choice flagged as nondeterminism: %v", w)
	}
}

func TestWitnessFullBasic(t *testing.T) {
	sp := history.NewSpec()
	sp.Add(serial(so(0, "inc()", "ok"), so(1, "get()", "1")))
	sp.Add(serial(so(1, "get()", "0"), so(0, "inc()", "ok")))

	// Overlapping inc and get returning 0: witnessed by get-first.
	h := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "0", Index: 1},
		{Thread: 0, Kind: history.Return, Op: "inc()", Result: "ok", Index: 0},
	}}
	if _, ok := sp.WitnessFull(h); !ok {
		t.Fatalf("overlapping history should be witnessed")
	}

	// inc strictly before get returning 0: no witness (get must see 1).
	h = &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "inc()", Result: "ok", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "0", Index: 1},
	}}
	if _, ok := sp.WitnessFull(h); ok {
		t.Fatalf("ordered inc;get=0 must not be witnessed")
	}
}

func TestWitnessRespectsProgramOrder(t *testing.T) {
	// The witness must preserve per-thread order even for overlapping
	// operations: thread signatures with swapped results do not match.
	sp := history.NewSpec()
	sp.Add(serial(so(0, "a()", "1"), so(0, "b()", "2")))
	h := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "a()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "a()", Result: "2", Index: 0},
		{Thread: 0, Kind: history.Call, Op: "b()", Index: 1},
		{Thread: 0, Kind: history.Return, Op: "b()", Result: "1", Index: 1},
	}}
	if _, ok := sp.WitnessFull(h); ok {
		t.Fatalf("swapped results witnessed")
	}
}

func TestWitnessStuckBasic(t *testing.T) {
	sp := history.NewSpec()
	// Serial behaviors of a one-permit semaphore: wait;wait blocks, and a
	// bare wait succeeds.
	sp.Add(serial(so(0, "wait()", "ok")))
	sp.Add(&history.SerialHistory{
		Ops:     []history.SerialOp{{Thread: 0, Name: "wait()", Result: "ok"}},
		Pending: &history.SerialPending{Thread: 1, Name: "wait()"},
	})

	// Concurrent: A's wait completed, B's wait stuck — witnessed.
	h := &history.History{Stuck: true, Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "wait()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "wait()", Result: "ok", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "wait()", Index: 1},
	}}
	pending := h.Pending()
	if len(pending) != 1 {
		t.Fatalf("expected one pending op")
	}
	if _, ok := sp.WitnessStuck(h, pending[0]); !ok {
		t.Fatalf("stuck wait should be witnessed")
	}

	// A stuck wait by thread 0 (no completed ops) has no witness in this
	// spec (the spec says a bare wait succeeds).
	h = &history.History{Stuck: true, Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "wait()", Index: 0},
	}}
	if _, ok := sp.WitnessStuck(h, h.Pending()[0]); ok {
		t.Fatalf("unjustified stuck wait witnessed")
	}
}

func TestInterleavingRendering(t *testing.T) {
	h := fig2History()
	num := map[int]int{0: 1, 2: 2, 1: 3, 3: 4}
	s := h.Interleaving(num)
	want := "1[ 3[ ]1 2[ ]3 4[ ]4"
	if s != want {
		t.Fatalf("interleaving = %q, want %q", s, want)
	}
	h.Stuck = true
	if got := h.Interleaving(num); !strings.HasSuffix(got, "#") {
		t.Fatalf("stuck marker missing: %q", got)
	}
}

func TestToSerialRoundtrip(t *testing.T) {
	h := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "a()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "a()", Result: "1", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "b()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "b()", Result: "2", Index: 1},
	}}
	s := history.ToSerial(h)
	if len(s.Ops) != 2 || s.Pending != nil {
		t.Fatalf("bad conversion: %v", s)
	}
	if s.Ops[0].Name != "a()" || s.Ops[1].Result != "2" {
		t.Fatalf("bad ops: %v", s.Ops)
	}
	if s.Key() == "" || s.String() == "" {
		t.Fatalf("empty renderings")
	}
}

func TestSerialHistoryIsItsOwnWitness(t *testing.T) {
	// Fundamental soundness property: every serial history added to a spec
	// witnesses the history it came from.
	sp := history.NewSpec()
	h := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "a()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "a()", Result: "1", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "b()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "b()", Result: "2", Index: 1},
		{Thread: 0, Kind: history.Call, Op: "c()", Index: 2},
		{Thread: 0, Kind: history.Return, Op: "c()", Result: "3", Index: 2},
	}}
	sp.Add(history.ToSerial(h))
	if _, ok := sp.WitnessFull(h); !ok {
		t.Fatalf("serial history not witnessed by itself")
	}
}

func TestWitnessClassicCompletesPendingOps(t *testing.T) {
	sp := history.NewSpec()
	sp.Add(serial(so(0, "inc()", "ok"), so(1, "get()", "1")))
	// inc pending, get=1 complete: classic linearizability may deem the inc
	// completed (append its return), so the history is accepted...
	h := &history.History{Stuck: true, Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "1", Index: 1},
	}}
	if _, ok := sp.WitnessClassic(h); !ok {
		t.Fatalf("classic witness with completed pending op not found")
	}
	// ...and may also drop a pending op entirely: get=0 with a pending inc
	// is witnessed by the prefix that omits the inc.
	sp.Add(serial(so(1, "get()", "0"), so(0, "inc()", "ok")))
	h = &history.History{Stuck: true, Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "0", Index: 1},
	}}
	if _, ok := sp.WitnessClassic(h); !ok {
		t.Fatalf("classic witness with dropped pending op not found")
	}
	// But a completed operation with the wrong value stays rejected.
	h = &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "inc()", Index: 0},
		{Thread: 0, Kind: history.Return, Op: "inc()", Result: "ok", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "get()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "get()", Result: "0", Index: 1},
	}}
	if _, ok := sp.WitnessClassic(h); ok {
		t.Fatalf("classic witness accepted a wrong value")
	}
}
