package history

import (
	"fmt"
	"sort"
	"strings"
)

// SerialOp is one completed operation of a serial history.
type SerialOp struct {
	Thread int
	Name   string
	Result string
}

// SerialPending is the trailing pending invocation of a stuck serial history.
type SerialPending struct {
	Thread int
	Name   string
}

// SerialHistory is a serial history in compact form: completed operations in
// execution order, plus the pending invocation if the history is stuck (the
// form H(o i t)# of Section 2.3).
type SerialHistory struct {
	Ops     []SerialOp
	Pending *SerialPending
}

// Stuck reports whether the serial history is stuck.
func (s *SerialHistory) Stuck() bool { return s.Pending != nil }

// Key is a canonical encoding of the serial history, used for deduplication.
func (s *SerialHistory) Key() string {
	var b strings.Builder
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "%d:%s=%s;", op.Thread, op.Name, op.Result)
	}
	if s.Pending != nil {
		fmt.Fprintf(&b, "%d:%s=#", s.Pending.Thread, s.Pending.Name)
	}
	return b.String()
}

// String renders the serial history as a readable one-liner.
func (s *SerialHistory) String() string {
	parts := make([]string, 0, len(s.Ops)+1)
	for _, op := range s.Ops {
		parts = append(parts, fmt.Sprintf("T%d:%s=%s", op.Thread, op.Name, op.Result))
	}
	if s.Pending != nil {
		parts = append(parts, fmt.Sprintf("T%d:%s #", s.Pending.Thread, s.Pending.Name))
	}
	return strings.Join(parts, " ")
}

// ToSerial converts a serial History into its compact form. It panics if the
// history is not serial (a framework bug, since only phase-1 executions are
// converted).
func ToSerial(h *History) *SerialHistory {
	if !h.Serial() {
		panic("history: ToSerial on a non-serial history")
	}
	s := &SerialHistory{}
	for _, op := range h.Ops() {
		if op.Complete {
			s.Ops = append(s.Ops, SerialOp{Thread: op.Thread, Name: op.Name, Result: op.Result})
		} else {
			s.Pending = &SerialPending{Thread: op.Thread, Name: op.Name}
		}
	}
	if h.Stuck && s.Pending == nil {
		// A stuck serial execution whose last running thread blocked before
		// invoking any operation has no pending call; it contributes no
		// stuck witness and is not expected here.
		panic("history: stuck serial history without pending operation")
	}
	return s
}

// threadSignature computes the grouping key of Section 4.2: the sequence of
// (operation, result) pairs per thread, with the pending operation (if any)
// marked. Histories with equal signatures are candidates for witnessing each
// other.
func threadSignature(perThread map[int][]SerialOp, pending *SerialPending) string {
	threads := make([]int, 0, len(perThread))
	for t := range perThread {
		threads = append(threads, t)
	}
	if pending != nil {
		if _, ok := perThread[pending.Thread]; !ok {
			threads = append(threads, pending.Thread)
		}
	}
	sort.Ints(threads)
	var b strings.Builder
	for _, t := range threads {
		fmt.Fprintf(&b, "T%d{", t)
		for _, op := range perThread[t] {
			fmt.Fprintf(&b, "%s=%s;", op.Name, op.Result)
		}
		if pending != nil && pending.Thread == t {
			fmt.Fprintf(&b, "%s=#;", pending.Name)
		}
		b.WriteString("}")
	}
	return b.String()
}

// fullSignature is the grouping key of a complete serial history.
func (s *SerialHistory) fullSignature() string {
	per := make(map[int][]SerialOp)
	for _, op := range s.Ops {
		per[op.Thread] = append(per[op.Thread], op)
	}
	return threadSignature(per, s.Pending)
}

// NondetWitness reports a violation of determinism (line 4 of Fig. 5): two
// serial histories whose longest common prefix ends in a call, i.e. the same
// serialized prefix and the same next invocation continued with different
// responses (or one response and one block).
type NondetWitness struct {
	Prefix  []SerialOp
	Thread  int
	Call    string
	Result1 string // first observed continuation ("#" = blocked)
	Result2 string // conflicting continuation
}

// String renders the witness for reports.
func (w *NondetWitness) String() string {
	parts := make([]string, 0, len(w.Prefix))
	for _, op := range w.Prefix {
		parts = append(parts, fmt.Sprintf("T%d:%s=%s", op.Thread, op.Name, op.Result))
	}
	return fmt.Sprintf("after serial prefix [%s], call T%d:%s returned both %q and %q",
		strings.Join(parts, " "), w.Thread, w.Call, w.Result1, w.Result2)
}

type contEntry struct {
	result string
	hist   *SerialHistory
}

// Spec is a specification synthesized from serial executions: the sets A
// (full serial histories) and B (stuck serial histories) of Fig. 5, grouped
// by thread signature as in the observation-file format, together with an
// incremental determinism check.
type Spec struct {
	full      map[string][]*SerialHistory
	stuck     map[string][]*SerialHistory
	groups    []string // group keys in first-seen order (full and stuck share keys)
	dedup     map[string]bool
	nondet    map[string]contEntry
	conflict  *NondetWitness
	conflictH [2]*SerialHistory
	nFull     int
	nStuck    int
}

// NewSpec creates an empty specification.
func NewSpec() *Spec {
	return &Spec{
		full:   make(map[string][]*SerialHistory),
		stuck:  make(map[string][]*SerialHistory),
		dedup:  make(map[string]bool),
		nondet: make(map[string]contEntry),
	}
}

// Add records one serial history (full or stuck) into the specification,
// updating the determinism check.
func (sp *Spec) Add(s *SerialHistory) {
	if sp.dedup[s.Key()] {
		return
	}
	sp.dedup[s.Key()] = true
	sig := s.fullSignature()
	if _, seen := sp.full[sig]; !seen {
		if _, seen2 := sp.stuck[sig]; !seen2 {
			sp.groups = append(sp.groups, sig)
		}
	}
	if s.Stuck() {
		sp.stuck[sig] = append(sp.stuck[sig], s)
		sp.nStuck++
	} else {
		sp.full[sig] = append(sp.full[sig], s)
		sp.nFull++
	}
	sp.updateNondet(s)
}

func prefixKey(ops []SerialOp, thread int, call string) string {
	var b strings.Builder
	for _, op := range ops {
		fmt.Fprintf(&b, "%d:%s=%s;", op.Thread, op.Name, op.Result)
	}
	fmt.Fprintf(&b, "||%d:%s", thread, call)
	return b.String()
}

func (sp *Spec) noteContinuation(s *SerialHistory, prefix []SerialOp, thread int, call, result string) {
	key := prefixKey(prefix, thread, call)
	if prev, ok := sp.nondet[key]; ok {
		if prev.result != result && sp.conflict == nil {
			cp := make([]SerialOp, len(prefix))
			copy(cp, prefix)
			sp.conflict = &NondetWitness{
				Prefix: cp, Thread: thread, Call: call,
				Result1: prev.result, Result2: result,
			}
			sp.conflictH = [2]*SerialHistory{prev.hist, s}
		}
		return
	}
	sp.nondet[key] = contEntry{result: result, hist: s}
}

func (sp *Spec) updateNondet(s *SerialHistory) {
	for k := range s.Ops {
		sp.noteContinuation(s, s.Ops[:k], s.Ops[k].Thread, s.Ops[k].Name, s.Ops[k].Result)
	}
	if s.Pending != nil {
		sp.noteContinuation(s, s.Ops, s.Pending.Thread, s.Pending.Name, "#")
	}
}

// Nondeterministic reports whether the recorded set of serial histories is
// nondeterministic, together with a witness.
func (sp *Spec) Nondeterministic() (*NondetWitness, bool) {
	return sp.conflict, sp.conflict != nil
}

// ConflictingHistories returns the two serial histories that witnessed
// nondeterminism (nil, nil if the spec is deterministic).
func (sp *Spec) ConflictingHistories() (*SerialHistory, *SerialHistory) {
	return sp.conflictH[0], sp.conflictH[1]
}

// NumFull returns the number of distinct full serial histories (the |A| of
// the paper's phase-1 statistics).
func (sp *Spec) NumFull() int { return sp.nFull }

// NumStuck returns the number of distinct stuck serial histories (|B|).
func (sp *Spec) NumStuck() int { return sp.nStuck }

// Groups returns the group keys in first-seen order.
func (sp *Spec) Groups() []string { return sp.groups }

// GroupHistories returns the full and stuck serial histories of a group.
func (sp *Spec) GroupHistories(sig string) (full, stuck []*SerialHistory) {
	return sp.full[sig], sp.stuck[sig]
}

// opKey identifies an operation of a history by thread and per-thread
// position, which is the identity shared between a concurrent history and a
// candidate serial witness with equal signature.
type opKey struct {
	thread int
	pos    int
}

func positions(s *SerialHistory) map[opKey]int {
	perThread := make(map[int]int)
	pos := make(map[opKey]int, len(s.Ops))
	for i, op := range s.Ops {
		k := opKey{op.Thread, perThread[op.Thread]}
		perThread[op.Thread]++
		pos[k] = i
	}
	return pos
}

// WitnessFull reports whether the complete concurrent history h has a serial
// witness in the specification's full set (Definition 1 restricted to
// complete histories): a serial history S with the same thread subhistories
// such that <H ⊆ <S.
func (sp *Spec) WitnessFull(h *History) (*SerialHistory, bool) {
	ops := h.Ops()
	per := make(map[int][]SerialOp)
	perThreadPos := make(map[int]int)
	keys := make([]opKey, len(ops))
	for i, op := range ops {
		if !op.Complete {
			return nil, false // not a full history; caller error
		}
		keys[i] = opKey{op.Thread, perThreadPos[op.Thread]}
		perThreadPos[op.Thread]++
		per[op.Thread] = append(per[op.Thread], SerialOp{Thread: op.Thread, Name: op.Name, Result: op.Result})
	}
	sig := threadSignature(per, nil)
	candidates := sp.full[sig]
	if len(candidates) == 0 {
		return nil, false
	}
	// Precedence pairs of <H.
	type pair struct{ a, b int } // indices into ops
	var pairs []pair
	for i := range ops {
		for j := range ops {
			if i != j && Precedes(ops[i], ops[j]) {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	for _, cand := range candidates {
		pos := positions(cand)
		ok := true
		for _, p := range pairs {
			if pos[keys[p.a]] >= pos[keys[p.b]] {
				ok = false
				break
			}
		}
		if ok {
			return cand, true
		}
	}
	return nil, false
}

// WitnessSeqCon reports whether the complete concurrent history h has a
// sequentially consistent witness in the specification's full set: a serial
// history with the same thread subhistories (program order and per-thread
// results), with no real-time constraint at all. Because every candidate in
// a signature group preserves per-thread order by construction, sequential
// consistency relative to the spec reduces to group non-emptiness. It is
// strictly weaker than WitnessFull: any linearizability witness is also a
// sequential-consistency witness.
func (sp *Spec) WitnessSeqCon(h *History) (*SerialHistory, bool) {
	ops := h.Ops()
	per := make(map[int][]SerialOp)
	for _, op := range ops {
		if !op.Complete {
			return nil, false // not a full history; caller error
		}
		per[op.Thread] = append(per[op.Thread], SerialOp{Thread: op.Thread, Name: op.Name, Result: op.Result})
	}
	candidates := sp.full[threadSignature(per, nil)]
	if len(candidates) == 0 {
		return nil, false
	}
	return candidates[0], true
}

// quiescentBlocks assigns each operation of h to a quiescence block: a
// quiescent point is an instant with no operation pending, and the points
// partition the operations into blocks (every operation's call and return
// fall inside one block). Quiescent consistency keeps real-time order only
// across quiescent points: operations of earlier blocks must precede
// operations of later blocks in the witness, operations within one block may
// be reordered freely. The returned slice is indexed like h.Ops().
func quiescentBlocks(h *History, ops []Op) []int {
	// blockAt[p] is the block of an operation whose call event sits at
	// position p: the number of quiescent points strictly before p.
	blockAt := make([]int, len(h.Events)+1)
	pending, block := 0, 0
	for p, e := range h.Events {
		if p > 0 && pending == 0 {
			block++
		}
		blockAt[p] = block
		if e.Kind == Call {
			pending++
		} else {
			pending--
		}
	}
	out := make([]int, len(ops))
	for i, op := range ops {
		out[i] = blockAt[op.CallPos]
	}
	return out
}

// WitnessQuiescent reports whether the complete concurrent history h has a
// quiescently consistent witness in the specification's full set: a serial
// history with the same thread subhistories that orders any two operations
// separated by a quiescent point (an instant with no pending operation) the
// same way h does. The constraint set is a subset of WitnessFull's real-time
// pairs — an operation pair with ret(a) before call(b) but no intervening
// quiescent point is unconstrained — so any linearizability witness is also
// a quiescent-consistency witness, and the criterion is incomparable in
// general but, relative to a phase-1 spec (whose serial histories all
// preserve program order), strictly between linearizability and sequential
// consistency.
func (sp *Spec) WitnessQuiescent(h *History) (*SerialHistory, bool) {
	ops := h.Ops()
	per := make(map[int][]SerialOp)
	perThreadPos := make(map[int]int)
	keys := make([]opKey, len(ops))
	for i, op := range ops {
		if !op.Complete {
			return nil, false // not a full history; caller error
		}
		keys[i] = opKey{op.Thread, perThreadPos[op.Thread]}
		perThreadPos[op.Thread]++
		per[op.Thread] = append(per[op.Thread], SerialOp{Thread: op.Thread, Name: op.Name, Result: op.Result})
	}
	candidates := sp.full[threadSignature(per, nil)]
	if len(candidates) == 0 {
		return nil, false
	}
	blocks := quiescentBlocks(h, ops)
	type pair struct{ a, b int }
	var pairs []pair
	for i := range ops {
		for j := range ops {
			if i != j && blocks[i] < blocks[j] {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	for _, cand := range candidates {
		pos := positions(cand)
		ok := true
		for _, p := range pairs {
			if pos[keys[p.a]] >= pos[keys[p.b]] {
				ok = false
				break
			}
		}
		if ok {
			return cand, true
		}
	}
	return nil, false
}

// WitnessStuck reports whether the reduced stuck history H[e] — h with all
// pending calls except e removed — has a stuck serial witness in the
// specification's stuck set (Definition 2). e must be a pending operation
// of h.
func (sp *Spec) WitnessStuck(h *History, e Op) (*SerialHistory, bool) {
	ops := h.Ops()
	per := make(map[int][]SerialOp)
	perThreadPos := make(map[int]int)
	var completed []Op
	var keys []opKey
	for _, op := range ops {
		if !op.Complete {
			continue
		}
		keys = append(keys, opKey{op.Thread, perThreadPos[op.Thread]})
		perThreadPos[op.Thread]++
		per[op.Thread] = append(per[op.Thread], SerialOp{Thread: op.Thread, Name: op.Name, Result: op.Result})
		completed = append(completed, op)
	}
	pending := &SerialPending{Thread: e.Thread, Name: e.Name}
	sig := threadSignature(per, pending)
	candidates := sp.stuck[sig]
	if len(candidates) == 0 {
		return nil, false
	}
	type pair struct{ a, b int }
	var pairs []pair
	for i := range completed {
		for j := range completed {
			if i != j && Precedes(completed[i], completed[j]) {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	for _, cand := range candidates {
		if cand.Pending == nil || cand.Pending.Thread != e.Thread || cand.Pending.Name != e.Name {
			continue
		}
		pos := positions(cand)
		ok := true
		for _, p := range pairs {
			if pos[keys[p.a]] >= pos[keys[p.b]] {
				ok = false
				break
			}
		}
		if ok {
			return cand, true
		}
	}
	return nil, false
}

// Export returns every serial history of the specification in a
// deterministic order: groups in first-seen order, full histories before
// stuck ones within each group, insertion order within each set. Feeding the
// result to ImportSpec rebuilds an equivalent specification — same groups in
// the same order, same candidate order per group, same determinism verdict —
// so a coordinator can ship a synthesized phase-1 spec to worker processes
// and have them produce byte-identical reports without re-synthesizing.
func (sp *Spec) Export() []*SerialHistory {
	out := make([]*SerialHistory, 0, sp.nFull+sp.nStuck)
	for _, sig := range sp.groups {
		out = append(out, sp.full[sig]...)
		out = append(out, sp.stuck[sig]...)
	}
	return out
}

// ImportSpec rebuilds a specification from Export's output.
func ImportSpec(hs []*SerialHistory) *Spec {
	sp := NewSpec()
	for _, s := range hs {
		sp.Add(s)
	}
	return sp
}
