package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"lineup/internal/core"
	"lineup/internal/monitor"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// ParallelRow is one sequential-vs-parallel measurement: the same exhaustive
// phase-2 exploration of one subject, run with a given worker count.
type ParallelRow struct {
	Class      string
	Workers    int // 1 = the sequential explorer
	CPUs       int // runtime.NumCPU() of the measuring machine
	Bound      int
	Executions int // schedules explored in phase 2
	Histories  int // distinct phase-2 histories (full + stuck)
	Pruned     int // branches skipped by reduction (0 when off)
	DedupHits  int // history-cache hits in phase 2
	Verdict    string
	Wall       time.Duration
	// Speedup is Wall(workers=1) / Wall for the same class; 1.0 for the
	// sequential row itself. Speedups above 1 require free CPUs: on a
	// single-core machine every worker count measures the same wall time,
	// which is why the rows record CPUs.
	Speedup float64
}

// ParallelOptions parameterizes RunParallel.
type ParallelOptions struct {
	// Workers lists the worker counts to measure; the default is 1, 2, 4, 8.
	// A leading 1 is forced (it is the speedup baseline).
	Workers []int
	// Repeat measures each configuration this many times and keeps the best
	// wall time (default 1); exploration work is deterministic, so repeats
	// only reduce scheduler noise.
	Repeat int
	// Scale adds the larger-matrix scalability class: a three-thread
	// ManualResetEvent(Pre) scenario whose exhaustive exploration runs for
	// seconds rather than milliseconds. The small default workloads finish
	// so quickly that shard setup dominates and speedups hover around 1x
	// regardless of the machine; the scaled class is where worker counts
	// separate (on a multi-core machine).
	Scale bool
	// Reduction applies the sleep-set partial-order reduction to every
	// measured exploration (identical verdicts, fewer schedules).
	Reduction sched.Reduction
	// Telemetry, when non-nil, is shared by every measured exploration
	// (core.Options.Telemetry). Note that counters then include every repeat
	// and worker count, so the collector reflects the whole benchmark run,
	// not one configuration.
	Telemetry *telemetry.Collector
	// Witness selects phase 2's witness decision backend for every measured
	// exploration (core.Options.WitnessSearch). The monitor and fast
	// backends replay histories against each workload's executable model
	// (Fig. 1 → queue, Fig. 9 → mre) instead of the phase-1 spec set;
	// phase 1 itself still runs for the nondeterminism check.
	Witness core.WitnessSearch
}

// parallelModels maps each measured cause case to its executable monitor
// model, consulted when the monitor or fast witness backend is selected.
var parallelModels = map[Cause]string{CauseA: "mre", CauseB: "queue"}

func (o ParallelOptions) withDefaults() ParallelOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Workers[0] != 1 {
		o.Workers = append([]int{1}, o.Workers...)
	}
	if o.Repeat <= 0 {
		o.Repeat = 1
	}
	return o
}

// parallelSubjects returns the benchmark workload: the Fig. 1
// (BlockingCollection) and Fig. 9 (ManualResetEvent) scenarios on both the
// buggy (Pre) subject the figure describes and its fixed counterpart, each
// with the directed test and preemption bound of its cause case.
func parallelSubjects() []CauseCase {
	var out []CauseCase
	for _, c := range CauseCases() {
		if c.Cause == CauseA || c.Cause == CauseB {
			out = append(out, c)
		}
	}
	return out
}

// scaleCase builds the scalability workload: the Fig. 9 scenario with a
// second waiter thread at preemption bound 3, whose exhaustive exploration
// runs ~80k schedules. Derived from the directed cause-A case so the
// invocations stay in sync with the registry.
func scaleCase() CauseCase {
	for _, c := range CauseCases() {
		if c.Cause != CauseA {
			continue
		}
		wait := c.Test.Rows[0][0]
		m := c.Test.Clone()
		m.Rows = append(m.Rows, []core.Op{wait})
		sub := &core.Subject{
			Name:        c.Subject.Name + " 3x",
			New:         c.Subject.New,
			Ops:         c.Subject.Ops,
			SourceFiles: c.Subject.SourceFiles,
		}
		return CauseCase{
			Cause:    c.Cause,
			Subject:  sub,
			Test:     m,
			Bound:    3,
			WantKind: c.WantKind,
			Note:     "scalability: Fig. 9 with a second waiter",
		}
	}
	panic("bench: no cause-A case in the registry")
}

// RunParallel measures exhaustive phase-2 exploration wall times of the
// Fig. 1/Fig. 9 subjects at each worker count. All runs use ExhaustPhase2 so
// every configuration explores exactly the same schedule space (verdicts do
// not truncate the work), which makes the wall times directly comparable and
// lets the row assert that executions and verdicts are identical across
// worker counts.
func RunParallel(opts ParallelOptions, progress func(string)) ([]ParallelRow, error) {
	opts = opts.withDefaults()
	cases := parallelSubjects()
	if opts.Scale {
		cases = append(cases, scaleCase())
	}
	var rows []ParallelRow
	for _, c := range cases {
		for _, sub := range []*core.Subject{c.Subject, c.Counterpart} {
			if sub == nil {
				continue
			}
			baseWall := time.Duration(0)
			for _, w := range opts.Workers {
				if progress != nil {
					progress(fmt.Sprintf("%s workers=%d", sub.Name, w))
				}
				copts := core.Options{
					PreemptionBound: c.Bound,
					ExhaustPhase2:   true,
					Workers:         w,
					Reduction:       opts.Reduction,
					Telemetry:       opts.Telemetry,
				}
				if opts.Witness != core.WitnessSpec {
					name, ok := parallelModels[c.Cause]
					if !ok {
						return nil, fmt.Errorf("bench: parallel %s: no monitor model for cause %s", sub.Name, c.Cause)
					}
					model, ok := monitor.Builtin(name)
					if !ok {
						return nil, fmt.Errorf("bench: parallel %s: no builtin model %q", sub.Name, name)
					}
					copts.WitnessSearch = opts.Witness
					copts.MonitorModel = model
				}
				var res *core.Result
				best := time.Duration(0)
				for rep := 0; rep < opts.Repeat; rep++ {
					r, err := core.Check(sub, c.Test, copts)
					if err != nil {
						return nil, fmt.Errorf("bench: parallel %s workers=%d: %w", sub.Name, w, err)
					}
					if res == nil {
						res = r
					}
					if best == 0 || r.Phase2.Duration < best {
						best = r.Phase2.Duration
					}
				}
				row := ParallelRow{
					Class:      sub.Name,
					Workers:    w,
					CPUs:       runtime.NumCPU(),
					Bound:      c.Bound,
					Executions: res.Phase2.Executions,
					Histories:  res.Phase2.Histories + res.Phase2.Stuck,
					Pruned:     res.Phase2.Pruned,
					DedupHits:  res.Phase2.DedupHits,
					Verdict:    res.Verdict.String(),
					Wall:       best,
					Speedup:    1,
				}
				if w == 1 {
					baseWall = best
				} else if best > 0 {
					row.Speedup = float64(baseWall) / float64(best)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// WriteParallel renders the sequential-vs-parallel rows.
func WriteParallel(w io.Writer, rows []ParallelRow) {
	fmt.Fprintf(w, "%-32s %7s %4s %3s | %10s %9s %9s %7s | %10s %8s\n",
		"Class", "workers", "cpus", "PB", "schedules", "histories", "dedup", "verdict", "wall", "speedup")
	fmt.Fprintln(w, strings.Repeat("-", 116))
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %7d %4d %3d | %10d %9d %9d %7s | %10s %7.2fx\n",
			r.Class, r.Workers, r.CPUs, r.Bound, r.Executions, r.Histories, r.DedupHits, r.Verdict,
			round(r.Wall), r.Speedup)
	}
}
