package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"lineup/internal/core"
)

// ParallelRow is one sequential-vs-parallel measurement: the same exhaustive
// phase-2 exploration of one subject, run with a given worker count.
type ParallelRow struct {
	Class      string
	Workers    int // 1 = the sequential explorer
	Bound      int
	Executions int // schedules explored in phase 2
	Histories  int // distinct phase-2 histories (full + stuck)
	Verdict    string
	Wall       time.Duration
	// Speedup is Wall(workers=1) / Wall for the same class; 1.0 for the
	// sequential row itself.
	Speedup float64
}

// ParallelOptions parameterizes RunParallel.
type ParallelOptions struct {
	// Workers lists the worker counts to measure; the default is 1, 2, 4, 8.
	// A leading 1 is forced (it is the speedup baseline).
	Workers []int
	// Repeat measures each configuration this many times and keeps the best
	// wall time (default 1); exploration work is deterministic, so repeats
	// only reduce scheduler noise.
	Repeat int
}

func (o ParallelOptions) withDefaults() ParallelOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Workers[0] != 1 {
		o.Workers = append([]int{1}, o.Workers...)
	}
	if o.Repeat <= 0 {
		o.Repeat = 1
	}
	return o
}

// parallelSubjects returns the benchmark workload: the Fig. 1
// (BlockingCollection) and Fig. 9 (ManualResetEvent) scenarios on both the
// buggy (Pre) subject the figure describes and its fixed counterpart, each
// with the directed test and preemption bound of its cause case.
func parallelSubjects() []CauseCase {
	var out []CauseCase
	for _, c := range CauseCases() {
		if c.Cause == CauseA || c.Cause == CauseB {
			out = append(out, c)
		}
	}
	return out
}

// RunParallel measures exhaustive phase-2 exploration wall times of the
// Fig. 1/Fig. 9 subjects at each worker count. All runs use ExhaustPhase2 so
// every configuration explores exactly the same schedule space (verdicts do
// not truncate the work), which makes the wall times directly comparable and
// lets the row assert that executions and verdicts are identical across
// worker counts.
func RunParallel(opts ParallelOptions, progress func(string)) ([]ParallelRow, error) {
	opts = opts.withDefaults()
	var rows []ParallelRow
	for _, c := range parallelSubjects() {
		for _, sub := range []*core.Subject{c.Subject, c.Counterpart} {
			if sub == nil {
				continue
			}
			baseWall := time.Duration(0)
			for _, w := range opts.Workers {
				if progress != nil {
					progress(fmt.Sprintf("%s workers=%d", sub.Name, w))
				}
				copts := core.Options{
					PreemptionBound: c.Bound,
					ExhaustPhase2:   true,
					Workers:         w,
				}
				var res *core.Result
				best := time.Duration(0)
				for rep := 0; rep < opts.Repeat; rep++ {
					r, err := core.Check(sub, c.Test, copts)
					if err != nil {
						return nil, fmt.Errorf("bench: parallel %s workers=%d: %w", sub.Name, w, err)
					}
					if res == nil {
						res = r
					}
					if best == 0 || r.Phase2.Duration < best {
						best = r.Phase2.Duration
					}
				}
				row := ParallelRow{
					Class:      sub.Name,
					Workers:    w,
					Bound:      c.Bound,
					Executions: res.Phase2.Executions,
					Histories:  res.Phase2.Histories + res.Phase2.Stuck,
					Verdict:    res.Verdict.String(),
					Wall:       best,
					Speedup:    1,
				}
				if w == 1 {
					baseWall = best
				} else if best > 0 {
					row.Speedup = float64(baseWall) / float64(best)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// WriteParallel renders the sequential-vs-parallel rows.
func WriteParallel(w io.Writer, rows []ParallelRow) {
	fmt.Fprintf(w, "%-28s %7s %3s | %10s %9s %7s | %10s %8s\n",
		"Class", "workers", "PB", "schedules", "histories", "verdict", "wall", "speedup")
	fmt.Fprintln(w, strings.Repeat("-", 100))
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %7d %3d | %10d %9d %7s | %10s %7.2fx\n",
			r.Class, r.Workers, r.Bound, r.Executions, r.Histories, r.Verdict,
			round(r.Wall), r.Speedup)
	}
}
