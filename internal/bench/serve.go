package bench

import (
	"fmt"
	"time"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
	"lineup/internal/telemetry"
)

// ServeLoadOptions configures a streaming-service load run: explorer-emitted
// histories of the Fig. 1 scenario (corrected BlockingCollection, so every
// history is linearizable) are replayed across Partitions independent
// partition keys until Ops operations have been ingested, through a
// serve.Server with the given worker-pool and window configuration.
type ServeLoadOptions struct {
	// Ops is the target number of completed operations per run.
	Ops int64
	// Partitions is the number of distinct partition keys the load is
	// spread over (default 16).
	Partitions int
	// Workers are the serve worker-pool sizes to measure, one row each
	// (default {1}).
	Workers []int
	// WindowOps is the incremental checker's window size (default 128).
	WindowOps int
	// NoDedup disables the shared window-verdict cache, measuring the
	// raw incremental-check path.
	NoDedup bool
}

// ServeRow is one measured streaming-load run.
type ServeRow struct {
	Class      string        // subject whose histories were replayed
	Ops        int64         // operations checked
	Events     int64         // raw events ingested
	Partitions int           // distinct partition keys
	Workers    int           // serve worker-pool size
	Window     int           // window size (completed ops per retirement)
	CacheHits  int64         // window-verdict dedup cache hits
	Verdict    string        // "PASS" when every partition is linearizable
	Wall       time.Duration // ingest-to-final-verdict wall time
	Throughput float64       // Ops / Wall seconds
}

// harvestServeHistories explores the Fig. 1 corrected BlockingCollection and
// collects its distinct complete histories (the replay corpus), along with
// the queue model that checks them and the subject's display name.
func harvestServeHistories(limit int) ([]*history.History, *monitor.Model, string, error) {
	var cc *CauseCase
	for _, c := range CauseCases() {
		if c.Cause == CauseB {
			cc = &c
			break
		}
	}
	if cc == nil || cc.Counterpart == nil {
		return nil, nil, "", fmt.Errorf("bench: no corrected Fig. 1 cause case registered")
	}
	model, ok := monitor.Builtin("queue")
	if !ok {
		return nil, nil, "", fmt.Errorf("bench: no builtin model for cause B")
	}
	var hists []*history.History
	err := core.ExploreHistories(cc.Counterpart, cc.Test,
		core.Options{PreemptionBound: cc.Bound}, func(h *history.History) bool {
			if !h.Stuck {
				hists = append(hists, h)
			}
			return len(hists) < limit
		})
	if err != nil {
		return nil, nil, "", err
	}
	if len(hists) == 0 {
		return nil, nil, "", fmt.Errorf("bench: explorer emitted no complete histories")
	}
	return hists, model, cc.Counterpart.Name, nil
}

// RunServeLoad measures the streaming service's sustained checking
// throughput: one row per worker-pool size. Each run replays the harvested
// corpus round-robin across the partitions until the op target is reached,
// then drains and asserts every partition's verdict. Progress (if non-nil)
// receives a line per completed run.
func RunServeLoad(opts ServeLoadOptions, progress func(string)) ([]ServeRow, error) {
	if opts.Ops <= 0 {
		opts.Ops = 1_000_000
	}
	if opts.Partitions <= 0 {
		opts.Partitions = 16
	}
	if len(opts.Workers) == 0 {
		opts.Workers = []int{1}
	}
	if opts.WindowOps <= 0 {
		opts.WindowOps = 128
	}
	hists, model, class, err := harvestServeHistories(256)
	if err != nil {
		return nil, err
	}
	// Pre-convert each history to trace events once; replays then only remap
	// the thread base and partition key. Thread bases are spaced so no two
	// partitions share a thread id (the stream tracker enforces per-thread
	// call discipline globally).
	stride := 0
	opsPer := make([]int64, len(hists))
	for i, h := range hists {
		for _, e := range h.Events {
			if e.Thread >= stride {
				stride = e.Thread + 1
			}
			if e.Kind == history.Return {
				opsPer[i]++
			}
		}
	}
	keys := make([]string, opts.Partitions)
	for p := range keys {
		keys[p] = fmt.Sprintf("p%02d", p)
	}
	var rows []ServeRow
	for _, workers := range opts.Workers {
		col := telemetry.New()
		s, err := serve.New(serve.Config{
			Model:     model,
			Workers:   workers,
			WindowOps: opts.WindowOps,
			NoDedup:   opts.NoDedup,
			Telemetry: col,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var issued int64
		for i := 0; issued < opts.Ops; i++ {
			h := hists[i%len(hists)]
			p := i % opts.Partitions
			base := p * stride
			for _, e := range h.Events {
				ev := obsfile.TraceEvent{T: base + e.Thread, Op: e.Op}
				if e.Kind == history.Call {
					ev.K, ev.P = "call", keys[p]
				} else {
					ev.K, ev.Res = "ret", e.Result
				}
				if err := s.Ingest(ev); err != nil {
					_, _ = s.Close()
					return nil, fmt.Errorf("bench: ingest: %w", err)
				}
			}
			issued += opsPer[i%len(hists)]
		}
		sum, err := s.Close()
		wall := time.Since(start)
		if err != nil {
			return nil, err
		}
		st := sum.Stats
		if st.OpsChecked != issued {
			return nil, fmt.Errorf("bench: issued %d ops but the service checked %d", issued, st.OpsChecked)
		}
		if st.EventsShed != 0 {
			return nil, fmt.Errorf("bench: block policy shed %d events", st.EventsShed)
		}
		verdict := "PASS"
		if !sum.Linearizable {
			verdict = "FAIL"
		}
		row := ServeRow{
			Class:      class,
			Ops:        st.OpsChecked,
			Events:     st.EventsIngested,
			Partitions: opts.Partitions,
			Workers:    workers,
			Window:     opts.WindowOps,
			CacheHits:  st.CacheHits,
			Verdict:    verdict,
			Wall:       wall,
			Throughput: float64(st.OpsChecked) / wall.Seconds(),
		}
		rows = append(rows, row)
		if progress != nil {
			progress(fmt.Sprintf("serve %s workers=%d: %d ops in %v (%.0f ops/s, %d cache hits, %s)",
				class, workers, row.Ops, wall.Round(time.Millisecond), row.Throughput, row.CacheHits, verdict))
		}
	}
	return rows, nil
}

// ServeJSON converts streaming-load rows to JSON records.
func ServeJSON(rows []ServeRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:       "serve",
			Class:      r.Class,
			Workers:    r.Workers,
			Partitions: r.Partitions,
			Window:     r.Window,
			Ops:        r.Ops,
			Events:     r.Events,
			Throughput: r.Throughput,
			DedupHits:  int(r.CacheHits),
			Verdict:    r.Verdict,
			WallMS:     float64(r.Wall) / float64(time.Millisecond),
		})
	}
	return out
}
