package bench

import (
	"fmt"
	"math/rand"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/sober"
)

// SoberResult aggregates the Section 5.7 relaxed-memory scan of one class.
type SoberResult struct {
	Subject    string
	Tests      int
	Executions int
	Violations []sober.Violation
}

// SoberRandom scans the executions of random tests of a class for
// store-buffer SC-violation patterns (Section 5.7). The paper ran the
// analogous CHESS check on the .NET classes and found no issues; the
// corrected classes here funnel all cross-thread protocols through
// monitors, volatiles and interlocked operations, so the scan comes back
// clean too.
func SoberRandom(sub *core.Subject, rows, cols, samples int, seed int64, opts core.Options) (*SoberResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &SoberResult{Subject: sub.Name}
	seen := make(map[string]bool)
	for k := 0; k < samples; k++ {
		m := &core.Test{}
		for r := 0; r < rows; r++ {
			row := make([]core.Op, cols)
			for c := 0; c < cols; c++ {
				row[c] = sub.Ops[rng.Intn(len(sub.Ops))]
			}
			m.Rows = append(m.Rows, row)
		}
		res.Tests++
		stats, err := core.ForEachExecution(sub, m, opts, true, func(out *sched.Outcome) bool {
			for _, v := range sober.Analyze(out.Trace) {
				key := fmt.Sprintf("%s|%s", v.First.WriteLoc, v.First.ReadLoc)
				if !seen[key] {
					seen[key] = true
					res.Violations = append(res.Violations, v)
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		res.Executions += stats.Executions
	}
	return res, nil
}
