package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/monitor/fast"
)

func fastmonKey(r JSONRow) string {
	return fmt.Sprintf("%s|%d", r.Class, r.Ops)
}

// TestFastmonBaseline is the specialized-monitor crossover gate. The smoke
// mode (every `make check`, via `make fastmon-smoke`) measures short lengths
// for all five types and checks the machinery: the generated workloads are
// inside each fast fragment (a definite verdict, never ErrAmbiguous), the
// fast and Wing–Gong verdicts agree, and the rows are well formed. With
// LINEUP_BENCH_FULL=1 (the `make bench-fastmon` entry point) it sweeps the
// decades 10^2 .. 10^6 and enforces the acceptance target: for every type,
// the specialized monitor is at least 10x faster than the memoized
// unpartitioned Wing–Gong search at some length >= 10^4. With
// LINEUP_UPDATE_BENCH=1 the measured rows are merged into BENCH_lineup.json.
func TestFastmonBaseline(t *testing.T) {
	opts := FastmonOptions{Lengths: []int{100, 1_000}}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = FastmonOptions{} // the default 10^2 .. 10^6 sweep
	}
	rows, err := RunFastmon(opts, func(line string) { t.Log(line) })
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(fast.Names()) * len(opts.withDefaults().Lengths)
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	crossed := make(map[string]bool)
	for _, r := range rows {
		if r.Verdict != "PASS" {
			t.Errorf("%s n=%d: linearizable workload judged %s", r.Model, r.Ops, r.Verdict)
		}
		if r.FastWall <= 0 {
			t.Errorf("%s n=%d: no fast wall time measured", r.Model, r.Ops)
		}
		if !full && r.WGLWall <= 0 {
			t.Errorf("%s n=%d: smoke lengths must stay within the WGL budget", r.Model, r.Ops)
		}
		if r.Ops >= 10_000 && r.WGLWall > 0 && r.Speedup >= 10 {
			crossed[r.Model] = true
		}
	}
	if full {
		for _, name := range fast.Names() {
			if !crossed[name] {
				t.Errorf("%s: no measured length >= 10^4 with a >=10x fast-over-WGL speedup", name)
			}
		}
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := FastmonJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[fastmonKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "fastmon" && measured[fastmonKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d fastmon rows", path, len(fresh))
}

// TestFastmonJSONFields pins the machine-readable schema of the fastmon
// rows.
func TestFastmonJSONFields(t *testing.T) {
	rows := []FastmonRow{{
		Model: "queue", Ops: 10_000, FastWall: 2_000_000, WGLWall: 500_000_000,
		Speedup: 250, Verdict: "PASS",
	}}
	js := FastmonJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "fastmon" || r.Class != "queue" || r.Ops != 10_000 ||
		r.WallMS != 2 || r.WGLMS != 500 || r.Speedup != 250 || r.Verdict != "PASS" {
		t.Fatalf("bad fastmon JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"kind":"fastmon"`, `"wgl_ms":500`, `"wall_ms":2`, `"speedup":250`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("marshaled row missing %s: %s", field, data)
		}
	}
}
