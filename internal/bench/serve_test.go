package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/monitor"
)

// serveKey identifies a serve row's shape: checking-load rows have empty
// Mode/Conns, ingest rows carry both, so the two families never collide when
// LINEUP_UPDATE_BENCH merges fresh rows over committed ones.
func serveKey(r JSONRow) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%d", r.Class, r.Mode, r.Workers, r.Conns, r.Partitions, r.Window)
}

// TestServeBaseline is the streaming-service load gate. The smoke mode
// (every `make check`, and `make serve-smoke` under -race) replays a few
// thousand operations and checks the machinery: the op accounting balances,
// nothing is shed under the block policy, the dedup cache fires, and the
// all-linearizable corpus yields a PASS verdict. With LINEUP_BENCH_FULL=1
// (the `make bench-serve` entry point) it sustains the acceptance target of
// at least one million checked operations per run, at 1 and 4 workers. With
// LINEUP_UPDATE_BENCH=1 the measured rows are merged into BENCH_lineup.json.
func TestServeBaseline(t *testing.T) {
	opts := ServeLoadOptions{Ops: 20_000, Partitions: 8, Workers: []int{2}}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = ServeLoadOptions{Ops: 1_200_000, Partitions: 16, Workers: []int{1, 4}}
	}
	rows, err := RunServeLoad(opts, func(line string) { t.Log(line) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opts.Workers) {
		t.Fatalf("got %d rows, want %d", len(rows), len(opts.Workers))
	}
	for _, r := range rows {
		if r.Ops < opts.Ops {
			t.Errorf("workers=%d: checked %d ops, target %d", r.Workers, r.Ops, opts.Ops)
		}
		if r.Verdict != "PASS" {
			t.Errorf("workers=%d: linearizable corpus judged %s", r.Workers, r.Verdict)
		}
		if r.CacheHits == 0 {
			t.Errorf("workers=%d: identical replayed windows produced no dedup hits", r.Workers)
		}
		if full && r.Throughput <= 0 {
			t.Errorf("workers=%d: no throughput measured", r.Workers)
		}
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := ServeJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[serveKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "serve" && measured[serveKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d serve rows", path, len(fresh))
}

// TestServeCorpusIsLinearizable spot-checks the replay corpus against the
// batch monitor: every harvested history must be linearizable on its own, so
// a streaming PASS at load genuinely agrees with `lineup monitor` run on
// each partition's trace.
func TestServeCorpusIsLinearizable(t *testing.T) {
	hists, model, _, err := harvestServeHistories(64)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hists {
		out, err := monitor.Check(model, h, monitor.Options{})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		if !out.Linearizable {
			t.Fatalf("corpus history %d is not linearizable:\n%s", i, h)
		}
	}
	t.Logf("batch monitor agrees on all %d corpus histories", len(hists))
}

// TestServeJSONFields pins the machine-readable schema of the serve rows.
func TestServeJSONFields(t *testing.T) {
	rows := []ServeRow{{
		Class: "BlockingCollection", Ops: 1_000_000, Events: 2_000_000,
		Partitions: 16, Workers: 4, Window: 128, CacheHits: 5000,
		Verdict: "PASS", Wall: 2_000_000_000, Throughput: 500_000,
	}}
	js := ServeJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "serve" || r.Workers != 4 || r.Partitions != 16 || r.Window != 128 ||
		r.Ops != 1_000_000 || r.Events != 2_000_000 || r.Throughput != 500_000 ||
		r.DedupHits != 5000 || r.Verdict != "PASS" || r.WallMS != 2000 {
		t.Fatalf("bad serve JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"ops_checked", "events_ingested", "ops_per_sec", "partitions", "window", "wall_ms"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
