package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// moduleRoot locates the repository root (for Table 1 line counting) from
// this source file's compiled location.
func moduleRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// CountLines counts non-blank, non-comment-only source lines of a file,
// which is how the LOC column of Table 1 is produced. It returns 0 if the
// file cannot be read (e.g. when the binary runs away from the source
// tree).
func CountLines(relPath string) int {
	data, err := os.ReadFile(filepath.Join(moduleRoot(), relPath))
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "//") {
			continue
		}
		n++
	}
	return n
}

// Table1Row is one row of Table 1: class name, implementation size, and
// the methods checked.
type Table1Row struct {
	Class   string
	LOC     int
	Methods []string
}

// Table1 builds the class inventory of Table 1 from the registry.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, e := range Registry() {
		loc := 0
		for _, f := range e.Subject.SourceFiles {
			loc += CountLines(f)
		}
		if e.Pre != nil {
			for _, f := range e.Pre.SourceFiles {
				loc += CountLines(f)
			}
		}
		methods := make([]string, 0, len(e.Subject.Ops))
		for _, op := range e.Subject.Ops {
			methods = append(methods, op.Name())
		}
		rows = append(rows, Table1Row{Class: e.Subject.Name, LOC: loc, Methods: methods})
	}
	return rows
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer) {
	rows := Table1()
	totalMethods, totalLOC := 0, 0
	fmt.Fprintf(w, "%-26s %6s  %s\n", "Class", "LOC", "Methods checked")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 100))
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %6d  %s\n", r.Class, r.LOC, strings.Join(r.Methods, ", "))
		totalMethods += len(r.Methods)
		totalLOC += r.LOC
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 100))
	fmt.Fprintf(w, "%-26s %6d  %d classes, %d invocations checked (paper: 13 classes, 90 methods)\n",
		"total", totalLOC, len(rows), totalMethods)
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Class      string
	Causes     string // root causes with minimal dimensions, e.g. "A(2x3)"
	SerialAvg  float64
	SerialMax  int
	P1TimeAvg  time.Duration
	P1TimeMax  time.Duration
	Passed     int
	Failed     int
	P2FailTime time.Duration
	P2PassTime time.Duration
	PB         int
	StuckTests int
	// Schedules, Histories, and Wall aggregate the raw run measurements for
	// the machine-readable JSON output: total schedules explored across both
	// phases, distinct concurrent histories checked in phase 2 (full plus
	// stuck), and the wall-clock time of the class's whole sample.
	Schedules int
	Histories int
	Wall      time.Duration
}

// Table2Options parameterizes the Table 2 run.
type Table2Options struct {
	// Samples per class (the paper uses 100 tests of dimension 3x3).
	Samples int
	// Rows and Cols of each random test.
	Rows, Cols int
	// Seed for reproducibility.
	Seed int64
	// Workers parallelizes each class's sample (one test per worker).
	Workers int
	// ExploreWorkers shards the phase-2 schedule exploration of every
	// individual check (core.Options.Workers); 0 or 1 keeps the sequential
	// explorer. Composes with Workers but usually over-subscribes.
	ExploreWorkers int
	// IncludePre includes the "(Pre)" variants (the paper tests both
	// releases).
	IncludePre bool
	// Watchdog arms the per-execution wall-clock watchdog on every check
	// (core.Options.Watchdog), so one non-cooperating subject cannot hang
	// an entire table regeneration. 0 disables it.
	Watchdog time.Duration
	// MaxFailures contains up to this many failed executions per check
	// (core.Options.MaxFailures) instead of aborting the sweep at the first
	// subject panic or hang. 0 keeps the strict behavior.
	MaxFailures int
	// Reduction applies the sleep-set partial-order reduction to every
	// phase-2 exploration of the sweep (core.Options.Reduction). Verdicts
	// and violations are identical; the schedule counts drop.
	Reduction sched.Reduction
	// Telemetry, when non-nil, is shared by every check of the sweep
	// (core.Options.Telemetry); counters accumulate across classes.
	Telemetry *telemetry.Collector
	// Tick, when non-nil, is called after every completed test with the
	// per-class progress (done and total tests of the class currently
	// running). It is invoked under an internal lock and must return quickly.
	Tick func(done, total int)
}

func (o Table2Options) withDefaults() Table2Options {
	if o.Samples == 0 {
		o.Samples = 100
	}
	if o.Rows == 0 {
		o.Rows = 3
	}
	if o.Cols == 0 {
		o.Cols = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// minDims maps subjects to their root causes with minimal dimensions,
// derived from the directed cases.
func minDims() map[string][]string {
	out := make(map[string][]string)
	for _, c := range CauseCases() {
		threads, ops := c.Test.Dim()
		out[c.Subject.Name] = append(out[c.Subject.Name], fmt.Sprintf("%s(%dx%d)", c.Cause, threads, ops))
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// RunTable2 regenerates Table 2: for every class (and optionally its (Pre)
// variant) it runs RandomCheck and aggregates the phase statistics.
func RunTable2(opts Table2Options, progress func(string)) ([]Table2Row, error) {
	opts = opts.withDefaults()
	dims := minDims()
	var rows []Table2Row
	run := func(sub *core.Subject, bound int) error {
		if progress != nil {
			progress(sub.Name)
		}
		sum, err := core.RandomCheck(sub, nil, core.RandomOptions{
			Rows: opts.Rows, Cols: opts.Cols, Samples: opts.Samples,
			Seed: opts.Seed, Workers: opts.Workers,
			Progress: opts.Tick,
			Options: core.Options{
				PreemptionBound: bound,
				Workers:         opts.ExploreWorkers,
				Watchdog:        opts.Watchdog,
				MaxFailures:     opts.MaxFailures,
				Reduction:       opts.Reduction,
				Telemetry:       opts.Telemetry,
			},
		})
		if err != nil {
			return err
		}
		schedules, histories := 0, 0
		for _, r := range sum.Results {
			if r == nil {
				continue
			}
			schedules += r.Phase1.Executions + r.Phase2.Executions
			histories += r.Phase2.Histories + r.Phase2.Stuck
		}
		rows = append(rows, Table2Row{
			Class:      sub.Name,
			Causes:     strings.Join(dims[sub.Name], " "),
			SerialAvg:  sum.SerialHistAvg,
			SerialMax:  sum.SerialHistMax,
			P1TimeAvg:  sum.Phase1TimeAvg,
			P1TimeMax:  sum.Phase1TimeMax,
			Passed:     sum.Passed,
			Failed:     sum.Failed,
			P2FailTime: sum.Phase2FailAvg,
			P2PassTime: sum.Phase2PassAvg,
			PB:         bound,
			StuckTests: sum.StuckTests,
			Schedules:  schedules,
			Histories:  histories,
			Wall:       sum.TotalDuration,
		})
		return nil
	}
	for _, e := range Registry() {
		if err := run(e.Subject, e.Bound); err != nil {
			return nil, err
		}
		if opts.IncludePre && e.Pre != nil {
			if err := run(e.Pre, e.Bound); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// WriteTable2 renders the Table 2 rows.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-26s %-18s | %9s %6s %9s %9s | %6s %6s %9s %9s %3s %5s\n",
		"Class", "causes(min dim)", "ser.avg", "max", "t1.avg", "t1.max",
		"pass", "fail", "t2.fail", "t2.pass", "PB", "stuck")
	fmt.Fprintln(w, strings.Repeat("-", 140))
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %-18s | %9.1f %6d %9s %9s | %6d %6d %9s %9s %3d %5d\n",
			r.Class, r.Causes, r.SerialAvg, r.SerialMax,
			round(r.P1TimeAvg), round(r.P1TimeMax),
			r.Passed, r.Failed, round(r.P2FailTime), round(r.P2PassTime),
			r.PB, r.StuckTests)
	}
}

func round(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}
