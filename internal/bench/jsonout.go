package bench

import (
	"encoding/json"
	"os"
	"time"
)

// JSONFile is the conventional output file of the -json flags of the table2
// and compare subcommands.
const JSONFile = "BENCH_lineup.json"

// JSONRow is one machine-readable benchmark record: how much work a run did
// (schedules explored, histories checked) and how long it took, per class.
// Fields that do not apply to a record kind are omitted.
type JSONRow struct {
	Kind      string  `json:"kind"`            // "table2", "compare", "parallel", "reduction", "telemetry", "generate", "serve" or "dist"
	Class     string  `json:"class"`           // subject name
	Cause     string  `json:"cause,omitempty"` // reduction: directed cause label
	Tests     int     `json:"tests,omitempty"` // random tests sampled
	Schedules int     `json:"schedules_explored"`
	Histories int     `json:"histories_checked,omitempty"` // distinct phase-2 histories (full + stuck)
	Failed    int     `json:"failed,omitempty"`            // Line-Up failures among the tests
	Races     int     `json:"races,omitempty"`             // compare: distinct data races
	AtomWarn  int     `json:"atomicity_warnings,omitempty"`
	Workers   int     `json:"workers,omitempty"` // parallel: explorer worker count
	CPUs      int     `json:"cpus,omitempty"`    // parallel: CPUs of the measuring machine
	Speedup   float64 `json:"speedup,omitempty"` // parallel: wall(workers=1) / wall
	Verdict   string  `json:"verdict,omitempty"` // reduction: PASS/FAIL (identical full vs reduced)
	PB        int     `json:"preemption_bound,omitempty"`
	// ReductionRatio is schedules(full) / schedules(reduced) for the same
	// exhaustive exploration; DedupHits counts executions the phase-2 history
	// cache answered without re-deciding witness existence.
	ReductionRatio float64 `json:"reduction_ratio,omitempty"`
	DedupHits      int     `json:"dedup_hits,omitempty"`
	// OverheadPct is the telemetry rows' wall-time cost of enabling the
	// collector, in percent of the uninstrumented run.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	// Generate rows: guided-vs-random time-to-first-violation. Mode is
	// "guided" or "random"; TestsToViolation is the 1-based index of the
	// first failing test (0 = not found within Budget); the coverage fields
	// record the guided run's final corpus and signal sizes.
	Mode             string `json:"mode,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	Budget           int    `json:"budget,omitempty"`
	TestsToViolation int    `json:"tests_to_violation,omitempty"`
	CorpusSize       int    `json:"corpus_size,omitempty"`
	CovPairs         int    `json:"coverage_pairs,omitempty"`
	CovHists         int    `json:"coverage_hists,omitempty"`
	// Dist rows: fault-tolerant coordinator scaling. Units is the work-unit
	// count, Killed the injected worker crashes, Retries the lease
	// reassignments the coordinator absorbed while keeping the merged result
	// bit-identical to the sequential check (Verdict PASS).
	Units   int `json:"units,omitempty"`
	Killed  int `json:"killed_workers,omitempty"`
	Retries int `json:"retries,omitempty"`
	// Fastmon rows: specialized-monitor crossover. WGLMS is the memoized
	// unpartitioned Wing–Gong wall time on the same history (0 = skipped,
	// the previous length exceeded the measurement budget); WallMS is the
	// specialized monitor's.
	WGLMS float64 `json:"wgl_ms,omitempty"`
	// Serve rows: streaming-load shape and sustained throughput. Ingest rows
	// (Mode "jsonl"/"batch") additionally record the concurrent connection
	// count and the ingest-phase wall (producers done; the checker then
	// drains until WallMS).
	Partitions int     `json:"partitions,omitempty"`
	Window     int     `json:"window,omitempty"`
	Conns      int     `json:"connections,omitempty"`
	Ops        int64   `json:"ops_checked,omitempty"`
	Events     int64   `json:"events_ingested,omitempty"`
	Throughput float64 `json:"ops_per_sec,omitempty"`
	IngestMS   float64 `json:"ingest_ms,omitempty"`
	WallMS     float64 `json:"wall_ms"`
}

// Table2JSON converts Table 2 rows to JSON records.
func Table2JSON(rows []Table2Row) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:      "table2",
			Class:     r.Class,
			Tests:     r.Passed + r.Failed,
			Schedules: r.Schedules,
			Histories: r.Histories,
			Failed:    r.Failed,
			WallMS:    float64(r.Wall) / float64(time.Millisecond),
		})
	}
	return out
}

// CompareJSON converts Section 5.6 comparison results to JSON records; wall
// is the duration measured around each class's CompareRandom call, aligned
// by index (missing entries record zero).
func CompareJSON(results []*CompareResult, wall []time.Duration) []JSONRow {
	out := make([]JSONRow, 0, len(results))
	for i, r := range results {
		row := JSONRow{
			Kind:      "compare",
			Class:     r.Subject,
			Tests:     r.Tests,
			Schedules: r.Executions,
			Failed:    r.LineUpFailures,
			Races:     len(r.Races),
			AtomWarn:  r.AtomicityWarnings,
		}
		if i < len(wall) {
			row.WallMS = float64(wall[i]) / float64(time.Millisecond)
		}
		out = append(out, row)
	}
	return out
}

// ParallelJSON converts sequential-vs-parallel explorer rows to JSON
// records.
func ParallelJSON(rows []ParallelRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:      "parallel",
			Class:     r.Class,
			Schedules: r.Executions,
			Histories: r.Histories,
			Workers:   r.Workers,
			CPUs:      r.CPUs,
			Speedup:   r.Speedup,
			DedupHits: r.DedupHits,
			WallMS:    float64(r.Wall) / float64(time.Millisecond),
		})
	}
	return out
}

// WriteJSONRows writes the records to path as indented JSON (a single
// array, so the file is valid JSON rather than JSONL).
func WriteJSONRows(path string, rows []JSONRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
