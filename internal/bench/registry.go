// Package bench hosts the evaluation harness: the registry of the 13
// classes of Table 1 (correct and "(Pre)" variants with their invocation
// universes and root-cause annotations), line counting for Table 1, and the
// row formatters used by cmd/lineup and the repository benchmarks to
// regenerate the paper's tables.
package bench

import (
	"fmt"

	"lineup/internal/buggy"
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/sched"
)

// Cause identifies a root cause of Table 2 (A..G bugs, H..J intentional
// nondeterminism, K..L intentional nonlinearizability).
type Cause string

// Root causes of Table 2.
const (
	CauseA Cause = "A" // ManualResetEvent(Pre): CAS typo re-reads state (Fig. 9)
	CauseB Cause = "B" // BlockingCollection(Pre): TryTake lock acquire times out (Fig. 1)
	CauseC Cause = "C" // ConcurrentStack(Pre): TryPopRange assembled from single pops
	CauseD Cause = "D" // SemaphoreSlim(Pre): waiter published after monitor release
	CauseE Cause = "E" // CountdownEvent(Pre): unsynchronized Signal decrement
	CauseF Cause = "F" // Lazy(Pre): value factory can run twice
	CauseG Cause = "G" // TaskCompletionSource(Pre): check-then-act completion
	CauseH Cause = "H" // ConcurrentBag: weak-snapshot Count/ToArray (intentional)
	CauseI Cause = "I" // BlockingCollection: Count lags contents (intentional)
	CauseJ Cause = "J" // BlockingCollection: TryTake count fast path (intentional)
	CauseK Cause = "K" // BlockingCollection: CompleteAdding effect after return (intentional)
	CauseL Cause = "L" // Barrier: SignalAndWait is inherently non-serial (intentional)
)

// Classification buckets of Section 5.2.
type Classification int

const (
	// Bug marks a real implementation error (fixed by the developers).
	Bug Classification = iota
	// Nondeterminism marks intentional nondeterministic behavior.
	Nondeterminism
	// Nonlinearizable marks intentionally non-linearizable behavior.
	Nonlinearizable
)

// Classify buckets a root cause as in Section 5.2.
func Classify(c Cause) Classification {
	switch c {
	case CauseH, CauseI, CauseJ:
		return Nondeterminism
	case CauseK, CauseL:
		return Nonlinearizable
	default:
		return Bug
	}
}

// Entry is one row of the registry: a class with its subjects and its
// expected Table 2 outcome.
type Entry struct {
	// Subject is the corrected (Beta 2-like) implementation.
	Subject *core.Subject
	// Pre is the defect-seeded CTP-like variant (nil if the class had no
	// (Pre) version under test).
	Pre *core.Subject
	// Bound is the preemption bound used for this class's Table 2 runs (the
	// paper's PB column: "2, except where it performed unacceptably slow" —
	// and some seeded defects need deeper schedules; see the ablation
	// benchmark).
	Bound int
	// Causes are the root causes expected on the corrected subject
	// (intentional nondeterminism/nonlinearizability that was documented
	// rather than fixed).
	Causes []Cause
	// PreCauses are the root causes expected on the (Pre) subject, in
	// addition to Causes that the class retains.
	PreCauses []Cause
}

// op builds a core.Op from a method name, rendered arguments, and body.
func op(method, args string, run func(t *sched.Thread, obj any) string) core.Op {
	return core.Op{Method: method, Args: args, Run: run}
}

// ----- shared class vocabularies (correct and (Pre) variants both satisfy
// these structural interfaces, so one invocation universe serves both) -----

type queueAPI interface {
	Enqueue(*sched.Thread, int)
	TryDequeue(*sched.Thread) (int, bool)
	TryPeek(*sched.Thread) (int, bool)
	Count(*sched.Thread) int
	IsEmpty(*sched.Thread) bool
	ToArray(*sched.Thread) []int
}

func queueOps() []core.Op {
	return []core.Op{
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(queueAPI).Count(t)) }),
		op("IsEmpty", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(queueAPI).IsEmpty(t)) }),
		op("Enqueue", "10", func(t *sched.Thread, o any) string { o.(queueAPI).Enqueue(t, 10); return collections.OK }),
		op("Enqueue", "20", func(t *sched.Thread, o any) string { o.(queueAPI).Enqueue(t, 20); return collections.OK }),
		op("ToArray", "", func(t *sched.Thread, o any) string { return collections.Ints(o.(queueAPI).ToArray(t)) }),
		op("TryDequeue", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(queueAPI).TryDequeue(t)) }),
		op("TryPeek", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(queueAPI).TryPeek(t)) }),
	}
}

type stackAPI interface {
	Push(*sched.Thread, int)
	PushRange(*sched.Thread, []int)
	TryPop(*sched.Thread) (int, bool)
	TryPopRange(*sched.Thread, int) []int
	TryPeek(*sched.Thread) (int, bool)
	Count(*sched.Thread) int
	IsEmpty(*sched.Thread) bool
	ToArray(*sched.Thread) []int
	Clear(*sched.Thread)
}

func stackOps() []core.Op {
	return []core.Op{
		op("Clear", "", func(t *sched.Thread, o any) string { o.(stackAPI).Clear(t); return collections.OK }),
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(stackAPI).Count(t)) }),
		op("Push", "10", func(t *sched.Thread, o any) string { o.(stackAPI).Push(t, 10); return collections.OK }),
		op("Push", "20", func(t *sched.Thread, o any) string { o.(stackAPI).Push(t, 20); return collections.OK }),
		op("PushRange", "30,40", func(t *sched.Thread, o any) string {
			o.(stackAPI).PushRange(t, []int{30, 40})
			return collections.OK
		}),
		op("TryPop", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(stackAPI).TryPop(t)) }),
		op("TryPopRange", "1", func(t *sched.Thread, o any) string { return collections.Ints(o.(stackAPI).TryPopRange(t, 1)) }),
		op("TryPopRange", "2", func(t *sched.Thread, o any) string { return collections.Ints(o.(stackAPI).TryPopRange(t, 2)) }),
		op("TryPopRange", "4", func(t *sched.Thread, o any) string { return collections.Ints(o.(stackAPI).TryPopRange(t, 4)) }),
		op("TryPeek", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(stackAPI).TryPeek(t)) }),
		op("ToArray", "", func(t *sched.Thread, o any) string { return collections.Ints(o.(stackAPI).ToArray(t)) }),
	}
}

type mreAPI interface {
	Set(*sched.Thread)
	Reset(*sched.Thread)
	Wait(*sched.Thread)
	IsSet(*sched.Thread) bool
	WaitOne(*sched.Thread) bool
}

func mreOps() []core.Op {
	return []core.Op{
		op("Set", "", func(t *sched.Thread, o any) string { o.(mreAPI).Set(t); return collections.OK }),
		op("Wait", "", func(t *sched.Thread, o any) string { o.(mreAPI).Wait(t); return collections.OK }),
		op("Reset", "", func(t *sched.Thread, o any) string { o.(mreAPI).Reset(t); return collections.OK }),
		op("IsSet", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(mreAPI).IsSet(t)) }),
		op("WaitOne", "0", func(t *sched.Thread, o any) string { return collections.Bool(o.(mreAPI).WaitOne(t)) }),
	}
}

type semaphoreAPI interface {
	Wait(*sched.Thread)
	WaitZero(*sched.Thread) bool
	Release(*sched.Thread, int) int
	CurrentCount(*sched.Thread) int
}

func semaphoreOps() []core.Op {
	return []core.Op{
		op("CurrentCount", "", func(t *sched.Thread, o any) string { return collections.Int(o.(semaphoreAPI).CurrentCount(t)) }),
		op("Release", "", func(t *sched.Thread, o any) string { return collections.Int(o.(semaphoreAPI).Release(t, 1)) }),
		op("Release", "2", func(t *sched.Thread, o any) string { return collections.Int(o.(semaphoreAPI).Release(t, 2)) }),
		op("Wait", "", func(t *sched.Thread, o any) string { o.(semaphoreAPI).Wait(t); return collections.OK }),
		op("Wait", "0", func(t *sched.Thread, o any) string { return collections.Bool(o.(semaphoreAPI).WaitZero(t)) }),
	}
}

type countdownAPI interface {
	Signal(*sched.Thread, int) bool
	AddCount(*sched.Thread, int) bool
	TryAddCount(*sched.Thread, int) bool
	IsSet(*sched.Thread) bool
	CurrentCount(*sched.Thread) int
	Wait(*sched.Thread)
	WaitZero(*sched.Thread) bool
}

func countdownOps() []core.Op {
	ops := []core.Op{
		op("IsSet", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(countdownAPI).IsSet(t)) }),
		op("Wait", "", func(t *sched.Thread, o any) string { o.(countdownAPI).Wait(t); return collections.OK }),
		op("Wait", "0", func(t *sched.Thread, o any) string { return collections.Bool(o.(countdownAPI).WaitZero(t)) }),
		op("CurrentCount", "", func(t *sched.Thread, o any) string { return collections.Int(o.(countdownAPI).CurrentCount(t)) }),
	}
	for _, x := range []int{1, 2} {
		x := x
		ops = append(ops,
			op("Signal", fmt.Sprint(x), func(t *sched.Thread, o any) string { return collections.Bool(o.(countdownAPI).Signal(t, x)) }),
			op("AddCount", fmt.Sprint(x), func(t *sched.Thread, o any) string { return collections.Bool(o.(countdownAPI).AddCount(t, x)) }),
			op("TryAddCount", fmt.Sprint(x), func(t *sched.Thread, o any) string { return collections.Bool(o.(countdownAPI).TryAddCount(t, x)) }),
		)
	}
	return ops
}

func lazyOps() []core.Op {
	type lazyAPI interface {
		Value(*sched.Thread) int
		IsValueCreated(*sched.Thread) bool
		ToString(*sched.Thread) string
	}
	return []core.Op{
		op("Value", "", func(t *sched.Thread, o any) string { return collections.Int(o.(lazyAPI).Value(t)) }),
		op("ToString", "", func(t *sched.Thread, o any) string { return o.(lazyAPI).ToString(t) }),
		op("IsValueCreated", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(lazyAPI).IsValueCreated(t)) }),
	}
}

type tcsAPI interface {
	TrySetResult(*sched.Thread, int) bool
	TrySetCanceled(*sched.Thread) bool
	TrySetException(*sched.Thread) bool
	SetResult(*sched.Thread, int) bool
	SetCanceled(*sched.Thread) bool
	SetException(*sched.Thread) bool
	Wait(*sched.Thread) string
	TryResult(*sched.Thread) string
}

func tcsOps() []core.Op {
	return []core.Op{
		op("TrySetCanceled", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).TrySetCanceled(t)) }),
		op("TrySetException", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).TrySetException(t)) }),
		op("TrySetResult", "10", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).TrySetResult(t, 10)) }),
		op("TrySetResult", "20", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).TrySetResult(t, 20)) }),
		op("SetResult", "30", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).SetResult(t, 30)) }),
		op("SetCanceled", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).SetCanceled(t)) }),
		op("SetException", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(tcsAPI).SetException(t)) }),
		op("Wait", "", func(t *sched.Thread, o any) string { return o.(tcsAPI).Wait(t) }),
		op("TryResult", "", func(t *sched.Thread, o any) string { return o.(tcsAPI).TryResult(t) }),
	}
}

type bcAPI interface {
	Add(*sched.Thread, int) bool
	TryAdd(*sched.Thread, int) bool
	Take(*sched.Thread) (int, bool)
	TryTake(*sched.Thread) (int, bool)
	Count(*sched.Thread) int
	ToArray(*sched.Thread) []int
	CompleteAdding(*sched.Thread)
	IsAddingCompleted(*sched.Thread) bool
	IsCompleted(*sched.Thread) bool
}

func bcOps() []core.Op {
	return []core.Op{
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(bcAPI).Count(t)) }),
		op("ToArray", "", func(t *sched.Thread, o any) string { return collections.Ints(o.(bcAPI).ToArray(t)) }),
		op("TryAdd", "10", func(t *sched.Thread, o any) string { return collections.Bool(o.(bcAPI).TryAdd(t, 10)) }),
		op("TryAdd", "20", func(t *sched.Thread, o any) string { return collections.Bool(o.(bcAPI).TryAdd(t, 20)) }),
		op("IsCompleted", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(bcAPI).IsCompleted(t)) }),
		op("IsAddingCompleted", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(bcAPI).IsAddingCompleted(t)) }),
		op("CompleteAdding", "", func(t *sched.Thread, o any) string { o.(bcAPI).CompleteAdding(t); return collections.OK }),
		op("Add", "30", func(t *sched.Thread, o any) string { return collections.Bool(o.(bcAPI).Add(t, 30)) }),
		op("Take", "", func(t *sched.Thread, o any) string {
			v, ok := o.(bcAPI).Take(t)
			return collections.TryInt(v, ok)
		}),
		op("TryTake", "", func(t *sched.Thread, o any) string {
			v, ok := o.(bcAPI).TryTake(t)
			return collections.TryInt(v, ok)
		}),
	}
}

func dictOps() []core.Op {
	ops := []core.Op{
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(*collections.Dictionary).Count(t)) }),
		op("IsEmpty", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(*collections.Dictionary).IsEmpty(t)) }),
		op("Clear", "", func(t *sched.Thread, o any) string { o.(*collections.Dictionary).Clear(t); return collections.OK }),
	}
	for _, x := range []int{10, 20} {
		x := x
		xs := fmt.Sprint(x)
		ops = append(ops,
			op("TryAdd", xs, func(t *sched.Thread, o any) string {
				return collections.Bool(o.(*collections.Dictionary).TryAdd(t, x, x))
			}),
			op("TryRemove", xs, func(t *sched.Thread, o any) string {
				return collections.TryInt(o.(*collections.Dictionary).TryRemove(t, x))
			}),
			op("TryGet", xs, func(t *sched.Thread, o any) string {
				return collections.TryInt(o.(*collections.Dictionary).TryGetValue(t, x))
			}),
			op("GetOrAdd", xs, func(t *sched.Thread, o any) string {
				return collections.Int(o.(*collections.Dictionary).GetOrAdd(t, x, x))
			}),
			op("Set", xs, func(t *sched.Thread, o any) string {
				o.(*collections.Dictionary).Set(t, x, x+1)
				return collections.OK
			}),
			op("TryUpdate", xs, func(t *sched.Thread, o any) string {
				return collections.Bool(o.(*collections.Dictionary).TryUpdate(t, x, x+2, x))
			}),
			op("ContainsKey", xs, func(t *sched.Thread, o any) string {
				return collections.Bool(o.(*collections.Dictionary).ContainsKey(t, x))
			}),
		)
	}
	return ops
}

func bagOps() []core.Op {
	return []core.Op{
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(*collections.Bag).Count(t)) }),
		op("Add", "10", func(t *sched.Thread, o any) string { o.(*collections.Bag).Add(t, 10); return collections.OK }),
		op("Add", "20", func(t *sched.Thread, o any) string { o.(*collections.Bag).Add(t, 20); return collections.OK }),
		op("TryTake", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(*collections.Bag).TryTake(t)) }),
		op("IsEmpty", "", func(t *sched.Thread, o any) string { return collections.Bool(o.(*collections.Bag).IsEmpty(t)) }),
		op("TryPeek", "", func(t *sched.Thread, o any) string { return collections.TryInt(o.(*collections.Bag).TryPeek(t)) }),
		op("ToArray", "", func(t *sched.Thread, o any) string { return collections.IntsSorted(o.(*collections.Bag).ToArray(t)) }),
	}
}

func ctsOps() []core.Op {
	return []core.Op{
		op("Cancel", "", func(t *sched.Thread, o any) string {
			o.(*collections.CancellationTokenSource).Cancel(t)
			return collections.OK
		}),
		op("IsCancellationRequested", "", func(t *sched.Thread, o any) string {
			return collections.Bool(o.(*collections.CancellationTokenSource).IsCancellationRequested(t))
		}),
		op("Register", "", func(t *sched.Thread, o any) string {
			return collections.Int(o.(*collections.CancellationTokenSource).Register(t))
		}),
		op("WaitForCancel", "", func(t *sched.Thread, o any) string {
			o.(*collections.CancellationTokenSource).WaitForCancel(t)
			return collections.OK
		}),
	}
}

func barrierOps() []core.Op {
	return []core.Op{
		op("SignalAndWait", "", func(t *sched.Thread, o any) string {
			o.(*collections.Barrier).SignalAndWait(t)
			return collections.OK
		}),
		op("ParticipantsRemaining", "", func(t *sched.Thread, o any) string {
			return collections.Int(o.(*collections.Barrier).ParticipantsRemaining(t))
		}),
		op("RemoveParticipant", "", func(t *sched.Thread, o any) string {
			return collections.Bool(o.(*collections.Barrier).RemoveParticipant(t))
		}),
		op("CurrentPhaseNumber", "", func(t *sched.Thread, o any) string {
			return collections.Int(o.(*collections.Barrier).CurrentPhaseNumber(t))
		}),
		op("ParticipantCount", "", func(t *sched.Thread, o any) string {
			return collections.Int(o.(*collections.Barrier).ParticipantCount(t))
		}),
		op("AddParticipant", "", func(t *sched.Thread, o any) string {
			return collections.Int(o.(*collections.Barrier).AddParticipant(t))
		}),
	}
}

func linkedListOps() []core.Op {
	return []core.Op{
		op("Count", "", func(t *sched.Thread, o any) string { return collections.Int(o.(*collections.LinkedList).Count(t)) }),
		op("AddFirst", "10", func(t *sched.Thread, o any) string {
			o.(*collections.LinkedList).AddFirst(t, 10)
			return collections.OK
		}),
		op("AddLast", "20", func(t *sched.Thread, o any) string {
			o.(*collections.LinkedList).AddLast(t, 20)
			return collections.OK
		}),
		op("RemoveFirst", "", func(t *sched.Thread, o any) string {
			return collections.TryInt(o.(*collections.LinkedList).RemoveFirst(t))
		}),
		op("RemoveLast", "", func(t *sched.Thread, o any) string {
			return collections.TryInt(o.(*collections.LinkedList).RemoveLast(t))
		}),
		op("ToArray", "", func(t *sched.Thread, o any) string {
			return collections.Ints(o.(*collections.LinkedList).ToArray(t))
		}),
	}
}

// Registry returns the 13 classes of Table 1 with their (Pre) variants and
// expected root causes.
func Registry() []Entry {
	return []Entry{
		{
			Subject: &core.Subject{
				Name:        "Lazy",
				New:         func(t *sched.Thread) any { return collections.NewLazy(t) },
				Ops:         lazyOps(),
				SourceFiles: []string{"internal/collections/lazy.go"},
			},
			Pre: &core.Subject{
				Name:        "Lazy(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewLazyPre(t) },
				Ops:         lazyOps(),
				SourceFiles: []string{"internal/buggy/lazy_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseF},
		},
		{
			Subject: &core.Subject{
				Name:        "ManualResetEvent",
				New:         func(t *sched.Thread) any { return collections.NewManualResetEventSlim(t) },
				Ops:         mreOps(),
				SourceFiles: []string{"internal/collections/mre.go"},
			},
			Pre: &core.Subject{
				Name:        "ManualResetEvent(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewManualResetEventSlimPre(t) },
				Ops:         mreOps(),
				SourceFiles: []string{"internal/buggy/mre_pre.go"},
			},
			Bound:     4, // the Fig. 9 interleaving needs four preemptions (see ablation)
			PreCauses: []Cause{CauseA},
		},
		{
			Subject: &core.Subject{
				Name:        "SemaphoreSlim",
				New:         func(t *sched.Thread) any { return collections.NewSemaphoreSlim(t, 0) },
				Ops:         semaphoreOps(),
				SourceFiles: []string{"internal/collections/semaphore.go"},
			},
			Pre: &core.Subject{
				Name:        "SemaphoreSlim(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewSemaphoreSlimPre(t, 0) },
				Ops:         semaphoreOps(),
				SourceFiles: []string{"internal/buggy/semaphore_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseD},
		},
		{
			Subject: &core.Subject{
				Name:        "CountdownEvent",
				New:         func(t *sched.Thread) any { return collections.NewCountdownEvent(t, 2) },
				Ops:         countdownOps(),
				SourceFiles: []string{"internal/collections/countdown.go"},
			},
			Pre: &core.Subject{
				Name:        "CountdownEvent(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewCountdownEventPre(t, 2) },
				Ops:         countdownOps(),
				SourceFiles: []string{"internal/buggy/countdown_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseE},
		},
		{
			Subject: &core.Subject{
				Name:        "ConcurrentDictionary",
				New:         func(t *sched.Thread) any { return collections.NewDictionary(t) },
				Ops:         dictOps(),
				SourceFiles: []string{"internal/collections/dictionary.go"},
			},
			Bound: 2,
		},
		{
			Subject: &core.Subject{
				Name:        "ConcurrentQueue",
				New:         func(t *sched.Thread) any { return collections.NewQueue(t) },
				Ops:         queueOps(),
				SourceFiles: []string{"internal/collections/queue.go"},
			},
			Pre: &core.Subject{
				Name:        "ConcurrentQueue(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewQueuePre(t) },
				Ops:         queueOps(),
				SourceFiles: []string{"internal/buggy/queue_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseB + "'"},
		},
		{
			Subject: &core.Subject{
				Name:        "ConcurrentStack",
				New:         func(t *sched.Thread) any { return collections.NewStack(t) },
				Ops:         stackOps(),
				SourceFiles: []string{"internal/collections/stack.go"},
			},
			Pre: &core.Subject{
				Name:        "ConcurrentStack(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewStackPre(t) },
				Ops:         stackOps(),
				SourceFiles: []string{"internal/buggy/stack_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseC},
		},
		{
			Subject: &core.Subject{
				Name:        "ConcurrentLinkedList",
				New:         func(t *sched.Thread) any { return collections.NewLinkedList(t) },
				Ops:         linkedListOps(),
				SourceFiles: []string{"internal/collections/linkedlist.go"},
			},
			Bound: 2,
		},
		{
			Subject: &core.Subject{
				Name:        "BlockingCollection",
				New:         func(t *sched.Thread) any { return collections.NewBlockingCollection(t) },
				Ops:         bcOps(),
				SourceFiles: []string{"internal/collections/blockingcollection.go"},
			},
			Pre: &core.Subject{
				Name:        "BlockingCollection(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewBlockingCollectionPre(t) },
				Ops:         bcOps(),
				SourceFiles: []string{"internal/buggy/blockingcollection_pre.go"},
			},
			Bound:     2,
			Causes:    []Cause{CauseI, CauseJ, CauseK},
			PreCauses: []Cause{CauseB},
		},
		{
			Subject: &core.Subject{
				Name:        "ConcurrentBag",
				New:         func(t *sched.Thread) any { return collections.NewBag(t) },
				Ops:         bagOps(),
				SourceFiles: []string{"internal/collections/bag.go"},
			},
			Bound:  2,
			Causes: []Cause{CauseH},
		},
		{
			Subject: &core.Subject{
				Name:        "TaskCompletionSource",
				New:         func(t *sched.Thread) any { return collections.NewTaskCompletionSource(t) },
				Ops:         tcsOps(),
				SourceFiles: []string{"internal/collections/tcs.go"},
			},
			Pre: &core.Subject{
				Name:        "TaskCompletionSource(Pre)",
				New:         func(t *sched.Thread) any { return buggy.NewTaskCompletionSourcePre(t) },
				Ops:         tcsOps(),
				SourceFiles: []string{"internal/buggy/tcs_pre.go"},
			},
			Bound:     2,
			PreCauses: []Cause{CauseG},
		},
		{
			Subject: &core.Subject{
				Name:        "CancellationTokenSource",
				New:         func(t *sched.Thread) any { return collections.NewCancellationTokenSource(t) },
				Ops:         ctsOps(),
				SourceFiles: []string{"internal/collections/cts.go"},
			},
			Bound: 2,
		},
		{
			Subject: &core.Subject{
				Name:        "Barrier",
				New:         func(t *sched.Thread) any { return collections.NewBarrier(t, 2) },
				Ops:         barrierOps(),
				SourceFiles: []string{"internal/collections/barrier.go"},
			},
			Bound:  2,
			Causes: []Cause{CauseL},
		},
	}
}

// Find returns the registry entry whose subject (or Pre subject) has the
// given name.
func Find(name string) (*core.Subject, *Entry, bool) {
	reg := Registry()
	for i := range reg {
		e := &reg[i]
		if e.Subject.Name == name {
			return e.Subject, e, true
		}
		if e.Pre != nil && e.Pre.Name == name {
			return e.Pre, e, true
		}
	}
	return nil, nil, false
}
