package bench

import (
	"fmt"
	"testing"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// telemetryPropertyCauses is the cheap directed subset the observe-only
// property is checked on: three distinct Table-2 classes whose exhaustive
// bounded explorations finish in milliseconds.
var telemetryPropertyCauses = []Cause{CauseB + "'", CauseF, CauseG}

// resultSignature flattens everything a check reports that must be
// deterministic — verdict, both phases' statistics, and the violation
// report — with the wall-clock durations zeroed (the only legitimately
// nondeterministic fields).
func resultSignature(r *core.Result) string {
	p1, p2 := r.Phase1, r.Phase2
	p1.Duration, p2.Duration = 0, 0
	v := ""
	if r.Violation != nil {
		v = r.Violation.String()
	}
	return fmt.Sprintf("%v|%+v|%+v|%d failures|%s", r.Verdict, p1, p2, len(r.Failures), v)
}

// TestTelemetryObserveOnlyProperty is the telemetry contract test: enabling a
// collector must not change anything a check reports. For each directed
// Table-2 case (buggy subject and corrected counterpart), each reduction
// strategy, and each worker count, the telemetry-on run must be bit-identical
// to the telemetry-off run — verdict, both phases' statistics, and the first
// violation — and on these exhaustive runs the whole signature must also be
// identical across worker counts (this is the regression test for the
// shard-split orphaned-level accounting, which made the merged Pruned count
// depend on where the timing-driven splits landed). The enabled collector
// must also have actually observed the run, so the property cannot pass
// vacuously.
func TestTelemetryObserveOnlyProperty(t *testing.T) {
	wanted := map[Cause]bool{}
	for _, c := range telemetryPropertyCauses {
		wanted[c] = true
	}
	cases := 0
	for _, c := range CauseCases() {
		if !wanted[c.Cause] {
			continue
		}
		for _, sub := range []*core.Subject{c.Subject, c.Counterpart} {
			if sub == nil {
				continue
			}
			cases++
			for _, reduction := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
				crossWorkers := ""
				for _, workers := range []int{1, 4} {
					run := func(col *telemetry.Collector) *core.Result {
						t.Helper()
						r, err := core.Check(sub, c.Test, core.Options{
							PreemptionBound: c.Bound,
							ExhaustPhase2:   true,
							Workers:         workers,
							Reduction:       reduction,
							Telemetry:       col,
						})
						if err != nil {
							t.Fatalf("%s cause %s reduction=%v workers=%d: %v",
								sub.Name, c.Cause, reduction, workers, err)
						}
						return r
					}
					tag := fmt.Sprintf("%s cause %s reduction=%v workers=%d",
						sub.Name, c.Cause, reduction, workers)

					off := run(nil)
					col := telemetry.New()
					on := run(col)
					if offSig, onSig := resultSignature(off), resultSignature(on); offSig != onSig {
						t.Errorf("%s: telemetry changed the result\n off: %s\n  on: %s", tag, offSig, onSig)
					}
					snap := col.Snapshot()
					if snap.ExecutionsDone == 0 || snap.WitnessQueries == 0 {
						t.Errorf("%s: collector observed nothing: %+v", tag, snap)
					}
					if int(snap.ExecutionsDone) != on.Phase1.Executions+on.Phase2.Executions {
						t.Errorf("%s: collector counted %d executions, phases report %d",
							tag, snap.ExecutionsDone, on.Phase1.Executions+on.Phase2.Executions)
					}

					cross := resultSignature(on)
					if crossWorkers == "" {
						crossWorkers = cross
					} else if cross != crossWorkers {
						t.Errorf("%s: explorer invariant broke across worker counts\n got: %s\nwant: %s",
							tag, cross, crossWorkers)
					}
				}
			}
		}
	}
	if cases == 0 {
		t.Fatal("no directed cases matched the property subset")
	}
}

// TestTelemetryObserveOnlyRandomCheck extends the property to the Table-2
// random sampling driver: a shared collector across a whole sample, with and
// without test-level workers, must leave the summary untouched. Seed 3 is
// picked so even the -short workload (2x3 matrices) samples a failing test
// and compares the regenerated first violation.
func TestTelemetryObserveOnlyRandomCheck(t *testing.T) {
	sub, _, ok := Find("SemaphoreSlim(Pre)")
	if !ok {
		t.Fatal("SemaphoreSlim(Pre) not registered")
	}
	rows, samples := 3, 4
	if testing.Short() {
		// The full 3x3 sample takes minutes under the race detector; the 2x3
		// short variant keeps `make race` quick while still failing a test.
		rows, samples = 2, 2
	}
	signature := func(sum *core.RandomSummary) string {
		first := ""
		if sum.FirstFailure != nil {
			first = sum.FirstFailure.Test.String()
			if sum.FirstFailure.Violation != nil {
				first += "|" + sum.FirstFailure.Violation.String()
			}
		}
		return fmt.Sprintf("%d passed|%d failed|%d stuck|%s", sum.Passed, sum.Failed, sum.StuckTests, first)
	}
	base := ""
	for _, workers := range []int{1, 2} {
		for _, telOn := range []bool{false, true} {
			var col *telemetry.Collector
			if telOn {
				col = telemetry.New()
			}
			sum, err := core.RandomCheck(sub, nil, core.RandomOptions{
				Rows: rows, Cols: 3, Samples: samples, Seed: 3, Workers: workers,
				Options: core.Options{Telemetry: col},
			})
			tag := fmt.Sprintf("workers=%d telemetry=%v", workers, telOn)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if sum.FirstFailure == nil {
				t.Fatalf("%s: sampled no failing test; the seed no longer exercises the violation path", tag)
			}
			sig := signature(sum)
			if base == "" {
				base = sig
			} else if sig != base {
				t.Errorf("%s: summary diverged\n got: %s\nwant: %s", tag, sig, base)
			}
			if telOn && col.Snapshot().ExecutionsDone == 0 {
				t.Errorf("%s: collector observed nothing", tag)
			}
		}
	}
}
