package bench

import (
	"strings"
	"testing"
)

// TestRunParallelRows runs the sequential-vs-parallel benchmark at small
// worker counts and checks the invariants the rows are supposed to certify:
// for each class the verdict, execution count, and history count are
// identical at every worker count, and speedups are populated.
func TestRunParallelRows(t *testing.T) {
	rows, err := RunParallel(ParallelOptions{Workers: []int{1, 2, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	base := map[string]ParallelRow{}
	classes := map[string]int{}
	for _, r := range rows {
		classes[r.Class]++
		if r.Executions <= 0 {
			t.Errorf("%s workers=%d: no executions", r.Class, r.Workers)
		}
		if r.Wall <= 0 {
			t.Errorf("%s workers=%d: zero wall time", r.Class, r.Workers)
		}
		if r.Workers == 1 {
			if r.Speedup != 1 {
				t.Errorf("%s: baseline speedup = %v, want 1", r.Class, r.Speedup)
			}
			base[r.Class] = r
			continue
		}
		b, ok := base[r.Class]
		if !ok {
			t.Fatalf("%s workers=%d appeared before its baseline row", r.Class, r.Workers)
		}
		if r.Verdict != b.Verdict {
			t.Errorf("%s workers=%d: verdict %s, sequential said %s", r.Class, r.Workers, r.Verdict, b.Verdict)
		}
		if r.Executions != b.Executions || r.Histories != b.Histories {
			t.Errorf("%s workers=%d: executions/histories %d/%d, sequential %d/%d",
				r.Class, r.Workers, r.Executions, r.Histories, b.Executions, b.Histories)
		}
		if r.Speedup <= 0 {
			t.Errorf("%s workers=%d: speedup %v not computed", r.Class, r.Workers, r.Speedup)
		}
	}
	// Fig. 1 and Fig. 9 subjects plus their fixed counterparts, 3 rows each.
	for class, n := range classes {
		if n != 3 {
			t.Errorf("%s: %d rows, want 3", class, n)
		}
	}
	// Both buggy subjects must actually fail and their counterparts pass.
	for _, c := range parallelSubjects() {
		if v := base[c.Subject.Name].Verdict; v == "PASS" {
			t.Errorf("%s: expected a violation, got %s", c.Subject.Name, v)
		}
		if c.Counterpart != nil {
			if v := base[c.Counterpart.Name].Verdict; v != "PASS" {
				t.Errorf("%s: expected PASS, got %s", c.Counterpart.Name, v)
			}
		}
	}

	// The renderer mentions every class and worker count.
	var sb strings.Builder
	WriteParallel(&sb, rows)
	out := sb.String()
	for class := range classes {
		if !strings.Contains(out, class) {
			t.Errorf("rendered table missing class %s", class)
		}
	}

	// JSON conversion carries the parallel-specific fields.
	js := ParallelJSON(rows)
	if len(js) != len(rows) {
		t.Fatalf("ParallelJSON: %d records for %d rows", len(js), len(rows))
	}
	for i, j := range js {
		if j.Kind != "parallel" || j.Workers != rows[i].Workers || j.Speedup != rows[i].Speedup {
			t.Errorf("record %d: %+v does not match row %+v", i, j, rows[i])
		}
	}
}
