package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/subjects"
	"lineup/internal/telemetry"
)

func generateKey(r JSONRow) string {
	return fmt.Sprintf("%s|%s", r.Class, r.Mode)
}

// TestGenerateBaseline is the coverage-guided-generation gate. The smoke mode
// (every `make check`) runs the guided strategy only, on the two cheapest
// corpus families with a small budget, and requires it to find the seeded
// bugs — the machinery check. With LINEUP_BENCH_FULL=1 (the `make
// bench-generate` entry point) it measures guided vs random on every corpus
// family with the full budget and requires the guided rows to find every
// seeded bug. With LINEUP_UPDATE_BENCH=1 the measured rows are merged into
// BENCH_lineup.json.
func TestGenerateBaseline(t *testing.T) {
	tel := telemetry.New()
	opts := GenerateOptions{
		Classes:    []string{"Pipeline", "ShardedMap"},
		Seed:       1,
		Budget:     200,
		SkipRandom: true,
		Telemetry:  tel,
	}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = GenerateOptions{Seed: 1, Budget: 600, Telemetry: tel}
	}
	rows, err := RunGenerate(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(opts.Classes)
	if full {
		want = 2 * len(subjects.Registry()) // guided + random per corpus family
	}
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		t.Logf("%s %s seed=%d budget=%d: found=%v tests-to-violation=%d (%d tests, %v)",
			r.Class, r.Mode, r.Seed, r.Budget, r.Found, r.TestsToViolation, r.Tests, r.Wall)
		if r.Mode == "guided" && !r.Found {
			t.Errorf("%s: guided generation missed the seeded bug within %d tests", r.Class, r.Budget)
		}
		if r.Mode == "guided" && (r.CovPairs == 0 || r.CovHists == 0) {
			t.Errorf("%s: guided run accumulated no coverage (%d pairs, %d hists)", r.Class, r.CovPairs, r.CovHists)
		}
	}
	snap := tel.Snapshot()
	if snap.GenTests == 0 || snap.GenCovPairs == 0 {
		t.Errorf("telemetry observed no generation work: %+v", snap)
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := GenerateJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[generateKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "generate" && measured[generateKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d generate rows", path, len(fresh))
}

// TestGenerateJSONFields pins the machine-readable schema of the generation
// rows.
func TestGenerateJSONFields(t *testing.T) {
	rows := []GenerateRow{{
		Class: "MSQueue(Pre)", Mode: "guided", Seed: 1, Budget: 600, Bound: 2,
		Found: true, TestsToViolation: 95, Tests: 95,
		CorpusSize: 40, CovPairs: 60, CovHists: 200, Wall: 2500000000,
	}}
	js := GenerateJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "generate" || r.Mode != "guided" || r.Seed != 1 || r.Budget != 600 ||
		r.PB != 2 || r.Tests != 95 || r.TestsToViolation != 95 || r.Failed != 1 ||
		r.CorpusSize != 40 || r.CovPairs != 60 || r.CovHists != 200 || r.WallMS != 2500 {
		t.Fatalf("bad generate JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"mode", "seed", "budget", "tests_to_violation", "coverage_pairs", "coverage_hists"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
