package bench

import (
	"fmt"
	"strings"

	"lineup/internal/core"
)

// ParseTest parses a textual test matrix against a subject's invocation
// universe. Rows (threads) are separated by '/', invocations within a row
// by commas or spaces, and optional init/final sequences are prefixed with
// "init:" and "final:". Example:
//
//	"init: Enqueue(10) / TryDequeue(), Count() / Enqueue(20) / final: ToArray()"
//
// parses into an init sequence, two test threads, and a final sequence.
func ParseTest(sub *core.Subject, s string) (*core.Test, error) {
	m := &core.Test{}
	for _, part := range strings.Split(s, "/") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		target := &m.Rows
		switch {
		case strings.HasPrefix(part, "init:"):
			part = strings.TrimSpace(strings.TrimPrefix(part, "init:"))
			ops, err := parseOps(sub, part)
			if err != nil {
				return nil, err
			}
			m.Init = ops
			continue
		case strings.HasPrefix(part, "final:"):
			part = strings.TrimSpace(strings.TrimPrefix(part, "final:"))
			ops, err := parseOps(sub, part)
			if err != nil {
				return nil, err
			}
			m.Final = ops
			continue
		}
		ops, err := parseOps(sub, part)
		if err != nil {
			return nil, err
		}
		if len(ops) > 0 {
			*target = append(*target, ops)
		}
	}
	if len(m.Rows) == 0 {
		return nil, fmt.Errorf("bench: test %q has no threads", s)
	}
	return m, nil
}

// tokenizeOps splits on commas and whitespace, except inside parentheses
// (so "PushRange(30,40)" stays one token).
func tokenizeOps(s string) []string {
	var toks []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ',' || r == ' ' || r == '\t') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return toks
}

func parseOps(sub *core.Subject, s string) ([]core.Op, error) {
	var ops []core.Op
	for _, tok := range tokenizeOps(s) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !strings.HasSuffix(tok, ")") {
			tok += "()"
		}
		op, ok := sub.FindOp(tok)
		if !ok {
			var known []string
			for _, o := range sub.Ops {
				known = append(known, o.Name())
			}
			return nil, fmt.Errorf("bench: %s has no invocation %q (have: %s)",
				sub.Name, tok, strings.Join(known, ", "))
		}
		ops = append(ops, op)
	}
	return ops, nil
}
