package bench

import (
	"fmt"
	"time"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
)

// This file measures the specialized fast monitors (internal/monitor/fast)
// against the memoized Wing–Gong search on synthetic unambiguous workloads
// of growing length — the crossover curves behind the kind=="fastmon" rows
// of BENCH_lineup.json. The WGL baseline runs unpartitioned: partitioning is
// a separate (P-compositionality) optimization that only applies to some
// types, and both cited decrease-and-conquer papers compare against the
// plain memoized search.

// FastmonRow is one crossover measurement: the same generated history judged
// by the specialized monitor and by the memoized Wing–Gong search.
type FastmonRow struct {
	Model    string        // queue, stack, set, register, pqueue
	Ops      int           // history length in operations
	FastWall time.Duration // specialized monitor wall time
	// WGLWall is the memoized unpartitioned Wing–Gong wall time; 0 when the
	// measurement was skipped because the previous length already exceeded
	// the budget (the search is quadratic on these workloads).
	WGLWall time.Duration
	Speedup float64 // WGLWall / FastWall; 0 when WGL was skipped
	Verdict string  // PASS when every measured verdict is linearizable and agrees
}

// FastmonOptions parameterizes RunFastmon.
type FastmonOptions struct {
	// Lengths lists the history lengths (in operations) to measure; the
	// default sweeps the decades 100 .. 1,000,000.
	Lengths []int
	// Models selects the specialized monitors to measure (default: all five).
	Models []string
	// WGLBudget stops measuring the Wing–Gong baseline for a model once a
	// run exceeds it (longer lengths report WGLWall 0); the default is 2s.
	WGLBudget time.Duration
}

func (o FastmonOptions) withDefaults() FastmonOptions {
	if len(o.Lengths) == 0 {
		o.Lengths = []int{100, 1_000, 10_000, 100_000, 1_000_000}
	}
	if len(o.Models) == 0 {
		o.Models = fast.Names()
	}
	if o.WGLBudget <= 0 {
		o.WGLBudget = 2 * time.Second
	}
	return o
}

// fastmonHist builds the unambiguous linearizable workload for one model at
// length n (operations, rounded down to the generator's block size). Every
// history is linearizable by construction and inside the fast fragment, so
// the specialized monitor must return a definite true. The fill-then-drain
// shapes grow the resident state to n/2 elements, which is exactly where the
// unpartitioned Wing–Gong search turns quadratic (its memo keys fingerprint
// the whole state); the register workload uses clusters of reads overlapping
// one write, which blow up the search's frontier subsets instead.
func fastmonHist(model string, n int) (*history.History, error) {
	b := &histBuilder{}
	switch model {
	case "queue":
		m := n / 2
		for i := 0; i < m; i++ {
			b.seq(0, fmt.Sprintf("Enqueue(%d)", i), "ok")
		}
		for i := 0; i < m; i++ {
			b.seq(0, "TryDequeue()", fmt.Sprint(i))
		}
	case "stack":
		m := n / 2
		for i := 0; i < m; i++ {
			b.seq(0, fmt.Sprintf("Push(%d)", i), "ok")
		}
		for i := m - 1; i >= 0; i-- {
			b.seq(0, "TryPop()", fmt.Sprint(i))
		}
	case "set":
		m := n / 2
		for i := 0; i < m; i++ {
			b.seq(0, fmt.Sprintf("Add(%d)", i), "true")
		}
		for i := 0; i < m; i++ {
			b.seq(0, fmt.Sprintf("Remove(%d)", i), "true")
		}
	case "register":
		// Clusters of one write overlapped by concurrent reads of the new
		// value: every read linearizes after the write, so the history is
		// unambiguous, but the searcher must still consider each cluster's
		// interleavings (2^(readers+1) frontier subsets).
		const readers = 8
		clusters := n / (readers + 1)
		for c := 0; c < clusters; c++ {
			v := fmt.Sprint(c + 1) // never write the initial value "0"
			w := b.call(0, fmt.Sprintf("Write(%s)", v))
			reads := make([]int, readers)
			for r := 0; r < readers; r++ {
				reads[r] = b.call(r+1, "Read()")
			}
			b.ret(0, w, fmt.Sprintf("Write(%s)", v), "ok")
			for r := 0; r < readers; r++ {
				b.ret(r+1, reads[r], "Read()", v)
			}
		}
	case "pqueue":
		m := n / 2
		for i := 0; i < m; i++ {
			b.seq(0, fmt.Sprintf("Insert(%d)", i), "ok")
		}
		for i := 0; i < m; i++ {
			b.seq(0, "TryDeleteMin()", fmt.Sprint(i))
		}
	default:
		return nil, fmt.Errorf("bench: no fastmon workload for model %q", model)
	}
	return &history.History{Events: b.evs}, nil
}

// histBuilder assembles a well-formed history event list with dense op
// indices.
type histBuilder struct {
	evs []history.Event
	idx int
}

// seq appends one complete (call immediately followed by return) operation.
func (b *histBuilder) seq(thread int, op, res string) {
	i := b.call(thread, op)
	b.ret(thread, i, op, res)
}

// call opens an operation and returns its index for the matching ret.
func (b *histBuilder) call(thread int, op string) int {
	i := b.idx
	b.idx++
	b.evs = append(b.evs, history.Event{Thread: thread, Kind: history.Call, Op: op, Index: i})
	return i
}

func (b *histBuilder) ret(thread, idx int, op, res string) {
	b.evs = append(b.evs, history.Event{Thread: thread, Kind: history.Return, Op: op, Result: res, Index: idx})
}

// RunFastmon measures the fast-vs-WGL crossover: for each model and length
// it generates the workload, times the specialized monitor (which must
// return a definite linearizable), and times the memoized Wing–Gong search
// until a run exceeds the budget. Progress (if non-nil) receives a line per
// measurement.
func RunFastmon(opts FastmonOptions, progress func(string)) ([]FastmonRow, error) {
	opts = opts.withDefaults()
	var rows []FastmonRow
	for _, name := range opts.Models {
		kind, ok := fast.KindFor(name)
		if !ok {
			return nil, fmt.Errorf("bench: no specialized monitor for model %q", name)
		}
		model, ok := monitor.Builtin(name)
		if !ok {
			return nil, fmt.Errorf("bench: no builtin model %q", name)
		}
		wglAlive := true
		for _, n := range opts.Lengths {
			h, err := fastmonHist(name, n)
			if err != nil {
				return nil, err
			}
			row := FastmonRow{Model: name, Ops: len(h.Ops()), Verdict: "PASS"}
			start := time.Now()
			lin, err := fast.Check(kind, h)
			row.FastWall = time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: fast %s at %d ops must be decidable: %w", name, n, err)
			}
			if !lin {
				row.Verdict = "FAIL"
			}
			if wglAlive {
				start = time.Now()
				out, err := monitor.Check(model, h, monitor.Options{NoPartition: true})
				row.WGLWall = time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("bench: wgl %s at %d ops: %w", name, n, err)
				}
				if out.Linearizable != lin {
					row.Verdict = "FAIL"
				}
				if row.FastWall > 0 {
					row.Speedup = float64(row.WGLWall) / float64(row.FastWall)
				}
				if row.WGLWall > opts.WGLBudget {
					wglAlive = false
				}
			}
			rows = append(rows, row)
			if progress != nil {
				wgl := "skipped"
				if row.WGLWall > 0 {
					wgl = fmt.Sprintf("%v (%.1fx)", row.WGLWall.Round(time.Microsecond), row.Speedup)
				}
				progress(fmt.Sprintf("%s n=%d: fast %v, wgl %s", name, row.Ops,
					row.FastWall.Round(time.Microsecond), wgl))
			}
		}
	}
	return rows, nil
}

// FastmonJSON converts crossover rows to JSON records.
func FastmonJSON(rows []FastmonRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:    "fastmon",
			Class:   r.Model,
			Ops:     int64(r.Ops),
			Speedup: r.Speedup,
			Verdict: r.Verdict,
			WGLMS:   float64(r.WGLWall) / float64(time.Millisecond),
			WallMS:  float64(r.FastWall) / float64(time.Millisecond),
		})
	}
	return out
}
