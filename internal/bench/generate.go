package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"lineup/internal/core"
	"lineup/internal/subjects"
	"lineup/internal/telemetry"
)

// GenerateRow is one time-to-first-violation measurement on a defect-seeded
// subject from the Go-native corpus: how many tests one generation strategy
// needed before it hit the seeded bug, and what it cost.
type GenerateRow struct {
	Class string
	// Mode is "guided" (coverage-guided mutation, core.Generate) or "random"
	// (uniform 3×3 sampling, core.RandomCheck with StopAtFirstFailure).
	Mode   string
	Seed   int64
	Budget int
	Bound  int
	// Found reports whether the seeded bug was hit within the budget;
	// TestsToViolation is the 1-based index of the first failing test (0 if
	// not found). Tests is the number of tests actually checked.
	Found            bool
	TestsToViolation int
	Tests            int
	// Guided-only coverage accounting (zero for random rows).
	CorpusSize int
	CovPairs   int
	CovHists   int
	Wall       time.Duration
}

// GenerateOptions parameterizes RunGenerate.
type GenerateOptions struct {
	// Classes restricts the run to these corpus families (empty = all).
	Classes []string
	// Seed drives both the mutation stream and the random sampler, so the
	// two modes are compared on the same randomness budget.
	Seed int64
	// Budget is the per-subject test budget for both modes (default 600).
	Budget int
	// SkipRandom drops the random-sampling baseline rows (the smoke gate
	// only exercises the guided machinery).
	SkipRandom bool
	// Telemetry, when non-nil, is shared by every measured run.
	Telemetry *telemetry.Collector
}

func (o GenerateOptions) wants(name string) bool {
	if len(o.Classes) == 0 {
		return true
	}
	for _, c := range o.Classes {
		if c == name {
			return true
		}
	}
	return false
}

// RunGenerate measures coverage-guided generation against uniform random
// sampling on the defect-seeded subjects of the Go-native corpus
// (internal/subjects): for each family it runs both strategies from the same
// seed with the same test budget against the (Pre) variant and records the
// tests-to-first-violation. The guided rows also record the final corpus and
// coverage sizes, so regressions in the coverage signal show up as budget
// blow-ups in the committed baseline.
func RunGenerate(opts GenerateOptions, progress func(string)) ([]GenerateRow, error) {
	budget := opts.Budget
	if budget <= 0 {
		budget = 600
	}
	var rows []GenerateRow
	for _, e := range subjects.Registry() {
		if !opts.wants(e.Name) {
			continue
		}
		checkOpts := core.Options{PreemptionBound: e.Bound, Telemetry: opts.Telemetry}

		if progress != nil {
			progress(fmt.Sprintf("%s guided seed=%d budget=%d", e.Pre.Name, opts.Seed, budget))
		}
		start := time.Now()
		g, err := core.Generate(e.Pre, core.GenOptions{
			Options: checkOpts,
			Seed:    opts.Seed,
			Budget:  budget,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: generate %s: %w", e.Pre.Name, err)
		}
		rows = append(rows, GenerateRow{
			Class: e.Pre.Name, Mode: "guided",
			Seed: opts.Seed, Budget: budget, Bound: e.Bound,
			Found:            g.Failed != nil,
			TestsToViolation: g.TestsToFailure,
			Tests:            g.Tests,
			CorpusSize:       g.CorpusSize,
			CovPairs:         g.CoveragePairs,
			CovHists:         g.CoverageHists,
			Wall:             time.Since(start),
		})

		if opts.SkipRandom {
			continue
		}
		if progress != nil {
			progress(fmt.Sprintf("%s random seed=%d budget=%d", e.Pre.Name, opts.Seed, budget))
		}
		start = time.Now()
		sum, err := core.RandomCheck(e.Pre, nil, core.RandomOptions{
			Options: checkOpts,
			Rows:    3, Cols: 3,
			Samples:            budget,
			Seed:               opts.Seed,
			StopAtFirstFailure: true,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: random %s: %w", e.Pre.Name, err)
		}
		row := GenerateRow{
			Class: e.Pre.Name, Mode: "random",
			Seed: opts.Seed, Budget: budget, Bound: e.Bound,
			Found: sum.FirstFailure != nil,
			Tests: sum.Passed + sum.Failed,
			Wall:  time.Since(start),
		}
		if row.Found {
			// Sequential + stop-at-first-failure: the failing test is the
			// last one checked.
			row.TestsToViolation = row.Tests
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteGenerate renders guided-vs-random time-to-first-violation rows.
func WriteGenerate(w io.Writer, rows []GenerateRow) {
	fmt.Fprintf(w, "%-22s %-7s %5s %7s %3s | %6s %9s %7s | %7s %6s %6s | %9s\n",
		"Class", "mode", "seed", "budget", "PB", "found", "tests2bug", "tests", "corpus", "pairs", "hists", "wall")
	fmt.Fprintln(w, strings.Repeat("-", 118))
	for _, r := range rows {
		found := "yes"
		t2b := fmt.Sprint(r.TestsToViolation)
		if !r.Found {
			found, t2b = "NO", "-"
		}
		corpus, pairs, hists := "-", "-", "-"
		if r.Mode == "guided" {
			corpus, pairs, hists = fmt.Sprint(r.CorpusSize), fmt.Sprint(r.CovPairs), fmt.Sprint(r.CovHists)
		}
		fmt.Fprintf(w, "%-22s %-7s %5d %7d %3d | %6s %9s %7d | %7s %6s %6s | %9s\n",
			r.Class, r.Mode, r.Seed, r.Budget, r.Bound,
			found, t2b, r.Tests, corpus, pairs, hists, round(r.Wall))
	}
}

// GenerateJSON converts generation rows to JSON records.
func GenerateJSON(rows []GenerateRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:             "generate",
			Class:            r.Class,
			Mode:             r.Mode,
			Seed:             r.Seed,
			Budget:           r.Budget,
			PB:               r.Bound,
			Tests:            r.Tests,
			TestsToViolation: r.TestsToViolation,
			Failed:           btoi(r.Found),
			CorpusSize:       r.CorpusSize,
			CovPairs:         r.CovPairs,
			CovHists:         r.CovHists,
			WallMS:           float64(r.Wall) / float64(time.Millisecond),
		})
	}
	return out
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
