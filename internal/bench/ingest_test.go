package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestServeIngestBaseline is the ingest-path scaling gate. Smoke mode (every
// `make check`, race-enabled via `make serve-smoke`) pushes a few thousand
// operations through both wire encodings and concurrent connections and
// checks the machinery: exact accounting, PASS verdicts, all rows present.
// With LINEUP_BENCH_FULL=1 (`make bench-serve`) it measures the acceptance
// shape — jsonl vs batch × 1 vs 4 connections — and gates the tentpole: batch
// frames over 4 connections must ingest at least 3× the single-connection
// JSONL rate of the same run (the sharded-tracker equivalent of the PR 6
// single-tracker baseline). With LINEUP_UPDATE_BENCH=1 the measured rows are
// merged into BENCH_lineup.json.
func TestServeIngestBaseline(t *testing.T) {
	opts := ServeIngestOptions{Ops: 20_000, Partitions: 8, Conns: []int{1, 2}}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = ServeIngestOptions{Ops: 800_000, Partitions: 16, Conns: []int{1, 4}}
	}
	rows, err := RunServeIngest(opts, func(line string) { t.Log(line) })
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(opts.Conns); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	byKey := map[string]ServeIngestRow{}
	for _, r := range rows {
		if r.Ops < opts.Ops {
			t.Errorf("%s conns=%d: checked %d ops, target %d", r.Mode, r.Conns, r.Ops, opts.Ops)
		}
		if r.Verdict != "PASS" {
			t.Errorf("%s conns=%d: linearizable corpus judged %s", r.Mode, r.Conns, r.Verdict)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s conns=%d: no throughput measured", r.Mode, r.Conns)
		}
		byKey[r.Mode+"|"+strconv.Itoa(r.Conns)] = r
	}
	if full && !t.Failed() {
		base := byKey["jsonl|1"].Throughput
		fast := byKey["batch|4"].Throughput
		if fast < 3*base {
			t.Errorf("ingest scaling gate: batch×4conn %.0f ops/s < 3× jsonl×1conn %.0f ops/s", fast, base)
		}
		t.Logf("ingest scaling: jsonl×1 %.0f ops/s → batch×4 %.0f ops/s (%.1fx)", base, fast, fast/base)
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := ServeIngestJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[serveKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "serve" && measured[serveKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d serve ingest rows", path, len(fresh))
}

// TestServeIngestJSONFields pins the machine-readable schema of ingest rows.
func TestServeIngestJSONFields(t *testing.T) {
	rows := []ServeIngestRow{{
		Class: "BlockingCollection", Mode: "batch", Conns: 4,
		Ops: 800_000, Events: 1_600_000, Partitions: 16, Window: 128,
		IngestWall: 200_000_000, TotalWall: 500_000_000,
		Throughput: 4_000_000, Verdict: "PASS",
	}}
	js := ServeIngestJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "serve" || r.Mode != "batch" || r.Conns != 4 || r.Workers != 1 ||
		r.Ops != 800_000 || r.Events != 1_600_000 || r.Throughput != 4_000_000 ||
		r.IngestMS != 200 || r.WallMS != 500 || r.Verdict != "PASS" {
		t.Fatalf("bad serve ingest JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"mode", "connections", "ingest_ms", "ops_per_sec"} {
		if !strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
