package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJSONRows(t *testing.T) {
	t2 := Table2JSON([]Table2Row{{
		Class: "ConcurrentQueue", Passed: 9, Failed: 1,
		Schedules: 1234, Histories: 56, Wall: 1500 * time.Millisecond,
	}})
	if len(t2) != 1 || t2[0].Kind != "table2" || t2[0].Tests != 10 ||
		t2[0].Schedules != 1234 || t2[0].Histories != 56 || t2[0].WallMS != 1500 {
		t.Fatalf("bad table2 row: %+v", t2)
	}
	cmp := CompareJSON([]*CompareResult{{
		Subject: "ConcurrentStack", Tests: 5, Executions: 777,
		LineUpFailures: 2, AtomicityWarnings: 3,
	}}, []time.Duration{250 * time.Millisecond})
	if len(cmp) != 1 || cmp[0].Kind != "compare" || cmp[0].Schedules != 777 ||
		cmp[0].AtomWarn != 3 || cmp[0].WallMS != 250 {
		t.Fatalf("bad compare row: %+v", cmp)
	}

	path := filepath.Join(t.TempDir(), JSONFile)
	if err := WriteJSONRows(path, append(t2, cmp...)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []JSONRow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if len(back) != 2 || back[0].Class != "ConcurrentQueue" || back[1].Class != "ConcurrentStack" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
