package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func distKey(r JSONRow) string {
	return fmt.Sprintf("%s|%d", r.Class, r.Workers)
}

// TestDistBaseline is the distributed-coordinator scaling gate. The smoke
// mode (every `make check`, and `make dist-smoke` under -race) runs a small
// class at 3 workers with injected worker crashes and requires the merged
// result to be bit-identical to the sequential exhaustive check. With
// LINEUP_BENCH_FULL=1 (the `make bench-dist` entry point) it measures a
// larger workload at 1, 2, and 4 workers; with LINEUP_UPDATE_BENCH=1 the
// rows are merged into BENCH_lineup.json as kind:"dist".
func TestDistBaseline(t *testing.T) {
	opts := DistLoadOptions{
		Class:    "ConcurrentQueue(Pre)",
		TestSpec: "Enqueue(10) TryDequeue() / TryDequeue() Enqueue(20)",
		Workers:  []int{3},
		KillSeed: 2, KillEvery: 2,
	}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = DistLoadOptions{
			Class:    "ConcurrentQueue",
			TestSpec: "Enqueue(10) TryDequeue() TryPeek() / Enqueue(20) TryDequeue() IsEmpty() / TryPeek() IsEmpty()",
			Workers:  []int{1, 2, 4},
			KillSeed: 2, KillEvery: 2,
		}
	}
	rows, err := RunDistScaling(opts, func(line string) { t.Log(line) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opts.Workers) {
		t.Fatalf("got %d rows, want %d", len(rows), len(opts.Workers))
	}
	killed := 0
	for _, r := range rows {
		if r.Verdict != "PASS" {
			t.Errorf("workers=%d: merged result diverged from the sequential check", r.Workers)
		}
		if r.Units < 2 {
			t.Errorf("workers=%d: only %d work units; the coordinator had nothing to coordinate", r.Workers, r.Units)
		}
		if r.Killed > 0 && r.Retries == 0 {
			t.Errorf("workers=%d: %d workers killed but no lease retries recorded", r.Workers, r.Killed)
		}
		killed += r.Killed
	}
	if killed == 0 {
		t.Error("no worker crashes injected; the fault-tolerance half of the gate is vacuous")
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := DistJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[distKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "dist" && measured[distKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d dist rows", path, len(fresh))
}

// TestDistJSONFields pins the machine-readable schema of the dist rows.
func TestDistJSONFields(t *testing.T) {
	rows := []DistRow{{
		Class: "ConcurrentQueue", Workers: 4, Units: 9, Killed: 3, Retries: 3,
		Schedules: 7000, Histories: 1700, Verdict: "PASS",
		Wall: 500_000_000, Speedup: 1.8,
	}}
	js := DistJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "dist" || r.Workers != 4 || r.Units != 9 || r.Killed != 3 ||
		r.Retries != 3 || r.Schedules != 7000 || r.Histories != 1700 ||
		r.Verdict != "PASS" || r.Speedup != 1.8 || r.WallMS != 500 {
		t.Fatalf("bad dist JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"units", "killed_workers", "retries", "schedules_explored", "wall_ms"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
