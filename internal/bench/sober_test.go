package bench_test

import (
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/vsync"
)

// TestSoberCleanOnCorrectClasses reproduces Section 5.7: scanning the
// corrected classes' executions for store-buffer SC-violation patterns
// finds nothing, because their cross-thread protocols use volatiles,
// interlocked operations, and monitors.
func TestSoberCleanOnCorrectClasses(t *testing.T) {
	for _, name := range []string{"ConcurrentStack", "ConcurrentQueue", "SemaphoreSlim", "ManualResetEvent", "Lazy"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sub, _, ok := bench.Find(name)
			if !ok {
				t.Fatalf("subject %s not found", name)
			}
			res, err := bench.SoberRandom(sub, 2, 2, 6, 9, core.Options{PreemptionBound: 2})
			if err != nil {
				t.Fatalf("sober scan: %v", err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s: unexpected SC-violation patterns: %v", name, res.Violations)
			}
		})
	}
}

// dekkerSubject is a deliberately misformed mutual-exclusion attempt using
// plain flags: the textbook program whose behavior differs under TSO.
func dekkerSubject() *core.Subject {
	type dekker struct {
		flagA, flagB *vsync.Cell[bool]
	}
	enterA := core.Op{Method: "EnterA", Run: func(t *sched.Thread, o any) string {
		d := o.(*dekker)
		d.flagA.Store(t, true)
		if d.flagB.Load(t) {
			return "contended"
		}
		return "entered"
	}}
	enterB := core.Op{Method: "EnterB", Run: func(t *sched.Thread, o any) string {
		d := o.(*dekker)
		d.flagB.Store(t, true)
		if d.flagA.Load(t) {
			return "contended"
		}
		return "entered"
	}}
	return &core.Subject{
		Name: "Dekker",
		New: func(t *sched.Thread) any {
			return &dekker{
				flagA: vsync.NewCell(t, "flagA", false),
				flagB: vsync.NewCell(t, "flagB", false),
			}
		},
		Ops: []core.Op{enterA, enterB},
	}
}

// TestSoberFlagsDekker: the plain-flag Dekker protocol is flagged as a
// potential SC violation under TSO (both threads could enter).
func TestSoberFlagsDekker(t *testing.T) {
	res, err := bench.SoberRandom(dekkerSubject(), 2, 1, 4, 1, core.Options{PreemptionBound: 2})
	if err != nil {
		t.Fatalf("sober scan: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("Dekker pattern not flagged")
	}
}
