package bench

import (
	"lineup/internal/core"
	"lineup/internal/sched"
)

// CauseCase is a directed minimal test for one root cause of Table 2: the
// smallest test matrix (found by running core.Shrink on random failures,
// mirroring the paper's manual minimization) that exposes the cause, the
// subject it fails on, and the correct counterpart expected to pass the
// same test.
type CauseCase struct {
	Cause Cause
	// Subject is the implementation the cause manifests on.
	Subject *core.Subject
	// Counterpart is the corrected implementation expected to pass the same
	// test (nil for intentional causes H..L, which live on the corrected
	// class itself).
	Counterpart *core.Subject
	// Test is the minimal failing matrix.
	Test *core.Test
	// Bound is the preemption bound needed to expose the cause.
	Bound int
	// WantKind is the expected violation kind.
	WantKind core.ViolationKind
	// Note explains the failing scenario in one sentence.
	Note string
}

func find(name string) *core.Subject {
	s, _, ok := Find(name)
	if !ok {
		panic("bench: unknown subject " + name)
	}
	return s
}

func mustOp(s *core.Subject, name string) core.Op {
	o, ok := s.FindOp(name)
	if !ok {
		panic("bench: subject " + s.Name + " has no op " + name)
	}
	return o
}

// figOp builds an extra invocation outside the registry universe (used by
// the Fig. 1 scenario, which adds the values 200 and 400).
func figOp(method, args string, run func(t *sched.Thread, obj any) string) core.Op {
	return core.Op{Method: method, Args: args, Run: run}
}

// CauseCases returns the directed minimal test for every root cause A..L.
func CauseCases() []CauseCase {
	var cases []CauseCase

	// A — ManualResetEvent(Pre), Fig. 9: Wait's CAS typo; Set/Reset between
	// the two reads corrupts the state word; the final Set skips the wakeup.
	{
		pre := find("ManualResetEvent(Pre)")
		cur := find("ManualResetEvent")
		wait := mustOp(pre, "Wait()")
		set := mustOp(pre, "Set()")
		reset := mustOp(pre, "Reset()")
		cases = append(cases, CauseCase{
			Cause: CauseA, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{wait}, {set, reset, set}}},
			Bound:    4,
			WantKind: core.StuckNoWitness,
			Note:     "Fig. 9: Wait never unblocks although Set was called last",
		})
	}

	// B — BlockingCollection(Pre), Fig. 1: TryTake's lock acquire times out
	// while another operation holds the lock; it fails on a non-empty
	// collection.
	{
		pre := find("BlockingCollection(Pre)")
		cur := find("BlockingCollection")
		add200 := figOp("Add", "200", func(t *sched.Thread, o any) string {
			type adder interface{ Add(*sched.Thread, int) bool }
			o.(adder).Add(t, 200)
			return "ok"
		})
		add400 := figOp("Add", "400", func(t *sched.Thread, o any) string {
			type adder interface{ Add(*sched.Thread, int) bool }
			o.(adder).Add(t, 400)
			return "ok"
		})
		tryTake := mustOp(pre, "TryTake()")
		cases = append(cases, CauseCase{
			Cause: CauseB, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{add200, tryTake}, {add400, tryTake}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "Fig. 1: TryTake fails although both Adds completed",
		})
	}

	// B' — ConcurrentQueue(Pre): Count derived from a torn pair of counter
	// reads; a dequeue between the reads yields a size the queue never had.
	{
		pre := find("ConcurrentQueue(Pre)")
		cur := find("ConcurrentQueue")
		count := mustOp(pre, "Count()")
		enq := mustOp(pre, "Enqueue(10)")
		deq := mustOp(pre, "TryDequeue()")
		cases = append(cases, CauseCase{
			Cause: CauseB + "'", Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{count}, {enq, deq}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "Count returns -1 when a dequeue lands between its two counter reads",
		})
	}

	// C — ConcurrentStack(Pre): TryPopRange assembled from single pops; a
	// concurrent push interleaves into the observed range.
	{
		pre := find("ConcurrentStack(Pre)")
		cur := find("ConcurrentStack")
		popRange := mustOp(pre, "TryPopRange(2)")
		push10 := mustOp(pre, "Push(10)")
		push20 := mustOp(pre, "Push(20)")
		push30 := figOp("Push", "30", func(t *sched.Thread, o any) string {
			type pusher interface{ Push(*sched.Thread, int) }
			o.(pusher).Push(t, 30)
			return "ok"
		})
		cases = append(cases, CauseCase{
			Cause: CauseC, Subject: pre, Counterpart: cur,
			Test: &core.Test{
				Init: []core.Op{push10, push20},
				Rows: [][]core.Op{{popRange}, {push30}},
			},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "TryPopRange(2) observes a range that was never on the stack",
		})
	}

	// D — SemaphoreSlim(Pre): waiter count published after the monitor is
	// released; a Release in the window wakes nobody.
	{
		pre := find("SemaphoreSlim(Pre)")
		cur := find("SemaphoreSlim")
		wait := mustOp(pre, "Wait()")
		release := mustOp(pre, "Release()")
		cases = append(cases, CauseCase{
			Cause: CauseD, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{wait}, {release}}},
			Bound:    2,
			WantKind: core.StuckNoWitness,
			Note:     "Wait blocks forever although Release completed and a permit is available",
		})
	}

	// E — CountdownEvent(Pre): unsynchronized Signal decrement loses an
	// update; the event never becomes set.
	{
		pre := find("CountdownEvent(Pre)")
		cur := find("CountdownEvent")
		signal := mustOp(pre, "Signal(1)")
		wait := mustOp(pre, "Wait()")
		cases = append(cases, CauseCase{
			Cause: CauseE, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{signal}, {signal, wait}}},
			Bound:    2,
			WantKind: core.StuckNoWitness,
			Note:     "a lost decrement leaves the count at 1; Wait blocks although both Signals completed",
		})
	}

	// F — Lazy(Pre): the value factory runs twice; the two Values return
	// different results.
	{
		pre := find("Lazy(Pre)")
		cur := find("Lazy")
		value := mustOp(pre, "Value()")
		cases = append(cases, CauseCase{
			Cause: CauseF, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{value}, {value}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "two racing Values observe two distinct factory results",
		})
	}

	// G — TaskCompletionSource(Pre): two completions both report success.
	{
		pre := find("TaskCompletionSource(Pre)")
		cur := find("TaskCompletionSource")
		set10 := mustOp(pre, "TrySetResult(10)")
		set20 := mustOp(pre, "TrySetResult(20)")
		cases = append(cases, CauseCase{
			Cause: CauseG, Subject: pre, Counterpart: cur,
			Test:     &core.Test{Rows: [][]core.Op{{set10}, {set20}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "both TrySetResult calls win",
		})
	}

	// H — ConcurrentBag: the list-at-a-time Count observes two elements
	// although the bag never held more than one (intentional, documented).
	{
		bag := find("ConcurrentBag")
		count := mustOp(bag, "Count()")
		tryTake := mustOp(bag, "TryTake()")
		add10 := mustOp(bag, "Add(10)")
		addInit := figOp("Add", "1", func(t *sched.Thread, o any) string {
			type adder interface{ Add(*sched.Thread, int) }
			o.(adder).Add(t, 1)
			return "ok"
		})
		cases = append(cases, CauseCase{
			Cause: CauseH, Subject: bag,
			Test: &core.Test{
				Init: []core.Op{addInit},
				Rows: [][]core.Op{{tryTake, add10}, {count}},
			},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "Count=2 although the bag never held two elements at once",
		})
	}

	// I — BlockingCollection: Count lags the contents (intentional).
	{
		bc := find("BlockingCollection")
		add := mustOp(bc, "TryAdd(10)")
		toArray := mustOp(bc, "ToArray()")
		count := mustOp(bc, "Count()")
		cases = append(cases, CauseCase{
			Cause: CauseI, Subject: bc,
			Test:     &core.Test{Rows: [][]core.Op{{add}, {toArray, count}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "Count=0 right after ToArray observed the element",
		})
	}

	// J — BlockingCollection: TryTake's count fast path fails on a
	// non-empty collection (intentional).
	{
		bc := find("BlockingCollection")
		add10 := mustOp(bc, "TryAdd(10)")
		add20 := mustOp(bc, "TryAdd(20)")
		tryTake := mustOp(bc, "TryTake()")
		cases = append(cases, CauseCase{
			Cause: CauseJ, Subject: bc,
			Test:     &core.Test{Rows: [][]core.Op{{add10}, {add20, tryTake, tryTake}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "the second TryTake fails although an element remains",
		})
	}

	// K — BlockingCollection: CompleteAdding's effect on a blocked Take
	// materializes after the method returned (intentional
	// nonlinearizability).
	{
		bc := find("BlockingCollection")
		take := mustOp(bc, "Take()")
		complete := mustOp(bc, "CompleteAdding()")
		cases = append(cases, CauseCase{
			Cause: CauseK, Subject: bc,
			Test:     &core.Test{Rows: [][]core.Op{{take}, {complete}}},
			Bound:    2,
			WantKind: core.StuckNoWitness,
			Note:     "a blocked Take stays blocked although CompleteAdding returned",
		})
	}

	// L — Barrier: two SignalAndWait calls release each other, which no
	// serial execution can do (the classic nonlinearizable class).
	{
		barrier := find("Barrier")
		saw := mustOp(barrier, "SignalAndWait()")
		cases = append(cases, CauseCase{
			Cause: CauseL, Subject: barrier,
			Test:     &core.Test{Rows: [][]core.Op{{saw}, {saw}}},
			Bound:    2,
			WantKind: core.NoWitness,
			Note:     "both SignalAndWait calls complete; every serial execution is stuck",
		})
	}

	return cases
}
