package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"lineup/internal/core"
	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// ReductionRow is one full-vs-reduced measurement: the same exhaustive
// phase-2 exploration of one directed cause case, run once without and once
// with sleep-set partial-order reduction. The row certifies the reduction
// contract — identical verdict and distinct histories — and records how much
// smaller the explored schedule space became.
type ReductionRow struct {
	Class   string
	Cause   Cause
	Bound   int
	Verdict string
	// FullExecs and ReducedExecs are the schedules explored by phase 2
	// without and with reduction; Ratio is FullExecs / ReducedExecs.
	FullExecs    int
	ReducedExecs int
	Ratio        float64
	// Pruned counts branches the sleep sets skipped; DedupHits counts
	// executions the phase-2 history cache answered without a witness search
	// (reduced run).
	Pruned    int
	DedupHits int
	// Histories is the number of distinct phase-2 histories (full + stuck),
	// identical in both runs by construction.
	Histories   int
	WallFull    time.Duration
	WallReduced time.Duration
}

// ReductionOptions parameterizes RunReduction.
type ReductionOptions struct {
	// Causes restricts the run to these cause labels (empty = every directed
	// case). The smoke subset used by the tier-1 gate passes a few cheap
	// causes here.
	Causes []Cause
	// SkipUnbounded drops the second, unbounded pass (classic sleep sets,
	// where the reduction is strongest but the unreduced baseline explores
	// orders of magnitude more schedules).
	SkipUnbounded bool
	// Telemetry, when non-nil, is shared by every measured check
	// (core.Options.Telemetry); counters accumulate across the full and
	// reduced runs of every case.
	Telemetry *telemetry.Collector
}

func (o ReductionOptions) wants(c Cause) bool {
	if len(o.Causes) == 0 {
		return true
	}
	for _, want := range o.Causes {
		if c == want {
			return true
		}
	}
	return false
}

// unboundedTooBig lists the directed cases whose *unreduced* unbounded
// exploration exceeds the execution budget (or takes minutes); they are
// measured only under the preemption bound. The reduced runs would finish
// easily — it is the full-search baseline that cannot.
var unboundedTooBig = map[Cause]bool{
	CauseB: true,
	CauseH: true,
	CauseJ: true,
}

// RunReduction measures sleep-set reduction on the directed cause cases of
// Table 2: for each case it exhaustively explores the buggy subject and its
// corrected counterpart with reduction off and on. Both runs use
// ExhaustPhase2 so they cover the full bounded schedule space and the
// execution counts are directly comparable. A verdict or history-count
// mismatch between the runs is returned as an error: it would falsify the
// reduction's exactness, so regeneration must fail loudly rather than record
// the row.
func RunReduction(opts ReductionOptions, progress func(string)) ([]ReductionRow, error) {
	var rows []ReductionRow
	measure := func(c CauseCase, sub *core.Subject, bound int) error {
		if progress != nil {
			progress(fmt.Sprintf("%s cause %s PB=%d", sub.Name, c.Cause, bound))
		}
		base := core.Options{
			PreemptionBound: bound,
			ExhaustPhase2:   true,
			Telemetry:       opts.Telemetry,
		}
		reduced := base
		reduced.Reduction = sched.ReductionSleep
		rFull, err := core.Check(sub, c.Test, base)
		if err != nil {
			return fmt.Errorf("bench: reduction %s (full): %w", sub.Name, err)
		}
		rRed, err := core.Check(sub, c.Test, reduced)
		if err != nil {
			return fmt.Errorf("bench: reduction %s (reduced): %w", sub.Name, err)
		}
		if rFull.Verdict != rRed.Verdict {
			return fmt.Errorf("bench: reduction changed the verdict of %s cause %s: full=%s reduced=%s",
				sub.Name, c.Cause, rFull.Verdict, rRed.Verdict)
		}
		if rFull.Phase2.Histories != rRed.Phase2.Histories || rFull.Phase2.Stuck != rRed.Phase2.Stuck {
			return fmt.Errorf("bench: reduction changed the history set of %s cause %s: full=%d+%d reduced=%d+%d",
				sub.Name, c.Cause, rFull.Phase2.Histories, rFull.Phase2.Stuck, rRed.Phase2.Histories, rRed.Phase2.Stuck)
		}
		row := ReductionRow{
			Class:        sub.Name,
			Cause:        c.Cause,
			Bound:        bound,
			Verdict:      rFull.Verdict.String(),
			FullExecs:    rFull.Phase2.Executions,
			ReducedExecs: rRed.Phase2.Executions,
			Pruned:       rRed.Phase2.Pruned,
			DedupHits:    rRed.Phase2.DedupHits,
			Histories:    rFull.Phase2.Histories + rFull.Phase2.Stuck,
			WallFull:     rFull.Phase2.Duration,
			WallReduced:  rRed.Phase2.Duration,
		}
		if row.ReducedExecs > 0 {
			row.Ratio = float64(row.FullExecs) / float64(row.ReducedExecs)
		}
		rows = append(rows, row)
		return nil
	}
	for _, c := range CauseCases() {
		if !opts.wants(c.Cause) {
			continue
		}
		for _, sub := range []*core.Subject{c.Subject, c.Counterpart} {
			if sub == nil {
				continue
			}
			if err := measure(c, sub, c.Bound); err != nil {
				return nil, err
			}
		}
		// Second pass, buggy subject only: no preemption bound, where the
		// classic (unrestricted) sleep sets apply and the schedule space is
		// large enough for the reduction to pay off by orders of magnitude.
		if !opts.SkipUnbounded && !unboundedTooBig[c.Cause] {
			if err := measure(c, c.Subject, core.Unbounded); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// WriteReduction renders the full-vs-reduced rows.
func WriteReduction(w io.Writer, rows []ReductionRow) {
	fmt.Fprintf(w, "%-28s %5s %3s %7s | %10s %10s %7s %9s %9s | %10s %10s\n",
		"Class", "cause", "PB", "verdict", "full", "reduced", "ratio", "pruned", "dedup", "wall.full", "wall.red")
	fmt.Fprintln(w, strings.Repeat("-", 130))
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %5s %3d %7s | %10d %10d %6.2fx %9d %9d | %10s %10s\n",
			r.Class, r.Cause, r.Bound, r.Verdict,
			r.FullExecs, r.ReducedExecs, r.Ratio, r.Pruned, r.DedupHits,
			round(r.WallFull), round(r.WallReduced))
	}
}

// ReductionJSON converts full-vs-reduced rows to JSON records. Schedules is
// the reduced run's count (the configuration the row recommends); the ratio
// field recovers the unreduced count.
func ReductionJSON(rows []ReductionRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:           "reduction",
			Class:          r.Class,
			Cause:          string(r.Cause),
			Verdict:        r.Verdict,
			PB:             r.Bound,
			Schedules:      r.ReducedExecs,
			Histories:      r.Histories,
			ReductionRatio: r.Ratio,
			DedupHits:      r.DedupHits,
			WallMS:         float64(r.WallReduced) / float64(time.Millisecond),
		})
	}
	return out
}
