package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func telemetryKey(r JSONRow) string {
	return fmt.Sprintf("%s|%d|%d", r.Class, r.PB, r.Workers)
}

// TestTelemetryOverheadBaseline is the telemetry-overhead gate. The smoke
// mode (every `make check`) measures the millisecond-scale Fig. 9 case and
// only checks the machinery — rows produced, off/on runs bit-identical, a
// collector that actually observed the run — because wall-clock noise on a
// run that short dwarfs any real overhead. With LINEUP_BENCH_FULL=1 (the
// `make bench-telemetry` entry point) it measures the -scale workload
// (~80k schedules) at 1 and 4 workers and enforces the acceptance ceiling:
// at most 2% overhead, plus headroom for measurement noise. With
// LINEUP_UPDATE_BENCH=1 the measured rows are merged into BENCH_lineup.json.
func TestTelemetryOverheadBaseline(t *testing.T) {
	opts := TelemetryOverheadOptions{Workers: []int{1}, Repeat: 2}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts = TelemetryOverheadOptions{Workers: []int{1, 4}, Repeat: 3, Scale: true}
	}
	rows, err := RunTelemetryOverhead(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opts.Workers) {
		t.Fatalf("got %d rows, want %d", len(rows), len(opts.Workers))
	}
	// The acceptance bar is 2%; best-of-N wall times on a seconds-scale run
	// still jitter by a few percent on a loaded machine, so the hard gate
	// adds noise headroom. The committed BENCH_lineup.json rows record the
	// actual measured value.
	const gate = 5.0
	for _, r := range rows {
		t.Logf("%s PB=%d workers=%d: off=%v on=%v overhead=%+.2f%% (%d executions, %s)",
			r.Class, r.Bound, r.Workers, r.WallOff, r.WallOn, r.OverheadPct, r.Executions, r.Verdict)
		if r.Executions == 0 {
			t.Errorf("%s workers=%d: no executions measured", r.Class, r.Workers)
		}
		if full && r.OverheadPct > gate {
			t.Errorf("%s workers=%d: telemetry overhead %.2f%% exceeds the %.0f%% gate",
				r.Class, r.Workers, r.OverheadPct, gate)
		}
	}
	if t.Failed() || !full || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	path := filepath.Join(moduleRoot(), JSONFile)
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	fresh := TelemetryJSON(rows)
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[telemetryKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "telemetry" && measured[telemetryKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d telemetry rows", path, len(fresh))
}

// TestTelemetryJSONFields pins the machine-readable schema of the telemetry
// overhead rows.
func TestTelemetryJSONFields(t *testing.T) {
	rows := []TelemetryOverheadRow{{
		Class: "ManualResetEvent(Pre) 3x", Bound: 3, Workers: 4,
		Executions: 80000, Verdict: "FAIL",
		WallOff: 1000000000, WallOn: 1010000000, OverheadPct: 1,
	}}
	js := TelemetryJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "telemetry" || r.PB != 3 || r.Workers != 4 ||
		r.Schedules != 80000 || r.Verdict != "FAIL" || r.OverheadPct != 1 ||
		r.WallMS != 1010 {
		t.Fatalf("bad telemetry JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"overhead_pct", "workers", "preemption_bound", "wall_ms"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
