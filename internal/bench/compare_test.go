package bench_test

import (
	"fmt"
	"strings"
	"testing"

	"lineup/internal/atomicity"
	"lineup/internal/bench"
	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/race"
	"lineup/internal/sched"
)

// TestBenignRacesOnly reproduces the race-detection half of Section 5.6:
// the corrected classes contain deliberate benign races (double-checked
// fast paths in SemaphoreSlim and Lazy); the happens-before detector
// reports them, while Line-Up — checking observable behavior instead of
// access ordering — passes the same tests.
func TestBenignRacesOnly(t *testing.T) {
	for _, name := range []string{"SemaphoreSlim", "Lazy"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sub, _, ok := bench.Find(name)
			if !ok {
				t.Fatalf("subject %s not found", name)
			}
			res, err := bench.CompareRandom(sub, 2, 2, 6, 3, core.Options{PreemptionBound: 2})
			if err != nil {
				t.Fatalf("compare: %v", err)
			}
			if len(res.Races) == 0 {
				t.Fatalf("%s: expected the double-checked fast path to race", name)
			}
			if res.LineUpFailures != 0 {
				t.Fatalf("%s: Line-Up flagged %d tests; the races should be benign", name, res.LineUpFailures)
			}
		})
	}
}

// TestNoRacesOnFullyLockedClasses checks the detector's other direction:
// classes whose every access is monitor-protected race nowhere.
func TestNoRacesOnFullyLockedClasses(t *testing.T) {
	for _, name := range []string{"ConcurrentQueue", "ConcurrentLinkedList"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sub, _, ok := bench.Find(name)
			if !ok {
				t.Fatalf("subject %s not found", name)
			}
			res, err := bench.CompareRandom(sub, 2, 2, 6, 3, core.Options{PreemptionBound: 2})
			if err != nil {
				t.Fatalf("compare: %v", err)
			}
			if len(res.Races) != 0 {
				t.Fatalf("%s: unexpected races: %v", name, res.Races)
			}
		})
	}
}

// TestSerializabilityFalseAlarms reproduces the atomicity-checking half of
// Section 5.6: correct classes exhibiting the paper's benign patterns
// (failing-CAS retries on ConcurrentStack, the double-checked fast path on
// SemaphoreSlim, the ==-comparison state machine on
// CancellationTokenSource) trigger conflict-serializability warnings even
// though Line-Up passes them — the warnings are false alarms.
func TestSerializabilityFalseAlarms(t *testing.T) {
	for _, name := range []string{"ConcurrentStack", "SemaphoreSlim", "CancellationTokenSource"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sub, _, ok := bench.Find(name)
			if !ok {
				t.Fatalf("subject %s not found", name)
			}
			res, err := bench.CompareRandom(sub, 2, 2, 10, 5, core.Options{PreemptionBound: 2})
			if err != nil {
				t.Fatalf("compare: %v", err)
			}
			if res.AtomicityWarnings == 0 {
				t.Fatalf("%s: expected conflict-serializability warnings", name)
			}
			if res.LineUpFailures != 0 {
				t.Fatalf("%s: Line-Up flagged %d tests; the warnings should be false alarms", name, res.LineUpFailures)
			}
		})
	}
}

// TestRaceDetectorFindsRealRace sanity-checks the detector on a genuinely
// racy subject (the unprotected counter of Section 2.2.1).
func TestRaceDetectorFindsRealRace(t *testing.T) {
	sub := counter1ForCompare()
	res, err := bench.CompareRandom(sub, 2, 2, 4, 1, core.Options{PreemptionBound: 2})
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	found := false
	for _, r := range res.Races {
		if strings.Contains(r.Loc, "Counter1.count") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a race on Counter1.count, got %v", res.Races)
	}
}

// TestAtomicityDirectTrace exercises the conflict-graph construction on a
// hand-built trace: op 1 reads L, op 2 writes L, op 1 writes L again — a
// classic cycle.
func TestAtomicityDirectTrace(t *testing.T) {
	trace := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemRead, Loc: 0, Name: "L", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "L", Op: 2},
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "L", Op: 1},
	}
	w := atomicity.Analyze(trace)
	if w == nil {
		t.Fatalf("expected a conflict-serializability warning")
	}
	if len(w.Cycle) < 2 {
		t.Fatalf("degenerate cycle: %v", w)
	}
	// A serializable trace produces no warning.
	ok := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemRead, Loc: 0, Name: "L", Op: 1},
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "L", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "L", Op: 2},
	}
	if w := atomicity.Analyze(ok); w != nil {
		t.Fatalf("unexpected warning on serializable trace: %v", w)
	}
}

// TestRaceDetectorDirectTrace exercises the vector clocks on hand-built
// traces: an unsynchronized write/write pair races; a lock-ordered pair
// does not; a volatile-ordered pair does not.
func TestRaceDetectorDirectTrace(t *testing.T) {
	racy := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 2},
	}
	d := race.NewDetector()
	d.Analyze(racy)
	if len(d.Races()) != 1 {
		t.Fatalf("expected 1 race, got %v", d.Races())
	}

	lockOrdered := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemAcquire, Loc: 9, Name: "m"},
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 1},
		{Thread: 1, Kind: sched.MemRelease, Loc: 9, Name: "m"},
		{Thread: 2, Kind: sched.MemAcquire, Loc: 9, Name: "m"},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 2},
		{Thread: 2, Kind: sched.MemRelease, Loc: 9, Name: "m"},
	}
	d = race.NewDetector()
	d.Analyze(lockOrdered)
	if len(d.Races()) != 0 {
		t.Fatalf("lock-ordered accesses reported as race: %v", d.Races())
	}

	volatileOrdered := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 1},
		{Thread: 1, Kind: sched.MemAtomicStore, Loc: 5, Name: "flag"},
		{Thread: 2, Kind: sched.MemAtomicLoad, Loc: 5, Name: "flag"},
		{Thread: 2, Kind: sched.MemRead, Loc: 0, Name: "x", Op: 2},
	}
	d = race.NewDetector()
	d.Analyze(volatileOrdered)
	if len(d.Races()) != 0 {
		t.Fatalf("volatile-ordered accesses reported as race: %v", d.Races())
	}

	unorderedReadWrite := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemRead, Loc: 0, Name: "x", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 2},
	}
	d = race.NewDetector()
	d.Analyze(unorderedReadWrite)
	if len(d.Races()) != 1 {
		t.Fatalf("expected read/write race, got %v", d.Races())
	}
}

func counter1ForCompare() *core.Subject {
	return &core.Subject{
		Name: "Counter1",
		New:  func(t *sched.Thread) any { return newCounter1(t) },
		Ops: []core.Op{
			{Method: "Inc", Run: func(t *sched.Thread, o any) string {
				o.(interface{ Inc(*sched.Thread) }).Inc(t)
				return "ok"
			}},
			{Method: "Get", Run: func(t *sched.Thread, o any) string {
				v := o.(interface{ Get(*sched.Thread) int }).Get(t)
				return collectionsInt(v)
			}},
		},
	}
}

func newCounter1(t *sched.Thread) any { return collections.NewCounter1(t) }

func collectionsInt(v int) string { return fmt.Sprintf("%d", v) }
