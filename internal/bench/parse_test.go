package bench_test

import (
	"testing"

	"lineup/internal/bench"
)

func TestParseTest(t *testing.T) {
	sub, _, ok := bench.Find("ConcurrentQueue")
	if !ok {
		t.Fatal("queue not found")
	}
	m, err := bench.ParseTest(sub, "init: Enqueue(10) / TryDequeue(), Count() / Enqueue(20) / final: ToArray()")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(m.Init) != 1 || m.Init[0].Name() != "Enqueue(10)" {
		t.Fatalf("init = %v", m.Init)
	}
	if len(m.Rows) != 2 {
		t.Fatalf("rows = %d", len(m.Rows))
	}
	if m.Rows[0][0].Name() != "TryDequeue()" || m.Rows[0][1].Name() != "Count()" {
		t.Fatalf("row 0 = %v %v", m.Rows[0][0].Name(), m.Rows[0][1].Name())
	}
	if len(m.Final) != 1 || m.Final[0].Name() != "ToArray()" {
		t.Fatalf("final = %v", m.Final)
	}
}

func TestParseTestBareMethodNames(t *testing.T) {
	sub, _, ok := bench.Find("ConcurrentQueue")
	if !ok {
		t.Fatal("queue not found")
	}
	m, err := bench.ParseTest(sub, "Count / TryPeek")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Rows[0][0].Name() != "Count()" || m.Rows[1][0].Name() != "TryPeek()" {
		t.Fatalf("bare names not resolved")
	}
}

func TestParseTestParenthesizedArgs(t *testing.T) {
	sub, _, ok := bench.Find("ConcurrentStack")
	if !ok {
		t.Fatal("stack not found")
	}
	// PushRange(30,40) contains a comma that must not split the token.
	m, err := bench.ParseTest(sub, "PushRange(30,40) TryPopRange(2) / Count()")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Rows[0][0].Name() != "PushRange(30,40)" {
		t.Fatalf("got %q", m.Rows[0][0].Name())
	}
	if m.Rows[0][1].Name() != "TryPopRange(2)" {
		t.Fatalf("got %q", m.Rows[0][1].Name())
	}
}

func TestParseTestErrors(t *testing.T) {
	sub, _, ok := bench.Find("ConcurrentQueue")
	if !ok {
		t.Fatal("queue not found")
	}
	if _, err := bench.ParseTest(sub, "Nope()"); err == nil {
		t.Fatalf("unknown op accepted")
	}
	if _, err := bench.ParseTest(sub, "init: Enqueue(10)"); err == nil {
		t.Fatalf("test with no threads accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := bench.Table1()
	if len(rows) != 13 {
		t.Fatalf("expected 13 classes, got %d", len(rows))
	}
	methods := 0
	for _, r := range rows {
		if r.LOC <= 0 {
			t.Errorf("%s: no source lines counted", r.Class)
		}
		if len(r.Methods) == 0 {
			t.Errorf("%s: no methods", r.Class)
		}
		methods += len(r.Methods)
	}
	// The paper checks 90 methods across the 13 classes; our universes
	// should be in the same ballpark.
	if methods < 80 || methods > 120 {
		t.Errorf("total invocations = %d, want ~90-100", methods)
	}
}

func TestCauseCasesCoverAllRootCauses(t *testing.T) {
	seen := make(map[bench.Cause]bool)
	for _, c := range bench.CauseCases() {
		seen[c.Cause] = true
		if c.Test == nil || c.Subject == nil {
			t.Fatalf("case %s incomplete", c.Cause)
		}
	}
	for _, want := range []bench.Cause{
		bench.CauseA, bench.CauseB, bench.CauseC, bench.CauseD, bench.CauseE,
		bench.CauseF, bench.CauseG, bench.CauseH, bench.CauseI, bench.CauseJ,
		bench.CauseK, bench.CauseL,
	} {
		if !seen[want] {
			t.Errorf("no directed case for root cause %s", want)
		}
	}
}

func TestClassify(t *testing.T) {
	if bench.Classify(bench.CauseA) != bench.Bug {
		t.Errorf("A should be a bug")
	}
	if bench.Classify(bench.CauseH) != bench.Nondeterminism {
		t.Errorf("H should be nondeterminism")
	}
	if bench.Classify(bench.CauseL) != bench.Nonlinearizable {
		t.Errorf("L should be nonlinearizable")
	}
}
