package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"lineup/internal/history"
	"lineup/internal/obsfile"
	"lineup/internal/serve"
)

// ServeIngestOptions configures an ingest-path throughput run: the same
// replay corpus as RunServeLoad, but pre-encoded to wire form (JSONL bytes or
// binary batch frames) and pushed through concurrent ingest connections, so
// the measured phase is what a network producer exercises — decode, validate,
// route — rather than the in-process Ingest call of the checking-load rows.
type ServeIngestOptions struct {
	// Ops is the target number of completed operations per run.
	Ops int64
	// Partitions is the number of distinct partition keys (default 16).
	// Partitions are assigned to connections round-robin, so each partition
	// (and its threads) stays on one connection — the determinism contract.
	Partitions int
	// WindowOps is the incremental checker's window size (default 128).
	WindowOps int
	// Conns are the concurrent-connection counts to measure (default {1, 4}).
	Conns []int
	// Modes are the wire encodings to measure: "jsonl", "batch"
	// (default both).
	Modes []string
	// QueueDepth bounds the single checker's queue. The default sizes it to
	// the whole run (one item per event plus slack): the checker pool is held
	// parked during the ingest phase, so every routed event sits queued until
	// the producers finish — that is what makes IngestWall the ingest path's
	// own capacity rather than a pipeline rate shared with checking.
	QueueDepth int
}

// ServeIngestRow is one measured ingest run.
type ServeIngestRow struct {
	Class      string        // subject whose histories were replayed
	Mode       string        // "jsonl" or "batch"
	Conns      int           // concurrent ingest connections
	Ops        int64         // operations checked
	Events     int64         // raw events ingested
	Partitions int           // distinct partition keys
	Window     int           // window size
	IngestWall time.Duration // until every producer connection finished
	TotalWall  time.Duration // including drain and final verdicts (Close)
	Throughput float64       // Ops / IngestWall seconds
	Verdict    string        // "PASS" when every partition is linearizable
}

// encodeIngestPayloads renders the replay corpus into per-connection wire
// payloads: partition p goes to connection p%conns, each connection's events
// in a fixed order. Returns the payloads plus the issued op and event counts.
func encodeIngestPayloads(hists []*history.History, mode string, conns, partitions int, targetOps int64) ([][]byte, int64, int64, error) {
	stride := 0
	opsPer := make([]int64, len(hists))
	for i, h := range hists {
		for _, e := range h.Events {
			if e.Thread >= stride {
				stride = e.Thread + 1
			}
			if e.Kind == history.Return {
				opsPer[i]++
			}
		}
	}
	bufs := make([]*bytes.Buffer, conns)
	jsonW := make([]*json.Encoder, conns)
	frameW := make([]*obsfile.FrameWriter, conns)
	for c := range bufs {
		bufs[c] = &bytes.Buffer{}
		switch mode {
		case "jsonl":
			jsonW[c] = json.NewEncoder(bufs[c])
		case "batch":
			frameW[c] = obsfile.NewFrameWriter(bufs[c])
		default:
			return nil, 0, 0, fmt.Errorf("bench: unknown ingest mode %q (jsonl or batch)", mode)
		}
	}
	var issued, events int64
	for i := 0; issued < targetOps; i++ {
		h := hists[i%len(hists)]
		p := i % partitions
		c := p % conns
		base := p * stride
		key := fmt.Sprintf("p%02d", p)
		for _, e := range h.Events {
			ev := obsfile.TraceEvent{T: base + e.Thread, Op: e.Op}
			if e.Kind == history.Call {
				ev.K, ev.P = "call", key
			} else {
				ev.K, ev.Res = "ret", e.Result
			}
			var err error
			if jsonW[c] != nil {
				err = jsonW[c].Encode(ev)
			} else {
				err = frameW[c].WriteEvent(ev)
			}
			if err != nil {
				return nil, 0, 0, err
			}
			events++
		}
		issued += opsPer[i%len(hists)]
	}
	out := make([][]byte, conns)
	for c := range bufs {
		if frameW[c] != nil {
			if err := frameW[c].Close(); err != nil {
				return nil, 0, 0, err
			}
		}
		out[c] = bufs[c].Bytes()
	}
	return out, issued, events, nil
}

// RunServeIngest measures ingest-path throughput: one row per mode ×
// connection count. Each run decodes pre-encoded wire payloads through
// concurrent connections into a single-checker server whose pool is held
// parked (serve.Server.HoldWorkers) for the duration of the ingest phase, so
// IngestWall is purely the decode-validate-route path — comparable across
// machines where producers and checkers would otherwise share cores.
// TotalWall adds the drain and final verdicts after release. Every run
// asserts exact accounting and a PASS verdict on the all-linearizable corpus.
func RunServeIngest(opts ServeIngestOptions, progress func(string)) ([]ServeIngestRow, error) {
	if opts.Ops <= 0 {
		opts.Ops = 1_000_000
	}
	if opts.Partitions <= 0 {
		opts.Partitions = 16
	}
	if opts.WindowOps <= 0 {
		opts.WindowOps = 128
	}
	if len(opts.Conns) == 0 {
		opts.Conns = []int{1, 4}
	}
	if len(opts.Modes) == 0 {
		opts.Modes = []string{"jsonl", "batch"}
	}
	hists, model, class, err := harvestServeHistories(256)
	if err != nil {
		return nil, err
	}
	var rows []ServeIngestRow
	for _, mode := range opts.Modes {
		for _, conns := range opts.Conns {
			if conns > opts.Partitions {
				return nil, fmt.Errorf("bench: %d connections need at least as many partitions (have %d)", conns, opts.Partitions)
			}
			payloads, issued, events, err := encodeIngestPayloads(hists, mode, conns, opts.Partitions, opts.Ops)
			if err != nil {
				return nil, err
			}
			// Absorb the whole held-phase run: JSONL routes one queue item per
			// event, the frame path one item per frame per worker.
			depth := opts.QueueDepth
			if depth <= 0 {
				if mode == "batch" {
					depth = int(events)/256 + conns + 64
				} else {
					depth = int(events) + 64
				}
			}
			s, err := serve.New(serve.Config{
				Model:      model,
				Workers:    1,
				WindowOps:  opts.WindowOps,
				QueueDepth: depth,
			})
			if err != nil {
				return nil, err
			}
			release, err := s.HoldWorkers()
			if err != nil {
				return nil, err
			}
			// The held pool makes the whole run live on the queue at once — an
			// artifact of the measurement, not of the ingest path — so the
			// default GC cadence would charge ever-growing mark phases to the
			// ingest wall. Defer collection for the held phase (the run fits in
			// memory by construction) and restore it for the drain.
			gcPct := debug.SetGCPercent(-1)
			errs := make([]error, conns)
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < conns; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					r := bytes.NewReader(payloads[c])
					if mode == "batch" {
						_, errs[c] = s.IngestFrames(r)
					} else {
						_, errs[c] = s.IngestReader(r)
					}
				}(c)
			}
			wg.Wait()
			ingestWall := time.Since(start)
			debug.SetGCPercent(gcPct)
			release()
			for c, err := range errs {
				if err != nil {
					_, _ = s.Close()
					return nil, fmt.Errorf("bench: ingest conn %d: %w", c, err)
				}
			}
			sum, err := s.Close()
			totalWall := time.Since(start)
			if err != nil {
				return nil, err
			}
			st := sum.Stats
			if st.OpsChecked != issued {
				return nil, fmt.Errorf("bench: issued %d ops but the service checked %d", issued, st.OpsChecked)
			}
			if st.EventsShed != 0 {
				return nil, fmt.Errorf("bench: block policy shed %d events", st.EventsShed)
			}
			if st.EventsRouted != st.EventsIngested {
				return nil, fmt.Errorf("bench: routed %d != ingested %d", st.EventsRouted, st.EventsIngested)
			}
			verdict := "PASS"
			if !sum.Linearizable {
				verdict = "FAIL"
			}
			row := ServeIngestRow{
				Class:      class,
				Mode:       mode,
				Conns:      conns,
				Ops:        st.OpsChecked,
				Events:     st.EventsIngested,
				Partitions: opts.Partitions,
				Window:     opts.WindowOps,
				IngestWall: ingestWall,
				TotalWall:  totalWall,
				Throughput: float64(st.OpsChecked) / ingestWall.Seconds(),
				Verdict:    verdict,
			}
			rows = append(rows, row)
			if progress != nil {
				progress(fmt.Sprintf("serve ingest %s mode=%s conns=%d: %d ops ingested in %v (%.0f ops/s; total %v, %s)",
					class, mode, conns, row.Ops, ingestWall.Round(time.Millisecond), row.Throughput,
					totalWall.Round(time.Millisecond), verdict))
			}
		}
	}
	return rows, nil
}

// ServeIngestJSON converts ingest rows to JSON records (kind "serve", with
// mode and connections distinguishing them from the checking-load rows).
func ServeIngestJSON(rows []ServeIngestRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:       "serve",
			Class:      r.Class,
			Mode:       r.Mode,
			Conns:      r.Conns,
			Workers:    1,
			Partitions: r.Partitions,
			Window:     r.Window,
			Ops:        r.Ops,
			Events:     r.Events,
			Throughput: r.Throughput,
			IngestMS:   float64(r.IngestWall) / float64(time.Millisecond),
			Verdict:    r.Verdict,
			WallMS:     float64(r.TotalWall) / float64(time.Millisecond),
		})
	}
	return out
}
