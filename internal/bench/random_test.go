package bench_test

import (
	"runtime"
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
)

// cleanClasses are the corrected classes with no intentional root causes:
// RandomCheck must never flag them (any flag would be a genuine
// linearizability violation in this repository's implementation).
func cleanClasses() []*core.Subject {
	var out []*core.Subject
	for _, e := range bench.Registry() {
		if len(e.Causes) == 0 {
			out = append(out, e.Subject)
		}
	}
	return out
}

func TestRandomCheckCleanClassesPass(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep is slow")
	}
	for _, sub := range cleanClasses() {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			sum, err := core.RandomCheck(sub, nil, core.RandomOptions{
				Rows: 3, Cols: 3, Samples: 6, Seed: 42,
				Workers: runtime.NumCPU(),
				Options: core.Options{PreemptionBound: 2},
			})
			if err != nil {
				t.Fatalf("randomcheck: %v", err)
			}
			if sum.Failed > 0 {
				t.Fatalf("%s: %d/%d random tests failed; first violation:\n%s",
					sub.Name, sum.Failed, sum.Failed+sum.Passed, sum.FirstFailure.Violation)
			}
		})
	}
}

// TestRandomCheckFindsSeededBugs verifies that sampling 3x3 tests discovers
// every seeded (Pre) defect, as in the paper's evaluation methodology
// (Section 5.1: 100 random 3x3 tests per class; most violations are caught
// by a large proportion of the sample, Section 5.4).
func TestRandomCheckFindsSeededBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep is slow")
	}
	for _, e := range bench.Registry() {
		if e.Pre == nil {
			continue
		}
		e := e
		t.Run(e.Pre.Name, func(t *testing.T) {
			sum, err := core.RandomCheck(e.Pre, nil, core.RandomOptions{
				Rows: 3, Cols: 3, Samples: 30, Seed: 7,
				Workers:            runtime.NumCPU(),
				StopAtFirstFailure: true,
				Options:            core.Options{PreemptionBound: e.Bound},
			})
			if err != nil {
				t.Fatalf("randomcheck: %v", err)
			}
			if sum.FirstFailure == nil {
				t.Fatalf("%s: no violation found in 30 random 3x3 tests", e.Pre.Name)
			}
		})
	}
}

// TestRandomCheckFindsIntentionalCauses verifies that the intentional
// behaviors H..L on the corrected classes are also discovered by sampling.
func TestRandomCheckFindsIntentionalCauses(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep is slow")
	}
	for _, e := range bench.Registry() {
		if len(e.Causes) == 0 {
			continue
		}
		e := e
		t.Run(e.Subject.Name, func(t *testing.T) {
			sum, err := core.RandomCheck(e.Subject, nil, core.RandomOptions{
				Rows: 3, Cols: 3, Samples: 30, Seed: 11,
				Workers:            runtime.NumCPU(),
				StopAtFirstFailure: true,
				Options:            core.Options{PreemptionBound: e.Bound},
			})
			if err != nil {
				t.Fatalf("randomcheck: %v", err)
			}
			if sum.FirstFailure == nil {
				t.Fatalf("%s: no violation found in 30 random 3x3 tests", e.Subject.Name)
			}
		})
	}
}
