package bench_test

import (
	"runtime"
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
)

// TestStuckClassesCount reproduces Section 5.5: a subset of the classes
// exhibits deadlocking (stuck) tests under random testing — in the paper 5
// of the 13 — because blocking acquires can outnumber releases in a random
// matrix. "Our use of generalized linearizability is significant insofar
// [these] classes could not have been tested with a methodology that can
// not handle them." The blocking classes here are the ones with Wait/Take/
// SignalAndWait-style operations; classes made of try-operations never get
// stuck.
func TestStuckClassesCount(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	// Expected blocking behavior by class (operations that can block):
	wantStuck := map[string]bool{
		"Lazy":                    false,
		"ManualResetEvent":        true, // Wait
		"SemaphoreSlim":           true, // Wait at count 0
		"CountdownEvent":          true, // Wait at count > 0
		"ConcurrentDictionary":    false,
		"ConcurrentQueue":         false,
		"ConcurrentStack":         false,
		"ConcurrentLinkedList":    false,
		"BlockingCollection":      true, // Take on empty
		"ConcurrentBag":           false,
		"TaskCompletionSource":    true, // Wait while pending
		"CancellationTokenSource": true, // WaitForCancel
		"Barrier":                 true, // SignalAndWait
	}
	stuckClasses := 0
	for _, e := range bench.Registry() {
		sub := e.Subject
		// Phase 1 alone is enough to observe stuckness and is cheap.
		stuck := 0
		sum, err := core.RandomCheck(sub, nil, core.RandomOptions{
			Rows: 2, Cols: 2, Samples: 20, Seed: 3,
			Workers: runtime.NumCPU(),
			Options: core.Options{PreemptionBound: 1},
		})
		if err != nil {
			t.Fatalf("%s: %v", sub.Name, err)
		}
		stuck = sum.StuckTests
		if !wantStuck[sub.Name] && stuck > 0 {
			t.Errorf("%s: %d stuck tests on a try-only class", sub.Name, stuck)
		}
		if stuck > 0 {
			stuckClasses++
		}
	}
	if stuckClasses < 5 {
		t.Errorf("only %d classes exhibited stuck tests; the paper's point (Section 5.5) needs several", stuckClasses)
	}
}
