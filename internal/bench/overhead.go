package bench

import (
	"fmt"
	"time"

	"lineup/internal/core"
	"lineup/internal/telemetry"
)

// TelemetryOverheadRow is one telemetry off-vs-on wall-time pair: the same
// exhaustive check run with Options.Telemetry nil and with a live collector,
// best-of-Repeat each, interleaved so thermal and scheduler drift hit both
// sides equally.
type TelemetryOverheadRow struct {
	Class      string
	Bound      int
	Workers    int
	Executions int // phase-1 + phase-2 schedules, identical off and on
	Verdict    string
	WallOff    time.Duration
	WallOn     time.Duration
	// OverheadPct is (WallOn - WallOff) / WallOff in percent; negative values
	// mean the instrumented run won the coin flip, i.e. the true overhead is
	// below the noise floor.
	OverheadPct float64
}

// TelemetryOverheadOptions parameterizes RunTelemetryOverhead.
type TelemetryOverheadOptions struct {
	// Workers lists the explorer worker counts to measure (default 1).
	Workers []int
	// Repeat measures each side this many times and keeps the best wall time
	// (default 3). The exploration is deterministic, so repeats only shed
	// scheduler noise.
	Repeat int
	// Scale measures the scalability workload (the Fig. 9 scenario with a
	// second waiter at bound 3, ~80k schedules) instead of the default Fig. 9
	// smoke case. The smoke case finishes in milliseconds, where wall-clock
	// noise dwarfs any real overhead; the scaled class is the one the
	// committed overhead numbers are measured on.
	Scale bool
}

func (o TelemetryOverheadOptions) withDefaults() TelemetryOverheadOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1}
	}
	if o.Repeat <= 0 {
		o.Repeat = 3
	}
	return o
}

// RunTelemetryOverhead measures the wall-clock cost of enabling telemetry on
// an exhaustive directed check. Every measured pair must agree on verdict and
// executions (the observe-only contract); a divergence is an error, not a
// row. One row is produced per worker count.
func RunTelemetryOverhead(opts TelemetryOverheadOptions, progress func(string)) ([]TelemetryOverheadRow, error) {
	opts = opts.withDefaults()
	var c CauseCase
	if opts.Scale {
		c = scaleCase()
	} else {
		found := false
		for _, cc := range CauseCases() {
			if cc.Cause == CauseA {
				c, found = cc, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: no cause-A case in the registry")
		}
	}
	var rows []TelemetryOverheadRow
	for _, w := range opts.Workers {
		if progress != nil {
			progress(fmt.Sprintf("%s workers=%d", c.Subject.Name, w))
		}
		check := func(col *telemetry.Collector) (*core.Result, time.Duration, error) {
			start := time.Now()
			r, err := core.Check(c.Subject, c.Test, core.Options{
				PreemptionBound: c.Bound,
				ExhaustPhase2:   true,
				Workers:         w,
				Telemetry:       col,
			})
			return r, time.Since(start), err
		}
		row := TelemetryOverheadRow{Class: c.Subject.Name, Bound: c.Bound, Workers: w}
		for i := 0; i < opts.Repeat; i++ {
			off, dOff, err := check(nil)
			if err != nil {
				return nil, err
			}
			col := telemetry.New()
			on, dOn, err := check(col)
			if err != nil {
				return nil, err
			}
			offExecs := off.Phase1.Executions + off.Phase2.Executions
			onExecs := on.Phase1.Executions + on.Phase2.Executions
			if off.Verdict != on.Verdict || offExecs != onExecs {
				return nil, fmt.Errorf("bench: telemetry changed the %s check: %v/%d executions vs %v/%d",
					c.Subject.Name, off.Verdict, offExecs, on.Verdict, onExecs)
			}
			if col.Snapshot().ExecutionsDone == 0 {
				return nil, fmt.Errorf("bench: collector observed no executions on %s", c.Subject.Name)
			}
			if i == 0 || dOff < row.WallOff {
				row.WallOff = dOff
			}
			if i == 0 || dOn < row.WallOn {
				row.WallOn = dOn
			}
			row.Executions = offExecs
			row.Verdict = off.Verdict.String()
		}
		row.OverheadPct = 100 * (float64(row.WallOn) - float64(row.WallOff)) / float64(row.WallOff)
		rows = append(rows, row)
	}
	return rows, nil
}

// TelemetryJSON converts telemetry-overhead rows to JSON records
// (kind "telemetry"); WallMS records the instrumented run.
func TelemetryJSON(rows []TelemetryOverheadRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:        "telemetry",
			Class:       r.Class,
			PB:          r.Bound,
			Workers:     r.Workers,
			Schedules:   r.Executions,
			Verdict:     r.Verdict,
			OverheadPct: r.OverheadPct,
			WallMS:      float64(r.WallOn) / float64(time.Millisecond),
		})
	}
	return out
}
