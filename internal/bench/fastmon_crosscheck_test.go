package bench

import (
	"errors"
	"testing"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/monitor/fast"
	"lineup/internal/subjects"
	"lineup/internal/telemetry"
)

// fastCrosscheckCase is one explorer-driven workload of the bit-identity
// suite: a subject, a directed test, and the executable model its histories
// are checked against. The tests are chosen to emit a mix of in-fragment
// histories (unique values, successful dequeues/pops) and out-of-fragment
// ones (failed TryDequeue/TryPop, pending operations), so both the fast
// path and the fallback path are exercised on real explorer output.
type fastCrosscheckCase struct {
	name  string
	sub   *core.Subject
	test  string
	model string
	bound int
}

func fastCrosscheckCases(t *testing.T) []fastCrosscheckCase {
	t.Helper()
	find := func(name string) *core.Subject {
		for _, e := range subjects.Registry() {
			for _, s := range []*core.Subject{e.Subject, e.Pre, e.Relaxed} {
				if s != nil && s.Name == name {
					return s
				}
			}
		}
		t.Fatalf("no subject %q", name)
		return nil
	}
	return []fastCrosscheckCase{
		{"msqueue", find("MSQueue"), "Enqueue(1) TryDequeue() / Enqueue(2) TryDequeue()", "queue", 2},
		{"msqueue-empty", find("MSQueue"), "TryDequeue() Enqueue(1) / TryDequeue()", "queue", 2},
		{"elimstack", find("ElimStack"), "Push(1) TryPop() / Push(2) TryPop()", "stack", 2},
	}
}

// TestFastBackendBitIdentical asserts verdict bit-identity of the fast
// witness path on every history the explorer emits: the specialized monitor
// (with WGL fallback on ErrAmbiguous, exactly as core's fastBackend routes
// it) against the memoized Wing–Gong search, the unmemoized naive search on
// small histories, and the phase-1 specification set.
func TestFastBackendBitIdentical(t *testing.T) {
	totalHits, totalFallbacks := 0, 0
	run := func(t *testing.T, sub *core.Subject, m *core.Test, model *monitor.Model, bound int) {
		opts := core.Options{PreemptionBound: bound}
		spec, _, err := core.SynthesizeSpec(sub, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		kind, supported := fast.KindFor(model.Name)
		histories := 0
		err = core.ExploreHistories(sub, m, opts, func(h *history.History) bool {
			histories++
			if h.Stuck || len(h.Pending()) > 0 {
				// Outside every fast fragment: the monitor must punt, never
				// guess, so the backend's fallback is forced.
				if supported {
					if _, ferr := fast.Check(kind, h); !errors.Is(ferr, fast.ErrAmbiguous) {
						t.Errorf("fast monitor decided a non-complete history (err=%v):\n%s", ferr, h)
						return false
					}
				}
				return true
			}
			out, merr := monitor.Check(model, h, monitor.Options{})
			if merr != nil {
				t.Fatalf("monitor: %v\nhistory:\n%s", merr, h)
			}
			wgl := out.Linearizable
			fastV := wgl // what fastBackend computes after a fallback
			if supported {
				v, ferr := fast.Check(kind, h)
				switch {
				case ferr == nil:
					fastV = v
					totalHits++
				case errors.Is(ferr, fast.ErrAmbiguous):
					totalFallbacks++
				default:
					t.Fatalf("fast: %v\nhistory:\n%s", ferr, h)
				}
			}
			if fastV != wgl {
				t.Errorf("fast and WGL disagree (fast=%v wgl=%v):\n%s", fastV, wgl, h)
				return false
			}
			if _, specOK := spec.WitnessFull(h); specOK != wgl {
				t.Errorf("spec and WGL disagree (spec=%v wgl=%v):\n%s", specOK, wgl, h)
				return false
			}
			if len(h.Ops()) <= 6 {
				naive, nerr := monitor.NaiveCheck(model, h, monitor.Options{})
				if nerr != nil {
					t.Fatalf("naive: %v\nhistory:\n%s", nerr, h)
				}
				if naive != wgl {
					t.Errorf("naive and WGL disagree (naive=%v wgl=%v):\n%s", naive, wgl, h)
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if histories == 0 {
			t.Fatal("explorer emitted no histories")
		}
		t.Logf("agreed on %d distinct histories", histories)
	}
	for _, cc := range CauseCases() {
		name, ok := crosscheckModels[cc.Cause]
		if !ok {
			continue
		}
		cc := cc
		t.Run(string(cc.Cause)+"-"+name, func(t *testing.T) {
			model, ok := monitor.Builtin(name)
			if !ok {
				t.Fatalf("no builtin model %q", name)
			}
			run(t, cc.Subject, cc.Test, model, cc.Bound)
		})
	}
	for _, c := range fastCrosscheckCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			model, ok := monitor.Builtin(c.model)
			if !ok {
				t.Fatalf("no builtin model %q", c.model)
			}
			m, err := ParseTest(c.sub, c.test)
			if err != nil {
				t.Fatal(err)
			}
			run(t, c.sub, m, model, c.bound)
		})
	}
	if totalHits == 0 || totalFallbacks == 0 {
		t.Errorf("property suite exercised fast hits=%d fallbacks=%d; want both paths", totalHits, totalFallbacks)
	}
}

// TestFastWitnessEndToEnd runs phase 2 under WitnessFast — the real
// fastBackend, fallback included — and asserts the verdict matches the
// default spec-lookup backend on the same subject and test, and that the
// telemetry records traffic on the fast path.
func TestFastWitnessEndToEnd(t *testing.T) {
	for _, c := range fastCrosscheckCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			model, _ := monitor.Builtin(c.model)
			m, err := ParseTest(c.sub, c.test)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Check(c.sub, m, core.Options{PreemptionBound: c.bound})
			if err != nil {
				t.Fatal(err)
			}
			col := telemetry.New()
			got, err := core.Check(c.sub, m, core.Options{
				PreemptionBound: c.bound,
				WitnessSearch:   core.WitnessFast,
				MonitorModel:    model,
				Telemetry:       col,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.Verdict != want.Verdict {
				t.Fatalf("fast backend verdict %v, spec backend %v", got.Verdict, want.Verdict)
			}
			if col.FastHits.Load()+col.FastFallbacks.Load() == 0 {
				t.Fatal("no history went through the fast backend")
			}
			t.Logf("verdict %v: %d fast hits, %d fallbacks",
				got.Verdict, col.FastHits.Load(), col.FastFallbacks.Load())
		})
	}
}
