package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reductionSmokeCauses is the cheap subset the tier-1 gate measures on every
// `make check`: three distinct classes whose bounded and unbounded sweeps
// together finish in well under a second.
var reductionSmokeCauses = []Cause{CauseB + "'", CauseF, CauseG}

// loadBaselineReduction reads the kind=="reduction" rows of the committed
// BENCH_lineup.json, keyed by class/cause/bound. A missing file or a file
// without reduction rows yields an empty map (first regeneration).
func loadBaselineReduction(t *testing.T, path string) map[string]JSONRow {
	t.Helper()
	out := make(map[string]JSONRow)
	data, err := os.ReadFile(path)
	if err != nil {
		return out
	}
	var rows []JSONRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("committed %s is not valid JSON: %v", path, err)
	}
	for _, r := range rows {
		if r.Kind == "reduction" {
			out[reductionKey(r)] = r
		}
	}
	return out
}

func reductionKey(r JSONRow) string {
	return fmt.Sprintf("%s|%s|%d", r.Class, r.Cause, r.PB)
}

// TestReductionBaseline measures sleep-set reduction on the directed cause
// cases and gates it against the committed BENCH_lineup.json baseline: a
// changed verdict on any recorded class is a regression (the reduction
// contract is bit-identical verdicts), so the test fails before any rows are
// rewritten. By default it runs the smoke subset (three classes); with
// LINEUP_BENCH_FULL=1 it sweeps every cause (the `make bench-reduction`
// entry point), and with LINEUP_UPDATE_BENCH=1 it merges the freshly
// measured rows back into BENCH_lineup.json.
func TestReductionBaseline(t *testing.T) {
	opts := ReductionOptions{Causes: reductionSmokeCauses}
	full := os.Getenv("LINEUP_BENCH_FULL") == "1"
	if full {
		opts.Causes = nil
	}
	rows, err := RunReduction(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no reduction rows")
	}
	for _, r := range rows {
		if r.ReducedExecs <= 0 || r.FullExecs < r.ReducedExecs {
			t.Errorf("%s cause %s PB=%d: reduced run explored %d schedules, full %d",
				r.Class, r.Cause, r.Bound, r.ReducedExecs, r.FullExecs)
		}
		if r.Pruned <= 0 {
			t.Errorf("%s cause %s PB=%d: reduction pruned nothing", r.Class, r.Cause, r.Bound)
		}
	}
	if full {
		// The acceptance bar of the reduction work: at least three distinct
		// Table-2 classes shed >= 3x of their schedule space.
		classes := map[string]bool{}
		for _, r := range rows {
			if r.Ratio >= 3 {
				classes[strings.TrimSuffix(r.Class, "(Pre)")] = true
			}
		}
		if len(classes) < 3 {
			t.Errorf("only %d classes reached a 3x reduction, want >= 3", len(classes))
		}
	}

	path := filepath.Join(moduleRoot(), JSONFile)
	baseline := loadBaselineReduction(t, path)
	fresh := ReductionJSON(rows)
	for _, r := range fresh {
		if b, ok := baseline[reductionKey(r)]; ok && b.Verdict != r.Verdict {
			t.Errorf("%s cause %s: verdict changed vs committed baseline: %s -> %s",
				r.Class, r.Cause, b.Verdict, r.Verdict)
		}
	}
	if t.Failed() || os.Getenv("LINEUP_UPDATE_BENCH") != "1" {
		return
	}
	// Merge: keep every non-reduction row and every baseline reduction row
	// this run did not re-measure, then append the fresh rows.
	var all []JSONRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &all); err != nil {
			t.Fatalf("committed %s is not valid JSON: %v", path, err)
		}
	}
	measured := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		measured[reductionKey(r)] = true
	}
	var merged []JSONRow
	for _, r := range all {
		if r.Kind == "reduction" && measured[reductionKey(r)] {
			continue
		}
		merged = append(merged, r)
	}
	merged = append(merged, fresh...)
	if err := WriteJSONRows(path, merged); err != nil {
		t.Fatalf("updating %s: %v", path, err)
	}
	t.Logf("updated %s with %d reduction rows", path, len(fresh))
}

// TestReductionJSONFields pins the machine-readable schema of the reduction
// rows: ratio, dedup hits, and cause labels must survive the conversion.
func TestReductionJSONFields(t *testing.T) {
	rows := []ReductionRow{{
		Class: "Lazy(Pre)", Cause: CauseF, Bound: 2, Verdict: "FAIL",
		FullExecs: 100, ReducedExecs: 25, Ratio: 4, Pruned: 40, DedupHits: 17,
		Histories: 14,
	}}
	js := ReductionJSON(rows)
	if len(js) != 1 {
		t.Fatalf("got %d rows", len(js))
	}
	r := js[0]
	if r.Kind != "reduction" || r.Class != "Lazy(Pre)" || r.Cause != "F" ||
		r.Verdict != "FAIL" || r.PB != 2 || r.Schedules != 25 ||
		r.ReductionRatio != 4 || r.DedupHits != 17 || r.Histories != 14 {
		t.Fatalf("bad reduction JSON row: %+v", r)
	}
	data, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"reduction_ratio", "dedup_hits", "cause", "preemption_bound"} {
		if !strings.Contains(string(data), field) {
			t.Errorf("serialized row missing %q: %s", field, data)
		}
	}
}
