package bench_test

import (
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
)

// TestRootCauses verifies the Section 5.2 results: every root cause A..L is
// exposed by its directed minimal test, with the expected violation kind,
// and — for the seeded bugs A..G — the corrected counterpart passes the
// very same test.
func TestRootCauses(t *testing.T) {
	for _, c := range bench.CauseCases() {
		c := c
		t.Run(string(c.Cause), func(t *testing.T) {
			res, err := core.Check(c.Subject, c.Test, core.Options{PreemptionBound: c.Bound})
			if err != nil {
				t.Fatalf("check %s: %v", c.Subject.Name, err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("cause %s: %s unexpectedly passed\n%s", c.Cause, c.Subject.Name, c.Test)
			}
			if res.Violation.Kind != c.WantKind {
				t.Fatalf("cause %s: violation kind = %v, want %v\n%s",
					c.Cause, res.Violation.Kind, c.WantKind, res.Violation)
			}
			if c.Counterpart != nil {
				res2, err := core.Check(c.Counterpart, c.Test, core.Options{PreemptionBound: c.Bound})
				if err != nil {
					t.Fatalf("check counterpart %s: %v", c.Counterpart.Name, err)
				}
				if res2.Verdict != core.Pass {
					t.Fatalf("cause %s: corrected %s fails the same test: %v",
						c.Cause, c.Counterpart.Name, res2.Violation)
				}
			}
		})
	}
}
