package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"lineup/internal/atomicity"
	"lineup/internal/core"
	"lineup/internal/race"
	"lineup/internal/sched"
)

// CompareResult aggregates the Section 5.6 comparison for one class: what a
// happens-before race detector and a conflict-serializability monitor
// report on the same executions that Line-Up's phase 2 explores.
type CompareResult struct {
	Subject string
	Tests   int
	// Races are the distinct data races found (all benign on the corrected
	// classes, mirroring the paper's finding).
	Races []race.Race
	// AtomicityWarnings counts executions that were not
	// conflict-serializable.
	AtomicityWarnings int
	// AtomicityTests counts tests with at least one warning.
	AtomicityTests int
	// WarningSamples holds a few representative serializability warnings.
	WarningSamples []string
	// LineUpFailures counts the same tests' Line-Up verdicts, for contrast.
	LineUpFailures int
	Executions     int
}

// CompareRandom runs the comparison checkers over a random sample of tests
// (the same sampling scheme as RandomCheck).
func CompareRandom(sub *core.Subject, rows, cols, samples int, seed int64, opts core.Options) (*CompareResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &CompareResult{Subject: sub.Name}
	det := race.NewDetector()
	warnSeen := make(map[string]bool)
	for k := 0; k < samples; k++ {
		m := &core.Test{}
		for r := 0; r < rows; r++ {
			row := make([]core.Op, cols)
			for c := 0; c < cols; c++ {
				row[c] = sub.Ops[rng.Intn(len(sub.Ops))]
			}
			m.Rows = append(m.Rows, row)
		}
		res.Tests++
		testWarned := false
		stats, err := core.ForEachExecution(sub, m, opts, true, func(out *sched.Outcome) bool {
			det.Analyze(out.Trace)
			if w := atomicity.Analyze(out.Trace); w != nil {
				res.AtomicityWarnings++
				testWarned = true
				key := fmt.Sprint(w.Locs)
				if !warnSeen[key] && len(res.WarningSamples) < 8 {
					warnSeen[key] = true
					res.WarningSamples = append(res.WarningSamples, w.String())
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		res.Executions += stats.Executions
		if testWarned {
			res.AtomicityTests++
		}
		lr, err := core.Check(sub, m, opts)
		if err != nil {
			return nil, err
		}
		if lr.Verdict == core.Fail {
			res.LineUpFailures++
		}
	}
	res.Races = det.Races()
	sort.Slice(res.Races, func(i, j int) bool { return res.Races[i].Loc < res.Races[j].Loc })
	return res, nil
}
