package bench_test

import (
	"runtime"
	"testing"

	"lineup/internal/bench"
	"lineup/internal/core"
)

// findCause returns the directed case for one root cause.
func findCause(t *testing.T, id bench.Cause) bench.CauseCase {
	t.Helper()
	for _, c := range bench.CauseCases() {
		if c.Cause == id {
			return c
		}
	}
	t.Fatalf("cause %s not found", id)
	return bench.CauseCase{}
}

// TestRelaxedOpsTolerateIntentionalNondeterminism exercises the Section 6
// extension: after the .NET developers documented the weak semantics of the
// bag's and blocking collection's observers (Section 5.2.2), a user relaxes
// exactly those methods; the directed tests for causes H, I and J then
// pass, while everything else about the classes stays checked.
func TestRelaxedOpsToleratesIntentionalNondeterminism(t *testing.T) {
	cases := []struct {
		cause   bench.Cause
		relaxed []string
	}{
		{bench.CauseH, []string{"Count()"}},
		{bench.CauseI, []string{"Count()"}},
		{bench.CauseJ, []string{"TryTake()"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.cause), func(t *testing.T) {
			c := findCause(t, tc.cause)
			strict, err := core.Check(c.Subject, c.Test, core.Options{PreemptionBound: c.Bound})
			if err != nil {
				t.Fatalf("strict check: %v", err)
			}
			if strict.Verdict != core.Fail {
				t.Fatalf("strict check unexpectedly passed")
			}
			opts := core.Options{PreemptionBound: c.Bound}.Relax(tc.relaxed...)
			relaxed, err := core.Check(c.Subject, c.Test, opts)
			if err != nil {
				t.Fatalf("relaxed check: %v", err)
			}
			if relaxed.Verdict != core.Pass {
				t.Fatalf("relaxed check still fails: %v", relaxed.Violation)
			}
		})
	}
}

// TestRelaxedOpsDoNotMaskRealBugs: relaxing an unrelated observer must not
// hide a genuine defect — Lazy(Pre)'s double factory execution is still
// caught with IsValueCreated relaxed.
func TestRelaxedOpsDoNotMaskRealBugs(t *testing.T) {
	c := findCause(t, bench.CauseF)
	opts := core.Options{PreemptionBound: c.Bound}.Relax("IsValueCreated()")
	res, err := core.Check(c.Subject, c.Test, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatalf("relaxing IsValueCreated hid the double-initialization bug")
	}
}

// TestRelaxedOpsDoNotMaskBlockingViolations: wildcarding results cannot
// excuse erroneous blocking — cause K (the unwoken Take) still fails even
// with every result relaxed, because stuck-witness matching is about
// pending operations, not values.
func TestRelaxedOpsDoNotMaskBlockingViolations(t *testing.T) {
	c := findCause(t, bench.CauseK)
	opts := core.Options{PreemptionBound: c.Bound}.Relax("Take()", "CompleteAdding()")
	res, err := core.Check(c.Subject, c.Test, opts)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatalf("relaxed results excused a blocking violation")
	}
	if res.Violation.Kind != core.StuckNoWitness {
		t.Fatalf("kind = %v, want StuckNoWitness", res.Violation.Kind)
	}
}

// TestRelaxedBagRandomSweep: with the weak observers relaxed, the bag
// passes a random sweep that fails strictly.
func TestRelaxedBagRandomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	bag, entry, ok := bench.Find("ConcurrentBag")
	if !ok {
		t.Fatal("bag not found")
	}
	opts := core.Options{PreemptionBound: entry.Bound}.Relax("Count()", "IsEmpty()", "ToArray()", "TryPeek()", "TryTake()")
	sum, err := core.RandomCheck(bag, nil, core.RandomOptions{
		Rows: 3, Cols: 3, Samples: 4, Seed: 11, Workers: runtime.NumCPU(), Options: opts,
	})
	if err != nil {
		t.Fatalf("randomcheck: %v", err)
	}
	if sum.Failed > 0 {
		t.Fatalf("relaxed bag still failed %d tests: %v", sum.Failed, sum.FirstFailure.Violation)
	}
}
