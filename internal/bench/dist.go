package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"lineup/internal/core"
	"lineup/internal/dist"
	"lineup/internal/faultinject"
	"lineup/internal/sched"
)

// DistLoadOptions shapes one distributed-exploration scaling run: a class and
// test explored once sequentially (the ground truth) and once per worker
// count through the fault-tolerant coordinator, with deterministic worker
// crashes injected so every row also exercises lease reassignment.
type DistLoadOptions struct {
	// Class and TestSpec pick the workload (TestSpec in ParseTest syntax).
	Class    string
	TestSpec string
	// Workers are the coordinator pool sizes to measure.
	Workers []int
	// KillSeed/KillEvery parameterize the injected worker-crash plan
	// (faultinject.ProcPlan): roughly one in KillEvery units dies on its
	// first attempt. 0 disables injection.
	KillSeed  int64
	KillEvery int
	// Depth is the work-unit split depth (0 selects 2).
	Depth int
}

// DistRow is one measured coordinator run.
type DistRow struct {
	Class     string
	Workers   int
	CPUs      int // of the measuring machine; speedup is bounded by this
	Units     int
	Killed    int // injected worker crashes
	Retries   int // lease reassignments
	Schedules int
	Histories int
	// Verdict is "PASS" when the merged result is bit-identical to the
	// sequential exhaustive check (the whole point of the protocol), "FAIL"
	// otherwise.
	Verdict string
	Wall    time.Duration
	// Speedup is wall(sequential) / wall for this worker count.
	Speedup float64
}

// RunDistScaling measures the distributed coordinator against the sequential
// exhaustive check. logf receives one progress line per row.
func RunDistScaling(opts DistLoadOptions, logf func(string)) ([]DistRow, error) {
	sub, entry, ok := Find(opts.Class)
	if !ok {
		return nil, fmt.Errorf("bench: unknown class %q", opts.Class)
	}
	m, err := ParseTest(sub, opts.TestSpec)
	if err != nil {
		return nil, err
	}
	depth := opts.Depth
	if depth == 0 {
		depth = 2
	}
	copts := core.Options{
		PreemptionBound: entry.Bound,
		Reduction:       sched.ReductionSleep,
		ExhaustPhase2:   true,
	}

	seqStart := time.Now()
	want, err := core.Check(sub, m, copts)
	if err != nil {
		return nil, fmt.Errorf("bench: sequential baseline: %w", err)
	}
	seqWall := time.Since(seqStart)
	want.Phase1.Duration, want.Phase2.Duration = 0, 0
	wantViolation, _ := json.Marshal(want.Violation)

	var rows []DistRow
	for _, workers := range opts.Workers {
		plan := &faultinject.ProcPlan{Seed: opts.KillSeed, Every: opts.KillEvery, Fault: faultinject.ProcCrash}
		cfg := dist.Config{
			Subject: sub, Test: m, Options: copts,
			Workers: workers, Depth: depth,
			Backoff: time.Millisecond,
		}
		if opts.KillEvery > 0 {
			cfg.Launcher = &faultinject.FlakyLauncher{
				Inner: &dist.InProcLauncher{Subject: sub, Test: m, Options: copts},
				Plan:  plan,
			}
		}
		start := time.Now()
		res, stats, err := dist.Run(context.Background(), cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: dist workers=%d: %w", workers, err)
		}
		wall := time.Since(start)
		res.Phase1.Duration, res.Phase2.Duration = 0, 0
		gotViolation, _ := json.Marshal(res.Violation)
		verdict := "PASS"
		if res.Verdict != want.Verdict || res.Phase1 != want.Phase1 ||
			res.Phase2 != want.Phase2 || string(gotViolation) != string(wantViolation) {
			verdict = "FAIL"
		}
		row := DistRow{
			Class:     sub.Name,
			Workers:   workers,
			CPUs:      runtime.NumCPU(),
			Units:     stats.Units,
			Killed:    plan.Injections(),
			Retries:   stats.Retries,
			Schedules: res.Phase2.Executions,
			Histories: res.Phase2.Histories + res.Phase2.Stuck,
			Verdict:   verdict,
			Wall:      wall,
			Speedup:   float64(seqWall) / float64(wall),
		}
		rows = append(rows, row)
		if logf != nil {
			logf(fmt.Sprintf("dist %s workers=%d: %d units, %d killed, %d retries, %s vs sequential, %v (seq %v)",
				row.Class, row.Workers, row.Units, row.Killed, row.Retries, row.Verdict,
				wall.Round(time.Millisecond), seqWall.Round(time.Millisecond)))
		}
	}
	return rows, nil
}

// DistJSON converts coordinator scaling rows to JSON records.
func DistJSON(rows []DistRow) []JSONRow {
	out := make([]JSONRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, JSONRow{
			Kind:      "dist",
			Class:     r.Class,
			Workers:   r.Workers,
			CPUs:      r.CPUs,
			Units:     r.Units,
			Killed:    r.Killed,
			Retries:   r.Retries,
			Schedules: r.Schedules,
			Histories: r.Histories,
			Verdict:   r.Verdict,
			Speedup:   r.Speedup,
			WallMS:    float64(r.Wall) / float64(time.Millisecond),
		})
	}
	return out
}
