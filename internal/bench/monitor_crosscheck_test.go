package bench

import (
	"testing"

	"lineup/internal/core"
	"lineup/internal/history"
	"lineup/internal/monitor"
)

// crosscheckModels maps the cause cases with an executable monitor model to
// that model: Fig. 1 (cause B, BlockingCollection) is a FIFO queue, Fig. 9
// (cause A, ManualResetEvent) is a manual-reset event.
var crosscheckModels = map[Cause]string{
	CauseA: "mre",
	CauseB: "queue",
}

// TestMonitorAgreesWithSpecBackend asserts that the two phase-2 witness
// backends — phase-1 spec-set lookup and the monitor's model-replay search —
// reach the same verdict on every history the explorer emits for the Fig. 1
// and Fig. 9 scenarios, in both the generalized and the classic treatment of
// pending operations.
func TestMonitorAgreesWithSpecBackend(t *testing.T) {
	for _, cc := range CauseCases() {
		name, ok := crosscheckModels[cc.Cause]
		if !ok {
			continue
		}
		cc := cc
		t.Run(string(cc.Cause)+"-"+name, func(t *testing.T) {
			model, ok := monitor.Builtin(name)
			if !ok {
				t.Fatalf("no builtin model %q", name)
			}
			opts := core.Options{PreemptionBound: cc.Bound}
			spec, _, err := core.SynthesizeSpec(cc.Subject, cc.Test, opts)
			if err != nil {
				t.Fatal(err)
			}
			histories := 0
			err = core.ExploreHistories(cc.Subject, cc.Test, opts, func(h *history.History) bool {
				histories++
				if !h.Stuck {
					_, specOK := spec.WitnessFull(h)
					out, merr := monitor.Check(model, h, monitor.Options{})
					if merr != nil {
						t.Fatalf("monitor: %v\nhistory:\n%s", merr, h)
					}
					if specOK != out.Linearizable {
						t.Errorf("backends disagree on complete history (spec=%v monitor=%v):\n%s",
							specOK, out.Linearizable, h)
						return false
					}
					return true
				}
				// Generalized treatment: each pending op needs a stuck witness.
				specOK := true
				for _, e := range h.Pending() {
					if _, ok := spec.WitnessStuck(h, e); !ok {
						specOK = false
						break
					}
				}
				out, merr := monitor.Check(model, h, monitor.Options{Mode: monitor.ModeGeneralized})
				if merr != nil {
					t.Fatalf("monitor: %v\nhistory:\n%s", merr, h)
				}
				if specOK != out.Linearizable {
					t.Errorf("backends disagree on stuck history (spec=%v monitor=%v):\n%s",
						specOK, out.Linearizable, h)
					return false
				}
				// Classic treatment: pending ops completed or dropped.
				_, specClassic := spec.WitnessClassic(h)
				cout, merr := monitor.Check(model, h, monitor.Options{Mode: monitor.ModeClassic})
				if merr != nil {
					t.Fatalf("monitor classic: %v\nhistory:\n%s", merr, h)
				}
				if specClassic != cout.Linearizable {
					t.Errorf("backends disagree classically (spec=%v monitor=%v):\n%s",
						specClassic, cout.Linearizable, h)
					return false
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if histories == 0 {
				t.Fatal("explorer emitted no histories")
			}
			t.Logf("agreed on %d distinct histories", histories)
		})
	}
}

// TestCheckWithMonitorFindsCauses asserts that the monitor backend finds the
// seeded Fig. 1 and Fig. 9 violations end to end, with no phase-1 serial
// enumeration, and that the corrected counterparts pass the same tests.
func TestCheckWithMonitorFindsCauses(t *testing.T) {
	for _, cc := range CauseCases() {
		name, ok := crosscheckModels[cc.Cause]
		if !ok {
			continue
		}
		cc := cc
		t.Run(string(cc.Cause)+"-"+name, func(t *testing.T) {
			model, _ := monitor.Builtin(name)
			opts := core.RefOptions{Options: core.Options{PreemptionBound: cc.Bound}}
			res, err := core.CheckWithMonitor(cc.Subject, model, cc.Test, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != core.Fail {
				t.Fatalf("expected the monitor backend to find the %s violation", cc.Cause)
			}
			if res.Violation.Kind != cc.WantKind {
				t.Fatalf("violation kind = %v, want %v", res.Violation.Kind, cc.WantKind)
			}
			if res.Phase1.Executions != 0 {
				t.Fatalf("monitor check must not run phase 1 (got %d executions)", res.Phase1.Executions)
			}
			if cc.Counterpart == nil {
				return
			}
			good, err := core.CheckWithMonitor(cc.Counterpart, model, cc.Test, opts)
			if err != nil {
				t.Fatal(err)
			}
			if good.Verdict != core.Pass {
				t.Fatalf("corrected %s must pass under the monitor backend: %v",
					cc.Counterpart.Name, good.Violation)
			}
		})
	}
}
