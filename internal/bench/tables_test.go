package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"lineup/internal/bench"
)

func TestWriteTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	bench.WriteTable1(&buf)
	out := buf.String()
	for _, want := range []string{"Class", "ConcurrentQueue", "Barrier", "13 classes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, out)
		}
	}
}

// TestRunTable2Tiny exercises the Table 2 harness end to end with a tiny
// sample, checking row structure and the expected verdict split: the
// intentional classes (Bag, BlockingCollection, Barrier) and the (Pre)
// variants fail some tests, the clean classes fail none.
func TestRunTable2Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("table harness is slow")
	}
	rows, err := bench.RunTable2(bench.Table2Options{
		Samples: 2, Rows: 2, Cols: 2, Seed: 5, IncludePre: true,
	}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rows) != 21 { // 13 classes + 8 (Pre) variants
		t.Fatalf("rows = %d, want 21", len(rows))
	}
	byClass := make(map[string]bench.Table2Row)
	for _, r := range rows {
		byClass[r.Class] = r
		if r.Passed+r.Failed != 2 {
			t.Errorf("%s: %d+%d tests, want 2", r.Class, r.Passed, r.Failed)
		}
		if r.SerialAvg <= 0 {
			t.Errorf("%s: no serial histories", r.Class)
		}
	}
	for _, clean := range []string{"Lazy", "ConcurrentQueue", "ConcurrentStack", "ConcurrentDictionary"} {
		if byClass[clean].Failed != 0 {
			t.Errorf("%s failed %d tiny tests", clean, byClass[clean].Failed)
		}
	}
	// Causes column present for the annotated classes.
	if byClass["Barrier"].Causes == "" {
		t.Errorf("Barrier row missing cause annotation")
	}
	var buf bytes.Buffer
	bench.WriteTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Barrier") || !strings.Contains(buf.String(), "PB") {
		t.Fatalf("table 2 rendering broken:\n%s", buf.String())
	}
}
