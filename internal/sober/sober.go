// Package sober approximates the relaxed-memory check of the paper's
// Section 5.7: "the CHESS model checker does not directly enumerate the
// relaxed behaviors of the target architecture; instead it checks for
// potential violations of sequential consistency using a special algorithm
// similar to data race detection" (Burckhardt & Musuvathi, CAV 2008). The
// paper ran that check on the .NET classes and "did not find any such
// issues".
//
// This package detects the store-buffer (TSO) vulnerability pattern in
// sequentially consistent execution traces: thread t performs a plain write
// W(x) followed — with no intervening synchronization that would drain the
// store buffer — by a plain read R(y) of a different location, while thread
// u symmetrically performs W(y) ... R(x), and the two threads' access pairs
// are unordered by happens-before. Under TSO both reads could then see the
// pre-write values (the Dekker pattern), an outcome no interleaving of the
// SC semantics produces. Implementations whose cross-thread protocols go
// through volatile/interlocked accesses or monitors (as the paper observed
// of the .NET classes) never exhibit the pattern.
package sober

import (
	"fmt"

	"lineup/internal/sched"
)

// Pair is a store-buffer reordering candidate: a plain write followed by a
// plain read of a different location with no synchronization between them.
type Pair struct {
	Thread   sched.ThreadID
	WriteLoc string
	ReadLoc  string
	WriteOp  int
	ReadOp   int
}

// Violation is a potential SC violation under TSO: two cross-thread
// candidate pairs over the same two locations, unordered by happens-before.
type Violation struct {
	First  Pair
	Second Pair
}

func (v Violation) String() string {
	return fmt.Sprintf("potential SC violation under TSO (store-buffer pattern): "+
		"T%d W(%s);R(%s) vs T%d W(%s);R(%s)",
		v.First.Thread, v.First.WriteLoc, v.First.ReadLoc,
		v.Second.Thread, v.Second.WriteLoc, v.Second.ReadLoc)
}

// vc is a minimal vector clock.
type vc []int

func (v *vc) grow(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

func (v *vc) join(w vc) {
	v.grow(len(w))
	for i, c := range w {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

func (v vc) clone() vc {
	out := make(vc, len(v))
	copy(out, v)
	return out
}

// leq reports v <= w pointwise.
func (v vc) leq(w vc) bool {
	for i, c := range v {
		var wc int
		if i < len(w) {
			wc = w[i]
		}
		if c > wc {
			return false
		}
	}
	return true
}

type pairStamp struct {
	pair  Pair
	write vc // thread clock at the write
	read  vc // thread clock at the read
}

// Analyze scans one execution trace for the store-buffer pattern and
// returns the violations found (deduplicated by location pair and threads).
func Analyze(trace []sched.MemEvent) []Violation {
	threads := make(map[sched.ThreadID]*vc)
	locks := make(map[int]vc)
	syncLoc := make(map[int]vc)
	tvc := func(t sched.ThreadID) *vc {
		v, ok := threads[t]
		if !ok {
			nv := make(vc, int(t)+1)
			nv[t] = 1
			threads[t] = &nv
			return &nv
		}
		return v
	}
	tick := func(t sched.ThreadID, v *vc) {
		v.grow(int(t) + 1)
		(*v)[t]++
	}

	// pendingWrite[t] is the last plain write of t not yet followed by a
	// synchronization (which would drain the store buffer).
	type pw struct {
		loc   int
		name  string
		op    int
		stamp vc
	}
	pendingWrite := make(map[sched.ThreadID]*pw)
	var pairs []pairStamp

	for _, ev := range trace {
		v := tvc(ev.Thread)
		v.grow(int(ev.Thread) + 1)
		switch ev.Kind {
		case sched.MemAcquire:
			if l, ok := locks[ev.Loc]; ok {
				v.join(l)
			}
			delete(pendingWrite, ev.Thread) // fence: buffer drained
		case sched.MemRelease:
			locks[ev.Loc] = v.clone()
			tick(ev.Thread, v)
			delete(pendingWrite, ev.Thread)
		case sched.MemAtomicLoad:
			if l, ok := syncLoc[ev.Loc]; ok {
				v.join(l)
			}
			// Loads do not drain the buffer under TSO, but a volatile load
			// orders subsequent plain reads after it; conservatively keep
			// the pending write (TSO allows W -> volatile-R reordering of
			// the *visibility*, the interesting pattern survives).
		case sched.MemAtomicStore, sched.MemAtomicRMW:
			nv := v.clone()
			if l, ok := syncLoc[ev.Loc]; ok {
				nv.join(l)
				if ev.Kind == sched.MemAtomicRMW {
					v.join(l)
				}
			}
			syncLoc[ev.Loc] = nv
			tick(ev.Thread, v)
			delete(pendingWrite, ev.Thread) // interlocked ops fence on x86
		case sched.MemWrite:
			pendingWrite[ev.Thread] = &pw{loc: ev.Loc, name: ev.Name, op: ev.Op, stamp: v.clone()}
		case sched.MemRead:
			if w := pendingWrite[ev.Thread]; w != nil && w.loc != ev.Loc {
				pairs = append(pairs, pairStamp{
					pair: Pair{
						Thread:   ev.Thread,
						WriteLoc: w.name,
						ReadLoc:  ev.Name,
						WriteOp:  w.op,
						ReadOp:   ev.Op,
					},
					write: w.stamp,
					read:  v.clone(),
				})
			}
		}
	}

	// Match symmetric pairs: t writes x reads y, u writes y reads x, with
	// neither pair ordered before the other.
	var out []Violation
	seen := make(map[string]bool)
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			a, b := pairs[i], pairs[j]
			if a.pair.Thread == b.pair.Thread {
				continue
			}
			if a.pair.WriteLoc != b.pair.ReadLoc || a.pair.ReadLoc != b.pair.WriteLoc {
				continue
			}
			// Ordered pairs cannot both read stale values.
			if a.read.leq(b.write) || b.read.leq(a.write) {
				continue
			}
			key := fmt.Sprintf("%d|%d|%s|%s", a.pair.Thread, b.pair.Thread, a.pair.WriteLoc, a.pair.ReadLoc)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Violation{First: a.pair, Second: b.pair})
		}
	}
	return out
}
