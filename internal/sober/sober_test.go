package sober_test

import (
	"testing"

	"lineup/internal/sched"
	"lineup/internal/sober"
)

// TestDekkerPatternDetected: the classic store-buffer litmus test — each
// thread writes its own flag then reads the other's — is flagged.
func TestDekkerPatternDetected(t *testing.T) {
	trace := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "flagA", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 1, Name: "flagB", Op: 2},
		{Thread: 1, Kind: sched.MemRead, Loc: 1, Name: "flagB", Op: 1},
		{Thread: 2, Kind: sched.MemRead, Loc: 0, Name: "flagA", Op: 2},
	}
	vs := sober.Analyze(trace)
	if len(vs) != 1 {
		t.Fatalf("expected 1 violation, got %v", vs)
	}
	if vs[0].String() == "" {
		t.Fatalf("empty rendering")
	}
}

// TestVolatileFlagsAreSafe: the same protocol through volatile (atomic)
// flags is not flagged — interlocked/volatile stores drain the buffer.
func TestVolatileFlagsAreSafe(t *testing.T) {
	trace := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemAtomicStore, Loc: 0, Name: "flagA", Op: 1},
		{Thread: 2, Kind: sched.MemAtomicStore, Loc: 1, Name: "flagB", Op: 2},
		{Thread: 1, Kind: sched.MemRead, Loc: 1, Name: "flagB", Op: 1},
		{Thread: 2, Kind: sched.MemRead, Loc: 0, Name: "flagA", Op: 2},
	}
	if vs := sober.Analyze(trace); len(vs) != 0 {
		t.Fatalf("volatile protocol flagged: %v", vs)
	}
}

// TestLockFenceDrainsBuffer: taking a lock between the write and the read
// breaks the pattern.
func TestLockFenceDrainsBuffer(t *testing.T) {
	trace := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "flagA", Op: 1},
		{Thread: 1, Kind: sched.MemAcquire, Loc: 9, Name: "m"},
		{Thread: 1, Kind: sched.MemRead, Loc: 1, Name: "flagB", Op: 1},
		{Thread: 1, Kind: sched.MemRelease, Loc: 9, Name: "m"},
		{Thread: 2, Kind: sched.MemWrite, Loc: 1, Name: "flagB", Op: 2},
		{Thread: 2, Kind: sched.MemRead, Loc: 0, Name: "flagA", Op: 2},
	}
	if vs := sober.Analyze(trace); len(vs) != 0 {
		t.Fatalf("fenced pattern flagged: %v", vs)
	}
}

// TestSameLocationPairIgnored: W(x);R(x) reads from the own store buffer —
// no reordering is observable.
func TestSameLocationPairIgnored(t *testing.T) {
	trace := []sched.MemEvent{
		{Thread: 1, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 1},
		{Thread: 1, Kind: sched.MemRead, Loc: 0, Name: "x", Op: 1},
		{Thread: 2, Kind: sched.MemWrite, Loc: 0, Name: "x", Op: 2},
		{Thread: 2, Kind: sched.MemRead, Loc: 0, Name: "x", Op: 2},
	}
	if vs := sober.Analyze(trace); len(vs) != 0 {
		t.Fatalf("same-location accesses flagged: %v", vs)
	}
}
