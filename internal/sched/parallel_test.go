package sched_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lineup/internal/sched"
)

// fullKey identifies an outcome by its complete observable behavior: every
// scheduler event plus the stuck flag. Two executions with equal keys took
// observationally identical schedules.
func fullKey(o *sched.Outcome) string {
	s := fmt.Sprint(o.Events)
	if o.Stuck {
		s += "#stuck"
	}
	return s
}

// multiset counts outcome keys.
type multiset map[string]int

func (m multiset) equal(n multiset) bool {
	if len(m) != len(n) {
		return false
	}
	for k, v := range m {
		if n[k] != v {
			return false
		}
	}
	return true
}

// exploreSeq collects the sequential explorer's outcome multiset and stats.
func exploreSeq(t *testing.T, cfg sched.ExploreConfig, prog sched.Program) (multiset, sched.ExploreStats, error) {
	t.Helper()
	ms := multiset{}
	stats, err := sched.Explore(cfg, prog, func(o *sched.Outcome) bool {
		ms[fullKey(o)]++
		return true
	})
	return ms, stats, err
}

// explorePar collects the parallel explorer's outcome multiset and stats.
func explorePar(t *testing.T, cfg sched.ExploreConfig, pcfg sched.ParallelConfig, newProg func() sched.Program) (multiset, sched.ExploreStats, error) {
	t.Helper()
	var mu sync.Mutex
	ms := multiset{}
	stats, err := sched.ExploreParallel(cfg, pcfg, newProg, func(o *sched.Outcome, p sched.Pos) bool {
		mu.Lock()
		ms[fullKey(o)]++
		mu.Unlock()
		return true
	})
	return ms, stats, err
}

// TestParallelEquivalenceMultiset is the core equivalence suite: across
// worker counts, preemption bounds, and shard depths, the parallel explorer
// must visit the exact same multiset of outcomes as the sequential one and
// merge identical statistics.
func TestParallelEquivalenceMultiset(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Bounds per program are chosen so every schedule space stays small
	// enough to enumerate exhaustively (a few thousand executions); the
	// 3-thread subjects skip Unbounded, whose spaces run into the tens of
	// thousands per worker/depth combination.
	progs := []struct {
		name   string
		mk     func() sched.Program
		cfg    sched.Config
		bounds []int
	}{
		{"2x2", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
		}, sched.Config{}, []int{0, 1, 2, sched.Unbounded}},
		{"3x1", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(1, "a"), opThread(1, "b"), opThread(1, "c")}}
		}, sched.Config{}, []int{0, 1, 2}},
		{"3x2", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b"), opThread(2, "c")}}
		}, sched.Config{}, []int{0, 1}},
		{"uneven", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(1, "a"), opThread(3, "b")}}
		}, sched.Config{}, []int{0, 1, 2, sched.Unbounded}},
		{"serial-2x3", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(3, "a"), opThread(3, "b")}}
		}, sched.Config{Serial: true}, []int{sched.Unbounded}},
	}
	workers := []int{1, 2, 4, 8}
	for _, p := range progs {
		for _, bound := range p.bounds {
			cfg := sched.ExploreConfig{Config: p.cfg, PreemptionBound: bound}
			wantMS, wantStats, wantErr := exploreSeq(t, cfg, p.mk())
			if wantErr != nil {
				t.Fatalf("%s bound=%d: sequential explore: %v", p.name, bound, wantErr)
			}
			for _, w := range workers {
				for _, depth := range []int{1, 2, 3} {
					pcfg := sched.ParallelConfig{Workers: w, ShardDepth: depth}
					gotMS, gotStats, gotErr := explorePar(t, cfg, pcfg, p.mk)
					tag := fmt.Sprintf("%s bound=%d workers=%d depth=%d", p.name, bound, w, depth)
					if gotErr != nil {
						t.Fatalf("%s: parallel explore: %v", tag, gotErr)
					}
					if !wantMS.equal(gotMS) {
						t.Fatalf("%s: outcome multisets differ: sequential %d distinct / parallel %d distinct",
							tag, len(wantMS), len(gotMS))
					}
					if gotStats.Executions != wantStats.Executions || gotStats.Decisions != wantStats.Decisions || gotStats.Truncated != wantStats.Truncated {
						t.Fatalf("%s: stats differ: sequential %+v parallel %+v", tag, wantStats, gotStats)
					}
				}
			}
		}
	}
}

// TestParallelPositionsAreSequentialOrder checks the determinism backbone:
// sorting the parallel explorer's visited outcomes by Pos reproduces the
// sequential visit order exactly.
func TestParallelPositionsAreSequentialOrder(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b"), opThread(1, "c")}}
	}
	cfg := sched.ExploreConfig{PreemptionBound: 2}
	var seq []string
	if _, err := sched.Explore(cfg, mk(), func(o *sched.Outcome) bool {
		seq = append(seq, fullKey(o))
		return true
	}); err != nil {
		t.Fatalf("sequential explore: %v", err)
	}
	type visited struct {
		key string
		pos sched.Pos
	}
	var mu sync.Mutex
	var got []visited
	if _, err := sched.ExploreParallel(cfg, sched.ParallelConfig{Workers: 4}, mk, func(o *sched.Outcome, p sched.Pos) bool {
		mu.Lock()
		got = append(got, visited{fullKey(o), append(sched.Pos(nil), p...)})
		mu.Unlock()
		return true
	}); err != nil {
		t.Fatalf("parallel explore: %v", err)
	}
	if len(got) != len(seq) {
		t.Fatalf("parallel visited %d executions, sequential %d", len(got), len(seq))
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[j].pos.Before(got[i].pos) {
				got[i], got[j] = got[j], got[i]
			}
		}
	}
	for i := range got {
		if got[i].key != seq[i] {
			t.Fatalf("position-sorted parallel outcome %d differs from sequential visit order", i)
		}
	}
}

// TestParallelBudgetTruncation checks that MaxExecutions caps the parallel
// explorer exactly like the sequential one: same ErrBudget, same Truncated
// flag, and exactly the same number of executions run.
func TestParallelBudgetTruncation(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	full, _, err := exploreSeq(t, sched.ExploreConfig{PreemptionBound: sched.Unbounded}, mk())
	if err != nil {
		t.Fatalf("sequential explore: %v", err)
	}
	total := 0
	for _, n := range full {
		total += n
	}
	if total < 20 {
		t.Fatalf("schedule space too small for a truncation test: %d", total)
	}
	for _, max := range []int{1, 7, total / 2, total - 1} {
		cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded, MaxExecutions: max}
		_, seqStats, seqErr := exploreSeq(t, cfg, mk())
		for _, w := range []int{1, 4} {
			_, parStats, parErr := explorePar(t, cfg, sched.ParallelConfig{Workers: w}, mk)
			if (seqErr == sched.ErrBudget) != (parErr == sched.ErrBudget) {
				t.Fatalf("max=%d workers=%d: budget errors disagree: sequential %v parallel %v", max, w, seqErr, parErr)
			}
			if parStats.Truncated != seqStats.Truncated {
				t.Fatalf("max=%d workers=%d: Truncated disagrees: sequential %v parallel %v", max, w, seqStats.Truncated, parStats.Truncated)
			}
			if parStats.Executions != seqStats.Executions {
				t.Fatalf("max=%d workers=%d: executions disagree: sequential %d parallel %d", max, w, seqStats.Executions, parStats.Executions)
			}
		}
	}
	// A budget at least as large as the space must not truncate.
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded, MaxExecutions: total}
	_, parStats, parErr := explorePar(t, cfg, sched.ParallelConfig{Workers: 4}, mk)
	if parErr != nil || parStats.Truncated {
		t.Fatalf("budget == space must not truncate: err=%v stats=%+v", parErr, parStats)
	}
}

// TestParallelEarlyStop checks early cancellation: when a visit returns
// false, the parallel explorer returns a nil error (like the sequential one)
// and does not run the whole space.
func TestParallelEarlyStop(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded}
	// Collect the sequential visit order, then stop on the key the sequential
	// explorer reaches halfway through — a stopping condition well inside the
	// space that any order of exploration can hit.
	var seq []string
	_, err := sched.Explore(cfg, mk(), func(o *sched.Outcome) bool {
		seq = append(seq, fullKey(o))
		return true
	})
	if err != nil {
		t.Fatalf("sequential explore: %v", err)
	}
	fullExecs := len(seq)
	stopKey := seq[fullExecs/2]
	stopAt := func(o *sched.Outcome) bool { return fullKey(o) == stopKey }
	var seqStopped bool
	seqStats, seqErr := sched.Explore(cfg, mk(), func(o *sched.Outcome) bool {
		if stopAt(o) {
			seqStopped = true
			return false
		}
		return true
	})
	if seqErr != nil || !seqStopped {
		t.Fatalf("sequential run: stopped=%v err=%v", seqStopped, seqErr)
	}
	for _, w := range []int{2, 8} {
		var mu sync.Mutex
		stopped := 0
		parStats, parErr := sched.ExploreParallel(cfg, sched.ParallelConfig{Workers: w}, mk, func(o *sched.Outcome, p sched.Pos) bool {
			if stopAt(o) {
				mu.Lock()
				stopped++
				mu.Unlock()
				return false
			}
			return true
		})
		if parErr != nil {
			t.Fatalf("workers=%d: parallel explore: %v", w, parErr)
		}
		if stopped == 0 {
			t.Fatalf("workers=%d: parallel explorer never hit the stop condition", w)
		}
		if parStats.Executions > fullExecs {
			t.Fatalf("workers=%d: parallel ran %d executions, more than the full space %d", w, parStats.Executions, fullExecs)
		}
		_ = seqStats
	}
}

// TestParallelErrorDeterministic checks that a failing execution (a panic in
// program code) surfaces as the same error regardless of worker count: the
// sequentially-first failure wins.
func TestParallelErrorDeterministic(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Thread b panics when its point runs before thread a finished: many
	// schedules fail, and the parallel explorer must report the failure the
	// sequential DFS would hit first.
	mk := func() sched.Program {
		var aDone bool
		return sched.Program{
			Setup: func(*sched.Thread) { aDone = false },
			Threads: []func(*sched.Thread){
				func(th *sched.Thread) {
					th.OpStart("a")
					th.Point(sched.PointAtomic)
					aDone = true
					th.OpEnd("a", "ok")
				},
				func(th *sched.Thread) {
					th.OpStart("b")
					th.Point(sched.PointAtomic)
					if !aDone {
						panic("b overtook a")
					}
					th.OpEnd("b", "ok")
				},
			},
		}
	}
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded}
	_, seqErr := sched.Explore(cfg, mk(), func(o *sched.Outcome) bool { return true })
	if seqErr == nil {
		t.Fatalf("sequential explorer found no failing execution")
	}
	// Panic errors embed a goroutine stack dump; the identifying part is the
	// first line ("thread N panicked: ...").
	firstLine := func(err error) string {
		s := err.Error()
		for i := 0; i < len(s); i++ {
			if s[i] == '\n' {
				return s[:i]
			}
		}
		return s
	}
	for _, w := range []int{1, 2, 4, 8} {
		_, parErr := sched.ExploreParallel(cfg, sched.ParallelConfig{Workers: w}, mk, func(o *sched.Outcome, p sched.Pos) bool { return true })
		if parErr == nil {
			t.Fatalf("workers=%d: parallel explorer found no failing execution", w)
		}
		if firstLine(parErr) != firstLine(seqErr) {
			t.Fatalf("workers=%d: error differs from sequential:\n got %v\nwant %v", w, firstLine(parErr), firstLine(seqErr))
		}
	}
}

// TestParallelProgress checks the shard progress counters: monotone
// executions, and a final snapshot accounting for every shard.
func TestParallelProgress(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	var mu sync.Mutex
	var last sched.ShardProgress
	snaps := 0
	pcfg := sched.ParallelConfig{Workers: 4, Progress: func(p sched.ShardProgress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Executions < last.Executions || p.Shards < last.Shards || p.Done < last.Done {
			t.Errorf("progress went backwards: %+v after %+v", p, last)
		}
		last = p
		snaps++
	}}
	stats, err := sched.ExploreParallel(sched.ExploreConfig{PreemptionBound: 2}, pcfg, mk, func(o *sched.Outcome, p sched.Pos) bool { return true })
	if err != nil {
		t.Fatalf("parallel explore: %v", err)
	}
	if snaps == 0 {
		t.Fatalf("progress callback never invoked")
	}
	if last.Done != last.Shards {
		t.Fatalf("final progress has %d done of %d shards", last.Done, last.Shards)
	}
	if last.Executions != stats.Executions {
		t.Fatalf("final progress reports %d executions, stats %d", last.Executions, stats.Executions)
	}
}

// TestParallelPropertyRandomPrograms is the randomized property suite:
// random thread counts and op matrices, random bounds, random worker counts
// and shard depths — the parallel explorer must agree with the sequential
// one on executions, truncation, and (when the space is fully explored) the
// full outcome multiset and decision count.
func TestParallelPropertyRandomPrograms(t *testing.T) {
	sched.RequireNoLeaks(t)
	rng := rand.New(rand.NewSource(0x11e4))
	const budget = 2000
	for iter := 0; iter < 18; iter++ {
		nThreads := 1 + rng.Intn(3)
		mkOps := make([]int, nThreads)
		for i := range mkOps {
			mkOps[i] = 1 + rng.Intn(3)
		}
		mk := func() sched.Program {
			threads := make([]func(*sched.Thread), nThreads)
			for i := range threads {
				threads[i] = opThread(mkOps[i], fmt.Sprintf("t%d", i))
			}
			return sched.Program{Threads: threads}
		}
		bound := []int{0, 1, 2, sched.Unbounded}[rng.Intn(4)]
		cfg := sched.ExploreConfig{PreemptionBound: bound, MaxExecutions: budget}
		pcfg := sched.ParallelConfig{Workers: 1 + rng.Intn(8), ShardDepth: 1 + rng.Intn(3)}
		tag := fmt.Sprintf("iter=%d threads=%v bound=%d workers=%d depth=%d", iter, mkOps, bound, pcfg.Workers, pcfg.ShardDepth)

		seqMS, seqStats, seqErr := exploreSeq(t, cfg, mk())
		parMS, parStats, parErr := explorePar(t, cfg, pcfg, mk)
		if (seqErr == sched.ErrBudget) != (parErr == sched.ErrBudget) {
			t.Fatalf("%s: budget errors disagree: sequential %v parallel %v", tag, seqErr, parErr)
		}
		if seqErr == nil && parErr != nil {
			t.Fatalf("%s: parallel error %v, sequential none", tag, parErr)
		}
		if parStats.Truncated != seqStats.Truncated {
			t.Fatalf("%s: Truncated disagrees: sequential %v parallel %v", tag, seqStats.Truncated, parStats.Truncated)
		}
		if parStats.Executions != seqStats.Executions {
			t.Fatalf("%s: executions disagree: sequential %d parallel %d", tag, seqStats.Executions, parStats.Executions)
		}
		if !seqStats.Truncated {
			if !seqMS.equal(parMS) {
				t.Fatalf("%s: outcome multisets differ (%d vs %d distinct)", tag, len(seqMS), len(parMS))
			}
			if parStats.Decisions != seqStats.Decisions {
				t.Fatalf("%s: decisions disagree: sequential %d parallel %d", tag, seqStats.Decisions, parStats.Decisions)
			}
		}
	}
}

// TestParallelProgressSealedAfterReturn is the regression test for the final
// progress emission: ExploreParallel must deliver a closing snapshot with the
// complete merged totals exactly once, and the callback must never fire after
// the call returns — a late shard-retire emission used to race with (and
// sometimes outrun) the caller tearing the sink down. The early-cancel
// variant is the hard case: workers are still retiring abandoned shards
// while the coordinator unwinds.
func TestParallelProgressSealedAfterReturn(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	for _, tc := range []struct {
		name   string
		cancel bool
	}{
		{"full", false},
		{"cancel", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var (
				mu     sync.Mutex
				sealed bool
				count  int
				last   sched.ShardProgress
			)
			pcfg := sched.ParallelConfig{Workers: 4, Progress: func(p sched.ShardProgress) {
				mu.Lock()
				defer mu.Unlock()
				if sealed {
					t.Errorf("progress emitted after ExploreParallel returned: %+v", p)
				}
				count++
				last = p
			}}
			var visited int32
			visit := func(o *sched.Outcome, p sched.Pos) bool {
				if !tc.cancel {
					return true
				}
				mu.Lock()
				visited++
				stop := visited >= 5
				mu.Unlock()
				return !stop
			}
			stats, err := sched.ExploreParallel(sched.ExploreConfig{PreemptionBound: 2}, pcfg, mk, visit)
			if err != nil {
				t.Fatalf("parallel explore: %v", err)
			}
			mu.Lock()
			sealed = true
			final, n := last, count
			mu.Unlock()
			if n == 0 {
				t.Fatal("progress callback never invoked")
			}
			if final.Done != final.Shards {
				t.Errorf("final snapshot incomplete: %d done of %d shards", final.Done, final.Shards)
			}
			if final.Executions != stats.Executions {
				t.Errorf("final snapshot reports %d executions, returned stats %d", final.Executions, stats.Executions)
			}
			// Any emission still in flight at return would trip the sealed
			// check above; give a buggy implementation a beat to do so.
			time.Sleep(50 * time.Millisecond)
			mu.Lock()
			if count != n {
				t.Errorf("%d progress emissions arrived after return", count-n)
			}
			mu.Unlock()
		})
	}
}
