package sched_test

import (
	"errors"
	"fmt"
	"testing"

	"lineup/internal/sched"
)

// opThread builds a thread body that performs n trivial operations, each
// with a single instrumented atomic point between start and end.
func opThread(n int, label string) func(t *sched.Thread) {
	return func(t *sched.Thread) {
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s%d", label, i)
			t.OpStart(name)
			t.Point(sched.PointAtomic)
			t.OpEnd(name, "ok")
		}
	}
}

func exploreAll(t *testing.T, cfg sched.ExploreConfig, prog sched.Program) ([]*sched.Outcome, sched.ExploreStats) {
	t.Helper()
	var outs []*sched.Outcome
	stats, err := sched.Explore(cfg, prog, func(o *sched.Outcome) bool {
		if o.Err != nil {
			t.Fatalf("execution error: %v", o.Err)
		}
		outs = append(outs, o)
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	return outs, stats
}

func serialKey(o *sched.Outcome) string {
	s := ""
	for _, e := range o.Events {
		if e.Kind == sched.EvCall {
			s += fmt.Sprintf("%d:%s;", e.Thread, e.Op)
		}
	}
	if o.Stuck {
		s += "#"
	}
	return s
}

func TestSerialEnumerationTwoByTwo(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	outs, _ := exploreAll(t, sched.ExploreConfig{
		Config:          sched.Config{Serial: true},
		PreemptionBound: sched.Unbounded,
	}, prog)
	// Serial interleavings of 2+2 operations: C(4,2) = 6.
	seen := map[string]bool{}
	for _, o := range outs {
		if o.Stuck {
			t.Fatalf("unexpected stuck serial execution")
		}
		seen[serialKey(o)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 distinct serial interleavings, got %d (%d executions)", len(seen), len(outs))
	}
}

// TestSerialEnumeration1680 reproduces the paper's Section 5.5 count: a 3x3
// test has 1680 full serial interleavings (9! / (3!)^3).
func TestSerialEnumeration1680(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		opThread(3, "a"), opThread(3, "b"), opThread(3, "c"),
	}}
	outs, _ := exploreAll(t, sched.ExploreConfig{
		Config:          sched.Config{Serial: true},
		PreemptionBound: sched.Unbounded,
	}, prog)
	seen := map[string]bool{}
	for _, o := range outs {
		seen[serialKey(o)] = true
	}
	if len(seen) != 1680 {
		t.Fatalf("expected 1680 distinct serial interleavings, got %d", len(seen))
	}
}

func TestPreemptionBoundZeroGivesThreadOrderings(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	outs, _ := exploreAll(t, sched.ExploreConfig{
		Config:          sched.Config{},
		PreemptionBound: 0,
	}, prog)
	// With no preemptions allowed, the only schedules are "A fully, then B"
	// and "B fully, then A".
	if len(outs) != 2 {
		t.Fatalf("expected exactly 2 schedules at preemption bound 0, got %d", len(outs))
	}
}

func TestPreemptionBoundMonotone(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	prev := 0
	for bound := 0; bound <= 3; bound++ {
		outs, _ := exploreAll(t, sched.ExploreConfig{
			Config:          sched.Config{},
			PreemptionBound: bound,
		}, prog())
		if len(outs) < prev {
			t.Fatalf("schedule count decreased when bound grew: bound=%d count=%d prev=%d", bound, len(outs), prev)
		}
		prev = len(outs)
	}
}

func TestSetupRunsBeforeThreadsAndTeardownAfter(t *testing.T) {
	sched.RequireNoLeaks(t)
	var order []string
	prog := sched.Program{
		Setup: func(t *sched.Thread) { order = append(order, "setup") },
		Threads: []func(*sched.Thread){
			func(t *sched.Thread) {
				t.OpStart("x")
				t.OpEnd("x", "ok")
				order = append(order, "thread")
			},
		},
		Teardown: func(t *sched.Thread) { order = append(order, "teardown") },
	}
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(prog)
	if out.Err != nil || out.Stuck {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	want := []string{"setup", "thread", "teardown"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestDeadlockIsStuck(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Two threads block on wait sets that nobody signals.
	var ws1, ws2 sched.WaitSet
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("w1")
			ws1.Wait(t)
			t.OpEnd("w1", "ok")
		},
		func(t *sched.Thread) {
			t.OpStart("w2")
			ws2.Wait(t)
			t.OpEnd("w2", "ok")
		},
	}}
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(prog)
	if !out.Stuck {
		t.Fatalf("expected stuck outcome")
	}
	// Both calls must be recorded as pending (calls without returns).
	calls, rets := 0, 0
	for _, e := range out.Events {
		if e.Kind == sched.EvCall {
			calls++
		} else {
			rets++
		}
	}
	if calls != 2 || rets != 0 {
		t.Fatalf("expected 2 pending calls, got calls=%d rets=%d", calls, rets)
	}
}

func TestWaitSetSignalWakesWaiter(t *testing.T) {
	sched.RequireNoLeaks(t)
	var ws sched.WaitSet
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("wait")
			ws.Wait(t)
			t.OpEnd("wait", "ok")
		},
		func(t *sched.Thread) {
			t.OpStart("signal")
			t.Point(sched.PointAtomic)
			ws.Broadcast(t)
			t.OpEnd("signal", "ok")
		},
	}}
	// Under every schedule the waiter must eventually complete: either it
	// waits after the broadcast has not happened yet and is woken, or the
	// broadcast happened first... which would lose the wakeup. This test
	// documents that a bare wait set CAN lose a pre-registration broadcast
	// (Mesa semantics): some schedules are stuck. The condition-variable
	// pattern in vsync avoids this by registering first.
	stuck, done := 0, 0
	_, err := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{},
		PreemptionBound: sched.Unbounded,
	}, prog, func(o *sched.Outcome) bool {
		if o.Err != nil {
			t.Fatalf("execution error: %v", o.Err)
		}
		if o.Stuck {
			stuck++
		} else {
			done++
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if done == 0 {
		t.Fatalf("expected at least one schedule where the waiter completes")
	}
	if stuck == 0 {
		t.Fatalf("expected at least one schedule where the broadcast precedes the wait (lost wakeup)")
	}
}

func TestDivergenceDetected(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("spin")
			for {
				t.Point(sched.PointAtomic)
			}
		},
	}}
	s := sched.NewScheduler(sched.Config{MaxOpSteps: 100}, nil)
	out := s.Run(prog)
	if !out.Stuck {
		t.Fatalf("expected diverging loop to be reported as stuck")
	}
}

func TestReplayReproducesEvents(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	// Take the 5th schedule of an exploration and replay it.
	var want []sched.OpEvent
	var schedule []sched.ThreadID
	n := 0
	_, err := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{},
		PreemptionBound: sched.Unbounded,
	}, mk(), func(o *sched.Outcome) bool {
		n++
		if n == 5 {
			want = o.Events
			return true
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	_ = schedule
	if want == nil {
		t.Skip("fewer than 5 schedules")
	}
	// Re-explore and confirm the 5th schedule yields identical events
	// (exploration is fully deterministic).
	n = 0
	_, err = sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{},
		PreemptionBound: sched.Unbounded,
	}, mk(), func(o *sched.Outcome) bool {
		n++
		if n == 5 {
			if fmt.Sprint(o.Events) != fmt.Sprint(want) {
				t.Fatalf("replay mismatch:\n got %v\nwant %v", o.Events, want)
			}
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
}

func TestExecutionBudget(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		opThread(3, "a"), opThread(3, "b"), opThread(3, "c"),
	}}
	_, err := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{Serial: true},
		PreemptionBound: sched.Unbounded,
		MaxExecutions:   10,
	}, prog, func(o *sched.Outcome) bool { return true })
	if err == nil {
		t.Fatalf("expected budget error")
	}
}

func TestRecordingControllerAndReplay(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	// Record the decisions of one run under the default controller.
	rc := &sched.RecordingController{Inner: pickSecond{}}
	s := sched.NewScheduler(sched.Config{}, rc)
	out1 := s.Run(mk())
	if out1.Err != nil {
		t.Fatalf("run: %v", out1.Err)
	}
	if len(rc.Schedule) == 0 {
		t.Fatalf("no decisions recorded")
	}
	// Replaying the recorded schedule reproduces the events exactly.
	out2, err := sched.ReplaySchedule(sched.Config{}, mk(), rc.Schedule)
	if err != nil {
		t.Fatalf("replay divergence: %v", err)
	}
	if out2.Err != nil {
		t.Fatalf("replay: %v", out2.Err)
	}
	if fmt.Sprint(out1.Events) != fmt.Sprint(out2.Events) {
		t.Fatalf("replay diverged:\n got %v\nwant %v", out2.Events, out1.Events)
	}
}

func TestReplayScheduleDivergence(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Record a schedule, then replay it with its first decision rewritten to
	// a thread that does not exist: the replayer must report a typed
	// divergence error instead of silently running a different schedule.
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(3, "a"), opThread(3, "b")}}
	}
	rc := &sched.RecordingController{Inner: pickSecond{}}
	out := sched.NewScheduler(sched.Config{}, rc).Run(mk())
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if len(rc.Schedule) == 0 {
		t.Fatalf("no decisions recorded")
	}
	stale := append([]sched.ThreadID(nil), rc.Schedule...)
	stale[0] = sched.ThreadID(99)
	out2, err := sched.ReplaySchedule(sched.Config{}, mk(), stale)
	if err == nil {
		t.Fatalf("expected divergence error, got none")
	}
	var div *sched.ScheduleDivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("expected *ScheduleDivergenceError, got %T: %v", err, err)
	}
	if div.Decision != 0 {
		t.Fatalf("divergence at decision %d, want 0", div.Decision)
	}
	if div.Want != 99 {
		t.Fatalf("divergence wants thread %d, want 99", div.Want)
	}
	for _, id := range div.Enabled {
		if id == div.Want {
			t.Fatalf("divergence reports thread %d as both wanted and enabled", id)
		}
	}
	// The fallback execution still terminates cleanly.
	if out2 == nil || out2.Err != nil {
		t.Fatalf("fallback outcome: %+v", out2)
	}
	// A faithful replay of the same schedule reports no divergence.
	if _, err := sched.ReplaySchedule(sched.Config{}, mk(), rc.Schedule); err != nil {
		t.Fatalf("faithful replay reported divergence: %v", err)
	}
}

// pickSecond is a deliberately non-default controller so that the recorded
// schedule differs from the fallback behavior of ReplaySchedule.
type pickSecond struct{}

func (pickSecond) Pick(cur sched.ThreadID, curEnabled bool, enabled []sched.ThreadID) sched.ThreadID {
	return enabled[len(enabled)-1]
}

func TestTraceRecording(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("op")
			th.Point(sched.PointAtomic)
			th.Record(sched.MemAtomicStore, 0, "x")
			th.Point(sched.PointRead)
			th.Record(sched.MemRead, 1, "y")
			th.OpEnd("op", "ok")
		},
	}}
	s := sched.NewScheduler(sched.Config{RecordTrace: true}, nil)
	out := s.Run(prog)
	if out.Err != nil || out.Stuck {
		t.Fatalf("outcome: %+v", out)
	}
	if len(out.Trace) != 2 {
		t.Fatalf("trace length = %d, want 2", len(out.Trace))
	}
	if out.Trace[0].Kind != sched.MemAtomicStore || out.Trace[0].Name != "x" {
		t.Fatalf("bad first trace event: %+v", out.Trace[0])
	}
	if out.Trace[1].Op != out.Trace[0].Op {
		t.Fatalf("trace events not attributed to the same operation")
	}
	// Without RecordTrace the trace stays empty.
	s2 := sched.NewScheduler(sched.Config{}, nil)
	out2 := s2.Run(sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("op")
			th.Record(sched.MemRead, 1, "y")
			th.OpEnd("op", "ok")
		},
	}})
	if len(out2.Trace) != 0 {
		t.Fatalf("trace recorded without RecordTrace")
	}
}
