package sched

import (
	"math/rand"

	"lineup/internal/telemetry"
)

// Strategy selects a sampling scheduler for ExploreRandom.
type Strategy int

const (
	// StrategyWalk is a uniform random walk: every decision picks a
	// uniformly random enabled thread.
	StrategyWalk Strategy = iota
	// StrategyPCT is probabilistic concurrency testing (Burckhardt et al.,
	// ASPLOS 2010, the search-prioritization family the paper cites as
	// CHESS heuristics [5]): threads get random priorities, the
	// highest-priority enabled thread runs, and at d-1 random change points
	// the running thread's priority drops below everyone else's. With depth
	// d it finds any bug of depth d with probability >= 1/(n*k^(d-1)).
	StrategyPCT
)

// RandomConfig parameterizes ExploreRandom.
type RandomConfig struct {
	Config
	// Runs is the number of independent sampled executions.
	Runs int
	// Seed makes the sample reproducible.
	Seed int64
	// Strategy selects the sampling scheduler.
	Strategy Strategy
	// Depth is the PCT bug depth d (priority change points = d-1); ignored
	// by StrategyWalk. Zero means 3.
	Depth int
	// Steps is the PCT estimate k of the execution length in decisions;
	// zero means 64.
	Steps int
	// ContinueOnFailure hands failed executions (panic, hang, leak) to the
	// visit callback instead of aborting the sampling run, mirroring
	// ExploreConfig.ContinueOnFailure.
	ContinueOnFailure bool
	// Telemetry, when non-nil, receives per-execution counters, mirroring
	// ExploreConfig.Telemetry.
	Telemetry *telemetry.Collector
}

// ExploreRandom samples schedules of prog instead of enumerating them: it
// performs cfg.Runs independent executions under the chosen strategy and
// hands each outcome to visit (stopping early if visit returns false).
// Unlike Explore it gives no coverage guarantee, but it scales to tests far
// beyond exhaustive reach; any violation found on a sampled schedule is
// still a true violation.
func ExploreRandom(cfg RandomConfig, prog Program, visit func(*Outcome) bool) (ExploreStats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var stats ExploreStats
	for i := 0; i < cfg.Runs; i++ {
		var ctrl Controller
		switch cfg.Strategy {
		case StrategyPCT:
			ctrl = newPCT(rng, cfg.Depth, cfg.Steps)
		default:
			ctrl = &walkController{rng: rng}
		}
		if c := cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		s := NewScheduler(cfg.Config, ctrl)
		out := s.Run(prog)
		recordOutcomeTelemetry(cfg.Telemetry, out)
		stats.Executions++
		stats.Decisions += out.Decisions
		if k := out.FailureKind(); k != FailNone && !cfg.ContinueOnFailure {
			return stats, out.FailureError()
		}
		if !visit(out) {
			return stats, nil
		}
	}
	return stats, nil
}

type walkController struct {
	rng *rand.Rand
}

func (w *walkController) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	return enabled[w.rng.Intn(len(enabled))]
}

// pctController implements the PCT scheduler. Priorities are assigned
// lazily as threads first appear; lower value = lower priority.
type pctController struct {
	rng          *rand.Rand
	priority     map[ThreadID]int
	changePoints map[int]bool // decision indices where the current priority drops
	decision     int
	lowWater     int // decreasing counter for dropped priorities
}

func newPCT(rng *rand.Rand, depth, steps int) *pctController {
	if depth <= 0 {
		depth = 3
	}
	if steps <= 0 {
		steps = 32
	}
	cps := make(map[int]bool, depth-1)
	for i := 0; i < depth-1; i++ {
		cps[1+rng.Intn(steps)] = true
	}
	return &pctController{
		rng:          rng,
		priority:     make(map[ThreadID]int),
		changePoints: cps,
		lowWater:     0,
	}
}

func (p *pctController) prio(t ThreadID) int {
	pr, ok := p.priority[t]
	if !ok {
		// Uniformly random initial priority, far above the drop range so
		// that dropped threads always rank below undropped ones. The large
		// range makes collisions negligible; ties break toward the lower
		// thread ID.
		pr = 1<<20 + p.rng.Intn(1<<20)
		p.priority[t] = pr
	}
	return pr
}

func (p *pctController) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	p.decision++
	if p.changePoints[p.decision] && curEnabled {
		// Drop the current thread's priority below every other.
		p.lowWater--
		p.priority[cur] = p.lowWater
	}
	best := enabled[0]
	bestPrio := p.prio(best)
	for _, t := range enabled[1:] {
		if pr := p.prio(t); pr > bestPrio {
			best, bestPrio = t, pr
		}
	}
	return best
}
