package sched_test

import (
	"fmt"
	"testing"

	"lineup/internal/sched"
)

// outcomeKey is a stable fingerprint of one execution's visible behavior.
func outcomeKey(o *sched.Outcome) string {
	s := ""
	for _, e := range o.Events {
		s += fmt.Sprintf("%d%d%s%s;", e.Thread, e.Kind, e.Op, e.Result)
	}
	if o.Stuck {
		s += "#"
	}
	return s
}

func checkpointProgram() sched.Program {
	return sched.Program{Threads: []func(*sched.Thread){
		opThread(2, "a"), opThread(2, "b"),
	}}
}

// TestCheckpointResumeContinuesExactly interrupts an exploration after k
// executions, resumes it from the last checkpoint, and verifies that the
// concatenated visit sequence and the final statistics are identical to an
// uninterrupted run — for several cut points including the first and last
// execution.
func TestCheckpointResumeContinuesExactly(t *testing.T) {
	sched.RequireNoLeaks(t)
	base := sched.ExploreConfig{PreemptionBound: 2}

	var full []string
	fullStats, err := sched.Explore(base, checkpointProgram(), func(o *sched.Outcome) bool {
		full = append(full, outcomeKey(o))
		return true
	})
	if err != nil {
		t.Fatalf("uninterrupted explore: %v", err)
	}
	if len(full) < 10 {
		t.Fatalf("test program too small to interrupt meaningfully: %d executions", len(full))
	}

	for _, cut := range []int{1, 2, len(full) / 2, len(full) - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			var prefix []string
			var last *sched.Checkpoint
			cfg := base
			cfg.MaxExecutions = cut
			cfg.Checkpoint = func(cp sched.Checkpoint) { last = &cp }
			_, err := sched.Explore(cfg, checkpointProgram(), func(o *sched.Outcome) bool {
				prefix = append(prefix, outcomeKey(o))
				return true
			})
			if err != sched.ErrBudget {
				t.Fatalf("interrupted explore: err = %v, want ErrBudget", err)
			}
			if last == nil {
				t.Fatalf("no checkpoint emitted before the cut")
			}
			if last.Executions != cut {
				t.Fatalf("checkpoint executions = %d, want %d", last.Executions, cut)
			}

			resumed := base
			resumed.Resume = last
			var suffix []string
			stats, err := sched.Explore(resumed, checkpointProgram(), func(o *sched.Outcome) bool {
				suffix = append(suffix, outcomeKey(o))
				return true
			})
			if err != nil {
				t.Fatalf("resumed explore: %v", err)
			}

			got := append(append([]string(nil), prefix...), suffix...)
			if len(got) != len(full) {
				t.Fatalf("resumed run visited %d executions total, want %d", len(got), len(full))
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("execution %d differs after resume:\n got %q\nwant %q", i, got[i], full[i])
				}
			}
			if stats != fullStats {
				t.Fatalf("final stats after resume = %+v, want %+v", stats, fullStats)
			}
		})
	}
}

// TestCheckpointPathIsNextExecution confirms the documented meaning of
// Checkpoint.Path: replaying the exploration with the path as resume seed
// runs, as its first execution, exactly the execution the interrupted run
// would have run next.
func TestCheckpointPathIsNextExecution(t *testing.T) {
	sched.RequireNoLeaks(t)
	base := sched.ExploreConfig{PreemptionBound: 2}
	var keys []string
	var cps []sched.Checkpoint
	_, err := sched.Explore(base, checkpointProgram(), func(o *sched.Outcome) bool {
		keys = append(keys, outcomeKey(o))
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	cfg := base
	cfg.Checkpoint = func(cp sched.Checkpoint) { cps = append(cps, cp) }
	_, err = sched.Explore(cfg, checkpointProgram(), func(o *sched.Outcome) bool { return true })
	if err != nil {
		t.Fatalf("explore with checkpoints: %v", err)
	}
	// One checkpoint after every advance that left work: executions-1.
	if len(cps) != len(keys)-1 {
		t.Fatalf("got %d checkpoints for %d executions", len(cps), len(keys))
	}
	for _, i := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[i]
		resumed := base
		resumed.Resume = &cp
		resumed.MaxExecutions = cp.Executions + 1 // just the next execution
		var first string
		_, err := sched.Explore(resumed, checkpointProgram(), func(o *sched.Outcome) bool {
			if first == "" {
				first = outcomeKey(o)
			}
			return true
		})
		if err != nil && err != sched.ErrBudget {
			t.Fatalf("resume at checkpoint %d: %v", i, err)
		}
		if first != keys[i+1] {
			t.Fatalf("checkpoint %d resumed into %q, want %q", i, first, keys[i+1])
		}
	}
}

// TestCheckpointResumeWithFailures verifies that frontier resume composes
// with failure containment: cutting an exploration of a partially-panicking
// program and resuming reproduces the uninterrupted failure sequence.
func TestCheckpointResumeWithFailures(t *testing.T) {
	sched.RequireNoLeaks(t)
	base := sched.ExploreConfig{PreemptionBound: sched.Unbounded, ContinueOnFailure: true}
	kinds := func(prog sched.Program, cfg sched.ExploreConfig, sink *[]string) error {
		_, err := sched.Explore(cfg, prog, func(o *sched.Outcome) bool {
			*sink = append(*sink, o.FailureKind().String()+"|"+outcomeKey(o))
			return true
		})
		return err
	}

	var full []string
	if err := kinds(overlapPanicProgram(), base, &full); err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}
	cut := len(full) / 2
	cfg := base
	cfg.MaxExecutions = cut
	var last *sched.Checkpoint
	cfg.Checkpoint = func(cp sched.Checkpoint) { last = &cp }
	var prefix []string
	if err := kinds(overlapPanicProgram(), cfg, &prefix); err != sched.ErrBudget {
		t.Fatalf("interrupted: err = %v, want ErrBudget", err)
	}
	resumed := base
	resumed.Resume = last
	var suffix []string
	if err := kinds(overlapPanicProgram(), resumed, &suffix); err != nil {
		t.Fatalf("resumed: %v", err)
	}
	got := append(prefix, suffix...)
	if len(got) != len(full) {
		t.Fatalf("got %d executions, want %d", len(got), len(full))
	}
	for i := range got {
		if got[i] != full[i] {
			t.Fatalf("execution %d differs: got %q want %q", i, got[i], full[i])
		}
	}
}
