package sched

import (
	"errors"
	"fmt"

	"lineup/internal/telemetry"
)

// Unbounded disables preemption bounding (used for the serial phase, which
// the paper runs without any bounding to keep the completeness theorem).
const Unbounded = -1

// ExploreConfig parameterizes an exhaustive exploration.
type ExploreConfig struct {
	Config
	// PreemptionBound limits the number of preemptive context switches per
	// execution (a switch taken while the current thread is still enabled).
	// Use Unbounded for no limit. The paper's default is 2.
	PreemptionBound int
	// MaxExecutions aborts exploration after this many executions (a safety
	// net, 0 = no limit).
	MaxExecutions int
	// ContinueOnFailure hands failed executions (panic, hang, goroutine
	// leak; see Outcome.FailureKind) to the visit callback instead of
	// aborting the exploration with their error. The subtree below a failed
	// execution's realized decision prefix is not explored further (the
	// execution never reached it), but all sibling schedules are.
	ContinueOnFailure bool
	// Checkpoint, when non-nil, receives a frontier snapshot after every
	// execution whose advance left unexplored work. Callers persist it (see
	// obsfile.AtomicWriteFile) to make a long exploration resumable; they
	// may throttle by ignoring calls.
	Checkpoint func(Checkpoint)
	// Resume, when non-nil, restarts the exploration from a previously
	// checkpointed frontier instead of the schedule-tree root: the first
	// execution replays the checkpointed branch path, and the depth-first
	// order continues exactly where the interrupted run left off. The
	// program must be the one the checkpoint was taken from.
	Resume *Checkpoint
	// Reduction selects the partial-order reduction strategy. ReductionSleep
	// prunes schedules that only commute independent steps of already
	// explored ones; the set of distinct histories visited — and therefore
	// every verdict derived from them — is identical to ReductionNone, while
	// the number of executions can drop by orders of magnitude. Pruning is a
	// deterministic function of the schedule tree, so it composes with the
	// parallel explorer, work stealing, and checkpoint/resume.
	Reduction Reduction
	// Telemetry, when non-nil, receives execution/decision/pruning counters
	// and the DFS-depth watermark. The explorer accumulates plain-int deltas
	// during an execution and flushes them with a few atomic adds once per
	// execution, so nothing telemetry-related runs inside Pick; a nil
	// collector costs one pointer test per execution. Counters are
	// observe-only — ExploreStats remains the deterministic source of truth.
	Telemetry *telemetry.Collector
}

// Checkpoint is a serializable snapshot of a depth-first exploration
// frontier: the branch index taken at every decision level for the next
// execution to run, plus the statistics accumulated so far. It is exactly
// the state needed to continue the exploration after a crash or kill.
type Checkpoint struct {
	// Path is the branch-index prefix of the next execution in the DFS
	// order (Pos of the next run, as the parallel explorer would call it).
	Path []int `json:"path"`
	// Executions and Decisions are the statistics accumulated before the
	// checkpoint; a resumed exploration continues counting from them.
	Executions int `json:"executions"`
	Decisions  int `json:"decisions"`
	// Pruned is the sleep-set skip count accumulated before the checkpoint
	// (only written when reduction is on).
	Pruned int `json:"pruned,omitempty"`
	// Explored records, for every decision level of Path, the branches the
	// interrupted run had already fully explored and retired at that level,
	// with the window footprints their first steps produced. Sleep sets are
	// otherwise a deterministic function of the branch path, but these
	// retired branches describe finished subtrees the resumed run never
	// revisits, so they must be carried along for the resumed DFS to prune —
	// and count — exactly like an uninterrupted one. Only written when
	// reduction is on.
	Explored [][]BranchRecord `json:"explored,omitempty"`
}

// ErrBudget is returned when exploration hits MaxExecutions before the
// schedule space was exhausted.
var ErrBudget = errors.New("sched: execution budget exhausted before exploration completed")

// ExploreStats summarizes an exploration.
type ExploreStats struct {
	Executions int
	Decisions  int
	// Pruned counts branches skipped by sleep-set reduction: decision
	// alternatives that were within the preemption budget but provably
	// redundant. It is deterministic for full explorations, regardless of
	// worker count.
	Pruned    int
	Truncated bool // true if MaxExecutions stopped exploration early
}

// choice is one decision point on the DFS stack.
type choice struct {
	enabled    []ThreadID // order: current thread first (if enabled), then ascending
	cur        ThreadID
	curEnabled bool
	next       int // index into enabled currently being explored
	budget     int // preemption budget remaining before this decision

	// Sleep-set reduction state (ReductionSleep only).
	//
	// sleep is fixed at node creation: threads whose next step is covered by
	// an earlier-explored subtree (inherited from the parent's sleep and
	// retired branches, minus entries woken by dependence on the parent's
	// executed window). explored accumulates this node's retired branches
	// that are eligible to put descendants to sleep. foot is the window
	// footprint of the branch currently at next, recorded by the first
	// execution through it and cleared when the branch is retired. exhausted
	// marks a node whose every affordable branch was asleep at creation: its
	// single forced continuation is provably redundant, so the node never
	// branches.
	sleep     []sleepEntry
	explored  []sleepEntry
	foot      *Footprint
	exhausted bool
}

func (c *choice) cost(i int) int {
	if c.curEnabled && c.enabled[i] != c.cur {
		return 1
	}
	return 0
}

// explorer drives depth-first stateless exploration. It implements
// Controller: during a run it replays the recorded prefix and extends the
// frontier with default (non-preemptive) choices.
type explorer struct {
	bound  int
	red    Reduction
	stack  []*choice
	depth  int
	budget int
	pruned int // sleep-set skips, see ExploreStats.Pruned
	// seed pins the branch index of every frontier level reached during the
	// first execution after a checkpoint resume; it is cleared afterwards.
	// seedExplored restores the retired-branch records of those levels.
	seed         []int
	seedExplored [][]BranchRecord

	// tel receives counter flushes once per execution (never inside Pick).
	// wakes counts sleep-set entries woken by a dependent window; lastPruned
	// and lastWakes remember the counts already flushed, so each flush adds
	// only the delta and totals stay commutative across parallel workers.
	tel        *telemetry.Collector
	wakes      int
	lastPruned int
	lastWakes  int
}

func (e *explorer) begin() {
	e.depth = 0
	e.budget = e.bound
}

func (e *explorer) allowed(c *choice, i int) bool {
	if e.bound == Unbounded {
		return true
	}
	return c.budget >= c.cost(i)
}

func (e *explorer) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	if e.depth < len(e.stack) {
		c := e.stack[e.depth]
		if !sameIDsOrdered(c.enabled, cur, curEnabled, enabled) || c.cur != cur || c.curEnabled != curEnabled {
			panic(fmt.Sprintf("sched: nondeterministic replay at decision %d: recorded (cur=%d enabled=%v), got (cur=%d enabled=%v)",
				e.depth, c.cur, c.enabled, cur, enabled))
		}
		e.budget -= c.cost(c.next)
		e.depth++
		return c.enabled[c.next]
	}
	ord := orderChoices(cur, curEnabled, enabled)
	c := &choice{enabled: ord, cur: cur, curEnabled: curEnabled, budget: e.budget}
	if e.red == ReductionSleep {
		c.sleep = e.childSleep()
	}
	if e.depth < len(e.seed) {
		// Checkpoint resume: the seed pins the branch (and restores the
		// retired branches) of every level the interrupted run had reached;
		// its pruning decisions were already taken — and counted — there.
		c.next = e.seed[e.depth]
		if c.next < 0 || c.next >= len(ord) {
			panic(fmt.Sprintf("sched: checkpoint does not match program: decision %d offers %d choices, resume path wants branch %d",
				e.depth, len(ord), c.next))
		}
		if e.depth < len(e.seedExplored) {
			for _, br := range e.seedExplored[e.depth] {
				c.explored = append(c.explored, sleepEntry{tid: br.Thread, foot: br.Foot.clone()})
			}
		}
		if e.red == ReductionSleep && c.next == 0 {
			// Re-detect a fully-slept node. The interrupted run counted every
			// affordable branch as pruned when it created this node and forced
			// the free continuation; without the flag the resumed backtracking
			// would retire the node and count the very same branches again.
			exhausted := true
			for i := range ord {
				if e.allowed(c, i) && !e.sleeps(c, i) {
					exhausted = false
					break
				}
			}
			c.exhausted = exhausted
		}
	} else if e.red == ReductionSleep {
		// Skip straight to the first affordable non-sleeping branch. If every
		// affordable branch is asleep the whole node is redundant; the
		// execution still has to finish, so take the free continuation
		// (branch 0 costs nothing) and never branch here.
		for c.next < len(ord) {
			if !e.allowed(c, c.next) {
				c.next++
				continue
			}
			if e.sleeps(c, c.next) {
				e.pruned++
				c.next++
				continue
			}
			break
		}
		if c.next >= len(ord) {
			c.next = 0
			c.exhausted = true
		}
	}
	e.stack = append(e.stack, c)
	e.budget -= c.cost(c.next)
	e.depth++
	return ord[c.next]
}

// sleeps reports whether branch i of c schedules a sleeping thread.
func (e *explorer) sleeps(c *choice, i int) bool {
	for _, s := range c.sleep {
		if s.tid == c.enabled[i] {
			return true
		}
	}
	return false
}

// childSleep computes the sleep set of the node about to be created from its
// parent (the deepest stack node): the parent's sleeping threads plus the
// threads of the parent's retired branches, minus the thread the parent is
// executing and minus every entry whose deferred step depends on the parent's
// executed window (a dependent step must be rescheduled — only reorderings of
// independent steps are redundant).
func (e *explorer) childSleep() []sleepEntry {
	if e.depth == 0 {
		return nil
	}
	p := e.stack[e.depth-1]
	w := p.enabled[p.next]
	var out []sleepEntry
	for _, src := range [2][]sleepEntry{p.sleep, p.explored} {
		for _, s := range src {
			if s.tid == w {
				continue
			}
			if s.foot.ConflictsWith(p.foot) {
				// The deferred step depends on the executed window: wake it.
				e.wakes++
				continue
			}
			out = append(out, s)
		}
	}
	return out
}

// recordOutcomeTelemetry publishes one finished execution's outcome counters:
// a handful of atomic adds, shared by the DFS, parallel, and sampling
// explorers so the three report failures identically.
func recordOutcomeTelemetry(c *telemetry.Collector, out *Outcome) {
	if c == nil {
		return
	}
	c.ExecutionsDone.Add(1)
	c.Decisions.Add(int64(out.Decisions))
	if out.Stuck {
		c.StuckExecutions.Add(1)
	}
	switch out.FailureKind() {
	case FailPanic:
		c.FailPanics.Add(1)
	case FailHung:
		c.WatchdogFires.Add(1)
		c.FailHangs.Add(1)
	case FailLeak:
		c.FailLeaks.Add(1)
	}
}

// flushTelemetry publishes one finished execution's counter deltas to the
// collector. It runs between executions — never inside Pick — and performs a
// handful of atomic adds; pruning/wake counts are flushed as deltas so the
// totals are commutative sums independent of worker count and visit order.
func (e *explorer) flushTelemetry(out *Outcome) {
	c := e.tel
	if c == nil {
		return
	}
	recordOutcomeTelemetry(c, out)
	c.ObserveDepth(len(e.stack))
	if d := e.pruned - e.lastPruned; d > 0 {
		c.SchedulesPruned.Add(int64(d))
		e.lastPruned = e.pruned
	}
	if d := e.wakes - e.lastWakes; d > 0 {
		c.SleepWakes.Add(int64(d))
		e.lastWakes = e.wakes
	}
}

// flushPruneTelemetry publishes pruning/wake deltas accumulated since the
// last flush (advance prunes branches after the final execution's flush).
func (e *explorer) flushPruneTelemetry() {
	c := e.tel
	if c == nil {
		return
	}
	if d := e.pruned - e.lastPruned; d > 0 {
		c.SchedulesPruned.Add(int64(d))
		e.lastPruned = e.pruned
	}
	if d := e.wakes - e.lastWakes; d > 0 {
		c.SleepWakes.Add(int64(d))
		e.lastWakes = e.wakes
	}
}

// retire closes out the branch currently at c.next: its subtree is fully
// explored. If the branch is eligible to put later siblings' descendants to
// sleep, it is recorded with its window footprint. Under preemption bounding
// only the current thread's free continuation (branch 0 with cur enabled) is
// eligible: moving that branch's step later in an equivalent schedule never
// costs an extra preemption, so the pruned schedule's representative is
// affordable wherever the pruned schedule was. Unbounded explorations have no
// budget to respect and use classic full sleep sets. See DESIGN.md.
func (e *explorer) retire(c *choice) {
	if e.red != ReductionSleep || c.exhausted {
		c.foot = nil
		return
	}
	if e.bound == Unbounded || (c.next == 0 && c.curEnabled) {
		c.explored = append(c.explored, sleepEntry{tid: c.enabled[c.next], foot: footOrGlobal(c.foot)})
	}
	c.foot = nil
}

// observeWindow receives the footprint of the window closed by the upcoming
// decision (or by the end of the execution); it belongs to the branch
// currently explored at the deepest already-visited level. The footprint is
// only recorded once per branch — replayed prefixes regenerate identical
// windows.
func (e *explorer) observeWindow(f *Footprint) {
	if e.depth == 0 || e.depth > len(e.stack) {
		return
	}
	c := e.stack[e.depth-1]
	if c.foot == nil {
		c.foot = f.clone()
	}
}

// poisonDeepest marks the deepest executed branch's window footprint as
// conflicting with everything. Called after a failed execution (panic, hang):
// the window the failure interrupted is incomplete, so nothing may sleep
// through it.
func (e *explorer) poisonDeepest() {
	if e.depth == 0 || e.depth > len(e.stack) {
		return
	}
	e.stack[e.depth-1].foot = globalFootprint()
}

// advance backtracks to the deepest decision with an unexplored, affordable
// alternative. It reports false when the schedule space is exhausted.
func (e *explorer) advance() bool {
	return e.advanceAbove(0)
}

// advanceAbove is advance restricted to decision levels >= floor: levels
// below floor are pinned and never altered. The parallel explorer uses a
// positive floor to confine a worker to its shard's schedule prefix; the
// sequential explorer uses floor 0.
func (e *explorer) advanceAbove(floor int) bool {
	for len(e.stack) > floor {
		c := e.stack[len(e.stack)-1]
		if c.exhausted {
			// A fully-slept node never branches; its forced continuation was
			// already accounted at creation.
			e.stack = e.stack[:len(e.stack)-1]
			continue
		}
		e.retire(c)
		c.next++
		for c.next < len(c.enabled) {
			if !e.allowed(c, c.next) {
				c.next++
				continue
			}
			if e.red == ReductionSleep && e.sleeps(c, c.next) {
				e.pruned++
				c.next++
				continue
			}
			break
		}
		if c.next < len(c.enabled) {
			return true
		}
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}

// orderChoices puts the current thread first (the free, non-preemptive
// continuation) followed by the remaining enabled threads in ascending order.
// The ordering determines DFS default behavior: run a thread as long as it is
// enabled, which makes the zero-preemption schedule the first one explored.
func orderChoices(cur ThreadID, curEnabled bool, enabled []ThreadID) []ThreadID {
	ord := make([]ThreadID, 0, len(enabled))
	if curEnabled {
		ord = append(ord, cur)
	}
	for _, id := range enabled {
		if curEnabled && id == cur {
			continue
		}
		ord = append(ord, id)
	}
	return ord
}

// sameIDsOrdered verifies that ord is exactly what orderChoices would build
// from (cur, curEnabled, enabled) — the replay-consistency check of Pick —
// without allocating. ord came from orderChoices at record time, so an
// element-wise walk (cur first if enabled, then the remaining IDs in
// ascending order) is equivalent to the set comparison it replaces, and this
// runs once per replayed decision on the exploration hot path.
func sameIDsOrdered(ord []ThreadID, cur ThreadID, curEnabled bool, enabled []ThreadID) bool {
	if len(ord) != len(enabled) {
		return false
	}
	i := 0
	if curEnabled {
		if len(ord) == 0 || ord[0] != cur {
			return false
		}
		i = 1
	}
	for _, id := range enabled {
		if curEnabled && id == cur {
			continue
		}
		if i >= len(ord) || ord[i] != id {
			return false
		}
		i++
	}
	return i == len(ord)
}

// Explore enumerates the schedules of prog and calls visit for every
// execution outcome. If visit returns false, exploration stops early (used
// to stop at the first linearizability violation). The returned stats count
// executions and decisions; err is non-nil if an execution failed (a panic,
// watchdog hang, or goroutine leak — unless cfg.ContinueOnFailure hands
// failed outcomes to visit instead) or the execution budget ran out.
func Explore(cfg ExploreConfig, prog Program, visit func(*Outcome) bool) (ExploreStats, error) {
	if cfg.Reduction == ReductionSleep {
		cfg.Config.TrackFootprints = true
	}
	e := &explorer{bound: cfg.PreemptionBound, red: cfg.Reduction, tel: cfg.Telemetry}
	defer e.flushPruneTelemetry()
	var stats ExploreStats
	basePruned := 0
	if cfg.Resume != nil {
		e.seed = cfg.Resume.Path
		e.seedExplored = cfg.Resume.Explored
		stats.Executions = cfg.Resume.Executions
		stats.Decisions = cfg.Resume.Decisions
		basePruned = cfg.Resume.Pruned
	}
	for {
		stats.Pruned = basePruned + e.pruned
		if cfg.MaxExecutions > 0 && stats.Executions >= cfg.MaxExecutions {
			stats.Truncated = true
			return stats, ErrBudget
		}
		e.begin()
		if c := cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		s := NewScheduler(cfg.Config, e)
		out := s.Run(prog)
		e.seed, e.seedExplored = nil, nil
		e.flushTelemetry(out)
		stats.Executions++
		stats.Decisions += out.Decisions
		stats.Pruned = basePruned + e.pruned
		if k := out.FailureKind(); k != FailNone {
			if e.red == ReductionSleep {
				// The failure interrupted the deepest window mid-flight; its
				// recorded footprint under-approximates the step, so poison it.
				e.poisonDeepest()
			}
			if !cfg.ContinueOnFailure {
				return stats, out.FailureError()
			}
		}
		// Feed the next execution's buffer sizes from this one: steady-state
		// executions of one exploration have near-identical shapes.
		cfg.Config.Prealloc = CapHint{
			Events:   len(out.Events),
			Schedule: len(out.Schedule),
			Trace:    len(out.Trace),
		}
		if !visit(out) {
			return stats, nil
		}
		adv := e.advance()
		stats.Pruned = basePruned + e.pruned
		if !adv {
			return stats, nil
		}
		if cfg.Checkpoint != nil {
			cp := Checkpoint{
				Path:       []int(pathOf(e.stack)),
				Executions: stats.Executions,
				Decisions:  stats.Decisions,
			}
			if e.red == ReductionSleep {
				cp.Pruned = stats.Pruned
				cp.Explored = exploredOf(e.stack)
			}
			cfg.Checkpoint(cp)
		}
	}
}

// exploredOf serializes the retired-branch records of every stack level for a
// checkpoint.
func exploredOf(stack []*choice) [][]BranchRecord {
	out := make([][]BranchRecord, len(stack))
	for i, c := range stack {
		for _, s := range c.explored {
			out[i] = append(out[i], BranchRecord{Thread: s.tid, Foot: *footOrGlobal(s.foot)})
		}
	}
	return out
}

// ScheduleDivergenceError reports that a recorded schedule could not be
// replayed faithfully: at some decision the schedule named a thread that was
// not among the enabled threads. This happens when the program has changed
// since the schedule was recorded (or the schedule belongs to a different
// program), so the replayed outcome would not reproduce the recorded
// execution.
type ScheduleDivergenceError struct {
	// Decision is the index into the schedule at which replay diverged.
	Decision int
	// Want is the recorded thread that was not enabled.
	Want ThreadID
	// Enabled is the set of threads that were actually enabled.
	Enabled []ThreadID
}

func (e *ScheduleDivergenceError) Error() string {
	return fmt.Sprintf("sched: schedule diverged at decision %d: recorded thread %d is not enabled (enabled: %v)",
		e.Decision, e.Want, e.Enabled)
}

// ReplaySchedule re-executes prog following a fixed sequence of decisions
// (as produced by RecordingController); it is used to reproduce a reported
// violation deterministically. If the schedule names a thread that is not
// enabled at its decision — the program no longer matches the recording —
// the execution completes on a fallback schedule and a
// *ScheduleDivergenceError describing the first divergence is returned
// alongside the (untrustworthy) outcome.
func ReplaySchedule(cfg Config, prog Program, schedule []ThreadID) (*Outcome, error) {
	r := &replayer{schedule: schedule}
	s := NewScheduler(cfg, r)
	out := s.Run(prog)
	if r.diverged != nil {
		return out, r.diverged
	}
	return out, nil
}

type replayer struct {
	schedule []ThreadID
	pos      int
	diverged *ScheduleDivergenceError
}

func (r *replayer) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	if r.pos < len(r.schedule) {
		want := r.schedule[r.pos]
		r.pos++
		for _, id := range enabled {
			if id == want {
				return id
			}
		}
		// The recorded thread is disabled: the program changed since the
		// schedule was recorded. Remember the first divergence and fall
		// through to the fallback so the execution still terminates.
		if r.diverged == nil {
			r.diverged = &ScheduleDivergenceError{
				Decision: r.pos - 1,
				Want:     want,
				Enabled:  append([]ThreadID(nil), enabled...),
			}
		}
	}
	// Past the recorded schedule or after a divergence: fall back to the
	// first enabled thread.
	return orderChoices(cur, curEnabled, enabled)[0]
}

// RecordingController wraps another controller and records the decisions it
// takes, so a failing execution can be replayed with ReplaySchedule.
type RecordingController struct {
	Inner    Controller
	Schedule []ThreadID
}

// Pick implements Controller.
func (rc *RecordingController) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	id := rc.Inner.Pick(cur, curEnabled, enabled)
	rc.Schedule = append(rc.Schedule, id)
	return id
}
