package sched

import (
	"errors"
	"fmt"
)

// Unbounded disables preemption bounding (used for the serial phase, which
// the paper runs without any bounding to keep the completeness theorem).
const Unbounded = -1

// ExploreConfig parameterizes an exhaustive exploration.
type ExploreConfig struct {
	Config
	// PreemptionBound limits the number of preemptive context switches per
	// execution (a switch taken while the current thread is still enabled).
	// Use Unbounded for no limit. The paper's default is 2.
	PreemptionBound int
	// MaxExecutions aborts exploration after this many executions (a safety
	// net, 0 = no limit).
	MaxExecutions int
	// ContinueOnFailure hands failed executions (panic, hang, goroutine
	// leak; see Outcome.FailureKind) to the visit callback instead of
	// aborting the exploration with their error. The subtree below a failed
	// execution's realized decision prefix is not explored further (the
	// execution never reached it), but all sibling schedules are.
	ContinueOnFailure bool
	// Checkpoint, when non-nil, receives a frontier snapshot after every
	// execution whose advance left unexplored work. Callers persist it (see
	// obsfile.AtomicWriteFile) to make a long exploration resumable; they
	// may throttle by ignoring calls.
	Checkpoint func(Checkpoint)
	// Resume, when non-nil, restarts the exploration from a previously
	// checkpointed frontier instead of the schedule-tree root: the first
	// execution replays the checkpointed branch path, and the depth-first
	// order continues exactly where the interrupted run left off. The
	// program must be the one the checkpoint was taken from.
	Resume *Checkpoint
}

// Checkpoint is a serializable snapshot of a depth-first exploration
// frontier: the branch index taken at every decision level for the next
// execution to run, plus the statistics accumulated so far. It is exactly
// the state needed to continue the exploration after a crash or kill.
type Checkpoint struct {
	// Path is the branch-index prefix of the next execution in the DFS
	// order (Pos of the next run, as the parallel explorer would call it).
	Path []int `json:"path"`
	// Executions and Decisions are the statistics accumulated before the
	// checkpoint; a resumed exploration continues counting from them.
	Executions int `json:"executions"`
	Decisions  int `json:"decisions"`
}

// ErrBudget is returned when exploration hits MaxExecutions before the
// schedule space was exhausted.
var ErrBudget = errors.New("sched: execution budget exhausted before exploration completed")

// ExploreStats summarizes an exploration.
type ExploreStats struct {
	Executions int
	Decisions  int
	Truncated  bool // true if MaxExecutions stopped exploration early
}

// choice is one decision point on the DFS stack.
type choice struct {
	enabled    []ThreadID // order: current thread first (if enabled), then ascending
	cur        ThreadID
	curEnabled bool
	next       int // index into enabled currently being explored
	budget     int // preemption budget remaining before this decision
}

func (c *choice) cost(i int) int {
	if c.curEnabled && c.enabled[i] != c.cur {
		return 1
	}
	return 0
}

// explorer drives depth-first stateless exploration. It implements
// Controller: during a run it replays the recorded prefix and extends the
// frontier with default (non-preemptive) choices.
type explorer struct {
	bound  int
	stack  []*choice
	depth  int
	budget int
	// seed pins the branch index of every frontier level reached during the
	// first execution after a checkpoint resume; it is cleared afterwards.
	seed []int
}

func (e *explorer) begin() {
	e.depth = 0
	e.budget = e.bound
}

func (e *explorer) allowed(c *choice, i int) bool {
	if e.bound == Unbounded {
		return true
	}
	return c.budget >= c.cost(i)
}

func (e *explorer) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	if e.depth < len(e.stack) {
		c := e.stack[e.depth]
		if !sameIDs(c.enabled, enabled) || c.cur != cur || c.curEnabled != curEnabled {
			panic(fmt.Sprintf("sched: nondeterministic replay at decision %d: recorded (cur=%d enabled=%v), got (cur=%d enabled=%v)",
				e.depth, c.cur, c.enabled, cur, enabled))
		}
		e.budget -= c.cost(c.next)
		e.depth++
		return c.enabled[c.next]
	}
	ord := orderChoices(cur, curEnabled, enabled)
	next := 0
	if e.depth < len(e.seed) {
		next = e.seed[e.depth]
		if next < 0 || next >= len(ord) {
			panic(fmt.Sprintf("sched: checkpoint does not match program: decision %d offers %d choices, resume path wants branch %d",
				e.depth, len(ord), next))
		}
	}
	c := &choice{enabled: ord, cur: cur, curEnabled: curEnabled, next: next, budget: e.budget}
	e.stack = append(e.stack, c)
	e.budget -= c.cost(next)
	e.depth++
	return ord[next]
}

// advance backtracks to the deepest decision with an unexplored, affordable
// alternative. It reports false when the schedule space is exhausted.
func (e *explorer) advance() bool {
	return e.advanceAbove(0)
}

// advanceAbove is advance restricted to decision levels >= floor: levels
// below floor are pinned and never altered. The parallel explorer uses a
// positive floor to confine a worker to its shard's schedule prefix; the
// sequential explorer uses floor 0.
func (e *explorer) advanceAbove(floor int) bool {
	for len(e.stack) > floor {
		c := e.stack[len(e.stack)-1]
		c.next++
		for c.next < len(c.enabled) && !e.allowed(c, c.next) {
			c.next++
		}
		if c.next < len(c.enabled) {
			return true
		}
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}

// orderChoices puts the current thread first (the free, non-preemptive
// continuation) followed by the remaining enabled threads in ascending order.
// The ordering determines DFS default behavior: run a thread as long as it is
// enabled, which makes the zero-preemption schedule the first one explored.
func orderChoices(cur ThreadID, curEnabled bool, enabled []ThreadID) []ThreadID {
	ord := make([]ThreadID, 0, len(enabled))
	if curEnabled {
		ord = append(ord, cur)
	}
	for _, id := range enabled {
		if curEnabled && id == cur {
			continue
		}
		ord = append(ord, id)
	}
	return ord
}

func sameIDs(a []ThreadID, b []ThreadID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[ThreadID]bool, len(a))
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if !seen[id] {
			return false
		}
	}
	return true
}

// Explore enumerates the schedules of prog and calls visit for every
// execution outcome. If visit returns false, exploration stops early (used
// to stop at the first linearizability violation). The returned stats count
// executions and decisions; err is non-nil if an execution failed (a panic,
// watchdog hang, or goroutine leak — unless cfg.ContinueOnFailure hands
// failed outcomes to visit instead) or the execution budget ran out.
func Explore(cfg ExploreConfig, prog Program, visit func(*Outcome) bool) (ExploreStats, error) {
	e := &explorer{bound: cfg.PreemptionBound}
	var stats ExploreStats
	if cfg.Resume != nil {
		e.seed = cfg.Resume.Path
		stats.Executions = cfg.Resume.Executions
		stats.Decisions = cfg.Resume.Decisions
	}
	for {
		if cfg.MaxExecutions > 0 && stats.Executions >= cfg.MaxExecutions {
			stats.Truncated = true
			return stats, ErrBudget
		}
		e.begin()
		s := NewScheduler(cfg.Config, e)
		out := s.Run(prog)
		e.seed = nil
		stats.Executions++
		stats.Decisions += out.Decisions
		if k := out.FailureKind(); k != FailNone && !cfg.ContinueOnFailure {
			return stats, out.FailureError()
		}
		if !visit(out) {
			return stats, nil
		}
		if !e.advance() {
			return stats, nil
		}
		if cfg.Checkpoint != nil {
			cfg.Checkpoint(Checkpoint{
				Path:       []int(pathOf(e.stack)),
				Executions: stats.Executions,
				Decisions:  stats.Decisions,
			})
		}
	}
}

// ScheduleDivergenceError reports that a recorded schedule could not be
// replayed faithfully: at some decision the schedule named a thread that was
// not among the enabled threads. This happens when the program has changed
// since the schedule was recorded (or the schedule belongs to a different
// program), so the replayed outcome would not reproduce the recorded
// execution.
type ScheduleDivergenceError struct {
	// Decision is the index into the schedule at which replay diverged.
	Decision int
	// Want is the recorded thread that was not enabled.
	Want ThreadID
	// Enabled is the set of threads that were actually enabled.
	Enabled []ThreadID
}

func (e *ScheduleDivergenceError) Error() string {
	return fmt.Sprintf("sched: schedule diverged at decision %d: recorded thread %d is not enabled (enabled: %v)",
		e.Decision, e.Want, e.Enabled)
}

// ReplaySchedule re-executes prog following a fixed sequence of decisions
// (as produced by RecordingController); it is used to reproduce a reported
// violation deterministically. If the schedule names a thread that is not
// enabled at its decision — the program no longer matches the recording —
// the execution completes on a fallback schedule and a
// *ScheduleDivergenceError describing the first divergence is returned
// alongside the (untrustworthy) outcome.
func ReplaySchedule(cfg Config, prog Program, schedule []ThreadID) (*Outcome, error) {
	r := &replayer{schedule: schedule}
	s := NewScheduler(cfg, r)
	out := s.Run(prog)
	if r.diverged != nil {
		return out, r.diverged
	}
	return out, nil
}

type replayer struct {
	schedule []ThreadID
	pos      int
	diverged *ScheduleDivergenceError
}

func (r *replayer) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	if r.pos < len(r.schedule) {
		want := r.schedule[r.pos]
		r.pos++
		for _, id := range enabled {
			if id == want {
				return id
			}
		}
		// The recorded thread is disabled: the program changed since the
		// schedule was recorded. Remember the first divergence and fall
		// through to the fallback so the execution still terminates.
		if r.diverged == nil {
			r.diverged = &ScheduleDivergenceError{
				Decision: r.pos - 1,
				Want:     want,
				Enabled:  append([]ThreadID(nil), enabled...),
			}
		}
	}
	// Past the recorded schedule or after a divergence: fall back to the
	// first enabled thread.
	return orderChoices(cur, curEnabled, enabled)[0]
}

// RecordingController wraps another controller and records the decisions it
// takes, so a failing execution can be replayed with ReplaySchedule.
type RecordingController struct {
	Inner    Controller
	Schedule []ThreadID
}

// Pick implements Controller.
func (rc *RecordingController) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	id := rc.Inner.Pick(cur, curEnabled, enabled)
	rc.Schedule = append(rc.Schedule, id)
	return id
}
