package sched_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"lineup/internal/sched"
)

// runUnits splits prog and explores every unit in sequence, returning the
// concatenated visit keys, the summed per-unit stats, and the split stats.
func runUnits(t *testing.T, cfg sched.ExploreConfig, mk func() sched.Program, depth int) ([]string, sched.ExploreStats, sched.SplitStats) {
	t.Helper()
	units, split, err := sched.SplitUnits(cfg, mk(), depth)
	if err != nil {
		t.Fatalf("SplitUnits: %v", err)
	}
	if split.Units != len(units) || split.DiscoveryExecutions != len(units) {
		t.Fatalf("split stats inconsistent: %+v for %d units", split, len(units))
	}
	var keys []string
	var sum sched.ExploreStats
	for _, u := range units {
		stats, err := sched.ExploreUnit(cfg, mk(), u, func(o *sched.Outcome, p sched.Pos) bool {
			keys = append(keys, o.FailureKind().String()+"|"+outcomeKey(o))
			return true
		})
		if err != nil {
			t.Fatalf("ExploreUnit(%d): %v", u.Seq, err)
		}
		sum.Executions += stats.Executions
		sum.Decisions += stats.Decisions
		sum.Pruned += stats.Pruned
	}
	return keys, sum, split
}

// TestUnitsReproduceSequentialExploration is the partition lemma everything
// in internal/dist rests on: splitting the tree into work units and exploring
// each unit independently must reproduce the sequential explorer's visit
// sequence in order, and the summed per-unit statistics (plus the generator's
// pruned share) must equal the sequential statistics exactly — across
// programs, preemption bounds, split depths, and reduction on/off.
func TestUnitsReproduceSequentialExploration(t *testing.T) {
	sched.RequireNoLeaks(t)
	progs := []struct {
		name   string
		mk     func() sched.Program
		bounds []int
	}{
		{"2x2", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
		}, []int{0, 1, 2, sched.Unbounded}},
		{"3x1", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(1, "a"), opThread(1, "b"), opThread(1, "c")}}
		}, []int{0, 1, 2}},
		{"uneven", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){opThread(1, "a"), opThread(3, "b")}}
		}, []int{0, 2, sched.Unbounded}},
		{"mixed-mem", func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){
				mixedThread("a", 0, 2), mixedThread("b", 1, 2), mixedThread("c", 2, 1),
			}}
		}, []int{0, 1, 2}},
	}
	for _, p := range progs {
		for _, bound := range p.bounds {
			for _, red := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
				cfg := sched.ExploreConfig{PreemptionBound: bound, Reduction: red}
				var want []string
				wantStats, err := sched.Explore(cfg, p.mk(), func(o *sched.Outcome) bool {
					want = append(want, o.FailureKind().String()+"|"+outcomeKey(o))
					return true
				})
				if err != nil {
					t.Fatalf("%s bound=%d red=%v: sequential explore: %v", p.name, bound, red, err)
				}
				for _, depth := range []int{1, 2, 3} {
					tag := fmt.Sprintf("%s bound=%d red=%v depth=%d", p.name, bound, red, depth)
					got, sum, split := runUnits(t, cfg, p.mk, depth)
					if len(got) != len(want) {
						t.Fatalf("%s: units visited %d executions, sequential %d", tag, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: visit %d differs:\n got %q\nwant %q", tag, i, got[i], want[i])
						}
					}
					if sum.Executions != wantStats.Executions || sum.Decisions != wantStats.Decisions {
						t.Fatalf("%s: summed stats %+v, sequential %+v", tag, sum, wantStats)
					}
					if merged := sum.Pruned + split.Pruned; merged != wantStats.Pruned {
						t.Fatalf("%s: merged pruned %d (workers %d + split %d), sequential %d",
							tag, merged, sum.Pruned, split.Pruned, wantStats.Pruned)
					}
				}
			}
		}
	}
}

// TestExploreUnitIdempotent replays the same unit several times: the visit
// sequence and statistics must be byte-identical on every replay. This is the
// property that makes at-least-once lease reassignment safe — a unit run
// twice (worker killed after finishing, lease reassigned) merges the same
// report.
func TestExploreUnitIdempotent(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){
			mixedThread("a", 0, 2), mixedThread("b", 1, 2),
		}}
	}
	cfg := sched.ExploreConfig{PreemptionBound: 2, Reduction: sched.ReductionSleep}
	units, _, err := sched.SplitUnits(cfg, mk(), 2)
	if err != nil {
		t.Fatalf("SplitUnits: %v", err)
	}
	for _, u := range units {
		run := func() ([]string, sched.ExploreStats) {
			var keys []string
			stats, err := sched.ExploreUnit(cfg, mk(), u, func(o *sched.Outcome, p sched.Pos) bool {
				keys = append(keys, outcomeKey(o)+fmt.Sprint([]int(p)))
				return true
			})
			if err != nil {
				t.Fatalf("ExploreUnit(%d): %v", u.Seq, err)
			}
			return keys, stats
		}
		k1, s1 := run()
		k2, s2 := run()
		if len(k1) != len(k2) || s1 != s2 {
			t.Fatalf("unit %d not idempotent: %d/%+v then %d/%+v", u.Seq, len(k1), s1, len(k2), s2)
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				t.Fatalf("unit %d replay diverged at visit %d: %q vs %q", u.Seq, i, k1[i], k2[i])
			}
		}
	}
}

// TestUnitsWithFailures drives the split through a program where many
// schedules panic: with ContinueOnFailure the concatenated unit visits (with
// failure kinds) must match the sequential run, including the poisoned-window
// bookkeeping that failures force on the reduction.
func TestUnitsWithFailures(t *testing.T) {
	sched.RequireNoLeaks(t)
	for _, red := range []sched.Reduction{sched.ReductionNone, sched.ReductionSleep} {
		cfg := sched.ExploreConfig{
			PreemptionBound:   sched.Unbounded,
			ContinueOnFailure: true,
			Reduction:         red,
		}
		var want []string
		wantStats, err := sched.Explore(cfg, overlapPanicProgram(), func(o *sched.Outcome) bool {
			want = append(want, o.FailureKind().String()+"|"+outcomeKey(o))
			return true
		})
		if err != nil {
			t.Fatalf("red=%v: sequential explore: %v", red, err)
		}
		hasFailure := false
		for _, k := range want {
			if k[:4] != "none" {
				hasFailure = true
			}
		}
		if !hasFailure {
			t.Fatalf("red=%v: fixture produced no failures; test is vacuous", red)
		}
		for _, depth := range []int{1, 2} {
			got, sum, split := runUnits(t, cfg, overlapPanicProgram, depth)
			tag := fmt.Sprintf("red=%v depth=%d", red, depth)
			if len(got) != len(want) {
				t.Fatalf("%s: units visited %d executions, sequential %d", tag, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: visit %d differs:\n got %q\nwant %q", tag, i, got[i], want[i])
				}
			}
			if sum.Executions != wantStats.Executions || sum.Decisions != wantStats.Decisions ||
				sum.Pruned+split.Pruned != wantStats.Pruned {
				t.Fatalf("%s: merged stats %+v+%d, sequential %+v", tag, sum, split.Pruned, wantStats)
			}
		}
	}
}

// TestWorkUnitJSONRoundTrip serializes every unit through JSON — the form
// internal/dist writes to unit files — and verifies the round-tripped unit
// explores identically to the original.
func TestWorkUnitJSONRoundTrip(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){
			mixedThread("a", 0, 2), mixedThread("b", 1, 2),
		}}
	}
	cfg := sched.ExploreConfig{PreemptionBound: 2, Reduction: sched.ReductionSleep}
	units, _, err := sched.SplitUnits(cfg, mk(), 2)
	if err != nil {
		t.Fatalf("SplitUnits: %v", err)
	}
	explore := func(u sched.WorkUnit) ([]string, sched.ExploreStats) {
		var keys []string
		stats, err := sched.ExploreUnit(cfg, mk(), u, func(o *sched.Outcome, p sched.Pos) bool {
			keys = append(keys, outcomeKey(o))
			return true
		})
		if err != nil {
			t.Fatalf("ExploreUnit: %v", err)
		}
		return keys, stats
	}
	for _, u := range units {
		b, err := json.Marshal(u)
		if err != nil {
			t.Fatalf("marshal unit %d: %v", u.Seq, err)
		}
		var back sched.WorkUnit
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal unit %d: %v", u.Seq, err)
		}
		k1, s1 := explore(u)
		k2, s2 := explore(back)
		if len(k1) != len(k2) || s1 != s2 {
			t.Fatalf("unit %d round trip changed exploration: %d/%+v vs %d/%+v", u.Seq, len(k1), s1, len(k2), s2)
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				t.Fatalf("unit %d round trip diverged at visit %d", u.Seq, i)
			}
		}
	}
}

// TestExploreUnitBudget confines a unit to fewer executions than its subtree
// holds: it must stop with ErrBudget and the Truncated flag, like Explore.
func TestExploreUnitBudget(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	}
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded}
	units, _, err := sched.SplitUnits(cfg, mk(), 1)
	if err != nil {
		t.Fatalf("SplitUnits: %v", err)
	}
	// Find a unit with more than one execution.
	var big *sched.WorkUnit
	for i, u := range units {
		n := 0
		if _, err := sched.ExploreUnit(cfg, mk(), u, func(*sched.Outcome, sched.Pos) bool { n++; return true }); err != nil {
			t.Fatalf("ExploreUnit: %v", err)
		}
		if n > 1 {
			big = &units[i]
			break
		}
	}
	if big == nil {
		t.Fatal("no unit with more than one execution; fixture too small")
	}
	capped := cfg
	capped.MaxExecutions = 1
	stats, err := sched.ExploreUnit(capped, mk(), *big, func(*sched.Outcome, sched.Pos) bool { return true })
	if err != sched.ErrBudget || !stats.Truncated || stats.Executions != 1 {
		t.Fatalf("capped unit: stats=%+v err=%v, want 1 truncated execution with ErrBudget", stats, err)
	}
}
