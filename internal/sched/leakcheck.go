package sched

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB that RequireNoLeaks needs; it is an
// interface so the helper does not drag the testing package into non-test
// builds of this package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// RequireNoLeaks arranges for the test to fail if it leaks goroutines: it
// snapshots the process goroutine count when called and registers a cleanup
// that, at test end, waits briefly for the count to settle back and reports
// an error if it does not. Call it first in any test that runs executions,
// so that every scheduler kill or abandonment path is checked to unwind its
// thread goroutines.
//
// The check is inherently process-global, so tests using it must not run in
// parallel with tests that intentionally leave goroutines behind.
func RequireNoLeaks(tb TB) {
	tb.Helper()
	base := runtime.NumGoroutine()
	tb.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				tb.Errorf("sched: test leaked goroutines: %d before, %d after", base, n)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}
