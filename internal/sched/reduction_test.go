package sched_test

import (
	"fmt"
	"testing"

	"lineup/internal/sched"
)

// dataThread builds a thread body of n instrumented atomic writes to one
// shared location, with no operation events — the pure data-step shape where
// footprint-based independence is decidable per location.
func dataThread(loc, n int) func(t *sched.Thread) {
	return func(t *sched.Thread) {
		for i := 0; i < n; i++ {
			t.Point(sched.PointAtomic)
			t.Record(sched.MemWrite, loc, "x")
		}
	}
}

// mixedThread wraps n private data steps in one recorded operation: the
// call/return events order globally (operation boundaries never commute),
// the data steps only against accesses of the same location.
func mixedThread(name string, loc, n int) func(t *sched.Thread) {
	return func(t *sched.Thread) {
		t.OpStart(name)
		for i := 0; i < n; i++ {
			t.Point(sched.PointAtomic)
			t.Record(sched.MemWrite, loc, name)
		}
		t.OpEnd(name, "ok")
	}
}

func TestParseReduction(t *testing.T) {
	for spec, want := range map[string]sched.Reduction{
		"":      sched.ReductionNone,
		"none":  sched.ReductionNone,
		"sleep": sched.ReductionSleep,
	} {
		got, err := sched.ParseReduction(spec)
		if err != nil || got != want {
			t.Errorf("ParseReduction(%q) = %v, %v; want %v", spec, got, err, want)
		}
		if s := want.String(); spec != "" && s != spec {
			t.Errorf("%v.String() = %q, want %q", want, s, spec)
		}
	}
	if _, err := sched.ParseReduction("bogus"); err == nil {
		t.Error("ParseReduction accepted a bogus strategy")
	}
}

func TestFootprintConflicts(t *testing.T) {
	fp := func(acc ...sched.LocAccess) *sched.Footprint { return &sched.Footprint{Acc: acc} }
	r0 := sched.LocAccess{Loc: 0}
	w0 := sched.LocAccess{Loc: 0, Write: true}
	w1 := sched.LocAccess{Loc: 1, Write: true}
	cases := []struct {
		name string
		a, b *sched.Footprint
		want bool
	}{
		{"nil conflicts", nil, fp(), true},
		{"global poisons", &sched.Footprint{Global: true}, fp(), true},
		{"both events", &sched.Footprint{Event: true}, &sched.Footprint{Event: true}, true},
		{"one event only", &sched.Footprint{Event: true}, fp(w0), false},
		{"read read same loc", fp(r0), fp(r0), false},
		{"read write same loc", fp(r0), fp(w0), true},
		{"write write same loc", fp(w0), fp(w0), true},
		{"disjoint locs", fp(w0), fp(w1), false},
		{"empty empty", fp(), fp(), false},
	}
	for _, c := range cases {
		if got := c.a.ConflictsWith(c.b); got != c.want {
			t.Errorf("%s: ConflictsWith = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.ConflictsWith(c.a); got != c.want {
			t.Errorf("%s (flipped): ConflictsWith = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSleepSetPrunesIndependentSteps explores two threads whose steps touch
// disjoint locations: every interleaving is Mazurkiewicz-equivalent, so
// sleep sets must collapse the unbounded schedule space, and must do so
// deterministically.
func TestSleepSetPrunesIndependentSteps(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){dataThread(0, 2), dataThread(1, 2)}}
	}
	full, fullStats := exploreAll(t, sched.ExploreConfig{PreemptionBound: sched.Unbounded}, prog())
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded, Reduction: sched.ReductionSleep}
	reduced, stats := exploreAll(t, cfg, prog())
	if len(reduced) >= len(full) {
		t.Fatalf("reduction did not shrink the schedule space: %d vs %d", len(reduced), len(full))
	}
	if stats.Pruned == 0 {
		t.Fatal("reduction reports no pruned branches")
	}
	if fullStats.Pruned != 0 {
		t.Fatalf("unreduced exploration reports %d pruned branches", fullStats.Pruned)
	}
	again, statsAgain := exploreAll(t, cfg, prog())
	if len(again) != len(reduced) || statsAgain != stats {
		t.Fatalf("reduced exploration is not deterministic: %+v then %+v", stats, statsAgain)
	}
}

// TestSleepSetRespectsConflicts compares the same program shape with
// conflicting vs disjoint data steps: when both threads write the same
// location their data steps never commute, so the reduced exploration must
// keep strictly more schedules than the disjoint-location variant (where
// only window order varies). The empty entry/exit windows of each thread
// still commute in both variants, so some pruning is expected even under
// conflicts — exactness of what remains is TestSleepSetHistoryEquivalence's
// job.
func TestSleepSetRespectsConflicts(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func(locB int) func() sched.Program {
		return func() sched.Program {
			return sched.Program{Threads: []func(*sched.Thread){dataThread(0, 2), dataThread(locB, 2)}}
		}
	}
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded, Reduction: sched.ReductionSleep}
	conflicting, _ := exploreAll(t, cfg, mk(0)())
	disjoint, _ := exploreAll(t, cfg, mk(1)())
	if len(conflicting) <= len(disjoint) {
		t.Fatalf("conflicting writes explored %d schedules, disjoint %d; dependence is being ignored",
			len(conflicting), len(disjoint))
	}
	full, _ := exploreAll(t, sched.ExploreConfig{PreemptionBound: sched.Unbounded}, mk(0)())
	if len(conflicting) > len(full) {
		t.Fatalf("reduced exploration ran more executions (%d) than full (%d)", len(conflicting), len(full))
	}
}

// TestSleepSetHistoryEquivalence is the exactness property at the scheduler
// level: with operations recording history events and private data steps in
// between, the reduced exploration must visit exactly the set of distinct
// histories the full one visits — under the preemption bound and unbounded.
func TestSleepSetHistoryEquivalence(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){
			mixedThread("a", 0, 2), mixedThread("b", 1, 2),
		}}
	}
	for _, bound := range []int{0, 1, 2, sched.Unbounded} {
		full, _ := exploreAll(t, sched.ExploreConfig{PreemptionBound: bound}, prog())
		reduced, stats := exploreAll(t, sched.ExploreConfig{
			PreemptionBound: bound, Reduction: sched.ReductionSleep,
		}, prog())
		if len(reduced) > len(full) {
			t.Fatalf("bound=%d: reduced exploration ran more executions (%d) than full (%d)",
				bound, len(reduced), len(full))
		}
		want, got := map[string]bool{}, map[string]bool{}
		for _, o := range full {
			want[outcomeKey(o)] = true
		}
		for _, o := range reduced {
			got[outcomeKey(o)] = true
		}
		if len(want) != len(got) {
			t.Fatalf("bound=%d: distinct histories differ: full %d, reduced %d (pruned %d)",
				bound, len(want), len(got), stats.Pruned)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("bound=%d: reduction lost history %q", bound, k)
			}
		}
	}
}

// TestReductionCheckpointResume interrupts a reduced exploration at several
// cut points and resumes it: the concatenated visit sequence and the final
// statistics — including the pruned count — must match an uninterrupted
// reduced run. This is what Checkpoint.Explored exists for: the retired
// branches' footprints cannot be recomputed from the resume path alone.
func TestReductionCheckpointResume(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){
			mixedThread("a", 0, 2), mixedThread("b", 1, 2),
		}}
	}
	base := sched.ExploreConfig{PreemptionBound: 2, Reduction: sched.ReductionSleep}
	var full []string
	fullStats, err := sched.Explore(base, prog(), func(o *sched.Outcome) bool {
		full = append(full, outcomeKey(o))
		return true
	})
	if err != nil {
		t.Fatalf("uninterrupted explore: %v", err)
	}
	if fullStats.Pruned == 0 {
		t.Fatal("fixture explores without pruning; resume would not exercise Explored")
	}
	for _, cut := range []int{1, 2, len(full) / 2, len(full) - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cfg := base
			cfg.MaxExecutions = cut
			var last *sched.Checkpoint
			cfg.Checkpoint = func(cp sched.Checkpoint) { last = &cp }
			var prefix []string
			if _, err := sched.Explore(cfg, prog(), func(o *sched.Outcome) bool {
				prefix = append(prefix, outcomeKey(o))
				return true
			}); err != sched.ErrBudget {
				t.Fatalf("interrupted explore: err = %v, want ErrBudget", err)
			}
			if last == nil {
				t.Fatal("no checkpoint emitted before the cut")
			}
			resumed := base
			resumed.Resume = last
			var suffix []string
			stats, err := sched.Explore(resumed, prog(), func(o *sched.Outcome) bool {
				suffix = append(suffix, outcomeKey(o))
				return true
			})
			if err != nil {
				t.Fatalf("resumed explore: %v", err)
			}
			got := append(append([]string(nil), prefix...), suffix...)
			if len(got) != len(full) {
				t.Fatalf("resumed run visited %d executions total, want %d", len(got), len(full))
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("execution %d differs after resume:\n got %q\nwant %q", i, got[i], full[i])
				}
			}
			if stats != fullStats {
				t.Fatalf("final stats after resume = %+v, want %+v", stats, fullStats)
			}
		})
	}
}

// TestParallelReductionEquivalence checks that sleep-set pruning is a
// deterministic function of the schedule tree: the prefix-sharded parallel
// explorer must visit the same outcome multiset and merge the same
// statistics — including Pruned — as the sequential reduced exploration,
// across worker counts and shard depths.
func TestParallelReductionEquivalence(t *testing.T) {
	sched.RequireNoLeaks(t)
	mk := func() sched.Program {
		return sched.Program{Threads: []func(*sched.Thread){
			mixedThread("a", 0, 2), mixedThread("b", 1, 2), mixedThread("c", 2, 1),
		}}
	}
	for _, bound := range []int{0, 1, 2} {
		cfg := sched.ExploreConfig{PreemptionBound: bound, Reduction: sched.ReductionSleep}
		wantMS, wantStats, err := exploreSeq(t, cfg, mk())
		if err != nil {
			t.Fatalf("bound=%d: sequential explore: %v", bound, err)
		}
		if bound > 0 && wantStats.Pruned == 0 {
			t.Fatalf("bound=%d: fixture prunes nothing; equivalence is vacuous", bound)
		}
		for _, w := range []int{1, 2, 4} {
			for _, depth := range []int{1, 2, 3} {
				gotMS, gotStats, err := explorePar(t, cfg, sched.ParallelConfig{Workers: w, ShardDepth: depth}, mk)
				tag := fmt.Sprintf("bound=%d workers=%d depth=%d", bound, w, depth)
				if err != nil {
					t.Fatalf("%s: parallel explore: %v", tag, err)
				}
				if !wantMS.equal(gotMS) {
					t.Fatalf("%s: outcome multisets differ: sequential %d distinct, parallel %d distinct",
						tag, len(wantMS), len(gotMS))
				}
				if gotStats != wantStats {
					t.Fatalf("%s: stats differ: sequential %+v parallel %+v", tag, wantStats, gotStats)
				}
			}
		}
	}
}
