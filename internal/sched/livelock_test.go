package sched_test

import (
	"strings"
	"testing"

	"lineup/internal/sched"
)

// TestLivelockDetectedAsStuck: two threads spinning on each other's state
// (a livelock) exceed the per-operation step budget and the execution is
// reported stuck — the "livelock, or a diverging loop" case of the paper's
// Section 2.3 definition of stuck histories.
func TestLivelockDetectedAsStuck(t *testing.T) {
	flagA, flagB := false, false
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("spinA")
			flagA = true
			for flagB {
				th.Point(sched.PointAtomic)
			}
			// Spin while the other thread's flag is up; with both flags up
			// neither loop exits.
			for flagA && flagB {
				th.Point(sched.PointAtomic)
			}
			th.OpEnd("spinA", "ok")
		},
		func(th *sched.Thread) {
			th.OpStart("spinB")
			flagB = true
			for flagA {
				th.Point(sched.PointAtomic)
			}
			th.OpEnd("spinB", "ok")
		},
	}}
	// Force the interleaving where both flags go up before either loop
	// starts: run A to its first point, then B.
	stuckSeen := false
	_, err := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{MaxOpSteps: 200},
		PreemptionBound: 2,
	}, prog, func(o *sched.Outcome) bool {
		if o.Err != nil {
			t.Fatalf("execution error: %v", o.Err)
		}
		if o.Stuck {
			stuckSeen = true
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if !stuckSeen {
		t.Fatalf("livelock never reported as stuck")
	}
}

// TestStepBudgetBoundary pins the exact semantics of MaxOpSteps: an
// operation with n intermediate points takes n+2 instrumented steps (the
// OpStart and OpEnd points included), completes when the budget equals its
// step count, and diverges when the budget is one below it.
func TestStepBudgetBoundary(t *testing.T) {
	sched.RequireNoLeaks(t)
	const mid = 5 // intermediate points; total steps = mid + 2
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("op")
			for i := 0; i < mid; i++ {
				th.Point(sched.PointAtomic)
			}
			th.OpEnd("op", "ok")
		},
	}}

	t.Run("exactly-reached", func(t *testing.T) {
		s := sched.NewScheduler(sched.Config{MaxOpSteps: mid + 2}, nil)
		out := s.Run(prog)
		if out.Stuck || out.Err != nil {
			t.Fatalf("budget exactly reached must complete, got %+v", out)
		}
		if len(out.Events) != 2 {
			t.Fatalf("expected call+return, got %d events", len(out.Events))
		}
	})

	t.Run("exceeded-by-one", func(t *testing.T) {
		s := sched.NewScheduler(sched.Config{MaxOpSteps: mid + 1}, nil)
		out := s.Run(prog)
		if !out.Stuck {
			t.Fatalf("budget exceeded by one must be stuck (diverged), got %+v", out)
		}
		if out.Err != nil || out.Hung {
			t.Fatalf("divergence misclassified: %+v", out)
		}
	})
}

// TestImplementationPanicSurfacesAsError: a panic inside the code under
// test becomes Outcome.Err with the panic message and stack, not a crash of
// the checker.
func TestImplementationPanicSurfacesAsError(t *testing.T) {
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("boom")
			panic("implementation bug")
		},
	}}
	s := sched.NewScheduler(sched.Config{}, nil)
	out := s.Run(prog)
	if out.Err == nil {
		t.Fatalf("panic not surfaced")
	}
	if !strings.Contains(out.Err.Error(), "implementation bug") {
		t.Fatalf("panic message lost: %v", out.Err)
	}
}

// TestYieldPoint: the explicit spin-yield point is a scheduling decision.
func TestYieldPoint(t *testing.T) {
	order := ""
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(th *sched.Thread) {
			th.OpStart("a")
			th.Yield()
			order += "a"
			th.OpEnd("a", "ok")
		},
		func(th *sched.Thread) {
			th.OpStart("b")
			order += "b"
			th.OpEnd("b", "ok")
		},
	}}
	n := 0
	_, err := sched.Explore(sched.ExploreConfig{PreemptionBound: sched.Unbounded}, prog,
		func(o *sched.Outcome) bool {
			if o.Err != nil {
				t.Fatalf("execution error: %v", o.Err)
			}
			n++
			return true
		})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if n < 2 {
		t.Fatalf("yield produced no extra schedules (%d)", n)
	}
}
