package sched

// Work units promote the checkpoint format to a distributable job: SplitUnits
// carves the schedule tree into self-contained subtree descriptions, and
// ExploreUnit explores exactly one of them. Together they partition the
// sequential exploration — every execution, decision, and sleep-set skip of
// Explore is accounted by exactly one ExploreUnit call (the split's own
// discovery executions are reported separately and never merged) — so a
// coordinator that sums per-unit stats reproduces the sequential totals
// bit-identically regardless of how units are assigned, reassigned, or
// replayed. Units carry no pointers and marshal to JSON, which is what lets
// internal/dist hand them to worker processes as files.

// WorkUnit is one self-contained slice of a depth-first exploration: the
// realized branch path of the subtree's leftmost execution, with the first
// Floor decision levels pinned (they identify the subtree; a worker never
// backtracks below them) and the retired-branch records a resumed sleep-set
// reduction needs at every level of the path.
//
// A unit is a pure function of the program: replaying Path from the root
// reproduces the leftmost execution, and the DFS below Floor then visits the
// subtree in sequential order. Replay is idempotent — running a unit twice
// (or on two workers) yields byte-identical reports — which is what makes
// at-least-once distribution with lease reassignment safe.
type WorkUnit struct {
	// Seq is the unit's index in generation order. Units partition the
	// sequential exploration contiguously: every execution of unit k precedes
	// every execution of unit k+1 in the sequential DFS order, so (Seq, visit
	// index) totally orders all executions exactly as Explore would visit
	// them.
	Seq int `json:"seq"`
	// Path is the realized branch path of the subtree's leftmost execution
	// (every decision level it reached), as a Checkpoint.Path the replaying
	// worker seeds from.
	Path []int `json:"path"`
	// Floor is the number of pinned prefix levels; the worker's backtracking
	// is confined to levels >= Floor.
	Floor int `json:"floor"`
	// Explored carries the retired-branch records of every level of Path at
	// generation time (reduction only), exactly like Checkpoint.Explored:
	// without them the replayed DFS could neither prune nor count like the
	// sequential one.
	Explored [][]BranchRecord `json:"explored,omitempty"`
}

// SplitStats summarizes a SplitUnits run.
type SplitStats struct {
	// Units is the number of work units emitted.
	Units int
	// DiscoveryExecutions counts the generator's own executions (one per
	// unit: each unit's leftmost). They are replayed — and counted — by the
	// unit's worker, so they must NOT be merged into distributed totals.
	DiscoveryExecutions int
	// Pruned is the generator's share of the sleep-set skip count: skips at
	// pinned prefix levels (creation scans and prefix backtracking). Workers
	// count all remaining skips, so sequential Pruned = SplitStats.Pruned +
	// the sum of per-unit ExploreStats.Pruned. Carry it into the merge.
	Pruned int
}

// SplitUnits walks the schedule tree of prog backtracking only within the
// first depth decision levels (0 selects DefaultShardDepth), emitting each
// prefix's subtree as a WorkUnit. It is the coordinator half of
// sched.ExploreParallel's generator, with files instead of shared memory: the
// discovery execution that finds a unit is re-run by whichever worker claims
// it, so units are replayable on processes that share nothing with the
// generator.
//
// Failed discovery executions (panic, hang, leak) do not abort the split:
// the failure belongs to some unit's subtree and the unit's worker will
// deterministically rediscover it, where the caller's failure policy applies.
// cfg.ContinueOnFailure is therefore ignored here. ErrBudget is returned if
// cfg.MaxExecutions discovery executions did not cover the tree.
func SplitUnits(cfg ExploreConfig, prog Program, depth int) ([]WorkUnit, SplitStats, error) {
	if depth <= 0 {
		depth = DefaultShardDepth
	}
	if cfg.Reduction == ReductionSleep {
		cfg.Config.TrackFootprints = true
	}
	e := &explorer{bound: cfg.PreemptionBound, red: cfg.Reduction, tel: cfg.Telemetry}
	defer e.flushPruneTelemetry()
	var units []WorkUnit
	var st SplitStats
	for {
		if cfg.MaxExecutions > 0 && st.DiscoveryExecutions >= cfg.MaxExecutions {
			st.Units, st.Pruned = len(units), e.pruned
			return units, st, ErrBudget
		}
		e.begin()
		if c := cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		out := NewScheduler(cfg.Config, e).Run(prog)
		e.flushTelemetry(out)
		st.DiscoveryExecutions++
		cfg.Config.Prealloc = CapHint{Events: len(out.Events), Schedule: len(out.Schedule), Trace: len(out.Trace)}
		if out.FailureKind() != FailNone && e.red == ReductionSleep {
			// The failure interrupted the deepest window mid-flight; poison it
			// exactly like the sequential explorer so the prefix levels the
			// generator keeps advancing prune identically.
			e.poisonDeepest()
		}
		floor := depth
		if len(e.stack) < floor {
			floor = len(e.stack)
		}
		u := WorkUnit{Seq: len(units), Path: []int(pathOf(e.stack)), Floor: floor}
		if e.red == ReductionSleep {
			u.Explored = exploredOf(e.stack)
		}
		units = append(units, u)
		// Discard the unit's deep levels without counting their trailing
		// branches — the worker's own backtracking pops (and counts) them —
		// and advance the pinned prefix to the next unit's subtree.
		e.stack = e.stack[:floor]
		if !e.advanceAbove(0) {
			break
		}
	}
	st.Units, st.Pruned = len(units), e.pruned
	return units, st, nil
}

// ExploreUnit enumerates the schedules of u's subtree and calls visit for
// every execution outcome with its realized branch path, in sequential DFS
// order. The first execution replays u.Path (it is the unit's leftmost
// execution, counted here, not by the generator); subsequent executions
// backtrack within levels >= u.Floor. Semantics otherwise follow Explore:
// visit returning false stops the unit early, a failed execution aborts with
// its error unless cfg.ContinueOnFailure hands it to visit, and
// cfg.MaxExecutions caps this unit's executions (ErrBudget on exhaustion).
//
// Over all units of a SplitUnits run, the concatenated visit sequences equal
// the sequential Explore visit sequence, and the summed ExploreStats — plus
// SplitStats.Pruned — equal the sequential stats exactly.
func ExploreUnit(cfg ExploreConfig, prog Program, u WorkUnit, visit func(*Outcome, Pos) bool) (ExploreStats, error) {
	if cfg.Reduction == ReductionSleep {
		cfg.Config.TrackFootprints = true
	}
	e := &explorer{bound: cfg.PreemptionBound, red: cfg.Reduction, tel: cfg.Telemetry}
	defer e.flushPruneTelemetry()
	e.seed = u.Path
	e.seedExplored = u.Explored
	var stats ExploreStats
	for {
		if cfg.MaxExecutions > 0 && stats.Executions >= cfg.MaxExecutions {
			stats.Truncated = true
			return stats, ErrBudget
		}
		e.begin()
		if c := cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		out := NewScheduler(cfg.Config, e).Run(prog)
		e.seed, e.seedExplored = nil, nil
		e.flushTelemetry(out)
		stats.Executions++
		stats.Decisions += out.Decisions
		stats.Pruned = e.pruned
		if k := out.FailureKind(); k != FailNone {
			if e.red == ReductionSleep {
				e.poisonDeepest()
			}
			if !cfg.ContinueOnFailure {
				return stats, out.FailureError()
			}
		}
		cfg.Config.Prealloc = CapHint{Events: len(out.Events), Schedule: len(out.Schedule), Trace: len(out.Trace)}
		if !visit(out, pathOf(e.stack)) {
			return stats, nil
		}
		adv := e.advanceAbove(u.Floor)
		stats.Pruned = e.pruned
		if !adv {
			return stats, nil
		}
	}
}
