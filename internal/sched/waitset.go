package sched

import "sort"

// WaitSet is the scheduler's blocking primitive. A thread that cannot make
// progress registers on a wait set and parks; a running thread wakes it by
// signaling or broadcasting. Wakeups follow Mesa semantics: a woken thread
// must re-check its wait condition.
//
// Because exactly one logical thread runs at a time, wait-set operations need
// no locking of their own; registration and signaling are atomic with respect
// to the surrounding instrumented operation.
type WaitSet struct {
	waiters  map[*Thread]bool // value: pending signal
	ordering []*Thread        // registration order, for deterministic Signal
	footLoc  int              // loc+1 for footprint attribution, 0 = unset
}

func (ws *WaitSet) init() {
	if ws.waiters == nil {
		ws.waiters = make(map[*Thread]bool)
	}
}

// SetFootprintLoc attributes the wait set's operations to a shared-memory
// location for partial-order reduction: two wait-set operations on the same
// object never commute, so they must share a location in the window
// footprints. Owners must call this from their constructor (never lazily:
// location identifiers are only stable across the executions of one
// exploration when they are allocated in deterministic construction order).
// Operations on a wait set without a registered location poison their window
// as conflicting with everything, which is sound but prunes nothing.
func (ws *WaitSet) SetFootprintLoc(loc int) {
	ws.footLoc = loc + 1
}

// touch records the wait-set mutation in the calling thread's current window
// footprint.
func (ws *WaitSet) touch(t *Thread) {
	if t.sch.fo == nil {
		return
	}
	if ws.footLoc > 0 {
		t.sch.noteAccess(ws.footLoc-1, true)
	} else {
		t.sch.noteGlobal()
	}
}

// Register announces that the thread is about to wait. A signal arriving
// between Register and Wait is not lost: Wait returns immediately. This makes
// the condition-variable pattern (register, release lock, wait, reacquire)
// free of lost wakeups.
func (ws *WaitSet) Register(t *Thread) {
	ws.init()
	ws.touch(t)
	if _, ok := ws.waiters[t]; !ok {
		ws.waiters[t] = false
		ws.ordering = append(ws.ordering, t)
	}
}

// Wait parks the thread until it is signaled. If the thread was registered
// and a signal already arrived, Wait consumes it and returns immediately.
// Threads that did not Register first are registered implicitly.
func (ws *WaitSet) Wait(t *Thread) {
	ws.init()
	ws.touch(t)
	if sig, ok := ws.waiters[t]; ok && sig {
		ws.remove(t)
		return
	}
	ws.Register(t)
	t.block()
	// The scheduler resumed us because a signal arrived (Broadcast/Signal
	// set the state back to runnable); deregister. The consumption mutates
	// the wait set inside the woken thread's window, so touch again.
	ws.touch(t)
	ws.remove(t)
}

func (ws *WaitSet) remove(t *Thread) {
	delete(ws.waiters, t)
	for i, w := range ws.ordering {
		if w == t {
			ws.ordering = append(ws.ordering[:i], ws.ordering[i+1:]...)
			break
		}
	}
}

// Broadcast wakes every registered waiter. Waiters that have not parked yet
// keep a pending signal so their Wait returns immediately.
func (ws *WaitSet) Broadcast(t *Thread) {
	ws.init()
	ws.touch(t)
	for w := range ws.waiters {
		ws.waiters[w] = true
		if w.getState() == stateBlocked {
			w.setState(stateRunnable)
		}
	}
}

// Signal wakes a single registered waiter. To keep executions deterministic
// the earliest-registered waiter is chosen; the nondeterminism of real
// wakeup order is modeled by the scheduler's interleaving choices after the
// wakeup.
func (ws *WaitSet) Signal(t *Thread) {
	ws.init()
	ws.touch(t)
	for _, w := range ws.ordering {
		if sig := ws.waiters[w]; !sig {
			ws.waiters[w] = true
			if w.getState() == stateBlocked {
				w.setState(stateRunnable)
			}
			return
		}
	}
}

// Waiters returns the IDs of currently registered waiters, ascending. It is
// a debugging and testing aid.
func (ws *WaitSet) Waiters() []ThreadID {
	var ids []ThreadID
	for w := range ws.waiters {
		ids = append(ids, w.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
