package sched

import "fmt"

// Reduction selects the partial-order reduction strategy of an exploration.
// Reduction never changes what the exploration can observe: every pruned
// schedule is Mazurkiewicz-equivalent to a schedule that is still explored
// (an explored schedule differing only in the order of adjacent independent
// steps), so the set of distinct histories — and hence every check verdict —
// is identical with reduction on and off. See DESIGN.md, "Partial-order
// reduction".
type Reduction int

const (
	// ReductionNone explores the full preemption-bounded schedule tree.
	ReductionNone Reduction = iota
	// ReductionSleep prunes branches with sleep sets (Godefroid): a thread
	// whose deferred next step is independent of everything executed since
	// the exploration last covered it is not rescheduled, because the
	// resulting execution would only commute independent steps of an
	// already-explored one.
	ReductionSleep
)

func (r Reduction) String() string {
	switch r {
	case ReductionNone:
		return "none"
	case ReductionSleep:
		return "sleep"
	default:
		return fmt.Sprintf("Reduction(%d)", int(r))
	}
}

// ParseReduction parses the CLI spelling of a reduction strategy.
func ParseReduction(s string) (Reduction, error) {
	switch s {
	case "none", "":
		return ReductionNone, nil
	case "sleep":
		return ReductionSleep, nil
	default:
		return ReductionNone, fmt.Errorf("sched: unknown reduction %q (want none or sleep)", s)
	}
}

// LocAccess is one shared-memory location touched by a decision window,
// collapsed to the strongest access class seen (write subsumes read).
type LocAccess struct {
	Loc   int  `json:"l"`
	Write bool `json:"w,omitempty"`
}

// Footprint summarizes everything one decision window — the steps executed
// between two scheduling decisions — did that another thread's step could
// depend on: the shared locations it touched (with read/write class), whether
// it recorded history events (operation call/return boundaries, which must
// keep their global order), and a Global poison flag for windows whose effects
// could not be attributed (partial windows of failed executions, wait-set
// operations on objects without a registered location).
//
// Two windows commute — executing them in either order yields the same
// program state and the same history — iff their footprints do not conflict.
type Footprint struct {
	Global bool        `json:"g,omitempty"`
	Event  bool        `json:"e,omitempty"`
	Acc    []LocAccess `json:"a,omitempty"`
}

// add merges one access into the footprint, deduplicating by location and
// upgrading the access class to write if either occurrence wrote. Windows are
// short (a handful of instrumented steps), so the linear scan beats a map.
func (f *Footprint) add(loc int, write bool) {
	for i := range f.Acc {
		if f.Acc[i].Loc == loc {
			f.Acc[i].Write = f.Acc[i].Write || write
			return
		}
	}
	f.Acc = append(f.Acc, LocAccess{Loc: loc, Write: write})
}

func (f *Footprint) reset() {
	f.Global = false
	f.Event = false
	f.Acc = f.Acc[:0]
}

func (f *Footprint) clone() *Footprint {
	c := &Footprint{Global: f.Global, Event: f.Event}
	if len(f.Acc) > 0 {
		c.Acc = append(make([]LocAccess, 0, len(f.Acc)), f.Acc...)
	}
	return c
}

// ConflictsWith reports whether the two windows fail to commute: either one
// is poisoned, both carry history events (their order is observable in the
// recorded history), or they touch a common location with at least one write.
// A nil footprint means "unknown" and conservatively conflicts with
// everything.
func (f *Footprint) ConflictsWith(g *Footprint) bool {
	if f == nil || g == nil {
		return true
	}
	if f.Global || g.Global {
		return true
	}
	if f.Event && g.Event {
		return true
	}
	for _, a := range f.Acc {
		for _, b := range g.Acc {
			if a.Loc == b.Loc && (a.Write || b.Write) {
				return true
			}
		}
	}
	return false
}

// writeClass maps a memory event kind to its conflict class. Synchronizing
// operations (atomics, lock acquire/release) are writes: two sync operations
// on the same object never commute.
func writeClass(kind MemKind) bool {
	switch kind {
	case MemRead, MemAtomicLoad:
		return false
	default:
		return true
	}
}

// sleepEntry is one sleeping thread at a DFS node: scheduling tid at the node
// is provably redundant, because its next step — whose window footprint is
// foot — is independent of everything executed since the branch that ran tid
// here was fully explored. Footprints are immutable once recorded; entries
// are shared freely across nodes and cloned stacks.
type sleepEntry struct {
	tid  ThreadID
	foot *Footprint
}

// BranchRecord serializes one explored-and-retired branch of a checkpointed
// decision level: the thread the branch scheduled and the window footprint
// its first step produced. A resumed exploration rebuilds the level's
// sleep-set state from these records; they cannot be recomputed from the
// branch path alone, because they describe subtrees the interrupted run
// already finished.
type BranchRecord struct {
	Thread ThreadID  `json:"t"`
	Foot   Footprint `json:"f"`
}

// footprintObserver is implemented by controllers (the DFS explorer) that
// consume per-window footprints. The scheduler delivers the accumulated
// window immediately before each Pick and once more when the execution ends;
// the observer must copy what it keeps — the scheduler reuses the buffer.
type footprintObserver interface {
	observeWindow(f *Footprint)
}

// globalFootprint poisons a branch whose window could not be recorded
// faithfully (the execution failed mid-window).
func globalFootprint() *Footprint { return &Footprint{Global: true} }

func footOrGlobal(f *Footprint) *Footprint {
	if f == nil {
		return globalFootprint()
	}
	return f
}
