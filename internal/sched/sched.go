// Package sched implements a deterministic cooperative scheduler together
// with a stateless model-checking explorer. It is the substitute for the
// CHESS model checker that the Line-Up paper builds on: it can enumerate all
// thread schedules of a small concurrent test program, replay any schedule
// deterministically, restrict exploration to serial schedules (no two
// operations overlap), bound the number of preemptions, and detect stuck
// executions (deadlock, livelock, and diverging loops).
//
// Programs under test do not use Go's runtime concurrency directly. Instead,
// each logical thread is a goroutine that is gated by the scheduler so that
// exactly one logical thread executes at any moment. The thread yields to the
// scheduler at every instrumented operation (see package vsync), which is
// where scheduling decisions are taken. Because only one goroutine runs at a
// time and every source of nondeterminism is a scheduling decision, a
// recorded sequence of decisions replays an execution exactly.
//
// Subject code that escapes the instrumentation — blocking on an
// uninstrumented primitive, spinning without yielding, or spawning raw
// goroutines — would hang or poison the whole checker. Config.Watchdog arms a
// wall-clock watchdog that detects a non-cooperative execution, abandons its
// goroutines, and reports a structured hung outcome; Config.DetectLeaks
// reports goroutines the subject spawned outside the scheduler. See
// Outcome.FailureKind for the containment taxonomy.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ThreadID identifies a logical thread within one execution. Thread IDs are
// dense and assigned in spawn order: the setup pseudo-thread (if any) gets
// the first ID, then the test threads in row order, then the teardown
// pseudo-thread.
type ThreadID int

// NoThread is the ThreadID used when no thread is current (the first
// scheduling decision of an execution).
const NoThread ThreadID = -1

// PointKind classifies an instrumented operation. The scheduler consults its
// granularity setting to decide whether a point of a given kind is a
// scheduling decision.
type PointKind int

const (
	// PointRead is a plain (non-synchronizing) shared memory read.
	PointRead PointKind = iota
	// PointWrite is a plain shared memory write.
	PointWrite
	// PointAtomic is a synchronizing (volatile/interlocked) access.
	PointAtomic
	// PointLock is a lock acquire or try-acquire.
	PointLock
	// PointUnlock is a lock release.
	PointUnlock
	// PointOpStart precedes the invocation of a test operation.
	PointOpStart
	// PointOpEnd precedes the return of a test operation.
	PointOpEnd
	// PointYield is an explicit spin yield (fairness hint).
	PointYield
)

// Granularity selects which point kinds are scheduling decisions in
// concurrent mode. Serial mode ignores granularity: only operation starts
// are decisions there.
type Granularity int

const (
	// GranAll preempts at every instrumented point, including plain data
	// accesses. This is the default; it exposes bugs such as the unprotected
	// counter increment of the paper's Section 2.2.
	GranAll Granularity = iota
	// GranSync preempts only at synchronizing points (atomics, locks, and
	// operation boundaries), mirroring the CHESS default. Plain data accesses
	// execute atomically with the preceding point; data races are still
	// recorded in the trace and can be found by the race detector.
	GranSync
)

func (g Granularity) includes(k PointKind) bool {
	switch k {
	case PointRead, PointWrite:
		return g == GranAll
	default:
		return true
	}
}

type threadState int32

const (
	stateRunnable threadState = iota
	stateBlocked
	stateFinished
	stateDiverged // exceeded the per-operation step budget (livelock/divergence)
)

// Thread is the handle a logical thread uses to interact with the scheduler.
// Every instrumented operation takes the current *Thread as an argument;
// implementations under test must thread it through their methods.
//
// state and killed are atomic because the watchdog abandonment path reads and
// writes them from the scheduler goroutine while a non-cooperative thread
// goroutine may still be executing; everywhere else the scheduler baton (the
// resume/back channel rendezvous) already orders accesses.
type Thread struct {
	id        ThreadID
	name      string
	sch       *Scheduler
	resume    chan struct{}
	state     atomic.Int32
	killed    atomic.Bool
	stepsInOp int
	curOp     int // global index of the operation currently executing, -1 outside
}

func (t *Thread) getState() threadState   { return threadState(t.state.Load()) }
func (t *Thread) setState(st threadState) { t.state.Store(int32(st)) }

// ID returns the thread's identifier within the current execution.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's display name ("A", "B", ...).
func (t *Thread) Name() string { return t.name }

// killSentinel is panicked inside a thread goroutine when the scheduler
// terminates an unfinished execution; the thread wrapper recovers it.
type killSentinel struct{}

// divergeSentinel is panicked when a thread exceeds its step budget inside a
// single operation (a diverging loop or livelock).
type divergeSentinel struct{}

type msgKind int

const (
	msgYield msgKind = iota
	msgBlock
	msgFinish
	msgDead     // thread unwound after a kill
	msgDiverged // thread unwound after exceeding its step budget
	msgPanic    // implementation code panicked
)

type msg struct {
	t     *Thread
	kind  msgKind
	panic any
	stack []byte
}

// Controller supplies scheduling decisions. Pick is called at every decision
// point with the previously running thread (cur, which may be NoThread),
// whether cur is among the enabled threads, and the enabled set in ascending
// ID order. It must return one of the enabled threads. Pick is only called
// when there are at least two enabled threads; singleton choices are taken
// implicitly.
type Controller interface {
	Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID
}

// Config controls a single execution.
type Config struct {
	// Serial restricts scheduling decisions to operation boundaries and
	// declares the execution stuck as soon as the sole running operation
	// blocks. This is the phase-1 mode of the Line-Up algorithm.
	Serial bool
	// Granularity selects the preemption granularity in concurrent mode.
	Granularity Granularity
	// RecordTrace enables memory-access tracing for the race and atomicity
	// checkers.
	RecordTrace bool
	// MaxOpSteps bounds the instrumented steps a single operation may take
	// before it is declared diverging. Zero means the default (100000).
	MaxOpSteps int
	// Watchdog, when positive, bounds the wall-clock time the scheduler
	// waits for the running thread to reach its next instrumented point.
	// When it expires the execution is declared hung (the thread blocked on
	// an uninstrumented primitive or spins without yielding), its goroutines
	// are abandoned, and the outcome reports Hung. Zero disables the
	// watchdog: a non-cooperative subject then hangs the scheduler forever.
	Watchdog time.Duration
	// AbandonGrace bounds how long an abandoned execution waits for its
	// threads to unwind cooperatively before declaring them leaked. Zero
	// means the default (50ms).
	AbandonGrace time.Duration
	// DetectLeaks compares the process goroutine count before and after the
	// execution and reports subject goroutines that survived it (raw `go`
	// statements escaping the scheduler) in Outcome.LeakedGoroutines. It is
	// only meaningful when no other code spawns goroutines concurrently, so
	// the parallel explorer forces it off.
	DetectLeaks bool
	// TrackFootprints accumulates a per-decision-window Footprint (shared
	// locations touched, history events recorded) and delivers it to the
	// controller — if it implements the footprint observer hook — immediately
	// before every Pick and once more at the end of the execution. The
	// explorer enables this when sleep-set reduction is on; it is independent
	// of RecordTrace.
	TrackFootprints bool
	// TrackCoverage accumulates the set of distinct (MemKind, location)
	// pairs the execution touches and exports it on Outcome.Coverage. It is
	// the per-execution coverage signal of coverage-guided test generation
	// (core.Generate) and is independent of both RecordTrace and
	// TrackFootprints — footprints are per-decision-window and consumed by
	// reduction, coverage is per-execution and consumed by the caller.
	TrackCoverage bool
	// Prealloc sizes the execution's event, schedule, and trace buffers up
	// front. Explorations set it from the previous execution's outcome so
	// that steady-state executions allocate each buffer once.
	Prealloc CapHint
}

// CapHint carries slice capacity hints for one execution's recording buffers.
type CapHint struct {
	Events   int
	Schedule int
	Trace    int
}

func (c Config) maxOpSteps() int {
	if c.MaxOpSteps <= 0 {
		return 100000
	}
	return c.MaxOpSteps
}

func (c Config) abandonGrace() time.Duration {
	if c.AbandonGrace <= 0 {
		return 50 * time.Millisecond
	}
	return c.AbandonGrace
}

// Program is the unit of execution: an optional single-threaded setup
// function (typically the object constructor plus initial operations), the
// concurrent test threads, and an optional teardown function that runs as an
// extra thread after every test thread has finished. Teardown does not run if
// the execution gets stuck.
type Program struct {
	Setup    func(t *Thread)
	Threads  []func(t *Thread)
	Teardown func(t *Thread)
}

// EventKind distinguishes call and return events of a history.
type EventKind int

const (
	// EvCall marks the invocation of an operation.
	EvCall EventKind = iota
	// EvReturn marks the response of an operation.
	EvReturn
)

// OpEvent is a call or return event recorded during an execution. Thread is
// the logical thread, Op the operation's display name (method plus
// arguments), Result the canonical result string (returns only), and OpIndex
// a per-execution dense identifier that pairs calls with returns.
type OpEvent struct {
	Thread  ThreadID
	Kind    EventKind
	Op      string
	Result  string
	OpIndex int
}

// MemKind classifies trace events for the race and atomicity checkers.
type MemKind int

const (
	// MemRead is a plain shared read.
	MemRead MemKind = iota
	// MemWrite is a plain shared write.
	MemWrite
	// MemAtomicLoad is a synchronizing read (volatile load).
	MemAtomicLoad
	// MemAtomicStore is a synchronizing write (volatile store).
	MemAtomicStore
	// MemAtomicRMW is a synchronizing read-modify-write (CAS, exchange, add).
	MemAtomicRMW
	// MemAcquire is a lock acquisition.
	MemAcquire
	// MemRelease is a lock release.
	MemRelease
)

// MemEvent is one entry of the shared-memory access trace.
type MemEvent struct {
	Thread ThreadID
	Kind   MemKind
	Loc    int    // location identifier (dense, per execution)
	Name   string // location display name
	Op     int    // global operation index the access belongs to, -1 outside ops
}

// Outcome summarizes one execution.
type Outcome struct {
	// Stuck reports whether the execution could not complete: at the end no
	// thread was runnable but not all threads had finished (deadlock), or all
	// remaining threads had diverged (livelock/diverging loop).
	Stuck bool
	// Events is the recorded history of call/return events.
	Events []OpEvent
	// Trace is the shared-memory access trace (nil unless Config.RecordTrace).
	Trace []MemEvent
	// Decisions is the number of scheduling decisions taken.
	Decisions int
	// Schedule is the decision sequence of this execution (the thread picked
	// at every decision point, in order); ReplaySchedule reproduces the
	// execution from it. It is recorded unconditionally so that failure
	// reports always carry a replayable schedule prefix.
	Schedule []ThreadID
	// Err is non-nil if implementation code panicked; the execution is then
	// unusable and the error should be propagated to the user.
	Err error
	// PanicValue and PanicStack carry the raw panic value and the panicking
	// goroutine's stack when Err is a subject panic, for structured failure
	// reports (Err holds the same information formatted).
	PanicValue any
	PanicStack []byte
	// Hung reports that the watchdog expired: the running thread made no
	// progress to its next instrumented point within Config.Watchdog and the
	// execution was abandoned. Events and Trace hold the prefix recorded
	// before the hang.
	Hung bool
	// HungThread is the display name of the thread the watchdog caught
	// (valid when Hung).
	HungThread string
	// LeakedThreads names the scheduler threads of an abandoned execution
	// that did not unwind within the abandonment grace period (they are
	// still blocked or spinning in subject code and their goroutines leak
	// knowingly; they self-destruct at their next instrumented point).
	LeakedThreads []string
	// LeakedGoroutines counts goroutines spawned by the subject outside the
	// scheduler that survived the execution (only when Config.DetectLeaks).
	LeakedGoroutines int
	// Coverage is the sorted set of distinct (MemKind, location) pairs the
	// execution touched, encoded with CoverageKey (nil unless
	// Config.TrackCoverage). Location identifiers are dense per execution and
	// allocated in construction order, so executions of the same program are
	// comparable.
	Coverage []uint64
}

// CoverageKey encodes one (MemKind, location) coverage pair of
// Outcome.Coverage. The kind occupies the low three bits.
func CoverageKey(kind MemKind, loc int) uint64 {
	return uint64(loc)<<3 | uint64(kind)&0x7
}

// DecodeCoverageKey splits a CoverageKey back into its kind and location.
func DecodeCoverageKey(key uint64) (MemKind, int) {
	return MemKind(key & 0x7), int(key >> 3)
}

// Scheduler coordinates the logical threads of a single execution. A fresh
// Scheduler is created for every execution; it is not reusable.
type Scheduler struct {
	cfg        Config
	ctrl       Controller
	threads    []*Thread
	cur        *Thread
	back       chan msg
	decisions  int
	schedule   []ThreadID
	stuck      bool
	execErr    error
	panicVal   any
	panicStack []byte
	hung       bool
	hungThr    string
	leaked     []string
	wdTimer    *time.Timer

	// mu guards events, trace, wfoot and the loc/op counters: a thread
	// abandoned by the watchdog may still be between instrumented points
	// appending to them while the scheduler goroutine assembles the outcome.
	// Uncontended in every cooperative execution.
	mu      sync.Mutex
	events  []OpEvent
	trace   []MemEvent
	cov     map[uint64]struct{} // distinct (kind, loc) pairs (Config.TrackCoverage)
	nextLoc int
	nextOp  int

	// fo, when non-nil, receives the footprint of every decision window
	// (Config.TrackFootprints and a controller implementing the observer
	// hook). wfoot is the reusable window accumulator.
	fo    footprintObserver
	wfoot Footprint
}

// NewScheduler creates the scheduler for one execution of prog under ctrl.
// A nil controller runs the default schedule: keep running the current
// thread while it is enabled, otherwise switch to the lowest-ID enabled
// thread.
func NewScheduler(cfg Config, ctrl Controller) *Scheduler {
	if ctrl == nil {
		ctrl = defaultController{}
	}
	s := &Scheduler{cfg: cfg, ctrl: ctrl}
	if cfg.TrackCoverage {
		s.cov = make(map[uint64]struct{})
	}
	if cfg.TrackFootprints {
		if fo, ok := ctrl.(footprintObserver); ok {
			s.fo = fo
		}
	}
	return s
}

type defaultController struct{}

func (defaultController) Pick(cur ThreadID, curEnabled bool, enabled []ThreadID) ThreadID {
	if curEnabled {
		return cur
	}
	return enabled[0]
}

// threadName converts a thread index into the display names used by the
// paper: "A", "B", ..., with the setup and teardown pseudo-threads named
// "init" and "fin".
func threadName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("T%d", i)
}

func (s *Scheduler) spawn(name string, body func(t *Thread)) *Thread {
	t := &Thread{
		id:     ThreadID(len(s.threads)),
		name:   name,
		sch:    s,
		resume: make(chan struct{}, 1),
		curOp:  -1,
	}
	t.setState(stateRunnable)
	s.threads = append(s.threads, t)
	go func() {
		<-t.resume
		if t.killed.Load() {
			s.back <- msg{t: t, kind: msgDead}
			return
		}
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case killSentinel:
					s.back <- msg{t: t, kind: msgDead}
				case divergeSentinel:
					s.back <- msg{t: t, kind: msgDiverged}
				default:
					s.back <- msg{t: t, kind: msgPanic, panic: r, stack: debug.Stack()}
				}
				return
			}
			s.back <- msg{t: t, kind: msgFinish}
		}()
		body(t)
	}()
	return t
}

// Run executes the program to completion (or stuckness) and returns the
// outcome. It must be called exactly once.
func (s *Scheduler) Run(prog Program) *Outcome {
	// back is buffered generously so that the threads of an abandoned
	// execution can deposit their terminal messages without a receiver: each
	// thread sends at most one in-flight message plus one terminal message.
	// During cooperative scheduling the loop still consumes exactly one
	// message per resume, so buffering does not change the rendezvous
	// semantics.
	s.back = make(chan msg, 2*(len(prog.Threads)+2)+2)
	if h := s.cfg.Prealloc; h != (CapHint{}) {
		if h.Events > 0 {
			s.events = make([]OpEvent, 0, h.Events)
		}
		if h.Schedule > 0 {
			s.schedule = make([]ThreadID, 0, h.Schedule)
		}
		if h.Trace > 0 && s.cfg.RecordTrace {
			s.trace = make([]MemEvent, 0, h.Trace)
		}
	}
	baseGoroutines := 0
	if s.cfg.DetectLeaks {
		baseGoroutines = runtime.NumGoroutine()
	}
	if prog.Setup != nil {
		t := s.spawn("init", prog.Setup)
		s.loop([]*Thread{t})
	}
	if !s.done() {
		group := make([]*Thread, 0, len(prog.Threads))
		for i, body := range prog.Threads {
			group = append(group, s.spawn(threadName(i), body))
		}
		s.loop(group)
	}
	if !s.done() && prog.Teardown != nil {
		t := s.spawn("fin", prog.Teardown)
		s.loop([]*Thread{t})
	}
	if !s.hung {
		// The abandonment path already unwound (or gave up on) every thread.
		s.killAll()
	}
	s.stopWatchdog()
	// Deliver the final decision window (the steps after the last Pick). For
	// failed executions the window may be incomplete; the explorer poisons it.
	s.flushWindow()
	out := &Outcome{
		Stuck:      s.stuck,
		Decisions:  s.decisions,
		Schedule:   s.schedule,
		Err:        s.execErr,
		PanicValue: s.panicVal,
		PanicStack: s.panicStack,
		Hung:       s.hung,
		HungThread: s.hungThr,
	}
	out.LeakedThreads = append(out.LeakedThreads, s.leaked...)
	s.mu.Lock()
	if s.hung {
		// An abandoned thread may still append; hand out stable copies.
		out.Events = append([]OpEvent(nil), s.events...)
		out.Trace = append([]MemEvent(nil), s.trace...)
	} else {
		out.Events = s.events
		out.Trace = s.trace
	}
	if s.cov != nil {
		out.Coverage = make([]uint64, 0, len(s.cov))
		for k := range s.cov {
			out.Coverage = append(out.Coverage, k)
		}
		sort.Slice(out.Coverage, func(i, j int) bool { return out.Coverage[i] < out.Coverage[j] })
	}
	s.mu.Unlock()
	if s.cfg.DetectLeaks {
		out.LeakedGoroutines = s.countLeaks(baseGoroutines)
	}
	return out
}

// done reports whether the execution already terminated abnormally and no
// further thread group may run.
func (s *Scheduler) done() bool {
	return s.stuck || s.execErr != nil || s.hung
}

// countLeaks waits briefly for the process goroutine count to settle back to
// the pre-execution baseline (plus the knowingly-abandoned scheduler
// threads) and returns the excess, attributing it to raw goroutines the
// subject spawned outside the scheduler.
func (s *Scheduler) countLeaks(base int) int {
	allowed := base + len(s.leaked)
	deadline := time.Now().Add(s.cfg.abandonGrace())
	for {
		n := runtime.NumGoroutine()
		if n <= allowed {
			return 0
		}
		if time.Now().After(deadline) {
			return n - allowed
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// loop schedules the given thread group until all of its threads finished,
// or the execution is stuck or failed.
func (s *Scheduler) loop(group []*Thread) {
	s.cur = nil
	ebuf := make([]*Thread, 0, len(group))
	ids := make([]ThreadID, 0, len(group))
	for {
		if s.execErr != nil || s.stuck {
			return
		}
		enabled := enabledOf(group, ebuf)
		if len(enabled) == 0 {
			if allFinished(group) {
				return
			}
			// Deadlock or livelock: every unfinished thread is blocked or
			// diverged.
			s.stuck = true
			return
		}
		var chosen *Thread
		if len(enabled) == 1 {
			chosen = enabled[0]
		} else {
			ids = ids[:0]
			for _, t := range enabled {
				ids = append(ids, t.id)
			}
			cur, curEnabled := NoThread, false
			if s.cur != nil {
				cur = s.cur.id
				curEnabled = s.cur.getState() == stateRunnable
			}
			s.decisions++
			// The steps since the previous decision form one window; hand its
			// footprint to the observer before the decision that closes it.
			s.flushWindow()
			pick := s.ctrl.Pick(cur, curEnabled, ids)
			for _, t := range enabled {
				if t.id == pick {
					chosen = t
					break
				}
			}
			if chosen == nil {
				panic(fmt.Sprintf("sched: controller picked disabled thread %d from %v", pick, ids))
			}
			s.schedule = append(s.schedule, pick)
		}
		s.cur = chosen
		chosen.resume <- struct{}{}
		m, ok := s.recv(chosen)
		if !ok {
			// Watchdog fired: the execution was abandoned inside recv.
			return
		}
		switch m.kind {
		case msgYield:
			// The thread stopped at its next instrumented point; it remains
			// runnable and the loop takes the next decision.
		case msgBlock:
			m.t.setState(stateBlocked)
			if s.cfg.Serial {
				// In serial mode no other thread may run while an operation
				// is incomplete; a blocked operation means the serial
				// execution is stuck (Section 2.3 of the paper).
				s.stuck = true
				return
			}
		case msgFinish:
			m.t.setState(stateFinished)
		case msgDiverged:
			m.t.setState(stateDiverged)
			if s.cfg.Serial {
				s.stuck = true
				return
			}
		case msgDead:
			panic("sched: unexpected dead message during scheduling")
		case msgPanic:
			m.t.setState(stateFinished)
			s.execErr = fmt.Errorf("sched: thread %s panicked: %v\n%s", m.t.name, m.panic, m.stack)
			s.panicVal, s.panicStack = m.panic, m.stack
		}
	}
}

// watchdogTimersLive counts the watchdog timers currently armed (created and
// not yet released). Explorations create one scheduler per execution, so a
// long run cycles through many timers; tests assert the count returns to zero
// to catch timers escaping their execution.
var watchdogTimersLive atomic.Int64

// WatchdogTimersLive reports the number of per-execution watchdog timers
// armed and not yet released. It is zero whenever no execution with
// Config.Watchdog is in flight; tests use it to assert timer hygiene.
func WatchdogTimersLive() int64 { return watchdogTimersLive.Load() }

// recv waits for the running thread's next message. With a watchdog armed it
// bounds the wait; on expiry it abandons the execution and reports !ok.
func (s *Scheduler) recv(chosen *Thread) (msg, bool) {
	if s.cfg.Watchdog <= 0 {
		return <-s.back, true
	}
	if s.wdTimer == nil {
		s.wdTimer = time.NewTimer(s.cfg.Watchdog)
		watchdogTimersLive.Add(1)
	} else {
		s.wdTimer.Reset(s.cfg.Watchdog)
	}
	select {
	case m := <-s.back:
		// Stop may lose the race against expiry; drain the stale fire so the
		// next Reset cannot trip the watchdog on a healthy execution.
		if !s.wdTimer.Stop() {
			select {
			case <-s.wdTimer.C:
			default:
			}
		}
		return m, true
	case <-s.wdTimer.C:
		s.hung = true
		s.hungThr = chosen.name
		s.abandon()
		return msg{}, false
	}
}

// stopWatchdog releases the execution's watchdog timer at the end of Run:
// stopped, drained, and dropped so nothing keeps a per-execution timer alive
// once the outcome is assembled. Safe to call when no timer was ever armed.
func (s *Scheduler) stopWatchdog() {
	if s.wdTimer == nil {
		return
	}
	if !s.wdTimer.Stop() {
		select {
		case <-s.wdTimer.C:
		default:
		}
	}
	s.wdTimer = nil
	watchdogTimersLive.Add(-1)
}

// abandon force-terminates an execution whose running thread stopped
// cooperating. Every unfinished thread is marked killed and handed a resume
// token; parked threads unwind promptly via the kill sentinel, and the
// non-cooperative thread self-destructs at its next instrumented point — if
// it ever reaches one. Threads that do not unwind within the grace period
// are recorded as leaked.
func (s *Scheduler) abandon() {
	waiting := make(map[*Thread]bool)
	for _, t := range s.threads {
		switch t.getState() {
		case stateFinished, stateDiverged:
			continue
		}
		t.killed.Store(true)
		select {
		case t.resume <- struct{}{}:
		default:
		}
		waiting[t] = true
	}
	deadline := time.NewTimer(s.cfg.abandonGrace())
	defer deadline.Stop()
	for len(waiting) > 0 {
		select {
		case m := <-s.back:
			switch m.kind {
			case msgDead, msgFinish, msgDiverged, msgPanic:
				m.t.setState(stateFinished)
				delete(waiting, m.t)
			default:
				// A stale yield/block from a thread that was mid-send when
				// abandoned; it parks next, so make sure a token awaits it.
				select {
				case m.t.resume <- struct{}{}:
				default:
				}
			}
		case <-deadline.C:
			for t := range waiting {
				s.leaked = append(s.leaked, t.name)
			}
			return
		}
	}
}

// enabledOf collects the runnable threads of the group into buf. The group
// is in spawn order, so the result is already sorted by thread ID.
func enabledOf(group []*Thread, buf []*Thread) []*Thread {
	out := buf[:0]
	for _, t := range group {
		if t.getState() == stateRunnable {
			out = append(out, t)
		}
	}
	return out
}

func allFinished(group []*Thread) bool {
	for _, t := range group {
		if t.getState() != stateFinished {
			return false
		}
	}
	return true
}

// killAll unwinds every goroutine that has not finished so that executions do
// not leak goroutines. Threads parked on their resume channel observe the
// killed flag and panic with the kill sentinel, which their wrapper recovers.
func (s *Scheduler) killAll() {
	for _, t := range s.threads {
		if t.getState() == stateFinished {
			continue
		}
		if t.getState() == stateDiverged {
			// The goroutine already unwound via the divergence sentinel.
			continue
		}
		t.killed.Store(true)
		t.resume <- struct{}{}
		m := <-s.back
		if m.kind != msgDead {
			// A thread that was parked at a point or block must unwind; any
			// other message indicates a framework bug.
			panic(fmt.Sprintf("sched: expected dead message, got kind %d", m.kind))
		}
		t.setState(stateFinished)
	}
}

// Point marks an instrumented operation of the given kind. Depending on mode
// and granularity it is a scheduling decision: the thread hands control to
// the scheduler, which may run other threads before resuming it.
func (t *Thread) Point(kind PointKind) {
	s := t.sch
	if t.killed.Load() {
		// The execution was abandoned while this thread ran outside the
		// scheduler's control; unwind before touching any shared state.
		panic(killSentinel{})
	}
	t.stepsInOp++
	if t.stepsInOp > s.cfg.maxOpSteps() {
		panic(divergeSentinel{})
	}
	if s.cfg.Serial {
		if kind != PointOpStart {
			return
		}
	} else if !s.cfg.Granularity.includes(kind) {
		return
	}
	s.back <- msg{t: t, kind: msgYield}
	<-t.resume
	if t.killed.Load() {
		panic(killSentinel{})
	}
}

// block parks the thread until a wait set wakes it (or the execution ends).
// The blocked state is recorded by the scheduler loop when it receives the
// block message, keeping thread states scheduler-owned.
func (t *Thread) block() {
	if t.killed.Load() {
		panic(killSentinel{})
	}
	t.sch.back <- msg{t: t, kind: msgBlock}
	<-t.resume
	if t.killed.Load() {
		panic(killSentinel{})
	}
}

// flushWindow delivers the accumulated window footprint to the observer and
// resets the accumulator. Called from the scheduler goroutine only; the lock
// orders it against abandoned threads that may still be appending. The
// observer reads the footprint under the lock and must copy what it keeps.
func (s *Scheduler) flushWindow() {
	if s.fo == nil {
		return
	}
	s.mu.Lock()
	s.fo.observeWindow(&s.wfoot)
	s.wfoot.reset()
	s.mu.Unlock()
}

// noteAccess merges one shared-memory access into the current window
// footprint.
func (s *Scheduler) noteAccess(loc int, write bool) {
	s.mu.Lock()
	s.wfoot.add(loc, write)
	s.mu.Unlock()
}

// noteGlobal poisons the current window: it performed an effect that cannot
// be attributed to a location, so it must conflict with everything.
func (s *Scheduler) noteGlobal() {
	s.mu.Lock()
	s.wfoot.Global = true
	s.mu.Unlock()
}

// Touch merges a shared-memory access into the current window footprint
// without recording a trace event. Instrumented primitives use it for
// accesses that the race checkers do not model but that still order steps —
// e.g. a failed TryLock reads the lock word.
func (t *Thread) Touch(loc int, write bool) {
	if t.sch.fo == nil {
		return
	}
	t.sch.noteAccess(loc, write)
}

// NewLoc allocates a fresh shared-memory location identifier. Instrumented
// cells call this once at construction time.
func (t *Thread) NewLoc() int {
	t.sch.mu.Lock()
	id := t.sch.nextLoc
	t.sch.nextLoc++
	t.sch.mu.Unlock()
	return id
}

// Record appends a memory event to the execution trace if tracing is on.
// Independently of tracing, the access enters the current decision window's
// footprint when footprints are tracked.
func (t *Thread) Record(kind MemKind, loc int, name string) {
	if t.sch.fo != nil {
		t.sch.noteAccess(loc, writeClass(kind))
	}
	if t.sch.cov != nil {
		t.sch.mu.Lock()
		t.sch.cov[CoverageKey(kind, loc)] = struct{}{}
		t.sch.mu.Unlock()
	}
	if !t.sch.cfg.RecordTrace {
		return
	}
	t.sch.mu.Lock()
	t.sch.trace = append(t.sch.trace, MemEvent{
		Thread: t.id, Kind: kind, Loc: loc, Name: name, Op: t.curOp,
	})
	t.sch.mu.Unlock()
}

// OpStart records the call event of an operation. The scheduling point
// precedes the recording so that a descheduled thread has not yet invoked
// the operation.
func (t *Thread) OpStart(name string) {
	t.stepsInOp = 0
	t.Point(PointOpStart)
	s := t.sch
	s.mu.Lock()
	t.curOp = s.nextOp
	s.nextOp++
	s.events = append(s.events, OpEvent{
		Thread: t.id, Kind: EvCall, Op: name, OpIndex: t.curOp,
	})
	if s.fo != nil {
		s.wfoot.Event = true
	}
	s.mu.Unlock()
}

// OpEnd records the return event of the operation started by the matching
// OpStart. A scheduling point precedes the return so that other threads may
// overlap with the completed body before the response becomes visible.
func (t *Thread) OpEnd(name, result string) {
	op := t.curOp
	t.Point(PointOpEnd)
	t.curOp = -1
	s := t.sch
	s.mu.Lock()
	s.events = append(s.events, OpEvent{
		Thread: t.id, Kind: EvReturn, Op: name, Result: result, OpIndex: op,
	})
	if s.fo != nil {
		s.wfoot.Event = true
	}
	s.mu.Unlock()
}

// Yield marks an explicit spin-wait yield (the fairness hint CHESS uses for
// lock-free retry loops); it is always a scheduling decision.
func (t *Thread) Yield() {
	t.Point(PointYield)
}
