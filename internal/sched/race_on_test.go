//go:build race

package sched_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
