package sched

import (
	"runtime"
	"sync"
)

// DefaultShardDepth is the number of decision levels the shard generator
// pre-splits when ParallelConfig.ShardDepth is zero. Two levels give roughly
// (enabled threads)^2 initial shards, which combined with work-stealing
// splits keeps every worker busy without fragmenting tiny schedule spaces.
const DefaultShardDepth = 2

// Pos identifies one execution's position in the sequential depth-first
// exploration order: the branch index taken at each decision level of the
// schedule tree at the moment the execution was started (levels reached
// during the run extend the path with the default branch 0). Positions are
// totally ordered by Before, and the order is exactly the order in which the
// sequential Explore would have visited the executions — regardless of how
// the parallel explorer sharded the tree. Callers use positions to
// re-establish the sequential "first" among concurrently discovered events,
// which is what makes parallel verdicts reproducible.
type Pos []int

// Before reports whether p precedes q in sequential exploration order
// (lexicographic order of branch paths; a proper prefix precedes its
// extensions). Two distinct executions of the same exploration never have
// equal positions.
func (p Pos) Before(q Pos) bool {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

func (p Pos) clone() Pos {
	return append(Pos(nil), p...)
}

// ShardProgress is a snapshot of a parallel exploration's progress, delivered
// to ParallelConfig.Progress.
type ShardProgress struct {
	// Shards is the number of shards created so far (generator prefixes plus
	// work-stealing splits).
	Shards int
	// Done is the number of shards fully explored or abandoned.
	Done int
	// Splits is the number of shards created by splitting an oversized shard
	// for a starving worker.
	Splits int
	// Executions is the number of executions started so far.
	Executions int
}

// ParallelConfig parameterizes ExploreParallel.
type ParallelConfig struct {
	// Workers is the number of concurrent shard workers; 0 or negative
	// selects GOMAXPROCS.
	Workers int
	// ShardDepth is the number of decision levels the generator pre-splits
	// into shards (0 selects DefaultShardDepth). Deeper sharding yields more,
	// smaller shards; work-stealing splits compensate for skew either way.
	ShardDepth int
	// Progress, when non-nil, receives a progress snapshot whenever a shard
	// is created or retired. It is invoked under an internal lock and must
	// return quickly without calling back into the explorer.
	Progress func(ShardProgress)
}

// shard is one unit of parallel work: a decision stack whose levels below
// floor are pinned (the shard's schedule prefix) and whose levels at or above
// floor are a live DFS frontier. out, when non-nil, is the outcome of the
// stack's leftmost execution, already produced by the generator so the worker
// visits it without re-executing. path is the position of the shard's next
// (or pre-run) execution.
type shard struct {
	stack []*choice
	floor int
	out   *Outcome
	path  Pos
}

// split carves a new shard out of this one for a starving worker: the
// shallowest unpinned level with an affordable unexplored alternative is
// handed off (that alternative and everything after it at that level), and
// the level becomes pinned in the parent. It returns nil when the shard has
// no splittable level. e is the worker's explorer holding the live stack.
func (sh *shard) split(e *explorer) *shard {
	level := -1
	for i := sh.floor; i < len(e.stack); i++ {
		c := e.stack[i]
		if c.exhausted {
			continue
		}
		for j := c.next + 1; j < len(c.enabled); j++ {
			if e.allowed(c, j) && !(e.red == ReductionSleep && e.sleeps(c, j)) {
				level = i
				break
			}
		}
		if level >= 0 {
			break
		}
	}
	if level < 0 {
		return nil
	}
	// Raising the donor's floor past [sh.floor, level) orphans those levels:
	// the donor never advances them again and the child only advances its own
	// floor level, so their trailing sleeping branches — which a sequential
	// pop would skip and count — must be counted here or the merged Pruned
	// total silently depends on where the timing-driven splits landed. Each
	// such level has no affordable non-sleeping branch left (that is why the
	// split chose a deeper level), so the remainder is exactly what a pop
	// would prune.
	if e.red == ReductionSleep {
		for i := sh.floor; i < level; i++ {
			c := e.stack[i]
			if c.exhausted {
				continue
			}
			for j := c.next + 1; j < len(c.enabled); j++ {
				if e.allowed(c, j) && e.sleeps(c, j) {
					e.pruned++
				}
			}
		}
	}
	st := cloneStack(e.stack[:level+1])
	c := st[level]
	// The handed-off child continues exactly where a sequential advance at
	// this level would: the donor's current branch is retired into the
	// child's node (the donor will finish its subtree, and every live stack
	// level has already run an execution, so its window footprint is final),
	// and sleeping branches between the two are skipped and counted here —
	// the donor's floor pin means no one else ever advances this level.
	e.retire(c)
	c.next++
	for !e.allowed(c, c.next) || (e.red == ReductionSleep && e.sleeps(c, c.next)) {
		if e.allowed(c, c.next) {
			e.pruned++
		}
		c.next++
	}
	sh.floor = level + 1
	return &shard{stack: st, floor: level, path: pathOf(st)}
}

// cloneStack deep-copies the choice structs of a decision stack so that two
// explorers can advance the same prefix independently. The enabled and sleep
// slices are shared (never mutated after creation), and footprints are
// immutable once recorded; the explored slice is owned by the advancing
// explorer and must be copied.
func cloneStack(stack []*choice) []*choice {
	out := make([]*choice, len(stack))
	for i, c := range stack {
		cc := *c
		if len(c.explored) > 0 {
			cc.explored = append([]sleepEntry(nil), c.explored...)
		}
		out[i] = &cc
	}
	return out
}

func pathOf(stack []*choice) Pos {
	p := make(Pos, len(stack))
	for i, c := range stack {
		p[i] = c.next
	}
	return p
}

// coordinator is the shared state of one parallel exploration: the shard
// queue, the execution budget, merged statistics, and the terminal-event
// bookkeeping that makes early cancellation deterministic.
type coordinator struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*shard
	waiters  int // workers blocked in pop (the split-hunger signal)
	pending  int // shards queued or being worked
	genDone  bool
	killed   bool // budget exhausted: stop everything immediately
	maxExecs int

	// termPos is the minimal position at which exploration terminally
	// stopped: a visit returned false (termErr nil) or an execution failed
	// (termErr non-nil). Work at positions after termPos is abandoned; work
	// before it continues, so the minimum is exact and the reported stop
	// cause is the one the sequential explorer would have hit first.
	termPos Pos
	termErr error

	truncated bool
	stats     ExploreStats
	prog      ShardProgress
	progFn    func(ShardProgress)
}

func (co *coordinator) emitProgress() {
	if co.progFn != nil {
		co.prog.Executions = co.stats.Executions
		co.progFn(co.prog)
	}
}

// finalProgress delivers the closing progress snapshot — complete merged
// totals — exactly once, after every worker has joined, and then seals the
// callback so nothing can emit after ExploreParallel returns. Shard-event
// emissions are interleaved with execution reservations, so without this the
// last event-driven snapshot can under-report the totals.
func (co *coordinator) finalProgress() {
	co.mu.Lock()
	defer co.mu.Unlock()
	fn := co.progFn
	if fn == nil {
		return
	}
	co.progFn = nil
	co.prog.Executions = co.stats.Executions
	fn(co.prog)
}

func (co *coordinator) push(sh *shard) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.queue = append(co.queue, sh)
	co.pending++
	co.prog.Shards++
	if sh.out == nil {
		co.prog.Splits++
	}
	co.emitProgress()
	co.cond.Signal()
}

// pop blocks until a shard is available; it returns nil when the exploration
// is over (queue drained with the generator finished, or killed).
func (co *coordinator) pop() *shard {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.killed {
			return nil
		}
		if len(co.queue) > 0 {
			sh := co.queue[0]
			co.queue = co.queue[1:]
			return sh
		}
		if co.genDone && co.pending == 0 {
			return nil
		}
		co.waiters++
		co.cond.Wait()
		co.waiters--
	}
}

func (co *coordinator) finishShard() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.pending--
	co.prog.Done++
	co.emitProgress()
	if co.pending == 0 {
		co.cond.Broadcast()
	}
}

// reserve accounts one execution about to start at position p. It returns
// false when the execution must not run: the exploration was killed, a
// terminal event precedes p (everything at and after p is moot), or the
// execution budget is exhausted (which kills the exploration).
func (co *coordinator) reserve(p Pos) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.killed {
		return false
	}
	if co.termPos != nil && co.termPos.Before(p) {
		return false
	}
	if co.maxExecs > 0 && co.stats.Executions >= co.maxExecs {
		co.truncated = true
		co.killed = true
		co.cond.Broadcast()
		return false
	}
	co.stats.Executions++
	return true
}

func (co *coordinator) finishRun(out *Outcome) {
	co.mu.Lock()
	co.stats.Decisions += out.Decisions
	co.mu.Unlock()
}

// addPruned merges one explorer's sleep-set skip count. Every (node, branch)
// skip is counted by exactly one explorer — nodes live in exactly one stack,
// split hand-offs count the skipped gap on the donor — so the merged total is
// deterministic for full explorations.
func (co *coordinator) addPruned(n int) {
	if n == 0 {
		return
	}
	co.mu.Lock()
	co.stats.Pruned += n
	co.mu.Unlock()
}

// noteTerminal records a terminal event (visit stop when err is nil, failed
// execution otherwise) at position p, keeping the minimal-position one.
func (co *coordinator) noteTerminal(p Pos, err error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.termPos == nil || p.Before(co.termPos) {
		co.termPos = p.clone()
		co.termErr = err
	}
}

func (co *coordinator) abandoned(p Pos) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.killed || (co.termPos != nil && co.termPos.Before(p))
}

// splitWanted reports whether a worker holding a large shard should shed part
// of it: the queue is dry and at least one worker is idle.
func (co *coordinator) splitWanted() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return !co.killed && len(co.queue) == 0 && co.waiters > 0
}

// generate walks the schedule tree backtracking only within the first
// shardDepth decision levels, handing each prefix's subtree off as a shard.
// Every generation run is itself the leftmost execution of the shard it
// discovers, so no execution is ever run twice.
func (co *coordinator) generate(cfg ExploreConfig, prog Program, shardDepth int) {
	e := &explorer{bound: cfg.PreemptionBound, red: cfg.Reduction, tel: cfg.Telemetry}
	defer func() {
		e.flushPruneTelemetry()
		co.addPruned(e.pruned)
	}()
	for {
		p := pathOf(e.stack)
		if !co.reserve(p) {
			break
		}
		e.begin()
		if c := cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		out := NewScheduler(cfg.Config, e).Run(prog)
		e.flushTelemetry(out)
		co.finishRun(out)
		cfg.Config.Prealloc = CapHint{Events: len(out.Events), Schedule: len(out.Schedule), Trace: len(out.Trace)}
		if k := out.FailureKind(); k != FailNone {
			if e.red == ReductionSleep {
				e.poisonDeepest()
			}
			if !cfg.ContinueOnFailure {
				co.noteTerminal(p, out.FailureError())
				break
			}
		}
		floor := shardDepth
		if len(e.stack) < floor {
			floor = len(e.stack)
		}
		co.push(&shard{stack: cloneStack(e.stack), floor: floor, out: out, path: p})
		e.stack = e.stack[:floor]
		if !e.advanceAbove(0) {
			break
		}
	}
	co.mu.Lock()
	co.genDone = true
	co.cond.Broadcast()
	co.mu.Unlock()
}

// shardWorker drains the shard queue, DFS-exploring each shard below its
// pinned prefix with a private program instance (executions of one worker
// are sequential, so the program's closure state needs no synchronization).
type shardWorker struct {
	co    *coordinator
	cfg   ExploreConfig
	prog  Program
	visit func(*Outcome, Pos) bool
}

func (w *shardWorker) run() {
	for {
		sh := w.co.pop()
		if sh == nil {
			return
		}
		w.runShard(sh)
		w.co.finishShard()
	}
}

func (w *shardWorker) runShard(sh *shard) {
	if w.co.abandoned(sh.path) {
		return
	}
	e := &explorer{bound: w.cfg.PreemptionBound, red: w.cfg.Reduction, stack: sh.stack, tel: w.cfg.Telemetry}
	defer func() {
		e.flushPruneTelemetry()
		w.co.addPruned(e.pruned)
	}()
	pending := sh.out == nil // split child: the stack already points at an unexplored alternative
	if sh.out != nil {
		if !w.visit(sh.out, sh.path) {
			// Everything else in the shard follows sh.path in sequential
			// order, so the whole shard stops here.
			w.co.noteTerminal(sh.path, nil)
			return
		}
	}
	for {
		if pending {
			pending = false
		} else if !e.advanceAbove(sh.floor) {
			return
		}
		if w.co.splitWanted() {
			if child := sh.split(e); child != nil {
				w.co.push(child)
			}
		}
		p := pathOf(e.stack)
		if !w.co.reserve(p) {
			return
		}
		e.begin()
		if c := w.cfg.Telemetry; c != nil {
			c.ExecutionsStarted.Add(1)
		}
		out := NewScheduler(w.cfg.Config, e).Run(w.prog)
		e.flushTelemetry(out)
		w.co.finishRun(out)
		w.cfg.Config.Prealloc = CapHint{Events: len(out.Events), Schedule: len(out.Schedule), Trace: len(out.Trace)}
		if k := out.FailureKind(); k != FailNone {
			if e.red == ReductionSleep {
				e.poisonDeepest()
			}
			if !w.cfg.ContinueOnFailure {
				w.co.noteTerminal(p, out.FailureError())
				return
			}
		}
		if !w.visit(out, p) {
			w.co.noteTerminal(p, nil)
			return
		}
	}
}

// ExploreParallel enumerates the schedules of a program exactly like Explore,
// but across a pool of workers: the first ShardDepth decision levels of the
// schedule tree are split into disjoint prefix shards, each shard is the
// prefix's entire subtree explored depth-first by one worker at a time, and
// starving workers steal by splitting oversized shards at their shallowest
// unexplored level. Over a full exploration the multiset of outcomes visited
// is identical to the sequential explorer's, and the merged statistics are
// deterministic regardless of worker count.
//
// newProg is called once per worker (plus once for the generator) so that
// concurrently executing program instances do not share closure state; each
// instance must behave deterministically and identically, as in Explore.
//
// visit may be called concurrently from several workers; callers that
// accumulate state must synchronize. Every outcome carries its Pos in the
// sequential exploration order. When a visit returns false, exploration is
// canceled deterministically: work strictly after that position (in
// sequential order) is abandoned, while earlier work runs to completion, so
// the minimal stopping position — and hence the caller's min-position
// selection among concurrently discovered violations — is exact. Outcomes at
// positions between the eventual stop and in-flight work may still be
// visited; callers must tolerate the superset.
//
// Error semantics follow Explore with the same positional rule: the returned
// error is the sequentially-first execution failure, unless a visit stop
// precedes it (then nil, as the sequential explorer would have stopped
// first). ErrBudget is returned when MaxExecutions exhausts before the space;
// exactly MaxExecutions executions are run, though — unlike the sequential
// explorer — not necessarily the first ones in sequential order.
func ExploreParallel(cfg ExploreConfig, pcfg ParallelConfig, newProg func() Program, visit func(*Outcome, Pos) bool) (ExploreStats, error) {
	// Goroutine-count leak detection is process-global and meaningless while
	// several schedulers run concurrently; containment of hangs and panics
	// still works per execution.
	cfg.DetectLeaks = false
	if cfg.Reduction == ReductionSleep {
		cfg.Config.TrackFootprints = true
	}
	workers := pcfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := pcfg.ShardDepth
	if depth <= 0 {
		depth = DefaultShardDepth
	}
	co := &coordinator{maxExecs: cfg.MaxExecutions, progFn: pcfg.Progress}
	co.cond = sync.NewCond(&co.mu)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := &shardWorker{co: co, cfg: cfg, prog: newProg(), visit: visit}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run()
		}()
	}
	co.generate(cfg, newProg(), depth)
	wg.Wait()
	co.finalProgress()
	stats := co.stats
	switch {
	case co.termPos != nil && co.termErr != nil:
		return stats, co.termErr
	case co.termPos != nil:
		return stats, nil
	case co.truncated:
		stats.Truncated = true
		return stats, ErrBudget
	}
	return stats, nil
}
