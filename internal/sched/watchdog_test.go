package sched_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lineup/internal/sched"
)

// uncooperative builds a program whose thread B escapes the scheduler inside
// its op body by calling hang, which blocks or spins on an uninstrumented
// primitive until the returned release function is called.
func uncooperative(hang func()) sched.Program {
	return sched.Program{Threads: []func(*sched.Thread){
		opThread(1, "a"),
		func(t *sched.Thread) {
			t.OpStart("b0")
			hang()
			t.Point(sched.PointAtomic)
			t.OpEnd("b0", "ok")
		},
	}}
}

func TestWatchdogDetectsUninstrumentedBlock(t *testing.T) {
	sched.RequireNoLeaks(t)
	ch := make(chan struct{})
	defer close(ch) // lets the abandoned thread unwind at its next point
	s := sched.NewScheduler(sched.Config{Watchdog: 30 * time.Millisecond}, nil)
	out := s.Run(uncooperative(func() { <-ch }))
	if !out.Hung {
		t.Fatalf("expected hung outcome, got %+v", out)
	}
	if out.HungThread != "B" {
		t.Fatalf("expected hung thread B, got %q", out.HungThread)
	}
	if out.FailureKind() != sched.FailHung {
		t.Fatalf("FailureKind = %v, want FailHung", out.FailureKind())
	}
	if err := out.FailureError(); err == nil || !strings.Contains(err.Error(), "hung") {
		t.Fatalf("FailureError = %v, want hung error", err)
	}
	found := false
	for _, name := range out.LeakedThreads {
		if name == "B" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected B among leaked threads, got %v", out.LeakedThreads)
	}
}

func TestWatchdogDetectsBusySpin(t *testing.T) {
	sched.RequireNoLeaks(t)
	var release atomic.Bool
	defer release.Store(true)
	s := sched.NewScheduler(sched.Config{Watchdog: 30 * time.Millisecond}, nil)
	out := s.Run(uncooperative(func() {
		for !release.Load() {
			// A busy spin with no instrumented points: invisible to the
			// scheduler, only the wall-clock watchdog can catch it.
		}
	}))
	if !out.Hung || out.FailureKind() != sched.FailHung {
		t.Fatalf("expected hung outcome, got Hung=%v kind=%v", out.Hung, out.FailureKind())
	}
}

// TestWatchdogSparesSlowCooperative pins down the misclassification boundary:
// a thread that is merely slow between instrumented points must complete
// normally as long as each gap stays under the watchdog interval.
func TestWatchdogSparesSlowCooperative(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("slow")
			for i := 0; i < 3; i++ {
				time.Sleep(5 * time.Millisecond)
				t.Point(sched.PointAtomic)
			}
			t.OpEnd("slow", "ok")
		},
	}}
	s := sched.NewScheduler(sched.Config{Watchdog: 2 * time.Second}, nil)
	out := s.Run(prog)
	if out.Hung || out.Stuck || out.Err != nil {
		t.Fatalf("slow-but-cooperative execution misclassified: %+v", out)
	}
	if out.FailureKind() != sched.FailNone {
		t.Fatalf("FailureKind = %v, want FailNone", out.FailureKind())
	}
}

// TestWatchdogVsStepBudget checks the interaction of the two divergence
// detectors: an instrumented spin must be caught by the deterministic step
// budget (diverged/stuck outcome), not by the wall-clock watchdog, even when
// both are armed.
func TestWatchdogVsStepBudget(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("spin")
			for {
				t.Yield() // instrumented: the scheduler sees every iteration
			}
		},
	}}
	s := sched.NewScheduler(sched.Config{MaxOpSteps: 50, Watchdog: 30 * time.Second}, nil)
	out := s.Run(prog)
	if out.Hung {
		t.Fatalf("instrumented spin misclassified as hung")
	}
	if !out.Stuck {
		t.Fatalf("expected stuck (diverged) outcome, got %+v", out)
	}
	if out.FailureKind() != sched.FailNone {
		t.Fatalf("divergence is a cooperative outcome, not a failure; got %v", out.FailureKind())
	}
}

func TestDetectLeaksReportsRogueGoroutine(t *testing.T) {
	sched.RequireNoLeaks(t)
	ch := make(chan struct{})
	defer close(ch)
	prog := sched.Program{Threads: []func(*sched.Thread){
		func(t *sched.Thread) {
			t.OpStart("rogue")
			go func() { <-ch }() // escapes the scheduler entirely
			t.Point(sched.PointAtomic)
			t.OpEnd("rogue", "ok")
		},
	}}
	s := sched.NewScheduler(sched.Config{DetectLeaks: true, AbandonGrace: 20 * time.Millisecond}, nil)
	out := s.Run(prog)
	if out.Hung || out.Stuck || out.Err != nil {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	if out.LeakedGoroutines != 1 {
		t.Fatalf("LeakedGoroutines = %d, want 1", out.LeakedGoroutines)
	}
	if out.FailureKind() != sched.FailLeak {
		t.Fatalf("FailureKind = %v, want FailLeak", out.FailureKind())
	}
}

func TestDetectLeaksCleanRun(t *testing.T) {
	sched.RequireNoLeaks(t)
	prog := sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
	s := sched.NewScheduler(sched.Config{DetectLeaks: true}, nil)
	out := s.Run(prog)
	if out.LeakedGoroutines != 0 || out.FailureKind() != sched.FailNone {
		t.Fatalf("clean run reported leaks: %+v", out)
	}
}

// overlapPanicProgram panics in thread B's op whenever it observes thread A
// mid-operation, so some schedules fail and others pass — the shape the
// containment machinery must handle.
func overlapPanicProgram() sched.Program {
	inA := false
	return sched.Program{
		Setup: func(t *sched.Thread) { inA = false },
		Threads: []func(*sched.Thread){
			func(t *sched.Thread) {
				t.OpStart("a0")
				inA = true
				t.Point(sched.PointAtomic)
				inA = false
				t.OpEnd("a0", "ok")
			},
			func(t *sched.Thread) {
				t.OpStart("b0")
				t.Point(sched.PointAtomic)
				if inA {
					panic("overlap observed")
				}
				t.OpEnd("b0", "ok")
			},
		},
	}
}

func TestExploreContinueOnFailure(t *testing.T) {
	sched.RequireNoLeaks(t)
	cfg := sched.ExploreConfig{
		Config:          sched.Config{},
		PreemptionBound: sched.Unbounded,
	}

	// Without containment the exploration aborts at the first panic.
	_, err := sched.Explore(cfg, overlapPanicProgram(), func(o *sched.Outcome) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected panic error without ContinueOnFailure, got %v", err)
	}

	cfg.ContinueOnFailure = true
	var failed, passed int
	_, err = sched.Explore(cfg, overlapPanicProgram(), func(o *sched.Outcome) bool {
		switch o.FailureKind() {
		case sched.FailPanic:
			failed++
			if len(o.Schedule) == 0 {
				t.Fatalf("failed outcome carries no schedule prefix")
			}
		case sched.FailNone:
			passed++
		default:
			t.Fatalf("unexpected failure kind %v", o.FailureKind())
		}
		return true
	})
	if err != nil {
		t.Fatalf("contained exploration errored: %v", err)
	}
	if failed == 0 || passed == 0 {
		t.Fatalf("expected a mix of failed and passing schedules, got failed=%d passed=%d", failed, passed)
	}
}

// TestFailedScheduleReplays reproduces a contained panic from the recorded
// schedule prefix of its failure, the workflow a bug report supports.
func TestFailedScheduleReplays(t *testing.T) {
	sched.RequireNoLeaks(t)
	var schedule []sched.ThreadID
	cfg := sched.ExploreConfig{PreemptionBound: sched.Unbounded, ContinueOnFailure: true}
	_, err := sched.Explore(cfg, overlapPanicProgram(), func(o *sched.Outcome) bool {
		if o.FailureKind() == sched.FailPanic {
			schedule = o.Schedule
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if schedule == nil {
		t.Fatalf("no failing schedule found")
	}
	out, err := sched.ReplaySchedule(sched.Config{}, overlapPanicProgram(), schedule)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if out.FailureKind() != sched.FailPanic || !strings.Contains(out.Err.Error(), "overlap observed") {
		t.Fatalf("replay did not reproduce the panic: %+v", out)
	}
}

// TestAbandonedExecutionLeavesNoThreadsBehind is the kill-path leak
// assertion: once the abandoned subject is released, every scheduler thread
// goroutine must self-destruct (RequireNoLeaks verifies at cleanup), and a
// fresh execution must be unaffected.
func TestAbandonedExecutionLeavesNoThreadsBehind(t *testing.T) {
	sched.RequireNoLeaks(t)
	ch := make(chan struct{})
	s := sched.NewScheduler(sched.Config{Watchdog: 30 * time.Millisecond}, nil)
	out := s.Run(uncooperative(func() { <-ch }))
	if !out.Hung {
		t.Fatalf("expected hung outcome")
	}
	close(ch) // release: the leaked thread reaches its next point and dies

	// The runtime stays healthy: an unrelated execution completes normally.
	s2 := sched.NewScheduler(sched.Config{}, nil)
	out2 := s2.Run(sched.Program{Threads: []func(*sched.Thread){opThread(2, "a")}})
	if out2.Stuck || out2.Err != nil || out2.Hung {
		t.Fatalf("follow-up execution failed: %+v", out2)
	}
}

// TestWatchdogTimersReleasedOnCompletion is the regression test for the
// timer-leak fix: every execution that arms the wall-clock watchdog must
// stop and drain its timer when Run returns, on the normal path and the
// abandonment path alike. The live-timer gauge must read zero after any mix
// of outcomes — before the fix, completed executions left their timers
// armed until expiry, and a stale fire could bleed a spurious hung verdict
// into the next execution's recv.
func TestWatchdogTimersReleasedOnCompletion(t *testing.T) {
	sched.RequireNoLeaks(t)
	if n := sched.WatchdogTimersLive(); n != 0 {
		t.Fatalf("%d watchdog timers live before the test", n)
	}

	// Normal completions: a small exploration with the watchdog armed on
	// every execution.
	execs := 0
	if _, err := sched.Explore(sched.ExploreConfig{
		Config:          sched.Config{Watchdog: 30 * time.Second},
		PreemptionBound: 2,
	}, sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}},
		func(o *sched.Outcome) bool {
			execs++
			return true
		}); err != nil {
		t.Fatalf("explore: %v", err)
	}
	if execs == 0 {
		t.Fatal("exploration ran no executions")
	}
	if n := sched.WatchdogTimersLive(); n != 0 {
		t.Errorf("%d watchdog timers live after %d completed executions, want 0", n, execs)
	}

	// Abandonment: the watchdog fires, the execution is abandoned, and the
	// fired timer must be released too.
	ch := make(chan struct{})
	defer close(ch)
	s := sched.NewScheduler(sched.Config{Watchdog: 30 * time.Millisecond}, nil)
	out := s.Run(uncooperative(func() { <-ch }))
	if !out.Hung {
		t.Fatalf("expected hung outcome, got %+v", out)
	}
	if n := sched.WatchdogTimersLive(); n != 0 {
		t.Errorf("%d watchdog timers live after an abandoned execution, want 0", n)
	}
}
