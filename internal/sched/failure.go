package sched

import (
	"encoding/json"
	"fmt"
)

// FailureKind classifies the contained runtime failures an execution can
// suffer, completing the taxonomy next to the cooperative outcomes the
// scheduler already detects (deadlock and livelock/divergence are reported
// via Outcome.Stuck, not as failures: they are semantically meaningful
// results the checker reasons about, while failures make the execution
// unusable).
type FailureKind int

const (
	// FailNone means the execution suffered no runtime failure.
	FailNone FailureKind = iota
	// FailPanic means implementation code panicked (Outcome.Err).
	FailPanic
	// FailHung means the watchdog expired: the running thread blocked on an
	// uninstrumented primitive or spun without yielding (Outcome.Hung).
	FailHung
	// FailLeak means the subject spawned goroutines outside the scheduler
	// that survived the execution (Outcome.LeakedGoroutines > 0).
	FailLeak
)

// String names the failure kind for reports and checkpoint files.
func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailPanic:
		return "panic"
	case FailHung:
		return "hung"
	case FailLeak:
		return "leak"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// MarshalJSON writes the kind by name so checkpoint files stay readable.
func (k FailureKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the name form written by MarshalJSON.
func (k *FailureKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, c := range []FailureKind{FailNone, FailPanic, FailHung, FailLeak} {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("sched: unknown failure kind %q", s)
}

// FailureKind classifies the outcome's runtime failure, FailNone if the
// execution is usable. Precedence follows severity of the evidence: a panic
// outranks a hang (the panic is the primary event), and a hang outranks a
// goroutine leak (abandoned executions leak by design, which is accounted
// separately in LeakedThreads).
func (o *Outcome) FailureKind() FailureKind {
	switch {
	case o.Err != nil:
		return FailPanic
	case o.Hung:
		return FailHung
	case o.LeakedGoroutines > 0:
		return FailLeak
	}
	return FailNone
}

// FailureError converts the outcome's failure into an error, nil when the
// execution did not fail. For panics it returns Outcome.Err itself, so
// callers that previously propagated Err observe identical errors.
func (o *Outcome) FailureError() error {
	switch o.FailureKind() {
	case FailPanic:
		return o.Err
	case FailHung:
		return fmt.Errorf("sched: execution hung: thread %s made no progress within the watchdog interval (uninstrumented blocking or non-yielding spin); %d scheduler thread(s) abandoned", o.HungThread, len(o.LeakedThreads))
	case FailLeak:
		return fmt.Errorf("sched: execution leaked %d goroutine(s) spawned outside the scheduler", o.LeakedGoroutines)
	}
	return nil
}
