package sched_test

import (
	"testing"

	"lineup/internal/sched"
	"lineup/internal/telemetry"
)

// allocProgram is the steady-state workload of the allocation guard: two
// threads of two recorded operations each, the shape every phase-2
// exploration runs thousands of times.
func allocProgram() sched.Program {
	return sched.Program{Threads: []func(*sched.Thread){opThread(2, "a"), opThread(2, "b")}}
}

func exploreAllocWorkload(b testing.TB, reduction sched.Reduction, tel *telemetry.Collector) int {
	execs := 0
	_, err := sched.Explore(sched.ExploreConfig{
		PreemptionBound: 2,
		Reduction:       reduction,
		Telemetry:       tel,
	}, allocProgram(), func(o *sched.Outcome) bool {
		execs++
		return true
	})
	if err != nil {
		b.Fatalf("explore: %v", err)
	}
	return execs
}

// BenchmarkExploreAllocs measures the explorer's per-exploration allocation
// behavior; run with -benchmem to see allocs/op. The paired regression test
// below turns the same workload into a hard ceiling.
func BenchmarkExploreAllocs(b *testing.B) {
	for _, bc := range []struct {
		name      string
		reduction sched.Reduction
	}{
		{"full", sched.ReductionNone},
		{"sleep", sched.ReductionSleep},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exploreAllocWorkload(b, bc.reduction, nil)
			}
		})
		b.Run(bc.name+"-telemetry", func(b *testing.B) {
			b.ReportAllocs()
			tel := telemetry.New()
			for i := 0; i < b.N; i++ {
				exploreAllocWorkload(b, bc.reduction, tel)
			}
		})
	}
}

// TestExploreAllocsPerExecution is the allocation regression guard for the
// DFS hot path: each steady-state execution (goroutine spin-up, event and
// schedule recording, outcome delivery) must stay under a fixed allocation
// budget. The ceilings have ~40% headroom over measured values; a hot-path
// change that starts allocating per decision or per event blows through
// them immediately. Every workload also runs with a live telemetry
// collector under the SAME ceiling: the counters are plain atomic adds with
// per-execution delta flushes, so enabling them must not add a single
// allocation to the hot path.
func TestExploreAllocsPerExecution(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	for _, tc := range []struct {
		name      string
		reduction sched.Reduction
		ceiling   float64 // allocs per execution
	}{
		{"full", sched.ReductionNone, 60},
		{"sleep", sched.ReductionSleep, 80},
	} {
		for _, tel := range []*telemetry.Collector{nil, telemetry.New()} {
			name := tc.name
			if tel != nil {
				name += "-telemetry"
			}
			t.Run(name, func(t *testing.T) {
				execs := exploreAllocWorkload(t, tc.reduction, tel)
				if execs == 0 {
					t.Fatal("workload ran no executions")
				}
				perRun := testing.AllocsPerRun(5, func() {
					exploreAllocWorkload(t, tc.reduction, tel)
				})
				perExec := perRun / float64(execs)
				t.Logf("%s: %.0f allocs per exploration, %.1f per execution (%d executions)",
					name, perRun, perExec, execs)
				if perExec > tc.ceiling {
					t.Errorf("%s: %.1f allocs per execution exceeds the %.0f ceiling",
						name, perExec, tc.ceiling)
				}
			})
		}
	}
}
