package monitor

import (
	"errors"

	"lineup/internal/history"
)

// NaiveCheck is an independent brute-force reference for Check: it
// enumerates every linearization of the history's operations that respects
// the precedence order <H (and program order, which <H subsumes within a
// thread), replays the model from its initial state at each complete
// candidate order, and accepts if any replay reproduces the recorded
// results. No memoization, no partitioning, no result-guided pruning — the
// naive permutation search that BenchmarkMonitorVsEnumeration measures the
// memoized search against, and the oracle the package's property tests
// cross-validate against.
func NaiveCheck(m *Model, h *history.History, opts Options) (bool, error) {
	pending := h.Pending()
	mode := opts.Mode
	if mode == ModeAuto {
		if h.Stuck {
			mode = ModeGeneralized
		} else {
			mode = ModeClassic
		}
	}
	switch {
	case len(pending) == 0:
		return naiveSearch(m, h, "")
	case mode == ModeClassic:
		return naiveSearch(m, h, "")
	default:
		for _, e := range pending {
			ok, err := naiveSearch(m, Reduce(h, e), e.Name)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
}

// naiveSearch enumerates candidate orders over h's operations. Complete
// operations are mandatory; pending operations are optional (classic
// treatment) unless stuckOp is set, in which case h must be a reduced
// history whose completed operations all linearize before stuckOp blocks.
func naiveSearch(m *Model, h *history.History, stuckOp string) (bool, error) {
	var ops []history.Op
	for _, op := range h.Ops() {
		if !op.Complete && stuckOp != "" {
			continue // the reduced history's pending op is only probed at the end
		}
		ops = append(ops, op)
	}
	n := len(ops)
	used := make([]bool, n)
	order := make([]int, 0, n)
	mustLeft := 0
	for _, op := range ops {
		if op.Complete {
			mustLeft++
		}
	}

	replay := func() (bool, error) {
		state := m.Init()
		for _, idx := range order {
			res, next, err := m.Step(state, ops[idx].Name)
			if errors.Is(err, ErrBlock) {
				return false, nil
			}
			if err != nil {
				return false, err
			}
			if ops[idx].Complete && res != ops[idx].Result {
				return false, nil
			}
			state = next
		}
		if stuckOp != "" {
			if _, _, err := m.Step(state, stuckOp); !errors.Is(err, ErrBlock) {
				if err != nil {
					return false, err
				}
				return false, nil
			}
		}
		return true, nil
	}

	var rec func() (bool, error)
	rec = func() (bool, error) {
		if mustLeft == 0 {
			if ok, err := replay(); ok || err != nil {
				return ok, err
			}
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			enabled := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && history.Precedes(ops[j], ops[i]) {
					enabled = false
					break
				}
			}
			if !enabled {
				continue
			}
			used[i] = true
			order = append(order, i)
			if ops[i].Complete {
				mustLeft--
			}
			ok, err := rec()
			if ops[i].Complete {
				mustLeft++
			}
			order = order[:len(order)-1]
			used[i] = false
			if ok || err != nil {
				return ok, err
			}
		}
		return false, nil
	}
	return rec()
}
