package monitor

import "lineup/internal/history"

// partition splits h into P-compositional parts using the model's Partition
// function: every operation maps to the key of the independent sub-object it
// touches, events are grouped by key with their relative order preserved,
// and each part is checked against a fresh initial state. The split degrades
// to a single part when the model is monolithic, when partitioning is
// disabled, when any operation touches the whole object, or when all
// operations share one key. The returned key slice is aligned with the
// parts ("" for the unsplit case) and sorted by first appearance.
func partition(m *Model, h *history.History, opts Options) ([]*history.History, []string) {
	whole := []*history.History{h}
	if m.Partition == nil || opts.NoPartition {
		return whole, []string{""}
	}
	byKey := make(map[string]*history.History)
	var keys []string
	for _, ev := range h.Events {
		if ev.Kind != history.Call {
			continue
		}
		if _, ok := m.Partition(ev.Op); !ok {
			return whole, []string{""} // a whole-object op forbids splitting
		}
	}
	for _, ev := range h.Events {
		key, _ := m.Partition(ev.Op)
		part := byKey[key]
		if part == nil {
			part = &history.History{Stuck: h.Stuck}
			byKey[key] = part
			keys = append(keys, key)
		}
		part.Events = append(part.Events, ev)
	}
	if len(keys) <= 1 {
		return whole, []string{""}
	}
	parts := make([]*history.History, len(keys))
	for i, k := range keys {
		parts[i] = byKey[k]
	}
	return parts, keys
}
