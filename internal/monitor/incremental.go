package monitor

import (
	"errors"
	"fmt"
	"sort"

	"lineup/internal/history"
)

// Incremental is the windowed face of the witness search: it judges one
// P-compositional part of a history a window at a time, in bounded memory,
// instead of holding the whole history for a single batch Check.
//
// The soundness argument is the quiescent-cut decomposition. A caller may
// only close a window at a quiescent point of the part — a moment with no
// open operations — so every operation of the window precedes (in the <H
// real-time order) every operation that arrives later. Any witness of the
// full history is then a linearization of the window followed by a
// linearization of the rest, and conversely. Because a window can have many
// witnesses ending in behaviorally different model states, Incremental
// carries a *frontier*: the set of all model states reachable by linearizing
// everything consumed so far (deduplicated by fingerprint). A window is
// accepted if it linearizes from at least one frontier state; the new
// frontier is the union of the final states of all its linearizations from
// all old frontier states. This makes the incremental verdict equal to the
// batch Check verdict on the concatenated history — not merely sound but
// complete — while the retired prefix is forgotten entirely.
//
// Incremental is not safe for concurrent use; the streaming service gives
// each partition to exactly one worker.
type Incremental struct {
	m    *Model
	opts Options

	frontier []any    // states reachable by linearizing the consumed prefix
	fps      []string // fingerprints of frontier, aligned and sorted
	consumed int      // completed operations retired so far
	stats    Stats
}

// ErrWindowNotQuiescent is returned by ExtendComplete for a window that
// still contains pending operations: the cut would not be quiescent and the
// decomposition unsound.
var ErrWindowNotQuiescent = errors.New("monitor: window contains pending operations (cut is not quiescent)")

// NewIncremental creates an incremental checker whose frontier is the
// model's initial state. Options.Mode applies to Finish; partitioning does
// not apply (the caller splits the history before windowing).
func NewIncremental(m *Model, opts Options) (*Incremental, error) {
	if m == nil || m.Init == nil || m.Step == nil {
		return nil, errors.New("monitor: model must define Init and Step")
	}
	inc := &Incremental{m: m, opts: opts}
	inc.SetFrontier([]any{m.Init()})
	return inc, nil
}

// FrontierSize returns the number of distinct model states in the frontier.
func (inc *Incremental) FrontierSize() int { return len(inc.frontier) }

// FrontierStates returns the frontier states, ordered by fingerprint.
func (inc *Incremental) FrontierStates() []any {
	return append([]any(nil), inc.frontier...)
}

// FrontierFingerprints returns the sorted state fingerprints of the
// frontier, the canonical summary used by checkpointing and the window
// dedup cache.
func (inc *Incremental) FrontierFingerprints() []string {
	return append([]string(nil), inc.fps...)
}

// SetFrontier replaces the frontier (checkpoint restore, or dedup-cache
// reuse of a previously computed transition). States with equal fingerprints
// are collapsed; the frontier is re-sorted canonically.
func (inc *Incremental) SetFrontier(states []any) {
	seen := make(map[string]any, len(states))
	for _, s := range states {
		fp := inc.fingerprint(s)
		if _, ok := seen[fp]; !ok {
			seen[fp] = s
		}
	}
	inc.frontier = inc.frontier[:0]
	inc.fps = inc.fps[:0]
	for fp := range seen {
		inc.fps = append(inc.fps, fp)
	}
	sort.Strings(inc.fps)
	for _, fp := range inc.fps {
		inc.frontier = append(inc.frontier, seen[fp])
	}
}

// Consumed returns the number of completed operations retired so far.
func (inc *Incremental) Consumed() int { return inc.consumed }

// Stats returns the accumulated search measurements.
func (inc *Incremental) Stats() Stats { return inc.stats }

func (inc *Incremental) fingerprint(state any) string {
	if inc.m.Fingerprint != nil {
		return inc.m.Fingerprint(state)
	}
	return fmt.Sprintf("%#v", state)
}

// ExtendComplete consumes one window whose operations are all complete and
// whose right edge is a quiescent cut of the part. It reports whether the
// window linearizes from any frontier state; on true the frontier advances
// to the final states of every complete linearization, on false the part
// (and therefore the whole history) is not linearizable and the checker
// stays failed: the frontier empties and every further window reports false.
// Model code runs inside, so panics are contained as errors.
func (inc *Incremental) ExtendComplete(h *history.History) (ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("monitor: model panicked during witness search: %v", r)
		}
	}()
	for _, op := range h.Ops() {
		if !op.Complete {
			return false, ErrWindowNotQuiescent
		}
	}
	finals := make(map[string]any)
	visited, memoHits := 0, 0
	defer func() {
		inc.stats.Visited += visited
		inc.stats.MemoHits += memoHits
		if c := inc.opts.Telemetry; c != nil {
			c.WitnessNodes.Add(int64(visited))
			c.MonitorMemoHits.Add(int64(memoHits))
		}
	}()
	for _, state := range inc.frontier {
		s, serr := newSearcher(inc.m, h, kindComplete, inc.opts)
		if serr != nil {
			return false, serr
		}
		if serr := s.searchAll(newMask(len(s.all)), state, finals); serr != nil {
			return false, serr
		}
		visited += s.visited
		memoHits += s.memoHits
	}
	if inc.stats.Parts == 0 {
		inc.stats.Parts = 1
	}
	next := make([]any, 0, len(finals))
	for _, st := range finals {
		next = append(next, st)
	}
	inc.SetFrontier(next)
	if len(inc.frontier) == 0 {
		return false, nil
	}
	inc.consumed += len(h.Ops())
	return true, nil
}

// Finish judges the residual window — the events after the last quiescent
// cut, which may include pending operations and the stuck marker — from the
// current frontier, completing the incremental check. The verdict equals a
// batch Check of the whole part. Finish does not consume the window, so it
// may be called repeatedly as a read-only probe (e.g. for a live verdict
// endpoint) and the part can still be extended afterwards.
func (inc *Incremental) Finish(h *history.History) (*Outcome, error) {
	if len(inc.frontier) == 0 {
		return &Outcome{Linearizable: false, Stats: inc.stats}, nil
	}
	if len(h.Events) == 0 && !h.Stuck {
		return &Outcome{Linearizable: true, Stats: inc.stats}, nil
	}
	opts := inc.opts
	opts.NoPartition = true // the stream is already split; parts re-split here would restart from Init
	var last *Outcome
	for _, state := range inc.frontier {
		state := state
		m := *inc.m
		m.Init = func() any { return state }
		out, err := Check(&m, h, opts)
		if err != nil {
			return nil, err
		}
		inc.stats.Visited += out.Stats.Visited
		inc.stats.MemoHits += out.Stats.MemoHits
		out.Stats = inc.stats
		if out.Linearizable {
			return out, nil
		}
		last = out
	}
	return last, nil
}

// searchAll enumerates every complete linearization reachable from (cur,
// state), collecting the final model states into finals keyed by
// fingerprint. The memo set is reused with enumerate semantics: a key marks
// a configuration whose whole subtree has been expanded, so its reachable
// final states are already collected — revisits are pruned without losing
// completeness. Only kindComplete searchers may use it (every op is in
// must).
func (s *searcher) searchAll(cur mask, state any, finals map[string]any) error {
	if cur.covers(s.must) {
		fp := s.fingerprint(state)
		if _, ok := finals[fp]; !ok {
			finals[fp] = state
		}
		return nil
	}
	var key string
	if !s.opts.NoMemo {
		key = cur.key(s.fingerprint(state))
		if s.memo[key] {
			s.memoHits++
			return nil
		}
	}
	s.visited++
	if s.visited > s.opts.maxStates() {
		return fmt.Errorf("%w (limit %d)", ErrStateLimit, s.opts.maxStates())
	}
	for i := range s.ops {
		if cur.has(i) || !cur.covers(s.pred[i]) {
			continue
		}
		res, next, err := s.m.Step(state, s.ops[i].Name)
		if errors.Is(err, ErrBlock) {
			continue
		}
		if err != nil {
			return err
		}
		if res != s.ops[i].Result {
			continue
		}
		cur.set(i)
		if err := s.searchAll(cur, next, finals); err != nil {
			return err
		}
		cur.clear(i)
	}
	if !s.opts.NoMemo {
		s.memo[key] = true
	}
	return nil
}
