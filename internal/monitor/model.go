// Package monitor is a standalone linearizability monitor: it decides
// whether a single recorded concurrent history — calls and returns with the
// precedence order <H of the paper's Section 2, including pending (possibly
// stuck) operations — is linearizable with respect to an executable
// deterministic sequential model, by direct witness search instead of the
// phase-1 specification enumeration of Fig. 5.
//
// The search is the Wing–Gong backtracking algorithm with Lowe's
// improvements: a memoized seen-set keyed on (linearized-op-set, model-state
// fingerprint) prunes revisits of equivalent search nodes, and
// P-compositional partitioning (Horn & Kroening) splits the history into
// independent sub-histories when the model declares a partition function,
// checking the parts independently (and in parallel). Pending operations are
// treated either per the generalized Definitions 2/3 (stuck histories need
// stuck serial witnesses) or per the classic Definition 1 (pending calls may
// be completed with any result the model admits, or dropped).
package monitor

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBlock is the sentinel a model's Step returns when the operation blocks
// (does not return) in the given state — e.g. Take() on an empty queue. The
// search treats a blocked operation as disabled; the generalized stuck check
// requires exactly this outcome for the pending operation.
var ErrBlock = errors.New("monitor: operation blocks in this state")

// ErrUnknownOp is returned (wrapped) by a model's Step for an operation it
// does not implement; it aborts the whole check rather than failing it.
var ErrUnknownOp = errors.New("monitor: operation unknown to the model")

// Model is an executable deterministic sequential specification. States must
// be treated as immutable: Step returns a fresh state and must not modify
// its argument, because the backtracking search re-enters earlier states.
type Model struct {
	// Name identifies the model, e.g. "queue".
	Name string
	// Init returns the initial state.
	Init func() any
	// Step applies one operation (by display name, e.g. "Enqueue(10)") to a
	// state and returns the canonical result string and the successor state.
	// It returns ErrBlock if the operation blocks in this state and an error
	// wrapping ErrUnknownOp for operations outside the model's vocabulary.
	Step func(state any, op string) (result string, next any, err error)
	// Fingerprint canonicalizes a state for the memoized seen-set. Two
	// states with equal fingerprints must be behaviorally identical.
	Fingerprint func(state any) string
	// Partition maps an operation to the key of the independent sub-object
	// it touches (P-compositionality): histories are split by key and the
	// parts checked separately against fresh initial states. Return ok=false
	// for operations that observe the whole object (e.g. Count()), which
	// disables partitioning of the history. A nil Partition means the model
	// is monolithic.
	Partition func(op string) (key string, ok bool)
	// EncodeState and DecodeState serialize a model state for durable
	// checkpoints (the streaming service persists per-partition state
	// frontiers across restarts). They must round-trip: DecodeState of an
	// EncodeState output yields a behaviorally identical state. Both nil is
	// fine for models that are never checkpointed.
	EncodeState func(state any) ([]byte, error)
	DecodeState func(data []byte) (any, error)
}

// SplitOp separates an operation display name "Method(args)" into its method
// and rendered argument list (e.g. "Add(200)" -> "Add", "200").
func SplitOp(name string) (method, args string) {
	i := strings.IndexByte(name, '(')
	if i < 0 || !strings.HasSuffix(name, ")") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// unknownOp builds the canonical unknown-operation error for model m.
func unknownOp(m *Model, op string) error {
	return fmt.Errorf("%w: %s model cannot apply %q", ErrUnknownOp, m.Name, op)
}
