package monitor

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
)

// Result-string conventions shared with the checked collections: void
// operations return "ok", failed try-operations return "Fail", booleans
// render "true"/"false", and snapshots render "[a b c]".
const (
	okResult   = "ok"
	failResult = "Fail"
)

func boolResult(v bool) string { return strconv.FormatBool(v) }

// jsonStateCodec installs EncodeState/DecodeState that round-trip the model's
// state representation T through JSON. Every built-in model declares one, so
// the streaming service can checkpoint its per-partition state frontiers.
func jsonStateCodec[T any](m *Model) {
	m.EncodeState = func(state any) ([]byte, error) { return json.Marshal(state.(T)) }
	m.DecodeState = func(data []byte) (any, error) {
		var v T
		if err := json.Unmarshal(data, &v); err != nil {
			return nil, err
		}
		return v, nil
	}
}

// Builtin returns a built-in model by name (see BuiltinNames).
func Builtin(name string) (*Model, bool) {
	switch name {
	case "queue":
		return QueueModel(), true
	case "stack":
		return StackModel(), true
	case "set":
		return SetModel(), true
	case "register":
		return RegisterModel(), true
	case "pqueue":
		return PQueueModel(), true
	case "counter":
		return CounterModel(), true
	case "mre":
		return MREModel(), true
	}
	return nil, false
}

// BuiltinNames lists the built-in models in display order.
func BuiltinNames() []string {
	return []string{"queue", "stack", "set", "register", "pqueue", "counter", "mre"}
}

// QueueModel is a FIFO queue: Enqueue/Add/Put append and return "ok";
// TryDequeue/TryTake/TryPeek return the front element or "Fail";
// Dequeue/Take/Peek block on an empty queue; Count, IsEmpty and ToArray
// observe the contents. It matches the serial behavior of the repository's
// ConcurrentQueue and BlockingCollection vocabularies.
func QueueModel() *Model {
	m := &Model{Name: "queue", Init: func() any { return []string(nil) }}
	jsonStateCodec[[]string](m)
	m.Fingerprint = func(state any) string { return strings.Join(state.([]string), ",") }
	m.Step = func(state any, op string) (string, any, error) {
		q := state.([]string)
		method, args := SplitOp(op)
		switch method {
		case "Enqueue", "Add", "Put":
			return okResult, append(q[:len(q):len(q)], args), nil
		case "TryDequeue", "TryTake":
			if len(q) == 0 {
				return failResult, q, nil
			}
			return q[0], q[1:], nil
		case "Dequeue", "Take":
			if len(q) == 0 {
				return "", nil, ErrBlock
			}
			return q[0], q[1:], nil
		case "TryPeek":
			if len(q) == 0 {
				return failResult, q, nil
			}
			return q[0], q, nil
		case "Peek":
			if len(q) == 0 {
				return "", nil, ErrBlock
			}
			return q[0], q, nil
		case "Count":
			return strconv.Itoa(len(q)), q, nil
		case "IsEmpty":
			return boolResult(len(q) == 0), q, nil
		case "ToArray":
			return "[" + strings.Join(q, " ") + "]", q, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// StackModel is a LIFO stack: Push returns "ok", TryPop/TryPeek return the
// top element or "Fail", Pop blocks on an empty stack, ToArray snapshots
// top-first.
func StackModel() *Model {
	m := &Model{Name: "stack", Init: func() any { return []string(nil) }}
	jsonStateCodec[[]string](m)
	m.Fingerprint = func(state any) string { return strings.Join(state.([]string), ",") }
	m.Step = func(state any, op string) (string, any, error) {
		s := state.([]string)
		method, args := SplitOp(op)
		switch method {
		case "Push":
			return okResult, append(s[:len(s):len(s)], args), nil
		case "TryPop":
			if len(s) == 0 {
				return failResult, s, nil
			}
			return s[len(s)-1], s[:len(s)-1], nil
		case "Pop":
			if len(s) == 0 {
				return "", nil, ErrBlock
			}
			return s[len(s)-1], s[:len(s)-1], nil
		case "TryPeek":
			if len(s) == 0 {
				return failResult, s, nil
			}
			return s[len(s)-1], s, nil
		case "Count":
			return strconv.Itoa(len(s)), s, nil
		case "IsEmpty":
			return boolResult(len(s) == 0), s, nil
		case "ToArray":
			rev := make([]string, len(s))
			for i, v := range s {
				rev[len(s)-1-i] = v
			}
			return "[" + strings.Join(rev, " ") + "]", s, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// SetModel is a mathematical set of rendered values: Add and Remove report
// whether they changed the set, Contains tests membership, Count observes
// the size. Add/Remove/Contains touch only their element, so the model
// declares a per-value partition (P-compositionality); Count is a
// whole-object observer and disables splitting.
func SetModel() *Model {
	m := &Model{Name: "set", Init: func() any { return []string(nil) }}
	jsonStateCodec[[]string](m)
	m.Fingerprint = func(state any) string { return strings.Join(state.([]string), ",") }
	m.Partition = func(op string) (string, bool) {
		method, args := SplitOp(op)
		switch method {
		case "Add", "Remove", "Contains":
			return args, true
		}
		return "", false
	}
	m.Step = func(state any, op string) (string, any, error) {
		s := state.([]string)
		method, args := SplitOp(op)
		i := sort.SearchStrings(s, args)
		present := i < len(s) && s[i] == args
		switch method {
		case "Add":
			if present {
				return boolResult(false), s, nil
			}
			next := make([]string, 0, len(s)+1)
			next = append(next, s[:i]...)
			next = append(next, args)
			next = append(next, s[i:]...)
			return boolResult(true), next, nil
		case "Remove":
			if !present {
				return boolResult(false), s, nil
			}
			next := make([]string, 0, len(s)-1)
			next = append(next, s[:i]...)
			next = append(next, s[i+1:]...)
			return boolResult(true), next, nil
		case "Contains":
			return boolResult(present), s, nil
		case "Count":
			return strconv.Itoa(len(s)), s, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// RegisterModel is a single read/write register initialized to "0": Write
// returns "ok", Read returns the current value, CAS(old,new) swaps and
// reports success.
func RegisterModel() *Model {
	m := &Model{Name: "register", Init: func() any { return "0" }}
	jsonStateCodec[string](m)
	m.Fingerprint = func(state any) string { return state.(string) }
	m.Step = func(state any, op string) (string, any, error) {
		v := state.(string)
		method, args := SplitOp(op)
		switch method {
		case "Read", "Get":
			return v, v, nil
		case "Write", "Set":
			return okResult, args, nil
		case "CAS":
			parts := strings.SplitN(args, ",", 2)
			if len(parts) == 2 && strings.TrimSpace(parts[0]) == v {
				return boolResult(true), strings.TrimSpace(parts[1]), nil
			}
			return boolResult(false), v, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// CounterModel is the Section 2.2 counter: Inc and Dec return "ok", Get
// returns the current count.
func CounterModel() *Model {
	m := &Model{Name: "counter", Init: func() any { return 0 }}
	jsonStateCodec[int](m)
	m.Fingerprint = func(state any) string { return strconv.Itoa(state.(int)) }
	m.Step = func(state any, op string) (string, any, error) {
		n := state.(int)
		method, _ := SplitOp(op)
		switch method {
		case "Inc", "Increment":
			return okResult, n + 1, nil
		case "Dec", "Decrement":
			return okResult, n - 1, nil
		case "Get", "Count":
			return strconv.Itoa(n), n, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// MREModel is a manual-reset event (the Fig. 9 class): Set and Reset return
// "ok", IsSet observes the flag, WaitOne(0) polls it, and Wait blocks until
// the event is set.
func MREModel() *Model {
	m := &Model{Name: "mre", Init: func() any { return false }}
	jsonStateCodec[bool](m)
	m.Fingerprint = func(state any) string { return boolResult(state.(bool)) }
	m.Step = func(state any, op string) (string, any, error) {
		set := state.(bool)
		method, _ := SplitOp(op)
		switch method {
		case "Set":
			return okResult, true, nil
		case "Reset":
			return okResult, false, nil
		case "IsSet":
			return boolResult(set), set, nil
		case "WaitOne":
			return boolResult(set), set, nil
		case "Wait":
			if !set {
				return "", nil, ErrBlock
			}
			return okResult, set, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}

// PQueueModel is a min-priority queue: Insert/Add/Put place an element and
// return "ok"; TryDeleteMin/TryRemoveMin remove and return the minimum or
// "Fail"; DeleteMin/RemoveMin block on an empty queue; TryPeekMin/PeekMin
// observe the minimum; Count and IsEmpty observe the size. Elements compare
// numerically when both parse as integers and lexicographically otherwise
// (the same order fast.Check uses, so the two stay cross-checkable).
func PQueueModel() *Model {
	m := &Model{Name: "pqueue", Init: func() any { return []string(nil) }}
	jsonStateCodec[[]string](m)
	m.Fingerprint = func(state any) string { return strings.Join(state.([]string), ",") }
	less := func(a, b string) bool {
		ai, aerr := strconv.Atoi(a)
		bi, berr := strconv.Atoi(b)
		if aerr == nil && berr == nil {
			return ai < bi
		}
		return a < b
	}
	m.Step = func(state any, op string) (string, any, error) {
		q := state.([]string)
		method, args := SplitOp(op)
		switch method {
		case "Insert", "Add", "Put":
			// Keep the state sorted so equal multisets fingerprint equally.
			i := sort.Search(len(q), func(i int) bool { return !less(q[i], args) })
			next := make([]string, 0, len(q)+1)
			next = append(next, q[:i]...)
			next = append(next, args)
			next = append(next, q[i:]...)
			return okResult, next, nil
		case "TryDeleteMin", "TryRemoveMin":
			if len(q) == 0 {
				return failResult, q, nil
			}
			return q[0], q[1:], nil
		case "DeleteMin", "RemoveMin":
			if len(q) == 0 {
				return "", nil, ErrBlock
			}
			return q[0], q[1:], nil
		case "TryPeekMin":
			if len(q) == 0 {
				return failResult, q, nil
			}
			return q[0], q, nil
		case "PeekMin":
			if len(q) == 0 {
				return "", nil, ErrBlock
			}
			return q[0], q, nil
		case "Count":
			return strconv.Itoa(len(q)), q, nil
		case "IsEmpty":
			return boolResult(len(q) == 0), q, nil
		}
		return "", nil, unknownOp(m, op)
	}
	return m
}
