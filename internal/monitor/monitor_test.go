package monitor_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lineup/internal/history"
	"lineup/internal/monitor"
)

// hb incrementally builds well-formed histories for tests.
type hb struct {
	h    history.History
	next int
	open map[int]int // thread -> op index of its open call
	name map[int]string
}

func newHB() *hb { return &hb{open: map[int]int{}, name: map[int]string{}} }

func (b *hb) call(t int, op string) *hb {
	if _, ok := b.open[t]; ok {
		panic("hb: thread already has an open call")
	}
	b.open[t] = b.next
	b.name[b.next] = op
	b.h.Events = append(b.h.Events, history.Event{Thread: t, Kind: history.Call, Op: op, Index: b.next})
	b.next++
	return b
}

func (b *hb) ret(t int, result string) *hb {
	idx, ok := b.open[t]
	if !ok {
		panic("hb: return without open call")
	}
	delete(b.open, t)
	b.h.Events = append(b.h.Events, history.Event{Thread: t, Kind: history.Return, Op: b.name[idx], Result: result, Index: idx})
	return b
}

func (b *hb) stuck() *hb { b.h.Stuck = true; return b }

func (b *hb) done() *history.History { return &b.h }

// op builds one complete serial operation (call immediately followed by its
// return).
func (b *hb) op(t int, op, result string) *hb { return b.call(t, op).ret(t, result) }

func mustCheck(t *testing.T, m *monitor.Model, h *history.History, opts monitor.Options) *monitor.Outcome {
	t.Helper()
	out, err := monitor.Check(m, h, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return out
}

func TestQueueSequentialWitness(t *testing.T) {
	h := newHB().op(0, "Enqueue(10)", "ok").op(1, "TryDequeue()", "10").done()
	out := mustCheck(t, monitor.QueueModel(), h, monitor.Options{})
	if !out.Linearizable {
		t.Fatalf("expected linearizable, got %+v", out)
	}
	if len(out.Witness) != 2 || out.Witness[0].Op != "Enqueue(10)" {
		t.Fatalf("bad witness: %v", out.Witness)
	}
}

func TestQueueFig1ShapeViolation(t *testing.T) {
	// Enqueue(10) completed strictly before TryDequeue was even called, yet
	// TryDequeue failed — the Fig. 1 TryTake-on-non-empty shape.
	h := newHB().op(0, "Enqueue(10)", "ok").op(1, "TryDequeue()", "Fail").done()
	out := mustCheck(t, monitor.QueueModel(), h, monitor.Options{})
	if out.Linearizable {
		t.Fatal("expected a violation")
	}
}

func TestOverlapPermitsReordering(t *testing.T) {
	// TryDequeue is called before Enqueue, but they overlap, so the witness
	// may order the enqueue first.
	b := newHB()
	b.call(0, "TryDequeue()")
	b.op(1, "Enqueue(10)", "ok")
	b.ret(0, "10")
	out := mustCheck(t, monitor.QueueModel(), b.done(), monitor.Options{})
	if !out.Linearizable {
		t.Fatal("overlapping ops should permit the reordering")
	}
}

func TestStuckPendingClassicVsGeneralized(t *testing.T) {
	// Take() is stuck although the queue is non-empty: justified under the
	// classic Definition 1 (the pending call is simply dropped), rejected
	// under the generalized Definition 3 (Take cannot block here).
	h := newHB().op(0, "Enqueue(10)", "ok").call(1, "Take()").stuck().done()
	classic := mustCheck(t, monitor.QueueModel(), h, monitor.Options{Mode: monitor.ModeClassic})
	if !classic.Linearizable {
		t.Fatal("classic mode must accept the dropped pending Take")
	}
	gen := mustCheck(t, monitor.QueueModel(), h, monitor.Options{Mode: monitor.ModeGeneralized})
	if gen.Linearizable {
		t.Fatal("generalized mode must reject Take stuck on a non-empty queue")
	}
	if gen.FailedPending == nil || gen.FailedPending.Name != "Take()" {
		t.Fatalf("expected Take() as the unjustified pending op, got %v", gen.FailedPending)
	}
}

func TestStuckPendingJustified(t *testing.T) {
	// Take() stuck on an emptied queue is a legitimate stuck history.
	h := newHB().op(0, "Enqueue(10)", "ok").op(1, "TryDequeue()", "10").call(0, "Take()").stuck().done()
	out := mustCheck(t, monitor.QueueModel(), h, monitor.Options{})
	if !out.Linearizable {
		t.Fatalf("Take on an empty queue blocks legitimately: %+v", out)
	}
}

func TestMREFig9Shape(t *testing.T) {
	// Wait is stuck although Set completed after every Reset — the Fig. 9
	// lost-wakeup shape.
	h := newHB().op(1, "Set()", "ok").op(1, "Reset()", "ok").op(1, "Set()", "ok").call(0, "Wait()").stuck().done()
	out := mustCheck(t, monitor.MREModel(), h, monitor.Options{})
	if out.Linearizable {
		t.Fatal("Wait stuck after a final Set must be a violation")
	}
	// With a trailing Reset the stuck Wait is justified.
	h2 := newHB().op(1, "Set()", "ok").op(1, "Reset()", "ok").call(0, "Wait()").stuck().done()
	out2 := mustCheck(t, monitor.MREModel(), h2, monitor.Options{})
	if !out2.Linearizable {
		t.Fatal("Wait stuck after Reset is justified")
	}
}

func TestClassicCompletesPendingOp(t *testing.T) {
	// TryDequeue returned 10 although the Enqueue(10) never returned: the
	// classic check may linearize the pending enqueue to justify it.
	b := newHB()
	b.call(0, "Enqueue(10)")
	b.op(1, "TryDequeue()", "10")
	h := b.done()
	out := mustCheck(t, monitor.QueueModel(), h, monitor.Options{Mode: monitor.ModeClassic})
	if !out.Linearizable {
		t.Fatal("classic mode must complete the pending Enqueue")
	}
}

func TestPartitioningSplitsSetHistory(t *testing.T) {
	h := newHB().
		op(0, "Add(1)", "true").op(1, "Add(2)", "true").
		op(0, "Contains(2)", "true").op(1, "Remove(1)", "true").
		done()
	out := mustCheck(t, monitor.SetModel(), h, monitor.Options{})
	if !out.Linearizable || out.Stats.Parts != 2 {
		t.Fatalf("expected 2 linearizable parts, got %+v", out)
	}
	// Count observes the whole set and must disable the split.
	h2 := newHB().op(0, "Add(1)", "true").op(1, "Count()", "1").done()
	out2 := mustCheck(t, monitor.SetModel(), h2, monitor.Options{})
	if out2.Stats.Parts != 1 {
		t.Fatalf("Count must force a single part, got %+v", out2.Stats)
	}
	// And NoPartition forces a single part unconditionally.
	out3 := mustCheck(t, monitor.SetModel(), h, monitor.Options{NoPartition: true})
	if out3.Stats.Parts != 1 || !out3.Linearizable {
		t.Fatalf("NoPartition violated: %+v", out3)
	}
}

func TestPartitionedViolationReportsPart(t *testing.T) {
	// The value-2 part is contradictory (Contains(2) true before any Add(2)
	// with Add(2) completing strictly later).
	h := newHB().
		op(0, "Add(1)", "true").
		op(0, "Contains(2)", "true").op(1, "Add(2)", "true").
		done()
	out := mustCheck(t, monitor.SetModel(), h, monitor.Options{})
	if out.Linearizable || out.FailedPart != "2" {
		t.Fatalf("expected part 2 to fail, got %+v", out)
	}
}

func TestMemoizationPrunes(t *testing.T) {
	// Two rounds of three concurrent Inc()s followed by an impossible
	// Get()=7: the whole interleaving space must be refuted, and since every
	// Inc order reaches the same counter state the seen-set must collapse the
	// permutations.
	b := newHB()
	b.call(0, "Inc()").call(1, "Inc()").call(2, "Inc()")
	b.ret(0, "ok").ret(1, "ok").ret(2, "ok")
	b.call(0, "Inc()").call(1, "Inc()").call(2, "Inc()")
	b.ret(0, "ok").ret(1, "ok").ret(2, "ok")
	b.op(0, "Get()", "7")
	h := b.done()
	memo := mustCheck(t, monitor.CounterModel(), h, monitor.Options{})
	plain := mustCheck(t, monitor.CounterModel(), h, monitor.Options{NoMemo: true})
	if memo.Linearizable || plain.Linearizable {
		t.Fatal("Get()=7 after six Incs must be a violation")
	}
	if memo.Stats.MemoHits == 0 {
		t.Fatal("expected seen-set hits on the permutation-heavy history")
	}
	if memo.Stats.Visited >= plain.Stats.Visited {
		t.Fatalf("memoization did not prune: %d vs %d nodes", memo.Stats.Visited, plain.Stats.Visited)
	}
}

func TestWitnessRespectsPrecedenceAndModel(t *testing.T) {
	b := newHB()
	b.op(0, "Enqueue(10)", "ok")
	b.call(0, "Enqueue(20)")
	b.op(1, "TryDequeue()", "10")
	b.ret(0, "ok")
	b.op(1, "TryDequeue()", "20")
	h := b.done()
	out := mustCheck(t, monitor.QueueModel(), h, monitor.Options{})
	if !out.Linearizable {
		t.Fatal("expected linearizable")
	}
	// Replaying the witness through the model must reproduce its results.
	m := monitor.QueueModel()
	state := m.Init()
	for _, step := range out.Witness {
		res, next, err := m.Step(state, step.Op)
		if err != nil || res != step.Result {
			t.Fatalf("witness step %v does not replay: res=%q err=%v", step, res, err)
		}
		state = next
	}
}

func TestUnknownOpAborts(t *testing.T) {
	h := newHB().op(0, "Frobnicate(7)", "ok").done()
	_, err := monitor.Check(monitor.QueueModel(), h, monitor.Options{})
	if !errors.Is(err, monitor.ErrUnknownOp) {
		t.Fatalf("expected ErrUnknownOp, got %v", err)
	}
}

func TestStateLimit(t *testing.T) {
	b := newHB()
	for th := 0; th < 3; th++ {
		b.call(th, "Enqueue(1)")
	}
	for th := 0; th < 3; th++ {
		b.ret(th, "ok")
	}
	b.op(0, "Count()", "99") // unsatisfiable, forces exhaustive search
	_, err := monitor.Check(monitor.QueueModel(), b.done(), monitor.Options{MaxStates: 2})
	if !errors.Is(err, monitor.ErrStateLimit) {
		t.Fatalf("expected ErrStateLimit, got %v", err)
	}
}

func TestMalformedHistoryRejected(t *testing.T) {
	h := &history.History{Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "Inc()", Index: 0},
		{Thread: 0, Kind: history.Call, Op: "Inc()", Index: 1},
	}}
	if _, err := monitor.Check(monitor.CounterModel(), h, monitor.Options{}); err == nil {
		t.Fatal("expected a well-formedness error")
	}
}

func TestEmptyHistory(t *testing.T) {
	out := mustCheck(t, monitor.QueueModel(), &history.History{}, monitor.Options{})
	if !out.Linearizable {
		t.Fatal("the empty history is trivially linearizable")
	}
}

// randomHistory builds a random well-formed history over the queue
// vocabulary, optionally leaving pending calls (and marking the history
// stuck).
func randomHistory(rng *rand.Rand, allowPending bool) *history.History {
	methods := []string{"Enqueue(1)", "Enqueue(2)", "TryDequeue()", "Count()", "IsEmpty()"}
	results := []string{"ok", "1", "2", "Fail", "0", "true", "false"}
	nThreads := 1 + rng.Intn(3)
	b := newHB()
	openBy := make(map[int]bool)
	opsLeft := 1 + rng.Intn(5)
	steps := 0
	for steps < 40 && (opsLeft > 0 || len(openBy) > 0) {
		steps++
		t := rng.Intn(nThreads)
		if openBy[t] {
			b.ret(t, results[rng.Intn(len(results))])
			delete(openBy, t)
			continue
		}
		if opsLeft > 0 {
			b.call(t, methods[rng.Intn(len(methods))])
			openBy[t] = true
			opsLeft--
			if allowPending && rng.Intn(6) == 0 {
				break // leave this (and any other open) call pending
			}
		}
	}
	h := b.done()
	if len(h.Pending()) > 0 && rng.Intn(2) == 0 {
		h.Stuck = true
	}
	return h
}

// TestCheckAgainstNaiveOracle cross-validates the memoized, partitioned
// search against the independent brute-force enumerator on random histories
// in every mode.
func TestCheckAgainstNaiveOracle(t *testing.T) {
	model := monitor.QueueModel()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHistory(rng, true)
		for _, mode := range []monitor.Mode{monitor.ModeAuto, monitor.ModeClassic, monitor.ModeGeneralized} {
			opts := monitor.Options{Mode: mode}
			out, err := monitor.Check(model, h, opts)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			want, err := monitor.NaiveCheck(model, h, opts)
			if err != nil {
				t.Fatalf("NaiveCheck: %v", err)
			}
			if out.Linearizable != want {
				t.Logf("mode=%d history:\n%s", mode, h)
				t.Logf("check=%v naive=%v", out.Linearizable, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSetPartitionAgainstNaive cross-validates the P-compositional split on
// random set histories against the unsplit brute force.
func TestSetPartitionAgainstNaive(t *testing.T) {
	model := monitor.SetModel()
	methods := []string{"Add(1)", "Add(2)", "Remove(1)", "Remove(2)", "Contains(1)", "Contains(2)"}
	results := []string{"true", "false"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newHB()
		openBy := make(map[int]bool)
		opsLeft := 1 + rng.Intn(6)
		for steps := 0; steps < 40 && (opsLeft > 0 || len(openBy) > 0); steps++ {
			t := rng.Intn(3)
			if openBy[t] {
				b.ret(t, results[rng.Intn(len(results))])
				delete(openBy, t)
			} else if opsLeft > 0 {
				b.call(t, methods[rng.Intn(len(methods))])
				openBy[t] = true
				opsLeft--
			}
		}
		h := b.done()
		out, err := monitor.Check(model, h, monitor.Options{})
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		want, err := monitor.NaiveCheck(model, h, monitor.Options{})
		if err != nil {
			t.Fatalf("NaiveCheck: %v", err)
		}
		if out.Linearizable != want {
			t.Logf("history:\n%s", h)
			t.Logf("check=%v (parts=%d) naive=%v", out.Linearizable, out.Stats.Parts, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
