package fast

import "sort"

// stackVal is the lifetime of one distinct value through a LIFO stack.
type stackVal struct {
	pushCall, pushRet int
	popCall, popRet   int
	popped            bool // has a pop operation in the history
	simPushed         bool // pushed in the greedy simulation
	simPopped         bool // pop linearization point already assigned
}

// checkStack decides a complete LIFO stack history over the unambiguous
// fragment: every push returns ok, every pop returns a value, and pushed
// values are pairwise distinct (failed TryPop and Peek/Count observers are
// outside the fragment).
//
// Violation certificates: a pop of a value never pushed or popped twice,
// and a value popped before its push was called. Linearizability is then
// established constructively by a greedy event-order simulation that only
// performs legal moves:
//
//   - at push-return time, the value is pushed if not already on the
//     simulated stack (linearization point inside its own interval);
//   - at pop-return time, the value is force-pushed if its push is still
//     open, then every value above it is popped — legal only if that
//     value's own pop operation is open right now — and finally the value
//     itself is popped from the top.
//
// Every simulated move assigns a linearization point strictly inside the
// operation's interval and pops only the top of the stack, so a completed
// simulation is a witness and the verdict true is sound. If the simulation
// gets stuck (a value above has no open pop), the history may still be
// linearizable via an ordering the greedy did not try, so the checker
// reports ErrAmbiguous rather than guessing false.
func checkStack(ops []call) (bool, error) {
	vals := make(map[string]*stackVal)
	for _, op := range ops {
		switch op.method {
		case "Push":
			if op.arg == "" || op.res != okResult {
				return false, ErrAmbiguous
			}
			if _, dup := vals[op.arg]; dup {
				return false, ErrAmbiguous
			}
			vals[op.arg] = &stackVal{pushCall: op.call, pushRet: op.ret, popCall: inf, popRet: inf}
		case "Pop", "TryPop":
			if op.res == failResult {
				return false, ErrAmbiguous
			}
		default:
			return false, ErrAmbiguous
		}
	}
	for _, op := range ops {
		switch op.method {
		case "Pop", "TryPop":
			v := vals[op.res]
			if v == nil {
				return false, nil // pop of a value never pushed
			}
			if v.popped {
				return false, nil // popped twice
			}
			if op.ret < v.pushCall {
				return false, nil // pop precedes push
			}
			v.popped = true
			v.popCall, v.popRet = op.call, op.ret
		}
	}

	// Greedy simulation over return events in increasing position order.
	// Event positions double as timestamps; rets is every (position, value,
	// isPop) return in history order.
	type retEvent struct {
		pos   int
		v     *stackVal
		isPop bool
	}
	rets := make([]retEvent, 0, len(ops))
	for _, op := range ops {
		switch op.method {
		case "Push":
			rets = append(rets, retEvent{pos: op.ret, v: vals[op.arg], isPop: false})
		case "Pop", "TryPop":
			rets = append(rets, retEvent{pos: op.ret, v: vals[op.res], isPop: true})
		}
	}
	// Event positions are the original indices, so sorting by pos replays
	// the history's real-time return order.
	sort.Slice(rets, func(i, j int) bool { return rets[i].pos < rets[j].pos })

	var stack []*stackVal
	for _, ev := range rets {
		t := ev.pos
		v := ev.v
		if !ev.isPop {
			if !v.simPushed {
				v.simPushed = true
				stack = append(stack, v)
			}
			continue
		}
		if v.simPopped {
			continue // already popped during an earlier cascade
		}
		if !v.simPushed {
			// Force-push: the push must be open right now.
			if !(v.pushCall < t && t < v.pushRet) {
				return false, ErrAmbiguous
			}
			v.simPushed = true
			stack = append(stack, v)
		}
		// Pop everything above v; each such value's own pop must be open.
		for len(stack) > 0 && stack[len(stack)-1] != v {
			u := stack[len(stack)-1]
			if !u.popped || u.simPopped || !(u.popCall < t && t < u.popRet) {
				return false, ErrAmbiguous
			}
			u.simPopped = true
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return false, ErrAmbiguous // v vanished: internal inconsistency, punt
		}
		v.simPopped = true
		stack = stack[:len(stack)-1]
	}
	return true, nil
}
