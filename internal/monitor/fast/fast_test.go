package fast

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lineup/internal/history"
	"lineup/internal/monitor"
)

// hb is the event-order history builder the monitor tests use, local to this
// package so the fast checkers are tested over the same construction idiom.
type hb struct {
	h    history.History
	next int
	open map[int]int
	name map[int]string
}

func newHB() *hb { return &hb{open: map[int]int{}, name: map[int]string{}} }

func (b *hb) call(t int, op string) *hb {
	if _, ok := b.open[t]; ok {
		panic("hb: thread already has an open call")
	}
	b.open[t] = b.next
	b.name[b.next] = op
	b.h.Events = append(b.h.Events, history.Event{Thread: t, Kind: history.Call, Op: op, Index: b.next})
	b.next++
	return b
}

func (b *hb) ret(t int, result string) *hb {
	idx, ok := b.open[t]
	if !ok {
		panic("hb: return without open call")
	}
	delete(b.open, t)
	b.h.Events = append(b.h.Events, history.Event{Thread: t, Kind: history.Return, Op: b.name[idx], Result: result, Index: idx})
	return b
}

func (b *hb) op(t int, op, result string) *hb { return b.call(t, op).ret(t, result) }

func (b *hb) done() *history.History { return &b.h }

// verdict runs the fast checker and renders the three-way outcome.
func verdict(t *testing.T, k Kind, h *history.History) string {
	t.Helper()
	ok, err := Check(k, h)
	if errors.Is(err, ErrAmbiguous) {
		return "ambiguous"
	}
	if err != nil {
		t.Fatalf("Check(%v): %v", k, err)
	}
	if ok {
		return "true"
	}
	return "false"
}

func TestQueueDirected(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
		want string
	}{
		{"sequential fifo", newHB().op(0, "Enqueue(1)", "ok").op(0, "Enqueue(2)", "ok").
			op(0, "Dequeue()", "1").op(0, "Dequeue()", "2").done(), "true"},
		{"fifo inversion", newHB().op(0, "Enqueue(1)", "ok").op(0, "Enqueue(2)", "ok").
			op(0, "Dequeue()", "2").op(0, "Dequeue()", "1").done(), "false"},
		{"dequeue of unknown value", newHB().op(0, "Enqueue(1)", "ok").op(0, "Dequeue()", "7").done(), "false"},
		{"double dequeue", newHB().op(0, "Enqueue(1)", "ok").
			op(0, "Dequeue()", "1").op(0, "Dequeue()", "1").done(), "false"},
		{"dequeue precedes enqueue", newHB().op(0, "Dequeue()", "1").op(0, "Enqueue(1)", "ok").done(), "false"},
		{"concurrent overlap linearizable", newHB().call(0, "Enqueue(1)").call(1, "Enqueue(2)").
			ret(0, "ok").ret(1, "ok").call(0, "Dequeue()").call(1, "Dequeue()").
			ret(0, "2").ret(1, "1").done(), "true"},
		{"undequeued rival inversion", newHB().op(0, "Enqueue(1)", "ok").op(0, "Enqueue(2)", "ok").
			op(0, "Dequeue()", "2").done(), "false"},
		{"failed trydequeue is outside fragment", newHB().op(0, "TryDequeue()", "Fail").done(), "ambiguous"},
		{"observer is outside fragment", newHB().op(0, "Enqueue(1)", "ok").op(0, "Count()", "1").done(), "ambiguous"},
		{"duplicate value is outside fragment", newHB().op(0, "Enqueue(1)", "ok").
			op(0, "Dequeue()", "1").op(0, "Enqueue(1)", "ok").done(), "ambiguous"},
		{"pending op is outside fragment", newHB().op(0, "Enqueue(1)", "ok").call(1, "Dequeue()").done(), "ambiguous"},
		{"empty history", newHB().done(), "true"},
	}
	for _, tc := range cases {
		if got := verdict(t, KindQueue, tc.h); got != tc.want {
			t.Errorf("%s: got %s, want %s\n%s", tc.name, got, tc.want, tc.h)
		}
	}
}

func TestStackDirected(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
		want string
	}{
		{"sequential lifo", newHB().op(0, "Push(1)", "ok").op(0, "Push(2)", "ok").
			op(0, "Pop()", "2").op(0, "Pop()", "1").done(), "true"},
		{"pop of unknown value", newHB().op(0, "Push(1)", "ok").op(0, "Pop()", "7").done(), "false"},
		{"double pop", newHB().op(0, "Push(1)", "ok").op(0, "Pop()", "1").op(0, "Pop()", "1").done(), "false"},
		{"pop precedes push", newHB().op(0, "Pop()", "1").op(0, "Push(1)", "ok").done(), "false"},
		// A sequential FIFO order on a stack is a violation, but the greedy
		// simulation cannot prove it: it punts to the general checker.
		{"fifo order punts", newHB().op(0, "Push(1)", "ok").op(0, "Push(2)", "ok").
			op(0, "Pop()", "1").op(0, "Pop()", "2").done(), "ambiguous"},
		{"concurrent pop overlap", newHB().op(0, "Push(1)", "ok").op(0, "Push(2)", "ok").
			call(0, "Pop()").call(1, "Pop()").ret(0, "1").ret(1, "2").done(), "true"},
		{"failed trypop is outside fragment", newHB().op(0, "TryPop()", "Fail").done(), "ambiguous"},
	}
	for _, tc := range cases {
		if got := verdict(t, KindStack, tc.h); got != tc.want {
			t.Errorf("%s: got %s, want %s\n%s", tc.name, got, tc.want, tc.h)
		}
	}
}

func TestSetDirected(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
		want string
	}{
		{"add then contains", newHB().op(0, "Add(1)", "true").op(0, "Contains(1)", "true").done(), "true"},
		{"contains before any add", newHB().op(0, "Contains(1)", "true").done(), "false"},
		{"absent after add without remove", newHB().op(0, "Add(1)", "true").
			op(0, "Contains(1)", "false").op(0, "Contains(1)", "true").done(), "false"},
		{"remove without add", newHB().op(0, "Remove(1)", "true").done(), "false"},
		{"full lifecycle", newHB().op(0, "Contains(1)", "false").op(0, "Add(1)", "true").
			op(0, "Contains(1)", "true").op(0, "Remove(1)", "true").op(0, "Contains(1)", "false").done(), "true"},
		{"concurrent add and contains", newHB().call(0, "Add(1)").call(1, "Contains(1)").
			ret(1, "true").ret(0, "true").done(), "true"},
		{"re-add is outside fragment", newHB().op(0, "Add(1)", "true").op(0, "Remove(1)", "true").
			op(0, "Add(1)", "true").done(), "ambiguous"},
		{"count is outside fragment", newHB().op(0, "Count()", "0").done(), "ambiguous"},
		{"independent values", newHB().op(0, "Add(1)", "true").op(1, "Add(2)", "true").
			op(0, "Contains(2)", "true").op(1, "Contains(1)", "true").done(), "true"},
	}
	for _, tc := range cases {
		if got := verdict(t, KindSet, tc.h); got != tc.want {
			t.Errorf("%s: got %s, want %s\n%s", tc.name, got, tc.want, tc.h)
		}
	}
}

func TestRegisterDirected(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
		want string
	}{
		{"write then read", newHB().op(0, "Write(5)", "ok").op(0, "Read()", "5").done(), "true"},
		{"initial value read", newHB().op(0, "Read()", "0").op(0, "Write(5)", "ok").op(0, "Read()", "5").done(), "true"},
		{"read of unwritten value", newHB().op(0, "Read()", "9").done(), "false"},
		{"read precedes write", newHB().op(0, "Read()", "5").op(0, "Write(5)", "ok").done(), "false"},
		{"stale read after overwrite", newHB().op(0, "Write(5)", "ok").op(0, "Write(6)", "ok").
			op(0, "Read()", "5").done(), "ambiguous"}, // greedy layout stuck: punt
		{"concurrent read during write", newHB().call(0, "Write(5)").call(1, "Read()").
			ret(1, "5").ret(0, "ok").done(), "true"},
		{"duplicate write is outside fragment", newHB().op(0, "Write(5)", "ok").op(0, "Write(5)", "ok").done(), "ambiguous"},
		{"write of initial value is outside fragment", newHB().op(0, "Write(0)", "ok").done(), "ambiguous"},
	}
	for _, tc := range cases {
		if got := verdict(t, KindRegister, tc.h); got != tc.want {
			t.Errorf("%s: got %s, want %s\n%s", tc.name, got, tc.want, tc.h)
		}
	}
}

func TestPQueueDirected(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
		want string
	}{
		{"min order", newHB().op(0, "Insert(2)", "ok").op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "1").op(0, "DeleteMin()", "2").done(), "true"},
		{"priority inversion", newHB().op(0, "Insert(2)", "ok").op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "2").op(0, "DeleteMin()", "1").done(), "false"},
		{"undeleted smaller rival", newHB().op(0, "Insert(1)", "ok").op(0, "Insert(2)", "ok").
			op(0, "DeleteMin()", "2").done(), "false"},
		{"delete of unknown value", newHB().op(0, "DeleteMin()", "3").done(), "false"},
		{"delete precedes insert", newHB().op(0, "DeleteMin()", "1").op(0, "Insert(1)", "ok").done(), "false"},
		{"concurrent insert race", newHB().call(0, "Insert(1)").call(1, "Insert(2)").
			ret(0, "ok").ret(1, "ok").op(0, "DeleteMin()", "1").op(0, "DeleteMin()", "2").done(), "true"},
		{"numeric order ten after two", newHB().op(0, "Insert(10)", "ok").op(0, "Insert(2)", "ok").
			op(0, "DeleteMin()", "2").op(0, "DeleteMin()", "10").done(), "true"},
		{"failed trydeletemin is outside fragment", newHB().op(0, "TryDeleteMin()", "Fail").done(), "ambiguous"},
	}
	for _, tc := range cases {
		if got := verdict(t, KindPQueue, tc.h); got != tc.want {
			t.Errorf("%s: got %s, want %s\n%s", tc.name, got, tc.want, tc.h)
		}
	}
}

func TestKindForMatchesBuiltins(t *testing.T) {
	for _, name := range Names() {
		if _, ok := monitor.Builtin(name); !ok {
			t.Errorf("fast monitor %q has no builtin model", name)
		}
		k, ok := KindFor(name)
		if !ok || k.String() != name {
			t.Errorf("KindFor(%q) = %v, %v", name, k, ok)
		}
	}
	if _, ok := KindFor("counter"); ok {
		t.Error("counter should have no specialized monitor")
	}
}

// genHistory builds a random complete concurrent history over kind's
// vocabulary by simulating the sequential object with a linearization point
// chosen at either the call or the return of each operation — linearizable
// by construction. valBase offsets the distinct-value counter so windows of
// a stream share no values. With mutate, one return result is corrupted
// afterwards, which yields violating and out-of-fragment histories.
func genHistory(rng *rand.Rand, kindName string, nOps, nThreads, valBase int, mutate bool) *history.History {
	b := newHB()
	nextVal := valBase
	var seq []string // queue/stack/pqueue storage
	set := make(map[string]bool)
	reg := "0"

	apply := func(method, arg string) string {
		switch kindName {
		case "queue":
			if method == "Enqueue" {
				seq = append(seq, arg)
				return "ok"
			}
			if len(seq) == 0 {
				return "Fail"
			}
			v := seq[0]
			seq = seq[1:]
			return v
		case "stack":
			if method == "Push" {
				seq = append(seq, arg)
				return "ok"
			}
			if len(seq) == 0 {
				return "Fail"
			}
			v := seq[len(seq)-1]
			seq = seq[:len(seq)-1]
			return v
		case "pqueue":
			if method == "Insert" {
				seq = append(seq, arg)
				return "ok"
			}
			if len(seq) == 0 {
				return "Fail"
			}
			mi := 0
			for i, v := range seq {
				if valueLess(v, seq[mi]) {
					mi = i
				}
			}
			v := seq[mi]
			seq = append(seq[:mi], seq[mi+1:]...)
			return v
		case "set":
			switch method {
			case "Add":
				was := set[arg]
				set[arg] = true
				return fmt.Sprint(!was)
			case "Remove":
				was := set[arg]
				delete(set, arg)
				return fmt.Sprint(was)
			default: // Contains
				return fmt.Sprint(set[arg])
			}
		default: // register
			if method == "Write" {
				reg = arg
				return "ok"
			}
			return reg
		}
	}

	pick := func() (name, method, arg string) {
		switch kindName {
		case "queue":
			if rng.Intn(2) == 0 {
				nextVal++
				return fmt.Sprintf("Enqueue(%d)", nextVal), "Enqueue", fmt.Sprint(nextVal)
			}
			return "TryDequeue()", "TryDequeue", ""
		case "stack":
			if rng.Intn(2) == 0 {
				nextVal++
				return fmt.Sprintf("Push(%d)", nextVal), "Push", fmt.Sprint(nextVal)
			}
			return "TryPop()", "TryPop", ""
		case "pqueue":
			if rng.Intn(2) == 0 {
				nextVal++
				return fmt.Sprintf("Insert(%d)", nextVal), "Insert", fmt.Sprint(nextVal)
			}
			return "TryDeleteMin()", "TryDeleteMin", ""
		case "set":
			methods := []string{"Add", "Remove", "Contains"}
			m := methods[rng.Intn(len(methods))]
			v := fmt.Sprint(1 + rng.Intn(3))
			return fmt.Sprintf("%s(%s)", m, v), m, v
		default: // register
			if rng.Intn(3) == 0 {
				nextVal++
				return fmt.Sprintf("Write(%d)", nextVal), "Write", fmt.Sprint(nextVal)
			}
			return "Read()", "Read", ""
		}
	}

	type openOp struct {
		res   string
		atRet func() string
	}
	openBy := make(map[int]*openOp)
	started := 0
	for steps := 0; steps < 20*nOps+40 && (started < nOps || len(openBy) > 0); steps++ {
		t := rng.Intn(nThreads)
		if o := openBy[t]; o != nil {
			if started < nOps && rng.Intn(2) == 0 {
				continue // keep the call open a while longer
			}
			res := o.res
			if o.atRet != nil {
				res = o.atRet()
			}
			b.ret(t, res)
			delete(openBy, t)
			continue
		}
		if started >= nOps {
			continue
		}
		name, method, arg := pick()
		b.call(t, name)
		started++
		o := &openOp{}
		if rng.Intn(2) == 0 {
			o.res = apply(method, arg) // linearize at the call
		} else {
			m, a := method, arg
			o.atRet = func() string { return apply(m, a) } // linearize at the return
		}
		openBy[t] = o
	}
	// Drain any survivors of the step cap.
	for t, o := range openBy {
		res := o.res
		if o.atRet != nil {
			res = o.atRet()
		}
		b.ret(t, res)
		delete(openBy, t)
	}

	h := b.done()
	if mutate && len(h.Events) > 0 {
		var rets []int
		for i, ev := range h.Events {
			if ev.Kind == history.Return {
				rets = append(rets, i)
			}
		}
		if len(rets) > 0 {
			i := rets[rng.Intn(len(rets))]
			j := rets[rng.Intn(len(rets))]
			if rng.Intn(3) == 0 {
				h.Events[i].Result = fmt.Sprint(valBase + 7777) // value from nowhere
			} else {
				h.Events[i].Result, h.Events[j].Result = h.Events[j].Result, h.Events[i].Result
			}
		}
	}
	return h
}

// TestCrossCheckAgainstMonitor drives every specialized checker over random
// in-fragment and mutated histories and requires each definite verdict to
// match the general memoized search bit for bit; ambiguous histories are
// checked to still be decidable by the fallback. Small histories are also
// cross-checked against the brute-force enumerator.
func TestCrossCheckAgainstMonitor(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			model, ok := monitor.Builtin(name)
			if !ok {
				t.Fatalf("no builtin model %q", name)
			}
			kind, _ := KindFor(name)
			stats := map[string]int{}
			for seed := int64(0); seed < 400; seed++ {
				rng := rand.New(rand.NewSource(seed))
				nOps := 1 + rng.Intn(10)
				h := genHistory(rng, name, nOps, 1+rng.Intn(3), 0, seed%3 == 2)
				got, err := Check(kind, h)
				out, cerr := monitor.Check(model, h, monitor.Options{})
				if cerr != nil {
					t.Fatalf("seed %d: monitor.Check: %v\n%s", seed, cerr, h)
				}
				if errors.Is(err, ErrAmbiguous) {
					stats["ambiguous"]++
				} else if err != nil {
					t.Fatalf("seed %d: fast.Check: %v\n%s", seed, err, h)
				} else {
					stats[fmt.Sprint(got)]++
					if got != out.Linearizable {
						t.Fatalf("seed %d: fast=%v monitor=%v\n%s", seed, got, out.Linearizable, h)
					}
					if nOps <= 6 {
						naive, nerr := monitor.NaiveCheck(model, h, monitor.Options{})
						if nerr != nil {
							t.Fatalf("seed %d: NaiveCheck: %v", seed, nerr)
						}
						if got != naive {
							t.Fatalf("seed %d: fast=%v naive=%v\n%s", seed, got, naive, h)
						}
					}
				}
			}
			if stats["true"] == 0 || stats["false"] == 0 {
				t.Fatalf("generator never exercised a definite verdict: %v", stats)
			}
			t.Logf("%s: %v", name, stats)
		})
	}
}

// streamFeed applies h's events to s with op indices offset, as a serve
// partition would deliver a window.
func streamFeed(s *QueueStream, h *history.History, indexBase int) {
	for _, ev := range h.Events {
		ev.Index += indexBase
		s.Apply(ev)
	}
}

// TestQueueStreamMatchesBatch feeds random queue histories through the
// streaming monitor window by window, quiescing at each cut, and requires
// the final verdict to agree exactly with the batch checker on the
// concatenated history — same boolean, or ambiguous on both sides.
func TestQueueStreamMatchesBatch(t *testing.T) {
	stats := map[string]int{}
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		windows := 1 + rng.Intn(3)
		s := NewQueueStream()
		var all history.History
		indexBase := 0
		for w := 0; w < windows; w++ {
			h := genHistory(rng, "queue", 1+rng.Intn(8), 1+rng.Intn(3), 100*w, seed%3 == 2)
			streamFeed(s, h, indexBase)
			for _, ev := range h.Events {
				ev.Index += indexBase
				all.Events = append(all.Events, ev)
			}
			indexBase += 1000
			if !s.Ambiguous() && !s.Quiescent() {
				t.Fatalf("seed %d: generator left window %d non-quiescent", seed, w)
			}
			if _, err := s.Quiesce(); err != nil && !errors.Is(err, ErrAmbiguous) {
				t.Fatalf("seed %d: Quiesce: %v", seed, err)
			}
		}
		streamOK, streamErr := s.Quiesce()
		batchOK, batchErr := Check(KindQueue, &all)
		switch {
		case errors.Is(batchErr, ErrAmbiguous):
			if !errors.Is(streamErr, ErrAmbiguous) {
				t.Fatalf("seed %d: batch ambiguous but stream said %v, %v\n%s", seed, streamOK, streamErr, &all)
			}
			stats["ambiguous"]++
		case batchErr != nil:
			t.Fatalf("seed %d: batch: %v", seed, batchErr)
		default:
			if streamErr != nil || streamOK != batchOK {
				t.Fatalf("seed %d: stream=%v,%v batch=%v\n%s", seed, streamOK, streamErr, batchOK, &all)
			}
			stats[fmt.Sprint(batchOK)]++
		}
	}
	if stats["true"] == 0 || stats["false"] == 0 {
		t.Fatalf("stream cross-check never exercised a definite verdict: %v", stats)
	}
	t.Logf("stream: %v", stats)
}

func TestQueueStreamMidOperationQuiesce(t *testing.T) {
	s := NewQueueStream()
	s.Apply(history.Event{Thread: 0, Kind: history.Call, Op: "Enqueue(1)", Index: 0})
	if _, err := s.Quiesce(); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("mid-operation Quiesce: %v, want ErrAmbiguous", err)
	}
	s.Apply(history.Event{Thread: 0, Kind: history.Return, Op: "Enqueue(1)", Result: "ok", Index: 0})
	ok, err := s.Quiesce()
	if err != nil || !ok {
		t.Fatalf("after return: %v, %v", ok, err)
	}
}

func TestQueueStreamViolationIsFinal(t *testing.T) {
	s := NewQueueStream()
	for _, h := range []*history.History{
		newHB().op(0, "Enqueue(1)", "ok").op(0, "Dequeue()", "9").done(),
	} {
		streamFeed(s, h, 0)
	}
	if ok, err := s.Quiesce(); err != nil || ok {
		t.Fatalf("violating window: %v, %v", ok, err)
	}
	// A clean later window cannot repair the verdict.
	streamFeed(s, newHB().op(0, "Enqueue(50)", "ok").op(0, "Dequeue()", "50").done(), 100)
	if ok, err := s.Quiesce(); err != nil || ok {
		t.Fatalf("verdict not final: %v, %v", ok, err)
	}
}
