package fast

import (
	"errors"
	"fmt"
	"testing"

	"lineup/internal/history"
	"lineup/internal/monitor"
)

// FuzzFastMonitor drives every specialized monitor with byte-program-derived
// concurrent histories — well formed by construction but otherwise
// arbitrary: duplicate values, failed try-operations, wrong results, and
// pending calls all occur — and checks the package's one load-bearing
// contract on each: a definite verdict must agree bit-for-bit with the
// memoized Wing–Gong search, and a history with pending operations must be
// punted, never guessed. For queue histories the incremental QueueStream is
// run over the same events and held to the same contract as batch Check.
//
// Wired into `make check` via the Makefile fuzz target (5s of mutation on
// every run); run longer with
// `go test -run='^$' -fuzz=FuzzFastMonitor ./internal/monitor/fast`.
func FuzzFastMonitor(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(0), []byte{0x01, 0x42, 0x13, 0x37, 0x00, 0xff, 0x80, 0x21})
	f.Add(byte(1), []byte{0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c})
	f.Add(byte(2), []byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80})
	f.Add(byte(3), []byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add(byte(4), []byte{0x03, 0x14, 0x15, 0x92, 0x65, 0x35, 0x89, 0x79})
	f.Fuzz(func(t *testing.T, kindByte byte, program []byte) {
		kind := Kind(int(kindByte) % 5)
		model, ok := monitor.Builtin(kind.String())
		if !ok {
			t.Fatalf("no builtin model %q", kind)
		}
		h := fuzzHistory(kind, program)
		complete := len(h.Pending()) == 0

		lin, err := Check(kind, h)
		if err != nil && !errors.Is(err, ErrAmbiguous) {
			t.Fatalf("fast %s returned a non-sentinel error %v on:\n%s", kind, err, h)
		}
		if !complete && err == nil {
			t.Fatalf("fast %s decided a history with pending operations:\n%s", kind, h)
		}
		if complete && err == nil {
			out, merr := monitor.Check(model, h, monitor.Options{})
			if merr != nil {
				t.Fatalf("monitor %s: %v\nhistory:\n%s", kind, merr, h)
			}
			if lin != out.Linearizable {
				t.Fatalf("fast %s=%v but WGL=%v on:\n%s", kind, lin, out.Linearizable, h)
			}
		}

		if kind != KindQueue {
			return
		}
		s := NewQueueStream()
		for _, ev := range h.Events {
			s.Apply(ev)
		}
		if s.Ambiguous() || !complete {
			return
		}
		sok, serr := s.Quiesce()
		if serr != nil {
			return // went ambiguous at quiescence: the caller converts
		}
		out, merr := monitor.Check(model, h, monitor.Options{})
		if merr != nil {
			t.Fatalf("monitor queue: %v\nhistory:\n%s", merr, h)
		}
		if sok != out.Linearizable {
			t.Fatalf("QueueStream=%v but WGL=%v on:\n%s", sok, out.Linearizable, h)
		}
	})
}

// fuzzHistory decodes a byte program into a well-formed concurrent history
// for the kind's vocabulary: each byte picks a thread and either opens a
// call on it (method, argument, and eventual result drawn from the byte) or
// returns the thread's open call. The value domain is tiny (0..3) so
// duplicates — outside every fragment — are common, and a trailing byte
// decides whether open calls are closed (complete history) or left pending.
func fuzzHistory(kind Kind, program []byte) *history.History {
	const threads = 3
	type open struct {
		op  string
		res string
		idx int
	}
	var (
		evs     []history.Event
		pending [threads]*open
		idx     int
	)
	begin := func(th int, op, res string) {
		pending[th] = &open{op: op, res: res, idx: idx}
		evs = append(evs, history.Event{Thread: th, Kind: history.Call, Op: op, Index: idx})
		idx++
	}
	finish := func(th int) {
		o := pending[th]
		evs = append(evs, history.Event{Thread: th, Kind: history.Return, Op: o.op, Result: o.res, Index: o.idx})
		pending[th] = nil
	}
	// opFor picks an operation and its claimed result from one byte of
	// entropy. The result is sometimes deliberately wrong (a fixed value
	// regardless of state) so non-linearizable completions occur.
	opFor := func(b byte) (string, string) {
		v := fmt.Sprint(b >> 2 & 3)
		switch kind {
		case KindQueue:
			switch b & 3 {
			case 0:
				return "Enqueue(" + v + ")", "ok"
			case 1:
				return "TryDequeue()", v
			default:
				return "TryDequeue()", "Fail"
			}
		case KindStack:
			switch b & 3 {
			case 0:
				return "Push(" + v + ")", "ok"
			case 1:
				return "TryPop()", v
			default:
				return "TryPop()", "Fail"
			}
		case KindSet:
			r := "true"
			if b&4 != 0 {
				r = "false"
			}
			switch b & 3 {
			case 0:
				return "Add(" + v + ")", r
			case 1:
				return "Remove(" + v + ")", r
			default:
				return "Contains(" + v + ")", r
			}
		case KindRegister:
			if b&1 == 0 {
				return "Write(" + v + ")", "ok"
			}
			return "Read()", v
		default: // KindPQueue
			// "01" collides with "1" in numeric priority while staying a
			// distinct string, so equal-priority tiebreak paths get fuzzed.
			pv := [4]string{"0", "1", "2", "01"}[b>>2&3]
			switch b & 3 {
			case 0:
				return "Insert(" + pv + ")", "ok"
			case 1:
				return "TryDeleteMin()", pv
			default:
				return "TryDeleteMin()", "Fail"
			}
		}
	}
	if len(program) > 48 {
		program = program[:48]
	}
	var last byte
	for _, b := range program {
		last = b
		th := int(b>>5) % threads
		if pending[th] != nil {
			finish(th)
			continue
		}
		op, res := opFor(b)
		begin(th, op, res)
	}
	if last&1 == 0 { // half the corpus completes, half leaves calls pending
		for th := 0; th < threads; th++ {
			if pending[th] != nil {
				finish(th)
			}
		}
	}
	return &history.History{Events: evs}
}
