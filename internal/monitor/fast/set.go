package fast

import "sort"

// setValOps gathers every operation on one set element: the at-most-one
// successful Add and Remove (the element's presence transitions), plus the
// observers that require it present (Contains→true, Add→false) or absent
// (Contains→false, Remove→false).
type setValOps struct {
	hasAdd, hasRem   bool
	addCall, addRet  int // successful Add interval
	remCall, remRet  int // successful Remove interval
	present          []ival
	absent           []ival
	addTrue, remTrue int // counts, for the duplicate gate
}

type ival struct{ call, ret int }

// checkSet decides a complete set history over the unambiguous fragment:
// Add/Remove/Contains with boolean results, and per element at most one
// successful Add and at most one successful Remove (an element cycling
// absent→present→absent→present is a duplicate in the papers' sense and
// falls back). Count and other observers are outside the fragment.
//
// Set elements never interact, so the history is linearizable iff each
// element's subhistory is — the same per-value partition the general
// checker exploits for P-compositional models. Per element the problem is
// exact two-point feasibility: choose the Add transition point t1 inside
// the successful Add's interval and the Remove transition point t2 inside
// the successful Remove's (t2 = +inf when never removed), t1 < t2, such
// that every present observer overlaps (t1, t2) and every absent observer
// has room outside it (call < t1 or t2 < ret). Sorting absent observers by
// call position makes the optimal assignment a prefix split (an observer
// satisfiable on the t1 side stays there without hurting the t2 side), so
// one sweep over split points with a suffix-minimum of returns decides
// feasibility in O(m log m). The answer is definite in both directions:
// this checker never reports ErrAmbiguous on gated input.
func checkSet(ops []call) (bool, error) {
	vals := make(map[string]*setValOps)
	get := func(arg string) *setValOps {
		v := vals[arg]
		if v == nil {
			v = &setValOps{}
			vals[arg] = v
		}
		return v
	}
	for _, op := range ops {
		if op.arg == "" || (op.res != "true" && op.res != "false") {
			return false, ErrAmbiguous
		}
		v := get(op.arg)
		iv := ival{op.call, op.ret}
		switch {
		case op.method == "Add" && op.res == "true":
			v.addTrue++
			v.hasAdd, v.addCall, v.addRet = true, op.call, op.ret
		case op.method == "Add" && op.res == "false":
			v.present = append(v.present, iv)
		case op.method == "Remove" && op.res == "true":
			v.remTrue++
			v.hasRem, v.remCall, v.remRet = true, op.call, op.ret
		case op.method == "Remove" && op.res == "false":
			v.absent = append(v.absent, iv)
		case op.method == "Contains" && op.res == "true":
			v.present = append(v.present, iv)
		case op.method == "Contains" && op.res == "false":
			v.absent = append(v.absent, iv)
		default:
			return false, ErrAmbiguous
		}
	}
	for _, v := range vals {
		if v.addTrue > 1 || v.remTrue > 1 {
			return false, ErrAmbiguous // element re-added: duplicate fragment
		}
		ok, err := setValFeasible(v)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// setValFeasible decides one element's subhistory exactly.
func setValFeasible(v *setValOps) (bool, error) {
	if !v.hasAdd {
		// Never successfully added: the element is absent throughout, so
		// any present observer or successful Remove is a violation, and
		// absent observers are all trivially satisfied.
		return !v.hasRem && len(v.present) == 0, nil
	}
	// Bounds contributed by present observers: t1 < minPresRet, maxPresCall < t2.
	minPresRet, maxPresCall := inf, -1
	for _, p := range v.present {
		if p.ret < minPresRet {
			minPresRet = p.ret
		}
		if p.call > maxPresCall {
			maxPresCall = p.call
		}
	}
	// Absent observers sorted by call; suffix minimum of returns for the
	// t2 side of each split.
	abs := append([]ival(nil), v.absent...)
	sort.Slice(abs, func(i, j int) bool { return abs[i].call < abs[j].call })
	sufMinRet := make([]int, len(abs)+1)
	sufMinRet[len(abs)] = inf
	for i := len(abs) - 1; i >= 0; i-- {
		sufMinRet[i] = abs[i].ret
		if sufMinRet[i+1] < sufMinRet[i] {
			sufMinRet[i] = sufMinRet[i+1]
		}
	}
	// t2 interval: the successful Remove's, or exactly +inf when absent.
	remCall, remRet := inf-1, inf+1
	if v.hasRem {
		remCall, remRet = v.remCall, v.remRet
	}
	for k := 0; k <= len(abs); k++ {
		// First k absent observers go before t1, the rest after t2.
		l1 := v.addCall
		if k > 0 && abs[k-1].call > l1 {
			l1 = abs[k-1].call
		}
		u1 := v.addRet
		if minPresRet < u1 {
			u1 = minPresRet
		}
		l2 := remCall
		if maxPresCall > l2 {
			l2 = maxPresCall
		}
		u2 := remRet
		if sufMinRet[k] < u2 {
			u2 = sufMinRet[k]
		}
		// Feasible split: nonempty t1 and t2 ranges with t1 < t2 possible.
		if l1 < u1 && l2 < u2 && l1 < u2 {
			return true, nil
		}
	}
	return false, nil
}
