package fast

import "sort"

// regCluster is one written value with the reads that observed it: under
// distinct written values, a linearization orders the clusters and every
// read of v lands between write(v)'s point and the next write's point.
type regCluster struct {
	hasWrite      bool
	wrCall, wrRet int
	reads         []ival
	deadline      int // min return position over the cluster's ops
}

// checkRegister decides a complete atomic register history over the
// unambiguous fragment: Write(v)→ok with pairwise-distinct values none of
// which equals the initial value "0", and Read→v. CAS is outside the
// fragment.
//
// Violation certificates: a read of a value never written (and not the
// initial value), and a read returning before its value's write was called.
// The witness is built greedily: clusters (a write plus its reads; the
// initial value's reads form a writeless cluster scheduled first) are
// laid out contiguously in ascending order of earliest deadline — the
// classic earliest-deadline-first exchange argument for interval
// scheduling. Each operation receives a linearization point at
// max(current time, its call) and fails the greedy if that point reaches
// its return. A completed layout is a valid atomic-register witness
// (every read is adjacent to its write's cluster), so true is sound; a
// stuck greedy reports ErrAmbiguous and falls back.
func checkRegister(ops []call) (bool, error) {
	const initVal = "0"
	clusters := make(map[string]*regCluster)
	get := func(v string) *regCluster {
		c := clusters[v]
		if c == nil {
			c = &regCluster{deadline: inf}
			clusters[v] = c
		}
		return c
	}
	for _, op := range ops {
		switch op.method {
		case "Write", "Set":
			if op.arg == "" || op.res != okResult || op.arg == initVal {
				return false, ErrAmbiguous
			}
			c := get(op.arg)
			if c.hasWrite {
				return false, ErrAmbiguous // duplicate written value
			}
			c.hasWrite, c.wrCall, c.wrRet = true, op.call, op.ret
			if op.ret < c.deadline {
				c.deadline = op.ret
			}
		case "Read", "Get":
			if op.res == "" {
				return false, ErrAmbiguous
			}
			c := get(op.res)
			c.reads = append(c.reads, ival{op.call, op.ret})
			if op.ret < c.deadline {
				c.deadline = op.ret
			}
		default:
			return false, ErrAmbiguous
		}
	}
	init := clusters[initVal]
	delete(clusters, initVal)
	for _, c := range clusters {
		if !c.hasWrite {
			return false, nil // read of a value never written
		}
		for _, r := range c.reads {
			if r.ret < c.wrCall {
				return false, nil // read precedes its write
			}
		}
	}

	// Greedy earliest-deadline-first layout. t is the running point; the
	// initial value's reads must come before every write, so that cluster
	// is forced first.
	ordered := make([]*regCluster, 0, len(clusters)+1)
	if init != nil {
		ordered = append(ordered, init)
	}
	rest := make([]*regCluster, 0, len(clusters))
	for _, c := range clusters {
		rest = append(rest, c)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].deadline < rest[j].deadline })
	ordered = append(ordered, rest...)

	t := -1 // strictly below every event position
	for _, c := range ordered {
		if c.hasWrite {
			if c.wrCall > t {
				t = c.wrCall
			}
			if t >= c.wrRet {
				return false, ErrAmbiguous
			}
			// Write point sits in (t, wrRet); t advances to it.
		}
		reads := append([]ival(nil), c.reads...)
		sort.Slice(reads, func(i, j int) bool { return reads[i].ret < reads[j].ret })
		for _, r := range reads {
			if r.call > t {
				t = r.call
			}
			if t >= r.ret {
				return false, ErrAmbiguous
			}
		}
	}
	return true, nil
}
