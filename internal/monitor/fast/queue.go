package fast

import "sort"

// queueVal is the lifetime of one distinct value through a FIFO queue: its
// enqueue interval and, if it was ever dequeued, its dequeue interval
// (inf/inf otherwise).
type queueVal struct {
	enqCall, enqRet int
	deqCall, deqRet int
	dequeued        bool
}

// checkQueue decides a complete FIFO queue history over the unambiguous
// fragment: every enqueue returns ok, every dequeue returns a value, and
// enqueued values are pairwise distinct. Emptiness observers (failed
// TryDequeue, Peek, Count, IsEmpty, ToArray) are outside the fragment.
//
// On the fragment the classic characterization (Henzinger, Sezgin &
// Vafeiadis; also Abdulla et al. arXiv:2509.17795) is exact — the history
// is linearizable iff none of these certificates exists:
//
//  1. a dequeue of a value never enqueued, or dequeued twice;
//  2. a value dequeued before its enqueue was called (deq <H enq);
//  3. a FIFO inversion: values a, b with enq(a) <H enq(b) and
//     deq(b) <H deq(a), where an undequeued a counts as deq at +inf —
//     a entered the queue strictly first yet b left while a remained.
//
// The pair scan for certificate 3 is an O(n log n) sweep: values sorted by
// enqueue call; a second cursor in enqueue-return order maintains the
// running maximum dequeue-call over every value already enqueued-before.
func checkQueue(ops []call) (bool, error) {
	vals := make(map[string]*queueVal)
	var order []string
	for _, op := range ops {
		switch op.method {
		case "Enqueue", "Add", "Put":
			if op.arg == "" || op.res != okResult {
				return false, ErrAmbiguous
			}
			if _, dup := vals[op.arg]; dup {
				return false, ErrAmbiguous // duplicate value: fragment excluded
			}
			vals[op.arg] = &queueVal{enqCall: op.call, enqRet: op.ret, deqCall: inf, deqRet: inf}
			order = append(order, op.arg)
		case "Dequeue", "Take", "TryDequeue", "TryTake":
			if op.res == failResult {
				return false, ErrAmbiguous // emptiness observation: outside fragment
			}
		default:
			return false, ErrAmbiguous
		}
	}
	// Second pass binds dequeues to values; enqueues are all registered so
	// "never enqueued" is decidable regardless of event order.
	for _, op := range ops {
		switch op.method {
		case "Dequeue", "Take", "TryDequeue", "TryTake":
			v := vals[op.res]
			if v == nil {
				return false, nil // certificate 1: value never enqueued
			}
			if v.dequeued {
				return false, nil // certificate 1: dequeued twice
			}
			if op.ret < v.enqCall {
				return false, nil // certificate 2: dequeue precedes enqueue
			}
			v.dequeued = true
			v.deqCall, v.deqRet = op.call, op.ret
		}
	}

	// Certificate 3 sweep. byCall drives (each value as the "b" of the
	// pair); byRet feeds the running max of deqCall over every "a" with
	// enqRet(a) < enqCall(b). Undequeued values carry deqCall = inf, so a
	// dequeued b trips the certificate against any earlier undequeued a.
	byCall := make([]*queueVal, 0, len(order))
	for _, name := range order {
		byCall = append(byCall, vals[name])
	}
	byRet := append([]*queueVal(nil), byCall...)
	sort.Slice(byCall, func(i, j int) bool { return byCall[i].enqCall < byCall[j].enqCall })
	sort.Slice(byRet, func(i, j int) bool { return byRet[i].enqRet < byRet[j].enqRet })
	maxDeqCall := -1
	cursor := 0
	for _, b := range byCall {
		for cursor < len(byRet) && byRet[cursor].enqRet < b.enqCall {
			if byRet[cursor].deqCall > maxDeqCall {
				maxDeqCall = byRet[cursor].deqCall
			}
			cursor++
		}
		if b.dequeued && maxDeqCall > b.deqRet {
			return false, nil // certificate 3: FIFO inversion
		}
	}
	return true, nil
}

const (
	okResult   = "ok"
	failResult = "Fail"
)
