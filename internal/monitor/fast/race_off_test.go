//go:build !race

package fast

// raceEnabled reports whether the race detector instruments this build; the
// allocation regression guard skips under it (shadow state inflates alloc
// counts unpredictably).
const raceEnabled = false
