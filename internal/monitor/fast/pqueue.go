package fast

import "sort"

// pqVal is the lifetime of one distinct value through a priority queue.
type pqVal struct {
	val             string
	rank            int // position in ascending priority order
	insCall, insRet int
	delCall, delRet int
	deleted         bool
	simInserted     bool
	simDeleted      bool
}

// checkPQueue decides a complete min-priority-queue history over the
// unambiguous fragment: Insert(v)→ok with pairwise-distinct values and
// DeleteMin→v (failed TryDeleteMin and PeekMin are outside the fragment).
// Priorities compare numerically when both values parse as integers,
// lexicographically otherwise, matching monitor.PQueueModel. Distinct values
// of equal priority are ordered newest-insert-first (the model's insertion
// point), which is only a fixed order when their insert intervals are
// disjoint; overlapping equal-priority inserts report ErrAmbiguous before
// any certificate is emitted.
//
// Violation certificates: a delete of a value never inserted or deleted
// twice; a value deleted before its insert was called; and the pairwise
// priority certificate of Lee & Mathur — values a < b (priority order)
// with insRet(a) < delCall(b) and delRet(b) < delCall(a) (an undeleted a
// counts as delete at +inf): a is inserted and still present across the
// whole of DeleteMin→b, so the minimum at b's linearization point is at
// most a, never b. The scan processes values in ascending priority,
// querying a Fenwick tree indexed by insert-return rank for the maximum
// delete-call among smaller values inserted early enough — O(n log n).
//
// A history clean of certificates is confirmed by the same greedy
// event-order simulation as the stack, with "top of stack" replaced by
// "current minimum": every simulated DeleteMin removes the minimum of the
// simulated multiset, so a completed run is a witness. A stuck simulation
// (a smaller value present whose delete is not open) reports ErrAmbiguous.
func checkPQueue(ops []call) (bool, error) {
	vals := make(map[string]*pqVal)
	for _, op := range ops {
		switch op.method {
		case "Insert", "Add", "Put":
			if op.arg == "" || op.res != okResult {
				return false, ErrAmbiguous
			}
			if _, dup := vals[op.arg]; dup {
				return false, ErrAmbiguous
			}
			vals[op.arg] = &pqVal{val: op.arg, insCall: op.call, insRet: op.ret, delCall: inf, delRet: inf}
		case "DeleteMin", "RemoveMin", "TryDeleteMin", "TryRemoveMin":
			if op.res == failResult {
				return false, ErrAmbiguous
			}
		default:
			return false, ErrAmbiguous
		}
	}
	for _, op := range ops {
		switch op.method {
		case "DeleteMin", "RemoveMin", "TryDeleteMin", "TryRemoveMin":
			v := vals[op.res]
			if v == nil {
				return false, nil // delete of a value never inserted
			}
			if v.deleted {
				return false, nil // deleted twice
			}
			if op.ret < v.insCall {
				return false, nil // delete precedes insert
			}
			v.deleted = true
			v.delCall, v.delRet = op.call, op.ret
		}
	}

	// Rank values by effective priority. Distinct values may compare equal
	// ("01" vs "1" both parse as 1), and equal-priority values are not
	// interchangeable: PQueueModel inserts each value at the head of its
	// equal-priority block, so among equal priorities the queue holds values
	// newest-insert-first. When their insert intervals do not overlap the
	// insertion order is the same in every linearization, making
	// (priority ascending, insert time descending) a strict total order the
	// model follows; ties are broken by that order. Overlapping equal-priority
	// inserts leave the queue order interleaving-dependent, so the history is
	// punted to the full search before any certificate can fire on an
	// arbitrary (and wrong) tie order.
	byPrio := make([]*pqVal, 0, len(vals))
	for _, v := range vals {
		byPrio = append(byPrio, v)
	}
	sort.Slice(byPrio, func(i, j int) bool {
		if c := valueCmp(byPrio[i].val, byPrio[j].val); c != 0 {
			return c < 0
		}
		return byPrio[i].insCall > byPrio[j].insCall
	})
	for i := 1; i < len(byPrio); i++ {
		newer, older := byPrio[i-1], byPrio[i]
		if valueCmp(newer.val, older.val) != 0 {
			continue
		}
		// Equal-priority run, sorted newest insert first: adjacent disjointness
		// (older's insert returns before newer's is called) implies pairwise
		// disjointness across the whole run.
		if older.insRet > newer.insCall {
			return false, ErrAmbiguous
		}
	}
	for i, v := range byPrio {
		v.rank = i
	}
	byInsRet := append([]*pqVal(nil), byPrio...)
	sort.Slice(byInsRet, func(i, j int) bool { return byInsRet[i].insRet < byInsRet[j].insRet })
	insRetRank := make(map[*pqVal]int, len(byInsRet))
	for i, v := range byInsRet {
		insRetRank[v] = i
	}

	// Fenwick tree over insert-return ranks holding max delete-call; values
	// are added in ascending priority, so when b is processed the tree
	// holds exactly the values a < b. prefixMax(r) is the max delCall over
	// a with insRetRank < r, i.e. insRet(a) below the query position.
	fen := newMaxFenwick(len(byInsRet))
	for _, b := range byPrio {
		if b.deleted {
			// Certificate: some a < b with insRet(a) < delCall(b) and
			// delCall(a) > delRet(b).
			r := sort.Search(len(byInsRet), func(i int) bool { return byInsRet[i].insRet >= b.delCall })
			if fen.prefixMax(r) > b.delRet {
				return false, nil
			}
		}
		fen.update(insRetRank[b], b.delCall)
	}

	// Greedy simulation over return events in real-time order; present
	// values live in a segment tree keyed by priority rank for O(log n)
	// minimum queries.
	type retEvent struct {
		pos   int
		v     *pqVal
		isDel bool
	}
	rets := make([]retEvent, 0, len(ops))
	for _, op := range ops {
		switch op.method {
		case "Insert", "Add", "Put":
			rets = append(rets, retEvent{pos: op.ret, v: vals[op.arg]})
		case "DeleteMin", "RemoveMin", "TryDeleteMin", "TryRemoveMin":
			rets = append(rets, retEvent{pos: op.ret, v: vals[op.res], isDel: true})
		}
	}
	sort.Slice(rets, func(i, j int) bool { return rets[i].pos < rets[j].pos })

	present := newMinRankSet(len(byPrio))
	for _, ev := range rets {
		t := ev.pos
		v := ev.v
		if !ev.isDel {
			if !v.simInserted {
				v.simInserted = true
				present.add(v.rank)
			}
			continue
		}
		if v.simDeleted {
			continue // deleted during an earlier cascade
		}
		if !v.simInserted {
			if !(v.insCall < t && t < v.insRet) {
				return false, ErrAmbiguous
			}
			v.simInserted = true
			present.add(v.rank)
		}
		// Delete every present value smaller than v; each needs its own
		// open delete right now.
		for {
			r := present.min()
			if r < 0 || r >= v.rank {
				break
			}
			u := byPrio[r]
			if !u.deleted || u.simDeleted || !(u.delCall < t && t < u.delRet) {
				return false, ErrAmbiguous
			}
			u.simDeleted = true
			present.remove(r)
		}
		if present.min() != v.rank {
			return false, ErrAmbiguous // v is not the minimum: punt
		}
		v.simDeleted = true
		present.remove(v.rank)
	}
	return true, nil
}

// maxFenwick is a Fenwick tree supporting point update with max and prefix
// maximum queries (monotone updates only, which max is).
type maxFenwick struct{ tree []int }

func newMaxFenwick(n int) *maxFenwick {
	t := make([]int, n+1)
	for i := range t {
		t[i] = -1
	}
	return &maxFenwick{tree: t}
}

func (f *maxFenwick) update(i, v int) {
	for i++; i < len(f.tree); i += i & -i {
		if v > f.tree[i] {
			f.tree[i] = v
		}
	}
}

// prefixMax returns the maximum over indices < n, or -1 when empty.
func (f *maxFenwick) prefixMax(n int) int {
	best := -1
	for ; n > 0; n -= n & -n {
		if f.tree[n] > best {
			best = f.tree[n]
		}
	}
	return best
}

// minRankSet is a segment tree over ranks supporting add/remove and
// minimum-present queries in O(log n).
type minRankSet struct {
	n    int
	tree []int // counts
}

func newMinRankSet(n int) *minRankSet {
	if n == 0 {
		n = 1
	}
	return &minRankSet{n: n, tree: make([]int, 4*n)}
}

func (s *minRankSet) add(r int)    { s.change(1, 0, s.n-1, r, 1) }
func (s *minRankSet) remove(r int) { s.change(1, 0, s.n-1, r, -1) }

func (s *minRankSet) change(node, lo, hi, r, d int) {
	s.tree[node] += d
	if lo == hi {
		return
	}
	mid := (lo + hi) / 2
	if r <= mid {
		s.change(2*node, lo, mid, r, d)
	} else {
		s.change(2*node+1, mid+1, hi, r, d)
	}
}

// min returns the smallest present rank, or -1 when empty.
func (s *minRankSet) min() int {
	if s.tree[1] == 0 {
		return -1
	}
	node, lo, hi := 1, 0, s.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.tree[2*node] > 0 {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
	return lo
}
