package fast

import (
	"errors"
	"testing"

	"lineup/internal/history"
	"lineup/internal/monitor"
)

// TestPQueueEqualPriorityTie pins the equal-priority tiebreak: "01" and "1"
// are distinct strings with equal numeric priority, so the fast monitor must
// order them the way PQueueModel does — newest insert first — not by an
// arbitrary sort order. Every sequential tie history below is decidable
// (the inserts are disjoint in time), so the fast verdict must be definite
// and agree exactly with NaiveCheck; "ambiguous" is a failure.
func TestPQueueEqualPriorityTie(t *testing.T) {
	cases := []struct {
		name string
		h    *history.History
	}{
		{"newest-first deletes", newHB().
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "1").
			op(0, "DeleteMin()", "01").
			done()},
		{"oldest-first deletes", newHB().
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "01").
			op(0, "DeleteMin()", "1").
			done()},
		{"three-way tie newest-first", newHB().
			op(0, "Insert(001)", "ok").
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "1").
			op(0, "DeleteMin()", "01").
			op(0, "DeleteMin()", "001").
			done()},
		{"three-way tie middle-first", newHB().
			op(0, "Insert(001)", "ok").
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "01").
			op(0, "DeleteMin()", "1").
			op(0, "DeleteMin()", "001").
			done()},
		{"tie below a larger priority", newHB().
			op(0, "Insert(2)", "ok").
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "1").
			op(0, "DeleteMin()", "01").
			op(0, "DeleteMin()", "2").
			done()},
		{"tie left undeleted", newHB().
			op(0, "Insert(01)", "ok").
			op(0, "Insert(1)", "ok").
			op(0, "DeleteMin()", "1").
			done()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fastVerdict := verdict(t, KindPQueue, tc.h)
			slow, err := monitor.NaiveCheck(monitor.PQueueModel(), tc.h, monitor.Options{})
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			t.Logf("fast=%s naive=%v", fastVerdict, slow)
			if fastVerdict == "ambiguous" {
				t.Fatalf("fast punted a sequential tie history (naive=%v)", slow)
			}
			if (fastVerdict == "true") != slow {
				t.Fatalf("disagreement: fast=%s naive=%v", fastVerdict, slow)
			}
		})
	}
}

// TestPQueueOverlappingTieIsAmbiguous pins the boundary of the tiebreak:
// when two equal-priority inserts overlap in time their queue order depends
// on the interleaving, so no static tie order is sound and the fast monitor
// must punt deterministically — before emitting any certificate — rather
// than guess.
func TestPQueueOverlappingTieIsAmbiguous(t *testing.T) {
	h := newHB().
		call(0, "Insert(01)").
		call(1, "Insert(1)").
		ret(0, "ok").
		ret(1, "ok").
		op(0, "DeleteMin()", "01").
		op(0, "DeleteMin()", "1").
		done()
	if _, err := Check(KindPQueue, h); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("overlapping equal-priority inserts: got err=%v, want ErrAmbiguous", err)
	}
	// The punt must still agree with the full search once the fallback runs:
	// the history IS linearizable (Insert(01) then Insert(1) leaves 01 at the
	// head of the tie block).
	slow, err := monitor.NaiveCheck(monitor.PQueueModel(), h, monitor.Options{})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if !slow {
		t.Fatalf("fixture broken: overlapping-insert history should be linearizable")
	}
}
