package fast

import (
	"testing"

	"lineup/internal/monitor"
)

func TestPQueueEqualPriorityTie(t *testing.T) {
	// "01" and "1" are distinct strings with equal numeric priority.
	h := newHB().
		op(0, "Insert(01)", "ok").
		op(0, "Insert(1)", "ok").
		op(0, "DeleteMin()", "1").
		op(0, "DeleteMin()", "01").
		done()
	fastVerdict := verdict(t, KindPQueue, h)
	slow, err := monitor.NaiveCheck(monitor.PQueueModel(), h, monitor.Options{})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	t.Logf("fast=%s naive=%v", fastVerdict, slow)
	if (fastVerdict == "true") != slow && fastVerdict != "ambiguous" {
		t.Fatalf("disagreement: fast=%s naive=%v", fastVerdict, slow)
	}
}
