//go:build race

package fast

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
