package fast

import (
	"fmt"
	"testing"

	"lineup/internal/history"
)

// allocHistory builds the steady-state allocation workload for one kind: a
// sequential unambiguous fill-then-drain history (write clusters for the
// register) of about n operations, entirely inside the fragment, so Check
// exercises its witness-construction hot path end to end.
func allocHistory(k Kind, n int) *history.History {
	b := newHB()
	m := n / 2
	switch k {
	case KindQueue:
		for i := 0; i < m; i++ {
			b.op(0, fmt.Sprintf("Enqueue(%d)", i), "ok")
		}
		for i := 0; i < m; i++ {
			b.op(0, "TryDequeue()", fmt.Sprint(i))
		}
	case KindStack:
		for i := 0; i < m; i++ {
			b.op(0, fmt.Sprintf("Push(%d)", i), "ok")
		}
		for i := m - 1; i >= 0; i-- {
			b.op(0, "TryPop()", fmt.Sprint(i))
		}
	case KindSet:
		for i := 0; i < m; i++ {
			b.op(0, fmt.Sprintf("Add(%d)", i), "true")
		}
		for i := 0; i < m; i++ {
			b.op(0, fmt.Sprintf("Remove(%d)", i), "true")
		}
	case KindRegister:
		for i := 0; i < m; i++ {
			v := fmt.Sprint(i + 1)
			b.op(0, "Write("+v+")", "ok")
			b.op(0, "Read()", v)
		}
	case KindPQueue:
		for i := 0; i < m; i++ {
			b.op(0, fmt.Sprintf("Insert(%d)", i), "ok")
		}
		for i := 0; i < m; i++ {
			b.op(0, "TryDeleteMin()", fmt.Sprint(i))
		}
	}
	return b.done()
}

// BenchmarkFastMonitorAllocs measures each specialized monitor's allocation
// behavior on a 1024-operation in-fragment history; run with -benchmem to
// see allocs/op. The paired regression test below turns the same workload
// into a hard per-operation ceiling.
func BenchmarkFastMonitorAllocs(b *testing.B) {
	for k := KindQueue; k <= KindPQueue; k++ {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			h := allocHistory(k, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Check(k, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestFastMonitorAllocsPerOp is the allocation regression guard for the
// specialized monitors: deciding one operation of an in-fragment history
// must stay under a fixed allocation budget per type. The ceilings have
// roughly 50% headroom over measured values; a hot-path change that starts
// allocating per comparison or per event (string joins, per-op maps) blows
// through them immediately.
func TestFastMonitorAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	const n = 1024
	ceilings := map[Kind]float64{
		KindQueue:    3, // measured 1.56
		KindStack:    3, // measured 1.56
		KindSet:      4, // measured 2.05
		KindRegister: 5, // measured 3.05
		KindPQueue:   3, // measured 1.56
	}
	for k := KindQueue; k <= KindPQueue; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			h := allocHistory(k, n)
			ops := len(h.Ops())
			if ops == 0 {
				t.Fatal("workload has no operations")
			}
			perRun := testing.AllocsPerRun(5, func() {
				if _, err := Check(k, h); err != nil {
					t.Fatal(err)
				}
			})
			perOp := perRun / float64(ops)
			t.Logf("%s: %.0f allocs per check, %.2f per operation (%d operations)",
				k, perRun, perOp, ops)
			if perOp > ceilings[k] {
				t.Errorf("%s: %.2f allocs per operation exceeds the %.0f ceiling", k, perOp, ceilings[k])
			}
		})
	}
}
