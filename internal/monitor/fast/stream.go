package fast

import (
	"container/heap"
	"sort"

	"lineup/internal/history"
)

// QueueStream is the Incremental-compatible streaming form of the queue
// monitor: events are applied one at a time in arrival order and the
// verdict is exact at every quiescent cut, in amortized O(log n) per event.
//
// The queue is the one type of the five whose certificates localize to
// event arrival: certificates 1 and 2 (unknown value, double dequeue,
// dequeue preceding enqueue) are detected the moment a dequeue returns,
// and the FIFO-inversion certificate 3 — values a, b with
// enqRet(a) < enqCall(b) and deqRet(b) < deqCall(a), an undequeued a
// counting as deqCall +inf — is recorded as a per-dequeue obligation and
// settled at the next quiescent cut, once every concurrent dequeue call
// has been attributed to its value. Violations are monotone: a certificate
// in a prefix survives in every extension (positions never change), so a
// false verdict at a cut is final, exactly as if the batch checker ran on
// the growing history.
//
// Leaving the fragment (a duplicate value, a failed TryDequeue, an unknown
// method) is terminal: Quiesce returns ErrAmbiguous from then on and the
// caller falls back to the general incremental checker.
type QueueStream struct {
	pos       int // arrival-order position counter
	ambiguous bool
	violated  bool

	vals     map[string]*qsVal // by enqueued value
	deqCalls map[int]int       // op index -> call position of in-flight dequeues
	enqCalls map[int]string    // op index -> value of in-flight enqueues
	pending  int               // in-flight operations (quiescence detection)

	alive aliveHeap // enq-completed, never dequeued so far (lazy deletion)

	// Settled at the next quiescent cut.
	obligations []qsObligation
	candidates  []qsCandidate
}

type qsVal struct {
	enqCall, enqRet int
	deqCall, deqRet int
	dequeued        bool
}

// qsObligation is the deferred certificate-3 check for one dequeued value
// b: violated iff some other value a has enqRet(a) < enqCall(b) and a
// dequeue call after deqRet(b), or no dequeue at all.
type qsObligation struct {
	enqCall, deqRet int
}

// qsCandidate is a value dequeued this window, a potential rival "a" for
// obligations whose dequeue returned before this one's call. The enqueue
// return is read at settlement time: the enqueue may still be in flight
// when the dequeue returns, but is complete by the cut.
type qsCandidate struct {
	deqCall int
	v       *qsVal
}

// NewQueueStream returns an empty stream positioned before any event.
func NewQueueStream() *QueueStream {
	return &QueueStream{
		vals:     make(map[string]*qsVal),
		deqCalls: make(map[int]int),
		enqCalls: make(map[int]string),
	}
}

// Ambiguous reports whether the stream has left the decidable fragment.
func (s *QueueStream) Ambiguous() bool { return s.ambiguous }

// Quiescent reports whether every applied operation has returned.
func (s *QueueStream) Quiescent() bool { return s.pending == 0 }

// Apply feeds one event in arrival order.
func (s *QueueStream) Apply(e history.Event) {
	t := s.pos
	s.pos++
	if s.ambiguous {
		return
	}
	method, arg := splitOp(e.Op)
	switch e.Kind {
	case history.Call:
		s.pending++
		switch method {
		case "Enqueue", "Add", "Put":
			if arg == "" {
				s.ambiguous = true
				return
			}
			if _, dup := s.vals[arg]; dup {
				s.ambiguous = true
				return
			}
			s.vals[arg] = &qsVal{enqCall: t, deqCall: inf, deqRet: inf}
			s.enqCalls[e.Index] = arg
		case "Dequeue", "Take", "TryDequeue", "TryTake":
			s.deqCalls[e.Index] = t
		default:
			s.ambiguous = true
		}
	case history.Return:
		s.pending--
		switch method {
		case "Enqueue", "Add", "Put":
			val, ok := s.enqCalls[e.Index]
			delete(s.enqCalls, e.Index)
			if !ok || e.Result != okResult {
				s.ambiguous = true
				return
			}
			v := s.vals[val]
			v.enqRet = t
			heap.Push(&s.alive, aliveEntry{enqRet: t, v: v})
		case "Dequeue", "Take", "TryDequeue", "TryTake":
			call, ok := s.deqCalls[e.Index]
			delete(s.deqCalls, e.Index)
			if !ok || e.Result == failResult {
				s.ambiguous = true
				return
			}
			v := s.vals[e.Result]
			if v == nil || v.dequeued || t < v.enqCall {
				s.violated = true // certificates 1 and 2
				return
			}
			v.dequeued = true
			v.deqCall, v.deqRet = call, t
			s.obligations = append(s.obligations, qsObligation{enqCall: v.enqCall, deqRet: t})
			s.candidates = append(s.candidates, qsCandidate{deqCall: call, v: v})
		default:
			s.ambiguous = true
		}
	}
}

// Quiesce settles the deferred obligations and reports the verdict for the
// complete prefix applied so far. It must be called at a quiescent cut;
// calling it mid-operation returns ErrAmbiguous (the prefix is not a
// complete history). Once the stream has left the fragment the error is
// permanent.
func (s *QueueStream) Quiesce() (bool, error) {
	if s.ambiguous || s.pending != 0 {
		return false, ErrAmbiguous
	}
	if len(s.obligations) > 0 && !s.violated {
		// Obligations descending by dequeue return, candidates descending
		// by dequeue call: one merge pass maintains the minimum enqueue
		// return over rivals dequeued late enough, and the alive heap
		// supplies rivals never dequeued at all. A rival below the
		// obligation's enqueue call is certificate 3. Values dequeued in
		// earlier windows cannot qualify (their dequeue call precedes this
		// window), so clearing both slices at the cut is safe.
		sort.Slice(s.obligations, func(i, j int) bool { return s.obligations[i].deqRet > s.obligations[j].deqRet })
		sort.Slice(s.candidates, func(i, j int) bool { return s.candidates[i].deqCall > s.candidates[j].deqCall })
		minEnqRet := inf
		ci := 0
		for _, ob := range s.obligations {
			for ci < len(s.candidates) && s.candidates[ci].deqCall > ob.deqRet {
				if r := s.candidates[ci].v.enqRet; r < minEnqRet {
					minEnqRet = r
				}
				ci++
			}
			rival := minEnqRet
			for len(s.alive) > 0 && s.alive[0].v.dequeued {
				heap.Pop(&s.alive)
			}
			if len(s.alive) > 0 && s.alive[0].enqRet < rival {
				rival = s.alive[0].enqRet
			}
			if rival < ob.enqCall {
				s.violated = true
				break
			}
		}
	}
	s.obligations = s.obligations[:0]
	s.candidates = s.candidates[:0]
	return !s.violated, nil
}

type aliveEntry struct {
	enqRet int
	v      *qsVal
}

// aliveHeap is a min-heap over enqueue-return positions of values not yet
// dequeued; entries whose value has since been dequeued are popped lazily.
type aliveHeap []aliveEntry

func (h aliveHeap) Len() int           { return len(h) }
func (h aliveHeap) Less(i, j int) bool { return h[i].enqRet < h[j].enqRet }
func (h aliveHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *aliveHeap) Push(x any) { *h = append(*h, x.(aliveEntry)) }

func (h *aliveHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
