// Package fast implements specialized near-log-linear linearizability
// monitors for the five classic data types — queue, stack, set, register,
// and priority queue — following the decrease-and-conquer approach of Lee &
// Mathur (arXiv:2410.04581) and the per-type monitors of Abdulla et al.
// (arXiv:2509.17795).
//
// Every checker in this package is certificate-driven: it answers
// "linearizable" only after constructing an explicit witness (a set of
// linearization points, one inside each operation's interval, replaying
// legally on the sequential object), and "not linearizable" only after
// finding a violation certificate that rules out every interleaving (a
// value dequeued twice, a FIFO order inversion, an infeasible per-value
// presence interval, ...). Whenever a history falls outside the fragment a
// checker can decide — pending operations, stuck histories, duplicate
// values, observer operations such as Count or failed TryDequeue — it
// returns ErrAmbiguous and the caller falls back to the general memoized
// WGL witness search. The fallback keeps verdicts bit-identical to the
// exhaustive checker by construction: fast never guesses.
//
// Complexity: O(n log n) per history for every type. The queue and priority
// queue use an interval sweep (Fenwick tree for the pairwise priority
// certificate); the stack and priority queue build their witnesses by a
// greedy event-order simulation that only ever removes from the top /
// minimum; the set solves an exact two-point feasibility problem per value;
// the register schedules write clusters greedily by earliest deadline.
package fast

import (
	"errors"
	"math"
	"strconv"
	"strings"

	"lineup/internal/history"
)

// ErrAmbiguous reports that a history is outside the fragment the
// specialized monitor can decide; the caller must fall back to the general
// witness search. It is a sentinel: wrapped errors compare with errors.Is.
var ErrAmbiguous = errors.New("fast: history outside the decidable fragment")

// inf is the position assigned to operations that never happen (a value
// never dequeued, a second transition that does not exist). It is far above
// any real event position but far from integer overflow so sums stay safe.
const inf = math.MaxInt / 4

// Kind selects which specialized monitor to run.
type Kind int

const (
	// KindQueue checks FIFO queue histories (Enqueue/Dequeue vocabulary).
	KindQueue Kind = iota
	// KindStack checks LIFO stack histories (Push/Pop vocabulary).
	KindStack
	// KindSet checks set histories (Add/Remove/Contains vocabulary).
	KindSet
	// KindRegister checks atomic register histories (Read/Write vocabulary).
	KindRegister
	// KindPQueue checks priority queue histories (Insert/DeleteMin vocabulary).
	KindPQueue
)

// String names the kind after its monitor.Model counterpart.
func (k Kind) String() string {
	switch k {
	case KindQueue:
		return "queue"
	case KindStack:
		return "stack"
	case KindSet:
		return "set"
	case KindRegister:
		return "register"
	case KindPQueue:
		return "pqueue"
	}
	return "unknown"
}

// KindFor maps a monitor.Model name to the specialized monitor that decides
// it, if one exists. The names match monitor.Builtin.
func KindFor(model string) (Kind, bool) {
	switch model {
	case "queue":
		return KindQueue, true
	case "stack":
		return KindStack, true
	case "set":
		return KindSet, true
	case "register":
		return KindRegister, true
	case "pqueue":
		return KindPQueue, true
	}
	return 0, false
}

// Supported reports whether a specialized monitor exists for the model name.
func Supported(model string) bool {
	_, ok := KindFor(model)
	return ok
}

// Names lists the model names with specialized monitors, in display order.
func Names() []string {
	return []string{"queue", "stack", "set", "register", "pqueue"}
}

// Check runs the specialized monitor for kind k on h. It returns a definite
// verdict (true = linearizable) with a nil error, or ErrAmbiguous when the
// history is outside the decidable fragment and the caller must fall back
// to the general witness search. Check never returns a wrong definite
// verdict: true is backed by a constructed witness, false by a violation
// certificate.
func Check(k Kind, h *history.History) (bool, error) {
	ops, ok := completeOps(h)
	if !ok {
		return false, ErrAmbiguous
	}
	switch k {
	case KindQueue:
		return checkQueue(ops)
	case KindStack:
		return checkStack(ops)
	case KindSet:
		return checkSet(ops)
	case KindRegister:
		return checkRegister(ops)
	case KindPQueue:
		return checkPQueue(ops)
	}
	return false, ErrAmbiguous
}

// call is one completed operation with its method split from its rendered
// argument, positioned by event indices (all distinct, call < ret).
type call struct {
	method string
	arg    string
	res    string
	call   int
	ret    int
}

// completeOps extracts the operations of a complete, non-stuck history.
// Pending operations and stuck histories are outside every fragment (the
// fast monitors construct witnesses over closed intervals only), so those
// yield ok=false and the caller reports ErrAmbiguous.
func completeOps(h *history.History) ([]call, bool) {
	if h == nil || h.Stuck {
		return nil, false
	}
	raw := h.Ops()
	out := make([]call, 0, len(raw))
	for _, op := range raw {
		if !op.Complete {
			return nil, false
		}
		method, arg := splitOp(op.Name)
		out = append(out, call{method: method, arg: arg, res: op.Result, call: op.CallPos, ret: op.RetPos})
	}
	return out, true
}

// splitOp separates "Method(args)" into method and rendered argument list,
// mirroring monitor.SplitOp.
func splitOp(name string) (method, args string) {
	i := strings.IndexByte(name, '(')
	if i < 0 || !strings.HasSuffix(name, ")") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// valueLess orders priority-queue values: numerically when both parse as
// integers, lexicographically otherwise. monitor.PQueueModel uses the same
// order; the two must agree or cross-checking fails.
func valueLess(a, b string) bool { return valueCmp(a, b) < 0 }

// valueCmp is the three-way form of valueLess. Distinct strings can compare
// equal ("01" vs "1" both parse as 1): equal-priority values are NOT
// interchangeable under the model — PQueueModel inserts each value at the
// head of its equal-priority block — so checkPQueue resolves ties by insert
// time instead of inventing an arbitrary order.
func valueCmp(a, b string) int {
	ai, aerr := strconv.Atoi(a)
	bi, berr := strconv.Atoi(b)
	if aerr == nil && berr == nil {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}
