package monitor

import (
	"errors"
	"fmt"

	"lineup/internal/history"
	"lineup/internal/telemetry"
)

// Mode selects how pending operations of the history are judged.
type Mode int

const (
	// ModeAuto (the zero value) picks the definition from the history
	// itself: complete histories get the plain witness search, histories
	// marked stuck get the generalized Definition 3 treatment, and
	// histories that merely end with pending calls (e.g. a truncated
	// recording) get the classic Definition 1 treatment.
	ModeAuto Mode = iota
	// ModeClassic forces the original Definition 1: pending operations may
	// be completed with any result the model admits, or dropped; blocking
	// is invisible.
	ModeClassic
	// ModeGeneralized forces the blocking-aware Definitions 2/3: every
	// pending operation e must have a stuck serial witness for the reduced
	// history H[e].
	ModeGeneralized
)

// Options configures Check.
type Options struct {
	// Mode selects the linearizability definition (see Mode).
	Mode Mode
	// NoMemo disables the memoized seen-set, reverting to plain Wing–Gong
	// backtracking (exposed for the monitor-vs-enumeration benchmarks).
	NoMemo bool
	// NoPartition disables P-compositional history splitting.
	NoPartition bool
	// MaxStates bounds the search nodes expanded per history part (a safety
	// net against adversarial histories; 0 selects a 4,000,000 default).
	MaxStates int
	// Telemetry, when non-nil, accumulates the check's search measurements
	// (expanded nodes, memo hits, parts) across calls. Outcome.Stats remains
	// the per-call source of truth; the collector only aggregates.
	Telemetry *telemetry.Collector
}

func (o Options) maxStates() int {
	if o.MaxStates == 0 {
		return 4_000_000
	}
	return o.MaxStates
}

// ErrStateLimit is returned when the witness search exceeds
// Options.MaxStates before reaching a verdict.
var ErrStateLimit = errors.New("monitor: witness search exceeded the state budget")

// WitnessStep is one operation of a found linearization, in witness order.
type WitnessStep struct {
	Thread int
	Op     string
	Result string
}

func (s WitnessStep) String() string {
	return fmt.Sprintf("T%d:%s=%s", s.Thread, s.Op, s.Result)
}

// Stats are search measurements, aggregated over all history parts.
type Stats struct {
	// Parts is the number of P-compositional parts the history split into
	// (1 when partitioning did not apply).
	Parts int
	// Visited counts expanded search nodes.
	Visited int
	// MemoHits counts nodes pruned by the seen-set.
	MemoHits int
}

// Outcome is the verdict of a monitor check.
type Outcome struct {
	// Linearizable reports witness existence under the selected mode.
	Linearizable bool
	// Witness is a linearization order proving linearizability, filled for
	// complete and classic checks. When the history was partitioned the
	// steps are grouped per part (a valid global witness exists by
	// P-compositionality but is not materialized). Generalized stuck checks
	// leave it nil.
	Witness []WitnessStep
	// FailedPending is the pending operation with no stuck serial witness
	// (generalized mode only).
	FailedPending *history.Op
	// FailedPart is the partition key of the part that had no witness (""
	// when the history was not partitioned).
	FailedPart string
	// Stats are the aggregated search measurements.
	Stats Stats
}

// checkKind is the per-part search variant.
type checkKind int

const (
	// kindComplete: all operations are complete and every recorded result
	// must be reproduced.
	kindComplete checkKind = iota
	// kindClassic: pending operations are optional and take whatever result
	// the model yields.
	kindClassic
	// kindStuck: all complete operations must linearize, after which the
	// part's pending operation must block.
	kindStuck
)

// Reduce builds the reduced history H[e] of Definition 2: the completed
// operations of h, in their original event order, plus the invocation of the
// pending operation e. The result is marked stuck.
func Reduce(h *history.History, e history.Op) *history.History {
	out := &history.History{Stuck: true}
	complete := make(map[int]bool)
	for _, op := range h.Ops() {
		if op.Complete {
			complete[op.Index] = true
		}
	}
	for _, ev := range h.Events {
		if complete[ev.Index] || (ev.Index == e.Index && ev.Kind == history.Call) {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// Check decides witness existence for one recorded history against the
// model. It returns an error only for malformed inputs, unknown operations,
// or an exceeded state budget — never for a mere violation, which is
// reported through Outcome.Linearizable.
func Check(m *Model, h *history.History, opts Options) (*Outcome, error) {
	if m == nil || m.Init == nil || m.Step == nil {
		return nil, errors.New("monitor: model must define Init and Step")
	}
	if !h.WellFormed() {
		return nil, errors.New("monitor: history is not well-formed (a thread overlaps its own operations)")
	}
	out := &Outcome{Linearizable: true}
	defer func() {
		// Aggregate whatever the search measured, even on an error return.
		if c := opts.Telemetry; c != nil {
			c.WitnessNodes.Add(int64(out.Stats.Visited))
			c.MonitorMemoHits.Add(int64(out.Stats.MemoHits))
			c.MonitorParts.Add(int64(out.Stats.Parts))
		}
	}()
	pending := h.Pending()
	mode := opts.Mode
	if mode == ModeAuto {
		if h.Stuck {
			mode = ModeGeneralized
		} else {
			mode = ModeClassic
		}
	}
	switch {
	case len(pending) == 0:
		return out, checkParts(m, h, kindComplete, opts, out)
	case mode == ModeClassic:
		return out, checkParts(m, h, kindClassic, opts, out)
	default:
		for i := range pending {
			e := pending[i]
			sub := &Outcome{Linearizable: true}
			if err := checkParts(m, Reduce(h, e), kindStuck, opts, sub); err != nil {
				return nil, err
			}
			out.Stats.Visited += sub.Stats.Visited
			out.Stats.MemoHits += sub.Stats.MemoHits
			if sub.Stats.Parts > out.Stats.Parts {
				out.Stats.Parts = sub.Stats.Parts
			}
			if !sub.Linearizable {
				out.Linearizable = false
				out.FailedPending = &e
				out.FailedPart = sub.FailedPart
				return out, nil
			}
		}
		return out, nil
	}
}

// checkParts splits the history P-compositionally (when the model allows)
// and runs the per-part witness search, in parallel when there are at least
// two parts. It fills out with the combined verdict, witness, and stats.
func checkParts(m *Model, h *history.History, kind checkKind, opts Options, out *Outcome) error {
	parts, keys := partition(m, h, opts)
	out.Stats.Parts = len(parts)
	if len(parts) == 1 {
		res := runPart(m, parts[0], kind, opts)
		mergePart(out, res, keys[0])
		return res.err
	}
	results := make([]partResult, len(parts))
	done := make(chan int, len(parts))
	for i := range parts {
		go func(i int) {
			results[i] = runPart(m, parts[i], kind, opts)
			done <- i
		}(i)
	}
	for range parts {
		<-done
	}
	var firstErr error
	for i, res := range results {
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		mergePart(out, res, keys[i])
	}
	return firstErr
}

// partResult is the outcome of one part's search.
type partResult struct {
	ok      bool
	witness []WitnessStep
	stats   Stats
	err     error
}

func mergePart(out *Outcome, res partResult, key string) {
	out.Stats.Visited += res.stats.Visited
	out.Stats.MemoHits += res.stats.MemoHits
	if res.err != nil {
		return
	}
	if !res.ok && out.Linearizable {
		out.Linearizable = false
		out.FailedPart = key
		out.Witness = nil
	}
	if out.Linearizable {
		out.Witness = append(out.Witness, res.witness...)
	}
}

// runPart runs the Wing–Gong search on one history part. The model's Init,
// Step, and Partition hooks are user code; a panic in them is contained as a
// part error so a multi-part check (whose parts run in their own goroutines)
// can never take down the process or strand its siblings.
func runPart(m *Model, part *history.History, kind checkKind, opts Options) (res partResult) {
	defer func() {
		if r := recover(); r != nil {
			res = partResult{err: fmt.Errorf("monitor: model panicked during witness search: %v", r)}
		}
	}()
	s, err := newSearcher(m, part, kind, opts)
	if err != nil {
		return partResult{err: err}
	}
	ok, err := s.run()
	res = partResult{ok: ok, stats: Stats{Visited: s.visited, MemoHits: s.memoHits}, err: err}
	if ok && kind != kindStuck {
		res.witness = s.witness()
	}
	return res
}

// searcher is the state of one part's backtracking search.
type searcher struct {
	m    *Model
	opts Options
	kind checkKind

	ops      []history.Op
	pred     []mask // pred[i]: ops that must be linearized before op i
	must     mask   // complete ops (all of them must appear in the witness)
	all      mask   // every op of the part
	pendName string // kindStuck: the operation that must block at the end

	memo     map[string]bool
	visited  int
	memoHits int

	order   []int    // current linearization, indices into ops
	results []string // result assigned to each order entry
}

func newSearcher(m *Model, part *history.History, kind checkKind, opts Options) (*searcher, error) {
	s := &searcher{m: m, opts: opts, kind: kind, memo: make(map[string]bool)}
	for _, op := range part.Ops() {
		if !op.Complete && kind == kindStuck {
			if s.pendName != "" {
				return nil, errors.New("monitor: reduced history has more than one pending operation")
			}
			s.pendName = op.Name
			continue // the pending op is not searched, only probed at the end
		}
		s.ops = append(s.ops, op)
	}
	n := len(s.ops)
	words := (n + 63) / 64
	s.must = newMask(words)
	s.all = newMask(words)
	s.pred = make([]mask, n)
	for i := range s.ops {
		s.all.set(i)
		if s.ops[i].Complete {
			s.must.set(i)
		}
		s.pred[i] = newMask(words)
		for j := range s.ops {
			if i != j && history.Precedes(s.ops[j], s.ops[i]) {
				s.pred[i].set(j)
			}
		}
	}
	return s, nil
}

func (s *searcher) run() (bool, error) {
	cur := newMask(len(s.all))
	return s.search(cur, s.m.Init())
}

// fingerprint canonicalizes a model state, falling back to %#v rendering
// when the model does not define Fingerprint.
func (s *searcher) fingerprint(state any) string {
	if s.m.Fingerprint != nil {
		return s.m.Fingerprint(state)
	}
	return fmt.Sprintf("%#v", state)
}

func (s *searcher) search(cur mask, state any) (bool, error) {
	done := cur.covers(s.must)
	if done && (s.kind != kindStuck || s.pendName == "") {
		// Complete/classic witness found — or a stuck-check part that does
		// not contain the pending operation, which only needs its completed
		// ops to linearize.
		return true, nil
	}
	var key string
	if !s.opts.NoMemo {
		key = cur.key(s.fingerprint(state))
		if s.memo[key] {
			s.memoHits++
			return false, nil
		}
	}
	s.visited++
	if s.visited > s.opts.maxStates() {
		return false, fmt.Errorf("%w (limit %d)", ErrStateLimit, s.opts.maxStates())
	}
	if done {
		// kindStuck with every completed op linearized (must == all, so no
		// candidates remain): the pending op must block in this state.
		_, _, err := s.m.Step(state, s.pendName)
		if errors.Is(err, ErrBlock) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
	} else {
		for i := range s.ops {
			if cur.has(i) || !cur.covers(s.pred[i]) {
				continue
			}
			res, next, err := s.m.Step(state, s.ops[i].Name)
			if errors.Is(err, ErrBlock) {
				continue // not enabled in this state
			}
			if err != nil {
				return false, err
			}
			if s.ops[i].Complete && res != s.ops[i].Result {
				continue // the model contradicts the recorded result
			}
			cur.set(i)
			s.order = append(s.order, i)
			s.results = append(s.results, res)
			ok, err := s.search(cur, next)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			s.order = s.order[:len(s.order)-1]
			s.results = s.results[:len(s.results)-1]
			cur.clear(i)
		}
	}
	// Fully explored without a witness: memoize the failure.
	if !s.opts.NoMemo {
		s.memo[key] = true
	}
	return false, nil
}

// witness renders the current linearization (valid right after a successful
// run).
func (s *searcher) witness() []WitnessStep {
	out := make([]WitnessStep, len(s.order))
	for k, i := range s.order {
		out[k] = WitnessStep{Thread: s.ops[i].Thread, Op: s.ops[i].Name, Result: s.results[k]}
	}
	return out
}

// mask is a small bitset over the operations of one history part.
type mask []uint64

func newMask(words int) mask {
	if words == 0 {
		words = 1
	}
	return make(mask, words)
}

func (b mask) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b mask) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b mask) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// covers reports whether every bit of o is set in b.
func (b mask) covers(o mask) bool {
	for w := range o {
		if o[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

// key encodes the mask plus a state fingerprint as a memoization key.
func (b mask) key(fp string) string {
	buf := make([]byte, 0, len(b)*8+len(fp))
	for _, w := range b {
		for k := 0; k < 8; k++ {
			buf = append(buf, byte(w>>(8*k)))
		}
	}
	return string(append(buf, fp...))
}
