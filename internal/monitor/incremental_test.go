package monitor_test

import (
	"errors"
	"math/rand"
	"testing"

	"lineup/internal/history"
	"lineup/internal/monitor"
)

// runIncremental feeds h through an Incremental checker, retiring a window
// at every quiescent cut with at least window completed operations, and
// returns the final verdict — the streaming service's checking loop in
// miniature.
func runIncremental(t *testing.T, m *monitor.Model, h *history.History, window int) bool {
	t.Helper()
	inc, err := monitor.NewIncremental(m, monitor.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	var buf []history.Event
	open, completed := 0, 0
	for _, e := range h.Events {
		buf = append(buf, e)
		if e.Kind == history.Call {
			open++
		} else {
			open--
			completed++
		}
		if open == 0 && completed >= window {
			if _, err := inc.ExtendComplete(&history.History{Events: buf}); err != nil {
				t.Fatalf("ExtendComplete: %v", err)
			}
			buf = buf[:0]
			completed = 0
		}
	}
	out, err := inc.Finish(&history.History{Events: buf, Stuck: h.Stuck})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return out.Linearizable
}

// randomQueueHistory generates a random concurrent queue history whose
// results are assigned at return time by stepping a live model (so the
// completion order is a witness and the history is linearizable by
// construction); corrupt flips one result to break that.
func randomQueueHistory(rng *rand.Rand, m *monitor.Model, nOps int, corrupt bool) *history.History {
	b := newHB()
	state := m.Init()
	open := map[int]string{}
	const threads = 3
	issued := 0
	for issued < nOps || len(open) > 0 {
		th := rng.Intn(threads)
		if op, busy := open[th]; busy && (rng.Intn(2) == 0 || issued >= nOps) {
			res, next, err := m.Step(state, op)
			if err != nil {
				panic(err) // Enqueue/TryDequeue never block
			}
			state = next
			b.ret(th, res)
			delete(open, th)
		} else if !busy && issued < nOps {
			var op string
			if rng.Intn(2) == 0 {
				op = "Enqueue(" + string(rune('0'+rng.Intn(3))) + ")"
			} else {
				op = "TryDequeue()"
			}
			b.call(th, op)
			open[th] = op
			issued++
		}
	}
	h := b.done()
	if corrupt {
		rets := []int{}
		for i, e := range h.Events {
			if e.Kind == history.Return {
				rets = append(rets, i)
			}
		}
		i := rets[rng.Intn(len(rets))]
		wrong := []string{"0", "1", "2", "Fail", "ok"}
		for _, wr := range wrong {
			if wr != h.Events[i].Result {
				h.Events[i].Result = wr
				break
			}
		}
	}
	return h
}

// TestIncrementalMatchesBatch is the soundness-and-completeness check of the
// quiescent-cut decomposition: over random histories (half deliberately
// corrupted) and several window sizes, the windowed incremental verdict must
// equal the batch Check verdict.
func TestIncrementalMatchesBatch(t *testing.T) {
	m := monitor.QueueModel()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		h := randomQueueHistory(rng, m, 4+rng.Intn(10), trial%2 == 1)
		batch := mustCheck(t, m, h, monitor.Options{NoPartition: true})
		for _, w := range []int{1, 2, 4, 8} {
			if got := runIncremental(t, m, h, w); got != batch.Linearizable {
				t.Fatalf("trial %d window %d: incremental says %v, batch says %v\nhistory: %+v",
					trial, w, got, batch.Linearizable, h.Events)
			}
		}
	}
}

// TestIncrementalFrontierKeepsAllWitnessStates: two overlapping writes have
// witnesses in both orders, so after the window retires the frontier must
// hold both final register values — collapsing to one would wrongly reject
// the read of the other.
func TestIncrementalFrontierKeepsAllWitnessStates(t *testing.T) {
	m := monitor.RegisterModel()
	window := newHB().call(0, "Write(1)").call(1, "Write(2)").ret(0, "ok").ret(1, "ok").done()
	for _, read := range []struct {
		res  string
		want bool
	}{{"1", true}, {"2", true}, {"3", false}} {
		inc, err := monitor.NewIncremental(m, monitor.Options{})
		if err != nil {
			t.Fatalf("NewIncremental: %v", err)
		}
		ok, err := inc.ExtendComplete(window)
		if err != nil || !ok {
			t.Fatalf("ExtendComplete: ok=%v err=%v", ok, err)
		}
		if got := inc.FrontierSize(); got != 2 {
			t.Fatalf("frontier size after overlapping writes = %d, want 2", got)
		}
		out, err := inc.Finish(newHB().op(0, "Read()", read.res).done())
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if out.Linearizable != read.want {
			t.Errorf("Read()=%s: linearizable=%v, want %v", read.res, out.Linearizable, read.want)
		}
	}
}

// TestIncrementalRejectsNonQuiescentWindow: a window with a pending call is
// not a quiescent cut and must be refused, not misjudged.
func TestIncrementalRejectsNonQuiescentWindow(t *testing.T) {
	m := monitor.CounterModel()
	inc, err := monitor.NewIncremental(m, monitor.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	h := newHB().op(0, "Inc()", "ok").call(1, "Inc()").done()
	if _, err := inc.ExtendComplete(h); !errors.Is(err, monitor.ErrWindowNotQuiescent) {
		t.Fatalf("ExtendComplete on pending window: err=%v, want ErrWindowNotQuiescent", err)
	}
}

// TestIncrementalFailureIsSticky: once a window fails, the frontier is empty
// and every later window (and Finish) reports not linearizable.
func TestIncrementalFailureIsSticky(t *testing.T) {
	m := monitor.CounterModel()
	inc, err := monitor.NewIncremental(m, monitor.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	ok, err := inc.ExtendComplete(newHB().op(0, "Get()", "5").done())
	if err != nil || ok {
		t.Fatalf("corrupt window: ok=%v err=%v, want rejection", ok, err)
	}
	if inc.FrontierSize() != 0 {
		t.Fatalf("frontier after failure = %d, want 0", inc.FrontierSize())
	}
	ok, err = inc.ExtendComplete(newHB().op(0, "Inc()", "ok").done())
	if err != nil || ok {
		t.Fatalf("window after failure: ok=%v err=%v, want sticky failure", ok, err)
	}
	out, err := inc.Finish(newHB().done())
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if out.Linearizable {
		t.Fatal("Finish after failed window reports linearizable")
	}
}

// TestIncrementalStuckResidual: the stuck marker applies to the residual
// window at Finish, reproducing the generalized stuck treatment.
func TestIncrementalStuckResidual(t *testing.T) {
	m := monitor.QueueModel()
	inc, err := monitor.NewIncremental(m, monitor.Options{})
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	if ok, err := inc.ExtendComplete(newHB().op(0, "Enqueue(10)", "ok").done()); err != nil || !ok {
		t.Fatalf("ExtendComplete: ok=%v err=%v", ok, err)
	}
	// Take() pending on a non-empty queue cannot be stuck: not linearizable
	// under the generalized definition.
	out, err := inc.Finish(newHB().call(1, "Take()").stuck().done())
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if out.Linearizable {
		t.Fatal("stuck Take() on non-empty queue reported linearizable")
	}
}
