package monitor_test

import (
	"testing"

	"lineup/internal/monitor"
)

// replay runs a serial script through a model and returns the result strings.
func replay(t *testing.T, m *monitor.Model, ops ...string) []string {
	t.Helper()
	state := m.Init()
	out := make([]string, len(ops))
	for i, op := range ops {
		res, next, err := m.Step(state, op)
		if err != nil {
			t.Fatalf("step %q: %v", op, err)
		}
		out[i] = res
		state = next
	}
	return out
}

func expect(t *testing.T, got, want []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestBuiltinRegistry(t *testing.T) {
	for _, name := range monitor.BuiltinNames() {
		m, ok := monitor.Builtin(name)
		if !ok || m == nil || m.Name != name {
			t.Fatalf("Builtin(%q) broken: %v %v", name, m, ok)
		}
	}
	if _, ok := monitor.Builtin("no-such-model"); ok {
		t.Fatal("unknown model name must not resolve")
	}
}

func TestQueueVocabulary(t *testing.T) {
	got := replay(t, monitor.QueueModel(),
		"TryDequeue()", "Enqueue(1)", "Add(2)", "Count()", "TryPeek()",
		"ToArray()", "TryTake()", "Dequeue()", "IsEmpty()")
	expect(t, got, []string{"Fail", "ok", "ok", "2", "1", "[1 2]", "1", "2", "true"})
}

func TestStackVocabulary(t *testing.T) {
	got := replay(t, monitor.StackModel(),
		"TryPop()", "Push(1)", "Push(2)", "TryPeek()", "ToArray()",
		"Pop()", "Count()", "TryPop()", "IsEmpty()")
	expect(t, got, []string{"Fail", "ok", "ok", "2", "[2 1]", "2", "1", "1", "true"})
}

func TestSetVocabulary(t *testing.T) {
	got := replay(t, monitor.SetModel(),
		"Add(5)", "Add(5)", "Contains(5)", "Contains(6)", "Count()",
		"Remove(5)", "Remove(5)")
	expect(t, got, []string{"true", "false", "true", "false", "1", "true", "false"})
}

func TestRegisterVocabulary(t *testing.T) {
	got := replay(t, monitor.RegisterModel(),
		"Read()", "Write(7)", "Get()", "CAS(7,9)", "CAS(7,11)", "Read()")
	expect(t, got, []string{"0", "ok", "7", "true", "false", "9"})
}

func TestCounterVocabulary(t *testing.T) {
	got := replay(t, monitor.CounterModel(),
		"Inc()", "Increment()", "Dec()", "Get()", "Count()")
	expect(t, got, []string{"ok", "ok", "ok", "1", "1"})
}

func TestMREVocabulary(t *testing.T) {
	got := replay(t, monitor.MREModel(),
		"IsSet()", "WaitOne(0)", "Set()", "Wait()", "IsSet()", "Reset()", "WaitOne(0)")
	expect(t, got, []string{"false", "false", "ok", "ok", "true", "ok", "false"})
}

func TestSplitOp(t *testing.T) {
	cases := []struct{ in, method, args string }{
		{"Enqueue(10)", "Enqueue", "10"},
		{"TryTake()", "TryTake", ""},
		{"CAS(1,2)", "CAS", "1,2"},
		{"Wait", "Wait", ""},
	}
	for _, c := range cases {
		m, a := monitor.SplitOp(c.in)
		if m != c.method || a != c.args {
			t.Fatalf("SplitOp(%q) = %q, %q", c.in, m, a)
		}
	}
}
