// Package atomicity implements the conflict-serializability (atomicity)
// monitor used for the paper's Section 5.6 comparison, following the
// approach of Farzan and Madhusudan's "Monitoring atomicity in concurrent
// programs" [10]: each operation of the test is a transaction; the monitor
// builds the conflict graph of one execution (an edge T1 → T2 whenever an
// access of T1 precedes a conflicting access of T2) and reports a warning
// when the graph has a cycle, i.e. the execution is not conflict-
// serializable. The paper found that this check produces large numbers of
// warnings on correct concurrent data types (all ten warnings they
// inspected were false alarms); the comparison harness reproduces that.
package atomicity

import (
	"fmt"
	"sort"

	"lineup/internal/sched"
)

// Warning is one non-conflict-serializable execution: a cycle in the
// conflict graph over operations.
type Warning struct {
	// Cycle lists the operation indices forming the cycle, in order.
	Cycle []int
	// Locs names the locations whose conflicts produced the cycle edges.
	Locs []string
}

func (w Warning) String() string {
	return fmt.Sprintf("conflict-serializability violation: cycle over operations %v via %v", w.Cycle, w.Locs)
}

// access records one shared access for conflict detection.
type access struct {
	op    int
	write bool
	sync  bool
}

// conflicts reports whether two accesses conflict: same location (implied
// by grouping), different transactions, at least one write. Synchronizing
// accesses count like the underlying read/write they perform.
func conflicts(a, b access) bool {
	return a.op != b.op && (a.write || b.write)
}

// Analyze builds the conflict graph of one execution trace and returns a
// warning if it is cyclic (not conflict-serializable), or nil. Accesses
// outside any operation (constructor, init sequence) are ignored.
func Analyze(trace []sched.MemEvent) *Warning {
	type edgeKey struct{ from, to int }
	edges := make(map[edgeKey]string) // -> location name
	perLoc := make(map[int][]access)
	locName := make(map[int]string)
	for _, ev := range trace {
		if ev.Op < 0 {
			continue
		}
		var acc access
		switch ev.Kind {
		case sched.MemRead, sched.MemAtomicLoad:
			acc = access{op: ev.Op, write: false}
		case sched.MemWrite, sched.MemAtomicStore, sched.MemAtomicRMW:
			acc = access{op: ev.Op, write: true}
		case sched.MemAcquire, sched.MemRelease:
			// Lock operations conflict with each other (they serialize), so
			// model acquire/release as writes to the lock location.
			acc = access{op: ev.Op, write: true, sync: true}
		default:
			continue
		}
		locName[ev.Loc] = ev.Name
		for _, prev := range perLoc[ev.Loc] {
			if conflicts(prev, acc) {
				edges[edgeKey{prev.op, acc.op}] = locName[ev.Loc]
			}
		}
		perLoc[ev.Loc] = append(perLoc[ev.Loc], acc)
	}
	// Cycle detection over the operation conflict graph.
	adj := make(map[int][]int)
	nodes := make(map[int]bool)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for n := range adj {
		sort.Ints(adj[n])
	}
	var order []int
	for n := range nodes {
		order = append(order, n)
	}
	sort.Ints(order)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int
	var dfs func(n int) bool
	dfs = func(n int) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, m := range adj[n] {
			if color[m] == gray {
				// Found a cycle: slice it out of the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append([]int{stack[i]}, cycle...)
					if stack[i] == m {
						break
					}
				}
				return true
			}
			if color[m] == white && dfs(m) {
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range order {
		if color[n] == white && dfs(n) {
			var locs []string
			seen := make(map[string]bool)
			for i := range cycle {
				from, to := cycle[i], cycle[(i+1)%len(cycle)]
				if l, ok := edges[edgeKey{from, to}]; ok && !seen[l] {
					seen[l] = true
					locs = append(locs, l)
				}
			}
			return &Warning{Cycle: cycle, Locs: locs}
		}
	}
	return nil
}
