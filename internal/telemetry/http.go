package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in diagnostics endpoint: net/http/pprof profiles plus a
// /debug/vars page serving the collector's live counter snapshot as JSON.
// It runs on its own mux so enabling diagnostics never exposes handlers an
// embedding program registered on http.DefaultServeMux.
type Server struct {
	Addr string // actual listen address (resolves ":0" requests)

	srv *http.Server
	ln  net.Listener
}

// Serve starts the diagnostics endpoint on addr (e.g. "localhost:6060";
// ":0" picks a free port) reading counters from c, which may be nil. It
// returns once the listener is bound; the accept loop runs in a background
// goroutine until Close.
func Serve(addr string, c *Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		page := varsPage{Counters: c.Snapshot(), Spans: spanTotals(c)}
		if epoch := c.Start(); !epoch.IsZero() {
			page.UptimeMS = float64(time.Since(epoch)) / float64(time.Millisecond)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the listener down and stops serving.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// varsPage is the /debug/vars response document.
type varsPage struct {
	UptimeMS float64            `json:"uptime_ms"`
	Counters Snap               `json:"counters"`
	Spans    map[string]float64 `json:"span_totals_ms,omitempty"`
}

// spanTotals sums completed span durations by name, in milliseconds.
func spanTotals(c *Collector) map[string]float64 {
	spans := c.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, s := range spans {
		out[s.Name] += float64(s.Dur) / float64(time.Millisecond)
	}
	return out
}
