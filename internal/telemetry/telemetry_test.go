package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	// Every observation method must be a no-op on nil.
	c.ObserveDepth(7)
	c.Emit("test", "x", 0)
	c.StartSpan("phase")()
	if got := c.MaxDepth(); got != 0 {
		t.Fatalf("nil MaxDepth = %d, want 0", got)
	}
	if s := c.Snapshot(); s != (Snap{}) {
		t.Fatalf("nil Snapshot = %+v, want zeros", s)
	}
	if c.Spans() != nil || c.Events() != nil {
		t.Fatal("nil collector returned non-nil spans/events")
	}
	if err := c.WriteTrace(io.Discard); err == nil {
		t.Fatal("nil WriteTrace should error")
	}
}

func TestCountersAndDepthWatermark(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.ExecutionsDone.Add(1)
				c.ObserveDepth(i*100 + j)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.ExecutionsDone != 800 {
		t.Fatalf("ExecutionsDone = %d, want 800", s.ExecutionsDone)
	}
	if s.MaxDepth != 799 {
		t.Fatalf("MaxDepth = %d, want 799", s.MaxDepth)
	}
	// The watermark never regresses.
	c.ObserveDepth(3)
	if got := c.MaxDepth(); got != 799 {
		t.Fatalf("MaxDepth after lower observation = %d, want 799", got)
	}
}

func TestSpansAndTrace(t *testing.T) {
	c := New()
	done := c.StartSpan("phase1")
	time.Sleep(time.Millisecond)
	done()
	c.StartSpan("phase2")()
	c.HistCacheHits.Add(3)
	c.Emit("test", "Fig1", 0)

	if n := len(c.Spans()); n != 2 {
		t.Fatalf("got %d spans, want 2", n)
	}
	if c.SpanTotal("phase1") <= 0 {
		t.Fatal("phase1 span total should be positive")
	}

	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	events, err := ReadTraceEvents(&buf)
	if err != nil {
		t.Fatalf("ReadTraceEvents: %v", err)
	}
	// 2 span events + 1 test event + synthetic final.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	last := events[len(events)-1]
	if last.Kind != "final" {
		t.Fatalf("last event kind = %q, want final", last.Kind)
	}
	if last.Counters.HistCacheHits != 3 {
		t.Fatalf("final snapshot HistCacheHits = %d, want 3", last.Counters.HistCacheHits)
	}
	// Events are time-ordered.
	for i := 1; i < len(events); i++ {
		if events[i].TMS < events[i-1].TMS {
			t.Fatalf("events out of order: %v then %v", events[i-1].TMS, events[i].TMS)
		}
	}
}

func TestReadTraceEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadTraceEvents(strings.NewReader("{\"ev\":\"span\"}\nnot json\n")); err == nil {
		t.Fatal("want parse error on malformed line")
	}
}

func TestProgressRendersAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	c := New()
	c.ExecutionsDone.Add(42)
	p := NewProgress(&buf, c, "check")
	p.SetTotal(10)
	p.Step(3)
	p.SetExtra("2 shards")
	p.Finish()
	p.Finish() // idempotent
	out := buf.String()
	if !strings.Contains(out, "check 3/10") {
		t.Fatalf("progress output missing unit counts: %q", out)
	}
	if !strings.Contains(out, "42 execs") {
		t.Fatalf("progress output missing exec counter: %q", out)
	}
	if !strings.Contains(out, "2 shards") {
		t.Fatalf("progress output missing extra: %q", out)
	}
	if got := strings.Count(out, "\n"); got != 1 {
		t.Fatalf("progress wrote %d newlines, want exactly 1", got)
	}
	// After Finish, further updates must not write.
	n := buf.Len()
	p.Step(1)
	p.Tick()
	if buf.Len() != n {
		t.Fatal("progress wrote after Finish")
	}
}

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.SetTotal(5)
	p.Step(1)
	p.SetUnits(1, 2)
	p.SetExtra("x")
	p.Tick()
	p.Finish()
}

func TestServeVarsAndPprof(t *testing.T) {
	c := New()
	c.WitnessNodes.Add(9)
	c.StartSpan("phase2")()
	s, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(b)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"witness_nodes": 9`) {
		t.Fatalf("/debug/vars missing counter: %s", vars)
	}
	if !strings.Contains(vars, `"phase2"`) {
		t.Fatalf("/debug/vars missing span totals: %s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.80s", idx)
	}
}
