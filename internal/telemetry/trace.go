package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Event is one entry of the JSONL event trace: a timestamped marker with an
// optional duration and a counter snapshot taken when it was emitted. The
// trace is an append-only in-memory log; it is written out once at the end
// of a run (callers stream it through obsfile.AtomicWriteFile so a crash
// never leaves a torn trace behind).
type Event struct {
	// TMS is the emission time in milliseconds since the collector epoch.
	TMS float64 `json:"t_ms"`
	// Kind classifies the event ("span", "test", "run", ...).
	Kind string `json:"ev"`
	// Name identifies the event within its kind (a phase or class name).
	Name string `json:"name,omitempty"`
	// DurMS is the event's duration in milliseconds, 0 for point events.
	DurMS float64 `json:"dur_ms,omitempty"`
	// Counters is the counter snapshot at emission time.
	Counters Snap `json:"counters"`
}

// Emit appends an event with the current counter snapshot to the trace.
func (c *Collector) Emit(kind, name string, dur time.Duration) {
	if c == nil {
		return
	}
	ev := Event{
		TMS:      float64(time.Since(c.start)) / float64(time.Millisecond),
		Kind:     kind,
		Name:     name,
		DurMS:    float64(dur) / float64(time.Millisecond),
		Counters: c.Snapshot(),
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// WriteTrace writes the event trace as JSONL — one event object per line,
// ending with a synthetic "final" event carrying the closing counter
// snapshot — so the file is greppable and streams into any JSONL tool. The
// signature matches the write callback of obsfile.AtomicWriteFile:
//
//	obsfile.AtomicWriteFile(path, collector.WriteTrace)
func (c *Collector) WriteTrace(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("telemetry: cannot write a trace from a nil collector")
	}
	enc := json.NewEncoder(w)
	for _, ev := range c.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	final := Event{
		TMS:      float64(time.Since(c.start)) / float64(time.Millisecond),
		Kind:     "final",
		Counters: c.Snapshot(),
	}
	return enc.Encode(final)
}

// ReadTraceEvents parses a JSONL trace written by WriteTrace, for tests and
// post-hoc tooling.
func ReadTraceEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: parsing trace event %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}
