package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a single live status line: work units completed against a
// total (tests, benchmark cases, or exploration shards), the execution
// throughput read from the collector, and an ETA extrapolated from the unit
// completion rate. It is the one progress facility shared by the check,
// table2, parallel, and reduction subcommands, replacing their ad-hoc
// ShardProgress printing.
//
// All methods are safe for concurrent use; rendering is throttled so tight
// exploration loops cannot drown the terminal.
type Progress struct {
	w     io.Writer
	c     *Collector
	label string

	mu       sync.Mutex
	total    int
	done     int
	extra    string // free-form suffix (e.g. shard counters)
	last     time.Time
	start    time.Time
	width    int // widest line rendered so far, for clean overwrites
	finished bool
}

// NewProgress creates a progress line writing to w, reading throughput from
// c (which may be nil — the line then omits execution counters). The label
// prefixes every render.
func NewProgress(w io.Writer, c *Collector, label string) *Progress {
	return &Progress{w: w, c: c, label: label, start: time.Now()}
}

// SetTotal sets the number of work units the run will complete.
func (p *Progress) SetTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = n
	p.mu.Unlock()
}

// Step records n more completed work units and re-renders (throttled).
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done += n
	p.renderLocked(false)
	p.mu.Unlock()
}

// SetUnits sets the completed and total unit counts outright (the shard
// explorer reports both monotonically) and re-renders (throttled).
func (p *Progress) SetUnits(done, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done, p.total = done, total
	p.renderLocked(false)
	p.mu.Unlock()
}

// SetExtra sets a free-form suffix appended to the line (e.g. "12 splits").
func (p *Progress) SetExtra(s string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.extra = s
	p.mu.Unlock()
}

// Tick re-renders the line without changing the unit counts, so callers can
// keep the throughput display moving during a long unit of work.
func (p *Progress) Tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.renderLocked(false)
	p.mu.Unlock()
}

// Finish renders the final line unconditionally and terminates it with a
// newline. Further calls are no-ops.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished {
		return
	}
	p.renderLocked(true)
	p.finished = true
	fmt.Fprintln(p.w)
}

// renderLocked paints the line; force bypasses the rate throttle. The
// caller holds p.mu.
func (p *Progress) renderLocked(force bool) {
	if p.finished {
		return
	}
	now := time.Now()
	if !force && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d", p.label, p.done)
	if p.total > 0 {
		fmt.Fprintf(&b, "/%d", p.total)
	}
	if p.c != nil {
		snap := p.c.Snapshot()
		fmt.Fprintf(&b, " · %d execs", snap.ExecutionsDone)
		if secs := elapsed.Seconds(); secs > 0.1 {
			fmt.Fprintf(&b, " · %.0f exec/s", float64(snap.ExecutionsDone)/secs)
		}
	}
	if p.total > 0 && p.done > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		fmt.Fprintf(&b, " · ETA %s", roundETA(eta))
	}
	if p.extra != "" {
		fmt.Fprintf(&b, " · %s", p.extra)
	}
	line := b.String()
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
	}
	p.width = len(line)
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
}

// roundETA coarsens an ETA so the display does not flicker through
// millisecond noise.
func roundETA(d time.Duration) time.Duration {
	switch {
	case d > time.Minute:
		return d.Round(time.Second)
	case d > time.Second:
		return d.Round(100 * time.Millisecond)
	}
	return d.Round(time.Millisecond)
}
