// Package telemetry is the observability layer of the checker: a set of
// cheap, concurrency-safe counters threaded through the scheduler (package
// sched), the two-phase checker (package core), and the witness monitor
// (package monitor), plus a span clock for phase wall-times, a JSONL event
// trace for post-hoc analysis, a live progress line, and an opt-in
// pprof/expvar HTTP endpoint.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every instrumented site guards on a nil
//     *Collector; passing no collector compiles to a pointer test.
//   - No locks or allocations on the exploration hot path. The explorer
//     accumulates plain-int deltas per execution and flushes them with a
//     handful of atomic adds once per execution (see sched); nothing
//     telemetry-related runs inside Controller.Pick.
//   - Deterministic totals. All counters are commutative sums (plus one
//     high-watermark), so a full exploration accumulates identical totals
//     regardless of worker count or visit order. Counters that feed
//     user-visible results (Result, PhaseStats) are not read back from the
//     collector — the deterministic explorer statistics remain the source of
//     truth; the collector only observes.
//
// A single Collector may be shared by any number of concurrent explorations;
// all methods are safe for concurrent use.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Collector accumulates counters and spans for one checker run. The zero
// value is NOT ready to use; create collectors with New. A nil *Collector is
// a valid no-op sink: every method checks the receiver, so instrumented code
// needs no guards beyond passing the pointer along.
type Collector struct {
	start time.Time

	// Scheduler / explorer counters (package sched).
	ExecutionsStarted atomic.Int64 // executions begun (schedules started)
	ExecutionsDone    atomic.Int64 // executions that ran to an outcome
	Decisions         atomic.Int64 // scheduling decisions taken
	SchedulesPruned   atomic.Int64 // branches skipped by sleep-set reduction
	SleepWakes        atomic.Int64 // sleep-set entries woken by a dependent step
	StuckExecutions   atomic.Int64 // deadlocked / livelocked outcomes
	WatchdogFires     atomic.Int64 // executions abandoned by the watchdog
	FailPanics        atomic.Int64 // executions failed by a subject panic
	FailHangs         atomic.Int64 // executions failed hung (== WatchdogFires today)
	FailLeaks         atomic.Int64 // executions failed by leaked goroutines
	maxDepth          atomic.Int64 // deepest DFS decision stack observed

	// Phase-2 dedup cache counters (package core).
	HistCacheHits    atomic.Int64 // executions answered by the history cache
	HistCacheEntries atomic.Int64 // distinct histories interned

	// Witness-search counters (packages core and monitor).
	WitnessQueries  atomic.Int64 // per-history witness decisions taken
	WitnessNodes    atomic.Int64 // WGL search nodes expanded (monitor backend)
	MonitorMemoHits atomic.Int64 // WGL nodes pruned by the seen-set
	MonitorParts    atomic.Int64 // P-compositional parts searched

	// Streaming-service counters (package serve).
	ServeEventsIngested  atomic.Int64 // events accepted by the stream tracker
	ServeEventsShed      atomic.Int64 // events dropped by the shed backpressure policy
	ServeOpsChecked      atomic.Int64 // completed operations retired through windows
	ServeWindowFlushes   atomic.Int64 // quiescent windows retired
	ServeWindowOverflows atomic.Int64 // windows that outgrew the soft cap without quiescing
	ServeCacheHits       atomic.Int64 // window transitions answered by the dedup cache
	ServeCheckpoints     atomic.Int64 // checkpoints written

	// Coverage-guided generation counters (package core, Generate).
	GenTests    atomic.Int64 // mutant tests checked
	GenAccepted atomic.Int64 // mutants admitted to the corpus (new coverage)
	GenCorpus   atomic.Int64 // high watermark: corpus size
	GenCovPairs atomic.Int64 // high watermark: distinct (kind, loc) footprint pairs
	GenCovHists atomic.Int64 // high watermark: distinct canonical phase-2 histories

	// Specialized fast-monitor counters (package core, WitnessFast).
	FastHits      atomic.Int64 // histories decided by a specialized monitor
	FastFallbacks atomic.Int64 // ambiguous histories routed to the WGL search

	// Distributed-exploration counters (package dist).
	DistLeasesGranted  atomic.Int64 // work-unit leases handed to workers
	DistLeasesExpired  atomic.Int64 // leases revoked after heartbeat loss
	DistRetries        atomic.Int64 // units re-queued after a failed or expired lease
	DistUnitsDone      atomic.Int64 // units completed and journaled
	DistUnitsPoisoned  atomic.Int64 // units that exhausted their retry budget
	DistStaleReports   atomic.Int64 // reports from superseded leases, discarded
	DistWorkerFailures atomic.Int64 // worker runs that ended in an error

	mu     sync.Mutex
	spans  []Span
	open   map[string]time.Time
	events []Event
}

// New creates an empty collector whose clock starts now.
func New() *Collector {
	return &Collector{start: time.Now(), open: make(map[string]time.Time)}
}

// Start returns the collector's epoch (the New call), the zero time on nil.
func (c *Collector) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.start
}

// ObserveDepth raises the DFS-depth high watermark to d if it exceeds the
// current maximum.
func (c *Collector) ObserveDepth(d int) {
	if c == nil {
		return
	}
	v := int64(d)
	for {
		cur := c.maxDepth.Load()
		if v <= cur || c.maxDepth.CompareAndSwap(cur, v) {
			return
		}
	}
}

// MaxDepth returns the DFS-depth high watermark.
func (c *Collector) MaxDepth() int64 {
	if c == nil {
		return 0
	}
	return c.maxDepth.Load()
}

// Span is one named wall-clock interval (a check phase, a whole run).
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"` // offset from the collector epoch
	Dur   time.Duration `json:"dur"`
}

// StartSpan opens a named span and returns the function that closes it.
// Spans of the same name may be opened repeatedly (e.g. "phase2" once per
// test); every open/close pair records one Span. Closing also appends a
// span event carrying a counter snapshot to the event trace.
func (c *Collector) StartSpan(name string) func() {
	if c == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		c.mu.Lock()
		c.spans = append(c.spans, Span{Name: name, Start: begin.Sub(c.start), Dur: end.Sub(begin)})
		c.mu.Unlock()
		c.Emit("span", name, end.Sub(begin))
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// SpanTotal sums the durations of all completed spans with the given name.
func (c *Collector) SpanTotal(name string) time.Duration {
	var total time.Duration
	for _, s := range c.Spans() {
		if s.Name == name {
			total += s.Dur
		}
	}
	return total
}

// AddFastHit counts one history decided by a specialized fast monitor.
func (c *Collector) AddFastHit() {
	if c == nil {
		return
	}
	c.FastHits.Add(1)
}

// AddFastFallback counts one ambiguous history routed to the general
// witness search by the fast backend.
func (c *Collector) AddFastFallback() {
	if c == nil {
		return
	}
	c.FastFallbacks.Add(1)
}

// Snap is a moment-in-time copy of every counter, the flat record rendered
// by the progress line, the /debug/vars endpoint, and the event trace.
type Snap struct {
	ExecutionsStarted int64 `json:"executions_started"`
	ExecutionsDone    int64 `json:"executions_done"`
	Decisions         int64 `json:"decisions"`
	SchedulesPruned   int64 `json:"schedules_pruned"`
	SleepWakes        int64 `json:"sleep_wakes"`
	MaxDepth          int64 `json:"max_depth"`
	StuckExecutions   int64 `json:"stuck_executions"`
	WatchdogFires     int64 `json:"watchdog_fires"`
	FailPanics        int64 `json:"fail_panics"`
	FailHangs         int64 `json:"fail_hangs"`
	FailLeaks         int64 `json:"fail_leaks"`
	HistCacheHits     int64 `json:"histcache_hits"`
	HistCacheEntries  int64 `json:"histcache_entries"`
	WitnessQueries    int64 `json:"witness_queries"`
	WitnessNodes      int64 `json:"witness_nodes"`
	MonitorMemoHits   int64 `json:"monitor_memo_hits"`
	MonitorParts      int64 `json:"monitor_parts"`

	ServeEventsIngested  int64 `json:"serve_events_ingested,omitempty"`
	ServeEventsShed      int64 `json:"serve_events_shed,omitempty"`
	ServeOpsChecked      int64 `json:"serve_ops_checked,omitempty"`
	ServeWindowFlushes   int64 `json:"serve_window_flushes,omitempty"`
	ServeWindowOverflows int64 `json:"serve_window_overflows,omitempty"`
	ServeCacheHits       int64 `json:"serve_cache_hits,omitempty"`
	ServeCheckpoints     int64 `json:"serve_checkpoints,omitempty"`

	GenTests    int64 `json:"gen_tests,omitempty"`
	GenAccepted int64 `json:"gen_accepted,omitempty"`
	GenCorpus   int64 `json:"gen_corpus,omitempty"`
	GenCovPairs int64 `json:"gen_cov_pairs,omitempty"`
	GenCovHists int64 `json:"gen_cov_hists,omitempty"`

	FastHits      int64 `json:"fastmon_hits,omitempty"`
	FastFallbacks int64 `json:"fastmon_fallbacks,omitempty"`

	DistLeasesGranted  int64 `json:"dist_leases_granted,omitempty"`
	DistLeasesExpired  int64 `json:"dist_leases_expired,omitempty"`
	DistRetries        int64 `json:"dist_retries,omitempty"`
	DistUnitsDone      int64 `json:"dist_units_done,omitempty"`
	DistUnitsPoisoned  int64 `json:"dist_units_poisoned,omitempty"`
	DistStaleReports   int64 `json:"dist_stale_reports,omitempty"`
	DistWorkerFailures int64 `json:"dist_worker_failures,omitempty"`
}

// Snapshot copies every counter; on a nil collector it returns zeros.
func (c *Collector) Snapshot() Snap {
	if c == nil {
		return Snap{}
	}
	return Snap{
		ExecutionsStarted: c.ExecutionsStarted.Load(),
		ExecutionsDone:    c.ExecutionsDone.Load(),
		Decisions:         c.Decisions.Load(),
		SchedulesPruned:   c.SchedulesPruned.Load(),
		SleepWakes:        c.SleepWakes.Load(),
		MaxDepth:          c.maxDepth.Load(),
		StuckExecutions:   c.StuckExecutions.Load(),
		WatchdogFires:     c.WatchdogFires.Load(),
		FailPanics:        c.FailPanics.Load(),
		FailHangs:         c.FailHangs.Load(),
		FailLeaks:         c.FailLeaks.Load(),
		HistCacheHits:     c.HistCacheHits.Load(),
		HistCacheEntries:  c.HistCacheEntries.Load(),
		WitnessQueries:    c.WitnessQueries.Load(),
		WitnessNodes:      c.WitnessNodes.Load(),
		MonitorMemoHits:   c.MonitorMemoHits.Load(),
		MonitorParts:      c.MonitorParts.Load(),

		ServeEventsIngested:  c.ServeEventsIngested.Load(),
		ServeEventsShed:      c.ServeEventsShed.Load(),
		ServeOpsChecked:      c.ServeOpsChecked.Load(),
		ServeWindowFlushes:   c.ServeWindowFlushes.Load(),
		ServeWindowOverflows: c.ServeWindowOverflows.Load(),
		ServeCacheHits:       c.ServeCacheHits.Load(),
		ServeCheckpoints:     c.ServeCheckpoints.Load(),

		GenTests:    c.GenTests.Load(),
		GenAccepted: c.GenAccepted.Load(),
		GenCorpus:   c.GenCorpus.Load(),
		GenCovPairs: c.GenCovPairs.Load(),
		GenCovHists: c.GenCovHists.Load(),

		FastHits:      c.FastHits.Load(),
		FastFallbacks: c.FastFallbacks.Load(),

		DistLeasesGranted:  c.DistLeasesGranted.Load(),
		DistLeasesExpired:  c.DistLeasesExpired.Load(),
		DistRetries:        c.DistRetries.Load(),
		DistUnitsDone:      c.DistUnitsDone.Load(),
		DistUnitsPoisoned:  c.DistUnitsPoisoned.Load(),
		DistStaleReports:   c.DistStaleReports.Load(),
		DistWorkerFailures: c.DistWorkerFailures.Load(),
	}
}
