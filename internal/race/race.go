// Package race implements a happens-before data-race detector over the
// shared-memory traces recorded by the scheduler, in the spirit of the
// dynamic race detector included with CHESS that the paper uses for its
// Section 5.6 comparison. It maintains vector clocks per thread, per lock,
// and per synchronizing location (volatile semantics: an atomic store
// releases, an atomic load acquires, a read-modify-write does both), and
// reports pairs of conflicting plain accesses that are not ordered by
// happens-before.
package race

import (
	"fmt"

	"lineup/internal/sched"
)

// VC is a vector clock indexed by thread ID.
type VC []int

func (v VC) clock(t sched.ThreadID) int {
	if int(t) < len(v) {
		return v[t]
	}
	return 0
}

func (v *VC) grow(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

// join merges w into v (pointwise maximum).
func (v *VC) join(w VC) {
	v.grow(len(w))
	for i, c := range w {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

func (v VC) copyVC() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// epoch is a scalar timestamp: the clock of one thread at one access.
type epoch struct {
	thread sched.ThreadID
	clock  int
}

// happensBefore reports whether the access at e is ordered before the
// current time of thread vc.
func (e epoch) happensBefore(vc VC) bool {
	return e.clock <= vc.clock(e.thread)
}

// Access describes one side of a reported race.
type Access struct {
	Thread sched.ThreadID
	Write  bool
	Op     int // operation index the access belongs to (-1 outside ops)
}

// Race is a reported data race: two unordered conflicting plain accesses to
// the same location.
type Race struct {
	Loc    string
	First  Access
	Second Access
}

func (r Race) String() string {
	kind := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("race on %s: %s by T%d (op %d) unordered with %s by T%d (op %d)",
		r.Loc, kind(r.First.Write), r.First.Thread, r.First.Op,
		kind(r.Second.Write), r.Second.Thread, r.Second.Op)
}

type locState struct {
	name      string
	lastWrite epoch
	hasWrite  bool
	reads     []epoch // reads since the last write
	writeOp   int
	readOps   []int
	syncVC    VC // release history of the location (volatile semantics)
	hasSync   bool
}

// Detector replays a trace and accumulates races.
type Detector struct {
	threads map[sched.ThreadID]*VC
	locks   map[int]*VC
	locs    map[int]*locState
	races   []Race
	seen    map[string]bool
}

// NewDetector creates an empty detector.
func NewDetector() *Detector {
	return &Detector{
		threads: make(map[sched.ThreadID]*VC),
		locks:   make(map[int]*VC),
		locs:    make(map[int]*locState),
		seen:    make(map[string]bool),
	}
}

func (d *Detector) vc(t sched.ThreadID) *VC {
	v, ok := d.threads[t]
	if !ok {
		nv := make(VC, int(t)+1)
		nv[t] = 1 // each thread starts at clock 1
		d.threads[t] = &nv
		return &nv
	}
	return v
}

func (d *Detector) loc(id int, name string) *locState {
	l, ok := d.locs[id]
	if !ok {
		l = &locState{name: name}
		d.locs[id] = l
	}
	return l
}

func (d *Detector) report(loc string, first, second Access) {
	key := fmt.Sprintf("%s|%v|%v", loc, first, second)
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	d.races = append(d.races, Race{Loc: loc, First: first, Second: second})
}

// Analyze replays one execution trace. It may be called repeatedly with
// traces of different executions; races are deduplicated by location and
// access shape.
func (d *Detector) Analyze(trace []sched.MemEvent) {
	// Reset per-execution state but keep the dedup set: different
	// executions reuse location IDs.
	d.threads = make(map[sched.ThreadID]*VC)
	d.locks = make(map[int]*VC)
	d.locs = make(map[int]*locState)
	for _, ev := range trace {
		vc := d.vc(ev.Thread)
		vc.grow(int(ev.Thread) + 1)
		switch ev.Kind {
		case sched.MemAcquire:
			lvc, ok := d.locks[ev.Loc]
			if ok {
				vc.join(*lvc)
			}
		case sched.MemRelease:
			cp := vc.copyVC()
			d.locks[ev.Loc] = &cp
			(*vc)[ev.Thread]++
		case sched.MemAtomicLoad:
			l := d.loc(ev.Loc, ev.Name)
			if l.hasSync {
				vc.join(l.syncVC)
			}
		case sched.MemAtomicStore, sched.MemAtomicRMW:
			l := d.loc(ev.Loc, ev.Name)
			if ev.Kind == sched.MemAtomicRMW && l.hasSync {
				vc.join(l.syncVC)
			}
			var nv VC
			if l.hasSync {
				nv = l.syncVC.copyVC()
				nv.join(*vc)
			} else {
				nv = vc.copyVC()
			}
			l.syncVC = nv
			l.hasSync = true
			(*vc)[ev.Thread]++
		case sched.MemRead:
			l := d.loc(ev.Loc, ev.Name)
			if l.hasWrite && l.lastWrite.thread != ev.Thread && !l.lastWrite.happensBefore(*vc) {
				d.report(ev.Name,
					Access{Thread: l.lastWrite.thread, Write: true, Op: l.writeOp},
					Access{Thread: ev.Thread, Write: false, Op: ev.Op})
			}
			l.reads = append(l.reads, epoch{ev.Thread, vc.clock(ev.Thread)})
			l.readOps = append(l.readOps, ev.Op)
		case sched.MemWrite:
			l := d.loc(ev.Loc, ev.Name)
			if l.hasWrite && l.lastWrite.thread != ev.Thread && !l.lastWrite.happensBefore(*vc) {
				d.report(ev.Name,
					Access{Thread: l.lastWrite.thread, Write: true, Op: l.writeOp},
					Access{Thread: ev.Thread, Write: true, Op: ev.Op})
			}
			for i, r := range l.reads {
				if r.thread != ev.Thread && !r.happensBefore(*vc) {
					d.report(ev.Name,
						Access{Thread: r.thread, Write: false, Op: l.readOps[i]},
						Access{Thread: ev.Thread, Write: true, Op: ev.Op})
				}
			}
			l.lastWrite = epoch{ev.Thread, vc.clock(ev.Thread)}
			l.hasWrite = true
			l.writeOp = ev.Op
			l.reads = nil
			l.readOps = nil
		}
	}
}

// Races returns the accumulated (deduplicated) races.
func (d *Detector) Races() []Race { return d.races }
