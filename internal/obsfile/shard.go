package obsfile

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lineup/internal/history"
)

// indexBlock is the per-thread allocation granule of the shared op-index
// counter: a shard claims this many indices in one atomic add and hands them
// out privately, so the only cross-thread traffic on the ingest hot path is
// one fetch-add per block. Indices are consequently sparse (a thread may
// retire holding unconsumed indices); every consumer keys by index value,
// never by density, so sparseness is verdict-neutral.
const indexBlock = 64

// ShardedTracker is the concurrent form of StreamTracker: thread discipline
// is by definition thread-local, so the tracker keeps one shard per thread id
// and Apply touches only its event's shard — no global lock. Several ingest
// connections can validate in parallel as long as each thread id stays on one
// connection (the serve contract); a thread migrating between concurrent
// connections is still memory-safe (each shard has its own mutex) but its
// event order, and therefore the validation outcome, would be racy.
//
// The global pieces are all atomics: the op-index high-water mark (allocated
// to shards in indexBlock granules), the event and open-call counters, and
// the stuck flag. State/RestoreShardedTracker round-trip the same
// TrackerState as the single-goroutine tracker, so checkpoints are
// interchangeable between the two.
type ShardedTracker struct {
	next   atomic.Int64 // op-index high water; indices below it are allocated
	events atomic.Int64
	open   atomic.Int64
	stuck  atomic.Bool

	// The shard map is copy-on-write: readers load the pointer and index the
	// (immutable) map with no lock at all — the per-event fast path — while
	// the rare insertion of a new thread's shard copies the map under mu and
	// publishes the copy atomically.
	shards atomic.Pointer[map[int]*threadShard]
	mu     sync.Mutex // serializes shard-map copies
}

// threadShard is one thread's discipline state plus its private index block.
type threadShard struct {
	mu      sync.Mutex
	busy    bool
	cur     openCall
	blockLo int64 // next unconsumed index of the private block
	blockHi int64 // block end (exclusive); lo==hi means exhausted
}

// NewShardedTracker returns an empty concurrent tracker.
func NewShardedTracker() *ShardedTracker {
	t := &ShardedTracker{}
	m := make(map[int]*threadShard)
	t.shards.Store(&m)
	return t
}

func (t *ShardedTracker) shard(thread int) *threadShard {
	if sh := (*t.shards.Load())[thread]; sh != nil {
		return sh
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.shards.Load()
	if sh := old[thread]; sh != nil {
		return sh
	}
	next := make(map[int]*threadShard, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	sh := &threadShard{}
	next[thread] = sh
	t.shards.Store(&next)
	return sh
}

// Apply validates one raw event against the trace discipline and resolves it,
// exactly as StreamTracker.Apply. line is the caller's 1-based event ordinal
// for error messages (per-connection under concurrent ingest). On error the
// tracker is unchanged and the event is rejected.
func (t *ShardedTracker) Apply(ev TraceEvent, line int) (StreamEvent, error) {
	if t.stuck.Load() {
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: events after the stuck marker", line)
	}
	if ev.T < 0 {
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: negative thread index %d", line, ev.T)
	}
	switch ev.K {
	case "call":
		if ev.Op == "" {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: call without an op name", line)
		}
		sh := t.shard(ev.T)
		sh.mu.Lock()
		if sh.busy {
			cur := sh.cur.name
			sh.mu.Unlock()
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d calls %s while %s is still open",
				line, ev.T, ev.Op, cur)
		}
		if sh.blockLo == sh.blockHi {
			sh.blockHi = t.next.Add(indexBlock)
			sh.blockLo = sh.blockHi - indexBlock
		}
		idx := int(sh.blockLo)
		sh.blockLo++
		sh.busy = true
		sh.cur = openCall{index: idx, name: ev.Op, part: ev.P}
		sh.mu.Unlock()
		t.events.Add(1)
		t.open.Add(1)
		return StreamEvent{Thread: ev.T, Kind: history.Call, Op: ev.Op, Part: ev.P, Index: idx, Line: line}, nil
	case "ret":
		sh := t.shard(ev.T)
		sh.mu.Lock()
		if !sh.busy {
			sh.mu.Unlock()
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns without an open call", line, ev.T)
		}
		cur := sh.cur
		if ev.Op != "" && ev.Op != cur.name {
			sh.mu.Unlock()
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns from %s but %s is open",
				line, ev.T, ev.Op, cur.name)
		}
		if ev.P != "" && ev.P != cur.part {
			sh.mu.Unlock()
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns in partition %q but %s was called in partition %q",
				line, ev.T, ev.P, cur.name, cur.part)
		}
		sh.busy = false
		sh.mu.Unlock()
		t.events.Add(1)
		t.open.Add(-1)
		return StreamEvent{Thread: ev.T, Kind: history.Return, Op: cur.name, Result: ev.Res, Part: cur.part, Index: cur.index, Line: line}, nil
	case "stuck":
		t.stuck.Store(true)
		t.events.Add(1)
		return StreamEvent{Stuck: true, Line: line}, nil
	default:
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: unknown event kind %q", line, ev.K)
	}
}

// Stuck reports whether the stuck marker has been applied.
func (t *ShardedTracker) Stuck() bool { return t.stuck.Load() }

// Events returns the count of events successfully applied.
func (t *ShardedTracker) Events() int64 { return t.events.Load() }

// OpenCalls returns the number of currently open operations.
func (t *ShardedTracker) OpenCalls() int { return int(t.open.Load()) }

// State snapshots the tracker into the same TrackerState a StreamTracker
// produces. The caller must guarantee no concurrent Apply (the serve
// checkpoint barrier does); Next is the index high-water mark, which under
// block allocation may exceed the count of indices actually consumed.
func (t *ShardedTracker) State() TrackerState {
	out := TrackerState{Next: int(t.next.Load()), Stuck: t.stuck.Load(), Events: t.events.Load()}
	for thread, sh := range *t.shards.Load() {
		sh.mu.Lock()
		if sh.busy {
			out.Open = append(out.Open, OpenCallState{Thread: thread, Index: sh.cur.index, Op: sh.cur.name, Part: sh.cur.part})
		}
		sh.mu.Unlock()
	}
	return out
}

// RestoreShardedTracker rebuilds a concurrent tracker from a snapshot
// (written by either tracker flavor). Restored shards start with exhausted
// index blocks, so fresh indices continue above the snapshot's high water.
func RestoreShardedTracker(s TrackerState) *ShardedTracker {
	t := NewShardedTracker()
	t.next.Store(int64(s.Next))
	t.events.Store(s.Events)
	t.stuck.Store(s.Stuck)
	m := make(map[int]*threadShard, len(s.Open))
	for _, c := range s.Open {
		m[c.Thread] = &threadShard{busy: true, cur: openCall{index: c.Index, name: c.Op, part: c.Part}}
	}
	t.shards.Store(&m)
	t.open.Store(int64(len(s.Open)))
	return t
}
