package obsfile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"lineup/internal/history"
)

// StreamEvent is one validated event of a streaming JSONL history trace: the
// parsed TraceEvent plus the bookkeeping a consumer needs to process the
// trace incrementally — the dense operation index pairing a return with its
// call, the partition key resolved from the call (returns inherit it), and
// the source line for error reporting. A stuck marker is delivered as an
// event with Stuck set and no operation fields.
type StreamEvent struct {
	Thread int
	Kind   history.Kind // Call or Return (meaningless when Stuck)
	Stuck  bool         // the terminal stuck marker of the trace
	Op     string       // operation display name (resolved for returns)
	Result string       // Return events only
	Part   string       // partition key from the "p" field ("" when absent)
	Index  int          // dense op identifier pairing call and return
	Line   int          // 1-based source line
}

// HistoryEvent converts the stream event to the history vocabulary.
func (ev StreamEvent) HistoryEvent() history.Event {
	return history.Event{Thread: ev.Thread, Kind: ev.Kind, Op: ev.Op, Result: ev.Result, Index: ev.Index}
}

// StreamTracker is the thread-discipline state machine of a streaming trace:
// it validates raw TraceEvents one at a time (the same rules ReadTrace
// enforces on a whole file) and resolves each into a StreamEvent. Unlike a
// StreamReader it is not tied to one io.Reader, so a server accepting events
// from several transports (stdin pipe, HTTP requests) can funnel them all
// through a single tracker and keep one global notion of thread discipline.
// Its full state is exported through State for checkpointing.
type StreamTracker struct {
	open   map[int]openCall
	next   int
	stuck  bool
	events int64
}

// openCall records a thread's currently open operation.
type openCall struct {
	index int
	name  string
	part  string
}

// NewStreamTracker returns an empty tracker (no open calls, index 0).
func NewStreamTracker() *StreamTracker {
	return &StreamTracker{open: make(map[int]openCall)}
}

// Apply validates one raw event against the trace discipline and resolves it.
// line is the 1-based source position used in error messages. On error the
// tracker is unchanged and the event must be considered rejected.
func (st *StreamTracker) Apply(ev TraceEvent, line int) (StreamEvent, error) {
	if st.stuck {
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: events after the stuck marker", line)
	}
	if ev.T < 0 {
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: negative thread index %d", line, ev.T)
	}
	switch ev.K {
	case "call":
		if ev.Op == "" {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: call without an op name", line)
		}
		if cur, busy := st.open[ev.T]; busy {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d calls %s while %s is still open",
				line, ev.T, ev.Op, cur.name)
		}
		idx := st.next
		st.next++
		st.open[ev.T] = openCall{index: idx, name: ev.Op, part: ev.P}
		st.events++
		return StreamEvent{Thread: ev.T, Kind: history.Call, Op: ev.Op, Part: ev.P, Index: idx, Line: line}, nil
	case "ret":
		cur, busy := st.open[ev.T]
		if !busy {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns without an open call", line, ev.T)
		}
		if ev.Op != "" && ev.Op != cur.name {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns from %s but %s is open",
				line, ev.T, ev.Op, cur.name)
		}
		if ev.P != "" && ev.P != cur.part {
			return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: thread %d returns in partition %q but %s was called in partition %q",
				line, ev.T, ev.P, cur.name, cur.part)
		}
		delete(st.open, ev.T)
		st.events++
		return StreamEvent{Thread: ev.T, Kind: history.Return, Op: cur.name, Result: ev.Res, Part: cur.part, Index: cur.index, Line: line}, nil
	case "stuck":
		st.stuck = true
		st.events++
		return StreamEvent{Stuck: true, Line: line}, nil
	default:
		return StreamEvent{}, fmt.Errorf("obsfile: trace line %d: unknown event kind %q", line, ev.K)
	}
}

// Stuck reports whether the stuck marker has been applied.
func (st *StreamTracker) Stuck() bool { return st.stuck }

// Events returns the count of events successfully applied.
func (st *StreamTracker) Events() int64 { return st.events }

// OpenCalls returns the number of currently open operations.
func (st *StreamTracker) OpenCalls() int { return len(st.open) }

// TrackerState is the serializable snapshot of a StreamTracker, stored in
// serve checkpoints so a restarted service resumes mid-trace with the same
// thread discipline.
type TrackerState struct {
	Open   []OpenCallState `json:"open,omitempty"`
	Next   int             `json:"next"`
	Stuck  bool            `json:"stuck,omitempty"`
	Events int64           `json:"events"`
}

// OpenCallState is one open operation in a TrackerState.
type OpenCallState struct {
	Thread int    `json:"t"`
	Index  int    `json:"i"`
	Op     string `json:"op"`
	Part   string `json:"p,omitempty"`
}

// State snapshots the tracker.
func (st *StreamTracker) State() TrackerState {
	out := TrackerState{Next: st.next, Stuck: st.stuck, Events: st.events}
	for t, c := range st.open {
		out.Open = append(out.Open, OpenCallState{Thread: t, Index: c.index, Op: c.name, Part: c.part})
	}
	return out
}

// RestoreStreamTracker rebuilds a tracker from a snapshot.
func RestoreStreamTracker(s TrackerState) *StreamTracker {
	st := &StreamTracker{open: make(map[int]openCall, len(s.Open)), next: s.Next, stuck: s.Stuck, events: s.Events}
	for _, c := range s.Open {
		st.open[c.Thread] = openCall{index: c.Index, name: c.Op, part: c.Part}
	}
	return st
}

// RawReader parses a JSONL trace stream into TraceEvents without applying
// the thread-discipline validation: consumers that funnel several transports
// through one shared StreamTracker (the streaming service) parse with a
// RawReader per transport and validate centrally. Blank lines and '#'
// comments are skipped; parse errors are sticky, as in StreamReader.
type RawReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewRawReader wraps r in a raw JSONL trace parser.
func NewRawReader(r io.Reader) *RawReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &RawReader{sc: sc}
}

// Line returns the 1-based line number of the last event returned.
func (rr *RawReader) Line() int { return rr.line }

// Next returns the next parsed (unvalidated) event, or io.EOF at clean end.
func (rr *RawReader) Next() (TraceEvent, error) {
	if rr.err != nil {
		return TraceEvent{}, rr.err
	}
	for rr.sc.Scan() {
		rr.line++
		// Decode straight from the scanner's buffer: json.Unmarshal copies
		// every string it keeps, so the volatile bytes never escape, and the
		// per-line string allocation of Text() disappears from the ingest
		// hot path.
		line := bytes.TrimSpace(rr.sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			rr.err = fmt.Errorf("obsfile: trace line %d: %w", rr.line, err)
			return TraceEvent{}, rr.err
		}
		return ev, nil
	}
	if err := rr.sc.Err(); err != nil {
		rr.err = fmt.Errorf("obsfile: reading trace: %w", err)
		return TraceEvent{}, rr.err
	}
	rr.err = io.EOF
	return TraceEvent{}, io.EOF
}

// EventSource yields raw (unvalidated) TraceEvents from some transport
// encoding: the JSONL RawReader and the binary-frame FrameReader both
// implement it, so consumers layered above (StreamReader, the serve ingest
// pumps) are encoding-agnostic. Next returns io.EOF at a clean end of input;
// any other error must be sticky. Line is the 1-based position of the last
// event for error messages — a source line for JSONL, an event ordinal for
// frames.
type EventSource interface {
	Next() (TraceEvent, error)
	Line() int
}

// StreamReader reads a history trace incrementally from an EventSource:
// each Next call parses and validates one event without materializing the
// whole history, so arbitrarily long traces are processed in constant memory.
// The JSONL form skips blank lines and '#' comments, exactly as in ReadTrace;
// the batch-frame form (NewBatchStreamReader) surfaces a truncated final
// frame as a sticky *TruncatedFrameError, never a clean EOF. The reader is
// fail-stop: after any error every further Next returns the same error, so a
// malformed stream can never wedge or half-advance a consumer.
type StreamReader struct {
	src EventSource
	tr  *StreamTracker
	err error
}

// NewStreamReader wraps r in a streaming JSONL trace reader with a fresh
// tracker.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{src: NewRawReader(r), tr: NewStreamTracker()}
}

// NewBatchStreamReader wraps r — a length-prefixed binary batch frame
// stream — in a streaming trace reader with a fresh tracker. It yields the
// same StreamEvents the JSONL reader would for the equivalent event sequence.
func NewBatchStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{src: NewFrameReader(r), tr: NewStreamTracker()}
}

// NewValidatingReader layers a fresh tracker over any event source.
func NewValidatingReader(src EventSource) *StreamReader {
	return &StreamReader{src: src, tr: NewStreamTracker()}
}

// Tracker exposes the reader's validation state (open calls, event count).
func (sr *StreamReader) Tracker() *StreamTracker { return sr.tr }

// Next returns the next validated event of the trace, or io.EOF at a clean
// end of input. Any other error is sticky.
func (sr *StreamReader) Next() (StreamEvent, error) {
	if sr.err != nil {
		return StreamEvent{}, sr.err
	}
	ev, err := sr.src.Next()
	if err != nil {
		sr.err = err
		return StreamEvent{}, err
	}
	out, err := sr.tr.Apply(ev, sr.src.Line())
	if err != nil {
		sr.err = err
		return StreamEvent{}, err
	}
	return out, nil
}
