package obsfile_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lineup/internal/history"
	"lineup/internal/obsfile"
)

func so(thread int, name, result string) history.SerialOp {
	return history.SerialOp{Thread: thread, Name: name, Result: result}
}

func sampleSpec() *history.Spec {
	sp := history.NewSpec()
	sp.Add(&history.SerialHistory{Ops: []history.SerialOp{
		so(0, "Add(200)", "ok"), so(0, "Add(400)", "ok"), so(1, "Take()", "200"), so(1, "TryTake()", "400"),
	}})
	sp.Add(&history.SerialHistory{Ops: []history.SerialOp{
		so(0, "Add(200)", "ok"), so(1, "Take()", "200"), so(0, "Add(400)", "ok"), so(1, "TryTake()", "400"),
	}})
	sp.Add(&history.SerialHistory{Ops: []history.SerialOp{
		so(0, "Add(200)", "ok"), so(1, "Take()", "200"), so(1, "TryTake()", "Fail"), so(0, "Add(400)", "ok"),
	}})
	sp.Add(&history.SerialHistory{
		Pending: &history.SerialPending{Thread: 1, Name: "Take()"},
	})
	return sp
}

func TestWriteMatchesFig7Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := obsfile.Write(&buf, sampleSpec()); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"<observationset>",
		`<thread id="A">1 2</thread>`,
		`<thread id="B">3 4</thread>`,
		`<op id="1" name="Add">value="200" result="ok"</op>`,
		`<history>1[ ]1 2[ ]2 3[ ]3 4[ ]4</history>`,
		`<thread id="B">1B</thread>`,
		`<history>1[ #</history>`,
		"</observationset>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundtrip(t *testing.T) {
	sp := sampleSpec()
	var buf bytes.Buffer
	if err := obsfile.Write(&buf, sp); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := obsfile.Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp2 := f.ToSpec()
	if sp2.NumFull() != sp.NumFull() || sp2.NumStuck() != sp.NumStuck() {
		t.Fatalf("roundtrip lost histories: full %d->%d stuck %d->%d",
			sp.NumFull(), sp2.NumFull(), sp.NumStuck(), sp2.NumStuck())
	}
	if len(sp2.Groups()) != len(sp.Groups()) {
		t.Fatalf("roundtrip changed grouping: %d -> %d", len(sp.Groups()), len(sp2.Groups()))
	}
	// The rebuilt spec must witness the same histories: re-render both and
	// compare group keys.
	g1 := append([]string(nil), sp.Groups()...)
	g2 := append([]string(nil), sp2.Groups()...)
	if len(g1) != len(g2) {
		t.Fatalf("group count mismatch")
	}
	seen := make(map[string]bool)
	for _, g := range g1 {
		seen[g] = true
	}
	for _, g := range g2 {
		if !seen[g] {
			t.Fatalf("group %q not preserved", g)
		}
	}
}

// TestRoundtripRandom is a property test: write-then-parse preserves the
// history sets of random specs.
func TestRoundtripRandom(t *testing.T) {
	methods := []string{"Add(10)", "Add(20)", "TryTake()", "Count()"}
	results := []string{"ok", "10", "20", "Fail", "0", "1"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := history.NewSpec()
		nh := 1 + rng.Intn(5)
		for i := 0; i < nh; i++ {
			var h history.SerialHistory
			nop := rng.Intn(5)
			for j := 0; j < nop; j++ {
				h.Ops = append(h.Ops, so(rng.Intn(3), methods[rng.Intn(len(methods))], results[rng.Intn(len(results))]))
			}
			if rng.Intn(3) == 0 {
				h.Pending = &history.SerialPending{Thread: rng.Intn(3), Name: methods[rng.Intn(len(methods))]}
			}
			if nop == 0 && h.Pending == nil {
				continue
			}
			sp.Add(&h)
		}
		var buf bytes.Buffer
		if err := obsfile.Write(&buf, sp); err != nil {
			t.Fatalf("write: %v", err)
		}
		f, err := obsfile.Parse(&buf)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, buf.String())
		}
		sp2 := f.ToSpec()
		return sp2.NumFull() == sp.NumFull() && sp2.NumStuck() == sp.NumStuck()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestViolationRendering(t *testing.T) {
	h := &history.History{Stuck: true, Events: []history.Event{
		{Thread: 0, Kind: history.Call, Op: "Wait()", Index: 0},
		{Thread: 1, Kind: history.Call, Op: "Set()", Index: 1},
		{Thread: 1, Kind: history.Return, Op: "Set()", Result: "ok", Index: 1},
	}}
	var buf bytes.Buffer
	if err := obsfile.WriteViolation(&buf, h); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"non-linearizable history",
		`<thread id="A">1B</thread>`,
		`<thread id="B">2</thread>`,
		`<op id="2" name="Set">result="ok"</op>`,
		`<history>1[ 2[ ]2 #</history>`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
