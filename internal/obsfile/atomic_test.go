package obsfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineup/internal/history"
)

func TestAtomicWriteFileWritesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\nworld\n")
		return err
	}); err != nil {
		t.Fatalf("AtomicWriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading back: %v", err)
	}
	if string(data) != "hello\nworld\n" {
		t.Fatalf("content = %q", data)
	}
}

// TestAtomicWriteFileCrashMidWrite simulates a process dying halfway through
// the write: the write callback emits some bytes and then fails. The
// destination must keep its previous contents and no temp litter may remain.
func TestAtomicWriteFileCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if err := os.WriteFile(path, []byte("old contents\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed mid-write")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial new cont"); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the mid-write failure", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("destination vanished: %v", rerr)
	}
	if string(data) != "old contents\n" {
		t.Fatalf("destination corrupted by failed write: %q", data)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind after failed write", e.Name())
		}
	}
}

func TestAtomicWriteFileOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("generation %d\n", i)
		if err := AtomicWriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != want {
			t.Fatalf("generation %d: content = %q", i, data)
		}
	}
}

func TestWriteTraceFileRoundTrips(t *testing.T) {
	h := &history.History{
		Events: []history.Event{
			{Thread: 0, Kind: history.Call, Op: "Inc()", Index: 0},
			{Thread: 1, Kind: history.Call, Op: "Get()", Index: 1},
			{Thread: 0, Kind: history.Return, Op: "Inc()", Result: "ok", Index: 0},
			{Thread: 1, Kind: history.Return, Op: "Get()", Result: "1", Index: 1},
		},
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteTraceFile(path, h); err != nil {
		t.Fatalf("WriteTraceFile: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadTrace(f)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got.Events) != len(h.Events) || got.Stuck != h.Stuck {
		t.Fatalf("round trip mismatch: got %d events (stuck=%v)", len(got.Events), got.Stuck)
	}
	for i, e := range got.Events {
		if e != h.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, e, h.Events[i])
		}
	}
}

// TestSyncDirDurability pins the crash-durability half of AtomicWriteFile:
// the parent directory is fsynced after the rename so the new directory
// entry survives a power loss, and an unreachable directory surfaces as an
// error rather than a silent durability downgrade.
func TestSyncDirDurability(t *testing.T) {
	dir := t.TempDir()
	if err := syncDir(dir); err != nil {
		t.Fatalf("syncDir on a real directory: %v", err)
	}
	if err := syncDir(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Fatal("syncDir on a missing directory reported success")
	} else if !strings.Contains(err.Error(), "opening directory") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
	// The full write path must still succeed (and sync) in a freshly created
	// nested directory, where the parent entry itself is brand new.
	nested := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(nested, "out.json")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{}\n")
		return err
	}); err != nil {
		t.Fatalf("AtomicWriteFile in a fresh directory: %v", err)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "{}\n" {
		t.Fatalf("read back %q, %v", data, err)
	}
}
