package obsfile

import (
	"bytes"
	"strings"
	"testing"

	"lineup/internal/history"
)

func TestReadTrace(t *testing.T) {
	in := `
# a hand-written Fig. 1-shaped trace
{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}

{"t":1,"k":"call","op":"TryDequeue()"}
{"t":1,"k":"ret","res":"Fail"}
`
	h, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Events) != 4 || h.Stuck {
		t.Fatalf("bad history: %+v", h)
	}
	ops := h.Ops()
	if len(ops) != 2 || !ops[0].Complete || ops[1].Result != "Fail" {
		t.Fatalf("bad ops: %v", ops)
	}
	if !h.WellFormed() {
		t.Fatal("trace must parse to a well-formed history")
	}
}

func TestReadTraceStuck(t *testing.T) {
	in := `{"t":0,"k":"call","op":"Take()"}
{"k":"stuck"}
`
	h, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Stuck || len(h.Pending()) != 1 {
		t.Fatalf("expected a stuck history with one pending op: %+v", h)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"bad json", `{"t":0,"k":`, "line 1"},
		{"unknown kind", `{"t":0,"k":"invoke","op":"X()"}`, "unknown event kind"},
		{"call while open", `{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":0,"k":"call","op":"B()"}`, "still open"},
		{"ret without call", `{"t":0,"k":"ret","res":"ok"}`, "without an open call"},
		{"ret wrong op", `{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":0,"k":"ret","op":"B()","res":"ok"}`, "B() but A() is open"},
		{"call without op", `{"t":0,"k":"call"}`, "without an op name"},
		{"negative thread", `{"t":-1,"k":"call","op":"A()"}`, "negative thread"},
		{"events after stuck", `{"k":"stuck"}` + "\n" + `{"t":0,"k":"call","op":"A()"}`, "after the stuck marker"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestTraceRoundTrip(t *testing.T) {
	h := &history.History{
		Events: []history.Event{
			{Thread: 0, Kind: history.Call, Op: "Enqueue(10)", Index: 0},
			{Thread: 1, Kind: history.Call, Op: "TryDequeue()", Index: 1},
			{Thread: 0, Kind: history.Return, Op: "Enqueue(10)", Result: "ok", Index: 0},
			{Thread: 1, Kind: history.Return, Op: "TryDequeue()", Result: "10", Index: 1},
			{Thread: 2, Kind: history.Call, Op: "Take()", Index: 2},
		},
		Stuck: true,
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stuck != h.Stuck || len(got.Events) != len(h.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i, e := range got.Events {
		w := h.Events[i]
		if e.Thread != w.Thread || e.Kind != w.Kind || e.Op != w.Op || e.Result != w.Result {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, e, w)
		}
	}
}

func TestParseErrorPaths(t *testing.T) {
	const good = `<observationset>
  <observation>
    <thread id="A">1</thread>
    <thread id="B">2</thread>
    <op id="1" name="Add">value="200" result="ok"</op>
    <op id="2" name="TryTake">result="200"</op>
    <history>1[ ]1 2[ ]2</history>
  </observation>
</observationset>`
	// The well-formed file parses.
	if _, err := Parse(strings.NewReader(good)); err != nil {
		t.Fatalf("good file rejected: %v", err)
	}
	cases := []struct{ name, in, want string }{
		{
			"truncated xml",
			good[:len(good)/2],
			"obsfile:",
		},
		{
			"duplicate thread id",
			strings.Replace(good, `<thread id="B">2</thread>`, `<thread id="A">2</thread>`, 1),
			"duplicate thread id",
		},
		{
			"op listed twice",
			strings.Replace(good, `<thread id="B">2</thread>`, `<thread id="B">1 2</thread>`, 1),
			"more than one thread",
		},
		{
			"missing result string",
			strings.Replace(good, `<op id="2" name="TryTake">result="200"</op>`, `<op id="2" name="TryTake" />`, 1),
			"no result string",
		},
		{
			"blocking op with result",
			strings.Replace(good, `<thread id="B">2</thread>`, `<thread id="B">2B</thread>`, 1),
			"carries result",
		},
		{
			"op without thread",
			strings.Replace(good, `<thread id="B">2</thread>`, ``, 1),
			"not listed by any thread",
		},
		{
			"history references undefined op",
			strings.Replace(good, "1[ ]1 2[ ]2", "1[ ]1 3[ ]3", 1),
			"undefined op",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}
