package obsfile

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"lineup/internal/history"
)

func TestStreamReaderEventByEvent(t *testing.T) {
	in := `
# comment
{"t":0,"k":"call","op":"Enqueue(10)","p":"q1"}
{"t":1,"k":"call","op":"TryDequeue()","p":"q1"}
{"t":0,"k":"ret","res":"ok"}
{"t":1,"k":"ret","res":"10"}
{"k":"stuck"}
`
	sr := NewStreamReader(strings.NewReader(in))
	want := []StreamEvent{
		{Thread: 0, Kind: history.Call, Op: "Enqueue(10)", Part: "q1", Index: 0, Line: 3},
		{Thread: 1, Kind: history.Call, Op: "TryDequeue()", Part: "q1", Index: 1, Line: 4},
		{Thread: 0, Kind: history.Return, Op: "Enqueue(10)", Result: "ok", Part: "q1", Index: 0, Line: 5},
		{Thread: 1, Kind: history.Return, Op: "TryDequeue()", Result: "10", Part: "q1", Index: 1, Line: 6},
		{Stuck: true, Line: 7},
	}
	for i, w := range want {
		ev, err := sr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != w {
			t.Fatalf("event %d: got %+v want %+v", i, ev, w)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("after stuck: err=%v, want EOF", err)
	}
	if !sr.Tracker().Stuck() || sr.Tracker().Events() != 5 {
		t.Fatalf("tracker: stuck=%v events=%d", sr.Tracker().Stuck(), sr.Tracker().Events())
	}
}

func TestStreamReaderPartitionMismatch(t *testing.T) {
	in := `{"t":0,"k":"call","op":"A()","p":"x"}
{"t":0,"k":"ret","res":"ok","p":"y"}
`
	sr := NewStreamReader(strings.NewReader(in))
	if _, err := sr.Next(); err != nil {
		t.Fatalf("call: %v", err)
	}
	_, err := sr.Next()
	if err == nil || !strings.Contains(err.Error(), `partition "y"`) {
		t.Fatalf("conflicting return partition: err=%v", err)
	}
}

func TestTrackerStateRoundTrip(t *testing.T) {
	tr := NewStreamTracker()
	events := []TraceEvent{
		{T: 0, K: "call", Op: "A()", P: "x"},
		{T: 1, K: "call", Op: "B()"},
		{T: 0, K: "ret", Res: "ok"},
		{T: 2, K: "call", Op: "C()", P: "z"},
	}
	for i, ev := range events {
		if _, err := tr.Apply(ev, i+1); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	restored := RestoreStreamTracker(tr.State())
	if restored.Events() != tr.Events() || restored.OpenCalls() != tr.OpenCalls() {
		t.Fatalf("restored tracker differs: events %d/%d open %d/%d",
			restored.Events(), tr.Events(), restored.OpenCalls(), tr.OpenCalls())
	}
	// The restored tracker continues with identical op indices and keys.
	for _, tk := range []*StreamTracker{tr, restored} {
		ev, err := tk.Apply(TraceEvent{T: 1, K: "ret", Res: "ok"}, 5)
		if err != nil {
			t.Fatalf("ret on %p: %v", tk, err)
		}
		if ev.Op != "B()" || ev.Index != 1 {
			t.Fatalf("resolved return %+v, want B() index 1", ev)
		}
	}
	// And rejects a double call the same way.
	if _, err := restored.Apply(TraceEvent{T: 2, K: "call", Op: "D()"}, 6); err == nil {
		t.Fatal("restored tracker accepted a double call")
	}
}

// benchTrace builds an in-memory JSONL trace of n call/return pairs with
// comments and blank lines sprinkled in, the parse shape the ingest hot path
// sees in production.
func benchTrace(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString("# generated benchmark trace\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "{\"t\":%d,\"k\":\"call\",\"op\":\"Enqueue(%d)\",\"p\":\"q%d\"}\n", i%8, i, i%4)
		fmt.Fprintf(&buf, "{\"t\":%d,\"k\":\"ret\",\"res\":\"ok\"}\n", i%8)
		if i%64 == 0 {
			buf.WriteString("\n# checkpoint comment\n")
		}
	}
	return buf.Bytes()
}

func BenchmarkStreamReaderNext(b *testing.B) {
	trace := benchTrace(1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(trace)))
	for i := 0; i < b.N; i++ {
		sr := NewStreamReader(bytes.NewReader(trace))
		for {
			if _, err := sr.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
	}
}

func BenchmarkRawReaderNext(b *testing.B) {
	trace := benchTrace(1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(trace)))
	for i := 0; i < b.N; i++ {
		rr := NewRawReader(bytes.NewReader(trace))
		for {
			if _, err := rr.Next(); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
		}
	}
}

func TestRawReaderSkipsValidation(t *testing.T) {
	// A raw reader parses events a tracker would reject (validation is the
	// caller's job) but still fails stop on malformed JSON.
	in := `{"t":0,"k":"ret","res":"ok"}
# comment
{"t":0,"k":"call","op":"A()"}
{oops
`
	rr := NewRawReader(strings.NewReader(in))
	if ev, err := rr.Next(); err != nil || ev.K != "ret" {
		t.Fatalf("first: %+v err=%v", ev, err)
	}
	if ev, err := rr.Next(); err != nil || ev.Op != "A()" || rr.Line() != 3 {
		t.Fatalf("second: %+v line=%d err=%v", ev, rr.Line(), err)
	}
	if _, err := rr.Next(); err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("malformed line: err=%v", err)
	}
	if _, err := rr.Next(); err == nil || err == io.EOF {
		t.Fatalf("error not sticky: %v", err)
	}
}
