// Package obsfile implements the XML observation-file format of the
// paper's Fig. 7. The file lists the serial histories synthesized in phase
// 1, grouped into <observation> sections whose histories agree on the
// per-thread operation sequences and differ only in their interleaving.
// Operations are numbered within each section; a history is rendered as a
// token string like "1[ ]1 3[ ]3 4[ ]4 2[ ]2", where "i[" and "]i" are the
// call and return of operation i, blocking operations carry a "B" marker in
// the thread listing, and stuck histories end with "#".
package obsfile

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"lineup/internal/history"
)

// opDesc is one operation of an observation section.
type opDesc struct {
	Number int
	Thread int
	Name   string // method with args, e.g. "Add(200)"
	Result string // empty for blocking (pending) operations
	Blocks bool
}

// Observation is one section: the per-thread operation sequences and the
// serial interleavings observed for them.
type Observation struct {
	Ops       []opDesc
	Histories []*history.SerialHistory
}

// File is a parsed observation file.
type File struct {
	Observations []*Observation
}

// threadName renders a thread index as the paper's letters, with the final
// (teardown) pseudo-thread of a test rendered like any other thread.
func threadName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("T%d", i)
}

func threadIndex(name string) (int, error) {
	if len(name) == 1 && name[0] >= 'A' && name[0] <= 'Z' {
		return int(name[0] - 'A'), nil
	}
	var i int
	if _, err := fmt.Sscanf(name, "T%d", &i); err != nil {
		return 0, fmt.Errorf("obsfile: bad thread id %q", name)
	}
	return i, nil
}

// buildObservation converts one spec group (full and stuck histories with
// identical per-thread sequences) into an Observation.
func buildObservation(full, stuck []*history.SerialHistory) *Observation {
	var sample *history.SerialHistory
	if len(full) > 0 {
		sample = full[0]
	} else {
		sample = stuck[0]
	}
	// Recover per-thread sequences from the sample.
	perThread := make(map[int][]opDesc)
	for _, op := range sample.Ops {
		perThread[op.Thread] = append(perThread[op.Thread], opDesc{
			Thread: op.Thread, Name: op.Name, Result: op.Result,
		})
	}
	if sample.Pending != nil {
		perThread[sample.Pending.Thread] = append(perThread[sample.Pending.Thread], opDesc{
			Thread: sample.Pending.Thread, Name: sample.Pending.Name, Blocks: true,
		})
	}
	threads := make([]int, 0, len(perThread))
	for t := range perThread {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	obs := &Observation{}
	num := 0
	for _, t := range threads {
		for i := range perThread[t] {
			num++
			d := perThread[t][i]
			d.Number = num
			obs.Ops = append(obs.Ops, d)
		}
	}
	obs.Histories = append(obs.Histories, full...)
	obs.Histories = append(obs.Histories, stuck...)
	return obs
}

// number maps (thread, per-thread position) to the section's op number.
func (o *Observation) number() map[[2]int]int {
	pos := make(map[int]int)
	out := make(map[[2]int]int)
	for _, d := range o.Ops {
		out[[2]int{d.Thread, pos[d.Thread]}] = d.Number
		pos[d.Thread]++
	}
	return out
}

// renderHistory renders a serial history in the token notation.
func (o *Observation) renderHistory(s *history.SerialHistory) string {
	num := o.number()
	perThread := make(map[int]int)
	var parts []string
	for _, op := range s.Ops {
		n := num[[2]int{op.Thread, perThread[op.Thread]}]
		perThread[op.Thread]++
		parts = append(parts, fmt.Sprintf("%d[", n), fmt.Sprintf("]%d", n))
	}
	if s.Pending != nil {
		n := num[[2]int{s.Pending.Thread, perThread[s.Pending.Thread]}]
		parts = append(parts, fmt.Sprintf("%d[", n), "#")
	}
	return strings.Join(parts, " ")
}

// Write renders the specification's groups in the Fig. 7 format.
func Write(w io.Writer, spec *history.Spec) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<observationset>")
	for _, sig := range spec.Groups() {
		full, stuck := spec.GroupHistories(sig)
		obs := buildObservation(full, stuck)
		writeObservation(bw, obs)
	}
	fmt.Fprintln(bw, "</observationset>")
	return bw.Flush()
}

func writeObservation(bw *bufio.Writer, obs *Observation) {
	fmt.Fprintln(bw, "  <observation>")
	// <thread> elements list op numbers per thread; blocking ops carry "B".
	perThread := make(map[int][]string)
	var threads []int
	for _, d := range obs.Ops {
		if _, seen := perThread[d.Thread]; !seen {
			threads = append(threads, d.Thread)
		}
		tok := strconv.Itoa(d.Number)
		if d.Blocks {
			tok += "B"
		}
		perThread[d.Thread] = append(perThread[d.Thread], tok)
	}
	sort.Ints(threads)
	for _, t := range threads {
		fmt.Fprintf(bw, "    <thread id=%q>%s</thread>\n", threadName(t), strings.Join(perThread[t], " "))
	}
	for _, d := range obs.Ops {
		method, args := splitName(d.Name)
		var body string
		if args != "" {
			body = fmt.Sprintf("value=%q", args)
		}
		if d.Result != "" {
			if body != "" {
				body += " "
			}
			body += fmt.Sprintf("result=%q", d.Result)
		}
		if body == "" {
			fmt.Fprintf(bw, "    <op id=\"%d\" name=%q />\n", d.Number, method)
		} else {
			fmt.Fprintf(bw, "    <op id=\"%d\" name=%q>%s</op>\n", d.Number, method, xmlEscape(body))
		}
	}
	for _, h := range obs.Histories {
		fmt.Fprintf(bw, "    <history>%s</history>\n", obs.renderHistory(h))
	}
	fmt.Fprintln(bw, "  </observation>")
}

// splitName separates "Add(200)" into method "Add" and args "200".
func splitName(name string) (method, args string) {
	i := strings.IndexByte(name, '(')
	if i < 0 || !strings.HasSuffix(name, ")") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func xmlEscape(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	// EscapeText escapes quotes too aggressively for our attribute-in-text
	// style; the format is line-oriented, so undo the quote escaping for
	// readability (parse reverses it).
	return strings.ReplaceAll(b.String(), "&#34;", "\"")
}

// --- parsing ---

type xmlOp struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name,attr"`
	Body string `xml:",chardata"`
}

type xmlThread struct {
	ID   string `xml:"id,attr"`
	Body string `xml:",chardata"`
}

type xmlObservation struct {
	Threads   []xmlThread `xml:"thread"`
	Ops       []xmlOp     `xml:"op"`
	Histories []string    `xml:"history"`
}

type xmlFile struct {
	XMLName      xml.Name         `xml:"observationset"`
	Observations []xmlObservation `xml:"observation"`
}

// Parse reads an observation file back into its structured form.
func Parse(r io.Reader) (*File, error) {
	var xf xmlFile
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&xf); err != nil {
		return nil, fmt.Errorf("obsfile: %w", err)
	}
	f := &File{}
	for _, xo := range xf.Observations {
		obs := &Observation{}
		blocks := make(map[int]bool)
		threadOf := make(map[int]int)
		order := make(map[int]int) // op number -> position within its thread listing
		seenThreads := make(map[int]bool)
		for _, xt := range xo.Threads {
			ti, err := threadIndex(xt.ID)
			if err != nil {
				return nil, err
			}
			if seenThreads[ti] {
				return nil, fmt.Errorf("obsfile: duplicate thread id %q", xt.ID)
			}
			seenThreads[ti] = true
			for pos, tok := range strings.Fields(xt.Body) {
				b := strings.HasSuffix(tok, "B")
				tok = strings.TrimSuffix(tok, "B")
				n, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("obsfile: bad op number %q", tok)
				}
				if _, dup := threadOf[n]; dup {
					return nil, fmt.Errorf("obsfile: op %d listed by more than one thread", n)
				}
				blocks[n] = b
				threadOf[n] = ti
				order[n] = pos
			}
		}
		for _, xop := range xo.Ops {
			if _, known := threadOf[xop.ID]; !known {
				return nil, fmt.Errorf("obsfile: op %d (%s) is not listed by any thread", xop.ID, xop.Name)
			}
			value, result := parseOpBody(xop.Body)
			name := xop.Name
			if value != "" {
				name = fmt.Sprintf("%s(%s)", xop.Name, value)
			} else {
				name = xop.Name + "()"
			}
			// A blocking op has no result string; a completing op must carry
			// one (void operations record "ok").
			if blocks[xop.ID] && result != "" {
				return nil, fmt.Errorf("obsfile: blocking op %d (%s) carries result %q", xop.ID, name, result)
			}
			if !blocks[xop.ID] && result == "" {
				return nil, fmt.Errorf("obsfile: op %d (%s) has no result string", xop.ID, name)
			}
			obs.Ops = append(obs.Ops, opDesc{
				Number: xop.ID,
				Thread: threadOf[xop.ID],
				Name:   name,
				Result: result,
				Blocks: blocks[xop.ID],
			})
		}
		sort.Slice(obs.Ops, func(i, j int) bool { return obs.Ops[i].Number < obs.Ops[j].Number })
		byNumber := make(map[int]opDesc)
		for _, d := range obs.Ops {
			byNumber[d.Number] = d
		}
		for _, hs := range xo.Histories {
			sh, err := parseHistoryTokens(hs, byNumber)
			if err != nil {
				return nil, err
			}
			obs.Histories = append(obs.Histories, sh)
		}
		f.Observations = append(f.Observations, obs)
	}
	return f, nil
}

// parseOpBody extracts value="..." and result="..." from an op body.
func parseOpBody(body string) (value, result string) {
	body = strings.TrimSpace(body)
	for _, kv := range []struct {
		key string
		dst *string
	}{{"value", &value}, {"result", &result}} {
		idx := strings.Index(body, kv.key+`="`)
		if idx < 0 {
			continue
		}
		rest := body[idx+len(kv.key)+2:]
		end := strings.IndexByte(rest, '"')
		if end >= 0 {
			*kv.dst = rest[:end]
		}
	}
	return value, result
}

// parseHistoryTokens rebuilds a serial history from its token string.
func parseHistoryTokens(s string, ops map[int]opDesc) (*history.SerialHistory, error) {
	sh := &history.SerialHistory{}
	toks := strings.Fields(s)
	for i := 0; i < len(toks); i++ {
		tok := toks[i]
		switch {
		case tok == "#":
			if i == 0 {
				return nil, fmt.Errorf("obsfile: stuck marker with no pending call in %q", s)
			}
		case strings.HasSuffix(tok, "["):
			n, err := strconv.Atoi(strings.TrimSuffix(tok, "["))
			if err != nil {
				return nil, fmt.Errorf("obsfile: bad token %q", tok)
			}
			d, known := ops[n]
			if !known {
				return nil, fmt.Errorf("obsfile: history references undefined op %d in %q", n, s)
			}
			// A call is either immediately followed by its return (serial)
			// or by the stuck marker.
			if i+1 < len(toks) && toks[i+1] == "#" {
				sh.Pending = &history.SerialPending{Thread: d.Thread, Name: d.Name}
				i++
				continue
			}
			sh.Ops = append(sh.Ops, history.SerialOp{Thread: d.Thread, Name: d.Name, Result: d.Result})
		case strings.HasPrefix(tok, "]"):
			// return token; already accounted for by the call
		default:
			return nil, fmt.Errorf("obsfile: bad token %q", tok)
		}
	}
	return sh, nil
}

// ToSpec rebuilds a specification from a parsed file, suitable for witness
// checking (e.g. regression-checking a recorded violation against an
// archived observation file).
func (f *File) ToSpec() *history.Spec {
	spec := history.NewSpec()
	for _, obs := range f.Observations {
		for _, h := range obs.Histories {
			spec.Add(h)
		}
	}
	return spec
}
