package obsfile

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadTrace exercises the JSONL history-trace parser with arbitrary
// input. The invariants are: ReadTrace never panics; on success the parsed
// history is well-formed (or stuck-annotated) and survives a
// WriteTrace/ReadTrace round trip unchanged.
func FuzzReadTrace(f *testing.F) {
	seeds := []string{
		// Well-formed traces from the unit tests.
		`
# a hand-written Fig. 1-shaped trace
{"t":0,"k":"call","op":"Enqueue(10)"}
{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}

{"t":1,"k":"call","op":"TryDequeue()"}
{"t":1,"k":"ret","res":"Fail"}
`,
		`{"t":0,"k":"call","op":"Take()"}
{"k":"stuck"}
`,
		// Every rejection path from TestReadTraceErrors.
		`{"t":0,"k":`,
		`{"t":0,"k":"invoke","op":"X()"}`,
		`{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":0,"k":"call","op":"B()"}`,
		`{"t":0,"k":"ret","res":"ok"}`,
		`{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":0,"k":"ret","op":"B()","res":"ok"}`,
		`{"t":0,"k":"call"}`,
		`{"t":-1,"k":"call","op":"A()"}`,
		`{"k":"stuck"}` + "\n" + `{"t":0,"k":"call","op":"A()"}`,
		// Oddities: empty input, comments only, huge thread, embedded junk.
		``,
		"#\n#\n",
		`{"t":99999999,"k":"call","op":"A()"}`,
		"\x00\xff{not json at all",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			if h != nil {
				t.Fatalf("error %v returned alongside a non-nil history", err)
			}
			return
		}
		if h == nil {
			t.Fatalf("nil history with nil error")
		}
		// A parsed trace is internally consistent: full histories are
		// well-formed, and re-serializing must reproduce the exact history.
		if !h.Stuck && !h.WellFormed() {
			t.Fatalf("parsed full history is not well-formed: %+v", h)
		}
		var buf bytes.Buffer
		if werr := WriteTrace(&buf, h); werr != nil {
			t.Fatalf("WriteTrace on parsed history: %v", werr)
		}
		h2, rerr := ReadTrace(&buf)
		if rerr != nil {
			t.Fatalf("re-reading written trace: %v\ntrace:\n%s", rerr, buf.String())
		}
		if h2.Stuck != h.Stuck || len(h2.Events) != len(h.Events) {
			t.Fatalf("round trip changed shape: %+v vs %+v", h2, h)
		}
		for i, e := range h2.Events {
			w := h.Events[i]
			if e.Thread != w.Thread || e.Kind != w.Kind || e.Op != w.Op || e.Result != w.Result {
				t.Fatalf("round trip changed event %d: got %+v want %+v", i, e, w)
			}
		}
	})
}

// FuzzStreamReader exercises the incremental trace reader with arbitrary
// input — malformed JSON, truncated lines, interleaved partition keys. The
// invariants are: Next never panics; errors are sticky (a broken stream can
// never wedge or half-advance a consumer); and the event-by-event result
// agrees exactly with the batch ReadTrace on the same bytes.
func FuzzStreamReader(f *testing.F) {
	seeds := []string{
		"",
		`{"t":0,"k":"call","op":"A()","p":"x"}` + "\n" + `{"t":0,"k":"ret","res":"ok"}`,
		`{"t":0,"k":"call","op":"A()","p":"x"}` + "\n" + `{"t":0,"k":"ret","res":"ok","p":"y"}`,
		`{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":1,"k":"call","op":"B()","p":"q"}` + "\n{bad",
		`{"k":"stuck"}` + "\n" + `{"t":0,"k":"call","op":"A()"}`,
		`{"t":0,"k":"call","op":"A()"}` + "\n" + `{"t":0,"k":"call","op":"B()"}`,
		"\x00\xff{not json at all",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sr := NewStreamReader(strings.NewReader(in))
		var events []StreamEvent
		var stuck bool
		var streamErr error
		for {
			ev, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				// Sticky: every further Next returns the identical error.
				if _, again := sr.Next(); again == nil || again.Error() != err.Error() {
					t.Fatalf("error not sticky: first %v then %v", err, again)
				}
				break
			}
			if ev.Stuck {
				stuck = true
			} else {
				events = append(events, ev)
			}
		}
		h, rerr := ReadTrace(strings.NewReader(in))
		if (rerr == nil) != (streamErr == nil) {
			t.Fatalf("batch/stream disagree: batch err %v, stream err %v", rerr, streamErr)
		}
		if rerr != nil {
			if rerr.Error() != streamErr.Error() {
				t.Fatalf("batch/stream error text differs: %q vs %q", rerr, streamErr)
			}
			return
		}
		if h.Stuck != stuck || len(h.Events) != len(events) {
			t.Fatalf("batch/stream shape differs: batch %d events stuck=%v, stream %d stuck=%v",
				len(h.Events), h.Stuck, len(events), stuck)
		}
		for i, ev := range events {
			he := ev.HistoryEvent()
			if he != h.Events[i] {
				t.Fatalf("event %d differs: stream %+v batch %+v", i, he, h.Events[i])
			}
		}
	})
}
