package obsfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"lineup/internal/history"
)

// WriteViolation renders a violating concurrent history in the XML style of
// Fig. 7 (bottom): the per-thread operation listings, the <op> elements,
// and the precise interleaving of the history, with pending operations
// marked "B" and stuck histories ending in "#".
func WriteViolation(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Line-Up encountered a non-linearizable history:")

	ops := h.Ops()
	perThread := make(map[int][]history.Op)
	var threads []int
	for _, op := range ops {
		if _, seen := perThread[op.Thread]; !seen {
			threads = append(threads, op.Thread)
		}
		perThread[op.Thread] = append(perThread[op.Thread], op)
	}
	sort.Ints(threads)
	// Number ops by thread order, like the observation file.
	number := make(map[int]int) // op Index -> display number
	n := 0
	for _, t := range threads {
		var toks []string
		for _, op := range perThread[t] {
			n++
			number[op.Index] = n
			tok := fmt.Sprint(n)
			if !op.Complete {
				tok += "B"
			}
			toks = append(toks, tok)
		}
		fmt.Fprintf(bw, "  <thread id=%q>%s</thread>\n", threadName(t), strings.Join(toks, " "))
	}
	for _, t := range threads {
		for _, op := range perThread[t] {
			method, args := splitName(op.Name)
			var body string
			if args != "" {
				body = fmt.Sprintf("value=%q", args)
			}
			if op.Complete {
				if body != "" {
					body += " "
				}
				body += fmt.Sprintf("result=%q", op.Result)
			}
			if body == "" {
				fmt.Fprintf(bw, "  <op id=\"%d\" name=%q />\n", number[op.Index], method)
			} else {
				fmt.Fprintf(bw, "  <op id=\"%d\" name=%q>%s</op>\n", number[op.Index], method, body)
			}
		}
	}
	fmt.Fprintf(bw, "  <history>%s</history>\n", h.Interleaving(number))
	return bw.Flush()
}
