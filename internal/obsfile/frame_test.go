package obsfile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
)

// frameEvents is a small mixed fixture: calls with and without partition
// keys, returns with and without op echoes, and a trailing stuck marker.
func frameEvents() []TraceEvent {
	return []TraceEvent{
		{T: 0, K: "call", Op: "Enqueue(10)", P: "q0"},
		{T: 1, K: "call", Op: "TryDequeue()", P: "q0"},
		{T: 0, K: "ret", Op: "Enqueue(10)", Res: "ok"},
		{T: 1, K: "ret", Res: "Fail"},
		{T: 2, K: "call", Op: "Write(1)"},
		{T: 2, K: "ret", Res: "ok"},
		{T: 0, K: "stuck"},
	}
}

func encodeFrames(t *testing.T, evs []TraceEvent, batchSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if batchSize > 0 {
		fw.BatchSize = batchSize
	}
	for _, ev := range evs {
		if err := fw.WriteEvent(ev); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func decodeFrames(t *testing.T, data []byte) []TraceEvent {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(data))
	var out []TraceEvent
	for {
		ev, err := fr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next after %d events: %v", len(out), err)
		}
		out = append(out, ev)
	}
}

// TestFrameRoundTrip pins encode→decode identity across frame boundaries.
func TestFrameRoundTrip(t *testing.T) {
	evs := frameEvents()
	for _, batch := range []int{1, 2, 3, 512} {
		got := decodeFrames(t, encodeFrames(t, evs, batch))
		if !reflect.DeepEqual(got, evs) {
			t.Fatalf("batch=%d: round trip mismatch:\ngot  %+v\nwant %+v", batch, got, evs)
		}
	}
}

// TestFrameEmptyStreamIsCleanEOF: zero bytes decode as zero events.
func TestFrameEmptyStreamIsCleanEOF(t *testing.T) {
	if got := decodeFrames(t, nil); len(got) != 0 {
		t.Fatalf("empty stream decoded %d events", len(got))
	}
}

// TestFrameWrongMagicFails: a JSONL body fed to the frame decoder must fail
// with a format diagnostic, not decode garbage.
func TestFrameWrongMagicFails(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader([]byte(`{"t":0,"k":"call","op":"X()"}`)))
	if _, err := fr.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("wrong magic: got err=%v", err)
	}
}

// TestFrameTruncatedFinalFrame is the sticky-error regression (satellite):
// a stream cut mid-frame must surface a structured *TruncatedFrameError with
// the byte offset of the cut frame — at every possible cut point — and the
// error must be sticky on both the raw FrameReader and the validated
// StreamReader, never a silent clean EOF.
func TestFrameTruncatedFinalFrame(t *testing.T) {
	evs := frameEvents()
	data := encodeFrames(t, evs, 3) // three frames: 3+3+1 events
	whole := decodeFrames(t, data)
	for cut := len(frameMagic); cut < len(data); cut++ {
		fr := NewFrameReader(bytes.NewReader(data[:cut]))
		var got []TraceEvent
		var err error
		for {
			var ev TraceEvent
			ev, err = fr.Next()
			if err != nil {
				break
			}
			got = append(got, ev)
		}
		if err == io.EOF {
			// A clean EOF is only legitimate at an exact frame boundary, i.e.
			// the decoded events are a prefix of the full stream.
			for i := range got {
				if got[i] != whole[i] {
					t.Fatalf("cut=%d: clean EOF with wrong prefix at event %d", cut, i)
				}
			}
			continue
		}
		var tfe *TruncatedFrameError
		if !errors.As(err, &tfe) {
			t.Fatalf("cut=%d: got %T (%v), want *TruncatedFrameError", cut, err, err)
		}
		if tfe.Offset < 0 || tfe.Offset >= int64(cut) && tfe.Offset != int64(cut) {
			t.Fatalf("cut=%d: truncation offset %d out of range", cut, tfe.Offset)
		}
		// Sticky: the same error again, not EOF.
		if _, err2 := fr.Next(); !errors.As(err2, &tfe) {
			t.Fatalf("cut=%d: error not sticky: second Next gave %v", cut, err2)
		}
	}

	// The validated reader path (NewBatchStreamReader) carries the same
	// structured error. Cut inside the final frame.
	cut := len(data) - 2
	sr := NewBatchStreamReader(bytes.NewReader(data[:cut]))
	var err error
	for err == nil {
		_, err = sr.Next()
	}
	var tfe *TruncatedFrameError
	if !errors.As(err, &tfe) {
		t.Fatalf("StreamReader: got %v, want *TruncatedFrameError", err)
	}
	if _, err2 := sr.Next(); !errors.As(err2, &tfe) {
		t.Fatalf("StreamReader error not sticky: %v", err2)
	}
}

// TestBatchStreamReaderMatchesJSONL pins the two validated paths to the same
// StreamEvents on the same event sequence.
func TestBatchStreamReaderMatchesJSONL(t *testing.T) {
	evs := frameEvents()
	var jsonl bytes.Buffer
	for _, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		jsonl.Write(b)
		jsonl.WriteByte('\n')
	}
	js := NewStreamReader(bytes.NewReader(jsonl.Bytes()))
	bs := NewBatchStreamReader(bytes.NewReader(encodeFrames(t, evs, 2)))
	for i := 0; ; i++ {
		je, jerr := js.Next()
		be, berr := bs.Next()
		if (jerr == io.EOF) != (berr == io.EOF) {
			t.Fatalf("event %d: EOF mismatch: jsonl=%v batch=%v", i, jerr, berr)
		}
		if jerr == io.EOF {
			return
		}
		if jerr != nil || berr != nil {
			t.Fatalf("event %d: jsonl=%v batch=%v", i, jerr, berr)
		}
		// Line is transport-specific (source line vs event ordinal); all
		// semantic fields must agree.
		je.Line, be.Line = 0, 0
		if je != be {
			t.Fatalf("event %d differs:\njsonl %+v\nbatch %+v", i, je, be)
		}
	}
}

// TestFrameReaderNextBatch pins the frame-granular decode used by the serve
// batch ingest path.
func TestFrameReaderNextBatch(t *testing.T) {
	evs := frameEvents()
	fr := NewFrameReader(bytes.NewReader(encodeFrames(t, evs, 3)))
	var got []TraceEvent
	sizes := []int{}
	for {
		b, err := fr.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(b))
		got = append(got, append([]TraceEvent(nil), b...)...)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("NextBatch mismatch:\ngot  %+v\nwant %+v", got, evs)
	}
	if !reflect.DeepEqual(sizes, []int{3, 3, 1}) {
		t.Fatalf("frame sizes %v, want [3 3 1]", sizes)
	}
}

// TestShardedTrackerMatchesStreamTracker replays a serial trace through both
// trackers: verdict-relevant resolution (kind, op, result, partition, and
// call/return index pairing) must agree event for event, and the counters and
// checkpoint snapshots must round-trip.
func TestShardedTrackerMatchesStreamTracker(t *testing.T) {
	evs := []TraceEvent{
		{T: 0, K: "call", Op: "Enqueue(1)", P: "a"},
		{T: 1, K: "call", Op: "Enqueue(2)", P: "b"},
		{T: 0, K: "ret", Res: "ok"},
		{T: 1, K: "ret", Res: "ok"},
		{T: 0, K: "call", Op: "TryDequeue()", P: "a"},
		{T: 0, K: "ret", Res: "1"},
		{T: 5, K: "call", Op: "Write(3)"},
	}
	st := NewStreamTracker()
	sh := NewShardedTracker()
	pair := map[int]int{} // sharded index -> single index
	for i, ev := range evs {
		a, aerr := st.Apply(ev, i+1)
		b, berr := sh.Apply(ev, i+1)
		if (aerr == nil) != (berr == nil) {
			t.Fatalf("event %d: error mismatch: %v vs %v", i, aerr, berr)
		}
		if aerr != nil {
			continue
		}
		if a.Kind != b.Kind || a.Op != b.Op || a.Result != b.Result || a.Part != b.Part || a.Thread != b.Thread {
			t.Fatalf("event %d: resolution mismatch:\nsingle  %+v\nsharded %+v", i, a, b)
		}
		if prev, ok := pair[b.Index]; ok {
			if prev != a.Index {
				t.Fatalf("event %d: sharded index %d pairs with %d and %d", i, b.Index, prev, a.Index)
			}
		} else {
			pair[b.Index] = a.Index
		}
	}
	if st.Events() != sh.Events() || st.OpenCalls() != sh.OpenCalls() || st.Stuck() != sh.Stuck() {
		t.Fatalf("counters diverge: single (%d,%d,%v) sharded (%d,%d,%v)",
			st.Events(), st.OpenCalls(), st.Stuck(), sh.Events(), sh.OpenCalls(), sh.Stuck())
	}
	// Snapshot round-trip: a sharded tracker restored from its own state
	// keeps validating correctly and allocates fresh indices above Next.
	state := sh.State()
	if state.Events != sh.Events() || len(state.Open) != sh.OpenCalls() {
		t.Fatalf("snapshot does not reflect the tracker: %+v", state)
	}
	re := RestoreShardedTracker(state)
	if _, err := re.Apply(TraceEvent{T: 5, K: "ret", Res: "ok"}, 99); err != nil {
		t.Fatalf("restored tracker rejects the open call's return: %v", err)
	}
	ev, err := re.Apply(TraceEvent{T: 9, K: "call", Op: "Read()"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Index < state.Next {
		t.Fatalf("restored tracker reissued index %d below the high water %d", ev.Index, state.Next)
	}
}

// TestShardedTrackerConcurrent hammers the tracker from several goroutines —
// one per thread id, the serve contract — and checks the global invariants:
// every op gets a unique index, the event and open-call counters balance,
// and discipline violations (double call) are still caught. Run under -race
// via the serve-smoke target's package sweep.
func TestShardedTrackerConcurrent(t *testing.T) {
	const threads, opsPer = 8, 500
	tr := NewShardedTracker()
	indices := make([][]int, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				op := fmt.Sprintf("Op(%d)", i)
				c, err := tr.Apply(TraceEvent{T: th, K: "call", Op: op}, i)
				if err != nil {
					t.Errorf("thread %d call %d: %v", th, i, err)
					return
				}
				r, err := tr.Apply(TraceEvent{T: th, K: "ret", Res: "ok"}, i)
				if err != nil {
					t.Errorf("thread %d ret %d: %v", th, i, err)
					return
				}
				if r.Index != c.Index || r.Op != op {
					t.Errorf("thread %d op %d: return resolved to index %d op %q, want %d %q",
						th, i, r.Index, r.Op, c.Index, op)
					return
				}
				indices[th] = append(indices[th], c.Index)
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[int]bool, threads*opsPer)
	for th := range indices {
		for _, idx := range indices[th] {
			if seen[idx] {
				t.Fatalf("index %d issued twice", idx)
			}
			seen[idx] = true
		}
	}
	if got, want := tr.Events(), int64(2*threads*opsPer); got != want {
		t.Fatalf("events %d, want %d", got, want)
	}
	if tr.OpenCalls() != 0 {
		t.Fatalf("open calls %d, want 0", tr.OpenCalls())
	}
	// Discipline still enforced per shard.
	if _, err := tr.Apply(TraceEvent{T: 0, K: "call", Op: "A()"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Apply(TraceEvent{T: 0, K: "call", Op: "B()"}, 2); err == nil {
		t.Fatal("double call on one thread was accepted")
	}
}

// FuzzBatchFrame drives the frame codec round trip: a byte program derives
// an arbitrary (not necessarily well formed) event sequence, which must
// survive encode→decode bit-identically and agree event-for-event with the
// JSONL path through the validated StreamReader — same acceptance, same
// rejection. The decoder must also never panic on the mutated raw frames the
// fuzzer synthesizes from the encodings.
//
// Wired into `make check` via the Makefile fuzz target; run longer with
// `go test -run='^$' -fuzz=FuzzBatchFrame ./internal/obsfile`.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0x01, 0x42, 0x13, 0x37, 0x00, 0xff}, false)
	f.Add([]byte{0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b}, true)
	f.Add(encodeRawSeed(), false)
	f.Fuzz(func(t *testing.T, program []byte, mutate bool) {
		if mutate {
			// Treat the program as a raw frame stream: must not panic, and
			// every error path must be sticky.
			fr := NewFrameReader(bytes.NewReader(program))
			var firstErr error
			for i := 0; i < 1<<16; i++ {
				_, err := fr.Next()
				if err != nil {
					firstErr = err
					break
				}
			}
			if firstErr != nil && firstErr != io.EOF {
				if _, err2 := fr.Next(); !errors.Is(err2, firstErr) && err2.Error() != firstErr.Error() {
					t.Fatalf("decoder error not sticky: %v then %v", firstErr, err2)
				}
			}
			return
		}
		evs := eventsFromProgram(program)
		// Round trip through frames.
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		fw.BatchSize = 3
		for _, ev := range evs {
			if err := fw.WriteEvent(ev); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
		for i, want := range evs {
			got, err := fr.Next()
			if err != nil {
				t.Fatalf("decode event %d: %v", i, err)
			}
			if got != want {
				t.Fatalf("event %d: %+v != %+v", i, got, want)
			}
		}
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("trailing decode: %v, want EOF", err)
		}
		// Validated agreement with the JSONL path: same accepted prefix,
		// same accept/reject behavior at the first bad event.
		var jsonl bytes.Buffer
		for _, ev := range evs {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			jsonl.Write(b)
			jsonl.WriteByte('\n')
		}
		js := NewStreamReader(bytes.NewReader(jsonl.Bytes()))
		bs := NewBatchStreamReader(bytes.NewReader(buf.Bytes()))
		for i := 0; ; i++ {
			je, jerr := js.Next()
			be, berr := bs.Next()
			if (jerr == nil) != (berr == nil) {
				t.Fatalf("event %d: acceptance mismatch: jsonl err=%v batch err=%v", i, jerr, berr)
			}
			if jerr != nil {
				if (jerr == io.EOF) != (berr == io.EOF) {
					t.Fatalf("event %d: termination mismatch: jsonl=%v batch=%v", i, jerr, berr)
				}
				return
			}
			je.Line, be.Line = 0, 0
			if je != be {
				t.Fatalf("event %d:\njsonl %+v\nbatch %+v", i, je, be)
			}
		}
	})
}

// eventsFromProgram decodes fuzz bytes into an event sequence over a small
// vocabulary; roughly half the derived sequences violate thread discipline
// somewhere, so validated-path agreement covers rejection too.
func eventsFromProgram(program []byte) []TraceEvent {
	ops := []string{"Enqueue(1)", "Enqueue(2)", "TryDequeue()", ""}
	ress := []string{"ok", "1", "Fail", ""}
	parts := []string{"", "q0", "q1"}
	if len(program) > 64 {
		program = program[:64]
	}
	var evs []TraceEvent
	for i, b := range program {
		ev := TraceEvent{T: int(b>>5) % 5}
		switch b & 3 {
		case 0, 1:
			ev.K, ev.Op, ev.P = "call", ops[b>>2&3], parts[int(b>>4)%3]
		case 2:
			ev.K, ev.Res = "ret", ress[b>>2&3]
		default:
			if b&4 != 0 && i == len(program)-1 {
				ev.K = "stuck"
			} else {
				ev.K, ev.Op, ev.Res = "ret", ops[b>>3&3], ress[b>>2&3]
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// encodeRawSeed gives the mutating arm of FuzzBatchFrame a valid stream to
// start from.
func encodeRawSeed() []byte {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	_ = fw.WriteBatch([]TraceEvent{
		{T: 0, K: "call", Op: "Enqueue(1)", P: "q"},
		{T: 0, K: "ret", Res: "ok"},
	})
	_ = fw.Close()
	return buf.Bytes()
}
