package obsfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"lineup/internal/history"
)

// TraceEvent is one line of a JSONL history trace: a concurrent history
// recorded outside the scheduler (e.g. by instrumented production code), one
// event per line. "call" opens an operation on a thread, "ret" closes the
// thread's open operation with its result, and a final "stuck" line marks
// the history stuck (the '#' of Section 2.3). Lines that are blank or start
// with '#' are comments.
//
//	{"t":0,"k":"call","op":"Enqueue(10)"}
//	{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
//	{"t":1,"k":"call","op":"TryDequeue()"}
//	{"t":1,"k":"ret","op":"TryDequeue()","res":"Fail"}
type TraceEvent struct {
	T   int    `json:"t"`             // thread index
	K   string `json:"k"`             // "call", "ret", or "stuck"
	Op  string `json:"op,omitempty"`  // operation display name, e.g. "Enqueue(10)"
	Res string `json:"res,omitempty"` // result string; "ret" events only
}

// ReadTrace parses a JSONL history trace into a well-formed history. It
// validates the thread discipline line by line: a thread may not call while
// it has an open operation, may not return without one, a "ret" line naming
// an operation must name the thread's open operation, and a "stuck" marker
// must be the last event of the trace.
func ReadTrace(r io.Reader) (*history.History, error) {
	h := &history.History{}
	open := make(map[int]int)    // thread -> op index of its open call
	name := make(map[int]string) // op index -> display name
	next := 0
	line := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if h.Stuck {
			return nil, fmt.Errorf("obsfile: trace line %d: events after the stuck marker", line)
		}
		var ev TraceEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("obsfile: trace line %d: %w", line, err)
		}
		if ev.T < 0 {
			return nil, fmt.Errorf("obsfile: trace line %d: negative thread index %d", line, ev.T)
		}
		switch ev.K {
		case "call":
			if ev.Op == "" {
				return nil, fmt.Errorf("obsfile: trace line %d: call without an op name", line)
			}
			if _, busy := open[ev.T]; busy {
				return nil, fmt.Errorf("obsfile: trace line %d: thread %d calls %s while %s is still open",
					line, ev.T, ev.Op, name[open[ev.T]])
			}
			open[ev.T] = next
			name[next] = ev.Op
			h.Events = append(h.Events, history.Event{Thread: ev.T, Kind: history.Call, Op: ev.Op, Index: next})
			next++
		case "ret":
			idx, busy := open[ev.T]
			if !busy {
				return nil, fmt.Errorf("obsfile: trace line %d: thread %d returns without an open call", line, ev.T)
			}
			if ev.Op != "" && ev.Op != name[idx] {
				return nil, fmt.Errorf("obsfile: trace line %d: thread %d returns from %s but %s is open",
					line, ev.T, ev.Op, name[idx])
			}
			delete(open, ev.T)
			h.Events = append(h.Events, history.Event{
				Thread: ev.T, Kind: history.Return, Op: name[idx], Result: ev.Res, Index: idx,
			})
		case "stuck":
			h.Stuck = true
		default:
			return nil, fmt.Errorf("obsfile: trace line %d: unknown event kind %q", line, ev.K)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsfile: reading trace: %w", err)
	}
	return h, nil
}

// WriteTrace renders a history in the JSONL trace format read by ReadTrace.
func WriteTrace(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range h.Events {
		ev := TraceEvent{T: e.Thread, Op: e.Op}
		if e.Kind == history.Call {
			ev.K = "call"
		} else {
			ev.K = "ret"
			ev.Res = e.Result
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if h.Stuck {
		if err := enc.Encode(TraceEvent{K: "stuck"}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
