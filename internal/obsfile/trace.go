package obsfile

import (
	"bufio"
	"encoding/json"
	"io"

	"lineup/internal/history"
)

// TraceEvent is one line of a JSONL history trace: a concurrent history
// recorded outside the scheduler (e.g. by instrumented production code), one
// event per line. "call" opens an operation on a thread, "ret" closes the
// thread's open operation with its result, and a final "stuck" line marks
// the history stuck (the '#' of Section 2.3). Lines that are blank or start
// with '#' are comments.
//
//	{"t":0,"k":"call","op":"Enqueue(10)"}
//	{"t":0,"k":"ret","op":"Enqueue(10)","res":"ok"}
//	{"t":1,"k":"call","op":"TryDequeue()"}
//	{"t":1,"k":"ret","op":"TryDequeue()","res":"Fail"}
//
// A call may carry an optional partition key "p" naming the independent
// sub-object it touches (P-compositionality); the streaming monitor routes
// events by it. Returns inherit the key of their call. The batch reader
// accepts and ignores it.
type TraceEvent struct {
	T   int    `json:"t"`             // thread index
	K   string `json:"k"`             // "call", "ret", or "stuck"
	Op  string `json:"op,omitempty"`  // operation display name, e.g. "Enqueue(10)"
	Res string `json:"res,omitempty"` // result string; "ret" events only
	P   string `json:"p,omitempty"`   // partition key; "call" events only
}

// ReadTrace parses a JSONL history trace into a well-formed history. It
// validates the thread discipline line by line: a thread may not call while
// it has an open operation, may not return without one, a "ret" line naming
// an operation must name the thread's open operation, and a "stuck" marker
// must be the last event of the trace. It is the batch face of the
// StreamReader: the events are validated by the same incremental machinery
// the streaming monitor uses, merely accumulated into one History.
func ReadTrace(r io.Reader) (*history.History, error) {
	h := &history.History{}
	sr := NewStreamReader(r)
	for {
		ev, err := sr.Next()
		if err == io.EOF {
			return h, nil
		}
		if err != nil {
			return nil, err
		}
		if ev.Stuck {
			h.Stuck = true
			continue
		}
		h.Events = append(h.Events, ev.HistoryEvent())
	}
}

// WriteTrace renders a history in the JSONL trace format read by ReadTrace.
func WriteTrace(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range h.Events {
		ev := TraceEvent{T: e.Thread, Op: e.Op}
		if e.Kind == history.Call {
			ev.K = "call"
		} else {
			ev.K = "ret"
			ev.Res = e.Result
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if h.Stuck {
		if err := enc.Encode(TraceEvent{K: "stuck"}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
