package obsfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"lineup/internal/history"
)

// AtomicWriteFile writes a file by streaming through write into a temporary
// file in the destination directory, syncing it, renaming it over path, and
// syncing the parent directory. A reader never observes a partially written
// file: it sees either the old contents or the complete new contents, even if
// the writing process is killed mid-write. The file sync before the rename
// and the directory sync after it make the sequence crash-durable, not just
// kill-atomic: after a power loss or kernel crash the rename either never
// happened or points at fully persisted contents, so checkpoints and trace
// files cannot come back empty or torn. On any error the temporary file is
// removed and the destination is left untouched.
func AtomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("obsfile: creating temp file in %s: %w", dir, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("obsfile: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("obsfile: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obsfile: renaming into place: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir persists a directory entry update (the rename) to stable storage.
// Some platforms and filesystems refuse fsync on directories; that leaves
// durability no worse than before and is not an error.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("obsfile: opening directory %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EBADF) {
		return fmt.Errorf("obsfile: syncing directory %s: %w", dir, err)
	}
	return nil
}

// WriteFileAtomic writes an observation file atomically (see
// AtomicWriteFile).
func WriteFileAtomic(path string, spec *history.Spec) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return Write(w, spec) })
}

// WriteTraceFile writes a JSONL history trace atomically (see
// AtomicWriteFile).
func WriteTraceFile(path string, h *history.History) error {
	return AtomicWriteFile(path, func(w io.Writer) error { return WriteTrace(w, h) })
}
