package obsfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed binary batch frames: the compact wire format of a trace
// stream. A JSONL event costs ~60 bytes and one json.Unmarshal; a framed
// event costs a handful of bytes and a varint walk, so a producer that
// batches events into frames amortizes nearly all of the parse cost out of
// the serve ingest path. The stream is
//
//	magic "LUB1" · frame*
//	frame = uvarint payloadLen · payload
//	payload = uvarint count · event{count}
//	event = kind byte ('c'/'r'/'s') · varint t · str op · str res · str p
//	str = uvarint len · bytes
//
// Every TraceEvent field is encoded for every kind, so a frame stream
// round-trips the exact event sequence of the equivalent JSONL stream —
// FuzzBatchFrame holds the two paths to event-for-event agreement. A partial
// frame at end of input is a *TruncatedFrameError carrying the byte offset
// where the frame began, never a silent clean EOF.

// BatchContentType is the Content-Type negotiating batch frames on POST
// /ingest; any other value means JSONL.
const BatchContentType = "application/x-lineup-batch"

// frameMagic opens a batch stream; it shares no prefix with JSONL ('{' or
// '#') so a format mix-up fails immediately with a clear diagnostic.
var frameMagic = [4]byte{'L', 'U', 'B', '1'}

// maxFramePayload caps one frame's payload so a corrupt or hostile length
// prefix cannot demand an arbitrary allocation.
const maxFramePayload = 8 << 20

// frameKind maps TraceEvent.K to its wire byte and back.
func frameKind(k string) (byte, bool) {
	switch k {
	case "call":
		return 'c', true
	case "ret":
		return 'r', true
	case "stuck":
		return 's', true
	}
	return 0, false
}

func unframeKind(b byte) (string, bool) {
	switch b {
	case 'c':
		return "call", true
	case 'r':
		return "ret", true
	case 's':
		return "stuck", true
	}
	return "", false
}

// TruncatedFrameError reports a batch stream cut mid-frame: the underlying
// input ended before the frame that starts at Offset was complete. It is the
// structured form the sticky StreamReader error chain carries, so a consumer
// can resume or diagnose from the exact byte position.
type TruncatedFrameError struct {
	Offset int64  // byte offset of the first byte of the truncated frame
	Reason string // what was being read when the input ended
}

func (e *TruncatedFrameError) Error() string {
	return fmt.Sprintf("obsfile: truncated batch frame starting at byte %d: %s", e.Offset, e.Reason)
}

// FrameWriter encodes TraceEvents into batch frames. Events accumulate in an
// in-memory frame until Flush (or the BatchSize threshold of WriteEvent)
// emits it; Close flushes the final partial frame.
type FrameWriter struct {
	w          *bufio.Writer
	buf        []byte // current frame payload (events only; count prefixed at emit)
	count      int    // events in the current frame
	wroteMagic bool
	err        error

	// BatchSize is the automatic frame boundary for WriteEvent: a frame is
	// emitted once it holds this many events (default 512). WriteBatch always
	// emits exactly one frame per call regardless.
	BatchSize int
}

// NewFrameWriter returns a frame encoder over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w), BatchSize: 512}
}

func (fw *FrameWriter) magic() error {
	if fw.wroteMagic {
		return nil
	}
	fw.wroteMagic = true
	_, err := fw.w.Write(frameMagic[:])
	return err
}

func (fw *FrameWriter) appendEvent(ev TraceEvent) error {
	k, ok := frameKind(ev.K)
	if !ok {
		return fmt.Errorf("obsfile: frame encoder: unknown event kind %q", ev.K)
	}
	fw.buf = append(fw.buf, k)
	fw.buf = binary.AppendVarint(fw.buf, int64(ev.T))
	for _, s := range []string{ev.Op, ev.Res, ev.P} {
		fw.buf = binary.AppendUvarint(fw.buf, uint64(len(s)))
		fw.buf = append(fw.buf, s...)
	}
	fw.count++
	return nil
}

// WriteEvent appends one event, emitting a frame at each BatchSize boundary.
func (fw *FrameWriter) WriteEvent(ev TraceEvent) error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.appendEvent(ev); err != nil {
		fw.err = err
		return err
	}
	bs := fw.BatchSize
	if bs <= 0 {
		bs = 512
	}
	if fw.count >= bs {
		return fw.Flush()
	}
	return nil
}

// WriteBatch appends the events and emits them (plus anything buffered) as
// one frame.
func (fw *FrameWriter) WriteBatch(evs []TraceEvent) error {
	if fw.err != nil {
		return fw.err
	}
	for _, ev := range evs {
		if err := fw.appendEvent(ev); err != nil {
			fw.err = err
			return err
		}
	}
	return fw.Flush()
}

// Flush emits the buffered events as one frame and flushes the underlying
// writer. An empty buffer emits nothing.
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.magic(); err != nil {
		fw.err = err
		return err
	}
	if fw.count > 0 {
		// Emit: uvarint(payloadLen) · uvarint(count) · events.
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], uint64(fw.count))
		payload := n + len(fw.buf)
		var lenbuf [binary.MaxVarintLen64]byte
		ln := binary.PutUvarint(lenbuf[:], uint64(payload))
		if _, err := fw.w.Write(lenbuf[:ln]); err != nil {
			fw.err = err
			return err
		}
		if _, err := fw.w.Write(hdr[:n]); err != nil {
			fw.err = err
			return err
		}
		if _, err := fw.w.Write(fw.buf); err != nil {
			fw.err = err
			return err
		}
		fw.buf = fw.buf[:0]
		fw.count = 0
	}
	if err := fw.w.Flush(); err != nil {
		fw.err = err
		return err
	}
	return nil
}

// Close flushes the final partial frame. The underlying writer is not closed.
func (fw *FrameWriter) Close() error { return fw.Flush() }

// FrameReader decodes a batch frame stream into TraceEvents. Errors are
// sticky. Decoded strings are interned (the op/result/key vocabulary of a
// trace is tiny), so long streams decode nearly allocation-free.
type FrameReader struct {
	r        *bufio.Reader
	off      int64 // bytes consumed from r
	frameOff int64 // offset of the frame currently being decoded
	payload  []byte
	pos      int // decode position in payload
	remain   int // events remaining in the current frame
	line     int // 1-based ordinal of the last event returned
	started  bool
	err      error
	intern   map[string]string
	batch    []TraceEvent // scratch for NextBatch
}

// NewFrameReader returns a decoder over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64*1024), intern: make(map[string]string)}
}

// Line returns the 1-based ordinal of the last event returned — the frame
// stream's equivalent of a JSONL line number.
func (fr *FrameReader) Line() int { return fr.line }

// Offset returns the count of bytes consumed so far.
func (fr *FrameReader) Offset() int64 { return fr.off }

func (fr *FrameReader) fail(err error) error {
	fr.err = err
	return err
}

func (fr *FrameReader) truncated(reason string) error {
	return fr.fail(&TruncatedFrameError{Offset: fr.frameOff, Reason: reason})
}

// readMagic consumes and checks the stream magic. A completely empty stream
// is a clean EOF (zero events); a partial or wrong magic is an error.
func (fr *FrameReader) readMagic() error {
	fr.started = true
	fr.frameOff = fr.off
	var m [4]byte
	n, err := io.ReadFull(fr.r, m[:])
	fr.off += int64(n)
	if err == io.EOF {
		return fr.fail(io.EOF)
	}
	if err != nil {
		return fr.truncated("stream magic")
	}
	if m != frameMagic {
		return fr.fail(fmt.Errorf("obsfile: not a batch frame stream (magic %q, want %q)", m[:], frameMagic[:]))
	}
	return nil
}

// readUvarint reads a uvarint, charging consumed bytes to the offset.
func (fr *FrameReader) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(fr.r)
	// ReadUvarint gives no byte count; recompute from the value. Varints are
	// canonical from our encoder; for foreign input the count is only used in
	// diagnostics, so a slight drift on non-canonical input is harmless.
	if err == nil {
		n := int64(1)
		for x := v; x >= 0x80; x >>= 7 {
			n++
		}
		fr.off += n
	}
	return v, err
}

// nextFrame loads the next frame's payload. io.EOF only at a frame boundary.
func (fr *FrameReader) nextFrame() error {
	if !fr.started {
		if err := fr.readMagic(); err != nil {
			return err
		}
	}
	for {
		fr.frameOff = fr.off
		// Peek distinguishes a clean boundary EOF from a cut inside the
		// length prefix.
		if _, err := fr.r.Peek(1); err == io.EOF {
			return fr.fail(io.EOF)
		}
		size, err := fr.readUvarint()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fr.truncated("frame length prefix")
		}
		if err != nil {
			return fr.fail(fmt.Errorf("obsfile: batch frame at byte %d: %w", fr.frameOff, err))
		}
		if size > maxFramePayload {
			return fr.fail(fmt.Errorf("obsfile: batch frame at byte %d: payload of %d bytes exceeds the %d-byte cap", fr.frameOff, size, maxFramePayload))
		}
		if size == 0 {
			continue // empty frame: tolerated, skipped
		}
		if cap(fr.payload) < int(size) {
			fr.payload = make([]byte, size)
		}
		fr.payload = fr.payload[:size]
		n, err := io.ReadFull(fr.r, fr.payload)
		fr.off += int64(n)
		if err != nil {
			return fr.truncated(fmt.Sprintf("frame payload: %d of %d bytes", n, size))
		}
		count, n2 := binary.Uvarint(fr.payload)
		if n2 <= 0 || count == 0 || count > size {
			return fr.corrupt("event count")
		}
		fr.pos = n2
		fr.remain = int(count)
		return nil
	}
}

func (fr *FrameReader) corrupt(what string) error {
	return fr.fail(fmt.Errorf("obsfile: corrupt batch frame at byte %d: bad %s", fr.frameOff, what))
}

// decodeString decodes one length-prefixed string from the payload.
func (fr *FrameReader) decodeString() (string, bool) {
	n, w := binary.Uvarint(fr.payload[fr.pos:])
	if w <= 0 {
		return "", false
	}
	fr.pos += w
	if n > uint64(len(fr.payload)-fr.pos) {
		return "", false
	}
	b := fr.payload[fr.pos : fr.pos+int(n)]
	fr.pos += int(n)
	if len(b) == 0 {
		return "", true
	}
	if s, ok := fr.intern[string(b)]; ok {
		return s, true
	}
	s := string(b)
	if len(fr.intern) < 4096 && len(s) <= 256 {
		fr.intern[s] = s
	}
	return s, true
}

// decodeEvent decodes one event from the current frame payload.
func (fr *FrameReader) decodeEvent() (TraceEvent, error) {
	if fr.pos >= len(fr.payload) {
		return TraceEvent{}, fr.corrupt("event count (payload exhausted early)")
	}
	kind, ok := unframeKind(fr.payload[fr.pos])
	if !ok {
		return TraceEvent{}, fr.corrupt("event kind byte")
	}
	fr.pos++
	t, w := binary.Varint(fr.payload[fr.pos:])
	if w <= 0 {
		return TraceEvent{}, fr.corrupt("thread varint")
	}
	fr.pos += w
	ev := TraceEvent{T: int(t), K: kind}
	if ev.Op, ok = fr.decodeString(); !ok {
		return TraceEvent{}, fr.corrupt("op string")
	}
	if ev.Res, ok = fr.decodeString(); !ok {
		return TraceEvent{}, fr.corrupt("result string")
	}
	if ev.P, ok = fr.decodeString(); !ok {
		return TraceEvent{}, fr.corrupt("partition string")
	}
	fr.remain--
	if fr.remain == 0 && fr.pos != len(fr.payload) {
		return TraceEvent{}, fr.corrupt("frame length (trailing bytes after the last event)")
	}
	fr.line++
	return ev, nil
}

// Next returns the next decoded event, or io.EOF at a clean frame boundary.
// Any other error (including a truncated final frame) is sticky.
func (fr *FrameReader) Next() (TraceEvent, error) {
	if fr.err != nil {
		return TraceEvent{}, fr.err
	}
	if fr.remain == 0 {
		if err := fr.nextFrame(); err != nil {
			return TraceEvent{}, err
		}
	}
	return fr.decodeEvent()
}

// NextBatch returns the rest of the current frame (or the whole next frame)
// as one slice, reusing an internal scratch buffer that is only valid until
// the following NextBatch call. io.EOF at a clean boundary; other errors
// sticky.
func (fr *FrameReader) NextBatch() ([]TraceEvent, error) {
	if fr.err != nil {
		return nil, fr.err
	}
	if fr.remain == 0 {
		if err := fr.nextFrame(); err != nil {
			return nil, err
		}
	}
	fr.batch = fr.batch[:0]
	for fr.remain > 0 {
		ev, err := fr.decodeEvent()
		if err != nil {
			return nil, err
		}
		fr.batch = append(fr.batch, ev)
	}
	return fr.batch, nil
}
