package core

import (
	"bytes"
	"fmt"

	"lineup/internal/sched"
)

// histCache canonicalizes execution outcomes into a compact interned history
// encoding and memoizes per-history state. Phase 2 explores thousands of
// schedules that collapse to the same call/return interleaving; the cache
// decides each distinct history once and answers every further occurrence
// from the encoded key alone — without materializing a history.History, whose
// construction (event slice, op/result strings) dominated the dedup hot path.
//
// The encoding is built directly from the outcome's event stream: operation
// and result strings are interned to dense symbols, each event contributes
// its thread, kind, and symbols, and a stuck marker terminates the key.
// Results of relaxed operations are wildcarded during encoding, mirroring
// normalizeRelaxed, so spec and history keys agree. Keys are bucketed by a
// 64-bit FNV-1a hash and always compared byte-exact — a hash collision can
// never merge two distinct histories.
//
// histCache is not safe for concurrent use; the parallel phase-2 driver
// serializes lookups under its own lock and runs witness decisions outside
// it (see phase2Par).
type histCache struct {
	syms    map[string]uint32
	buckets map[uint64][]*histEntry
	buf     []byte // reusable encode buffer
	hits    int    // lookups answered by an existing entry
	entries int    // distinct histories interned
}

// histEntry is the memoized state of one distinct history.
type histEntry struct {
	key   []byte
	stuck bool
	// Witness memoization: v and err are the decision for this history. The
	// sequential driver writes them inline; the parallel driver closes done
	// once they are final so concurrent visitors of the same key can wait.
	v    *Violation
	err  error
	done chan struct{}
}

func newHistCache() *histCache {
	return &histCache{
		syms:    make(map[string]uint32),
		buckets: make(map[uint64][]*histEntry),
	}
}

func (hc *histCache) sym(s string) uint32 {
	if id, ok := hc.syms[s]; ok {
		return id
	}
	id := uint32(len(hc.syms))
	hc.syms[s] = id
	return id
}

func (hc *histCache) appendVarint(v uint32) {
	for v >= 0x80 {
		hc.buf = append(hc.buf, byte(v)|0x80)
		v >>= 7
	}
	hc.buf = append(hc.buf, byte(v))
}

// lookup canonicalizes out and returns its cache entry, reporting whether the
// history is new. It validates the outcome exactly like toHistory: events
// from the setup pseudo-thread and stuck executions without pending
// operations are errors.
func (hc *histCache) lookup(out *sched.Outcome, relaxed map[string]bool) (*histEntry, bool, error) {
	hc.buf = hc.buf[:0]
	pending := 0
	for i := range out.Events {
		e := &out.Events[i]
		if e.Thread == 0 {
			return nil, false, fmt.Errorf("core: unexpected history event from setup thread")
		}
		if e.Kind == sched.EvCall {
			pending++
			hc.appendVarint(uint32(e.Thread) << 1)
			hc.appendVarint(hc.sym(e.Op))
		} else {
			pending--
			hc.appendVarint(uint32(e.Thread)<<1 | 1)
			hc.appendVarint(hc.sym(e.Op))
			res := e.Result
			if relaxed[e.Op] {
				res = RelaxedResult
			}
			hc.appendVarint(hc.sym(res))
		}
	}
	if out.Stuck {
		if pending == 0 {
			return nil, false, fmt.Errorf("core: execution stuck outside any operation (constructor or init sequence blocked)")
		}
		hc.buf = append(hc.buf, 0xFF)
	}
	h := fnv1a64(hc.buf)
	for _, en := range hc.buckets[h] {
		if bytes.Equal(en.key, hc.buf) {
			hc.hits++
			return en, false, nil
		}
	}
	en := &histEntry{key: append([]byte(nil), hc.buf...), stuck: out.Stuck}
	hc.buckets[h] = append(hc.buckets[h], en)
	hc.entries++
	return en, true, nil
}

func fnv1a64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
