package core_test

import (
	"strings"
	"testing"

	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/sched"
)

// --- counter subjects (Section 2.2 of the paper) ---

func counterOps() (inc, get, dec core.Op) {
	inc = core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Inc(t)
		return collections.OK
	}}
	get = core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter).Get(t))
	}}
	dec = core.Op{Method: "Dec", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter).Dec(t)
		return collections.OK
	}}
	return
}

func counterSubject() *core.Subject {
	inc, get, dec := counterOps()
	return &core.Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{inc, get, dec},
	}
}

func counter1Subject() *core.Subject {
	inc := core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter1).Inc(t)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter1).Get(t))
	}}
	return &core.Subject{
		Name: "Counter1",
		New:  func(t *sched.Thread) any { return collections.NewCounter1(t) },
		Ops:  []core.Op{inc, get},
	}
}

func counter2Subject() *core.Subject {
	inc := core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(*collections.Counter2).Inc(t)
		return collections.OK
	}}
	get := core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(*collections.Counter2).Get(t))
	}}
	return &core.Subject{
		Name: "Counter2",
		New:  func(t *sched.Thread) any { return collections.NewCounter2(t) },
		Ops:  []core.Op{inc, get},
	}
}

func mustCheck(t *testing.T, sub *core.Subject, m *core.Test, opts core.Options) *core.Result {
	t.Helper()
	res, err := core.Check(sub, m, opts)
	if err != nil {
		t.Fatalf("Check(%s): %v", sub.Name, err)
	}
	return res
}

func TestCorrectCounterPasses(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	inc, get, _ := counterOps()
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc, get}}}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Pass {
		t.Fatalf("correct counter failed: %v", res.Violation)
	}
	if res.Phase1.Histories == 0 {
		t.Fatalf("phase 1 recorded no serial histories")
	}
	if res.Phase2.Histories == 0 {
		t.Fatalf("phase 2 observed no histories")
	}
}

func TestCorrectCounterWithBlockingDecPasses(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Dec blocks while the count is zero; serial executions can get stuck,
	// and the stuck concurrent histories must find their stuck serial
	// witnesses (generalized linearizability, Definitions 2 and 3).
	sub := counterSubject()
	inc, _, dec := counterOps()
	m := &core.Test{Rows: [][]core.Op{{dec}, {inc, dec}}}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Pass {
		t.Fatalf("blocking counter failed: %v", res.Violation)
	}
	if res.Phase1.Stuck == 0 {
		t.Fatalf("expected stuck serial histories (dec before inc blocks)")
	}
	if res.Phase2.Stuck == 0 {
		t.Fatalf("expected stuck concurrent histories")
	}
}

func TestCounter1FailsLostUpdate(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Section 2.2.1: two unprotected increments can be lost; a subsequent
	// get observes 1, which no serial witness allows.
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Fail {
		t.Fatalf("Counter1 unexpectedly passed")
	}
	if res.Violation.Kind != core.NoWitness {
		t.Fatalf("expected NoWitness violation, got %v", res.Violation.Kind)
	}
	if !strings.Contains(res.Violation.String(), "no serial witness") {
		t.Fatalf("violation report missing kind: %s", res.Violation)
	}
}

func TestCounter1PassesAtSyncGranularity(t *testing.T) {
	sched.RequireNoLeaks(t)
	// At CHESS-like sync-only granularity the unsynchronized read and write
	// of Inc execute atomically, so the lost update is invisible; this
	// documents why the default granularity interleaves plain accesses.
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	res := mustCheck(t, sub, m, core.Options{Granularity: sched.GranSync})
	if res.Verdict != core.Pass {
		t.Fatalf("expected pass at sync granularity, got %v", res.Violation)
	}
}

func TestCounter2SynthesizedSpecPasses(t *testing.T) {
	sched.RequireNoLeaks(t)
	// Section 2.2.2 nuance: Counter2's leaked lock makes later operations
	// block *deterministically* as a function of the serial history, so the
	// specification synthesized in phase 1 itself models the wedged object
	// and Check passes. The bug is caught by checking against a reference
	// model instead (TestCounter2FailsAgainstModel); the paper uses
	// Counter2 to motivate the generalized definition with respect to a
	// given specification (Fig. 3), not specification synthesis.
	sub := counter2Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get}, {inc}}}
	res := mustCheck(t, sub, m, core.Options{})
	if res.Verdict != core.Pass {
		t.Fatalf("expected synthesized-spec pass for Counter2, got %v", res.Violation)
	}
	if res.Phase1.Stuck == 0 {
		t.Fatalf("expected stuck serial histories from the leaked lock")
	}
}

func TestShrinkMinimizesCounter1(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	inc := sub.Ops[0]
	get := sub.Ops[1]
	m := &core.Test{Rows: [][]core.Op{{inc, get, inc}, {get, inc, get}, {inc, inc, get}}}
	min, res, err := core.Shrink(sub, m, core.Options{})
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatalf("shrunk test passes")
	}
	threads, ops := min.Dim()
	if threads > 2 || ops > 2 {
		t.Fatalf("expected shrink to at most 2x2, got %dx%d:\n%s", threads, ops, min)
	}
	if min.NumOps() > 3 {
		t.Fatalf("expected at most 3 ops after shrinking, got %d", min.NumOps())
	}
}

func TestAutoCheckFindsCounter1(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	res, err := core.AutoCheck(sub, core.AutoOptions{MaxN: 2, MaxTests: 100})
	if err != nil {
		t.Fatalf("autocheck: %v", err)
	}
	if res.Failed == nil {
		t.Fatalf("AutoCheck did not find the Counter1 bug in %d tests", res.Tests)
	}
}

func TestAutoCheckPassesCorrectCounterWithinBudget(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counterSubject()
	sub.Ops = sub.Ops[:2] // inc, get only: keep the budget small
	res, err := core.AutoCheck(sub, core.AutoOptions{MaxN: 2, MaxTests: 20})
	if err != nil {
		t.Fatalf("autocheck: %v", err)
	}
	if res.Failed != nil {
		t.Fatalf("AutoCheck flagged the correct counter: %v", res.Failed.Violation)
	}
	if !res.Exhausted && res.Tests < 17 {
		t.Fatalf("expected to exhaust n=1 and n=2 tests, ran %d", res.Tests)
	}
}

func TestRandomCheckFindsCounter1(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	sum, err := core.RandomCheck(sub, nil, core.RandomOptions{
		Rows: 2, Cols: 2, Samples: 30, Seed: 1, StopAtFirstFailure: true,
	})
	if err != nil {
		t.Fatalf("randomcheck: %v", err)
	}
	if sum.FirstFailure == nil {
		t.Fatalf("RandomCheck found no violation in 30 samples")
	}
}

func TestRandomCheckParallelMatchesSequentialVerdicts(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := counter1Subject()
	seq, err := core.RandomCheck(sub, nil, core.RandomOptions{Rows: 2, Cols: 2, Samples: 10, Seed: 7})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := core.RandomCheck(sub, nil, core.RandomOptions{Rows: 2, Cols: 2, Samples: 10, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if seq.Passed != par.Passed || seq.Failed != par.Failed {
		t.Fatalf("parallel run disagrees: seq %d/%d par %d/%d", seq.Passed, seq.Failed, par.Passed, par.Failed)
	}
	for i := range seq.Results {
		if (seq.Results[i] == nil) != (par.Results[i] == nil) {
			continue
		}
		if seq.Results[i] != nil && seq.Results[i].Verdict != par.Results[i].Verdict {
			t.Fatalf("test %d verdict differs between sequential and parallel runs", i)
		}
	}
}
