package core

import (
	"sync"

	"lineup/internal/sched"
)

// ForEachExecution explores the concurrent schedules of a test and hands
// every execution outcome (with its shared-memory trace, if requested) to
// visit. It is the hook used by the race-detection and atomicity-checking
// comparisons of Section 5.6, which analyze the same executions Line-Up's
// phase 2 explores. With Options.Workers > 1 the executions are produced by
// the prefix-sharded parallel explorer — the same multiset of outcomes in a
// different order — and visit calls are serialized under an internal lock,
// so existing single-threaded visitors stay correct.
func ForEachExecution(sub *Subject, m *Test, opts Options, recordTrace bool, visit func(*sched.Outcome) bool) (sched.ExploreStats, error) {
	cfg := sched.ExploreConfig{
		Config:            opts.schedConfig(false, recordTrace),
		PreemptionBound:   opts.bound(),
		MaxExecutions:     opts.maxExecs(),
		ContinueOnFailure: opts.MaxFailures > 0,
		Reduction:         opts.Reduction,
	}
	if opts.Workers > 1 {
		var mu sync.Mutex
		return sched.ExploreParallel(cfg, sched.ParallelConfig{
			Workers:  opts.Workers,
			Progress: opts.ShardProgress,
		}, func() sched.Program {
			var holder any
			return program(sub, m, &holder)
		}, func(out *sched.Outcome, _ sched.Pos) bool {
			mu.Lock()
			defer mu.Unlock()
			return visit(out)
		})
	}
	var holder any
	return sched.Explore(cfg, program(sub, m, &holder), visit)
}

// ForEachSerialExecution is the serial-mode sibling of ForEachExecution.
func ForEachSerialExecution(sub *Subject, m *Test, opts Options, recordTrace bool, visit func(*sched.Outcome) bool) (sched.ExploreStats, error) {
	var holder any
	return sched.Explore(sched.ExploreConfig{
		Config:          opts.schedConfig(true, recordTrace),
		PreemptionBound: sched.Unbounded,
		MaxExecutions:   opts.maxExecs(),
	}, program(sub, m, &holder), visit)
}
