package core

import "lineup/internal/sched"

// ForEachExecution explores the concurrent schedules of a test and hands
// every execution outcome (with its shared-memory trace, if requested) to
// visit. It is the hook used by the race-detection and atomicity-checking
// comparisons of Section 5.6, which analyze the same executions Line-Up's
// phase 2 explores.
func ForEachExecution(sub *Subject, m *Test, opts Options, recordTrace bool, visit func(*sched.Outcome) bool) (sched.ExploreStats, error) {
	var holder any
	return sched.Explore(sched.ExploreConfig{
		Config: sched.Config{
			Granularity: opts.Granularity,
			RecordTrace: recordTrace,
		},
		PreemptionBound: opts.bound(),
		MaxExecutions:   opts.maxExecs(),
	}, program(sub, m, &holder), visit)
}

// ForEachSerialExecution is the serial-mode sibling of ForEachExecution.
func ForEachSerialExecution(sub *Subject, m *Test, opts Options, recordTrace bool, visit func(*sched.Outcome) bool) (sched.ExploreStats, error) {
	var holder any
	return sched.Explore(sched.ExploreConfig{
		Config: sched.Config{
			Serial:      true,
			RecordTrace: recordTrace,
		},
		PreemptionBound: sched.Unbounded,
		MaxExecutions:   opts.maxExecs(),
	}, program(sub, m, &holder), visit)
}
