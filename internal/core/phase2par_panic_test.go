package core

import (
	"strings"
	"testing"
	"time"

	"lineup/internal/history"
	"lineup/internal/monitor"
	"lineup/internal/sched"
)

// panicBackend is a witness backend that dies on every query, modeling a
// buggy executable specification. The parallel phase-2 driver must convert
// the panic into a per-entry error and still close the entry's done channel;
// a waiter blocked on an entry whose decider died would otherwise hang its
// worker — and ExploreParallel's final join — forever.
type panicBackend struct{}

func (panicBackend) witnessFull(*history.History) (bool, error) {
	panic("witness backend exploded")
}
func (panicBackend) witnessClassic(*history.History) (bool, error) {
	panic("witness backend exploded")
}
func (panicBackend) witnessStuck(*history.History, history.Op) (bool, error) {
	panic("witness backend exploded")
}

// noopOp is an instrumented invocation with no shared state: every schedule
// of a noop test collapses to few distinct histories, so many parallel
// visitors pile onto the same cache entries — exactly the contention the
// done-channel protocol must survive.
func noopOp(name string) Op {
	return Op{Method: name, Run: func(t *sched.Thread, o any) string { return "ok" }}
}

// TestParallelWitnessPanicDoesNotHangWaiters is the regression test for the
// histEntry.done liveness bug: a deciding worker that panicked between
// creating the channel and closing it left every concurrent visitor of the
// same history key blocked forever. Run under -race, the test drives the
// parallel phase-2 driver with a panicking backend and requires a prompt,
// structured error instead of a hang.
func TestParallelWitnessPanicDoesNotHangWaiters(t *testing.T) {
	sched.RequireNoLeaks(t)
	sub := &Subject{
		Name: "noopbox",
		New:  func(t *sched.Thread) any { return struct{}{} },
	}
	m := &Test{Rows: [][]Op{
		{noopOp("A"), noopOp("B")},
		{noopOp("C"), noopOp("D")},
	}}
	d := &phase2Decider{backend: panicBackend{}, mode: modeGeneralized, m: m}
	par := &phase2Par{
		d:        d,
		failures: newFailureCollector(0),
		cache:    newHistCache(),
		firstPos: make(map[*histEntry]sched.Pos),
	}
	errCh := make(chan error, 1)
	go func() {
		_, exploreErr := sched.ExploreParallel(sched.ExploreConfig{
			PreemptionBound: 2,
			MaxExecutions:   200000,
		}, sched.ParallelConfig{Workers: 4}, func() sched.Program {
			var holder any
			return program(sub, m, &holder)
		}, par.visit)
		if exploreErr != nil && exploreErr != sched.ErrBudget {
			errCh <- exploreErr
			return
		}
		_, _, verr := par.resolve()
		errCh <- verr
	}()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "witness decision panicked") {
			t.Fatalf("want a witness-panic error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel phase 2 hung after a panicking witness decision")
	}
}

// TestCheckWithPanickingMonitorModelReturnsError covers the same liveness
// property end to end: a monitor model that panics during replay must surface
// as a check error on every worker count, never as a hang or a process crash
// (the monitor runs multi-part searches on raw goroutines, where an
// unrecovered panic would kill the process before any result is delivered).
func TestCheckWithPanickingMonitorModelReturnsError(t *testing.T) {
	model := &monitor.Model{
		Name: "explosive",
		Init: func() any { return 0 },
		Step: func(state any, op string) (string, any, error) {
			panic("model exploded")
		},
		Fingerprint: func(state any) string { return "s" },
	}
	sub := &Subject{
		Name: "noopbox",
		New:  func(t *sched.Thread) any { return struct{}{} },
	}
	m := &Test{Rows: [][]Op{
		{noopOp("A")},
		{noopOp("B")},
	}}
	for _, workers := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			_, err := CheckWithMonitor(sub, model, m, RefOptions{Options: Options{
				PreemptionBound: 2,
				Workers:         workers,
			}})
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("workers=%d: want a model-panic error, got %v", workers, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: check hung on a panicking model", workers)
		}
	}
}
