package core

import (
	"errors"
	"fmt"
	"sort"

	"lineup/internal/history"
	"lineup/internal/sched"
)

// Distributed checking support: PlanUnits splits a check's phase-2 schedule
// tree into sched.WorkUnits, CheckUnit runs phase 2 over exactly one unit in
// any process (re-synthesizing the deterministic phase-1 spec locally, so a
// worker needs nothing but the subject, the test, the options, and the
// unit), and MergeUnitReports folds the per-unit reports back into a Result.
// The merge applies the same min-position precedence the in-process parallel
// explorer uses — every history key and failure carries its position in the
// sequential visit order as (unit seq, visit index) — so the merged verdict,
// phase statistics, first violation, and failure handling are bit-identical
// to the sequential explorer with Options.ExhaustPhase2, no matter how units
// were assigned, reassigned, or replayed. internal/dist builds the
// fault-tolerant coordinator/worker machinery on top of these three calls.

// ErrUnitAborted is returned by CheckUnit when the tick callback asked the
// unit to stop (a worker whose lease was revoked, or whose coordinator went
// away).
var ErrUnitAborted = errors.New("core: work unit aborted by tick callback")

// UnitKey is one distinct history observed inside a work unit: the canonical
// history-cache key plus the per-unit occurrence accounting the merge needs.
type UnitKey struct {
	// Key is the canonical encoded history (canonicalHistKey): a pure
	// function of the history itself, byte-exact across processes, which is
	// what lets the merge deduplicate histories discovered by different
	// workers. (Shared histCache keys are NOT canonical: their interning
	// order depends on every history the cache saw before.)
	Key []byte `json:"key"`
	// Stuck marks a stuck (vs complete) history.
	Stuck bool `json:"stuck,omitempty"`
	// Count is the number of executions of this unit that collapsed to this
	// history.
	Count int `json:"count"`
	// First is the visit index (within the unit, counting every execution
	// including failed ones) of the history's first occurrence; (unit seq,
	// First) is its position in the sequential visit order.
	First int `json:"first"`
	// Violating marks a history the witness decision rejected.
	Violating bool `json:"violating,omitempty"`
	// Schedule is the decision schedule of the first occurrence, recorded for
	// violating keys only so the coordinator can regenerate the full
	// violation report by deterministic replay.
	Schedule []sched.ThreadID `json:"schedule,omitempty"`
}

// UnitFailure is one contained runtime failure observed inside a work unit.
type UnitFailure struct {
	// Visit is the failure's visit index within the unit.
	Visit int `json:"visit"`
	// Failure is the classified record (kind, message, replay schedule).
	Failure RuntimeFailure `json:"failure"`
}

// UnitReport is the complete, serializable outcome of CheckUnit on one work
// unit. Reports are a pure function of (subject, test, options, unit):
// replaying a unit yields a byte-identical report, so a coordinator may merge
// whichever replica of a reassigned unit finished first.
type UnitReport struct {
	Unit       int           `json:"unit"`
	Executions int           `json:"executions"`
	Decisions  int           `json:"decisions"`
	Pruned     int           `json:"pruned"`
	Truncated  bool          `json:"truncated,omitempty"`
	Keys       []UnitKey     `json:"keys"`
	Failures   []UnitFailure `json:"failures,omitempty"`
}

// UnitPlan is the coordinator-side preparation of a distributed check:
// phase 1 plus the unit split of the phase-2 tree. Plans are deterministic —
// re-planning the same (subject, test, options, depth) reproduces the same
// units — which is how a restarted coordinator revalidates a durable
// manifest.
type UnitPlan struct {
	// Spec is the phase-1 specification (needed again at merge time to
	// regenerate the reported violation).
	Spec *history.Spec
	// Phase1 is the phase-1 statistics of the plan's own synthesis run.
	Phase1 PhaseStats
	// Nondet, when non-nil, is a phase-1 nondeterminism violation: the check
	// already failed and there is nothing to distribute (Units is empty).
	Nondet *Violation
	// Units is the phase-2 work-unit split.
	Units []sched.WorkUnit
	// Split is the split accounting; Split.Pruned is the generator's share of
	// the merged Pruned total.
	Split sched.SplitStats
}

// distExploreConfig is the phase-2 exploration configuration of the
// distributed path: identical to the sequential phase 2 except that failures
// are always handed to the visit callback (they are data in a unit report;
// the failure budget is applied at merge time, where the sequential
// precedence can be reproduced) and goroutine-leak detection is forced off
// (it is process-global, and units may run concurrently in one process).
func distExploreConfig(opts Options) sched.ExploreConfig {
	cfg := sched.ExploreConfig{
		Config:            opts.schedConfig(false, false),
		PreemptionBound:   opts.bound(),
		MaxExecutions:     opts.maxExecs(),
		ContinueOnFailure: true,
		Reduction:         opts.Reduction,
		Telemetry:         opts.Telemetry,
	}
	cfg.DetectLeaks = false
	return cfg
}

// validateDistOptions rejects option combinations phase2 would reject, so
// both the coordinator (fail fast, before spawning workers) and the workers
// (defense in depth) report them identically.
func validateDistOptions(opts Options) error {
	if opts.Consistency != Linearizability && opts.WitnessSearch != WitnessSpec {
		return fmt.Errorf("core: %s consistency requires the spec-lookup witness backend", opts.Consistency)
	}
	if opts.SampleSchedules > 0 {
		return errors.New("core: schedule sampling cannot be distributed (units are DFS subtrees)")
	}
	return nil
}

// canonicalHistKey encodes out's history into bytes that are a pure function
// of the history: the symbol stream a *fresh* histCache produces for it
// (interning order then depends only on this event stream), length-prefixed
// and followed by the symbol table in intern order. The table is essential —
// without it, two distinct histories whose symbols merely occur in isomorphic
// patterns (say Get() returning "1" in one and "2" in the other) would encode
// identically.
func canonicalHistKey(out *sched.Outcome, relaxed map[string]bool) ([]byte, error) {
	hc := newHistCache()
	en, _, err := hc.lookup(out, relaxed)
	if err != nil {
		return nil, err
	}
	appendVarint := func(b []byte, v uint32) []byte {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		return append(b, byte(v))
	}
	key := appendVarint(nil, uint32(len(en.key)))
	key = append(key, en.key...)
	syms := make([]string, len(hc.syms))
	for s, id := range hc.syms {
		syms[id] = s
	}
	for _, s := range syms {
		key = appendVarint(key, uint32(len(s)))
		key = append(key, s...)
	}
	return key, nil
}

// PlanUnits runs phase 1 and splits the phase-2 schedule tree into work
// units, backtracking only within the first depth decision levels (0 selects
// sched.DefaultShardDepth). If phase 1 exposes nondeterministic serial
// behavior the plan carries the violation and no units.
func PlanUnits(sub *Subject, m *Test, opts Options, depth int) (*UnitPlan, error) {
	if err := validateDistOptions(opts); err != nil {
		return nil, err
	}
	spec, p1, err := SynthesizeSpec(sub, m, opts)
	if err != nil {
		return nil, err
	}
	plan := &UnitPlan{Spec: spec, Phase1: p1}
	if w, bad := spec.Nondeterministic(); bad {
		plan.Nondet = &Violation{Kind: Nondeterminism, Test: m, Nondet: w}
		return plan, nil
	}
	var holder any
	units, split, err := sched.SplitUnits(distExploreConfig(opts), program(sub, m, &holder), depth)
	if err != nil {
		return nil, err
	}
	plan.Units, plan.Split = units, split
	return plan, nil
}

// CheckUnit runs phase 2 over exactly one work unit and returns its report.
// The phase-1 specification is re-synthesized locally — phase 1 is serial and
// deterministic, so every worker computes the same spec — which keeps units
// self-contained enough to ship to a worker process as a small JSON file.
//
// tick, when non-nil, is called once per execution before it is processed;
// returning false aborts the unit with ErrUnitAborted. Workers use it to
// emit heartbeats and to notice a revoked lease. Failed executions (panic,
// hang) never abort the unit: they are classified and recorded in the report,
// and the merge applies Options.MaxFailures with sequential precedence.
func CheckUnit(sub *Subject, m *Test, opts Options, u sched.WorkUnit, tick func() bool) (*UnitReport, error) {
	return CheckUnitWithSpec(sub, m, opts, u, nil, tick)
}

// CheckUnitWithSpec is CheckUnit with the phase-1 specification supplied by
// the caller — typically shipped inside an exec worker's job file, so small
// units skip the per-unit re-synthesis that otherwise dominates their cost
// (see EXPERIMENTS.md). A nil spec synthesizes locally, which is what
// CheckUnit does. Phase 1 is deterministic, so a faithfully transported spec
// yields a byte-identical unit report.
func CheckUnitWithSpec(sub *Subject, m *Test, opts Options, u sched.WorkUnit, spec *history.Spec, tick func() bool) (*UnitReport, error) {
	if err := validateDistOptions(opts); err != nil {
		return nil, err
	}
	if spec == nil {
		var err error
		spec, _, err = SynthesizeSpec(sub, m, opts)
		if err != nil {
			return nil, err
		}
	}
	if _, bad := spec.Nondeterministic(); bad {
		return nil, errors.New("core: phase 1 is nondeterministic; the check fails before any unit runs")
	}
	backend, err := opts.witnessBackend(spec)
	if err != nil {
		return nil, err
	}
	if opts.Consistency != Linearizability && spec == nil {
		return nil, fmt.Errorf("core: %s consistency requires a phase-1 specification", opts.Consistency)
	}
	d := &phase2Decider{
		backend: backend, mode: modeGeneralized, m: m, relaxed: opts.relaxedSet(),
		tel: opts.Telemetry, consistency: opts.Consistency, spec: spec,
	}
	cache := newHistCache()
	defer flushCacheTelemetry(opts.Telemetry, cache)
	rep := &UnitReport{Unit: u.Seq, Keys: []UnitKey{}}
	slot := make(map[*histEntry]int) // cache entry -> index into rep.Keys
	var visitErr error
	n := 0
	var holder any
	stats, exploreErr := sched.ExploreUnit(distExploreConfig(opts), program(sub, m, &holder), u, func(out *sched.Outcome, _ sched.Pos) bool {
		idx := n
		n++
		if tick != nil && !tick() {
			visitErr = ErrUnitAborted
			return false
		}
		if out.FailureKind() != sched.FailNone {
			rep.Failures = append(rep.Failures, UnitFailure{Visit: idx, Failure: classifyFailure(out)})
			return true
		}
		en, isNew, herr := cache.lookup(out, d.relaxed)
		if herr != nil {
			visitErr = herr
			return false
		}
		if !isNew {
			rep.Keys[slot[en]].Count++
			return true
		}
		ck, cerr := canonicalHistKey(out, d.relaxed)
		if cerr != nil {
			visitErr = cerr
			return false
		}
		k := UnitKey{Key: ck, Stuck: en.stuck, Count: 1, First: idx}
		h, herr := d.materialize(out)
		if herr != nil {
			visitErr = herr
			return false
		}
		v, werr := d.witness(h)
		if werr != nil {
			visitErr = werr
			return false
		}
		if v != nil {
			k.Violating = true
			k.Schedule = append([]sched.ThreadID(nil), out.Schedule...)
		}
		slot[en] = len(rep.Keys)
		rep.Keys = append(rep.Keys, k)
		return true
	})
	if visitErr != nil {
		return nil, visitErr
	}
	if exploreErr != nil && exploreErr != sched.ErrBudget {
		return nil, exploreErr
	}
	rep.Executions, rep.Decisions, rep.Pruned = stats.Executions, stats.Decisions, stats.Pruned
	rep.Truncated = stats.Truncated
	return rep, nil
}

// unitPos orders merged events by their position in the sequential visit
// order: unit sequence number first, visit index within the unit second.
type unitPos struct{ seq, visit int }

func (p unitPos) before(q unitPos) bool {
	if p.seq != q.seq {
		return p.seq < q.seq
	}
	return p.visit < q.visit
}

// MergeUnitReports folds one report per unit of plan back into a Result,
// bit-identical to the sequential explorer with Options.ExhaustPhase2 (phase
// durations excepted: the merge does no wall-clock accounting; callers that
// want durations stamp them). Histories are deduplicated by canonical key
// across units, the reported violation is regenerated by deterministic
// replay of the minimal-position violating history, and the failure budget
// is applied with the sequential precedence: with MaxFailures == 0 the
// minimal-position failure's error aborts the merge exactly as it would have
// aborted the sequential explorer, and an over-budget failure set yields the
// same *TooManyFailuresError.
//
// Reports may arrive in any order but must cover every unit exactly once;
// duplicates of the same unit (reassigned leases) must be resolved by the
// caller — replays are byte-identical, so keeping any one replica is
// correct.
func MergeUnitReports(sub *Subject, m *Test, opts Options, plan *UnitPlan, reports []*UnitReport) (*Result, error) {
	res := &Result{Subject: sub, Test: m, Verdict: Pass, Phase1: plan.Phase1}
	if plan.Nondet != nil {
		res.Verdict = Fail
		res.Violation = plan.Nondet
		return res, nil
	}
	if len(reports) != len(plan.Units) {
		return nil, fmt.Errorf("core: merge needs %d unit reports, got %d", len(plan.Units), len(reports))
	}
	sorted := append([]*UnitReport(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Unit < sorted[j].Unit })
	for i, r := range sorted {
		if r == nil || r.Unit != i {
			return nil, fmt.Errorf("core: merge reports do not cover every unit exactly once (slot %d)", i)
		}
	}
	type mergedKey struct {
		stuck     bool
		violating bool
		count     int
		pos       unitPos
		schedule  []sched.ThreadID
	}
	byKey := make(map[string]*mergedKey)
	type posFailure struct {
		pos unitPos
		f   RuntimeFailure
	}
	var fails []posFailure
	var stats PhaseStats
	truncated := false
	for _, r := range sorted {
		stats.Executions += r.Executions
		stats.Decisions += r.Decisions
		stats.Pruned += r.Pruned
		truncated = truncated || r.Truncated
		for _, k := range r.Keys {
			mk, ok := byKey[string(k.Key)]
			if !ok {
				// Units are visited in sequence order and keys within a unit in
				// visit order, so the first sighting is the minimal position.
				byKey[string(k.Key)] = &mergedKey{
					stuck: k.Stuck, violating: k.Violating, count: k.Count,
					pos: unitPos{r.Unit, k.First}, schedule: k.Schedule,
				}
				continue
			}
			if mk.stuck != k.Stuck || mk.violating != k.Violating {
				return nil, fmt.Errorf("core: unit %d disagrees with an earlier unit about a history key (corrupt or mismatched reports)", r.Unit)
			}
			mk.count += k.Count
		}
		for _, f := range r.Failures {
			fails = append(fails, posFailure{unitPos{r.Unit, f.Visit}, f.Failure})
		}
	}
	stats.Pruned += plan.Split.Pruned
	distinct := 0
	for _, mk := range byKey {
		distinct++
		if mk.stuck {
			stats.Stuck++
		} else {
			stats.Histories++
		}
		stats.DedupHits += mk.count
	}
	stats.DedupHits -= distinct
	res.Phase2 = stats
	sort.Slice(fails, func(i, j int) bool { return fails[i].pos.before(fails[j].pos) })
	if truncated {
		return nil, sched.ErrBudget
	}
	if len(fails) > 0 && opts.MaxFailures == 0 {
		// The sequential explorer aborts at the first failed execution with
		// its error; regenerate that exact error by replaying the failure.
		var holder any
		out, rerr := sched.ReplaySchedule(opts.schedConfig(false, false), program(sub, m, &holder), fails[0].f.Schedule)
		if rerr != nil {
			return nil, fmt.Errorf("core: replaying the first failure diverged: %w", rerr)
		}
		if err := out.FailureError(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: replaying the first failure did not fail: %s", fails[0].f)
	}
	if opts.MaxFailures > 0 && len(fails) > opts.MaxFailures {
		e := &TooManyFailuresError{Limit: opts.MaxFailures}
		for i := 0; i < opts.MaxFailures; i++ {
			e.Failures = append(e.Failures, fails[i].f)
		}
		return nil, e
	}
	for _, pf := range fails {
		res.Failures = append(res.Failures, pf.f)
	}
	var vKey *mergedKey
	for _, mk := range byKey {
		if mk.violating && (vKey == nil || mk.pos.before(vKey.pos)) {
			vKey = mk
		}
	}
	if vKey != nil {
		backend, err := opts.witnessBackend(plan.Spec)
		if err != nil {
			return nil, err
		}
		d := &phase2Decider{
			backend: backend, mode: modeGeneralized, m: m, relaxed: opts.relaxedSet(),
			consistency: opts.Consistency, spec: plan.Spec,
		}
		var holder any
		out, rerr := sched.ReplaySchedule(opts.schedConfig(false, false), program(sub, m, &holder), vKey.schedule)
		if rerr != nil {
			return nil, fmt.Errorf("core: replaying the first violation diverged: %w", rerr)
		}
		h, herr := d.materialize(out)
		if herr != nil {
			return nil, herr
		}
		v, werr := d.witness(h)
		if werr != nil {
			return nil, werr
		}
		if v == nil {
			return nil, errors.New("core: replayed violating history has a serial witness (corrupt or mismatched reports)")
		}
		res.Verdict = Fail
		res.Violation = v
	}
	if opts.KeepSpec {
		res.Spec = plan.Spec
	}
	return res, nil
}
