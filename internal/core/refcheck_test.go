package core_test

import (
	"testing"

	"lineup/internal/collections"
	"lineup/internal/core"
	"lineup/internal/sched"
)

// incGetter is the vocabulary shared by every counter variant, so that the
// same test matrix can run against both a model and an implementation.
type incGetter interface {
	Inc(*sched.Thread)
	Get(*sched.Thread) int
}

var (
	incAny = core.Op{Method: "Inc", Run: func(t *sched.Thread, obj any) string {
		obj.(incGetter).Inc(t)
		return collections.OK
	}}
	getAny = core.Op{Method: "Get", Run: func(t *sched.Thread, obj any) string {
		return collections.Int(obj.(incGetter).Get(t))
	}}
)

func modelCounter() *core.Subject {
	return &core.Subject{
		Name: "Counter(model)",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{incAny, getAny},
	}
}

// TestFig4Counter2ClassicVsGeneralized reproduces Section 2.2.2 / Fig. 4:
// with respect to the counter specification (synthesized here from a
// correct reference model), Counter2's leaked lock produces a stuck history
// that is perfectly linearizable under the classic Definition 1 but is
// rejected by the generalized Definition 3.
func TestFig4Counter2ClassicVsGeneralized(t *testing.T) {
	sched.RequireNoLeaks(t)
	impl := &core.Subject{
		Name: "Counter2",
		New:  func(t *sched.Thread) any { return collections.NewCounter2(t) },
		Ops:  []core.Op{incAny, getAny},
	}
	model := modelCounter()
	// Fig. 4's scenario: thread A increments and reads; thread B's later
	// increment blocks on the leaked lock.
	m := &core.Test{Rows: [][]core.Op{{incAny, getAny}, {incAny}}}

	classic, err := core.CheckAgainstModel(impl, model, m, core.RefOptions{ClassicOnly: true})
	if err != nil {
		t.Fatalf("classic check: %v", err)
	}
	if classic.Verdict != core.Pass {
		t.Fatalf("classic linearizability should accept Counter2 (Def. 1 cannot see blocking): %v", classic.Violation)
	}

	gen, err := core.CheckAgainstModel(impl, model, m, core.RefOptions{})
	if err != nil {
		t.Fatalf("generalized check: %v", err)
	}
	if gen.Verdict != core.Fail {
		t.Fatalf("generalized linearizability should reject Counter2's stuck history")
	}
	if gen.Violation.Kind != core.StuckNoWitness {
		t.Fatalf("expected StuckNoWitness, got %v", gen.Violation.Kind)
	}
	if gen.Violation.Pending == nil || gen.Violation.Pending.Name != "Inc()" {
		t.Fatalf("expected the pending Inc to be the unjustified operation, got %v", gen.Violation.Pending)
	}
}

// TestModelCheckAcceptsCorrectImpl sanity-checks CheckAgainstModel in the
// passing direction: the correct counter against itself as model.
func TestModelCheckAcceptsCorrectImpl(t *testing.T) {
	sched.RequireNoLeaks(t)
	model := modelCounter()
	impl := &core.Subject{
		Name: "Counter",
		New:  func(t *sched.Thread) any { return collections.NewCounter(t) },
		Ops:  []core.Op{incAny, getAny},
	}
	m := &core.Test{Rows: [][]core.Op{{incAny, getAny}, {incAny, getAny}}}
	res, err := core.CheckAgainstModel(impl, model, m, core.RefOptions{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Pass {
		t.Fatalf("correct counter failed against model: %v", res.Violation)
	}
}

// TestCounter1FailsAgainstModelToo confirms that lost updates are caught in
// the model-based mode as well.
func TestCounter1FailsAgainstModelToo(t *testing.T) {
	sched.RequireNoLeaks(t)
	impl := &core.Subject{
		Name: "Counter1",
		New:  func(t *sched.Thread) any { return collections.NewCounter1(t) },
		Ops:  []core.Op{incAny, getAny},
	}
	m := &core.Test{Rows: [][]core.Op{{incAny, getAny}, {incAny}}}
	res, err := core.CheckAgainstModel(impl, modelCounter(), m, core.RefOptions{})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if res.Verdict != core.Fail {
		t.Fatalf("Counter1 passed against the model")
	}
}
